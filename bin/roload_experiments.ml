(* roload_experiments — regenerate any table or figure of the paper.

   Usage: roload_experiments [table1|table2|table3|section5b|figure3|
                              figure4|figure5|security|elide|campaign|
                              server|server-chaos|ablations|all]
                             [--scale N] [-j N] [--engine ENGINE]
                             [--json PATH] [--baseline PATH]
                             [--metrics [PATH]] [--check-cycles PATH]

   With [--json] each experiment's wall-clock, simulated instruction
   count and simulated MIPS are appended to a bench-trajectory file;
   [--baseline] compares the aggregate simulated MIPS against a
   previously written file and fails (exit 1) on a >30% regression.

   [--metrics] extends the §V tables with counter columns (ld.ro count,
   ROLoad faults, TLB/cache miss rates) and writes the per-cell metrics
   log as JSON; [--check-cycles] compares that log's cycle counts against
   a committed baseline and fails (exit 1) on any divergence — the CI
   gate that pins down "metrics collection does not change what is
   simulated". *)

open Cmdliner

let print_table t = Roload_util.Table.print t

(* Chaos-campaign throughput: the same pinned plan run snapshot-seeded
   (the default fan-out) and booted from reset, with the reports
   required byte-identical.  The seeded cells/s figure is recorded in
   the bench JSON as [campaign_cells_per_s] and gated against the
   baseline like simulated MIPS. *)
let campaign_cps : float option ref = ref None

(* Server macro-benchmark throughput: the stock scheme's wall-clock
   requests/s, recorded in the bench JSON as [requests_per_s] and gated
   against the baseline like simulated MIPS. *)
let server_rps : float option ref = ref None

(* The request-serving macro-benchmark: the server workload forked into
   a worker pool, drained under stock/VCall/ICall.  100k requests per
   scale unit; the driver raises if any scheme crashes, underserves, or
   prints a diverging checksum. *)
let run_server_bench ~scale =
  let r = Core.Experiments.experiment_server ~requests:(100_000 * scale) () in
  server_rps := Some r.Core.Experiments.sv_requests_per_s;
  print_table r.Core.Experiments.sv_table

(* Live-server chaos campaign: per-request serving availability by
   scheme under mid-stream faults with supervised restarts.  The
   per-scheme served_ratio figures are recorded in the bench JSON as
   [served_ratio_<scheme>] and gated against the baseline as an
   absolute floor (availability is a fraction, not a throughput). *)
let server_ratios : (string * float) list ref = ref []

let run_server_chaos ~scale =
  let module Campaign = Roload_inject.Campaign in
  let rp =
    Campaign.run_server
      {
        Campaign.default_server_config with
        Campaign.sv_seed = 3L;
        sv_count = 6 * scale;
      }
  in
  print_string (Campaign.render_server rp);
  server_ratios := Campaign.served_ratios rp;
  let g = Campaign.server_gate rp in
  if g.Campaign.sg_cell_failures > 0 then
    raise (Core.Experiments.Experiment_failure "server-chaos campaign had cell failures")
  else if g.Campaign.sg_low_availability > 0 || g.Campaign.sg_corrupted_under_roload > 0
  then
    raise
      (Core.Experiments.Experiment_failure
         "server-chaos availability/corruption gate violated under a roload scheme")

let run_campaign ~scale =
  let module Campaign = Roload_inject.Campaign in
  let cfg =
    { Campaign.default_config with Campaign.seed = 1L; count = 60 * scale }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seeded, seeded_s = time (fun () -> Campaign.run cfg) in
  let reset, reset_s =
    time (fun () -> Campaign.run { cfg with Campaign.from_reset = true })
  in
  if not (String.equal (Campaign.to_json seeded) (Campaign.to_json reset)) then
    raise
      (Core.Experiments.Experiment_failure
         "snapshot-seeded campaign diverged from the from-reset campaign");
  let cells = List.length seeded.Campaign.rows in
  let cps w = if w > 0.0 then float_of_int cells /. w else 0.0 in
  campaign_cps := Some (cps seeded_s);
  let t =
    Roload_util.Table.create
      ~title:
        (Printf.sprintf
           "chaos campaign throughput (%d cells, seed 1; reports byte-identical)" cells)
      ~header:[ "mode"; "wall (s)"; "cells/s" ] ()
  in
  Roload_util.Table.add_row t
    [ "snapshot-seeded"; Printf.sprintf "%.2f" seeded_s;
      Printf.sprintf "%.1f" (cps seeded_s) ];
  Roload_util.Table.add_row t
    [ "from-reset"; Printf.sprintf "%.2f" reset_s; Printf.sprintf "%.1f" (cps reset_s) ];
  print_table t;
  Printf.printf "campaign speedup: %.1fx (snapshot-seeded over from-reset)\n"
    (if seeded_s > 0.0 then reset_s /. seeded_s else 0.0)

let run_one ~scale ~metrics name =
  match name with
  | "table1" -> print_table (Core.Experiments.table1 ())
  | "table2" -> print_table (Core.Experiments.table2 ())
  | "table3" -> print_table (Core.Experiments.table3 ()).Core.Experiments.table
  | "section5b" ->
    print_table (Core.Experiments.section5b ~scale ~metrics ()).Core.Experiments.table
  | "figure3" ->
    let f = Core.Experiments.figure3 ~scale () in
    print_table f.Core.Experiments.runtime_table;
    print_table f.Core.Experiments.memory_table;
    if metrics then print_table f.Core.Experiments.metrics_table
  | "figure4" | "figure5" | "figure45" ->
    let f = Core.Experiments.figure45 ~scale () in
    print_table f.Core.Experiments.runtime_table;
    print_table f.Core.Experiments.memory_table;
    if metrics then print_table f.Core.Experiments.metrics_table
  | "security" ->
    print_table (Core.Experiments.security ()).Core.Experiments.table;
    print_table (Core.Experiments.related_work_table ())
  | "elide" ->
    print_table (Core.Experiments.experiment_elide ~scale ()).Core.Experiments.el_table
  | "campaign" -> run_campaign ~scale
  | "server" -> run_server_bench ~scale
  | "server-chaos" -> run_server_chaos ~scale
  | "ablations" ->
    print_table (Core.Experiments.ablation_compressed ());
    print_table (Core.Experiments.ablation_keys ());
    print_table (Core.Experiments.ablation_separate_code ());
    print_table (Core.Experiments.ablation_retcall ());
    print_table (Core.Experiments.ablation_tlb ())
  | other ->
    Printf.eprintf "unknown experiment %s\n" other;
    exit 2

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  with Sys_error _ -> None

let run names scale jobs engine json baseline metrics check_cycles =
  let module Machine = Roload_machine.Machine in
  (match engine with
  | None -> ()
  | Some name -> (
    match Machine.engine_of_string name with
    | Ok e -> Machine.set_default_engine e
    | Error msg ->
      prerr_endline msg;
      exit 2));
  let engine_label =
    try Machine.engine_name (Machine.effective_engine ())
    with Failure msg ->
      prerr_endline msg;
      exit 2
  in
  (match jobs with Some j -> Core.Parallel.set_jobs j | None -> ());
  (if check_cycles <> None && metrics = None then begin
     Printf.eprintf "--check-cycles requires --metrics\n";
     exit 2
   end);
  if metrics <> None then Core.Experiments.enable_metrics ();
  let names =
    match names with
    | [] | [ "all" ] ->
      [ "table1"; "table2"; "table3"; "section5b"; "figure3"; "figure45"; "security";
        "elide"; "ablations" ]
    | names -> names
  in
  let entries = ref [] in
  (* containment: a failing experiment is recorded and the rest of the
     run continues; the process still exits 1 at the end *)
  let failed = ref [] in
  List.iter
    (fun n ->
      let t0 = Unix.gettimeofday () in
      let i0 = Core.System.total_instructions_simulated () in
      (try run_one ~scale ~metrics:(metrics <> None) n with
      | Core.Experiments.Experiment_failure m ->
        Printf.eprintf "EXPERIMENT FAILURE in %s: %s\n%!" n m;
        failed := n :: !failed);
      let wall_s = Unix.gettimeofday () -. t0 in
      let instructions = Core.System.total_instructions_simulated () - i0 in
      (* the campaign and server experiments measure their own
         throughput figures (cells/s, requests/s) — they record
         top-level figures instead of trajectory entries, so the MIPS
         totals stay comparable across baselines *)
      if n <> "campaign" && n <> "server" && n <> "server-chaos" then
        entries :=
          Core.Bench_log.entry ~name:n ~engine:engine_label ~wall_s ~instructions
          :: !entries;
      print_newline ())
    names;
  let entries = List.rev !entries in
  (match json with
  | Some path ->
    Core.Bench_log.write ~path ~scale ~jobs:(Core.Parallel.default_jobs ())
      ?campaign_cells_per_s:!campaign_cps ?requests_per_s:!server_rps
      ?served_ratios:(match !server_ratios with [] -> None | l -> Some l)
      entries;
    Printf.printf "bench trajectory written to %s\n" path
  | None -> ());
  (match metrics with
  | None -> ()
  | Some path ->
    let doc = Roload_obs.Metrics.log_to_json (Core.Experiments.collected_metrics ()) in
    let oc = open_out path in
    output_string oc doc;
    close_out oc;
    Printf.printf "metrics written to %s\n" path;
    (* the cycle-divergence gate: metrics collection (and tracing) must
       not change what is simulated, so the cycle counts of every cell
       must equal the committed baseline's exactly *)
    match check_cycles with
    | None -> ()
    | Some bpath -> (
      match read_file bpath with
      | None ->
        Printf.eprintf "warning: cannot read cycle baseline %s; skipping gate\n" bpath
      | Some base_doc ->
        let cur = Roload_util.Json.scan_int64_values ~key:"cycles" doc in
        let base = Roload_util.Json.scan_int64_values ~key:"cycles" base_doc in
        if cur <> base then begin
          Printf.eprintf
            "CYCLE DIVERGENCE: %d cycle values (baseline %d) and/or values differ \
             between %s and %s\n"
            (List.length cur) (List.length base) path bpath;
          List.iteri
            (fun i (c, b) ->
              if c <> b then Printf.eprintf "  cell %d: %Ld vs baseline %Ld\n" i c b)
            (try List.combine cur base with Invalid_argument _ -> []);
          exit 1
        end
        else
          Printf.printf "cycle gate: %d cells match baseline %s exactly — ok\n"
            (List.length cur) bpath));
  (match !failed with
  | [] -> ()
  | fs ->
    Printf.eprintf "%d experiment(s) failed: %s\n" (List.length fs)
      (String.concat ", " (List.rev fs));
    exit 1);
  (match baseline with
  | None -> ()
  | Some _ when entries = [] ->
    (* a run of only figure-recording experiments (campaign, server)
       has no trajectory entries: nothing for the MIPS gate to compare *)
    ()
  | Some path -> (
    let _, _, mips = Core.Bench_log.totals entries in
    match Core.Bench_log.read_total_mips path with
    | None ->
      Printf.eprintf "warning: no readable total_mips in baseline %s; skipping gate\n" path
    | Some base ->
      let floor = 0.7 *. base in
      if mips < floor then begin
        Printf.eprintf
          "PERF REGRESSION: %.3f simulated MIPS < 70%% of baseline %.3f (floor %.3f)\n" mips
          base floor;
        exit 1
      end
      else
        Printf.printf "perf gate: %.3f simulated MIPS vs baseline %.3f (floor %.3f) — ok\n"
          mips base floor));
  (* server-throughput gate: stock-scheme requests/s must not regress
     >30% against the checked-in baseline (skipped when the baseline
     predates the figure or the server experiment did not run) *)
  (match (baseline, !server_rps) with
  | Some path, Some rps -> (
    match Core.Bench_log.read_requests_per_s path with
    | None ->
      Printf.eprintf
        "warning: no requests_per_s in baseline %s; skipping server gate\n" path
    | Some base ->
      let floor = 0.7 *. base in
      if rps < floor then begin
        Printf.eprintf
          "SERVER-THROUGHPUT REGRESSION: %.3f requests/s < 70%% of baseline %.3f \
           (floor %.3f)\n"
          rps base floor;
        exit 1
      end
      else
        Printf.printf "server gate: %.3f requests/s vs baseline %.3f (floor %.3f) — ok\n"
          rps base floor)
  | _ -> ());
  (* served-ratio gate: each scheme's serving availability must not drop
     more than one percentage point below the checked-in baseline — an
     absolute floor, since availability is a fraction near 1.0 where the
     30%-of-baseline throughput rule would be vacuous (skipped when the
     baseline predates the figure or server-chaos did not run) *)
  (match (baseline, !server_ratios) with
  | Some path, (_ :: _ as ratios) ->
    List.iter
      (fun (scheme, ratio) ->
        match Core.Bench_log.read_served_ratio path ~scheme with
        | None ->
          Printf.eprintf
            "warning: no served_ratio_%s in baseline %s; skipping its gate\n" scheme path
        | Some base ->
          let floor = base -. 0.01 in
          if ratio < floor then begin
            Printf.eprintf
              "SERVED-RATIO REGRESSION (%s): %.5f < baseline %.5f - 0.01 (floor %.5f)\n"
              scheme ratio base floor;
            exit 1
          end
          else
            Printf.printf
              "served-ratio gate (%s): %.5f vs baseline %.5f (floor %.5f) — ok\n" scheme
              ratio base floor)
      ratios
  | _ -> ());
  (* campaign-throughput gate: seeded cells/s must not regress >30%
     against the checked-in baseline (skipped when the baseline predates
     the figure or the campaign experiment did not run) *)
  match (baseline, !campaign_cps) with
  | Some path, Some cps -> (
    match Core.Bench_log.read_campaign_cells_per_s path with
    | None ->
      Printf.eprintf
        "warning: no campaign_cells_per_s in baseline %s; skipping campaign gate\n" path
    | Some base ->
      let floor = 0.7 *. base in
      if cps < floor then begin
        Printf.eprintf
          "CAMPAIGN-THROUGHPUT REGRESSION: %.3f cells/s < 70%% of baseline %.3f (floor \
           %.3f)\n"
          cps base floor;
        exit 1
      end
      else
        Printf.printf
          "campaign gate: %.3f cells/s vs baseline %.3f (floor %.3f) — ok\n" cps base
          floor)
  | _ -> ()

let names_arg = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let scale_arg =
  Arg.(value
       & opt int Roload_workloads.Spec_suite.reference_scale
       & info [ "scale" ] ~doc:"Workload scale factor (1 = quick, 3 = reference).")

let jobs_arg =
  Arg.(value
       & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:
             "Simulation cells run in parallel (default: \\$ROLOAD_JOBS, else the \
              recommended domain count). Results are bit-identical at any job count.")

let engine_arg =
  Arg.(value
       & opt (some string) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:
             "Execution engine for every simulation: single, block, or traced (default: \
              traced; \\$ROLOAD_ENGINE overrides). All engines are cycle-exact to each \
              other.")

let json_arg =
  Arg.(value
       & opt (some string) None
       & info [ "json" ] ~docv:"PATH"
           ~doc:"Write per-experiment wall-clock/instructions/simulated-MIPS to PATH.")

let baseline_arg =
  Arg.(value
       & opt (some string) None
       & info [ "baseline" ] ~docv:"PATH"
           ~doc:
             "Compare aggregate simulated MIPS against a previously written bench file; \
              exit 1 if it regressed more than 30%.")

let metrics_arg =
  Arg.(value
       & opt ~vopt:(Some "results/metrics.json") (some string) None
       & info [ "metrics" ] ~docv:"PATH"
           ~doc:
             "Extend the §V tables with counter columns (ld.ro, ROLoad faults, TLB/cache \
              miss rates) and write the per-cell metrics log as JSON to PATH (default \
              results/metrics.json).")

let check_cycles_arg =
  Arg.(value
       & opt (some string) None
       & info [ "check-cycles" ] ~docv:"PATH"
           ~doc:
             "Compare the metrics log's cycle counts against the baseline at PATH; exit 1 \
              on any divergence. Requires --metrics.")

let cmd =
  Cmd.v
    (Cmd.info "roload_experiments"
       ~doc:"Regenerate the tables and figures of the ROLoad paper (DAC 2021)")
    Term.(const run $ names_arg $ scale_arg $ jobs_arg $ engine_arg $ json_arg
          $ baseline_arg $ metrics_arg $ check_cycles_arg)

let () = exit (Cmd.eval cmd)
