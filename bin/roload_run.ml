(* roload_run — load an .rxe image and run it on the simulated system.

   Usage: roload_run prog.rxe [--system baseline|processor|full]
                              [--engine single|block|traced]
                              [--trace out.json] [--trace-text out.txt]
                              [--profile] [--metrics] [--disasm N] *)

open Cmdliner

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run path system_name engine_name verbose disasm_count trace_path trace_text_path
    profile metrics =
  let engine =
    match engine_name with
    | None -> (
      (* validate ROLOAD_ENGINE up front so a typo is a clean usage
         error, not an uncaught exception mid-run *)
      try
        ignore (Roload_machine.Machine.effective_engine ());
        None
      with Failure msg ->
        prerr_endline msg;
        exit 2)
    | Some name -> (
      match Roload_machine.Machine.engine_of_string name with
      | Ok e -> Some e
      | Error msg ->
        prerr_endline msg;
        exit 2)
  in
  let variant =
    match system_name with
    | "baseline" -> Core.System.Baseline
    | "processor" -> Core.System.Processor_modified
    | "full" | "processor+kernel" -> Core.System.Processor_kernel_modified
    | other ->
      Printf.eprintf "unknown system %s (expected baseline|processor|full)\n" other;
      exit 2
  in
  let exe = Roload_obj.Exe.load path in
  let trace =
    if disasm_count <= 0 then None
    else begin
      let remaining = ref disasm_count in
      Some
        (fun ~pc inst ->
          if !remaining > 0 then begin
            decr remaining;
            Printf.eprintf "%8x:  %s\n" pc (Roload_isa.Inst.to_string inst)
          end)
    end
  in
  let tracer =
    match (trace_path, trace_text_path) with
    | None, None -> None
    | Some _, _ | _, Some _ -> Some (Roload_obs.Tracer.create ())
  in
  let m = Core.System.run ?trace ?tracer ?engine ~profile ~variant exe in
  print_string m.Core.System.output;
  (match (tracer, trace_path) with
  | Some tr, Some p ->
    write_file p (Roload_obs.Tracer.to_chrome_json tr);
    Printf.eprintf "trace: %d events (%d dropped) -> %s\n" (Roload_obs.Tracer.length tr)
      (Roload_obs.Tracer.dropped tr) p
  | _ -> ());
  (match (tracer, trace_text_path) with
  | Some tr, Some p ->
    write_file p (Roload_obs.Tracer.to_text tr);
    Printf.eprintf "trace text: %d events -> %s\n" (Roload_obs.Tracer.length tr) p
  | _ -> ());
  if profile then begin
    prerr_string (Roload_obs.Profile.render m.Core.System.profile);
    (* trace coverage: which share of retired instructions ran inside a
       compiled trace — the observable for tuning ROLOAD_TRACE_HOT *)
    let mt = m.Core.System.metrics in
    let cov =
      if Int64.equal mt.Roload_obs.Metrics.instructions 0L then 0.
      else
        100.
        *. Int64.to_float (Int64.of_int mt.Roload_obs.Metrics.trace_retires)
        /. Int64.to_float mt.Roload_obs.Metrics.instructions
    in
    Printf.eprintf
      "trace coverage: %5.1f%%  (%d of %Ld retired instructions in %d compiled traces, \
       %d trace entries)\n"
      cov mt.Roload_obs.Metrics.trace_retires mt.Roload_obs.Metrics.instructions
      mt.Roload_obs.Metrics.traces_compiled mt.Roload_obs.Metrics.trace_enters
  end;
  if metrics then prerr_endline (Roload_obs.Metrics.to_json m.Core.System.metrics);
  if verbose then begin
    Printf.eprintf "status:       %s\n" (Core.System.status_string m);
    Printf.eprintf "instructions: %Ld\n" m.Core.System.instructions;
    Printf.eprintf "cycles:       %Ld\n" m.Core.System.cycles;
    Printf.eprintf "peak memory:  %d KiB (footprint %d bytes)\n" m.Core.System.peak_kib
      m.Core.System.footprint_bytes;
    Printf.eprintf "ld.ro executed: %d\n" m.Core.System.roloads_executed
  end;
  match m.Core.System.status with
  | Roload_kernel.Process.Exited n -> exit n
  | Roload_kernel.Process.Killed sg ->
    Printf.eprintf "%s\n" (Roload_kernel.Signal.to_string sg);
    exit 128
  | Roload_kernel.Process.Running ->
    Printf.eprintf "instruction limit exhausted\n";
    exit 124

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.rxe")

let system_arg =
  Arg.(value & opt string "full"
       & info [ "system" ] ~doc:"System variant: baseline, processor, or full.")

let engine_arg =
  Arg.(value & opt (some string) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:
             "Execution engine: single, block, or traced (default: traced; \
              \\$ROLOAD_ENGINE overrides). All engines are cycle-exact to each other.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print run statistics.")

let disasm_arg =
  Arg.(value & opt int 0
       & info [ "disasm" ] ~docv:"N" ~doc:"Disassemble the first N retired instructions to stderr.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome-trace-format JSON event trace (cycle-stamped; load in chrome://tracing) to $(docv).")

let trace_text_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-text" ] ~docv:"FILE"
           ~doc:"Write the compact text event trace to $(docv).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Profile the block cache and print the hottest blocks (with disassembly) to stderr.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Print the run's metrics snapshot as JSON to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "roload_run" ~doc:"Run an RXE image on the simulated ROLoad system")
    Term.(const run $ path_arg $ system_arg $ engine_arg $ verbose_arg $ disasm_arg
          $ trace_arg $ trace_text_arg $ profile_arg $ metrics_arg)

let () = exit (Cmd.eval cmd)
