(* roload_run — load an .rxe image and run it on the simulated system.

   Usage: roload_run prog.rxe [--system baseline|processor|full]
                              [--trace out.json] [--trace-text out.txt]
                              [--profile] [--metrics] [--disasm N] *)

open Cmdliner

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run path system_name verbose disasm_count trace_path trace_text_path profile
    metrics =
  let variant =
    match system_name with
    | "baseline" -> Core.System.Baseline
    | "processor" -> Core.System.Processor_modified
    | "full" | "processor+kernel" -> Core.System.Processor_kernel_modified
    | other ->
      Printf.eprintf "unknown system %s (expected baseline|processor|full)\n" other;
      exit 2
  in
  let exe = Roload_obj.Exe.load path in
  let trace =
    if disasm_count <= 0 then None
    else begin
      let remaining = ref disasm_count in
      Some
        (fun ~pc inst ->
          if !remaining > 0 then begin
            decr remaining;
            Printf.eprintf "%8x:  %s\n" pc (Roload_isa.Inst.to_string inst)
          end)
    end
  in
  let tracer =
    match (trace_path, trace_text_path) with
    | None, None -> None
    | Some _, _ | _, Some _ -> Some (Roload_obs.Tracer.create ())
  in
  let m = Core.System.run ?trace ?tracer ~profile ~variant exe in
  print_string m.Core.System.output;
  (match (tracer, trace_path) with
  | Some tr, Some p ->
    write_file p (Roload_obs.Tracer.to_chrome_json tr);
    Printf.eprintf "trace: %d events (%d dropped) -> %s\n" (Roload_obs.Tracer.length tr)
      (Roload_obs.Tracer.dropped tr) p
  | _ -> ());
  (match (tracer, trace_text_path) with
  | Some tr, Some p ->
    write_file p (Roload_obs.Tracer.to_text tr);
    Printf.eprintf "trace text: %d events -> %s\n" (Roload_obs.Tracer.length tr) p
  | _ -> ());
  if profile then prerr_string (Roload_obs.Profile.render m.Core.System.profile);
  if metrics then prerr_endline (Roload_obs.Metrics.to_json m.Core.System.metrics);
  if verbose then begin
    Printf.eprintf "status:       %s\n" (Core.System.status_string m);
    Printf.eprintf "instructions: %Ld\n" m.Core.System.instructions;
    Printf.eprintf "cycles:       %Ld\n" m.Core.System.cycles;
    Printf.eprintf "peak memory:  %d KiB (footprint %d bytes)\n" m.Core.System.peak_kib
      m.Core.System.footprint_bytes;
    Printf.eprintf "ld.ro executed: %d\n" m.Core.System.roloads_executed
  end;
  match m.Core.System.status with
  | Roload_kernel.Process.Exited n -> exit n
  | Roload_kernel.Process.Killed sg ->
    Printf.eprintf "%s\n" (Roload_kernel.Signal.to_string sg);
    exit 128
  | Roload_kernel.Process.Running ->
    Printf.eprintf "instruction limit exhausted\n";
    exit 124

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.rxe")

let system_arg =
  Arg.(value & opt string "full"
       & info [ "system" ] ~doc:"System variant: baseline, processor, or full.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print run statistics.")

let disasm_arg =
  Arg.(value & opt int 0
       & info [ "disasm" ] ~docv:"N" ~doc:"Disassemble the first N retired instructions to stderr.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome-trace-format JSON event trace (cycle-stamped; load in chrome://tracing) to $(docv).")

let trace_text_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-text" ] ~docv:"FILE"
           ~doc:"Write the compact text event trace to $(docv).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Profile the block cache and print the hottest blocks (with disassembly) to stderr.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ] ~doc:"Print the run's metrics snapshot as JSON to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "roload_run" ~doc:"Run an RXE image on the simulated ROLoad system")
    Term.(const run $ path_arg $ system_arg $ verbose_arg $ disasm_arg $ trace_arg
          $ trace_text_arg $ profile_arg $ metrics_arg)

let () = exit (Cmd.eval cmd)
