(* roload_chaos — the seeded fault-injection campaign.

   Usage: roload_chaos [--seed N] [--count N] [--scheme S]... [-j N]
                       [--json PATH] [--checkpoint PATH] [--resume]
                       [--attempts N] [--fail-cell IDX] [--max-cells N]
                       [--checkpoint-batch N] [--replay PATH]
                       [--server [--requests N] [--workers N] [--shards N]
                                 [--max-restarts N] [--deadline CYCLES]]

   Runs baseline-vs-injected pairs for every plan entry under every
   scheme, prints the detection-coverage table, and exits:

     0  clean — no silent corruption or undetected tampering under the
        ROLoad schemes, no cell failures
     1  findings — silent corruption or undetected tampering under a
        ROLoad scheme (or a replayed reproducer's verdict changed)
     2  usage error
     3  cell failures — some cells kept crashing and were recorded as
        structured failure rows

   [--server] runs the live-server campaign instead: every cell boots
   the multi-worker request server under supervision, strikes one
   worker mid-stream at a request-count trigger, and classifies every
   request as served / retried / duplicated / corrupted / lost.  Exits:

     0  clean — every roload cell holds the availability floor with
        zero corrupted payloads, no cell failures
     1  findings — a roload cell dropped below the availability floor
        or committed a corrupted payload
     3  cell failures

   [--fail-cell] artificially crashes the cells of one plan index (the
   crash-containment self-test); [--max-cells] stops after N cells to
   simulate a mid-run kill, for exercising [--resume]. *)

open Cmdliner
module Campaign = Roload_inject.Campaign
module Pass = Roload_passes.Pass

let run_server_mode seed count schemes jobs json checkpoint resume fail_cell max_cells
    checkpoint_batch requests workers shards max_restarts deadline =
  let sabotage =
    match fail_cell with
    | None -> None
    | Some idx ->
      Some
        (fun ~index ~scheme:_ ~attempt:_ ->
          if index = idx then failwith "sabotaged cell (--fail-cell)")
  in
  let report =
    Campaign.run_server
      {
        Campaign.default_server_config with
        Campaign.sv_seed = seed;
        sv_count = count;
        sv_requests = requests;
        sv_workers = workers;
        sv_shards = shards;
        sv_schemes = schemes;
        sv_jobs = jobs;
        sv_max_restarts = max_restarts;
        sv_deadline_cycles = deadline;
        sv_checkpoint = checkpoint;
        sv_resume = resume;
        sv_checkpoint_batch = checkpoint_batch;
        sv_sabotage = sabotage;
        sv_max_cells = max_cells;
      }
  in
  print_string (Campaign.render_server report);
  (match json with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Campaign.server_to_json report);
    close_out oc;
    Printf.printf "report written to %s\n" path);
  let g = Campaign.server_gate report in
  if g.Campaign.sg_cell_failures > 0 then exit 3
  else if g.Campaign.sg_low_availability > 0 || g.Campaign.sg_corrupted_under_roload > 0
  then exit 1

let run seed count schemes jobs json checkpoint resume attempts fail_cell max_cells
    replay elide from_reset diff_pages server requests workers shards max_restarts
    deadline checkpoint_batch =
  match replay with
  | Some path ->
    let checks = Campaign.replay ~path in
    let bad =
      List.filter
        (fun (c : Campaign.replay_check) -> c.rc_expected <> c.rc_actual)
        checks
    in
    List.iter
      (fun (c : Campaign.replay_check) ->
        Printf.printf "%-8s expected %-18s got %-18s %s\n" c.rc_scheme c.rc_expected
          c.rc_actual
          (if c.rc_expected = c.rc_actual then "ok" else "MISMATCH"))
      checks;
    if bad <> [] then exit 1
  | None ->
    let schemes =
      match schemes with
      | [] -> Campaign.default_schemes
      | names ->
        List.map
          (fun n ->
            match Pass.scheme_of_string n with
            | Some s -> s
            | None ->
              Printf.eprintf "unknown scheme %s\n" n;
              exit 2)
          names
    in
    if server then
      run_server_mode seed count schemes jobs json checkpoint resume fail_cell
        max_cells checkpoint_batch requests workers shards max_restarts deadline
    else begin
    let sabotage =
      match fail_cell with
      | None -> None
      | Some idx ->
        Some
          (fun ~index ~scheme:_ ~attempt:_ ->
            if index = idx then failwith "sabotaged cell (--fail-cell)")
    in
    let report =
      Campaign.run
        {
          Campaign.default_config with
          Campaign.seed;
          count;
          schemes;
          jobs;
          attempts;
          checkpoint;
          resume;
          checkpoint_batch;
          sabotage;
          max_cells;
          elide;
          from_reset;
        }
    in
    print_string (Campaign.render report);
    if diff_pages then print_string (Campaign.render_diffs report);
    (match json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Campaign.to_json report);
      close_out oc;
      Printf.printf "report written to %s\n" path);
    let g = Campaign.gate report in
    if g.Campaign.cell_failures > 0 then exit 3
    else if g.Campaign.silent_under_roload > 0 || g.Campaign.undetected_tamper > 0 then
      exit 1
    end

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~doc:"Campaign plan seed (deterministic).")

let count_arg =
  Arg.(value
       & opt int Roload_inject.Campaign.default_config.Roload_inject.Campaign.count
       & info [ "count" ] ~doc:"Plan length (injections per scheme before filtering).")

let scheme_arg =
  Arg.(value
       & opt_all string []
       & info [ "scheme" ] ~docv:"SCHEME"
           ~doc:"Scheme to include (repeatable): none, cfi, vtint, vcall, icall, \
                 retcall. Default: none, cfi, vcall, icall.")

let jobs_arg =
  Arg.(value
       & opt (some int) None
       & info [ "j"; "jobs" ]
           ~doc:"Cells run in parallel (default: \\$ROLOAD_JOBS, else the recommended \
                 domain count). Results are identical at any job count.")

let json_arg =
  Arg.(value
       & opt (some string) None
       & info [ "json" ] ~docv:"PATH" ~doc:"Write the full row-level report as JSON.")

let checkpoint_arg =
  Arg.(value
       & opt (some string) None
       & info [ "checkpoint" ] ~docv:"PATH"
           ~doc:"Append each cell's row to PATH the moment it settles (incremental \
                 persistence).")

let resume_arg =
  Arg.(value
       & flag
       & info [ "resume" ]
           ~doc:"Skip cells already recorded in the checkpoint; the final report is \
                 byte-identical to an uninterrupted run.")

let attempts_arg =
  Arg.(value
       & opt int Roload_inject.Campaign.default_config.Roload_inject.Campaign.attempts
       & info [ "attempts" ] ~doc:"Deterministic retries per crashing cell.")

let fail_cell_arg =
  Arg.(value
       & opt (some int) None
       & info [ "fail-cell" ] ~docv:"IDX"
           ~doc:"Artificially crash every cell of plan index IDX (containment \
                 self-test).")

let max_cells_arg =
  Arg.(value
       & opt (some int) None
       & info [ "max-cells" ] ~docv:"N"
           ~doc:"Stop after N cells (simulates a mid-run kill; use with --checkpoint \
                 then --resume).")

let replay_arg =
  Arg.(value
       & opt (some string) None
       & info [ "replay" ] ~docv:"PATH"
           ~doc:"Re-run a pinned corpus reproducer and compare verdicts instead of \
                 running a campaign.")

let elide_arg =
  Arg.(value
       & flag
       & info [ "elide" ]
           ~doc:"Compile every victim with proof-guided ld.ro check elision \
                 (roload-prove + roload-elide); the detection-coverage table must be \
                 byte-identical to the unelided campaign.")

let from_reset_arg =
  Arg.(value
       & flag
       & info [ "from-reset" ]
           ~doc:"Boot every cell from reset instead of forking the per-scheme \
                 copy-on-write trigger snapshots (the default fan-out). Tables, \
                 checkpoints and JSON are byte-identical either way — only the \
                 throughput changes.")

let diff_pages_arg =
  Arg.(value
       & flag
       & info [ "diff-pages" ]
           ~doc:"After the coverage table, print the silent-corruption localizer: one \
                 line per page where an injected run's final memory diverged from the \
                 clean baseline, with the first differing byte.")

let server_arg =
  Arg.(value
       & flag
       & info [ "server" ]
           ~doc:"Run the live-server chaos campaign: supervised multi-worker request \
                 serving with mid-stream tamper/kill faults and a per-request \
                 serving-availability table.")

let requests_arg =
  Arg.(value
       & opt int Roload_inject.Campaign.default_server_config.Roload_inject.Campaign.sv_requests
       & info [ "requests" ] ~doc:"Requests in the server stream per cell.")

let workers_arg =
  Arg.(value
       & opt int Roload_inject.Campaign.default_server_config.Roload_inject.Campaign.sv_workers
       & info [ "workers" ] ~doc:"Forked worker tasks in the server victim.")

let shards_arg =
  Arg.(value
       & opt int Roload_inject.Campaign.default_server_config.Roload_inject.Campaign.sv_shards
       & info [ "shards" ]
           ~doc:"Request-device shards (request id mod N; workers steal from dry \
                 shards deterministically).")

let max_restarts_arg =
  Arg.(value
       & opt int
           Roload_inject.Campaign.default_server_config.Roload_inject.Campaign.sv_max_restarts
       & info [ "max-restarts" ] ~doc:"Per-worker reincarnation budget.")

let deadline_arg =
  Arg.(value
       & opt int64
           Roload_inject.Campaign.default_server_config.Roload_inject.Campaign
           .sv_deadline_cycles
       & info [ "deadline" ] ~docv:"CYCLES"
           ~doc:"Per-request deadline in simulated cycles (0 disables the watchdog).")

let checkpoint_batch_arg =
  Arg.(value
       & opt int 1
       & info [ "checkpoint-batch" ] ~docv:"N"
           ~doc:"Buffer N settled rows per checkpoint write (flushed on exit and on \
                 crash; resume stays byte-identical).")

let cmd =
  Cmd.v
    (Cmd.info "roload_chaos"
       ~doc:"Seeded fault-injection campaign with crash containment and resume")
    Term.(const run $ seed_arg $ count_arg $ scheme_arg $ jobs_arg $ json_arg
          $ checkpoint_arg $ resume_arg $ attempts_arg $ fail_cell_arg $ max_cells_arg
          $ replay_arg $ elide_arg $ from_reset_arg $ diff_pages_arg $ server_arg
          $ requests_arg $ workers_arg $ shards_arg $ max_restarts_arg $ deadline_arg
          $ checkpoint_batch_arg)

let () = exit (Cmd.eval cmd)
