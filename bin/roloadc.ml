(* roloadc — the MiniC compiler driver.

   Usage:
     roloadc input.mc -o prog.rxe --scheme vcall
     roloadc input.mc -S                     # print assembly
     roloadc input.mc --map                  # print the link map
     roloadc input.mc --lint --scheme icall  # static verification
     roloadc input.mc --prove --scheme icall # whole-program prover
     roloadc input.mc --elide --scheme icall # proof-guided check elision *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let scheme_list = "none|vcall|icall|retcall|vtint|cfi"

let compile input output scheme_name asm_only map lint lint_format prove prove_format
    elide compress separate_code optimize =
  match Roload_passes.Pass.scheme_of_string scheme_name with
  | None ->
    Printf.eprintf "unknown scheme %s (expected %s)\n" scheme_name scheme_list;
    exit 2
  | Some scheme -> (
    let check_format what fmt =
      if fmt <> "human" && fmt <> "json" then begin
        Printf.eprintf "unknown %s format %s (expected human|json)\n" what fmt;
        exit 2
      end
    in
    check_format "lint" lint_format;
    check_format "prove" prove_format;
    let source = read_file input in
    let options = { Core.Toolchain.scheme; compress; separate_code; optimize; elide } in
    let name = Filename.remove_extension (Filename.basename input) in
    try
      let artifacts = Core.Toolchain.compile ~options ~name source in
      if asm_only then print_string (Core.Toolchain.asm_text artifacts)
      else if prove then begin
        let result = Core.Toolchain.prove artifacts in
        (match prove_format with
        | "json" -> print_string (Roload_analysis.Prove.report_to_json result)
        | _ -> print_string (Roload_analysis.Prove.report_to_string result));
        exit (Roload_analysis.Prove.exit_code result)
      end
      else if lint then begin
        let findings = Core.Toolchain.lint artifacts in
        (match lint_format with
        | "json" -> print_string (Roload_analysis.Diagnostic.report_to_json findings)
        | _ -> print_string (Roload_analysis.Diagnostic.report_to_string findings));
        exit (Roload_analysis.Lint.exit_code findings)
      end
      else begin
        if map then print_string (Roload_link.Linker.map_string artifacts.Core.Toolchain.exe);
        let out = match output with Some o -> o | None -> name ^ ".rxe" in
        Roload_obj.Exe.save artifacts.Core.Toolchain.exe out;
        let report = artifacts.Core.Toolchain.pass_report in
        List.iter
          (fun (k, v) -> Printf.printf "%s: %d\n" k v)
          report.Roload_passes.Pass.annotations;
        (match artifacts.Core.Toolchain.elide_stats with
        | None -> ()
        | Some s ->
          Printf.printf
            "elide: %d icall site(s), %d load site(s), %d const, %d check(s) (%d guarded)\n"
            s.Roload_passes.Roload_elide.el_icalls s.Roload_passes.Roload_elide.el_loads
            s.Roload_passes.Roload_elide.el_const s.Roload_passes.Roload_elide.el_checks
            s.Roload_passes.Roload_elide.el_guards);
        Printf.printf "wrote %s (%d segments, entry 0x%x)\n" out
          (List.length artifacts.Core.Toolchain.exe.Roload_obj.Exe.segments)
          artifacts.Core.Toolchain.exe.Roload_obj.Exe.entry
      end
    with Core.Toolchain.Compile_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1)

let input_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.mc")
let output_arg = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT.rxe")

let scheme_arg =
  Arg.(value & opt string "none"
       & info [ "scheme" ]
           ~doc:"Hardening scheme: none, vcall, icall, retcall, vtint, cfi.")

let asm_arg = Arg.(value & flag & info [ "S" ] ~doc:"Print generated assembly and stop.")
let map_arg = Arg.(value & flag & info [ "map" ] ~doc:"Print the link map.")

let lint_arg =
  Arg.(value & flag
       & info [ "lint" ]
           ~doc:"Run the roload-lint static verifier over the compiled program instead \
                 of writing an executable; exits 3 if any invariant is violated.")

let lint_format_arg =
  Arg.(value & opt string "human"
       & info [ "lint-format" ] ~docv:"FMT" ~doc:"Lint report format: human or json.")

let prove_arg =
  Arg.(value & flag
       & info [ "prove" ]
           ~doc:"Run roload-prove, the whole-program pointee-integrity prover, over the \
                 hardened IR instead of writing an executable; exits 3 on any finding.")

let prove_format_arg =
  Arg.(value & opt string "human"
       & info [ "prove-format" ] ~docv:"FMT" ~doc:"Prove report format: human or json.")

let elide_arg =
  Arg.(value & flag
       & info [ "elide" ]
           ~doc:"Proof-guided ld.ro check elision: compile with roload-prove and rewrite \
                 provably-safe keyed sites to plain loads behind one hoisted check. A \
                 non-clean prove run disables the rewrite (zero sites elided); use \
                 --prove as the verification gate.")

let compress_arg =
  Arg.(value & opt bool true & info [ "compress" ] ~doc:"RVC compression (incl. c.ld.ro).")

let separate_arg =
  Arg.(value & opt bool true
       & info [ "separate-code" ] ~doc:"Keep read-only data off executable pages.")

let optimize_arg =
  Arg.(value & opt bool true
       & info [ "optimize" ] ~doc:"IR constant folding and dead-code elimination.")

let cmd =
  Cmd.v
    (Cmd.info "roloadc" ~doc:"MiniC compiler targeting the simulated ROLoad RV64 system")
    Term.(
      const compile $ input_arg $ output_arg $ scheme_arg $ asm_arg $ map_arg $ lint_arg
      $ lint_format_arg $ prove_arg $ prove_format_arg $ elide_arg $ compress_arg
      $ separate_arg $ optimize_arg)

let () = exit (Cmd.eval cmd)
