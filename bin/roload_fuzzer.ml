(* roload-fuzz — differential conformance fuzzing against the IR oracle.

   Usage:
     roload-fuzz --seed 1 --count 2000              # fixed-seed campaign
     roload-fuzz --count 200 --time-budget 60       # time-bounded smoke run
     roload-fuzz --scheme icall --count 500         # focus one scheme
     roload-fuzz --engine traced --matrix out.tsv   # one engine, diffable matrix
     roload-fuzz --check-oracle                     # mutation self-check
     roload-fuzz --replay corpus/foo.mc             # re-check a reproducer
     roload-fuzz --json ...                         # machine-readable report

   Every failure line carries the case seed: `--seed N --count 1` with the
   printed seed replays exactly that program. *)

open Cmdliner
module Pass = Roload_passes.Pass
module Prng = Roload_util.Prng
module Gen = Roload_fuzz.Gen
module Diff = Roload_fuzz.Diff
module Shrink = Roload_fuzz.Shrink
module Ir_eval = Roload_fuzz.Ir_eval

let scheme_name = Pass.scheme_name

let stop_line scheme (b : Ir_eval.behavior) =
  Printf.sprintf "%s\t%s\t%s" (scheme_name scheme)
    (Roload_security.Trapclass.stop_name b.Ir_eval.stop)
    (String.escaped b.Ir_eval.output)

let expected_lines behaviors =
  String.concat "" (List.map (fun (s, b) -> stop_line s b ^ "\n") behaviors)

let json_escape = Roload_util.Json.escape

type tally = {
  mutable cases : int;
  mutable agreed : int;
  mutable skipped : int;
  mutable divergent : int;
  mutable failures : (int64 * Diff.divergence * string) list; (* seed, what, reproducer *)
}

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let shrink_failure ~schemes ~engines prog (d : Diff.divergence) =
  let still_failing candidate =
    match
      Diff.run_source ~schemes ~engines ~name:"shrink" (Gen.to_source candidate)
    with
    | Diff.Divergent d' -> d'.Diff.dv_scheme = d.Diff.dv_scheme
    | Diff.Agree _ | Diff.Skipped _ -> false
  in
  Shrink.shrink ~still_failing prog

let save_reproducer ~corpus_dir ~seed prog =
  (try Unix.mkdir corpus_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let base = Filename.concat corpus_dir (Printf.sprintf "fuzz-%Ld" seed) in
  let source = Shrink.reproducer_source prog in
  write_file (base ^ ".mc") source;
  (match Diff.oracle_behaviors (Gen.to_source prog) with
  | behaviors -> write_file (base ^ ".expected") (expected_lines behaviors)
  | exception _ -> ());
  base ^ ".mc"

let report_json t ~seed ~elapsed =
  let fail_json (fseed, (d : Diff.divergence), repro) =
    Printf.sprintf
      {|    {"seed": %Ld, "scheme": "%s", "stage": "%s", "expected": "%s", "actual": "%s", "reproducer": "%s"}|}
      fseed (scheme_name d.Diff.dv_scheme) d.Diff.dv_stage
      (json_escape d.Diff.dv_expected) (json_escape d.Diff.dv_actual)
      (json_escape repro)
  in
  Printf.printf
    {|{
  "seed": %Ld,
  "cases": %d,
  "agreed": %d,
  "skipped": %d,
  "divergent": %d,
  "elapsed_s": %.1f,
  "divergences": [
%s
  ]
}
|}
    seed t.cases t.agreed t.skipped t.divergent elapsed
    (String.concat ",\n" (List.rev_map fail_json t.failures))

let fuzz_loop ~seed ~count ~time_budget ~schemes ~engines ~size ~json ~corpus_dir
    ~sabotage ~stop_on_divergence ~elide ~matrix =
  let rng = Prng.create seed in
  let t = { cases = 0; agreed = 0; skipped = 0; divergent = 0; failures = [] } in
  (* the per-case outcome matrix: one deterministic, timing-free line per
     case, so two campaigns (e.g. elided vs unelided builds) can be
     compared byte-for-byte *)
  let matrix_lines = ref [] in
  let record_matrix case_seed outcome =
    if matrix <> None then matrix_lines := Printf.sprintf "%Ld\t%s" case_seed outcome :: !matrix_lines
  in
  let t0 = Unix.gettimeofday () in
  let within_budget () =
    match time_budget with
    | None -> true
    | Some s -> Unix.gettimeofday () -. t0 < float_of_int s
  in
  let i = ref 0 in
  while
    !i < count && within_budget ()
    && not (stop_on_divergence && t.divergent > 0)
  do
    incr i;
    let case_seed = Prng.next_int64 rng in
    let case_size = 1 + Prng.next_int rng size in
    let prog = Gen.generate ~seed:case_seed ~size:case_size in
    t.cases <- t.cases + 1;
    (match
       Diff.run_source ~schemes ~engines ~elide ?sabotage ~name:"fuzz"
         (Gen.to_source prog)
     with
    | Diff.Agree _ ->
      t.agreed <- t.agreed + 1;
      record_matrix case_seed "agree"
    | Diff.Skipped r ->
      t.skipped <- t.skipped + 1;
      record_matrix case_seed ("skip\t" ^ r);
      if not json then
        Printf.printf "case %d seed=%Ld: skipped (%s)\n%!" !i case_seed r
    | Diff.Divergent d ->
      t.divergent <- t.divergent + 1;
      record_matrix case_seed
        (Printf.sprintf "divergent\t%s\t%s" (scheme_name d.Diff.dv_scheme) d.Diff.dv_stage);
      let repro =
        if sabotage = None then begin
          let shrunk = shrink_failure ~schemes ~engines prog d in
          save_reproducer ~corpus_dir ~seed:case_seed shrunk
        end
        else "(check-oracle: not saved)"
      in
      t.failures <- (case_seed, d, repro) :: t.failures;
      if not json then
        Printf.printf
          "case %d DIVERGENCE seed=%Ld scheme=%s stage=%s\n  expected %s\n  actual   %s\n  reproducer: %s\n  replay: roload-fuzz --seed %Ld --count 1\n%!"
          !i case_seed (scheme_name d.Diff.dv_scheme) d.Diff.dv_stage
          d.Diff.dv_expected d.Diff.dv_actual repro case_seed);
    if (not json) && !i mod 100 = 0 then
      Printf.printf "... %d cases (%d agreed, %d skipped, %d divergent)\n%!" !i
        t.agreed t.skipped t.divergent
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (match matrix with
  | None -> ()
  | Some path ->
    write_file path (String.concat "" (List.rev_map (fun l -> l ^ "\n") !matrix_lines));
    if not json then Printf.printf "matrix written to %s\n" path);
  if json then report_json t ~seed ~elapsed
  else
    Printf.printf "%d cases in %.1fs: %d agreed, %d skipped, %d divergent (seed %Ld)\n"
      t.cases elapsed t.agreed t.skipped t.divergent seed;
  t

(* ---- corpus distillation ----

   Sweep generated cases, keep the first representative of every distinct
   per-scheme outcome signature (which schemes trap, and how), shrink it
   down to the chunks that still produce that signature, and pin the
   shrunk program's full oracle behavior in a .expected file.  This is
   how the checked-in corpus/ regression programs were produced. *)

let signature_of behaviors =
  List.map
    (fun (s, b) ->
      ( s,
        match b.Ir_eval.stop with
        | Roload_security.Trapclass.Exit _ -> "exit"
        | st -> Roload_security.Trapclass.stop_name st ))
    behaviors

let distill ~seed ~count ~size ~corpus_dir ~want =
  let rng = Prng.create seed in
  let seen = Hashtbl.create 16 in
  let found = ref 0 in
  let i = ref 0 in
  while !found < want && !i < count do
    incr i;
    let case_seed = Prng.next_int64 rng in
    let case_size = 1 + Prng.next_int rng size in
    let prog = Gen.generate ~seed:case_seed ~size:case_size in
    match Diff.run_source ~name:"distill" (Gen.to_source prog) with
    | Diff.Agree behaviors ->
      let sg = signature_of behaviors in
      if not (Hashtbl.mem seen sg) then begin
        Hashtbl.add seen sg ();
        incr found;
        let keeps candidate =
          match Diff.run_source ~name:"distill" (Gen.to_source candidate) with
          | Diff.Agree b -> signature_of b = sg
          | Diff.Skipped _ | Diff.Divergent _ -> false
        in
        let shrunk = Shrink.shrink ~still_failing:keeps prog in
        let path = save_reproducer ~corpus_dir ~seed:case_seed shrunk in
        Printf.printf "distilled %s (%s)\n%!" path
          (String.concat " "
             (List.map (fun (s, c) -> scheme_name s ^ ":" ^ c) sg))
      end
    | Diff.Skipped _ | Diff.Divergent _ -> ()
  done;
  Printf.printf "distill: %d signatures from %d cases\n" !found !i;
  if !found < want then 1 else 0

let replay ~json path =
  let source = read_file path in
  match Diff.run_source ~name:(Filename.basename path) source with
  | Diff.Skipped r ->
    Printf.eprintf "replay %s: skipped (%s)\n" path r;
    2
  | Diff.Divergent d ->
    Printf.printf
      "replay %s: DIVERGENCE scheme=%s stage=%s\n  expected %s\n  actual   %s\n" path
      (scheme_name d.Diff.dv_scheme) d.Diff.dv_stage d.Diff.dv_expected d.Diff.dv_actual;
    1
  | Diff.Agree behaviors ->
    let got = expected_lines behaviors in
    if not json then print_string got;
    let expected_path = Filename.remove_extension path ^ ".expected" in
    if Sys.file_exists expected_path then begin
      let want = read_file expected_path in
      if String.equal want got then begin
        Printf.printf "replay %s: conforming, matches %s\n" path expected_path;
        0
      end
      else begin
        Printf.printf "replay %s: conforming but deviates from %s\n--- want\n%s--- got\n%s"
          path expected_path want got;
        1
      end
    end
    else begin
      Printf.printf "replay %s: conforming (no .expected to compare)\n" path;
      0
    end

let main seed count time_budget scheme_opt engine_opt size json check_oracle
    corpus_dir replay_path distill_want elide matrix =
  let schemes =
    match scheme_opt with
    | None -> Diff.schemes_under_test
    | Some s -> (
      match Pass.scheme_of_string s with
      | Some sch -> [ sch ]
      | None ->
        Printf.eprintf "unknown scheme %s (expected none|vcall|icall|retcall|vtint|cfi)\n" s;
        exit 2)
  in
  let engines =
    match engine_opt with
    | None -> Diff.engines_under_test
    | Some s -> (
      match Roload_machine.Machine.engine_of_string s with
      | Ok e -> [ e ]
      | Error msg ->
        prerr_endline msg;
        exit 2)
  in
  match replay_path with
  | Some path -> exit (replay ~json path)
  | None when distill_want <> None ->
    ignore schemes;
    let want = Option.get distill_want in
    exit (distill ~seed ~count ~size ~corpus_dir ~want)
  | None ->
    if check_oracle then begin
      (* plant a known miscompile (drop one GFPT redirect under ICall) and
         verify the fuzzer flags it within the case budget *)
      let schemes =
        if List.mem Pass.Icall schemes then schemes else Pass.Icall :: schemes
      in
      let t =
        fuzz_loop ~seed ~count ~time_budget ~schemes ~engines ~size ~json ~corpus_dir
          ~sabotage:(Some Diff.sabotage_drop_gfpt) ~stop_on_divergence:true ~elide
          ~matrix
      in
      if t.divergent > 0 then begin
        if not json then
          Printf.printf "check-oracle: planted miscompile caught after %d cases\n" t.cases;
        exit 0
      end
      else begin
        Printf.eprintf
          "check-oracle: planted miscompile NOT caught in %d cases — oracle or runner is blind\n"
          t.cases;
        exit 1
      end
    end
    else begin
      let t =
        fuzz_loop ~seed ~count ~time_budget ~schemes ~engines ~size ~json ~corpus_dir
          ~sabotage:None ~stop_on_divergence:false ~elide ~matrix
      in
      exit (if t.divergent > 0 then 1 else 0)
    end

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed; every case seed derives from it deterministically.")

let count_arg =
  Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"Maximum number of generated cases.")

let budget_arg =
  Arg.(value & opt (some int) None & info [ "time-budget" ] ~docv:"SEC" ~doc:"Stop after this many seconds even if --count is not reached.")

let scheme_arg =
  Arg.(value & opt (some string) None & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Restrict the differential check to one scheme (default: the full evaluation matrix).")

let engine_arg =
  Arg.(value & opt (some string) None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Restrict the machine side of the differential check to one execution \
                 engine (single, block, or traced; default: all three). The per-case \
                 --matrix output is timing-free, so two single-engine campaigns — e.g. \
                 --engine traced vs --engine block — must be byte-identical.")

let size_arg =
  Arg.(value & opt int 6 & info [ "size" ] ~docv:"N" ~doc:"Upper bound on program size (number of optional chunks).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON report.")

let check_oracle_arg =
  Arg.(value & flag & info [ "check-oracle" ] ~doc:"Mutation self-check: plant a known ICall miscompile and verify the fuzzer catches it.")

let corpus_arg =
  Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for shrunk reproducers.")

let distill_arg =
  Arg.(value & opt (some int) None & info [ "distill" ] ~docv:"N" ~doc:"Distill N outcome-signature-distinct shrunk programs into --corpus with pinned .expected files, then exit.")

let replay_arg =
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE.mc" ~doc:"Differentially re-check one MiniC file (compared against FILE.expected when present).")

let elide_arg =
  Arg.(value & flag
       & info [ "elide" ]
           ~doc:"Compile every case with proof-guided ld.ro check elision (roload-prove + \
                 roload-elide); the oracle is unchanged, so any behavioral effect of the \
                 rewrite surfaces as a divergence.")

let matrix_arg =
  Arg.(value & opt (some string) None
       & info [ "matrix" ] ~docv:"PATH"
           ~doc:"Write a deterministic, timing-free per-case outcome matrix (one \
                 seed/outcome line per case) to PATH — byte-comparable across campaigns, \
                 e.g. --elide vs plain.")

let cmd =
  let doc = "differential conformance fuzzing with a reference IR interpreter oracle" in
  Cmd.v
    (Cmd.info "roload-fuzz" ~doc)
    Term.(
      const main $ seed_arg $ count_arg $ budget_arg $ scheme_arg $ engine_arg
      $ size_arg $ json_arg $ check_oracle_arg $ corpus_arg $ replay_arg
      $ distill_arg $ elide_arg $ matrix_arg)

let () = exit (Cmd.eval cmd)
