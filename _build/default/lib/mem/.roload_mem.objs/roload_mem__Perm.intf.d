lib/mem/perm.mli:
