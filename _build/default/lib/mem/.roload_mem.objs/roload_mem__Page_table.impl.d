lib/mem/page_table.ml: Phys_mem Pte
