lib/mem/pte.mli: Perm
