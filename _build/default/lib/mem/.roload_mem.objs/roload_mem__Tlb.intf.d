lib/mem/tlb.mli: Pte
