lib/mem/page_table.mli: Perm Phys_mem Pte
