lib/mem/phys_mem.ml: Bytes Int32 String
