lib/mem/tlb.ml: Array Pte
