lib/mem/mmu.ml: Page_table Perm Printf Pte Tlb
