lib/mem/mmu.mli: Page_table Perm Tlb
