lib/mem/pte.ml: Int64 Perm Printf Roload_util
