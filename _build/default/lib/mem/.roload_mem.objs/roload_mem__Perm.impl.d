lib/mem/perm.ml: Printf
