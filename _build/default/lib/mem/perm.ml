(* Page permissions and memory access kinds. *)

type t = { r : bool; w : bool; x : bool }

let none = { r = false; w = false; x = false }
let ro = { r = true; w = false; x = false }
let rw = { r = true; w = true; x = false }
let rx = { r = true; w = false; x = true }
let rwx = { r = true; w = true; x = true }

let to_string p =
  Printf.sprintf "%c%c%c" (if p.r then 'r' else '-') (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

let equal (a : t) (b : t) = a = b

(* [Roload key] is a data load issued by a ld.ro-family instruction: it
   additionally requires the page to be read-only (R, not W, not X — code
   pages do not qualify, which is why the linker needs separate-code
   layout) and tagged with [key]. *)
type access = Fetch | Load | Store | Roload of int

let access_to_string = function
  | Fetch -> "fetch"
  | Load -> "load"
  | Store -> "store"
  | Roload key -> Printf.sprintf "roload(key=%d)" key

(* The conventional permission check, exactly as an unmodified MMU would
   perform it (the ROLoad key check is layered on top, in [Mmu]). *)
let allows p = function
  | Fetch -> p.x
  | Load | Roload _ -> p.r
  | Store -> p.w

(* The extra ROLoad condition (paper §II-E1): accessed page must be
   read-only.  Evaluated in parallel with [allows] and ANDed by the MMU. *)
let read_only p = p.r && (not p.w) && not p.x
