(** Fully-associative TLB with true-LRU replacement.  Entries cache whole
    leaf PTEs, including the ROLoad key field. *)

type t

type stats = { mutable hits : int; mutable misses : int; mutable flushes : int }

val create : name:string -> entries:int -> t
val name : t -> string
val size : t -> int
val stats : t -> stats
val lookup : t -> int -> Pte.t option
(** [lookup t vpn] returns the cached leaf PTE and updates LRU/stats. *)

val insert : t -> vpn:int -> pte:Pte.t -> unit
val invalidate : t -> vpn:int -> unit
val flush : t -> unit
val reset_stats : t -> unit
val occupancy : t -> int
