(** Page permissions and memory-access kinds. *)

type t = { r : bool; w : bool; x : bool }

val none : t
val ro : t
val rw : t
val rx : t
val rwx : t
val to_string : t -> string
val equal : t -> t -> bool

type access =
  | Fetch
  | Load
  | Store
  | Roload of int
      (** A load issued by a ld.ro-family instruction carrying its key. *)

val access_to_string : access -> string

val allows : t -> access -> bool
(** The conventional permission check (treats [Roload _] like [Load]); the
    extra ROLoad conditions live in {!Mmu}. *)

val read_only : t -> bool
(** The ROLoad page condition: readable, not writable, not executable. *)
