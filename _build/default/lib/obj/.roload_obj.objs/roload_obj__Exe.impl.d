lib/obj/exe.ml: Buffer Char List Printf Roload_mem String
