lib/obj/reloc.mli:
