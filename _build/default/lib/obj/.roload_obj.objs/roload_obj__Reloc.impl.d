lib/obj/reloc.ml: Int64 Roload_util
