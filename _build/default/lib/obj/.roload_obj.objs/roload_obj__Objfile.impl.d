lib/obj/objfile.ml: Buffer List Printf Reloc Roload_mem Section String Symbol
