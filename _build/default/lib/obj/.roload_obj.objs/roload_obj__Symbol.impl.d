lib/obj/symbol.ml: Printf
