lib/obj/section.mli: Roload_mem
