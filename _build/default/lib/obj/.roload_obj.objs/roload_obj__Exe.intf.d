lib/obj/exe.mli: Roload_mem
