lib/obj/objfile.mli: Reloc Section Symbol
