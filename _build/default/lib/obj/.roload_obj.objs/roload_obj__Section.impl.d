lib/obj/section.ml: Roload_mem Roload_util String
