lib/obj/symbol.mli:
