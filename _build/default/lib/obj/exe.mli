(** Executable images ("RXE" format): page-aligned segments with
    permissions and ROLoad page keys, an entry point, and a symbol table
    (kept for attack tooling and debugging). *)

type segment = {
  name : string;
  vaddr : int;
  data : string;
  mem_size : int;  (** >= data length; the excess is zero-filled (bss) *)
  perms : Roload_mem.Perm.t;
  key : int;
}

type t = {
  entry : int;
  segments : segment list;
  symbols : (string * int) list;
}

val page : int

val make : entry:int -> segments:segment list -> symbols:(string * int) list -> t
(** Validates page alignment and sizes. *)

val find_symbol : t -> string -> int option
val find_symbol_exn : t -> string -> int
val segment_pages : segment -> int
val total_pages : t -> int
val segment_containing : t -> int -> segment option

exception Bad_image of string

val to_bytes : t -> string
val of_bytes : string -> t
(** Raises {!Bad_image} on malformed input. *)

val save : t -> string -> unit
val load : string -> t
val summary : t -> string
