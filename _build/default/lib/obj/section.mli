(** Object-file sections with permissions and ROLoad page keys.  Keyed
    read-only sections follow the paper's [.rodata.key.<N>] naming
    convention (Listing 3). *)

type t = {
  name : string;
  perms : Roload_mem.Perm.t;
  key : int;
  align : int;
  data : string;
  bss_size : int;
}

val make :
  ?align:int ->
  ?key:int ->
  ?bss_size:int ->
  name:string ->
  perms:Roload_mem.Perm.t ->
  string ->
  t

val size : t -> int

val attrs_of_name : string -> Roload_mem.Perm.t * int
(** Permissions and key derived from a section name ([.text] → r-x,
    [.rodata.key.N] → r-- with key N, [.rodata] → r--, else rw-). *)

val is_bss_name : string -> bool
