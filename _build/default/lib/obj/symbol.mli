(** Symbols: a name bound to an offset within a section. *)

type t = { name : string; section : string; offset : int; global : bool }

val make : ?global:bool -> name:string -> section:string -> offset:int -> unit -> t
val to_string : t -> string
