(* Object-file sections.  A section carries its permissions and its ROLoad
   page key; the assembler derives both from the section name, following
   the paper's convention of `.rodata.key.<N>` sections for keyed
   allowlists (Listing 3). *)

module Perm = Roload_mem.Perm

type t = {
  name : string;
  perms : Perm.t;
  key : int;
  align : int;
  data : string; (* initialized bytes; BSS sections have data = "" *)
  bss_size : int; (* extra zero-initialized bytes beyond [data] *)
}

let make ?(align = 8) ?(key = 0) ?(bss_size = 0) ~name ~perms data =
  if align <= 0 || not (Roload_util.Bits.is_power_of_two align) then
    invalid_arg "Section.make: bad alignment";
  if key < 0 || key > 1023 then invalid_arg "Section.make: key out of range";
  { name; perms; key; align; data; bss_size }

let size t = String.length t.data + t.bss_size

(* Section classification by name, mirroring common linker behaviour plus
   the ROLoad keyed-rodata convention. *)
let attrs_of_name name =
  let starts_with prefix = String.length name >= String.length prefix
                           && String.sub name 0 (String.length prefix) = prefix in
  if starts_with ".text" then (Perm.rx, 0)
  else if starts_with ".rodata.key." then begin
    let suffix = String.sub name 12 (String.length name - 12) in
    match int_of_string_opt suffix with
    | Some key when key >= 0 && key <= 1023 -> (Perm.ro, key)
    | Some _ | None -> invalid_arg ("Section: bad key in section name " ^ name)
  end
  else if starts_with ".rodata" then (Perm.ro, 0)
  else if starts_with ".bss" || starts_with ".data" then (Perm.rw, 0)
  else (Perm.rw, 0)

let is_bss_name name =
  String.length name >= 4 && String.sub name 0 4 = ".bss"
