(** Relocatable object files: sections + symbols + relocations. *)

type t = {
  sections : Section.t list;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
}

val make : sections:Section.t list -> symbols:Symbol.t list -> relocs:Reloc.t list -> t
val find_section : t -> string -> Section.t option
val find_symbol : t -> string -> Symbol.t option
val defined_symbols : t -> string list
val undefined_symbols : t -> string list
val total_size : t -> int
val summary : t -> string
