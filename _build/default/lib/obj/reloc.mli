(** Relocations.  Symbol materialization uses absolute lui+addi pairs; the
    address space is far below 2^31. *)

type kind = Abs64 | Hi20 | Lo12_i | Lo12_s | Jal | Branch

val kind_to_string : kind -> string

type t = {
  section : string;
  offset : int;
  kind : kind;
  symbol : string;
  addend : int;
}

val hi20 : int -> int
(** The %hi(addr) 20-bit field, with the +0x800 rounding that pairs with a
    sign-extended %lo. *)

val lo12 : int -> int64
(** The %lo(addr) sign-extended 12-bit immediate. *)
