(* Relocations.  The target address space is far below 2^31, so symbol
   materialization uses absolute lui+addi pairs (Hi20/Lo12). *)

type kind =
  | Abs64 (* 8-byte absolute address (e.g. `.quad sym`, GFPT/vtable slots) *)
  | Hi20 (* U-type %hi(sym+addend), with the +0x800 rounding *)
  | Lo12_i (* I-type %lo *)
  | Lo12_s (* S-type %lo *)
  | Jal (* J-type pc-relative (calls and tail jumps) *)
  | Branch (* B-type pc-relative (rare cross-section branches) *)

let kind_to_string = function
  | Abs64 -> "ABS64"
  | Hi20 -> "HI20"
  | Lo12_i -> "LO12_I"
  | Lo12_s -> "LO12_S"
  | Jal -> "JAL"
  | Branch -> "BRANCH"

type t = {
  section : string; (* section containing the relocated bytes *)
  offset : int; (* byte offset within that section *)
  kind : kind;
  symbol : string;
  addend : int;
}

let hi20 addr = (addr + 0x800) asr 12 land 0xFFFFF
let lo12 addr = Roload_util.Bits.sign_extend (Int64.of_int (addr land 0xFFF)) ~width:12
