(* Relocatable object files: sections + symbols + relocations. *)

type t = {
  sections : Section.t list;
  symbols : Symbol.t list;
  relocs : Reloc.t list;
}

let make ~sections ~symbols ~relocs = { sections; symbols; relocs }

let find_section t name = List.find_opt (fun (s : Section.t) -> s.name = name) t.sections

let find_symbol t name = List.find_opt (fun (s : Symbol.t) -> s.name = name) t.symbols

let defined_symbols t = List.map (fun (s : Symbol.t) -> s.name) t.symbols

let undefined_symbols t =
  let defined = defined_symbols t in
  t.relocs
  |> List.filter_map (fun (r : Reloc.t) ->
         if List.mem r.symbol defined then None else Some r.symbol)
  |> List.sort_uniq String.compare

let total_size t =
  List.fold_left (fun acc s -> acc + Section.size s) 0 t.sections

let summary t =
  let b = Buffer.create 256 in
  Buffer.add_string b "sections:\n";
  List.iter
    (fun (s : Section.t) ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s %s key=%-4d size=%d\n" s.name
           (Roload_mem.Perm.to_string s.perms) s.key (Section.size s)))
    t.sections;
  Buffer.add_string b
    (Printf.sprintf "symbols: %d, relocations: %d\n" (List.length t.symbols)
       (List.length t.relocs));
  Buffer.contents b
