(* Symbols: a name bound to an offset within a section. *)

type t = {
  name : string;
  section : string;
  offset : int;
  global : bool;
}

let make ?(global = false) ~name ~section ~offset () = { name; section; offset; global }

let to_string s =
  Printf.sprintf "%s%s = %s+0x%x" s.name (if s.global then " (global)" else "") s.section
    s.offset
