(* Executable images ("RXE" format).  A linked program is a list of
   page-aligned segments, each carrying its permissions and ROLoad page
   key, plus an entry point and the symbol table (kept for the attack
   tooling and debugging).

   A small binary codec makes images saveable to disk so the compiler
   driver and the runner can be separate executables. *)

module Perm = Roload_mem.Perm

type segment = {
  name : string;
  vaddr : int; (* page-aligned *)
  data : string;
  mem_size : int; (* >= String.length data; excess is zero-filled (bss) *)
  perms : Perm.t;
  key : int;
}

type t = {
  entry : int;
  segments : segment list;
  symbols : (string * int) list; (* name -> absolute address *)
}

let page = 4096

let make ~entry ~segments ~symbols =
  List.iter
    (fun s ->
      if s.vaddr land (page - 1) <> 0 then
        invalid_arg (Printf.sprintf "Exe.make: segment %s not page-aligned" s.name);
      if s.mem_size < String.length s.data then
        invalid_arg (Printf.sprintf "Exe.make: segment %s mem_size too small" s.name))
    segments;
  { entry; segments; symbols }

let find_symbol t name = List.assoc_opt name t.symbols

let find_symbol_exn t name =
  match find_symbol t name with
  | Some a -> a
  | None -> invalid_arg ("Exe.find_symbol_exn: " ^ name)

let segment_pages s = (s.mem_size + page - 1) / page

let total_pages t = List.fold_left (fun acc s -> acc + segment_pages s) 0 t.segments

let segment_containing t addr =
  List.find_opt (fun s -> addr >= s.vaddr && addr < s.vaddr + s.mem_size) t.segments

(* ---------- binary codec ---------- *)

let magic = "RXE1"

let put_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let perms_byte p =
  (if p.Perm.r then 1 else 0) lor (if p.Perm.w then 2 else 0) lor if p.Perm.x then 4 else 0

let perms_of_byte v =
  { Perm.r = v land 1 <> 0; w = v land 2 <> 0; x = v land 4 <> 0 }

let to_bytes t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_u32 b t.entry;
  put_u32 b (List.length t.segments);
  List.iter
    (fun s ->
      put_str b s.name;
      put_u32 b s.vaddr;
      put_u32 b s.mem_size;
      put_u32 b (perms_byte s.perms);
      put_u32 b s.key;
      put_str b s.data)
    t.segments;
  put_u32 b (List.length t.symbols);
  List.iter
    (fun (name, addr) ->
      put_str b name;
      put_u32 b addr)
    t.symbols;
  Buffer.contents b

exception Bad_image of string

let of_bytes s =
  let pos = ref 0 in
  let need n =
    if !pos + n > String.length s then raise (Bad_image "truncated image")
  in
  let get_u32 () =
    need 4;
    let v =
      Char.code s.[!pos]
      lor (Char.code s.[!pos + 1] lsl 8)
      lor (Char.code s.[!pos + 2] lsl 16)
      lor (Char.code s.[!pos + 3] lsl 24)
    in
    pos := !pos + 4;
    v
  in
  let get_str () =
    let n = get_u32 () in
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  need 4;
  if String.sub s 0 4 <> magic then raise (Bad_image "bad magic");
  pos := 4;
  let entry = get_u32 () in
  let nseg = get_u32 () in
  let segments =
    List.init nseg (fun _ ->
        let name = get_str () in
        let vaddr = get_u32 () in
        let mem_size = get_u32 () in
        let perms = perms_of_byte (get_u32 ()) in
        let key = get_u32 () in
        let data = get_str () in
        { name; vaddr; data; mem_size; perms; key })
  in
  let nsym = get_u32 () in
  let symbols =
    List.init nsym (fun _ ->
        let name = get_str () in
        let addr = get_u32 () in
        (name, addr))
  in
  make ~entry ~segments ~symbols

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_bytes t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_bytes s

let summary t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "entry: 0x%x\n" t.entry);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s 0x%08x..0x%08x %s key=%-4d (%d bytes data)\n" s.name
           s.vaddr (s.vaddr + s.mem_size) (Perm.to_string s.perms) s.key
           (String.length s.data)))
    t.segments;
  Buffer.contents b
