(* Instruction AST for the RV64IM subset used by this project, extended with
   the ROLoad family (ld.ro & friends).  One value of type [t] denotes one
   (uncompressed) instruction; the compressed forms of [Compressed] expand to
   these, so the executor only ever sees this type. *)

type width = Byte | Half | Word | Double

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And

type alu_w_op = Addw | Subw | Sllw | Srlw | Sraw

type mul_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type mul_w_op = Mulw | Divw | Divuw | Remw | Remuw

type t =
  | Lui of Reg.t * int64 (* rd, 20-bit field value *)
  | Auipc of Reg.t * int64
  | Jal of Reg.t * int64 (* rd, signed byte offset (21-bit, even) *)
  | Jalr of Reg.t * Reg.t * int64 (* rd, rs1, signed 12-bit *)
  | Branch of branch_cond * Reg.t * Reg.t * int64 (* rs1, rs2, offset *)
  | Load of { width : width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; imm : int64 }
  | Store of { width : width; rs2 : Reg.t; rs1 : Reg.t; imm : int64 }
  | Op_imm of alu_op * Reg.t * Reg.t * int64 (* op, rd, rs1, imm/shamt *)
  | Op_imm_w of alu_w_op * Reg.t * Reg.t * int64
  | Op of alu_op * Reg.t * Reg.t * Reg.t (* op, rd, rs1, rs2 *)
  | Op_w of alu_w_op * Reg.t * Reg.t * Reg.t
  | Mulop of mul_op * Reg.t * Reg.t * Reg.t
  | Mulop_w of mul_w_op * Reg.t * Reg.t * Reg.t
  | Load_ro of { width : width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; key : int }
    (* ROLoad family: load through [rs1] (no offset immediate); the accessed
       page must be read-only and tagged with [key]. *)
  | Ecall
  | Ebreak
  | Fence

let width_bytes = function Byte -> 1 | Half -> 2 | Word -> 4 | Double -> 8

let width_name = function Byte -> "b" | Half -> "h" | Word -> "w" | Double -> "d"

let load_mnemonic ~width ~unsigned =
  "l" ^ width_name width ^ if unsigned then "u" else ""

let store_mnemonic ~width = "s" ^ width_name width

let branch_cond_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"
  | Bltu -> "bltu"
  | Bgeu -> "bgeu"

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or -> "or"
  | And -> "and"

let alu_w_op_name = function
  | Addw -> "addw"
  | Subw -> "subw"
  | Sllw -> "sllw"
  | Srlw -> "srlw"
  | Sraw -> "sraw"

let mul_op_name = function
  | Mul -> "mul"
  | Mulh -> "mulh"
  | Mulhsu -> "mulhsu"
  | Mulhu -> "mulhu"
  | Div -> "div"
  | Divu -> "divu"
  | Rem -> "rem"
  | Remu -> "remu"

let mul_w_op_name = function
  | Mulw -> "mulw"
  | Divw -> "divw"
  | Divuw -> "divuw"
  | Remw -> "remw"
  | Remuw -> "remuw"

let r2 = Reg.name

let to_string = function
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%Lx" (r2 rd) imm
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%Lx" (r2 rd) imm
  | Jal (rd, off) ->
    if Reg.to_int rd = 0 then Printf.sprintf "j %Ld" off
    else Printf.sprintf "jal %s, %Ld" (r2 rd) off
  | Jalr (rd, rs1, imm) ->
    if Reg.to_int rd = 0 && imm = 0L then Printf.sprintf "jr %s" (r2 rs1)
    else Printf.sprintf "jalr %s, %Ld(%s)" (r2 rd) imm (r2 rs1)
  | Branch (c, rs1, rs2, off) ->
    Printf.sprintf "%s %s, %s, %Ld" (branch_cond_name c) (r2 rs1) (r2 rs2) off
  | Load { width; unsigned; rd; rs1; imm } ->
    Printf.sprintf "%s %s, %Ld(%s)" (load_mnemonic ~width ~unsigned) (r2 rd) imm (r2 rs1)
  | Store { width; rs2; rs1; imm } ->
    Printf.sprintf "%s %s, %Ld(%s)" (store_mnemonic ~width) (r2 rs2) imm (r2 rs1)
  | Op_imm (Add, rd, rs1, imm) when Reg.to_int rs1 = 0 ->
    Printf.sprintf "li %s, %Ld" (r2 rd) imm
  | Op_imm (op, rd, rs1, imm) ->
    Printf.sprintf "%si %s, %s, %Ld" (alu_op_name op) (r2 rd) (r2 rs1) imm
  | Op_imm_w (op, rd, rs1, imm) ->
    Printf.sprintf "%si %s, %s, %Ld" (alu_w_op_name op) (r2 rd) (r2 rs1) imm
  | Op (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (alu_op_name op) (r2 rd) (r2 rs1) (r2 rs2)
  | Op_w (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (alu_w_op_name op) (r2 rd) (r2 rs1) (r2 rs2)
  | Mulop (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (mul_op_name op) (r2 rd) (r2 rs1) (r2 rs2)
  | Mulop_w (op, rd, rs1, rs2) ->
    Printf.sprintf "%s %s, %s, %s" (mul_w_op_name op) (r2 rd) (r2 rs1) (r2 rs2)
  | Load_ro { width; unsigned; rd; rs1; key } ->
    Printf.sprintf "%s.ro %s, (%s), %d" (load_mnemonic ~width ~unsigned) (r2 rd) (r2 rs1) key
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Fence -> "fence"

let pp fmt i = Format.pp_print_string fmt (to_string i)

let equal (a : t) (b : t) = a = b

(* Structural validity: immediates in range, shift amounts legal, keys
   within the PTE key width.  [Encode] refuses invalid instructions; this
   predicate lets tests and generators state the contract. *)
let valid = function
  | Lui (_, imm) | Auipc (_, imm) -> Roload_util.Bits.fits_unsigned imm ~width:20
  | Jal (_, off) ->
    Roload_util.Bits.fits_signed off ~width:21 && Int64.rem off 2L = 0L
  | Jalr (_, _, imm) -> Roload_util.Bits.fits_signed imm ~width:12
  | Branch (_, _, _, off) ->
    Roload_util.Bits.fits_signed off ~width:13 && Int64.rem off 2L = 0L
  | Load { width = Double; unsigned = true; _ } -> false (* no ldu *)
  | Load { imm; _ } | Store { imm; _ } -> Roload_util.Bits.fits_signed imm ~width:12
  | Op_imm ((Sll | Srl | Sra), _, _, imm) -> imm >= 0L && imm < 64L
  | Op_imm (Sub, _, _, _) -> false (* no subi; use addi with negated imm *)
  | Op_imm (_, _, _, imm) -> Roload_util.Bits.fits_signed imm ~width:12
  | Op_imm_w ((Sllw | Srlw | Sraw), _, _, imm) -> imm >= 0L && imm < 32L
  | Op_imm_w (Subw, _, _, _) -> false
  | Op_imm_w (Addw, _, _, imm) -> Roload_util.Bits.fits_signed imm ~width:12
  | Op _ | Op_w _ | Mulop _ | Mulop_w _ -> true
  | Load_ro { width = Double; unsigned = true; _ } -> false
  | Load_ro { key; _ } -> key >= 0 && key < 1024
  | Ecall | Ebreak | Fence -> true

let is_roload = function
  | Load_ro _ -> true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _ | Op_imm _
  | Op_imm_w _ | Op _ | Op_w _ | Mulop _ | Mulop_w _ | Ecall | Ebreak | Fence ->
    false

let is_control_flow = function
  | Jal _ | Jalr _ | Branch _ -> true
  | Lui _ | Auipc _ | Load _ | Store _ | Op_imm _ | Op_imm_w _ | Op _ | Op_w _
  | Mulop _ | Mulop_w _ | Load_ro _ | Ecall | Ebreak | Fence ->
    false

(* Convenience constructors used throughout codegen and tests. *)
let nop = Op_imm (Add, Reg.zero, Reg.zero, 0L)
let li rd imm = Op_imm (Add, rd, Reg.zero, imm)
let mv rd rs = Op_imm (Add, rd, rs, 0L)
let ret = Jalr (Reg.zero, Reg.ra, 0L)
let ld rd rs1 imm = Load { width = Double; unsigned = false; rd; rs1; imm }
let sd rs2 rs1 imm = Store { width = Double; rs2; rs1; imm }
let ld_ro rd rs1 key = Load_ro { width = Double; unsigned = false; rd; rs1; key }
