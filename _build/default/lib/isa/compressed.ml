(* RVC (compressed, 16-bit) encodings for the subset the assembler's
   compressor emits, plus the paper's c.ld.ro.

   c.ld.ro occupies the reserved funct3=100 slot of quadrant 0 (in the real
   RV64C map that slot is reserved), with the CL register format and a 5-bit
   key: key[4:2] in inst[12:10], key[1:0] in inst[6:5].  It expands to
   [ld.ro rd', (rs1'), key].

   Compression is only attempted for instructions whose encoding does not
   depend on code layout (no c.j / c.beqz / c.bnez), so the assembler can
   compress in a single pass before the linker assigns addresses.  c.jr /
   c.jalr are layout-independent and are included. *)

let bits w ~lo ~width = (w lsr lo) land ((1 lsl width) - 1)

let creg i = Reg.of_compressed_index i

let sign_extend_int v width =
  let shift = 64 - width in
  Int64.shift_right (Int64.shift_left (Int64.of_int v) shift) shift

(* ---------- decoding ---------- *)

let decode_q0 hw =
  let funct3 = bits hw ~lo:13 ~width:3 in
  let rd' = creg (bits hw ~lo:2 ~width:3) in
  let rs1' = creg (bits hw ~lo:7 ~width:3) in
  match funct3 with
  | 0 ->
    (* c.addi4spn: nzuimm[5:4|9:6|2|3] at inst[12:5] *)
    let imm =
      (bits hw ~lo:11 ~width:2 lsl 4)
      lor (bits hw ~lo:7 ~width:4 lsl 6)
      lor (bits hw ~lo:6 ~width:1 lsl 2)
      lor (bits hw ~lo:5 ~width:1 lsl 3)
    in
    if imm = 0 then Error "c.addi4spn: zero immediate (reserved)"
    else Ok (Inst.Op_imm (Inst.Add, rd', Reg.sp, Int64.of_int imm))
  | 2 ->
    (* c.lw: uimm[5:3] at [12:10], uimm[2] at [6], uimm[6] at [5] *)
    let imm =
      (bits hw ~lo:10 ~width:3 lsl 3)
      lor (bits hw ~lo:6 ~width:1 lsl 2)
      lor (bits hw ~lo:5 ~width:1 lsl 6)
    in
    Ok (Inst.Load { width = Inst.Word; unsigned = false; rd = rd'; rs1 = rs1';
                    imm = Int64.of_int imm })
  | 3 ->
    (* c.ld: uimm[5:3] at [12:10], uimm[7:6] at [6:5] *)
    let imm = (bits hw ~lo:10 ~width:3 lsl 3) lor (bits hw ~lo:5 ~width:2 lsl 6) in
    Ok (Inst.Load { width = Inst.Double; unsigned = false; rd = rd'; rs1 = rs1';
                    imm = Int64.of_int imm })
  | 4 ->
    (* c.ld.ro (ROLoad extension): key[4:2] at [12:10], key[1:0] at [6:5] *)
    let key = (bits hw ~lo:10 ~width:3 lsl 2) lor bits hw ~lo:5 ~width:2 in
    Ok (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = rd'; rs1 = rs1'; key })
  | 6 ->
    let imm =
      (bits hw ~lo:10 ~width:3 lsl 3)
      lor (bits hw ~lo:6 ~width:1 lsl 2)
      lor (bits hw ~lo:5 ~width:1 lsl 6)
    in
    Ok (Inst.Store { width = Inst.Word; rs2 = rd'; rs1 = rs1'; imm = Int64.of_int imm })
  | 7 ->
    let imm = (bits hw ~lo:10 ~width:3 lsl 3) lor (bits hw ~lo:5 ~width:2 lsl 6) in
    Ok (Inst.Store { width = Inst.Double; rs2 = rd'; rs1 = rs1'; imm = Int64.of_int imm })
  | f -> Error (Printf.sprintf "rvc q0: unsupported funct3 %d" f)

let decode_q1 hw =
  let funct3 = bits hw ~lo:13 ~width:3 in
  let rd = Reg.of_int (bits hw ~lo:7 ~width:5) in
  let imm6 () =
    sign_extend_int ((bits hw ~lo:12 ~width:1 lsl 5) lor bits hw ~lo:2 ~width:5) 6
  in
  match funct3 with
  | 0 ->
    (* c.nop / c.addi *)
    Ok (Inst.Op_imm (Inst.Add, rd, rd, imm6 ()))
  | 1 -> Ok (Inst.Op_imm_w (Inst.Addw, rd, rd, imm6 ())) (* c.addiw (RV64) *)
  | 2 -> Ok (Inst.Op_imm (Inst.Add, rd, Reg.zero, imm6 ())) (* c.li *)
  | 3 ->
    if Reg.to_int rd = 2 then begin
      (* c.addi16sp: nzimm[9] at [12]; [4|6|8:7|5] at [6:3] *)
      let v =
        (bits hw ~lo:12 ~width:1 lsl 9)
        lor (bits hw ~lo:6 ~width:1 lsl 4)
        lor (bits hw ~lo:5 ~width:1 lsl 6)
        lor (bits hw ~lo:3 ~width:2 lsl 7)
        lor (bits hw ~lo:2 ~width:1 lsl 5)
      in
      let imm = sign_extend_int v 10 in
      if imm = 0L then Error "c.addi16sp: zero immediate"
      else Ok (Inst.Op_imm (Inst.Add, Reg.sp, Reg.sp, imm))
    end
    else begin
      (* c.lui: imm[17] at [12], imm[16:12] at [6:2]; value is the 20-bit
         field, sign-extended into 20 bits *)
      let v = (bits hw ~lo:12 ~width:1 lsl 5) lor bits hw ~lo:2 ~width:5 in
      let imm = sign_extend_int v 6 in
      if imm = 0L then Error "c.lui: zero immediate"
      else Ok (Inst.Lui (rd, Int64.logand imm 0xFFFFFL))
    end
  | 4 -> (
    let rd' = creg (bits hw ~lo:7 ~width:3) in
    let rs2' = creg (bits hw ~lo:2 ~width:3) in
    match bits hw ~lo:10 ~width:2 with
    | 0 ->
      let shamt = (bits hw ~lo:12 ~width:1 lsl 5) lor bits hw ~lo:2 ~width:5 in
      Ok (Inst.Op_imm (Inst.Srl, rd', rd', Int64.of_int shamt))
    | 1 ->
      let shamt = (bits hw ~lo:12 ~width:1 lsl 5) lor bits hw ~lo:2 ~width:5 in
      Ok (Inst.Op_imm (Inst.Sra, rd', rd', Int64.of_int shamt))
    | 2 -> Ok (Inst.Op_imm (Inst.And, rd', rd', imm6 ()))
    | _ -> (
      match (bits hw ~lo:12 ~width:1, bits hw ~lo:5 ~width:2) with
      | 0, 0 -> Ok (Inst.Op (Inst.Sub, rd', rd', rs2'))
      | 0, 1 -> Ok (Inst.Op (Inst.Xor, rd', rd', rs2'))
      | 0, 2 -> Ok (Inst.Op (Inst.Or, rd', rd', rs2'))
      | 0, 3 -> Ok (Inst.Op (Inst.And, rd', rd', rs2'))
      | 1, 0 -> Ok (Inst.Op_w (Inst.Subw, rd', rd', rs2'))
      | 1, 1 -> Ok (Inst.Op_w (Inst.Addw, rd', rd', rs2'))
      | _ -> Error "rvc q1: reserved misc-alu"))
  | 5 ->
    (* c.j: offset[11|4|9:8|10|6|7|3:1|5] at [12:2] *)
    let v =
      (bits hw ~lo:12 ~width:1 lsl 11)
      lor (bits hw ~lo:11 ~width:1 lsl 4)
      lor (bits hw ~lo:9 ~width:2 lsl 8)
      lor (bits hw ~lo:8 ~width:1 lsl 10)
      lor (bits hw ~lo:7 ~width:1 lsl 6)
      lor (bits hw ~lo:6 ~width:1 lsl 7)
      lor (bits hw ~lo:3 ~width:3 lsl 1)
      lor (bits hw ~lo:2 ~width:1 lsl 5)
    in
    Ok (Inst.Jal (Reg.zero, sign_extend_int v 12))
  | 6 | 7 ->
    (* c.beqz / c.bnez: offset[8|4:3] at [12:10], [7:6|2:1|5] at [6:2] *)
    let rs1' = creg (bits hw ~lo:7 ~width:3) in
    let v =
      (bits hw ~lo:12 ~width:1 lsl 8)
      lor (bits hw ~lo:10 ~width:2 lsl 3)
      lor (bits hw ~lo:5 ~width:2 lsl 6)
      lor (bits hw ~lo:3 ~width:2 lsl 1)
      lor (bits hw ~lo:2 ~width:1 lsl 5)
    in
    let off = sign_extend_int v 9 in
    let cond = if funct3 = 6 then Inst.Beq else Inst.Bne in
    Ok (Inst.Branch (cond, rs1', Reg.zero, off))
  | _ -> assert false

let decode_q2 hw =
  let funct3 = bits hw ~lo:13 ~width:3 in
  let rd = Reg.of_int (bits hw ~lo:7 ~width:5) in
  let rs2 = Reg.of_int (bits hw ~lo:2 ~width:5) in
  match funct3 with
  | 0 ->
    let shamt = (bits hw ~lo:12 ~width:1 lsl 5) lor bits hw ~lo:2 ~width:5 in
    Ok (Inst.Op_imm (Inst.Sll, rd, rd, Int64.of_int shamt))
  | 2 ->
    (* c.lwsp: uimm[5] at [12], [4:2] at [6:4], [7:6] at [3:2] *)
    let imm =
      (bits hw ~lo:12 ~width:1 lsl 5)
      lor (bits hw ~lo:4 ~width:3 lsl 2)
      lor (bits hw ~lo:2 ~width:2 lsl 6)
    in
    if Reg.to_int rd = 0 then Error "c.lwsp: rd=0 reserved"
    else
      Ok (Inst.Load { width = Inst.Word; unsigned = false; rd; rs1 = Reg.sp;
                      imm = Int64.of_int imm })
  | 3 ->
    (* c.ldsp: uimm[5] at [12], [4:3] at [6:5], [8:6] at [4:2] *)
    let imm =
      (bits hw ~lo:12 ~width:1 lsl 5)
      lor (bits hw ~lo:5 ~width:2 lsl 3)
      lor (bits hw ~lo:2 ~width:3 lsl 6)
    in
    if Reg.to_int rd = 0 then Error "c.ldsp: rd=0 reserved"
    else
      Ok (Inst.Load { width = Inst.Double; unsigned = false; rd; rs1 = Reg.sp;
                      imm = Int64.of_int imm })
  | 4 -> (
    match (bits hw ~lo:12 ~width:1, Reg.to_int rd, Reg.to_int rs2) with
    | 0, 0, _ -> Error "rvc q2: reserved"
    | 0, _, 0 -> Ok (Inst.Jalr (Reg.zero, rd, 0L)) (* c.jr *)
    | 0, _, _ -> Ok (Inst.Op_imm (Inst.Add, rd, rs2, 0L)) (* c.mv *)
    | 1, 0, 0 -> Ok Inst.Ebreak
    | 1, _, 0 -> Ok (Inst.Jalr (Reg.ra, rd, 0L)) (* c.jalr *)
    | 1, _, _ -> Ok (Inst.Op (Inst.Add, rd, rd, rs2)) (* c.add *)
    | _ -> assert false)
  | 6 ->
    (* c.swsp: uimm[5:2] at [12:9], [7:6] at [8:7] *)
    let imm = (bits hw ~lo:9 ~width:4 lsl 2) lor (bits hw ~lo:7 ~width:2 lsl 6) in
    Ok (Inst.Store { width = Inst.Word; rs2; rs1 = Reg.sp; imm = Int64.of_int imm })
  | 7 ->
    (* c.sdsp: uimm[5:3] at [12:10], [8:6] at [9:7] *)
    let imm = (bits hw ~lo:10 ~width:3 lsl 3) lor (bits hw ~lo:7 ~width:3 lsl 6) in
    Ok (Inst.Store { width = Inst.Double; rs2; rs1 = Reg.sp; imm = Int64.of_int imm })
  | f -> Error (Printf.sprintf "rvc q2: unsupported funct3 %d" f)

let decode hw =
  let hw = hw land 0xFFFF in
  if hw = 0 then Error "illegal all-zero instruction"
  else
    match hw land 0x3 with
    | 0 -> decode_q0 hw
    | 1 -> decode_q1 hw
    | 2 -> decode_q2 hw
    | _ -> Error "not a compressed instruction"

(* ---------- compression ---------- *)

let q0 ~funct3 ~hi3 ~rs1' ~lo2 ~rd' =
  (funct3 lsl 13) lor (hi3 lsl 10) lor (Reg.compressed_index rs1' lsl 7)
  lor (lo2 lsl 5) lor (Reg.compressed_index rd' lsl 2)

let fits_uimm v ~width ~scale =
  v >= 0L && Int64.rem v (Int64.of_int scale) = 0L
  && Roload_util.Bits.fits_unsigned v ~width

let compress_load_store ~is_load ~width ~r ~rs1 ~imm =
  let imm_i = Int64.to_int imm in
  let sp_form () =
    if Reg.to_int rs1 <> 2 then None
    else
      match width with
      | Inst.Word when is_load && Reg.to_int r <> 0 && fits_uimm imm ~width:8 ~scale:4 ->
        Some
          ((2 lsl 13) lor (((imm_i lsr 5) land 1) lsl 12) lor (Reg.to_int r lsl 7)
           lor (((imm_i lsr 2) land 7) lsl 4) lor (((imm_i lsr 6) land 3) lsl 2) lor 2)
      | Inst.Double when is_load && Reg.to_int r <> 0 && fits_uimm imm ~width:9 ~scale:8 ->
        Some
          ((3 lsl 13) lor (((imm_i lsr 5) land 1) lsl 12) lor (Reg.to_int r lsl 7)
           lor (((imm_i lsr 3) land 3) lsl 5) lor (((imm_i lsr 6) land 7) lsl 2) lor 2)
      | Inst.Word when (not is_load) && fits_uimm imm ~width:8 ~scale:4 ->
        Some
          ((6 lsl 13) lor (((imm_i lsr 2) land 0xF) lsl 9)
           lor (((imm_i lsr 6) land 3) lsl 7) lor (Reg.to_int r lsl 2) lor 2)
      | Inst.Double when (not is_load) && fits_uimm imm ~width:9 ~scale:8 ->
        Some
          ((7 lsl 13) lor (((imm_i lsr 3) land 7) lsl 10)
           lor (((imm_i lsr 6) land 7) lsl 7) lor (Reg.to_int r lsl 2) lor 2)
      | Inst.Byte | Inst.Half | Inst.Word | Inst.Double -> None
  in
  let rs1' = rs1 in
  let reg_form () =
    if not (Reg.is_compressible r && Reg.is_compressible rs1) then None
    else
      match width with
      | Inst.Word when fits_uimm imm ~width:7 ~scale:4 ->
        let funct3 = if is_load then 2 else 6 in
        Some
          (q0 ~funct3 ~hi3:((imm_i lsr 3) land 7)
             ~rs1' ~lo2:((imm_i land 4) lsr 1 lor ((imm_i lsr 6) land 1)) ~rd':r)
      | Inst.Double when fits_uimm imm ~width:8 ~scale:8 ->
        let funct3 = if is_load then 3 else 7 in
        Some (q0 ~funct3 ~hi3:((imm_i lsr 3) land 7) ~rs1' ~lo2:((imm_i lsr 6) land 3) ~rd':r)
      | Inst.Byte | Inst.Half | Inst.Word | Inst.Double -> None
  in
  match sp_form () with Some w -> Some w | None -> reg_form ()

(* c.lw immediate scatter: uimm[5:3]→[12:10], uimm[2]→[6], uimm[6]→[5].
   The q0 helper above takes [hi3] = inst[12:10] and [lo2] = inst[6:5]. *)

let try_compress inst =
  match inst with
  | Inst.Load { width; unsigned = false; rd; rs1; imm } ->
    compress_load_store ~is_load:true ~width ~r:rd ~rs1 ~imm
  | Inst.Store { width; rs2; rs1; imm } ->
    compress_load_store ~is_load:false ~width ~r:rs2 ~rs1 ~imm
  | Inst.Load_ro { width = Inst.Double; unsigned = false; rd; rs1; key }
    when Reg.is_compressible rd && Reg.is_compressible rs1
         && Roload_ext.key_compressible key ->
    Some (q0 ~funct3:4 ~hi3:(key lsr 2) ~rs1':rs1 ~lo2:(key land 3) ~rd':rd)
  | Inst.Op_imm (Inst.Add, rd, rs1, imm) ->
    let rdn = Reg.to_int rd and rs1n = Reg.to_int rs1 in
    let imm_i = Int64.to_int imm in
    if rdn <> 0 && rs1n = rdn && imm <> 0L && Roload_util.Bits.fits_signed imm ~width:6
    then
      (* c.addi *)
      Some
        ((((imm_i lsr 5) land 1) lsl 12) lor (rdn lsl 7) lor ((imm_i land 0x1F) lsl 2) lor 1)
    else if rdn <> 0 && rs1n = 0 && Roload_util.Bits.fits_signed imm ~width:6 then
      (* c.li *)
      Some
        ((2 lsl 13) lor (((imm_i lsr 5) land 1) lsl 12) lor (rdn lsl 7)
         lor ((imm_i land 0x1F) lsl 2) lor 1)
    else if rdn <> 0 && rs1n <> 0 && imm = 0L then
      (* c.mv *)
      Some ((4 lsl 13) lor (rdn lsl 7) lor (rs1n lsl 2) lor 2)
    else if rdn = 2 && rs1n = 2 && imm <> 0L && Int64.rem imm 16L = 0L
            && Roload_util.Bits.fits_signed imm ~width:10 then
      (* c.addi16sp *)
      Some
        ((3 lsl 13) lor (((imm_i lsr 9) land 1) lsl 12) lor (2 lsl 7)
         lor (((imm_i lsr 4) land 1) lsl 6) lor (((imm_i lsr 6) land 1) lsl 5)
         lor (((imm_i lsr 7) land 3) lsl 3) lor (((imm_i lsr 5) land 1) lsl 2) lor 1)
    else if Reg.is_compressible rd && rs1n = 2 && imm > 0L && Int64.rem imm 4L = 0L
            && Roload_util.Bits.fits_unsigned imm ~width:10 then
      (* c.addi4spn *)
      Some
        ((((imm_i lsr 4) land 3) lsl 11) lor (((imm_i lsr 6) land 0xF) lsl 7)
         lor (((imm_i lsr 2) land 1) lsl 6) lor (((imm_i lsr 3) land 1) lsl 5)
         lor (Reg.compressed_index rd lsl 2) lor 0)
    else None
  | Inst.Op_imm (Inst.And, rd, rs1, imm)
    when Reg.equal rd rs1 && Reg.is_compressible rd
         && Roload_util.Bits.fits_signed imm ~width:6 ->
    let imm_i = Int64.to_int imm in
    Some
      ((4 lsl 13) lor (((imm_i lsr 5) land 1) lsl 12) lor (2 lsl 10)
       lor (Reg.compressed_index rd lsl 7) lor ((imm_i land 0x1F) lsl 2) lor 1)
  | Inst.Op_imm (Inst.Sll, rd, rs1, imm)
    when Reg.equal rd rs1 && Reg.to_int rd <> 0 && imm > 0L && imm < 64L ->
    let s = Int64.to_int imm in
    Some ((((s lsr 5) land 1) lsl 12) lor (Reg.to_int rd lsl 7) lor ((s land 0x1F) lsl 2) lor 2)
  | Inst.Op_imm ((Inst.Srl | Inst.Sra) as op, rd, rs1, imm)
    when Reg.equal rd rs1 && Reg.is_compressible rd && imm > 0L && imm < 64L ->
    let s = Int64.to_int imm in
    let sel = if op = Inst.Srl then 0 else 1 in
    Some
      ((4 lsl 13) lor (((s lsr 5) land 1) lsl 12) lor (sel lsl 10)
       lor (Reg.compressed_index rd lsl 7) lor ((s land 0x1F) lsl 2) lor 1)
  | Inst.Op_imm_w (Inst.Addw, rd, rs1, imm)
    when Reg.equal rd rs1 && Reg.to_int rd <> 0
         && Roload_util.Bits.fits_signed imm ~width:6 ->
    let imm_i = Int64.to_int imm in
    Some
      ((1 lsl 13) lor (((imm_i lsr 5) land 1) lsl 12) lor (Reg.to_int rd lsl 7)
       lor ((imm_i land 0x1F) lsl 2) lor 1)
  | Inst.Lui (rd, imm) when Reg.to_int rd <> 0 && Reg.to_int rd <> 2 ->
    (* c.lui accepts a 6-bit signed field value (non-zero). *)
    let field = Roload_util.Bits.sign_extend imm ~width:20 in
    if field <> 0L && Roload_util.Bits.fits_signed field ~width:6 then
      let v = Int64.to_int (Int64.logand field 0x3FL) in
      Some
        ((3 lsl 13) lor (((v lsr 5) land 1) lsl 12) lor (Reg.to_int rd lsl 7)
         lor ((v land 0x1F) lsl 2) lor 1)
    else None
  | Inst.Op ((Inst.Sub | Inst.Xor | Inst.Or | Inst.And) as op, rd, rs1, rs2)
    when Reg.equal rd rs1 && Reg.is_compressible rd && Reg.is_compressible rs2 ->
    let sel =
      match op with
      | Inst.Sub -> 0
      | Inst.Xor -> 1
      | Inst.Or -> 2
      | Inst.And -> 3
      | Inst.Add | Inst.Sll | Inst.Slt | Inst.Sltu | Inst.Srl | Inst.Sra -> assert false
    in
    Some
      ((4 lsl 13) lor (3 lsl 10) lor (Reg.compressed_index rd lsl 7) lor (sel lsl 5)
       lor (Reg.compressed_index rs2 lsl 2) lor 1)
  | Inst.Op (Inst.Add, rd, rs1, rs2) when Reg.to_int rd <> 0 && Reg.to_int rs2 <> 0 ->
    if Reg.equal rd rs1 then
      Some ((4 lsl 13) lor (1 lsl 12) lor (Reg.to_int rd lsl 7) lor (Reg.to_int rs2 lsl 2) lor 2)
    else None
  | Inst.Op_w ((Inst.Subw | Inst.Addw) as op, rd, rs1, rs2)
    when Reg.equal rd rs1 && Reg.is_compressible rd && Reg.is_compressible rs2 ->
    let sel = if op = Inst.Subw then 0 else 1 in
    Some
      ((4 lsl 13) lor (1 lsl 12) lor (3 lsl 10) lor (Reg.compressed_index rd lsl 7)
       lor (sel lsl 5) lor (Reg.compressed_index rs2 lsl 2) lor 1)
  | Inst.Jalr (rd, rs1, 0L) when Reg.to_int rs1 <> 0 -> (
    match Reg.to_int rd with
    | 0 -> Some ((4 lsl 13) lor (Reg.to_int rs1 lsl 7) lor 2) (* c.jr *)
    | 1 -> Some ((4 lsl 13) lor (1 lsl 12) lor (Reg.to_int rs1 lsl 7) lor 2) (* c.jalr *)
    | _ -> None)
  | Inst.Ebreak -> Some ((4 lsl 13) lor (1 lsl 12) lor 2)
  | Inst.Lui _ | Inst.Auipc _ | Inst.Jal _ | Inst.Jalr _ | Inst.Branch _
  | Inst.Load _ | Inst.Load_ro _ | Inst.Op_imm _ | Inst.Op_imm_w _ | Inst.Op _
  | Inst.Op_w _ | Inst.Mulop _ | Inst.Mulop_w _ | Inst.Ecall | Inst.Fence ->
    None

let encode_bytes hw =
  let b = Bytes.create 2 in
  Bytes.set_uint8 b 0 (hw land 0xFF);
  Bytes.set_uint8 b 1 ((hw lsr 8) land 0xFF);
  Bytes.to_string b
