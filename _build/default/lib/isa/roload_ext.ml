(* Encoding-level definition of the ROLoad ISA extension (paper §III-A).

   The ld.ro family reuses the LOAD funct3 space under the RISC-V custom-0
   opcode.  The 12-bit I-type immediate no longer carries an address offset;
   its low 10 bits carry the page key compared against the PTE/TLB key field
   (the reserved top 10 bits of an Sv39 PTE).  c.ld.ro lives in the reserved
   funct3=100 slot of RVC quadrant 0 and can express keys 0..31. *)

let opcode = 0x0B (* custom-0 *)

let key_bits = 10
let max_key = (1 lsl key_bits) - 1

let compressed_key_bits = 5
let max_compressed_key = (1 lsl compressed_key_bits) - 1

let key_in_range key = key >= 0 && key <= max_key
let key_compressible key = key >= 0 && key <= max_compressed_key

(* Key conventions used by the defense applications built on top.  Keys are
   plain integers; the meanings below are a software contract, not hardware
   behaviour (the paper: "the actual meanings of the keys are defined by
   security applications"). *)

let key_default = 0 (* ordinary read-only data, no specific class *)
let key_vtable_unified = 1 (* ICall's single key for all vtables *)
let first_type_key = 2 (* per-type keys are allocated upwards from here *)
let key_return_sites = max_key (* the backward-edge allowlist (§IV-C) *)
