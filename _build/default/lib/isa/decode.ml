(* 32-bit instruction decoding.  Inverse of [Encode] on the supported
   subset; anything else is [Error _], which the machine raises as an
   illegal-instruction trap. *)

let bits w ~lo ~width = (w lsr lo) land ((1 lsl width) - 1)

let sign_extend_int v width =
  let shift = 64 - width in
  Int64.shift_right (Int64.shift_left (Int64.of_int v) shift) shift

let reg_of i = Reg.of_int i

let i_imm w = sign_extend_int (bits w ~lo:20 ~width:12) 12

let s_imm w =
  sign_extend_int ((bits w ~lo:25 ~width:7 lsl 5) lor bits w ~lo:7 ~width:5) 12

let b_imm w =
  let v =
    (bits w ~lo:31 ~width:1 lsl 12)
    lor (bits w ~lo:7 ~width:1 lsl 11)
    lor (bits w ~lo:25 ~width:6 lsl 5)
    lor (bits w ~lo:8 ~width:4 lsl 1)
  in
  sign_extend_int v 13

let u_imm w = Int64.of_int (bits w ~lo:12 ~width:20)

let j_imm w =
  let v =
    (bits w ~lo:31 ~width:1 lsl 20)
    lor (bits w ~lo:12 ~width:8 lsl 12)
    lor (bits w ~lo:20 ~width:1 lsl 11)
    lor (bits w ~lo:21 ~width:10 lsl 1)
  in
  sign_extend_int v 21

let load_width_of_funct3 = function
  | 0 -> Ok (Inst.Byte, false)
  | 1 -> Ok (Inst.Half, false)
  | 2 -> Ok (Inst.Word, false)
  | 3 -> Ok (Inst.Double, false)
  | 4 -> Ok (Inst.Byte, true)
  | 5 -> Ok (Inst.Half, true)
  | 6 -> Ok (Inst.Word, true)
  | f -> Error (Printf.sprintf "load: bad funct3 %d" f)

let branch_cond_of_funct3 = function
  | 0 -> Ok Inst.Beq
  | 1 -> Ok Inst.Bne
  | 4 -> Ok Inst.Blt
  | 5 -> Ok Inst.Bge
  | 6 -> Ok Inst.Bltu
  | 7 -> Ok Inst.Bgeu
  | f -> Error (Printf.sprintf "branch: bad funct3 %d" f)

let ( let* ) r f = Result.bind r f

let decode w =
  let opcode = bits w ~lo:0 ~width:7 in
  let rd = reg_of (bits w ~lo:7 ~width:5) in
  let funct3 = bits w ~lo:12 ~width:3 in
  let rs1 = reg_of (bits w ~lo:15 ~width:5) in
  let rs2 = reg_of (bits w ~lo:20 ~width:5) in
  let funct7 = bits w ~lo:25 ~width:7 in
  match opcode with
  | 0x37 -> Ok (Inst.Lui (rd, u_imm w))
  | 0x17 -> Ok (Inst.Auipc (rd, u_imm w))
  | 0x6F -> Ok (Inst.Jal (rd, j_imm w))
  | 0x67 ->
    if funct3 <> 0 then Error "jalr: bad funct3"
    else Ok (Inst.Jalr (rd, rs1, i_imm w))
  | 0x63 ->
    let* c = branch_cond_of_funct3 funct3 in
    Ok (Inst.Branch (c, rs1, rs2, b_imm w))
  | 0x03 ->
    let* width, unsigned = load_width_of_funct3 funct3 in
    Ok (Inst.Load { width; unsigned; rd; rs1; imm = i_imm w })
  | 0x0B ->
    (* ROLoad family: custom-0; imm[9:0] is the key, imm[11:10] must be 0. *)
    let* width, unsigned = load_width_of_funct3 funct3 in
    let raw = bits w ~lo:20 ~width:12 in
    if raw land 0xC00 <> 0 then Error "ld.ro: reserved key bits set"
    else Ok (Inst.Load_ro { width; unsigned; rd; rs1; key = raw land 0x3FF })
  | 0x23 -> (
    let imm = s_imm w in
    match funct3 with
    | 0 -> Ok (Inst.Store { width = Inst.Byte; rs2; rs1; imm })
    | 1 -> Ok (Inst.Store { width = Inst.Half; rs2; rs1; imm })
    | 2 -> Ok (Inst.Store { width = Inst.Word; rs2; rs1; imm })
    | 3 -> Ok (Inst.Store { width = Inst.Double; rs2; rs1; imm })
    | f -> Error (Printf.sprintf "store: bad funct3 %d" f))
  | 0x13 -> (
    match funct3 with
    | 0 -> Ok (Inst.Op_imm (Inst.Add, rd, rs1, i_imm w))
    | 2 -> Ok (Inst.Op_imm (Inst.Slt, rd, rs1, i_imm w))
    | 3 -> Ok (Inst.Op_imm (Inst.Sltu, rd, rs1, i_imm w))
    | 4 -> Ok (Inst.Op_imm (Inst.Xor, rd, rs1, i_imm w))
    | 6 -> Ok (Inst.Op_imm (Inst.Or, rd, rs1, i_imm w))
    | 7 -> Ok (Inst.Op_imm (Inst.And, rd, rs1, i_imm w))
    | 1 ->
      let top = bits w ~lo:26 ~width:6 in
      if top <> 0 then Error "slli: bad funct6"
      else Ok (Inst.Op_imm (Inst.Sll, rd, rs1, Int64.of_int (bits w ~lo:20 ~width:6)))
    | 5 -> (
      let top = bits w ~lo:26 ~width:6 in
      let shamt = Int64.of_int (bits w ~lo:20 ~width:6) in
      match top with
      | 0x00 -> Ok (Inst.Op_imm (Inst.Srl, rd, rs1, shamt))
      | 0x10 -> Ok (Inst.Op_imm (Inst.Sra, rd, rs1, shamt))
      | _ -> Error "srli/srai: bad funct6")
    | _ -> Error "op-imm: bad funct3")
  | 0x1B -> (
    match funct3 with
    | 0 -> Ok (Inst.Op_imm_w (Inst.Addw, rd, rs1, i_imm w))
    | 1 ->
      if funct7 <> 0 then Error "slliw: bad funct7"
      else Ok (Inst.Op_imm_w (Inst.Sllw, rd, rs1, Int64.of_int (bits w ~lo:20 ~width:5)))
    | 5 -> (
      let shamt = Int64.of_int (bits w ~lo:20 ~width:5) in
      match funct7 with
      | 0x00 -> Ok (Inst.Op_imm_w (Inst.Srlw, rd, rs1, shamt))
      | 0x20 -> Ok (Inst.Op_imm_w (Inst.Sraw, rd, rs1, shamt))
      | _ -> Error "srliw/sraiw: bad funct7")
    | _ -> Error "op-imm-32: bad funct3")
  | 0x33 -> (
    match (funct7, funct3) with
    | 0x00, 0 -> Ok (Inst.Op (Inst.Add, rd, rs1, rs2))
    | 0x20, 0 -> Ok (Inst.Op (Inst.Sub, rd, rs1, rs2))
    | 0x00, 1 -> Ok (Inst.Op (Inst.Sll, rd, rs1, rs2))
    | 0x00, 2 -> Ok (Inst.Op (Inst.Slt, rd, rs1, rs2))
    | 0x00, 3 -> Ok (Inst.Op (Inst.Sltu, rd, rs1, rs2))
    | 0x00, 4 -> Ok (Inst.Op (Inst.Xor, rd, rs1, rs2))
    | 0x00, 5 -> Ok (Inst.Op (Inst.Srl, rd, rs1, rs2))
    | 0x20, 5 -> Ok (Inst.Op (Inst.Sra, rd, rs1, rs2))
    | 0x00, 6 -> Ok (Inst.Op (Inst.Or, rd, rs1, rs2))
    | 0x00, 7 -> Ok (Inst.Op (Inst.And, rd, rs1, rs2))
    | 0x01, 0 -> Ok (Inst.Mulop (Inst.Mul, rd, rs1, rs2))
    | 0x01, 1 -> Ok (Inst.Mulop (Inst.Mulh, rd, rs1, rs2))
    | 0x01, 2 -> Ok (Inst.Mulop (Inst.Mulhsu, rd, rs1, rs2))
    | 0x01, 3 -> Ok (Inst.Mulop (Inst.Mulhu, rd, rs1, rs2))
    | 0x01, 4 -> Ok (Inst.Mulop (Inst.Div, rd, rs1, rs2))
    | 0x01, 5 -> Ok (Inst.Mulop (Inst.Divu, rd, rs1, rs2))
    | 0x01, 6 -> Ok (Inst.Mulop (Inst.Rem, rd, rs1, rs2))
    | 0x01, 7 -> Ok (Inst.Mulop (Inst.Remu, rd, rs1, rs2))
    | _ -> Error "op: bad funct7/funct3")
  | 0x3B -> (
    match (funct7, funct3) with
    | 0x00, 0 -> Ok (Inst.Op_w (Inst.Addw, rd, rs1, rs2))
    | 0x20, 0 -> Ok (Inst.Op_w (Inst.Subw, rd, rs1, rs2))
    | 0x00, 1 -> Ok (Inst.Op_w (Inst.Sllw, rd, rs1, rs2))
    | 0x00, 5 -> Ok (Inst.Op_w (Inst.Srlw, rd, rs1, rs2))
    | 0x20, 5 -> Ok (Inst.Op_w (Inst.Sraw, rd, rs1, rs2))
    | 0x01, 0 -> Ok (Inst.Mulop_w (Inst.Mulw, rd, rs1, rs2))
    | 0x01, 4 -> Ok (Inst.Mulop_w (Inst.Divw, rd, rs1, rs2))
    | 0x01, 5 -> Ok (Inst.Mulop_w (Inst.Divuw, rd, rs1, rs2))
    | 0x01, 6 -> Ok (Inst.Mulop_w (Inst.Remw, rd, rs1, rs2))
    | 0x01, 7 -> Ok (Inst.Mulop_w (Inst.Remuw, rd, rs1, rs2))
    | _ -> Error "op-32: bad funct7/funct3")
  | 0x73 -> (
    match bits w ~lo:7 ~width:25 with
    | 0 -> Ok Inst.Ecall
    | v when v = 1 lsl 13 -> Ok Inst.Ebreak
    | _ -> Error "system: unsupported")
  | 0x0F -> Ok Inst.Fence
  | op -> Error (Printf.sprintf "unknown opcode 0x%02x" op)

let is_compressed_halfword hw = hw land 0x3 <> 0x3
