(* Disassembly of raw instruction streams, used by the linker's map files
   and by debugging output. *)

type item = {
  addr : int;
  size : int; (* 2 or 4 bytes *)
  text : string;
}

let u16_le s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let decode_at s off =
  if off + 2 > String.length s then Error "truncated instruction"
  else
    let hw = u16_le s off in
    if Decode.is_compressed_halfword hw then
      match Compressed.decode hw with
      | Ok inst -> Ok (inst, 2)
      | Error e -> Error e
    else if off + 4 > String.length s then Error "truncated 32-bit instruction"
    else
      let w = hw lor (u16_le s (off + 2) lsl 16) in
      match Decode.decode w with
      | Ok inst -> Ok (inst, 4)
      | Error e -> Error e

let disassemble ?(base = 0) code =
  let n = String.length code in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      match decode_at code off with
      | Ok (inst, size) ->
        let item = { addr = base + off; size; text = Inst.to_string inst } in
        go (off + size) (item :: acc)
      | Error e ->
        let item = { addr = base + off; size = 2; text = "<invalid: " ^ e ^ ">" } in
        go (off + 2) (item :: acc)
  in
  go 0 []

let to_string ?base code =
  disassemble ?base code
  |> List.map (fun { addr; size; text } ->
         Printf.sprintf "%8x:  %s%s" addr (if size = 2 then "(c) " else "    ") text)
  |> String.concat "\n"
