(** 32-bit instruction decoding — inverse of {!Encode} on the supported
    subset. Undecodable words are [Error _] and surface as
    illegal-instruction traps in the machine. *)

val decode : int -> (Inst.t, string) result

val is_compressed_halfword : int -> bool
(** Whether a 16-bit fetch parcel starts a compressed instruction (its low
    two bits differ from [0b11]). *)
