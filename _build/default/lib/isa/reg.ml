(* Integer register file names for RV64.  A register is its index 0..31;
   the smart constructor enforces the range. *)

type t = int

let of_int i =
  if i < 0 || i > 31 then invalid_arg "Reg.of_int";
  i

let to_int r = r

let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let fp = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let s8 = 24
let s9 = 25
let s10 = 26
let s11 = 27
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

let abi_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1";
     "a2"; "a3"; "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let name r = abi_names.(r)

let of_name s =
  let rec find i =
    if i >= 32 then None
    else if abi_names.(i) = s then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some r -> Some r
  | None ->
    if s = "fp" then Some fp
    else if String.length s >= 2 && s.[0] = 'x' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 && i <= 31 -> Some i
      | Some _ | None -> None
    else None

(* Registers usable by compressed (RVC) instructions: x8..x15. *)
let is_compressible r = r >= 8 && r <= 15

let compressed_index r =
  if not (is_compressible r) then invalid_arg "Reg.compressed_index";
  r - 8

let of_compressed_index i =
  if i < 0 || i > 7 then invalid_arg "Reg.of_compressed_index";
  i + 8

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let pp fmt r = Format.pp_print_string fmt (name r)

(* Calling-convention classification used by the register allocator. *)
let caller_saved = [ ra; t0; t1; t2; a0; a1; a2; a3; a4; a5; a6; a7; t3; t4; t5; t6 ]
let callee_saved = [ s0; s1; s2; s3; s4; s5; s6; s7; s8; s9; s10; s11 ]
let argument_regs = [ a0; a1; a2; a3; a4; a5; a6; a7 ]
