(** RV64 integer registers, identified by index 0..31. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] outside 0..31. *)

val to_int : t -> int

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val fp : t
val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

val name : t -> string
(** ABI name, e.g. ["a0"]. *)

val of_name : string -> t option
(** Accepts ABI names ("a0", "fp") and numeric names ("x10"). *)

val is_compressible : t -> bool
(** Whether the register is addressable by 3-bit RVC register fields
    (x8..x15). *)

val compressed_index : t -> int
val of_compressed_index : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val caller_saved : t list
val callee_saved : t list
val argument_regs : t list
