(** RVC (16-bit) encodings for the compressible subset, including the
    paper's [c.ld.ro] (reserved funct3=100 slot of quadrant 0, 5-bit key).

    Only layout-independent instructions are compressed (no [c.j] /
    [c.beqz] / [c.bnez]), so the assembler can compress in one pass before
    the linker assigns addresses. *)

val decode : int -> (Inst.t, string) result
(** Decode a 16-bit parcel to its expanded 32-bit-equivalent instruction.
    The all-zero parcel is illegal, per the RISC-V spec. *)

val try_compress : Inst.t -> int option
(** [try_compress inst] is the 16-bit encoding when one exists in the
    supported subset, and [None] otherwise.  Guarantee:
    [decode (try_compress i) = Ok i'] where [i'] has identical semantics
    (it may normalize, e.g. [c.mv] expands to [addi]). *)

val encode_bytes : int -> string
(** Little-endian 2-byte rendering. *)
