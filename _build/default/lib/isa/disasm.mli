(** Disassembly of raw little-endian instruction streams (mixed 16/32-bit
    parcels). *)

type item = { addr : int; size : int; text : string }

val decode_at : string -> int -> (Inst.t * int, string) result
(** [decode_at code off] decodes the instruction starting at byte [off],
    returning it with its size in bytes (2 or 4). *)

val disassemble : ?base:int -> string -> item list
(** Linear sweep from offset 0; undecodable parcels become
    [<invalid: …>] items of size 2. [base] offsets the printed
    addresses. *)

val to_string : ?base:int -> string -> string
