(* 32-bit instruction encoding (RV64IM + ROLoad custom-0).  Words are
   represented as native [int]s holding the 32-bit pattern in the low bits. *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let opcode_load = 0x03
let opcode_misc_mem = 0x0F
let opcode_op_imm = 0x13
let opcode_auipc = 0x17
let opcode_op_imm_32 = 0x1B
let opcode_store = 0x23
let opcode_op = 0x33
let opcode_lui = 0x37
let opcode_op_32 = 0x3B
let opcode_branch = 0x63
let opcode_jalr = 0x67
let opcode_jal = 0x6F
let opcode_system = 0x73

let reg r = Reg.to_int r

let check_simm name imm width =
  if not (Roload_util.Bits.fits_signed imm ~width) then
    invalid "%s: immediate %Ld out of %d-bit signed range" name imm width

let imm12_of imm = Int64.to_int (Int64.logand imm 0xFFFL)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  (funct7 lsl 25) lor (reg rs2 lsl 20) lor (reg rs1 lsl 15) lor (funct3 lsl 12)
  lor (reg rd lsl 7) lor opcode

let i_type ~imm12 ~rs1 ~funct3 ~rd ~opcode =
  ((imm12 land 0xFFF) lsl 20) lor (reg rs1 lsl 15) lor (funct3 lsl 12)
  lor (reg rd lsl 7) lor opcode

let s_type ~imm12 ~rs2 ~rs1 ~funct3 ~opcode =
  let imm = imm12 land 0xFFF in
  ((imm lsr 5) lsl 25) lor (reg rs2 lsl 20) lor (reg rs1 lsl 15)
  lor (funct3 lsl 12) lor ((imm land 0x1F) lsl 7) lor opcode

let b_type ~offset ~rs2 ~rs1 ~funct3 ~opcode =
  let imm = Int64.to_int (Int64.logand offset 0x1FFEL) in
  let bit12 = (imm lsr 12) land 1 in
  let bits10_5 = (imm lsr 5) land 0x3F in
  let bits4_1 = (imm lsr 1) land 0xF in
  let bit11 = (imm lsr 11) land 1 in
  (bit12 lsl 31) lor (bits10_5 lsl 25) lor (reg rs2 lsl 20) lor (reg rs1 lsl 15)
  lor (funct3 lsl 12) lor (bits4_1 lsl 8) lor (bit11 lsl 7) lor opcode

let u_type ~imm20 ~rd ~opcode =
  ((Int64.to_int imm20 land 0xFFFFF) lsl 12) lor (reg rd lsl 7) lor opcode

let j_type ~offset ~rd ~opcode =
  let imm = Int64.to_int (Int64.logand offset 0x1FFFFEL) in
  let bit20 = (imm lsr 20) land 1 in
  let bits10_1 = (imm lsr 1) land 0x3FF in
  let bit11 = (imm lsr 11) land 1 in
  let bits19_12 = (imm lsr 12) land 0xFF in
  (bit20 lsl 31) lor (bits10_1 lsl 21) lor (bit11 lsl 20) lor (bits19_12 lsl 12)
  lor (reg rd lsl 7) lor opcode

let load_funct3 ~width ~unsigned =
  match (width, unsigned) with
  | Inst.Byte, false -> 0
  | Inst.Half, false -> 1
  | Inst.Word, false -> 2
  | Inst.Double, false -> 3
  | Inst.Byte, true -> 4
  | Inst.Half, true -> 5
  | Inst.Word, true -> 6
  | Inst.Double, true -> invalid "no unsigned 64-bit load"

let store_funct3 = function
  | Inst.Byte -> 0
  | Inst.Half -> 1
  | Inst.Word -> 2
  | Inst.Double -> 3

let branch_funct3 = function
  | Inst.Beq -> 0
  | Inst.Bne -> 1
  | Inst.Blt -> 4
  | Inst.Bge -> 5
  | Inst.Bltu -> 6
  | Inst.Bgeu -> 7

let alu_funct = function
  | Inst.Add -> (0, 0x00)
  | Inst.Sub -> (0, 0x20)
  | Inst.Sll -> (1, 0x00)
  | Inst.Slt -> (2, 0x00)
  | Inst.Sltu -> (3, 0x00)
  | Inst.Xor -> (4, 0x00)
  | Inst.Srl -> (5, 0x00)
  | Inst.Sra -> (5, 0x20)
  | Inst.Or -> (6, 0x00)
  | Inst.And -> (7, 0x00)

let alu_w_funct = function
  | Inst.Addw -> (0, 0x00)
  | Inst.Subw -> (0, 0x20)
  | Inst.Sllw -> (1, 0x00)
  | Inst.Srlw -> (5, 0x00)
  | Inst.Sraw -> (5, 0x20)

let mul_funct3 = function
  | Inst.Mul -> 0
  | Inst.Mulh -> 1
  | Inst.Mulhsu -> 2
  | Inst.Mulhu -> 3
  | Inst.Div -> 4
  | Inst.Divu -> 5
  | Inst.Rem -> 6
  | Inst.Remu -> 7

let mul_w_funct3 = function
  | Inst.Mulw -> 0
  | Inst.Divw -> 4
  | Inst.Divuw -> 5
  | Inst.Remw -> 6
  | Inst.Remuw -> 7

let encode inst =
  match inst with
  | Inst.Lui (rd, imm) ->
    if not (Roload_util.Bits.fits_unsigned imm ~width:20) then
      invalid "lui: immediate %Ld out of 20-bit range" imm;
    u_type ~imm20:imm ~rd ~opcode:opcode_lui
  | Inst.Auipc (rd, imm) ->
    if not (Roload_util.Bits.fits_unsigned imm ~width:20) then
      invalid "auipc: immediate %Ld out of 20-bit range" imm;
    u_type ~imm20:imm ~rd ~opcode:opcode_auipc
  | Inst.Jal (rd, off) ->
    check_simm "jal" off 21;
    if Int64.rem off 2L <> 0L then invalid "jal: odd offset %Ld" off;
    j_type ~offset:off ~rd ~opcode:opcode_jal
  | Inst.Jalr (rd, rs1, imm) ->
    check_simm "jalr" imm 12;
    i_type ~imm12:(imm12_of imm) ~rs1 ~funct3:0 ~rd ~opcode:opcode_jalr
  | Inst.Branch (c, rs1, rs2, off) ->
    check_simm "branch" off 13;
    if Int64.rem off 2L <> 0L then invalid "branch: odd offset %Ld" off;
    b_type ~offset:off ~rs2 ~rs1 ~funct3:(branch_funct3 c) ~opcode:opcode_branch
  | Inst.Load { width; unsigned; rd; rs1; imm } ->
    check_simm "load" imm 12;
    i_type ~imm12:(imm12_of imm) ~rs1 ~funct3:(load_funct3 ~width ~unsigned) ~rd
      ~opcode:opcode_load
  | Inst.Store { width; rs2; rs1; imm } ->
    check_simm "store" imm 12;
    s_type ~imm12:(imm12_of imm) ~rs2 ~rs1 ~funct3:(store_funct3 width)
      ~opcode:opcode_store
  | Inst.Op_imm (op, rd, rs1, imm) -> (
    match op with
    | Inst.Sub -> invalid "no subi instruction"
    | Inst.Sll | Inst.Srl | Inst.Sra ->
      if imm < 0L || imm > 63L then invalid "shift amount %Ld out of range" imm;
      let funct3, funct7 = alu_funct op in
      let shamt = Int64.to_int imm in
      i_type
        ~imm12:(((funct7 lsr 1) lsl 6 lor shamt) land 0xFFF)
        ~rs1 ~funct3 ~rd ~opcode:opcode_op_imm
    | Inst.Add | Inst.Slt | Inst.Sltu | Inst.Xor | Inst.Or | Inst.And ->
      check_simm "op-imm" imm 12;
      let funct3, _ = alu_funct op in
      i_type ~imm12:(imm12_of imm) ~rs1 ~funct3 ~rd ~opcode:opcode_op_imm)
  | Inst.Op_imm_w (op, rd, rs1, imm) -> (
    match op with
    | Inst.Subw -> invalid "no subiw instruction"
    | Inst.Sllw | Inst.Srlw | Inst.Sraw ->
      if imm < 0L || imm > 31L then invalid "shift amount %Ld out of range" imm;
      let funct3, funct7 = alu_w_funct op in
      let shamt = Int64.to_int imm in
      i_type ~imm12:((funct7 lsl 5 lor shamt) land 0xFFF) ~rs1 ~funct3 ~rd
        ~opcode:opcode_op_imm_32
    | Inst.Addw ->
      check_simm "addiw" imm 12;
      i_type ~imm12:(imm12_of imm) ~rs1 ~funct3:0 ~rd ~opcode:opcode_op_imm_32)
  | Inst.Op (op, rd, rs1, rs2) ->
    let funct3, funct7 = alu_funct op in
    r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:opcode_op
  | Inst.Op_w (op, rd, rs1, rs2) ->
    let funct3, funct7 = alu_w_funct op in
    r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode:opcode_op_32
  | Inst.Mulop (op, rd, rs1, rs2) ->
    r_type ~funct7:1 ~rs2 ~rs1 ~funct3:(mul_funct3 op) ~rd ~opcode:opcode_op
  | Inst.Mulop_w (op, rd, rs1, rs2) ->
    r_type ~funct7:1 ~rs2 ~rs1 ~funct3:(mul_w_funct3 op) ~rd ~opcode:opcode_op_32
  | Inst.Load_ro { width; unsigned; rd; rs1; key } ->
    if not (Roload_ext.key_in_range key) then invalid "ld.ro: key %d out of range" key;
    i_type ~imm12:key ~rs1 ~funct3:(load_funct3 ~width ~unsigned) ~rd
      ~opcode:Roload_ext.opcode
  | Inst.Ecall -> i_type ~imm12:0 ~rs1:Reg.zero ~funct3:0 ~rd:Reg.zero ~opcode:opcode_system
  | Inst.Ebreak -> i_type ~imm12:1 ~rs1:Reg.zero ~funct3:0 ~rd:Reg.zero ~opcode:opcode_system
  | Inst.Fence -> i_type ~imm12:0 ~rs1:Reg.zero ~funct3:0 ~rd:Reg.zero ~opcode:opcode_misc_mem

let encode_bytes inst =
  let w = encode inst in
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (w land 0xFF);
  Bytes.set_uint8 b 1 ((w lsr 8) land 0xFF);
  Bytes.set_uint8 b 2 ((w lsr 16) land 0xFF);
  Bytes.set_uint8 b 3 ((w lsr 24) land 0xFF);
  Bytes.to_string b
