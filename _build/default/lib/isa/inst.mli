(** Instruction AST for the RV64IM subset used by this project, extended
    with the ROLoad family ([ld.ro] & friends, Section III-A of the paper).
    Compressed (RVC) encodings expand to these, so the executor only ever
    sees values of type {!t}. *)

type width = Byte | Half | Word | Double

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type alu_op = Add | Sub | Sll | Slt | Sltu | Xor | Srl | Sra | Or | And

type alu_w_op = Addw | Subw | Sllw | Srlw | Sraw

type mul_op = Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu

type mul_w_op = Mulw | Divw | Divuw | Remw | Remuw

type t =
  | Lui of Reg.t * int64  (** rd, 20-bit field value (not pre-shifted) *)
  | Auipc of Reg.t * int64
  | Jal of Reg.t * int64  (** rd, signed even byte offset (21-bit) *)
  | Jalr of Reg.t * Reg.t * int64  (** rd, rs1, signed 12-bit offset *)
  | Branch of branch_cond * Reg.t * Reg.t * int64
  | Load of { width : width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; imm : int64 }
  | Store of { width : width; rs2 : Reg.t; rs1 : Reg.t; imm : int64 }
  | Op_imm of alu_op * Reg.t * Reg.t * int64
  | Op_imm_w of alu_w_op * Reg.t * Reg.t * int64
  | Op of alu_op * Reg.t * Reg.t * Reg.t
  | Op_w of alu_w_op * Reg.t * Reg.t * Reg.t
  | Mulop of mul_op * Reg.t * Reg.t * Reg.t
  | Mulop_w of mul_w_op * Reg.t * Reg.t * Reg.t
  | Load_ro of { width : width; unsigned : bool; rd : Reg.t; rs1 : Reg.t; key : int }
      (** ROLoad-family load: loads through [rs1] with no offset immediate;
          the accessed page must be read-only and tagged with [key]
          (0..1023), otherwise the MMU raises a ROLoad page fault. *)
  | Ecall
  | Ebreak
  | Fence

val width_bytes : width -> int
val width_name : width -> string
val load_mnemonic : width:width -> unsigned:bool -> string
val store_mnemonic : width:width -> string
val branch_cond_name : branch_cond -> string
val alu_op_name : alu_op -> string
val alu_w_op_name : alu_w_op -> string
val mul_op_name : mul_op -> string
val mul_w_op_name : mul_w_op -> string

val to_string : t -> string
(** Assembly rendering, e.g. ["ld.ro a0, (a1), 111"]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val valid : t -> bool
(** Structural validity: immediates within their encoded ranges, shift
    amounts legal, ROLoad keys within the 10-bit PTE key field. *)

val is_roload : t -> bool
val is_control_flow : t -> bool

val nop : t
val li : Reg.t -> int64 -> t
val mv : Reg.t -> Reg.t -> t
val ret : t
val ld : Reg.t -> Reg.t -> int64 -> t
val sd : Reg.t -> Reg.t -> int64 -> t
val ld_ro : Reg.t -> Reg.t -> int -> t
