(** 32-bit instruction encoding (RV64IM + the ROLoad custom-0 opcode).
    Encoded words are native [int]s holding the 32-bit pattern. *)

exception Invalid of string
(** Raised when an instruction violates its encoding constraints (immediate
    range, odd branch offset, key range, …). *)

val encode : Inst.t -> int
val encode_bytes : Inst.t -> string
(** Little-endian 4-byte rendering of {!encode}. *)
