lib/isa/roload_ext.ml:
