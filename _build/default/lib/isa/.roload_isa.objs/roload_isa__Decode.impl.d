lib/isa/decode.ml: Inst Int64 Printf Reg Result
