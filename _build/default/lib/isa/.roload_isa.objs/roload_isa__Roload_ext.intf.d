lib/isa/roload_ext.mli:
