lib/isa/disasm.mli: Inst
