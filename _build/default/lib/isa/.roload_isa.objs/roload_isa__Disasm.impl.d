lib/isa/disasm.ml: Char Compressed Decode Inst List Printf String
