lib/isa/compressed.mli: Inst
