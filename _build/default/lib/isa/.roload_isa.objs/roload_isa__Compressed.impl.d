lib/isa/compressed.ml: Bytes Inst Int64 Printf Reg Roload_ext Roload_util
