lib/isa/inst.mli: Format Reg
