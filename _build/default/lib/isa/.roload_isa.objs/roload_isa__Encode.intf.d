lib/isa/encode.mli: Inst
