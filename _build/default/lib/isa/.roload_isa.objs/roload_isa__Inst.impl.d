lib/isa/inst.ml: Format Int64 Printf Reg Roload_util
