(** Encoding-level definition of the ROLoad ISA extension (paper §III-A):
    opcode assignment, key-field widths and the software key conventions
    used by the defense applications. *)

val opcode : int
(** Major opcode of the ld.ro family (RISC-V custom-0, 0x0B). *)

val key_bits : int
(** Width of the page-key field (10, the reserved top bits of an Sv39
    PTE). *)

val max_key : int
val compressed_key_bits : int
(** Key width expressible by [c.ld.ro] (5 bits). *)

val max_compressed_key : int
val key_in_range : int -> bool
val key_compressible : int -> bool

val key_default : int
(** Key of ordinary read-only data pages. *)

val key_vtable_unified : int
(** The single key the ICall application uses for all vtables. *)

val first_type_key : int
(** First key available for per-type allocation by hardening passes. *)

val key_return_sites : int
(** The key of return-site allowlist pages (the backward-edge extension
    of paper §IV-C). *)
