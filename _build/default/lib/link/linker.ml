(* The linker: merges object files, lays sections out into page-aligned
   segments grouped by (permissions, key), applies relocations, and emits
   an executable image.

   The [separate_code] option mirrors the `-z separate-code` linker flag
   the paper requires (§V-B): with it, read-only data lives on its own
   non-executable pages; without it, *all* read-only sections are folded
   into the executable (r-x) segment — which violates the ROLoad
   read-only page condition and makes every ld.ro fault.  The ablation
   bench demonstrates exactly that failure. *)

module Perm = Roload_mem.Perm
module Section = Roload_obj.Section
module Symbol = Roload_obj.Symbol
module Reloc = Roload_obj.Reloc
module Objfile = Roload_obj.Objfile
module Exe = Roload_obj.Exe

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type options = {
  base_vaddr : int;
  separate_code : bool;
  entry_symbol : string;
}

let default_options = { base_vaddr = 0x10000; separate_code = true; entry_symbol = "_start" }

let page = Exe.page

(* ---------- section merging ---------- *)

type merged_section = {
  m_name : string;
  m_perms : Perm.t;
  m_key : int;
  m_align : int;
  m_data : Buffer.t;
  mutable m_bss : int;
  mutable m_vaddr : int; (* assigned during layout *)
}

type input_piece = {
  obj_index : int;
  sec_name : string;
  piece_offset : int; (* offset of this object's section inside the merged one *)
}

let merge_objects objs =
  let merged : (string, merged_section) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let pieces = ref [] in
  List.iteri
    (fun obj_index (obj : Objfile.t) ->
      List.iter
        (fun (s : Section.t) ->
          let m =
            match Hashtbl.find_opt merged s.Section.name with
            | Some m ->
              if not (Perm.equal m.m_perms s.Section.perms) || m.m_key <> s.Section.key
              then error "section %s: conflicting attributes across objects" s.Section.name;
              m
            | None ->
              let m =
                {
                  m_name = s.Section.name;
                  m_perms = s.Section.perms;
                  m_key = s.Section.key;
                  m_align = s.Section.align;
                  m_data = Buffer.create 256;
                  m_bss = 0;
                  m_vaddr = 0;
                }
              in
              Hashtbl.add merged s.Section.name m;
              order := s.Section.name :: !order;
              m
          in
          (* align this piece within the merged section *)
          let aligned = Roload_util.Bits.align_up (Buffer.length m.m_data) s.Section.align in
          while Buffer.length m.m_data < aligned do
            Buffer.add_char m.m_data '\000'
          done;
          let piece_offset = Buffer.length m.m_data + m.m_bss in
          if s.Section.data <> "" && m.m_bss > 0 then
            error "section %s: data after bss" s.Section.name;
          Buffer.add_string m.m_data s.Section.data;
          m.m_bss <- m.m_bss + s.Section.bss_size;
          pieces := { obj_index; sec_name = s.Section.name; piece_offset } :: !pieces)
        obj.Objfile.sections)
    objs;
  (merged, List.rev !order, !pieces)

let piece_offset pieces ~obj_index ~sec_name =
  match
    List.find_opt (fun p -> p.obj_index = obj_index && p.sec_name = sec_name) pieces
  with
  | Some p -> p.piece_offset
  | None -> error "internal: missing piece %s (object %d)" sec_name obj_index

(* ---------- layout ---------- *)

let section_class (m : merged_section) =
  (* ordering class: text, rodata (by key), data, bss *)
  if m.m_perms.Perm.x then 0
  else if not m.m_perms.Perm.w then 1
  else if Buffer.length m.m_data > 0 then 2
  else 3

let layout ~options merged order =
  let ms = List.map (Hashtbl.find merged) order in
  let cls_of m = section_class m in
  let text = List.filter (fun m -> cls_of m = 0) ms in
  let ro = List.filter (fun m -> cls_of m = 1) ms in
  let ro_sorted = List.stable_sort (fun a b -> compare a.m_key b.m_key) ro in
  let data = List.filter (fun m -> cls_of m = 2) ms in
  let bss = List.filter (fun m -> cls_of m = 3) ms in
  (* groups: each group becomes one segment and starts on a page boundary *)
  let groups =
    if options.separate_code then begin
      (* one group per distinct ro key so distinct keys land on distinct
         pages, then data and bss *)
      let keys = List.sort_uniq compare (List.map (fun m -> m.m_key) ro_sorted) in
      let ro_groups =
        List.map
          (fun k ->
            let secs = List.filter (fun m -> m.m_key = k) ro_sorted in
            (Printf.sprintf "rodata.key.%d" k, Perm.ro, k, secs))
          keys
      in
      (("text", Perm.rx, 0, text) :: ro_groups)
      @ [ ("data", Perm.rw, 0, data); ("bss", Perm.rw, 0, bss) ]
    end
    else
      (* no separate-code: read-only data shares the executable segment *)
      [ ("text+rodata", Perm.rx, 0, text @ ro_sorted);
        ("data", Perm.rw, 0, data);
        ("bss", Perm.rw, 0, bss) ]
  in
  let groups = List.filter (fun (_, _, _, secs) -> secs <> []) groups in
  (* assign addresses *)
  let pos = ref options.base_vaddr in
  let placed =
    List.map
      (fun (gname, perms, key, secs) ->
        pos := Roload_util.Bits.align_up !pos page;
        let seg_vaddr = !pos in
        List.iter
          (fun m ->
            pos := Roload_util.Bits.align_up !pos m.m_align;
            m.m_vaddr <- !pos;
            pos := !pos + Buffer.length m.m_data + m.m_bss)
          secs;
        let seg_end = !pos in
        (gname, perms, key, secs, seg_vaddr, seg_end))
      groups
  in
  placed

(* ---------- symbol resolution ---------- *)

let resolve_symbols objs merged pieces =
  let table : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iteri
    (fun obj_index (obj : Objfile.t) ->
      List.iter
        (fun (sym : Symbol.t) ->
          let m =
            match Hashtbl.find_opt merged sym.Symbol.section with
            | Some m -> m
            | None -> error "symbol %s: unknown section %s" sym.Symbol.name sym.Symbol.section
          in
          let base = piece_offset pieces ~obj_index ~sec_name:sym.Symbol.section in
          let addr = m.m_vaddr + base + sym.Symbol.offset in
          match Hashtbl.find_opt table sym.Symbol.name with
          | Some other when other <> addr ->
            error "duplicate symbol %s" sym.Symbol.name
          | Some _ | None -> Hashtbl.replace table sym.Symbol.name addr)
        obj.Objfile.symbols)
    objs;
  table

(* ---------- relocation application ---------- *)

let read_u32 bytes off =
  Char.code (Bytes.get bytes off)
  lor (Char.code (Bytes.get bytes (off + 1)) lsl 8)
  lor (Char.code (Bytes.get bytes (off + 2)) lsl 16)
  lor (Char.code (Bytes.get bytes (off + 3)) lsl 24)

let write_u32 bytes off v =
  Bytes.set bytes off (Char.chr (v land 0xFF));
  Bytes.set bytes (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set bytes (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set bytes (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let patch_u_type word value20 = word land 0xFFF lor (value20 lsl 12)

let patch_i_type word imm12 =
  (word land 0xFFFFF) lor ((imm12 land 0xFFF) lsl 20)

let patch_s_type word imm12 =
  let keep = word land 0x01FFF07F in
  keep lor ((imm12 land 0x1F) lsl 7) lor (((imm12 lsr 5) land 0x7F) lsl 25)

let patch_j_type word offset =
  if offset < -1048576 || offset > 1048574 then error "jal relocation out of range (%d)" offset;
  if offset land 1 <> 0 then error "odd jal offset";
  let imm = offset land 0x1FFFFF in
  let keep = word land 0xFFF in
  keep
  lor (((imm lsr 20) land 1) lsl 31)
  lor (((imm lsr 1) land 0x3FF) lsl 21)
  lor (((imm lsr 11) land 1) lsl 20)
  lor (((imm lsr 12) land 0xFF) lsl 12)

let patch_b_type word offset =
  if offset < -4096 || offset > 4094 then error "branch relocation out of range (%d)" offset;
  let imm = offset land 0x1FFF in
  let keep = word land 0x01FFF07F in
  keep
  lor (((imm lsr 12) land 1) lsl 31)
  lor (((imm lsr 5) land 0x3F) lsl 25)
  lor (((imm lsr 1) land 0xF) lsl 8)
  lor (((imm lsr 11) land 1) lsl 7)

let apply_relocs objs merged pieces symbols =
  let buffers : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name (m : merged_section) ->
      Hashtbl.add buffers name (Buffer.to_bytes m.m_data))
    merged;
  List.iteri
    (fun obj_index (obj : Objfile.t) ->
      List.iter
        (fun (r : Reloc.t) ->
          let m =
            match Hashtbl.find_opt merged r.Reloc.section with
            | Some m -> m
            | None -> error "relocation in unknown section %s" r.Reloc.section
          in
          let bytes = Hashtbl.find buffers r.Reloc.section in
          let base = piece_offset pieces ~obj_index ~sec_name:r.Reloc.section in
          let off = base + r.Reloc.offset in
          let sym_addr =
            match Hashtbl.find_opt symbols r.Reloc.symbol with
            | Some a -> a + r.Reloc.addend
            | None -> error "undefined symbol %s" r.Reloc.symbol
          in
          let place = m.m_vaddr + off in
          match r.Reloc.kind with
          | Reloc.Abs64 -> Bytes.set_int64_le bytes off (Int64.of_int sym_addr)
          | Reloc.Hi20 -> write_u32 bytes off (patch_u_type (read_u32 bytes off) (Reloc.hi20 sym_addr))
          | Reloc.Lo12_i ->
            write_u32 bytes off
              (patch_i_type (read_u32 bytes off) (Int64.to_int (Reloc.lo12 sym_addr) land 0xFFF))
          | Reloc.Lo12_s ->
            write_u32 bytes off
              (patch_s_type (read_u32 bytes off) (Int64.to_int (Reloc.lo12 sym_addr) land 0xFFF))
          | Reloc.Jal -> write_u32 bytes off (patch_j_type (read_u32 bytes off) (sym_addr - place))
          | Reloc.Branch ->
            write_u32 bytes off (patch_b_type (read_u32 bytes off) (sym_addr - place)))
        obj.Objfile.relocs)
    objs;
  buffers

(* ---------- driver ---------- *)

let link ?(options = default_options) objs =
  if objs = [] then error "no input objects";
  let merged, order, pieces = merge_objects objs in
  let placed = layout ~options merged order in
  let symbols = resolve_symbols objs merged pieces in
  (* synthetic region symbols (used by the VTint baseline's range check):
     the read-only, non-executable region is contiguous because all ro
     groups are laid out together *)
  let ro_segs =
    List.filter
      (fun (_, perms, _, _, _, _) -> perms.Perm.r && (not perms.Perm.w) && not perms.Perm.x)
      placed
  in
  let ro_start =
    List.fold_left (fun acc (_, _, _, _, s, _) -> min acc s) max_int ro_segs
  in
  let ro_end = List.fold_left (fun acc (_, _, _, _, _, e) -> max acc e) 0 ro_segs in
  Hashtbl.replace symbols "__ro_start" (if ro_segs = [] then 0 else ro_start);
  Hashtbl.replace symbols "__ro_end" ro_end;
  let buffers = apply_relocs objs merged pieces symbols in
  let segments =
    List.map
      (fun (gname, perms, key, secs, seg_vaddr, seg_end) ->
        (* concatenate section bytes with padding; bss contributes only to
           mem_size *)
        let data_end =
          List.fold_left
            (fun acc (m : merged_section) ->
              let dlen = Bytes.length (Hashtbl.find buffers m.m_name) in
              if dlen > 0 then max acc (m.m_vaddr + dlen) else acc)
            seg_vaddr secs
        in
        let buf = Bytes.make (data_end - seg_vaddr) '\000' in
        List.iter
          (fun (m : merged_section) ->
            let src = Hashtbl.find buffers m.m_name in
            Bytes.blit src 0 buf (m.m_vaddr - seg_vaddr) (Bytes.length src))
          secs;
        {
          Exe.name = gname;
          vaddr = seg_vaddr;
          data = Bytes.to_string buf;
          mem_size = seg_end - seg_vaddr;
          perms;
          key;
        })
      placed
  in
  let entry =
    match Hashtbl.find_opt symbols options.entry_symbol with
    | Some a -> a
    | None -> error "entry symbol %s not defined" options.entry_symbol
  in
  let symbol_list =
    Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) symbols []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  Exe.make ~entry ~segments ~symbols:symbol_list

let map_string exe =
  let b = Buffer.create 512 in
  Buffer.add_string b (Exe.summary exe);
  Buffer.add_string b "symbols:\n";
  List.iter
    (fun (name, addr) -> Buffer.add_string b (Printf.sprintf "  0x%08x %s\n" addr name))
    exe.Exe.symbols;
  Buffer.contents b
