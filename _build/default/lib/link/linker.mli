(** The linker: merges objects, lays out page-aligned segments grouped by
    (permissions, key), applies relocations and emits an executable.

    [separate_code] mirrors the `-z separate-code` flag the paper requires
    (§V-B): without it, read-only sections are folded into the executable
    r-x segment, violating the ROLoad read-only page condition (every
    ld.ro then faults). *)

exception Error of string

type options = { base_vaddr : int; separate_code : bool; entry_symbol : string }

val default_options : options
(** 0x10000 base, separate-code on, entry [_start]. *)

val link : ?options:options -> Roload_obj.Objfile.t list -> Roload_obj.Exe.t
val map_string : Roload_obj.Exe.t -> string
