lib/link/linker.mli: Roload_obj
