lib/link/linker.ml: Buffer Bytes Char Hashtbl Int64 List Printf Roload_mem Roload_obj Roload_util
