(** RTL elaboration of the TLB-lookup datapath, with and without the
    ROLoad key check (paper §III-A).  Keys are only added to the D-TLB
    variant — instruction fetches never carry a key. *)

type config = {
  entries : int;
  vpn_bits : int;
  ppn_bits : int;
  key_bits : int;
  with_roload : bool;
}

val default_config : with_roload:bool -> config
(** 32 entries, Sv39 geometry (27-bit VPN, 44-bit PPN), 10-bit keys. *)

type elaborated = {
  netlist : Netlist.t;
  config : config;
  allow : Netlist.node_id;
  hit : Netlist.node_id;
  in_vpn : Netlist.node_id array;
  in_fetch : Netlist.node_id;
  in_load : Netlist.node_id;
  in_store : Netlist.node_id;
  in_is_roload : Netlist.node_id option;
  in_key : Netlist.node_id array option;
  st_valids : Netlist.node_id array array;
  st_tags : Netlist.node_id array array;
  st_perms : Netlist.node_id array array;  (** bit order: r, w, x, u *)
  st_keys : Netlist.node_id array array option;
}

val elaborate : config -> elaborated
