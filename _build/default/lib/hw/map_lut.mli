(** Greedy LUT6 technology mapping: topological traversal with cone
    absorption of single-fanout combinational fanins while the merged
    leaf support stays within 6 inputs. *)

type mapping = {
  luts : int;
  ffs : int;
  levels : int array;  (** LUT level of each node's mapped output *)
  depth : int;  (** deepest LUT level across marked outputs *)
}

val map : Netlist.t -> mapping
