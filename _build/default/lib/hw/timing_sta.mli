(** Static timing on the mapped netlist: LUT6 cell delay + per-level
    routing + a utilization-dependent congestion term, against the
    prototype's 125 MHz target (paper §V-A). *)

type constraints = {
  target_mhz : float;
  lut_delay_ns : float;
  net_delay_ns : float;
  clock_to_q_ns : float;
  setup_ns : float;
  congestion_ns_per_lut : float;
}

val kintex7_default : constraints
(** Calibrated so the baseline design sits just inside timing closure, as
    on the paper's Kintex-7 board. *)

type report = {
  critical_path_ns : float;
  period_ns : float;
  worst_slack_ns : float;
  fmax_mhz : float;
  lut_levels : int;
}

val analyze : ?constraints:constraints -> Map_lut.mapping -> report
