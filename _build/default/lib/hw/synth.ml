(* The "synthesis run" for Table III: elaborate both TLB datapaths, map
   them to LUT6s, run timing, and assemble the comparison. *)

type result = {
  comparison : Area.comparison;
  timing_without : Timing_sta.report;
  timing_with : Timing_sta.report;
  baseline_netlist_gates : int;
  roload_netlist_gates : int;
}

let run ?(entries = 32) ?context ?constraints () =
  let base_cfg = { (Tlb_rtl.default_config ~with_roload:false) with entries } in
  let ro_cfg = { (Tlb_rtl.default_config ~with_roload:true) with entries } in
  let base = Tlb_rtl.elaborate base_cfg in
  let ro = Tlb_rtl.elaborate ro_cfg in
  let base_map = Map_lut.map base.Tlb_rtl.netlist in
  let ro_map = Map_lut.map ro.Tlb_rtl.netlist in
  let comparison = Area.compare_designs ?context ~baseline_mapping:base_map ~roload_mapping:ro_map () in
  {
    comparison;
    timing_without = Timing_sta.analyze ?constraints base_map;
    timing_with = Timing_sta.analyze ?constraints ro_map;
    baseline_netlist_gates = Netlist.size base.Tlb_rtl.netlist;
    roload_netlist_gates = Netlist.size ro.Tlb_rtl.netlist;
  }
