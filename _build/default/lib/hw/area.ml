(* Core- and system-level area accounting for Table III.

   The TLB datapath is elaborated and technology-mapped for real (see
   [Tlb_rtl], [Map_lut]); a full Rocket core is out of scope, so the
   surrounding core/system context is a *calibrated constant* taken from
   the paper's baseline synthesis (20,722 LUT / 11,855 FF core; 37,428
   LUT / 29,913 FF system).  The ROLoad deltas are our own measured
   numbers from the mapped netlists — i.e. the experiment reproduces the
   *increase*, which is what Table III evaluates. *)

type context = {
  core_base_luts : int;
  core_base_ffs : int;
  system_base_luts : int;
  system_base_ffs : int;
}

let paper_calibrated =
  { core_base_luts = 20722; core_base_ffs = 11855;
    system_base_luts = 37428; system_base_ffs = 29913 }

type cost = {
  luts : int;
  ffs : int;
}

type comparison = {
  baseline_tlb : cost;
  roload_tlb : cost;
  core_without : cost;
  core_with : cost;
  system_without : cost;
  system_with : cost;
  lut_increase_core_pct : float;
  ff_increase_core_pct : float;
  lut_increase_system_pct : float;
  ff_increase_system_pct : float;
}

let pct ~base ~extra = float_of_int extra /. float_of_int base *. 100.0

let compare_designs ?(context = paper_calibrated) ~baseline_mapping ~roload_mapping () =
  let baseline_tlb =
    { luts = baseline_mapping.Map_lut.luts; ffs = baseline_mapping.Map_lut.ffs }
  in
  let roload_tlb =
    { luts = roload_mapping.Map_lut.luts; ffs = roload_mapping.Map_lut.ffs }
  in
  let dl = roload_tlb.luts - baseline_tlb.luts in
  let df = roload_tlb.ffs - baseline_tlb.ffs in
  let core_without = { luts = context.core_base_luts; ffs = context.core_base_ffs } in
  let core_with = { luts = context.core_base_luts + dl; ffs = context.core_base_ffs + df } in
  let system_without =
    { luts = context.system_base_luts; ffs = context.system_base_ffs }
  in
  let system_with =
    { luts = context.system_base_luts + dl; ffs = context.system_base_ffs + df }
  in
  {
    baseline_tlb;
    roload_tlb;
    core_without;
    core_with;
    system_without;
    system_with;
    lut_increase_core_pct = pct ~base:core_without.luts ~extra:dl;
    ff_increase_core_pct = pct ~base:core_without.ffs ~extra:df;
    lut_increase_system_pct = pct ~base:system_without.luts ~extra:dl;
    ff_increase_system_pct = pct ~base:system_without.ffs ~extra:df;
  }
