(* Gate-level simulation of a netlist: evaluate combinational outputs
   given an assignment of the inputs and the current DFF states.  Used to
   verify the elaborated TLB datapath against the behavioural MMU. *)

type assignment = (Netlist.node_id, bool) Hashtbl.t

let create_assignment () : assignment = Hashtbl.create 64

let set (a : assignment) id v = Hashtbl.replace a id v

exception Unassigned of string

let evaluate net (a : assignment) =
  let n = Netlist.size net in
  let values = Array.make n None in
  let rec eval id =
    match values.(id) with
    | Some v -> v
    | None ->
      let v =
        match Netlist.gate net id with
        | Netlist.Input name -> (
          match Hashtbl.find_opt a id with
          | Some v -> v
          | None -> raise (Unassigned name))
        | Netlist.Const b -> b
        | Netlist.Not x -> not (eval x)
        | Netlist.And2 (x, y) -> eval x && eval y
        | Netlist.Or2 (x, y) -> eval x || eval y
        | Netlist.Xor2 (x, y) -> eval x <> eval y
        | Netlist.Mux { sel; a = x; b = y } -> if eval sel then eval x else eval y
        | Netlist.Dff { d; name } -> (
          (* current state: supplied by the assignment; fall back to the
             D input if driven (useful for purely combinational tests) *)
          match Hashtbl.find_opt a id with
          | Some v -> v
          | None -> ( try eval d with Unassigned _ -> raise (Unassigned name)))
      in
      values.(id) <- Some v;
      v
  in
  eval

(* helpers for buses *)
let set_bus a bus value =
  Array.iteri (fun i id -> set a id (Int64.logand (Int64.shift_right_logical value i) 1L = 1L)) bus

let read_output net a name =
  match List.assoc_opt name net.Netlist.outputs with
  | Some id -> evaluate net a id
  | None -> invalid_arg ("Netlist_sim.read_output: " ^ name)
