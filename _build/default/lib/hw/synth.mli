(** The "synthesis run" behind Table III: elaborate both TLB datapaths,
    map to LUT6s, run timing, assemble the area comparison. *)

type result = {
  comparison : Area.comparison;
  timing_without : Timing_sta.report;
  timing_with : Timing_sta.report;
  baseline_netlist_gates : int;
  roload_netlist_gates : int;
}

val run :
  ?entries:int ->
  ?context:Area.context ->
  ?constraints:Timing_sta.constraints ->
  unit ->
  result
