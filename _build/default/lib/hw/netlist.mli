(** A small structural netlist IR (combinational gates + D flip-flops),
    used to elaborate the TLB-lookup datapath for the Table III
    hardware-cost experiment. *)

type node_id = int

type gate =
  | Input of string
  | Const of bool
  | Not of node_id
  | And2 of node_id * node_id
  | Or2 of node_id * node_id
  | Xor2 of node_id * node_id
  | Mux of { sel : node_id; a : node_id; b : node_id }
  | Dff of { d : node_id; name : string }

type t = {
  mutable gates : gate array;
  mutable count : int;
  mutable outputs : (string * node_id) list;
}

val create : unit -> t
val add : t -> gate -> node_id
val gate : t -> node_id -> gate
val size : t -> int
val input : t -> string -> node_id
val const_ : t -> bool -> node_id
val not_ : t -> node_id -> node_id
val and2 : t -> node_id -> node_id -> node_id
val or2 : t -> node_id -> node_id -> node_id
val xor2 : t -> node_id -> node_id -> node_id
val mux : t -> sel:node_id -> a:node_id -> b:node_id -> node_id
val dff : t -> ?name:string -> node_id -> node_id
val mark_output : t -> string -> node_id -> unit

val inputs : t -> string -> int -> node_id array
(** A bus of fresh inputs, LSB first. *)

val dffs : t -> string -> int -> node_id array
(** A bus of state bits (each a DFF fed by a fresh input). *)

val and_reduce : t -> node_id list -> node_id
val or_reduce : t -> node_id list -> node_id
val equal_bus : t -> node_id array -> node_id array -> node_id
val onehot_mux : t -> selects:node_id array -> fields:node_id array array -> node_id array
val count_ffs : t -> int
val count_combinational : t -> int
val fanins : gate -> node_id list
