(** Gate-level simulation: evaluate combinational outputs given an
    assignment of inputs and DFF states.  Used to verify the elaborated
    TLB datapath against the behavioural MMU. *)

type assignment

val create_assignment : unit -> assignment
val set : assignment -> Netlist.node_id -> bool -> unit
val set_bus : assignment -> Netlist.node_id array -> int64 -> unit

exception Unassigned of string

val evaluate : Netlist.t -> assignment -> Netlist.node_id -> bool
val read_output : Netlist.t -> assignment -> string -> bool
