(* A small structural netlist IR: combinational gates + D flip-flops.
   Used to elaborate the TLB-lookup datapath (with and without the ROLoad
   key check) for the Table III hardware-cost experiment. *)

type node_id = int

type gate =
  | Input of string
  | Const of bool
  | Not of node_id
  | And2 of node_id * node_id
  | Or2 of node_id * node_id
  | Xor2 of node_id * node_id
  | Mux of { sel : node_id; a : node_id; b : node_id } (* sel=1 -> a *)
  | Dff of { d : node_id; name : string }

type t = {
  mutable gates : gate array;
  mutable count : int;
  mutable outputs : (string * node_id) list;
}

let create () = { gates = Array.make 1024 (Const false); count = 0; outputs = [] }

let add t g =
  if t.count = Array.length t.gates then begin
    let bigger = Array.make (2 * t.count) (Const false) in
    Array.blit t.gates 0 bigger 0 t.count;
    t.gates <- bigger
  end;
  t.gates.(t.count) <- g;
  t.count <- t.count + 1;
  t.count - 1

let gate t id = t.gates.(id)
let size t = t.count

let input t name = add t (Input name)
let const_ t b = add t (Const b)
let not_ t a = add t (Not a)
let and2 t a b = add t (And2 (a, b))
let or2 t a b = add t (Or2 (a, b))
let xor2 t a b = add t (Xor2 (a, b))
let mux t ~sel ~a ~b = add t (Mux { sel; a; b })
let dff t ?(name = "ff") d = add t (Dff { d; name })

let mark_output t name id = t.outputs <- (name, id) :: t.outputs

(* ---------- bus helpers ---------- *)

let inputs t name width = Array.init width (fun i -> input t (Printf.sprintf "%s[%d]" name i))

let dffs t name width =
  Array.init width (fun i ->
      let d = input t (Printf.sprintf "%s_d[%d]" name i) in
      dff t ~name:(Printf.sprintf "%s[%d]" name i) d)

(* balanced reduction tree *)
let rec reduce t op = function
  | [] -> invalid_arg "Netlist.reduce: empty"
  | [ x ] -> x
  | xs ->
    let rec pair = function
      | [] -> []
      | [ x ] -> [ x ]
      | a :: b :: rest -> op t a b :: pair rest
    in
    reduce t op (pair xs)

let and_reduce t xs = reduce t and2 xs
let or_reduce t xs = reduce t or2 xs

(* equality comparator over two buses: AND of XNORs *)
let equal_bus t a b =
  if Array.length a <> Array.length b then invalid_arg "Netlist.equal_bus";
  let bits =
    Array.to_list (Array.mapi (fun i ai -> not_ t (xor2 t ai b.(i))) a)
  in
  and_reduce t bits

(* one-hot bus selection: out_bit = OR_i (sel_i AND field_i_bit) *)
let onehot_mux t ~selects ~fields =
  let width = Array.length fields.(0) in
  Array.init width (fun bit ->
      let terms =
        List.mapi (fun i sel -> and2 t sel fields.(i).(bit)) (Array.to_list selects)
      in
      or_reduce t terms)

(* ---------- statistics ---------- *)

let count_ffs t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    match t.gates.(i) with
    | Dff _ -> incr n
    | Input _ | Const _ | Not _ | And2 _ | Or2 _ | Xor2 _ | Mux _ -> ()
  done;
  !n

let count_combinational t =
  let n = ref 0 in
  for i = 0 to t.count - 1 do
    match t.gates.(i) with
    | Not _ | And2 _ | Or2 _ | Xor2 _ | Mux _ -> incr n
    | Input _ | Const _ | Dff _ -> ()
  done;
  !n

let fanins = function
  | Input _ | Const _ -> []
  | Not a -> [ a ]
  | And2 (a, b) | Or2 (a, b) | Xor2 (a, b) -> [ a; b ]
  | Mux { sel; a; b } -> [ sel; a; b ]
  | Dff { d; _ } -> [ d ]
