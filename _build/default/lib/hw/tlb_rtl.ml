(* RTL elaboration of the TLB lookup datapath — the hardware surface the
   ROLoad extension modifies (paper §III-A).

   Baseline datapath: 32 fully-associative entries; each holds a valid
   bit, a 27-bit VPN tag (Sv39), R/W/X/U permission bits and a 44-bit
   PPN.  Lookup compares the request VPN against every tag, one-hot-
   selects the hit entry's fields, and checks permissions against the
   request type.

   ROLoad datapath: adds a 10-bit key field per entry (the reserved top
   PTE bits), a key comparator on the selected entry, and the read-only
   condition (R ∧ ¬W ∧ ¬X); their conjunction gates the final allow
   signal in parallel with the conventional permission check.  Keys are
   only added to the D-TLB — instruction fetches never carry a key. *)

type config = {
  entries : int;
  vpn_bits : int;
  ppn_bits : int;
  key_bits : int;
  with_roload : bool;
}

let default_config ~with_roload =
  { entries = 32; vpn_bits = 27; ppn_bits = 44; key_bits = 10; with_roload }

type elaborated = {
  netlist : Netlist.t;
  config : config;
  allow : Netlist.node_id;
  hit : Netlist.node_id;
  (* handles for simulation/verification *)
  in_vpn : Netlist.node_id array;
  in_fetch : Netlist.node_id;
  in_load : Netlist.node_id;
  in_store : Netlist.node_id;
  in_is_roload : Netlist.node_id option;
  in_key : Netlist.node_id array option;
  st_valids : Netlist.node_id array array;
  st_tags : Netlist.node_id array array;
  st_perms : Netlist.node_id array array; (* [r; w; x; u] *)
  st_keys : Netlist.node_id array array option;
}

let elaborate config =
  let n = Netlist.create () in
  let vpn = Netlist.inputs n "req_vpn" config.vpn_bits in
  (* request type: one-hot fetch/load/store + an is_roload qualifier *)
  let req_fetch = Netlist.input n "req_fetch" in
  let req_load = Netlist.input n "req_load" in
  let req_store = Netlist.input n "req_store" in
  let req_is_roload =
    if config.with_roload then Some (Netlist.input n "req_is_roload") else None
  in
  let req_key =
    if config.with_roload then Some (Netlist.inputs n "req_key" config.key_bits) else None
  in
  (* per-entry state *)
  let valids = Array.init config.entries (fun i -> Netlist.dffs n (Printf.sprintf "e%d_valid" i) 1) in
  let tags = Array.init config.entries (fun i -> Netlist.dffs n (Printf.sprintf "e%d_tag" i) config.vpn_bits) in
  let perms = Array.init config.entries (fun i -> Netlist.dffs n (Printf.sprintf "e%d_perm" i) 4) in
  let ppns = Array.init config.entries (fun i -> Netlist.dffs n (Printf.sprintf "e%d_ppn" i) config.ppn_bits) in
  let keys =
    if config.with_roload then
      Some (Array.init config.entries (fun i -> Netlist.dffs n (Printf.sprintf "e%d_key" i) config.key_bits))
    else None
  in
  (* match logic *)
  let matches =
    Array.init config.entries (fun i ->
        Netlist.and2 n valids.(i).(0) (Netlist.equal_bus n tags.(i) vpn))
  in
  let hit = Netlist.or_reduce n (Array.to_list matches) in
  (* one-hot selection of the hit entry's fields *)
  let sel_perm = Netlist.onehot_mux n ~selects:matches ~fields:perms in
  let sel_ppn = Netlist.onehot_mux n ~selects:matches ~fields:ppns in
  Array.iteri (fun i b -> Netlist.mark_output n (Printf.sprintf "resp_ppn[%d]" i) b) sel_ppn;
  let r = sel_perm.(0) and w = sel_perm.(1) and x = sel_perm.(2) and u = sel_perm.(3) in
  (* conventional permission check *)
  let conv_ok =
    let fetch_ok = Netlist.and2 n req_fetch x in
    let load_ok = Netlist.and2 n req_load r in
    let store_ok = Netlist.and2 n req_store w in
    let any = Netlist.or_reduce n [ fetch_ok; load_ok; store_ok ] in
    Netlist.and2 n any u
  in
  (* the ROLoad extra logic, ANDed in parallel with the conventional
     check (paper: "The output of this logic is then ANDed with the
     original output of the page permission control logic") *)
  let allow =
    match (req_is_roload, req_key, keys) with
    | Some is_ro, Some rkey, Some entry_keys ->
      let sel_key = Netlist.onehot_mux n ~selects:matches ~fields:entry_keys in
      let key_eq = Netlist.equal_bus n sel_key rkey in
      let read_only =
        Netlist.and2 n r (Netlist.and2 n (Netlist.not_ n w) (Netlist.not_ n x))
      in
      let ro_ok = Netlist.and2 n read_only key_eq in
      (* roload_pass = ¬is_roload ∨ ro_ok *)
      let roload_pass = Netlist.or2 n (Netlist.not_ n is_ro) ro_ok in
      Netlist.and2 n conv_ok roload_pass
    | _ -> conv_ok
  in
  let allow = Netlist.and2 n allow hit in
  Netlist.mark_output n "resp_allow" allow;
  Netlist.mark_output n "resp_hit" hit;
  {
    netlist = n;
    config;
    allow;
    hit;
    in_vpn = vpn;
    in_fetch = req_fetch;
    in_load = req_load;
    in_store = req_store;
    in_is_roload = req_is_roload;
    in_key = req_key;
    st_valids = valids;
    st_tags = tags;
    st_perms = perms;
    st_keys = keys;
  }
