lib/hw/netlist.mli:
