lib/hw/netlist_sim.mli: Netlist
