lib/hw/tlb_rtl.ml: Array Netlist Printf
