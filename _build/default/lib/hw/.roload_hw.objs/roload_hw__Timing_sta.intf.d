lib/hw/timing_sta.mli: Map_lut
