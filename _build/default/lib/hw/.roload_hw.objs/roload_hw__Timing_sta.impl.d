lib/hw/timing_sta.ml: Map_lut
