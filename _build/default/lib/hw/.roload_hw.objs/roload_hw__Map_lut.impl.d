lib/hw/map_lut.ml: Array Int List Netlist Set
