lib/hw/netlist.ml: Array List Printf
