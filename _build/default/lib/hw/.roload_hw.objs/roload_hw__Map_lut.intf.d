lib/hw/map_lut.mli: Netlist
