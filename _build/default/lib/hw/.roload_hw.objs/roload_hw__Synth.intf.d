lib/hw/synth.mli: Area Timing_sta
