lib/hw/area.ml: Map_lut
