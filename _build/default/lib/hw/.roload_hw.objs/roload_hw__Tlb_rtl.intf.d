lib/hw/tlb_rtl.mli: Netlist
