lib/hw/synth.ml: Area Map_lut Netlist Timing_sta Tlb_rtl
