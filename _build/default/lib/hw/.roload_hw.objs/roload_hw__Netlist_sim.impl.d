lib/hw/netlist_sim.ml: Array Hashtbl Int64 List Netlist
