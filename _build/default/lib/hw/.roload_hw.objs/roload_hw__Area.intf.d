lib/hw/area.mli: Map_lut
