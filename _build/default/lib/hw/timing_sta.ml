(* Static timing on the mapped netlist: a fixed LUT6 cell delay plus a
   per-level routing allowance and a utilization-dependent congestion
   term (more mapped LUTs → worse routing on the same fabric), evaluated
   against the 125 MHz target of the prototype (paper §V-A).  Constants
   are calibrated so the baseline design sits just inside timing closure,
   as on the paper's Kintex-7 board. *)

type constraints = {
  target_mhz : float;
  lut_delay_ns : float;
  net_delay_ns : float;
  clock_to_q_ns : float;
  setup_ns : float;
  congestion_ns_per_lut : float;
}

let kintex7_default =
  {
    target_mhz = 125.0;
    lut_delay_ns = 0.35;
    net_delay_ns = 0.46;
    clock_to_q_ns = 0.35;
    setup_ns = 0.06;
    congestion_ns_per_lut = 0.0001;
  }

type report = {
  critical_path_ns : float;
  period_ns : float;
  worst_slack_ns : float;
  fmax_mhz : float;
  lut_levels : int;
}

let analyze ?(constraints = kintex7_default) (mapping : Map_lut.mapping) =
  let period_ns = 1000.0 /. constraints.target_mhz in
  let levels = float_of_int mapping.Map_lut.depth in
  let critical_path_ns =
    constraints.clock_to_q_ns
    +. (levels *. (constraints.lut_delay_ns +. constraints.net_delay_ns))
    +. constraints.setup_ns
    +. (float_of_int mapping.Map_lut.luts *. constraints.congestion_ns_per_lut)
  in
  let worst_slack_ns = period_ns -. critical_path_ns in
  let fmax_mhz = 1000.0 /. critical_path_ns in
  {
    critical_path_ns;
    period_ns;
    worst_slack_ns;
    fmax_mhz;
    lut_levels = mapping.Map_lut.depth;
  }
