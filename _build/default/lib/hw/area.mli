(** Core- and system-level area accounting for Table III.  The TLB
    datapath is mapped for real; the surrounding core/system context is a
    calibrated constant from the paper's baseline synthesis, so the
    experiment reproduces the *increase* Table III evaluates. *)

type context = {
  core_base_luts : int;
  core_base_ffs : int;
  system_base_luts : int;
  system_base_ffs : int;
}

val paper_calibrated : context
(** 20,722/11,855 core and 37,428/29,913 system LUT/FF. *)

type cost = { luts : int; ffs : int }

type comparison = {
  baseline_tlb : cost;
  roload_tlb : cost;
  core_without : cost;
  core_with : cost;
  system_without : cost;
  system_with : cost;
  lut_increase_core_pct : float;
  ff_increase_core_pct : float;
  lut_increase_system_pct : float;
  ff_increase_system_pct : float;
}

val compare_designs :
  ?context:context ->
  baseline_mapping:Map_lut.mapping ->
  roload_mapping:Map_lut.mapping ->
  unit ->
  comparison
