(* Greedy LUT6 technology mapping.

   Combinational nodes are processed in topological order (the netlist is
   already topologically ordered by construction).  Each node forms a LUT
   whose leaves are its fanins' mapped outputs; a node greedily absorbs a
   fanin's cone when that fanin is combinational, has fanout 1, and the
   merged leaf support stays within 6 inputs.  DFFs map to flip-flops. *)

module IntSet = Set.Make (Int)

type mapping = {
  luts : int;
  ffs : int;
  (* for timing: the LUT level of each node's mapped output *)
  levels : int array;
  (* critical (deepest) LUT level across outputs *)
  depth : int;
}

let fanout_counts net =
  let n = Netlist.size net in
  let counts = Array.make n 0 in
  for i = 0 to n - 1 do
    List.iter (fun f -> counts.(f) <- counts.(f) + 1) (Netlist.fanins (Netlist.gate net i))
  done;
  List.iter (fun (_, o) -> counts.(o) <- counts.(o) + 1) net.Netlist.outputs;
  counts

let map net =
  let n = Netlist.size net in
  let fanout = fanout_counts net in
  (* support.(i): the set of LUT-boundary leaves feeding node i's cone;
     absorbed.(i): node i was merged into its (single) consumer's LUT *)
  let support = Array.make n IntSet.empty in
  let absorbed = Array.make n false in
  let levels = Array.make n 0 in
  let is_comb i =
    match Netlist.gate net i with
    | Netlist.Not _ | Netlist.And2 _ | Netlist.Or2 _ | Netlist.Xor2 _ | Netlist.Mux _ ->
      true
    | Netlist.Input _ | Netlist.Const _ | Netlist.Dff _ -> false
  in
  for i = 0 to n - 1 do
    match Netlist.gate net i with
    | Netlist.Input _ | Netlist.Const _ ->
      support.(i) <- IntSet.singleton i;
      levels.(i) <- 0
    | Netlist.Dff _ ->
      support.(i) <- IntSet.singleton i;
      levels.(i) <- 0
    | Netlist.Not _ | Netlist.And2 _ | Netlist.Or2 _ | Netlist.Xor2 _ | Netlist.Mux _ ->
      let fs = Netlist.fanins (Netlist.gate net i) in
      (* candidate leaves: try to absorb each combinational single-fanout
         fanin's cone; otherwise the fanin itself is a leaf *)
      let merged =
        List.fold_left
          (fun acc f ->
            if is_comb f && fanout.(f) = 1 then IntSet.union acc support.(f)
            else IntSet.add f acc)
          IntSet.empty fs
      in
      if IntSet.cardinal merged <= 6 then begin
        support.(i) <- merged;
        List.iter (fun f -> if is_comb f && fanout.(f) = 1 then absorbed.(f) <- true) fs;
        let leaf_level l = levels.(l) in
        levels.(i) <-
          1 + IntSet.fold (fun l acc -> max acc (leaf_level l)) merged 0
      end
      else begin
        (* keep fanins as leaves *)
        support.(i) <- List.fold_left (fun acc f -> IntSet.add f acc) IntSet.empty fs;
        levels.(i) <- 1 + List.fold_left (fun acc f -> max acc levels.(f)) 0 fs
      end
  done;
  let luts = ref 0 in
  for i = 0 to n - 1 do
    if is_comb i && not absorbed.(i) then incr luts
  done;
  let depth =
    List.fold_left (fun acc (_, o) -> max acc levels.(o)) 0 net.Netlist.outputs
  in
  { luts = !luts; ffs = Netlist.count_ffs net; levels; depth }
