lib/machine/trap.mli: Roload_mem
