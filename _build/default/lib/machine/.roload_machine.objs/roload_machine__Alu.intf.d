lib/machine/alu.mli: Roload_isa
