lib/machine/machine.ml: Alu Config Cpu Hashtbl Int64 Option Roload_cache Roload_isa Roload_mem Roload_util Trap
