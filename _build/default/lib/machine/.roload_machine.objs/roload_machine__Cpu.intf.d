lib/machine/cpu.mli: Roload_isa
