lib/machine/trap.ml: Printf Roload_mem
