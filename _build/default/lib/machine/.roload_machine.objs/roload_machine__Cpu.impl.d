lib/machine/cpu.ml: Array Buffer Int64 Printf Roload_isa
