lib/machine/alu.ml: Int32 Int64 Roload_isa Roload_util
