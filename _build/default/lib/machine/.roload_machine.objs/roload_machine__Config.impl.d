lib/machine/config.ml: Printf Roload_cache
