lib/machine/machine.mli: Config Cpu Roload_cache Roload_isa Roload_mem Trap
