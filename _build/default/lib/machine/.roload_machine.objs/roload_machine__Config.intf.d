lib/machine/config.mli: Roload_cache
