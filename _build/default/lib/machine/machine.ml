(* The machine top: fetch/decode/execute with a deterministic cycle model.

   Timing is intentionally simple but shape-preserving:
   - every instruction costs 1 base cycle;
   - instruction fetch and data accesses are charged through the L1
     caches; TLB misses charge the page-table walk;
   - branches use a static predictor (backward taken / forward not-taken)
     with a mispredict penalty; jalr pays an indirect-jump penalty unless
     it is a return (modelled return-address stack);
   - mul/div pay multi-cycle latencies.
   A ld.ro costs exactly as much as the equivalent ld: the read-only+key
   check runs in parallel inside the MMU (the paper's central performance
   claim). *)

module Perm = Roload_mem.Perm
module Mmu = Roload_mem.Mmu
module Phys_mem = Roload_mem.Phys_mem
module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg

type costs = {
  base : int;
  branch_mispredict : int;
  jalr_indirect : int;
  mul : int;
  div : int;
  ptw_step : int; (* cycles per page-table-walk level on a TLB miss *)
}

let default_costs =
  { base = 1; branch_mispredict = 3; jalr_indirect = 2; mul = 3; div = 32; ptw_step = 8 }

type exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

type t = {
  config : Config.t;
  cpu : Cpu.t;
  mem : Phys_mem.t;
  hierarchy : Roload_cache.Hierarchy.t;
  costs : costs;
  mutable mmu : Mmu.t option;
  decode_cache : (int, Inst.t * int) Hashtbl.t;
  counts : exec_counts;
  mutable trace : (pc:int -> Inst.t -> unit) option;
}

type step_result =
  | Continue
  | Trapped of Trap.t

let create ?(costs = default_costs) (config : Config.t) =
  {
    config;
    cpu = Cpu.create ();
    mem = Phys_mem.create ~size:config.Config.phys_mem_bytes;
    hierarchy =
      Roload_cache.Hierarchy.create ~icache_config:config.Config.icache
        ~dcache_config:config.Config.dcache ~latencies:config.Config.latencies ();
    costs;
    mmu = None;
    decode_cache = Hashtbl.create 4096;
    counts =
      { loads = 0; stores = 0; roloads = 0; branches = 0; jumps = 0; indirect_jumps = 0 };
    trace = None;
  }

let cpu t = t.cpu
let mem t = t.mem
let config t = t.config
let hierarchy t = t.hierarchy
let counts t = t.counts

let set_mmu t mmu =
  t.mmu <- mmu;
  Hashtbl.reset t.decode_cache

let set_trace t f = t.trace <- f

let mmu_exn t =
  match t.mmu with
  | Some m -> m
  | None -> failwith "Machine: no address space installed"

let charge_walk t steps = Cpu.add_cycles t.cpu (steps * t.costs.ptw_step)

(* ---- fetch ---- *)

let fetch_halfword t va =
  let mmu = mmu_exn t in
  match Mmu.translate mmu ~access:Perm.Fetch va with
  | Error f -> Error (Trap.of_mmu_fault ~pc:(Cpu.pc t.cpu) f)
  | Ok { pa; walk_steps; _ } ->
    charge_walk t walk_steps;
    Cpu.add_cycles t.cpu (Roload_cache.Hierarchy.access_ifetch t.hierarchy ~pa);
    Ok (pa, Phys_mem.read_u16 t.mem pa)

let fetch_decode t =
  let pc = Cpu.pc t.cpu in
  if pc land 1 <> 0 then
    Error (Trap.Misaligned_access { pc; va = pc; access = Perm.Fetch })
  else
    match fetch_halfword t pc with
    | Error tr -> Error tr
    | Ok (pa, hw) -> (
      match Hashtbl.find_opt t.decode_cache pa with
      | Some (inst, size) -> Ok (inst, size)
      | None ->
        let decoded =
          if Roload_isa.Decode.is_compressed_halfword hw then
            match Roload_isa.Compressed.decode hw with
            | Ok inst -> Ok (inst, 2)
            | Error info -> Error (Trap.Illegal_instruction { pc; info })
          else
            match fetch_halfword t (pc + 2) with
            | Error tr -> Error tr
            | Ok (_, hw2) -> (
              let word = hw lor (hw2 lsl 16) in
              match Roload_isa.Decode.decode word with
              | Ok inst -> Ok (inst, 4)
              | Error info -> Error (Trap.Illegal_instruction { pc; info }))
        in
        match decoded with
        | Ok (inst, size) ->
          Hashtbl.replace t.decode_cache pa (inst, size);
          Ok (inst, size)
        | Error tr -> Error tr)

(* ---- data access ---- *)

let check_alignment ~pc ~va ~width ~access =
  let bytes = Inst.width_bytes width in
  if va land (bytes - 1) <> 0 then Error (Trap.Misaligned_access { pc; va; access })
  else Ok ()

let read_phys t pa (width : Inst.width) ~unsigned =
  match width with
  | Inst.Byte ->
    let v = Int64.of_int (Phys_mem.read_u8 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:8
  | Inst.Half ->
    let v = Int64.of_int (Phys_mem.read_u16 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:16
  | Inst.Word ->
    let v = Int64.of_int (Phys_mem.read_u32 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:32
  | Inst.Double -> Phys_mem.read_u64 t.mem pa

let write_phys t pa (width : Inst.width) v =
  match width with
  | Inst.Byte -> Phys_mem.write_u8 t.mem pa (Int64.to_int (Int64.logand v 0xFFL))
  | Inst.Half -> Phys_mem.write_u16 t.mem pa (Int64.to_int (Int64.logand v 0xFFFFL))
  | Inst.Word -> Phys_mem.write_u32 t.mem pa (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Inst.Double -> Phys_mem.write_u64 t.mem pa v

let data_access t ~pc ~va ~access ~width ~unsigned ~store_value =
  let write = match access with Perm.Store -> true | Perm.Fetch | Perm.Load | Perm.Roload _ -> false in
  match check_alignment ~pc ~va ~width ~access with
  | Error tr -> Error tr
  | Ok () -> (
    match Mmu.translate (mmu_exn t) ~access va with
    | Error f -> Error (Trap.of_mmu_fault ~pc f)
    | Ok { pa; walk_steps; _ } ->
      charge_walk t walk_steps;
      Cpu.add_cycles t.cpu (Roload_cache.Hierarchy.access_data t.hierarchy ~pa ~write);
      if write then begin
        write_phys t pa width (Option.get store_value);
        Ok 0L
      end
      else Ok (read_phys t pa width ~unsigned))

(* ---- execute ---- *)

let to_addr v = Int64.to_int v
(* Addresses in this simulation live well below 2^62; negative or huge
   int64 values map to negative ints and fault in the MMU's range check. *)

let branch_taken (c : Inst.branch_cond) a b =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Roload_util.Bits.ult a b
  | Bgeu -> Roload_util.Bits.uge a b

let step t =
  match fetch_decode t with
  | Error tr -> Trapped tr
  | Ok (inst, size) -> (
    let cpu = t.cpu in
    let pc = Cpu.pc cpu in
    (match t.trace with Some f -> f ~pc inst | None -> ());
    let next = pc + size in
    Cpu.add_cycles cpu t.costs.base;
    let continue_at pc' =
      Cpu.set_pc cpu pc';
      Cpu.retire cpu;
      Continue
    in
    match inst with
    | Inst.Lui (rd, imm) ->
      Cpu.set cpu rd (Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32);
      continue_at next
    | Inst.Auipc (rd, imm) ->
      let v =
        Int64.add (Int64.of_int pc)
          (Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32)
      in
      Cpu.set cpu rd v;
      continue_at next
    | Inst.Jal (rd, off) ->
      t.counts.jumps <- t.counts.jumps + 1;
      Cpu.set cpu rd (Int64.of_int next);
      continue_at (pc + Int64.to_int off)
    | Inst.Jalr (rd, rs1, imm) ->
      t.counts.jumps <- t.counts.jumps + 1;
      let target = Int64.logand (Int64.add (Cpu.get cpu rs1) imm) (-2L) in
      let is_return = Reg.to_int rd = 0 && Reg.to_int rs1 = 1 in
      if not is_return then begin
        t.counts.indirect_jumps <- t.counts.indirect_jumps + 1;
        Cpu.add_cycles cpu t.costs.jalr_indirect
      end;
      Cpu.set cpu rd (Int64.of_int next);
      continue_at (to_addr target)
    | Inst.Branch (c, rs1, rs2, off) ->
      t.counts.branches <- t.counts.branches + 1;
      let taken = branch_taken c (Cpu.get cpu rs1) (Cpu.get cpu rs2) in
      let backward = Int64.compare off 0L < 0 in
      let predicted_taken = backward in
      if taken <> predicted_taken then Cpu.add_cycles cpu t.costs.branch_mispredict;
      continue_at (if taken then pc + Int64.to_int off else next)
    | Inst.Load { width; unsigned; rd; rs1; imm } -> (
      t.counts.loads <- t.counts.loads + 1;
      let va = to_addr (Int64.add (Cpu.get cpu rs1) imm) in
      match
        data_access t ~pc ~va ~access:Perm.Load ~width ~unsigned ~store_value:None
      with
      | Error tr -> Trapped tr
      | Ok v ->
        Cpu.set cpu rd v;
        continue_at next)
    | Inst.Load_ro { width; unsigned; rd; rs1; key } -> (
      if not t.config.Config.roload_processor then
        (* Baseline Rocket: the custom-0 opcode is not implemented. *)
        Trapped (Trap.Illegal_instruction { pc; info = "ld.ro: no ROLoad support" })
      else begin
        t.counts.roloads <- t.counts.roloads + 1;
        let va = to_addr (Cpu.get cpu rs1) in
        match
          data_access t ~pc ~va ~access:(Perm.Roload key) ~width ~unsigned
            ~store_value:None
        with
        | Error tr -> Trapped tr
        | Ok v ->
          Cpu.set cpu rd v;
          continue_at next
      end)
    | Inst.Store { width; rs2; rs1; imm } -> (
      t.counts.stores <- t.counts.stores + 1;
      let va = to_addr (Int64.add (Cpu.get cpu rs1) imm) in
      match
        data_access t ~pc ~va ~access:Perm.Store ~width ~unsigned:false
          ~store_value:(Some (Cpu.get cpu rs2))
      with
      | Error tr -> Trapped tr
      | Ok _ -> continue_at next)
    | Inst.Op_imm (op, rd, rs1, imm) ->
      Cpu.set cpu rd (Alu.op op (Cpu.get cpu rs1) imm);
      continue_at next
    | Inst.Op_imm_w (op, rd, rs1, imm) ->
      Cpu.set cpu rd (Alu.op_w op (Cpu.get cpu rs1) imm);
      continue_at next
    | Inst.Op (op, rd, rs1, rs2) ->
      Cpu.set cpu rd (Alu.op op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Op_w (op, rd, rs1, rs2) ->
      Cpu.set cpu rd (Alu.op_w op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Mulop (op, rd, rs1, rs2) ->
      (match op with
      | Inst.Mul | Inst.Mulh | Inst.Mulhsu | Inst.Mulhu -> Cpu.add_cycles cpu t.costs.mul
      | Inst.Div | Inst.Divu | Inst.Rem | Inst.Remu -> Cpu.add_cycles cpu t.costs.div);
      Cpu.set cpu rd (Alu.mulop op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Mulop_w (op, rd, rs1, rs2) ->
      (match op with
      | Inst.Mulw -> Cpu.add_cycles cpu t.costs.mul
      | Inst.Divw | Inst.Divuw | Inst.Remw | Inst.Remuw ->
        Cpu.add_cycles cpu (t.costs.div / 2));
      Cpu.set cpu rd (Alu.mulop_w op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Ecall ->
      (* pc stays at the ecall; the kernel advances it after servicing. *)
      Cpu.retire cpu;
      Trapped Trap.Ecall
    | Inst.Ebreak ->
      Cpu.retire cpu;
      Trapped Trap.Breakpoint
    | Inst.Fence -> continue_at next)

(* Run until a trap; the caller (kernel) decides whether to resume. *)
let run_until_trap ?(max_steps = max_int) t =
  let rec go n =
    if n >= max_steps then None
    else
      match step t with
      | Continue -> go (n + 1)
      | Trapped tr -> Some tr
  in
  go 0
