(** Trap causes delivered from the simulated processor to the kernel.
    ROLoad check failures are a distinct cause (paper §III-B). *)

type t =
  | Ecall
  | Breakpoint
  | Illegal_instruction of { pc : int; info : string }
  | Misaligned_access of { pc : int; va : int; access : Roload_mem.Perm.access }
  | Fetch_page_fault of { pc : int; va : int }
  | Load_page_fault of { pc : int; va : int }
  | Store_page_fault of { pc : int; va : int }
  | Roload_page_fault of {
      pc : int;
      va : int;
      key_requested : int;
      page_key : int;
      page_perms : Roload_mem.Perm.t;
    }

val to_string : t -> string
val of_mmu_fault : pc:int -> Roload_mem.Mmu.fault -> t
