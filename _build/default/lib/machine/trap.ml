(* Trap causes delivered from the simulated processor to the kernel.  The
   ROLoad check failure is a distinct cause so the kernel can triage it
   (paper §III-B: the kernel "first distinguishes load page faults raised
   by ROLoad-family instructions from benign load page faults"). *)

type t =
  | Ecall (* environment call; the kernel reads the syscall ABI registers *)
  | Breakpoint
  | Illegal_instruction of { pc : int; info : string }
  | Misaligned_access of { pc : int; va : int; access : Roload_mem.Perm.access }
  | Fetch_page_fault of { pc : int; va : int }
  | Load_page_fault of { pc : int; va : int }
  | Store_page_fault of { pc : int; va : int }
  | Roload_page_fault of {
      pc : int;
      va : int;
      key_requested : int;
      page_key : int;
      page_perms : Roload_mem.Perm.t;
    }

let to_string = function
  | Ecall -> "ecall"
  | Breakpoint -> "breakpoint"
  | Illegal_instruction { pc; info } ->
    Printf.sprintf "illegal instruction at 0x%x (%s)" pc info
  | Misaligned_access { pc; va; access } ->
    Printf.sprintf "misaligned %s at 0x%x (pc 0x%x)"
      (Roload_mem.Perm.access_to_string access) va pc
  | Fetch_page_fault { pc; va } -> Printf.sprintf "fetch page fault at 0x%x (pc 0x%x)" va pc
  | Load_page_fault { pc; va } -> Printf.sprintf "load page fault at 0x%x (pc 0x%x)" va pc
  | Store_page_fault { pc; va } -> Printf.sprintf "store page fault at 0x%x (pc 0x%x)" va pc
  | Roload_page_fault { pc; va; key_requested; page_key; page_perms } ->
    Printf.sprintf
      "ROLoad page fault at 0x%x (pc 0x%x): key %d requested, page key %d, perms %s"
      va pc key_requested page_key (Roload_mem.Perm.to_string page_perms)

let of_mmu_fault ~pc (fault : Roload_mem.Mmu.fault) =
  match fault with
  | Roload_mem.Mmu.Roload_fault { va; key_requested; page_key; page_perms } ->
    Roload_page_fault { pc; va; key_requested; page_key; page_perms }
  | Roload_mem.Mmu.Page_fault { va; access } -> (
    match access with
    | Roload_mem.Perm.Fetch -> Fetch_page_fault { pc; va }
    | Roload_mem.Perm.Load | Roload_mem.Perm.Roload _ -> Load_page_fault { pc; va }
    | Roload_mem.Perm.Store -> Store_page_fault { pc; va })
