(** The machine top: fetch/decode/execute with a deterministic cycle
    model.  A [ld.ro] costs exactly as much as the equivalent [ld] — the
    read-only + key check runs in parallel inside the MMU, which is the
    paper's central performance claim. *)

type costs = {
  base : int;
  branch_mispredict : int;
  jalr_indirect : int;
  mul : int;
  div : int;
  ptw_step : int;
}

val default_costs : costs

type exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

type t

type step_result = Continue | Trapped of Trap.t

val create : ?costs:costs -> Config.t -> t
val cpu : t -> Cpu.t
val mem : t -> Roload_mem.Phys_mem.t
val config : t -> Config.t
val hierarchy : t -> Roload_cache.Hierarchy.t
val counts : t -> exec_counts

val set_mmu : t -> Roload_mem.Mmu.t option -> unit
(** Install the scheduled process's address space (clears the decode
    cache). *)

val set_trace : t -> (pc:int -> Roload_isa.Inst.t -> unit) option -> unit
(** Install an instruction-retirement hook (debugging/tracing). *)

val step : t -> step_result
(** Execute one instruction. On [Trapped Ecall] the pc still points at the
    ecall; the kernel advances it after servicing. *)

val run_until_trap : ?max_steps:int -> t -> Trap.t option
(** Run until a trap occurs; [None] when [max_steps] was exhausted
    first. *)
