(** Architectural CPU state: integer register file, program counter, and
    retirement/cycle counters. Register x0 reads as zero and ignores
    writes. *)

type t

val create : unit -> t
val get : t -> Roload_isa.Reg.t -> int64
val set : t -> Roload_isa.Reg.t -> int64 -> unit
val pc : t -> int
val set_pc : t -> int -> unit
val instret : t -> int64
val cycles : t -> int64
val add_cycles : t -> int -> unit
val retire : t -> unit
val reset : t -> unit
val dump : t -> string
