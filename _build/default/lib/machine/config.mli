(** Machine configuration, mirroring Table II of the paper. *)

type t = {
  isa : string;
  phys_mem_bytes : int;
  icache : Roload_cache.Cache.config;
  dcache : Roload_cache.Cache.config;
  itlb_entries : int;
  dtlb_entries : int;
  latencies : Roload_cache.Hierarchy.latencies;
  roload_processor : bool;
      (** Whether the processor decodes the ld.ro family and the MMU
          performs the key check. *)
}

val default : t
(** The prototype configuration (ROLoad-capable processor). *)

val baseline : t
(** The unmodified processor: ld.ro is an illegal instruction. *)

val rows : t -> (string * string) list
(** Human-readable key/value rows (Table II). *)
