(* Machine configuration, mirroring Table II of the paper. *)

type t = {
  isa : string;
  phys_mem_bytes : int;
  icache : Roload_cache.Cache.config;
  dcache : Roload_cache.Cache.config;
  itlb_entries : int;
  dtlb_entries : int;
  latencies : Roload_cache.Hierarchy.latencies;
  roload_processor : bool;
      (* true = the processor decodes the ld.ro family and the MMU performs
         the key check (the paper's "processor-modified" system); false =
         baseline Rocket, where ld.ro is an illegal instruction *)
}

(* The paper's prototype: RV64IMAC, 32 KiB 8-way L1I$/L1D$, 32-entry I-TLB
   and D-TLB, 4 GiB DDR3.  We scale physical memory down to 64 MiB — the
   workloads are scaled accordingly — and omit A (atomics) since the
   simulated system is single-core. *)
let default =
  {
    isa = "RV64IMC (+ld.ro family)";
    phys_mem_bytes = 64 * 1024 * 1024;
    icache = Roload_cache.Hierarchy.default_l1_config;
    dcache = Roload_cache.Hierarchy.default_l1_config;
    itlb_entries = 32;
    dtlb_entries = 32;
    latencies = Roload_cache.Hierarchy.default_latencies;
    roload_processor = true;
  }

let baseline = { default with isa = "RV64IMC"; roload_processor = false }

let rows t =
  [
    ("ISA", t.isa);
    ("Caches",
     Printf.sprintf "%dKiB %d-way L1I$, %dKiB %d-way L1D$"
       (t.icache.Roload_cache.Cache.size_bytes / 1024) t.icache.Roload_cache.Cache.ways
       (t.dcache.Roload_cache.Cache.size_bytes / 1024) t.dcache.Roload_cache.Cache.ways);
    ("TLBs", Printf.sprintf "%d-entry I-TLB, %d-entry D-TLB" t.itlb_entries t.dtlb_entries);
    ("Memory", Printf.sprintf "%d MiB simulated DRAM" (t.phys_mem_bytes / 1024 / 1024));
    ("ROLoad processor support", string_of_bool t.roload_processor);
  ]
