(** RV64 integer arithmetic semantics, including the M-extension edge
    cases (division by zero, signed overflow). *)

val sext32 : int64 -> int64
val op : Roload_isa.Inst.alu_op -> int64 -> int64 -> int64
val op_w : Roload_isa.Inst.alu_w_op -> int64 -> int64 -> int64
val mulop : Roload_isa.Inst.mul_op -> int64 -> int64 -> int64
val mulop_w : Roload_isa.Inst.mul_w_op -> int64 -> int64 -> int64
val mulhu : int64 -> int64 -> int64
val mulh : int64 -> int64 -> int64
val mulhsu : int64 -> int64 -> int64
