(* RV64 integer arithmetic semantics, including the M-extension edge cases
   (division by zero, signed overflow) as mandated by the RISC-V spec. *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let shamt6 v = Int64.to_int (Int64.logand v 0x3FL)
let shamt5 v = Int64.to_int (Int64.logand v 0x1FL)

let bool64 b = if b then 1L else 0L

let op (o : Roload_isa.Inst.alu_op) a b =
  match o with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a (shamt6 b)
  | Slt -> bool64 (Int64.compare a b < 0)
  | Sltu -> bool64 (Roload_util.Bits.ult a b)
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a (shamt6 b)
  | Sra -> Int64.shift_right a (shamt6 b)
  | Or -> Int64.logor a b
  | And -> Int64.logand a b

let op_w (o : Roload_isa.Inst.alu_w_op) a b =
  match o with
  | Addw -> sext32 (Int64.add a b)
  | Subw -> sext32 (Int64.sub a b)
  | Sllw -> sext32 (Int64.shift_left a (shamt5 b))
  | Srlw ->
    let a32 = Int64.logand a 0xFFFFFFFFL in
    sext32 (Int64.shift_right_logical a32 (shamt5 b))
  | Sraw -> sext32 (Int64.shift_right (sext32 a) (shamt5 b))

(* High 64 bits of the unsigned 128-bit product, by 32-bit limbs. *)
let mulhu a b =
  let lo32 = 0xFFFFFFFFL in
  let a0 = Int64.logand a lo32 and a1 = Int64.shift_right_logical a 32 in
  let b0 = Int64.logand b lo32 and b1 = Int64.shift_right_logical b 32 in
  let t = Int64.mul a0 b0 in
  let k = Int64.shift_right_logical t 32 in
  let t1 = Int64.add (Int64.mul a1 b0) k in
  let k1 = Int64.logand t1 lo32 in
  let k2 = Int64.shift_right_logical t1 32 in
  let t2 = Int64.add (Int64.mul a0 b1) k1 in
  Int64.add (Int64.add (Int64.mul a1 b1) k2) (Int64.shift_right_logical t2 32)

let mulh a b =
  let u = mulhu a b in
  let u = if Int64.compare a 0L < 0 then Int64.sub u b else u in
  if Int64.compare b 0L < 0 then Int64.sub u a else u

let mulhsu a b =
  let u = mulhu a b in
  if Int64.compare a 0L < 0 then Int64.sub u b else u

let div_signed a b =
  if b = 0L then -1L
  else if a = Int64.min_int && b = -1L then Int64.min_int
  else Int64.div a b

let rem_signed a b =
  if b = 0L then a
  else if a = Int64.min_int && b = -1L then 0L
  else Int64.rem a b

let div_unsigned a b = if b = 0L then -1L else Roload_util.Bits.udiv a b
let rem_unsigned a b = if b = 0L then a else Roload_util.Bits.urem a b

let mulop (o : Roload_isa.Inst.mul_op) a b =
  match o with
  | Mul -> Int64.mul a b
  | Mulh -> mulh a b
  | Mulhsu -> mulhsu a b
  | Mulhu -> mulhu a b
  | Div -> div_signed a b
  | Divu -> div_unsigned a b
  | Rem -> rem_signed a b
  | Remu -> rem_unsigned a b

let mulop_w (o : Roload_isa.Inst.mul_w_op) a b =
  let a32 = sext32 a and b32 = sext32 b in
  match o with
  | Mulw -> sext32 (Int64.mul a32 b32)
  | Divw ->
    if b32 = 0L then -1L
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then sext32 a32
    else sext32 (Int64.div a32 b32)
  | Divuw ->
    let au = Int64.logand a 0xFFFFFFFFL and bu = Int64.logand b 0xFFFFFFFFL in
    if bu = 0L then -1L else sext32 (Int64.div au bu)
  | Remw ->
    if b32 = 0L then sext32 a32
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then 0L
    else sext32 (Int64.rem a32 b32)
  | Remuw ->
    let au = Int64.logand a 0xFFFFFFFFL and bu = Int64.logand b 0xFFFFFFFFL in
    if bu = 0L then sext32 au else sext32 (Int64.rem au bu)
