lib/ir/ir.ml: Buffer Hashtbl Int64 List Option Printf String
