lib/ir/ir.mli:
