lib/ir/verify.ml: Ir List Printf String
