(** IR well-formedness checks, run after lowering and after each pass:
    branch targets exist, temps are in range, frame slots are declared,
    vtable symbols and methods resolve. *)

val check_func : Ir.func -> string list
(** Error descriptions; empty when well-formed. *)

val check_module : Ir.modul -> string list
val check_module_exn : Ir.modul -> unit
(** Raises [Failure] listing all errors. *)
