(** Syscall ABI constants.  [mmap] gains a key argument (a4) and
    [mprotect] a key argument (a3) — the modified kernel's page-key
    interfaces (paper §III-B). *)

val sys_exit : int
val sys_write : int
val sys_brk : int
val sys_mmap : int
val sys_mprotect : int

val prot_read : int
val prot_write : int
val prot_exec : int
val perms_of_prot : int -> Roload_mem.Perm.t

val enosys : int
val einval : int
val enomem : int
val ebadf : int

val name : int -> string
