lib/kernel/signal.mli: Roload_mem
