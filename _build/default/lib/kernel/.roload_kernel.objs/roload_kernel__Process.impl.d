lib/kernel/process.ml: Buffer Bytes Char Printf Roload_mem Roload_obj Signal String
