lib/kernel/kernel.mli: Process Roload_machine Roload_obj
