lib/kernel/signal.ml: Printf Roload_mem
