lib/kernel/syscall.ml: Printf Roload_mem
