lib/kernel/syscall.mli: Roload_mem
