lib/kernel/kernel.ml: Int64 List Process Roload_isa Roload_machine Roload_mem Roload_obj Roload_util Signal String Syscall
