lib/kernel/process.mli: Roload_mem Roload_obj Signal
