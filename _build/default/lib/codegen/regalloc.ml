(* Linear-scan register allocation over the liveness intervals.

   Pools: callee-saved s1..s11 (usable by any interval; required for
   intervals that cross a call) and caller-saved t3..t6 (only for
   call-free intervals).  t0/t1/t2 are reserved as emission scratch;
   a-registers carry arguments/results and are never allocated.
   Intervals that do not fit are spilled to frame slots. *)

module Ir = Roload_ir.Ir
module Reg = Roload_isa.Reg

type location =
  | In_reg of Reg.t
  | Spilled of int (* spill slot index *)

type allocation = {
  locations : (Ir.temp, location) Hashtbl.t;
  used_callee_saved : Reg.t list; (* to save/restore in the prologue *)
  spill_count : int;
}

let callee_pool = [ Reg.s1; Reg.s2; Reg.s3; Reg.s4; Reg.s5; Reg.s6; Reg.s7; Reg.s8;
                    Reg.s9; Reg.s10; Reg.s11 ]

let caller_pool = [ Reg.t3; Reg.t4; Reg.t5; Reg.t6 ]

let allocate (live : Liveness.t) =
  let locations = Hashtbl.create 64 in
  let free_callee = ref callee_pool in
  let free_caller = ref caller_pool in
  let used_callee = ref [] in
  let spill_count = ref 0 in
  (* active: (end_pos, temp, reg, from_callee_pool) *)
  let active = ref [] in
  let expire pos =
    let still, done_ = List.partition (fun (e, _, _, _) -> e >= pos) !active in
    active := still;
    List.iter
      (fun (_, _, r, from_callee) ->
        if from_callee then free_callee := r :: !free_callee
        else free_caller := r :: !free_caller)
      done_
  in
  List.iter
    (fun (iv : Liveness.interval) ->
      expire iv.Liveness.start_pos;
      let take_callee () =
        match !free_callee with
        | r :: rest ->
          free_callee := rest;
          if not (List.mem r !used_callee) then used_callee := r :: !used_callee;
          Some (r, true)
        | [] -> None
      in
      let take_caller () =
        match !free_caller with
        | r :: rest ->
          free_caller := rest;
          Some (r, false)
        | [] -> None
      in
      let choice =
        if iv.Liveness.crosses_call then take_callee ()
        else
          match take_caller () with
          | Some c -> Some c
          | None -> take_callee ()
      in
      match choice with
      | Some (r, from_callee) ->
        Hashtbl.replace locations iv.Liveness.temp (In_reg r);
        active := (iv.Liveness.end_pos, iv.Liveness.temp, r, from_callee) :: !active
      | None ->
        let slot = !spill_count in
        incr spill_count;
        Hashtbl.replace locations iv.Liveness.temp (Spilled slot))
    live.Liveness.intervals;
  {
    locations;
    used_callee_saved = List.rev !used_callee;
    spill_count = !spill_count;
  }

let location alloc t =
  match Hashtbl.find_opt alloc.locations t with
  | Some l -> l
  | None ->
    (* a temp that is never live (dead definition): give it a throwaway
       scratch location; Spilled slots are bounds-checked by the emitter *)
    In_reg Reg.t0
