(** Backward liveness dataflow over the IR CFG, producing per-temp live
    intervals on the linearized instruction order (positions start at 1;
    parameter definitions occupy position 0) plus the set of call
    positions. *)

module IntSet : Set.S with type elt = int

type interval = {
  temp : Roload_ir.Ir.temp;
  start_pos : int;
  end_pos : int;
  crosses_call : bool;
      (** a call position lies strictly inside the interval — the temp
          must survive a call and needs a callee-saved register *)
}

type t = {
  intervals : interval list;  (** sorted by start position *)
  call_positions : IntSet.t;
  num_positions : int;
}

val analyze : Roload_ir.Ir.func -> t
