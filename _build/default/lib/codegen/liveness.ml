(* Backward liveness dataflow over the IR CFG, producing per-temp live
   intervals on the linearized instruction order (for linear-scan
   allocation) plus the set of positions that are calls. *)

module Ir = Roload_ir.Ir
module IntSet = Set.Make (Int)

type interval = {
  temp : Ir.temp;
  start_pos : int;
  end_pos : int;
  crosses_call : bool;
}

type t = {
  intervals : interval list; (* sorted by start_pos *)
  call_positions : IntSet.t;
  num_positions : int;
}

(* Linearized positions: blocks in order; each instruction one position;
   the terminator takes one more. *)
let analyze (f : Ir.func) =
  let blocks = Array.of_list f.Ir.f_blocks in
  let nblocks = Array.length blocks in
  let label_index = Hashtbl.create 16 in
  Array.iteri (fun i b -> Hashtbl.add label_index b.Ir.b_label i) blocks;
  (* positions — starting at 1 so that parameter definitions (position 0)
     precede the first instruction; otherwise a call that happens to be
     the first instruction would share position 0 with the parameter defs
     and parameters live across it would not count as call-crossing *)
  let block_start = Array.make nblocks 0 in
  let pos = ref 1 in
  Array.iteri
    (fun i b ->
      block_start.(i) <- !pos;
      pos := !pos + List.length b.Ir.b_instrs + 1)
    blocks;
  let num_positions = !pos in
  (* block-level use/def *)
  let use = Array.make nblocks IntSet.empty in
  let def = Array.make nblocks IntSet.empty in
  Array.iteri
    (fun i b ->
      let u = ref IntSet.empty and d = ref IntSet.empty in
      List.iter
        (fun ins ->
          List.iter (fun t -> if not (IntSet.mem t !d) then u := IntSet.add t !u)
            (Ir.instr_uses ins);
          List.iter (fun t -> d := IntSet.add t !d) (Ir.instr_defs ins))
        b.Ir.b_instrs;
      List.iter (fun t -> if not (IntSet.mem t !d) then u := IntSet.add t !u)
        (Ir.term_uses b.Ir.b_term);
      use.(i) <- !u;
      def.(i) <- !d)
    blocks;
  (* fixpoint for live_out *)
  let live_in = Array.make nblocks IntSet.empty in
  let live_out = Array.make nblocks IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nblocks - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc l ->
            match Hashtbl.find_opt label_index l with
            | Some j -> IntSet.union acc live_in.(j)
            | None -> acc)
          IntSet.empty
          (Ir.successors blocks.(i).Ir.b_term)
      in
      let inn = IntSet.union use.(i) (IntSet.diff out def.(i)) in
      if not (IntSet.equal out live_out.(i)) || not (IntSet.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  (* per-position live ranges: walk each block backward *)
  let first = Hashtbl.create 64 and last = Hashtbl.create 64 in
  let call_positions = ref IntSet.empty in
  let touch t p =
    (match Hashtbl.find_opt first t with
    | Some q when q <= p -> ()
    | Some _ | None -> Hashtbl.replace first t p);
    match Hashtbl.find_opt last t with
    | Some q when q >= p -> ()
    | Some _ | None -> Hashtbl.replace last t p
  in
  Array.iteri
    (fun i b ->
      let instrs = Array.of_list b.Ir.b_instrs in
      let n = Array.length instrs in
      let term_pos = block_start.(i) + n in
      (* live set just after each position *)
      let live = ref live_out.(i) in
      (* terminator *)
      IntSet.iter (fun t -> touch t term_pos) !live;
      List.iter
        (fun t ->
          live := IntSet.add t !live;
          touch t term_pos)
        (Ir.term_uses b.Ir.b_term);
      for k = n - 1 downto 0 do
        let p = block_start.(i) + k in
        let ins = instrs.(k) in
        if Ir.is_call ins then call_positions := IntSet.add p !call_positions;
        (* defs end liveness (looking backward) but the def position itself
           is part of the interval *)
        List.iter
          (fun t ->
            touch t p;
            live := IntSet.remove t !live)
          (Ir.instr_defs ins);
        List.iter
          (fun t ->
            live := IntSet.add t !live;
            touch t p)
          (Ir.instr_uses ins);
        IntSet.iter (fun t -> touch t p) !live
      done;
      (* anything live-in is live at the block start *)
      IntSet.iter (fun t -> touch t block_start.(i)) live_in.(i))
    blocks;
  (* parameters are defined at position 0 *)
  List.iter (fun t -> touch t 0) f.Ir.f_params;
  let intervals =
    Hashtbl.fold
      (fun t s acc ->
        let e = Hashtbl.find last t in
        acc
        @ [ { temp = t; start_pos = s; end_pos = e; crosses_call = false } ])
      first []
  in
  (* mark call crossings: interval strictly containing a call position
     (a call's own def/uses do not need to survive it) *)
  let calls = !call_positions in
  (* A temp crosses a call iff a call position lies strictly inside its
     interval: a call's own arguments die at the call, and its result is
     defined after it returns. *)
  let intervals =
    List.map
      (fun iv ->
        let crosses = IntSet.exists (fun c -> iv.start_pos < c && c < iv.end_pos) calls in
        { iv with crosses_call = crosses })
      intervals
  in
  let intervals = List.sort (fun a b -> compare a.start_pos b.start_pos) intervals in
  { intervals; call_positions = calls; num_positions }
