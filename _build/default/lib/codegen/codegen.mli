(** Code generation: IR modules → assembler items.

    Hardening metadata lowers here: roload keys become ld.ro (plus an
    addi when an address offset is needed — paper §III-C); vtint becomes
    a read-only-range check against [__ro_start]/[__ro_end]; CFI labels
    become a [lui x0, id] word before the function entry and an id-word
    comparison before the indirect jump. *)

exception Error of string

val ro_start_symbol : string
val ro_end_symbol : string

type ret_protection = {
  rp_key : int;
  rp_local_funcs : string list;
  rp_counter : int ref;
}
(** Backward-edge protection (paper §IV-C), driven by [m_ret_key]:
    module-local calls pass a keyed return-site-cell address in ra and
    epilogues return through ld.ro. *)

val emit_function :
  ?ret_protection:ret_protection -> Roload_ir.Ir.func -> Roload_asm.Asm_ir.item list

val emit_global : Roload_ir.Ir.global -> Roload_asm.Asm_ir.item list
val emit_module : Roload_ir.Ir.modul -> Roload_asm.Asm_ir.item list
