(** Linear-scan register allocation.  Pools: callee-saved s1..s11 (the
    only option for call-crossing intervals) and caller-saved t3..t6.
    t0/t1/t2 stay reserved as emission scratch; a-registers carry
    arguments and are never allocated.  Unplaceable intervals spill to
    frame slots. *)

type location = In_reg of Roload_isa.Reg.t | Spilled of int

type allocation = {
  locations : (Roload_ir.Ir.temp, location) Hashtbl.t;
  used_callee_saved : Roload_isa.Reg.t list;
  spill_count : int;
}

val callee_pool : Roload_isa.Reg.t list
val caller_pool : Roload_isa.Reg.t list
val allocate : Liveness.t -> allocation
val location : allocation -> Roload_ir.Ir.temp -> location
