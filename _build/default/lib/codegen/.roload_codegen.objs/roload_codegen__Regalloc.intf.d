lib/codegen/regalloc.mli: Hashtbl Liveness Roload_ir Roload_isa
