lib/codegen/codegen.ml: Array Int64 List Liveness Printf Regalloc Roload_asm Roload_ir Roload_isa Roload_util
