lib/codegen/liveness.mli: Roload_ir Set
