lib/codegen/liveness.ml: Array Hashtbl Int List Roload_ir Set
