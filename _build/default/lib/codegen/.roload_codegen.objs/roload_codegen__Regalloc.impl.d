lib/codegen/regalloc.ml: Hashtbl List Liveness Roload_ir Roload_isa
