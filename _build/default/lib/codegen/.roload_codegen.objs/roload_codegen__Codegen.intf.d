lib/codegen/codegen.mli: Roload_asm Roload_ir
