(* Lexer for MiniC, the C subset (plus classes with virtual methods and
   function-pointer typedefs) the workloads and examples are written in. *)

type token =
  | INT_LIT of int64
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  | KW of string (* int char void if else while for return break continue
                    typedef struct class virtual new sizeof *)
  | PUNCT of string (* operators and delimiters *)
  | EOF

type lexed = { tok : token; line : int }

exception Lex_error of { line : int; message : string }

let keywords =
  [ "int"; "char"; "void"; "if"; "else"; "while"; "for"; "return"; "break";
    "continue"; "typedef"; "struct"; "class"; "virtual"; "new"; "sizeof"; "null" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let i = ref 0 in
  let fail fmt = Printf.ksprintf (fun message -> raise (Lex_error { line = !line; message })) fmt in
  let push tok = toks := { tok; line = !line } :: !toks in
  let escape c =
    match c with
    | 'n' -> '\n'
    | 't' -> '\t'
    | 'r' -> '\r'
    | '0' -> '\000'
    | '\\' -> '\\'
    | '\'' -> '\''
    | '"' -> '"'
    | c -> fail "bad escape \\%c" c
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let rec skip () =
        if !i + 1 >= n then fail "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
        else begin
          if src.[!i] = '\n' then incr line;
          incr i;
          skip ()
        end
      in
      skip ()
    end
    else if is_digit c then begin
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') then begin
        i := !i + 2;
        while !i < n && (is_digit src.[!i] || (Char.lowercase_ascii src.[!i] >= 'a' && Char.lowercase_ascii src.[!i] <= 'f')) do incr i done
      end
      else while !i < n && is_digit src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      match Int64.of_string_opt s with
      | Some v -> push (INT_LIT v)
      | None -> fail "bad integer literal %s" s
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) else push (IDENT s)
    end
    else if c = '\'' then begin
      incr i;
      if !i >= n then fail "unterminated char literal";
      let ch =
        if src.[!i] = '\\' then begin
          incr i;
          if !i >= n then fail "unterminated char literal";
          let e = escape src.[!i] in
          incr i;
          e
        end
        else begin
          let ch = src.[!i] in
          incr i;
          ch
        end
      in
      if !i >= n || src.[!i] <> '\'' then fail "unterminated char literal";
      incr i;
      push (CHAR_LIT ch)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail "unterminated string literal"
        else if src.[!i] = '"' then incr i
        else if src.[!i] = '\\' then begin
          if !i + 1 >= n then fail "unterminated string literal";
          Buffer.add_char b (escape src.[!i + 1]);
          i := !i + 2;
          go ()
        end
        else begin
          Buffer.add_char b src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      push (STRING_LIT (Buffer.contents b))
    end
    else begin
      (* punctuation: longest match first *)
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let matched =
        match two with
        | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>" | "->" | "+=" | "-=" -> Some two
        | _ -> None
      in
      match matched with
      | Some p ->
        push (PUNCT p);
        i := !i + 2
      | None -> (
        match c with
        | '+' | '-' | '*' | '/' | '%' | '=' | '<' | '>' | '!' | '&' | '|' | '^' | '~'
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' | ':' ->
          push (PUNCT (String.make 1 c));
          incr i
        | c -> fail "unexpected character %C" c)
    end
  done;
  push EOF;
  List.rev !toks
