(** Semantic analysis + lowering of MiniC to the IR.  Classes get a vptr
    in their first word; vtables become read-only globals recorded in
    [m_vtables] so hardening passes can re-key them. *)

exception Sema_error of { line : int; message : string }

val vtable_symbol : string -> string
(** ["__vt$<class>"]. *)

val lower : Ast.program -> module_name:string -> Roload_ir.Ir.modul
(** Raises {!Sema_error} with a source line on any semantic violation. *)
