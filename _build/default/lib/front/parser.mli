(** Recursive-descent parser for MiniC. *)

exception Parse_error of { line : int; message : string }

val parse : string -> Ast.program
