(* Abstract syntax of MiniC. *)

type ty =
  | T_int
  | T_char
  | T_void
  | T_named of string (* struct/class/typedef name, resolved in lowering *)
  | T_ptr of ty

let rec ty_to_string = function
  | T_int -> "int"
  | T_char -> "char"
  | T_void -> "void"
  | T_named n -> n
  | T_ptr t -> ty_to_string t ^ "*"

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor (* short-circuit *)

type unop = Neg | Not | Bnot | Deref | Addr_of

type expr = { e : expr_kind; line : int }

and expr_kind =
  | Int_lit of int64
  | Char_lit of char
  | String_lit of string
  | Null
  | Ident of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr (* a[i] *)
  | Member of expr * string (* p->f for pointers (also used for '.') *)
  | Call of expr * expr list (* callee expression: Ident or fptr-valued *)
  | Method_call of expr * string * expr list (* p->m(args) *)
  | New of string (* new C *)
  | Sizeof of ty
  | Cast of ty * expr

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * stmt option * stmt
  | Return of expr option * int (* line *)
  | Break of int
  | Continue of int
  | Decl of ty * string * int option * expr option * int (* array size, init, line *)
  | Assign of expr * expr * int (* lvalue = rvalue *)
  | Expr_stmt of expr

type param = ty * string

type member =
  | Field of ty * string
  | Method of { virtual_ : bool; ret : ty; name : string; params : param list; body : stmt list }

type ginit =
  | Gi_int of int64
  | Gi_string of string
  | Gi_list of gconst list

and gconst = Gc_int of int64 | Gc_func of string

type topdecl =
  | Func_def of { ret : ty; name : string; params : param list; body : stmt list }
  | Global_def of { ty : ty; name : string; array : int option; init : ginit option }
  | Struct_def of { name : string; fields : (ty * string) list }
  | Class_def of { name : string; parent : string option; members : member list }
  | Typedef_fptr of { name : string; ret : ty; params : ty list }

type program = topdecl list
