(** Lexer for MiniC (the C subset + classes with virtual methods and
    function-pointer typedefs the workloads are written in). *)

type token =
  | INT_LIT of int64
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type lexed = { tok : token; line : int }

exception Lex_error of { line : int; message : string }

val keywords : string list
val tokenize : string -> lexed list
