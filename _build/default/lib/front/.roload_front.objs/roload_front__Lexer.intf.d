lib/front/lexer.mli:
