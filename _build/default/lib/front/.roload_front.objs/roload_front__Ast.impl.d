lib/front/ast.ml:
