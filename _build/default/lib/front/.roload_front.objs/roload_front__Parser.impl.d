lib/front/parser.ml: Array Ast Int64 Lexer List Printf
