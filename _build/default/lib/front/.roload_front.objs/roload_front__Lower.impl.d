lib/front/lower.ml: Ast Char Int64 List Printf Roload_ir String
