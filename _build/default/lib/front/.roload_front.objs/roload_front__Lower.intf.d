lib/front/lower.mli: Ast Roload_ir
