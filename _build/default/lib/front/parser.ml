(* Recursive-descent parser for MiniC. *)

exception Parse_error of { line : int; message : string }

type state = {
  toks : Lexer.lexed array;
  mutable pos : int;
  mutable typedefs : string list; (* names introduced by typedef / struct / class *)
}

let fail st fmt =
  let line = st.toks.(min st.pos (Array.length st.toks - 1)).Lexer.line in
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let peek st = st.toks.(st.pos).Lexer.tok
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1).Lexer.tok else Lexer.EOF

let line st = st.toks.(st.pos).Lexer.line
let advance st = st.pos <- st.pos + 1

let eat_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p -> advance st
  | _ -> fail st "expected '%s'" p

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

let is_type_start st =
  match peek st with
  | Lexer.KW ("int" | "char" | "void") -> true
  | Lexer.IDENT s -> List.mem s st.typedefs
  | Lexer.INT_LIT _ | Lexer.CHAR_LIT _ | Lexer.STRING_LIT _ | Lexer.KW _
  | Lexer.PUNCT _ | Lexer.EOF ->
    false

let rec parse_type st =
  let base =
    match peek st with
    | Lexer.KW "int" -> advance st; Ast.T_int
    | Lexer.KW "char" -> advance st; Ast.T_char
    | Lexer.KW "void" -> advance st; Ast.T_void
    | Lexer.IDENT s when List.mem s st.typedefs -> advance st; Ast.T_named s
    | _ -> fail st "expected type"
  in
  let rec stars t = if accept_punct st "*" then stars (Ast.T_ptr t) else t in
  stars base

(* ---------- expressions ---------- *)

and parse_expr st = parse_lor st

and parse_lor st =
  let rec go lhs =
    if accept_punct st "||" then
      let rhs = parse_land st in
      go { Ast.e = Ast.Binop (Ast.Lor, lhs, rhs); line = line st }
    else lhs
  in
  go (parse_land st)

and parse_land st =
  let rec go lhs =
    if accept_punct st "&&" then
      let rhs = parse_bor st in
      go { Ast.e = Ast.Binop (Ast.Land, lhs, rhs); line = line st }
    else lhs
  in
  go (parse_bor st)

and parse_bor st =
  let rec go lhs =
    if accept_punct st "|" then
      let rhs = parse_bxor st in
      go { Ast.e = Ast.Binop (Ast.Bor, lhs, rhs); line = line st }
    else lhs
  in
  go (parse_bxor st)

and parse_bxor st =
  let rec go lhs =
    if accept_punct st "^" then
      let rhs = parse_band st in
      go { Ast.e = Ast.Binop (Ast.Bxor, lhs, rhs); line = line st }
    else lhs
  in
  go (parse_band st)

and parse_band st =
  let rec go lhs =
    if accept_punct st "&" then
      let rhs = parse_equality st in
      go { Ast.e = Ast.Binop (Ast.Band, lhs, rhs); line = line st }
    else lhs
  in
  go (parse_equality st)

and parse_equality st =
  let rec go lhs =
    if accept_punct st "==" then
      go { Ast.e = Ast.Binop (Ast.Eq, lhs, parse_relational st); line = line st }
    else if accept_punct st "!=" then
      go { Ast.e = Ast.Binop (Ast.Ne, lhs, parse_relational st); line = line st }
    else lhs
  in
  go (parse_relational st)

and parse_relational st =
  let rec go lhs =
    if accept_punct st "<=" then
      go { Ast.e = Ast.Binop (Ast.Le, lhs, parse_shift st); line = line st }
    else if accept_punct st ">=" then
      go { Ast.e = Ast.Binop (Ast.Ge, lhs, parse_shift st); line = line st }
    else if accept_punct st "<" then
      go { Ast.e = Ast.Binop (Ast.Lt, lhs, parse_shift st); line = line st }
    else if accept_punct st ">" then
      go { Ast.e = Ast.Binop (Ast.Gt, lhs, parse_shift st); line = line st }
    else lhs
  in
  go (parse_shift st)

and parse_shift st =
  let rec go lhs =
    if accept_punct st "<<" then
      go { Ast.e = Ast.Binop (Ast.Shl, lhs, parse_additive st); line = line st }
    else if accept_punct st ">>" then
      go { Ast.e = Ast.Binop (Ast.Shr, lhs, parse_additive st); line = line st }
    else lhs
  in
  go (parse_additive st)

and parse_additive st =
  let rec go lhs =
    if accept_punct st "+" then
      go { Ast.e = Ast.Binop (Ast.Add, lhs, parse_multiplicative st); line = line st }
    else if accept_punct st "-" then
      go { Ast.e = Ast.Binop (Ast.Sub, lhs, parse_multiplicative st); line = line st }
    else lhs
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go lhs =
    if accept_punct st "*" then
      go { Ast.e = Ast.Binop (Ast.Mul, lhs, parse_unary st); line = line st }
    else if accept_punct st "/" then
      go { Ast.e = Ast.Binop (Ast.Div, lhs, parse_unary st); line = line st }
    else if accept_punct st "%" then
      go { Ast.e = Ast.Binop (Ast.Rem, lhs, parse_unary st); line = line st }
    else lhs
  in
  go (parse_unary st)

and parse_unary st =
  let l = line st in
  if accept_punct st "-" then { Ast.e = Ast.Unop (Ast.Neg, parse_unary st); line = l }
  else if accept_punct st "!" then { Ast.e = Ast.Unop (Ast.Not, parse_unary st); line = l }
  else if accept_punct st "~" then { Ast.e = Ast.Unop (Ast.Bnot, parse_unary st); line = l }
  else if accept_punct st "*" then { Ast.e = Ast.Unop (Ast.Deref, parse_unary st); line = l }
  else if accept_punct st "&" then { Ast.e = Ast.Unop (Ast.Addr_of, parse_unary st); line = l }
  else parse_postfix st

and parse_args st =
  eat_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        eat_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_postfix st =
  let rec go e =
    let l = line st in
    match peek st with
    | Lexer.PUNCT "(" ->
      let args = parse_args st in
      go { Ast.e = Ast.Call (e, args); line = l }
    | Lexer.PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      go { Ast.e = Ast.Index (e, idx); line = l }
    | Lexer.PUNCT "->" ->
      advance st;
      let name = ident st in
      if peek st = Lexer.PUNCT "(" then begin
        let args = parse_args st in
        go { Ast.e = Ast.Method_call (e, name, args); line = l }
      end
      else go { Ast.e = Ast.Member (e, name); line = l }
    | _ -> e
  in
  go (parse_primary st)

and parse_primary st =
  let l = line st in
  match peek st with
  | Lexer.INT_LIT v ->
    advance st;
    { Ast.e = Ast.Int_lit v; line = l }
  | Lexer.CHAR_LIT c ->
    advance st;
    { Ast.e = Ast.Char_lit c; line = l }
  | Lexer.STRING_LIT s ->
    advance st;
    { Ast.e = Ast.String_lit s; line = l }
  | Lexer.KW "null" ->
    advance st;
    { Ast.e = Ast.Null; line = l }
  | Lexer.KW "new" ->
    advance st;
    let cls = ident st in
    (* optional empty parens *)
    if peek st = Lexer.PUNCT "(" then begin
      eat_punct st "(";
      eat_punct st ")"
    end;
    { Ast.e = Ast.New cls; line = l }
  | Lexer.KW "sizeof" ->
    advance st;
    eat_punct st "(";
    let t = parse_type st in
    eat_punct st ")";
    { Ast.e = Ast.Sizeof t; line = l }
  | Lexer.IDENT s ->
    advance st;
    { Ast.e = Ast.Ident s; line = l }
  | Lexer.PUNCT "(" ->
    advance st;
    (* cast or parenthesized expression *)
    if is_type_start st then begin
      let t = parse_type st in
      eat_punct st ")";
      let e = parse_unary st in
      { Ast.e = Ast.Cast (t, e); line = l }
    end
    else begin
      let e = parse_expr st in
      eat_punct st ")";
      e
    end
  | _ -> fail st "expected expression"

(* ---------- statements ---------- *)

let rec parse_stmt st =
  let l = line st in
  match peek st with
  | Lexer.PUNCT "{" ->
    advance st;
    let rec go acc =
      if accept_punct st "}" then Ast.Block (List.rev acc) else go (parse_stmt st :: acc)
    in
    go []
  | Lexer.KW "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_ = parse_stmt st in
    if peek st = Lexer.KW "else" then begin
      advance st;
      let else_ = parse_stmt st in
      Ast.If (cond, then_, Some else_)
    end
    else Ast.If (cond, then_, None)
  | Lexer.KW "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    Ast.While (cond, parse_stmt st)
  | Lexer.KW "for" ->
    advance st;
    eat_punct st "(";
    let init = if peek st = Lexer.PUNCT ";" then None else Some (parse_simple_or_decl st) in
    eat_punct st ";";
    let cond = if peek st = Lexer.PUNCT ";" then None else Some (parse_expr st) in
    eat_punct st ";";
    let step = if peek st = Lexer.PUNCT ")" then None else Some (parse_simple st) in
    eat_punct st ")";
    Ast.For (init, cond, step, parse_stmt st)
  | Lexer.KW "return" ->
    advance st;
    if accept_punct st ";" then Ast.Return (None, l)
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      Ast.Return (Some e, l)
    end
  | Lexer.KW "break" ->
    advance st;
    eat_punct st ";";
    Ast.Break l
  | Lexer.KW "continue" ->
    advance st;
    eat_punct st ";";
    Ast.Continue l
  | _ ->
    if is_type_start st && is_decl_lookahead st then begin
      let s = parse_local_decl st in
      eat_punct st ";";
      s
    end
    else begin
      let s = parse_simple st in
      eat_punct st ";";
      s
    end

(* distinguish `T x ...` declarations from expressions starting with a
   typedef'd name (e.g. a call `f(x)` where f is not a type) *)
and is_decl_lookahead st =
  match peek st with
  | Lexer.KW ("int" | "char" | "void") -> true
  | Lexer.IDENT _ -> (
    match peek2 st with
    | Lexer.IDENT _ | Lexer.PUNCT "*" -> true
    | _ -> false)
  | _ -> false

and parse_local_decl st =
  let l = line st in
  let t = parse_type st in
  let name = ident st in
  let array =
    if accept_punct st "[" then begin
      match peek st with
      | Lexer.INT_LIT v ->
        advance st;
        eat_punct st "]";
        Some (Int64.to_int v)
      | _ -> fail st "expected array size"
    end
    else None
  in
  let init = if accept_punct st "=" then Some (parse_expr st) else None in
  Ast.Decl (t, name, array, init, l)

and parse_simple st =
  let l = line st in
  let e = parse_expr st in
  if accept_punct st "=" then Ast.Assign (e, parse_expr st, l)
  else if accept_punct st "+=" then
    Ast.Assign (e, { Ast.e = Ast.Binop (Ast.Add, e, parse_expr st); line = l }, l)
  else if accept_punct st "-=" then
    Ast.Assign (e, { Ast.e = Ast.Binop (Ast.Sub, e, parse_expr st); line = l }, l)
  else Ast.Expr_stmt e

and parse_simple_or_decl st =
  if is_type_start st && is_decl_lookahead st then parse_local_decl st else parse_simple st

(* ---------- top-level ---------- *)

let parse_params st =
  eat_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let t = parse_type st in
      let name = ident st in
      if accept_punct st "," then go ((t, name) :: acc)
      else begin
        eat_punct st ")";
        List.rev ((t, name) :: acc)
      end
    in
    go []
  end

let parse_block_stmts st =
  eat_punct st "{";
  let rec go acc = if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc) in
  go []

let parse_gconst_int st =
  (* integer constant with optional unary minus *)
  let neg = accept_punct st "-" in
  match peek st with
  | Lexer.INT_LIT v ->
    advance st;
    Some (if neg then Int64.neg v else v)
  | _ ->
    if neg then fail st "expected integer after '-'";
    None

let parse_ginit st =
  match peek st with
  | Lexer.INT_LIT _ | Lexer.PUNCT "-" -> (
    match parse_gconst_int st with
    | Some v -> Ast.Gi_int v
    | None -> fail st "expected global initializer")
  | Lexer.STRING_LIT s ->
    advance st;
    Ast.Gi_string s
  | Lexer.PUNCT "{" ->
    advance st;
    let rec go acc =
      let c =
        match peek st with
        | Lexer.INT_LIT _ | Lexer.PUNCT "-" -> (
          match parse_gconst_int st with
          | Some v -> Ast.Gc_int v
          | None -> fail st "expected constant in initializer")
        | Lexer.IDENT f ->
          advance st;
          Ast.Gc_func f
        | _ -> fail st "expected constant in initializer"
      in
      if accept_punct st "," then go (c :: acc)
      else begin
        eat_punct st "}";
        Ast.Gi_list (List.rev (c :: acc))
      end
    in
    go []
  | _ -> fail st "expected global initializer"

let parse_member st =
  let virtual_ = peek st = Lexer.KW "virtual" in
  if virtual_ then advance st;
  let t = parse_type st in
  let name = ident st in
  if peek st = Lexer.PUNCT "(" then begin
    let params = parse_params st in
    let body = parse_block_stmts st in
    Ast.Method { virtual_; ret = t; name; params; body }
  end
  else begin
    if virtual_ then fail st "field cannot be virtual";
    eat_punct st ";";
    Ast.Field (t, name)
  end

let parse_topdecl st =
  match peek st with
  | Lexer.KW "typedef" ->
    advance st;
    let ret = parse_type st in
    eat_punct st "(";
    eat_punct st "*";
    let name = ident st in
    eat_punct st ")";
    eat_punct st "(";
    let params =
      if accept_punct st ")" then []
      else begin
        let rec go acc =
          let t = parse_type st in
          (* allow an optional parameter name *)
          (match peek st with Lexer.IDENT _ -> advance st | _ -> ());
          if accept_punct st "," then go (t :: acc)
          else begin
            eat_punct st ")";
            List.rev (t :: acc)
          end
        in
        go []
      end
    in
    eat_punct st ";";
    st.typedefs <- name :: st.typedefs;
    Ast.Typedef_fptr { name; ret; params }
  | Lexer.KW "struct" ->
    advance st;
    let name = ident st in
    st.typedefs <- name :: st.typedefs;
    eat_punct st "{";
    let rec go acc =
      if accept_punct st "}" then List.rev acc
      else begin
        let t = parse_type st in
        let fname = ident st in
        eat_punct st ";";
        go ((t, fname) :: acc)
      end
    in
    let fields = go [] in
    eat_punct st ";";
    Ast.Struct_def { name; fields }
  | Lexer.KW "class" ->
    advance st;
    let name = ident st in
    st.typedefs <- name :: st.typedefs;
    let parent = if accept_punct st ":" then Some (ident st) else None in
    eat_punct st "{";
    let rec go acc = if accept_punct st "}" then List.rev acc else go (parse_member st :: acc) in
    let members = go [] in
    eat_punct st ";";
    Ast.Class_def { name; parent; members }
  | _ ->
    let t = parse_type st in
    let name = ident st in
    if peek st = Lexer.PUNCT "(" then begin
      let params = parse_params st in
      let body = parse_block_stmts st in
      Ast.Func_def { ret = t; name; params; body }
    end
    else begin
      let array =
        if accept_punct st "[" then begin
          match peek st with
          | Lexer.INT_LIT v ->
            advance st;
            eat_punct st "]";
            Some (Int64.to_int v)
          | _ -> fail st "expected array size"
        end
        else None
      in
      let init = if accept_punct st "=" then Some (parse_ginit st) else None in
      eat_punct st ";";
      Ast.Global_def { ty = t; name; array; init }
    end

let parse source =
  let toks = Array.of_list (Lexer.tokenize source) in
  let st = { toks; pos = 0; typedefs = [] } in
  let rec go acc = if peek st = Lexer.EOF then List.rev acc else go (parse_topdecl st :: acc) in
  go []
