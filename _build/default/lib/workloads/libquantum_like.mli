(** 462.libquantum analogue: quantum register simulation — gate *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
