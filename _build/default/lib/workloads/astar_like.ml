(* 473.astar analogue: grid path-finding in the C++ style — a search
   driver dispatching to virtual heuristic/terrain classes, with an open
   list and cost relaxation (moderate vcall density). *)

let name = "astar"
let cxx = true

let source ~scale =
  Printf.sprintf {|
// A*-style grid search with pluggable (virtual) heuristics and terrain
class Heuristic {
  int goal_x;
  int goal_y;
  virtual int estimate(int x, int y) { return 0; }
};

class Manhattan : Heuristic {
  virtual int estimate(int x, int y) {
    int dx = x - goal_x;
    int dy = y - goal_y;
    if (dx < 0) { dx = 0 - dx; }
    if (dy < 0) { dy = 0 - dy; }
    return dx + dy;
  }
};

class Chebyshev : Heuristic {
  virtual int estimate(int x, int y) {
    int dx = x - goal_x;
    int dy = y - goal_y;
    if (dx < 0) { dx = 0 - dx; }
    if (dy < 0) { dy = 0 - dy; }
    if (dx > dy) { return dx; }
    return dy;
  }
};

class Terrain {
  int roughness;
  virtual int cost(int x, int y) { return 1; }
};

class Hills : Terrain {
  virtual int cost(int x, int y) {
    return 1 + ((x * 31 + y * 17) %% roughness);
  }
};

int grid_dist[4096];   // 64x64
int grid_seen[4096];
int queue_x[16384];
int queue_y[16384];
int queue_d[16384];

int search(Heuristic *h, Terrain *t, int sx, int sy) {
  int i;
  for (i = 0; i < 4096; i = i + 1) { grid_dist[i] = 1000000; grid_seen[i] = 0; }
  int head = 0;
  int tail = 0;
  queue_x[0] = sx; queue_y[0] = sy; queue_d[0] = 0;
  tail = 1;
  grid_dist[sy * 64 + sx] = 0;
  int best = 1000000;
  while (head < tail && head < 16000) {
    int x = queue_x[head];
    int y = queue_y[head];
    int d = queue_d[head];
    head = head + 1;
    int idx = y * 64 + x;
    if (grid_seen[idx]) { continue; }
    grid_seen[idx] = 1;
    int est = d + h->estimate(x, y);
    if (x == h->goal_x && y == h->goal_y) {
      if (est < best) { best = est; }
      break;
    }
    int dir;
    for (dir = 0; dir < 4; dir = dir + 1) {
      int nx = x;
      int ny = y;
      if (dir == 0) { nx = x + 1; }
      if (dir == 1) { nx = x - 1; }
      if (dir == 2) { ny = y + 1; }
      if (dir == 3) { ny = y - 1; }
      if (nx < 0 || nx >= 64 || ny < 0 || ny >= 64) { continue; }
      int nd = d + t->cost(nx, ny);
      int nidx = ny * 64 + nx;
      if (nd < grid_dist[nidx] && tail < 16000) {
        grid_dist[nidx] = nd;
        queue_x[tail] = nx; queue_y[tail] = ny; queue_d[tail] = nd;
        tail = tail + 1;
      }
    }
  }
  return best + tail;
}

int main() {
  Heuristic *hs[2];
  Manhattan *m = new Manhattan;
  Chebyshev *c = new Chebyshev;
  hs[0] = (Heuristic*)m;
  hs[1] = (Heuristic*)c;
  Terrain *ts[2];
  Terrain *flat = new Terrain;
  Hills *hills = new Hills;
  hills->roughness = 5;
  ts[0] = flat;
  ts[1] = (Terrain*)hills;
  int rounds = %d;
  int r;
  int checksum = 0;
  for (r = 0; r < rounds; r = r + 1) {
    Heuristic *h = hs[r %% 2];
    h->goal_x = (r * 13) %% 64;
    h->goal_y = (r * 29) %% 64;
    Terrain *t = ts[(r / 2) %% 2];
    int sx = (r * 7) %% 64;
    int sy = (r * 11) %% 64;
    checksum = (checksum + search(h, t, sx, sy)) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 12)
