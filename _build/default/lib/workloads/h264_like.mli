(** 464.h264ref analogue: video encoding kernels — block motion search *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
