(* The benchmark suite of the paper's evaluation: SPEC CINT2006 minus
   400.perlbench (excluded there for compilation failure; §V-B), rebuilt
   as synthetic workloads that reproduce each benchmark's *kind* —
   compression, compilation, graph, game search, DP, streaming, video —
   and, crucially, its indirect-call / virtual-call profile, which is
   what determines the hardening overhead shape of Figures 3–5. *)

type benchmark = {
  name : string;
  cxx : bool; (* the three C++ benchmarks carry the vcall workloads *)
  source : scale:int -> string;
}

let all =
  [
    { name = Bzip2_like.name; cxx = Bzip2_like.cxx; source = Bzip2_like.source };
    { name = Gcc_like.name; cxx = Gcc_like.cxx; source = Gcc_like.source };
    { name = Mcf_like.name; cxx = Mcf_like.cxx; source = Mcf_like.source };
    { name = Gobmk_like.name; cxx = Gobmk_like.cxx; source = Gobmk_like.source };
    { name = Hmmer_like.name; cxx = Hmmer_like.cxx; source = Hmmer_like.source };
    { name = Sjeng_like.name; cxx = Sjeng_like.cxx; source = Sjeng_like.source };
    {
      name = Libquantum_like.name;
      cxx = Libquantum_like.cxx;
      source = Libquantum_like.source;
    };
    { name = H264_like.name; cxx = H264_like.cxx; source = H264_like.source };
    { name = Omnetpp_like.name; cxx = Omnetpp_like.cxx; source = Omnetpp_like.source };
    { name = Astar_like.name; cxx = Astar_like.cxx; source = Astar_like.source };
    {
      name = Xalancbmk_like.name;
      cxx = Xalancbmk_like.cxx;
      source = Xalancbmk_like.source;
    };
  ]

let cxx_benchmarks = List.filter (fun b -> b.cxx) all
let c_benchmarks = List.filter (fun b -> not b.cxx) all

let find name = List.find_opt (fun b -> b.name = name) all

let names = List.map (fun b -> b.name) all

(* Scales: [test_scale] keeps each benchmark around 10^5..10^6 simulated
   instructions (suitable for `dune runtest`); [reference_scale] is the
   bench harness's default, mirroring the paper's use of the SPEC
   `reference` inputs. *)
let test_scale = 1
let reference_scale = 3
