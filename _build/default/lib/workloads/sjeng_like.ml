(* 458.sjeng analogue: game-tree search — alpha-beta minimax over a
   small abstract game with an incremental evaluation function (deep
   recursion, branchy integer code). *)

let name = "sjeng"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// alpha-beta search over an abstract 8x8 piece game
int board[64];
int history[64];
int nodes_visited = 0;

int evaluate(int side) {
  int score = 0;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    int p = board[i];
    if (p != 0) {
      int v = p * p * 3 + (i & 7) - ((i >> 3) & 7);
      if (p %% 2 == side) { score = score + v; }
      else { score = score - v; }
    }
  }
  return score + history[side * 7] - history[side * 3 + 1];
}

int gen_move(int seed, int k) {
  // deterministic pseudo-move: (from, to) packed
  int h = seed * 2654435761 + k * 40503;
  int from = (h >> 8) & 63;
  int to = (h >> 16) & 63;
  return from * 64 + to;
}

int search(int depth, int alpha, int beta, int side, int seed) {
  nodes_visited = nodes_visited + 1;
  if (depth == 0) { return evaluate(side); }
  int best = 0 - 1000000;
  int k;
  for (k = 0; k < 6; k = k + 1) {
    int mv = gen_move(seed, k);
    int from = mv / 64;
    int to = mv %% 64;
    // make
    int captured = board[to];
    int piece = board[from];
    board[to] = piece;
    board[from] = 0;
    history[to & 63] = history[to & 63] + 1;
    int score = 0 - search(depth - 1, 0 - beta, 0 - alpha, 1 - side, seed * 31 + k + 1);
    // unmake
    history[to & 63] = history[to & 63] - 1;
    board[from] = piece;
    board[to] = captured;
    if (score > best) { best = score; }
    if (best > alpha) { alpha = best; }
    if (alpha >= beta) { break; }
  }
  return best;
}

int main() {
  int i;
  int seed = 20111;
  for (i = 0; i < 64; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) & 7;
    if (v > 4) { v = 0; }
    board[i] = v;
  }
  int games = %d;
  int checksum = 0;
  int g;
  for (g = 0; g < games; g = g + 1) {
    nodes_visited = 0;
    int score = search(6, 0 - 1000000, 1000000, g & 1, seed + g * 17);
    checksum = (checksum + score + nodes_visited) %% 1000003;
    // perturb the position between games
    seed = seed * 1103515245 + 12345;
    board[(seed >> 16) & 63] = (seed >> 24) & 3;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 5)
