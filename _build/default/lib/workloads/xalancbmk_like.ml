(* 483.xalancbmk analogue: document-tree transformation in the C++
   style — a node hierarchy walked by virtual visitors (xalancbmk is the
   densest vcall benchmark in CINT2006). *)

let name = "xalancbmk"
let cxx = true

let source ~scale =
  Printf.sprintf {|
// document tree transformation with virtual visitors
class Node {
  int kind;
  int value;
  Node *first;
  Node *next;
  virtual int eval() { return value; }
  virtual int tag() { return 0; }
};

class Element : Node {
  virtual int eval() {
    int total = value;
    Node *c = first;
    while (c != null) {
      total = total + c->eval();
      c = c->next;
    }
    return total;
  }
  virtual int tag() { return 1; }
};

class Text : Node {
  virtual int eval() { return value * 2 + 1; }
  virtual int tag() { return 2; }
};

class Attr : Node {
  virtual int eval() { return value ^ 255; }
  virtual int tag() { return 3; }
};

int node_budget = 0;

Node *build(int depth, int seed) {
  node_budget = node_budget - 1;
  int s = seed;
  if (s < 0) { s = 0 - s; }
  if (depth <= 0 || node_budget <= 0) {
    Text *t = new Text;
    t->value = s %% 997;
    return (Node*)t;
  }
  int kind = s %% 7;
  if (kind == 6) {
    Attr *a = new Attr;
    a->value = s %% 4093;
    return (Node*)a;
  }
  Element *e = new Element;
  e->value = s %% 31;
  int children = 2 + s %% 2;
  int i;
  Node *prev = null;
  for (i = 0; i < children; i = i + 1) {
    Node *c = build(depth - 1, seed * 1103515245 + 12345 + i * 7919);
    c->next = prev;
    prev = c;
  }
  e->first = prev;
  return (Node*)e;
}

int count_tags(Node *n) {
  int total = n->tag();
  Node *c = n->first;
  while (c != null) {
    total = total + count_tags(c);
    c = c->next;
  }
  return total;
}

int main() {
  int rounds = %d;
  int r;
  int checksum = 0;
  for (r = 0; r < rounds; r = r + 1) {
    node_budget = 400;
    Node *doc = build(6, r * 2654435761 + 17);
    int passes = 4;
    int p;
    for (p = 0; p < passes; p = p + 1) {
      checksum = (checksum + doc->eval()) %% 1000003;
      checksum = (checksum + count_tags(doc)) %% 1000003;
    }
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 60)
