lib/workloads/sjeng_like.ml: Printf
