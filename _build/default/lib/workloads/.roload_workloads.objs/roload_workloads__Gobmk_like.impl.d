lib/workloads/gobmk_like.ml: Printf
