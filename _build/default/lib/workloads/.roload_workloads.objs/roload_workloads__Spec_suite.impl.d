lib/workloads/spec_suite.ml: Astar_like Bzip2_like Gcc_like Gobmk_like H264_like Hmmer_like Libquantum_like List Mcf_like Omnetpp_like Sjeng_like Xalancbmk_like
