lib/workloads/omnetpp_like.ml: Printf
