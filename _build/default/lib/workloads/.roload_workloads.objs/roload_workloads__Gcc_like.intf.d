lib/workloads/gcc_like.mli:
