lib/workloads/astar_like.ml: Printf
