lib/workloads/xalancbmk_like.ml: Printf
