lib/workloads/gcc_like.ml: Printf
