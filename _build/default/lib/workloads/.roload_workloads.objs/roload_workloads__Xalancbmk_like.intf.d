lib/workloads/xalancbmk_like.mli:
