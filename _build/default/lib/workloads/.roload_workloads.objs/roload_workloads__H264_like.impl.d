lib/workloads/h264_like.ml: Printf
