lib/workloads/mcf_like.mli:
