lib/workloads/gobmk_like.mli:
