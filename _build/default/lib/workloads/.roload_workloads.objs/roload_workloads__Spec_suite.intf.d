lib/workloads/spec_suite.mli:
