lib/workloads/libquantum_like.ml: Printf
