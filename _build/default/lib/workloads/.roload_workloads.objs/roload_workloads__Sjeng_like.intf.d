lib/workloads/sjeng_like.mli:
