lib/workloads/bzip2_like.mli:
