lib/workloads/h264_like.mli:
