lib/workloads/omnetpp_like.mli:
