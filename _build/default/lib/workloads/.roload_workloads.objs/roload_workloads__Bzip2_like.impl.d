lib/workloads/bzip2_like.ml: Printf
