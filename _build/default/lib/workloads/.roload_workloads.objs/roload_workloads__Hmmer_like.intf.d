lib/workloads/hmmer_like.mli:
