lib/workloads/astar_like.mli:
