lib/workloads/mcf_like.ml: Printf
