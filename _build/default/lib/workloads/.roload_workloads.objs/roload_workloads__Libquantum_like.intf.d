lib/workloads/libquantum_like.mli:
