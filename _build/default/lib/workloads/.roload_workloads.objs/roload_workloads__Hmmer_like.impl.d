lib/workloads/hmmer_like.ml: Printf
