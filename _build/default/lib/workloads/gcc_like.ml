(* 403.gcc analogue: a small compiler pipeline — tokenize arithmetic
   expressions, build trees, constant-fold, and "emit" through an
   indirect dispatch table over node kinds (gcc is icall-heavy). *)

let name = "gcc"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// expression compiler: parse -> fold -> emit via dispatch table
struct tree {
  int kind;     // 0 = const, 1 = add, 2 = mul, 3 = sub, 4 = var
  int value;
  tree *left;
  tree *right;
};

typedef int (*eval_fn)(tree*);

char src[8192];
int src_len = 0;
int pos = 0;
int vars[26];

int gen_expr(int depth, int seed) {
  // write a random expression into src, returns new seed
  if (depth <= 0 || src_len > 8000) {
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) & 1023;
    if (v %% 5 == 0) {
      src[src_len] = 97 + (v %% 26);
      src_len = src_len + 1;
    } else {
      // small integer literal
      int d = v %% 100;
      if (d >= 10) { src[src_len] = 48 + d / 10; src_len = src_len + 1; }
      src[src_len] = 48 + d %% 10;
      src_len = src_len + 1;
    }
    return seed;
  }
  src[src_len] = 40; src_len = src_len + 1;
  seed = gen_expr(depth - 1, seed * 6364136223846793005 + 1442695040888963407);
  seed = seed * 1103515245 + 12345;
  int op = (seed >> 20) & 3;
  if (op == 0) { src[src_len] = 43; }
  if (op == 1) { src[src_len] = 42; }
  if (op == 2) { src[src_len] = 45; }
  if (op == 3) { src[src_len] = 43; }
  src_len = src_len + 1;
  seed = gen_expr(depth - 1, seed);
  src[src_len] = 41; src_len = src_len + 1;
  return seed;
}

tree *mknode(int kind, int value, tree *l, tree *r) {
  tree *t = (tree*)alloc(sizeof(tree));
  t->kind = kind;
  t->value = value;
  t->left = l;
  t->right = r;
  return t;
}

tree *parse() {
  char c = src[pos];
  if (c == 40) {
    pos = pos + 1;
    tree *l = parse();
    char op = src[pos];
    pos = pos + 1;
    tree *r = parse();
    pos = pos + 1; // closing paren
    int kind = 1;
    if (op == 42) { kind = 2; }
    if (op == 45) { kind = 3; }
    return mknode(kind, 0, l, r);
  }
  if (c >= 97) {
    pos = pos + 1;
    return mknode(4, c - 97, null, null);
  }
  int v = 0;
  while (src[pos] >= 48 && src[pos] <= 57) {
    v = v * 10 + (src[pos] - 48);
    pos = pos + 1;
  }
  return mknode(0, v, null, null);
}

tree *fold(tree *t) {
  if (t->kind == 0 || t->kind == 4) { return t; }
  tree *l = fold(t->left);
  tree *r = fold(t->right);
  t->left = l;
  t->right = r;
  if (l->kind == 0 && r->kind == 0) {
    int v = 0;
    if (t->kind == 1) { v = l->value + r->value; }
    if (t->kind == 2) { v = l->value * r->value; }
    if (t->kind == 3) { v = l->value - r->value; }
    return mknode(0, v, null, null);
  }
  return t;
}

eval_fn dispatch[5];

// fully table-dispatched evaluation, as in a compiler's per-node hooks:
// every node evaluation is an indirect call
int eval(tree *t) {
  eval_fn f = dispatch[t->kind];
  return f(t);
}

int eval_const(tree *t) { return t->value; }
int eval_var(tree *t) { return vars[t->value]; }
int eval_add(tree *t) { return eval(t->left) + eval(t->right); }
int eval_mul(tree *t) { return eval(t->left) * eval(t->right); }
int eval_sub(tree *t) { return eval(t->left) - eval(t->right); }

int main() {
  dispatch[0] = eval_const;
  dispatch[1] = eval_add;
  dispatch[2] = eval_mul;
  dispatch[3] = eval_sub;
  dispatch[4] = eval_var;
  int i;
  for (i = 0; i < 26; i = i + 1) { vars[i] = i * i - 3; }
  int rounds = %d;
  int seed = 987654321;
  int checksum = 0;
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    src_len = 0;
    pos = 0;
    seed = gen_expr(7, seed + r);
    src[src_len] = 0;
    tree *t = parse();
    tree *folded = fold(t);
    // evaluate under several variable environments (a compiler running
    // its constant-propagation lattice over multiple contexts)
    int pass;
    for (pass = 0; pass < 6; pass = pass + 1) {
      vars[pass %% 26] = vars[pass %% 26] + pass;
      checksum = (checksum + eval(folded)) %% 1000003;
      checksum = (checksum + eval(t)) %% 1000003;
    }
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 60)
