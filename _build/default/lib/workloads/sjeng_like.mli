(** 458.sjeng analogue: game-tree search — alpha-beta minimax over a *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
