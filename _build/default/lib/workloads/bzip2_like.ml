(* 401.bzip2 analogue: block compression — run-length encoding,
   move-to-front, and a frequency-model pass over generated data.
   Byte-array heavy, few indirect calls (as in the original). *)

let name = "bzip2"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// block compression: RLE + move-to-front + frequency model
char input[65536];
char rle[131072];
char mtf[65536];
int freq[256];
int mtf_table[256];

int generate(int n, int seed) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) & 255;
    // skew the distribution so runs appear
    if (v < 128) { v = v & 15; }
    input[i] = v;
    if (v == 0 && i > 0) { input[i] = input[i - 1]; }
  }
  return seed;
}

int run_length_encode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    char c = input[i];
    int run = 1;
    while (i + run < n && input[i + run] == c && run < 255) { run = run + 1; }
    if (run >= 4) {
      rle[out] = c; rle[out + 1] = c; rle[out + 2] = c; rle[out + 3] = c;
      rle[out + 4] = run - 4;
      out = out + 5;
    } else {
      int k;
      for (k = 0; k < run; k = k + 1) { rle[out] = c; out = out + 1; }
    }
    i = i + run;
  }
  return out;
}

int move_to_front(int n) {
  int i;
  for (i = 0; i < 256; i = i + 1) { mtf_table[i] = i; }
  int checksum = 0;
  for (i = 0; i < n; i = i + 1) {
    int c = rle[i] & 255;
    int j = 0;
    while (mtf_table[j] != c) { j = j + 1; }
    mtf[i] = j;
    checksum = (checksum + j) %% 1000003;
    while (j > 0) { mtf_table[j] = mtf_table[j - 1]; j = j - 1; }
    mtf_table[0] = c;
  }
  return checksum;
}

int model(int n) {
  int i;
  for (i = 0; i < 256; i = i + 1) { freq[i] = 1; }
  int bits = 0;
  for (i = 0; i < n; i = i + 1) {
    int c = mtf[i] & 255;
    freq[c] = freq[c] + 1;
    // approximate -log2(p) in fixed point by counting halvings
    int p = freq[c];
    int total = 256 + i + 1;
    int cost = 0;
    while (p < total) { p = p * 2; cost = cost + 1; }
    bits = bits + cost;
  }
  return bits;
}

int main() {
  int block = %d;
  int blocks = %d;
  int seed = 424242;
  int checksum = 0;
  int b;
  for (b = 0; b < blocks; b = b + 1) {
    seed = generate(block, seed);
    int rle_len = run_length_encode(block);
    checksum = (checksum + move_to_front(rle_len)) %% 1000003;
    checksum = (checksum + model(rle_len)) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    4096 (scale * 2)
