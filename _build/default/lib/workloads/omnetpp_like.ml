(* 471.omnetpp analogue: a discrete-event network simulator in the C++
   style — modules with virtual message handlers dispatched from a
   central event loop, so virtual-call density is high (omnetpp is the
   paper's vcall-heavy benchmark). *)

let name = "omnetpp"
let cxx = true

let source ~scale =
  Printf.sprintf {|
// discrete-event simulation: ring of modules exchanging messages
class Module {
  int id;
  int state;
  int sent;
  virtual int handle(int payload) { return payload; }
  virtual int route(int payload) { return id; }
};

class Source : Module {
  int seq;
  virtual int handle(int payload) {
    seq = seq + 1;
    state = state + payload;
    return payload + 1;
  }
  virtual int route(int payload) { return (id + 1) %% 16; }
};

class Queue : Module {
  int depth;
  int dropped;
  virtual int handle(int payload) {
    depth = depth + 1;
    if (depth > 8) { dropped = dropped + 1; depth = 0; return 0; }
    state = state + payload;
    return payload;
  }
  virtual int route(int payload) { return (id + payload) %% 16; }
};

class Sink : Module {
  int received;
  virtual int handle(int payload) {
    received = received + 1;
    state = state + payload;
    return payload - 1;
  }
};

int heap_time[4096];
int heap_target[4096];
int heap_payload[4096];
int heap_size = 0;

void push_event(int time, int target, int payload) {
  int i = heap_size;
  heap_size = heap_size + 1;
  heap_time[i] = time;
  heap_target[i] = target;
  heap_payload[i] = payload;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (heap_time[parent] <= heap_time[i]) { break; }
    int t = heap_time[parent]; heap_time[parent] = heap_time[i]; heap_time[i] = t;
    t = heap_target[parent]; heap_target[parent] = heap_target[i]; heap_target[i] = t;
    t = heap_payload[parent]; heap_payload[parent] = heap_payload[i]; heap_payload[i] = t;
    i = parent;
  }
}

int pop_min() {
  int last = heap_size - 1;
  heap_size = last;
  int t0 = heap_time[0]; heap_time[0] = heap_time[last]; heap_time[last] = t0;
  t0 = heap_target[0]; heap_target[0] = heap_target[last]; heap_target[last] = t0;
  t0 = heap_payload[0]; heap_payload[0] = heap_payload[last]; heap_payload[last] = t0;
  int i = 0;
  while (1) {
    int l = 2 * i + 1;
    int r = 2 * i + 2;
    int smallest = i;
    if (l < heap_size && heap_time[l] < heap_time[smallest]) { smallest = l; }
    if (r < heap_size && heap_time[r] < heap_time[smallest]) { smallest = r; }
    if (smallest == i) { break; }
    int t = heap_time[smallest]; heap_time[smallest] = heap_time[i]; heap_time[i] = t;
    t = heap_target[smallest]; heap_target[smallest] = heap_target[i]; heap_target[i] = t;
    t = heap_payload[smallest]; heap_payload[smallest] = heap_payload[i]; heap_payload[i] = t;
    i = smallest;
  }
  return last;
}

int main() {
  Module *modules[16];
  int i;
  for (i = 0; i < 16; i = i + 1) {
    Module *m;
    if (i %% 4 == 0) { m = (Module*)(new Source); }
    else { if (i %% 4 == 3) { m = (Module*)(new Sink); } else { m = (Module*)(new Queue); } }
    m->id = i;
    modules[i] = m;
  }
  int events = %d;
  int seed = 12345;
  for (i = 0; i < 64; i = i + 1) {
    seed = (seed * 1103515245 + 12345) %% 1000000;
    push_event(seed, i %% 16, i);
  }
  int processed = 0;
  int checksum = 0;
  while (processed < events && heap_size > 0) {
    int slot = pop_min();
    int time = heap_time[slot];
    int target = heap_target[slot];
    int payload = heap_payload[slot];
    Module *m = modules[target];
    int out = m->handle(payload);
    int next = m->route(out);
    checksum = (checksum + out + next) %% 1000003;
    if (out > 0) {
      seed = (seed * 1103515245 + 12345) %% 1000000;
      push_event(time + 1 + seed %% 97, next, out);
    }
    if (heap_size < 32) {
      // keep the event population alive (new arrivals)
      push_event(time + 5, processed %% 16, 7 + processed %% 13);
    }
    processed = processed + 1;
  }
  for (i = 0; i < 16; i = i + 1) {
    checksum = (checksum + modules[i]->state) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 8000)
