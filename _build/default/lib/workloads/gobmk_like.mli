(** 445.gobmk analogue: Go-board position evaluation — flood-fill group *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
