(** 456.hmmer analogue: profile HMM sequence search — Viterbi-style *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
