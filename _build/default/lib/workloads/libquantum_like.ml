(* 462.libquantum analogue: quantum register simulation — gate
   applications as streaming passes over a large amplitude array
   (regular, memory-streaming C with XOR index toggles). *)

let name = "libquantum"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// quantum register simulation over fixed-point amplitudes
int amp_re[65536];
int amp_im[65536];

void hadamard(int target, int n) {
  int mask = 1 << target;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if ((i & mask) == 0) {
      int j = i ^ mask;
      int are = amp_re[i];
      int aim = amp_im[i];
      int bre = amp_re[j];
      int bim = amp_im[j];
      // fixed-point (x+y)/sqrt2 ~ (x+y)*46341 >> 16
      amp_re[i] = ((are + bre) * 46341) >> 16;
      amp_im[i] = ((aim + bim) * 46341) >> 16;
      amp_re[j] = ((are - bre) * 46341) >> 16;
      amp_im[j] = ((aim - bim) * 46341) >> 16;
    }
  }
}

void cnot(int control, int target, int n) {
  int cmask = 1 << control;
  int tmask = 1 << target;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if ((i & cmask) != 0 && (i & tmask) == 0) {
      int j = i ^ tmask;
      int t = amp_re[i]; amp_re[i] = amp_re[j]; amp_re[j] = t;
      t = amp_im[i]; amp_im[i] = amp_im[j]; amp_im[j] = t;
    }
  }
}

void phase_flip(int target, int n) {
  int mask = 1 << target;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if ((i & mask) != 0) {
      amp_re[i] = 0 - amp_re[i];
      amp_im[i] = 0 - amp_im[i];
    }
  }
}

int main() {
  int qubits = 16;
  int n = 1 << qubits;
  int i;
  amp_re[0] = 65536;
  int gates = %d;
  int seed = 31337;
  int g;
  for (g = 0; g < gates; g = g + 1) {
    seed = seed * 1103515245 + 12345;
    int kind = (seed >> 16) %% 3;
    if (kind < 0) { kind = 0 - kind; }
    seed = seed * 1103515245 + 12345;
    int t = (seed >> 16) & 15;
    if (kind == 0) { hadamard(t, n); }
    if (kind == 1) { cnot((t + 3) & 15, t, n); }
    if (kind == 2) { phase_flip(t, n); }
  }
  int checksum = 0;
  for (i = 0; i < n; i = i + 1) {
    checksum = (checksum + amp_re[i] * 3 + amp_im[i]) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 10)
