(** 403.gcc analogue: a small compiler pipeline — tokenize arithmetic *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
