(* 456.hmmer analogue: profile HMM sequence search — Viterbi-style
   dynamic programming over integer score matrices (pure compute-bound
   C, the hottest loop shape in hmmer). *)

let name = "hmmer"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// Viterbi-flavoured dynamic programming over a profile
int match_score[2048];   // model: 128 states x 16 symbols
int insert_score[128];
int delete_score[128];
int vit_m[129];
int vit_i[129];
int vit_d[129];
int prev_m[129];
int prev_i[129];
int prev_d[129];
char seq[4096];

int max2(int a, int b) { if (a > b) { return a; } return b; }

int viterbi(int seq_len, int model_len) {
  int j;
  for (j = 0; j <= model_len; j = j + 1) {
    prev_m[j] = 0 - 100000;
    prev_i[j] = 0 - 100000;
    prev_d[j] = 0 - 100000;
  }
  prev_m[0] = 0;
  int i;
  for (i = 1; i <= seq_len; i = i + 1) {
    int sym = seq[i - 1] & 15;
    vit_m[0] = 0 - 100000;
    vit_i[0] = max2(prev_m[0] - 2, prev_i[0] - 1);
    vit_d[0] = 0 - 100000;
    for (j = 1; j <= model_len; j = j + 1) {
      int emit = match_score[(j - 1) * 16 + sym];
      int best = max2(prev_m[j - 1], prev_i[j - 1]);
      best = max2(best, prev_d[j - 1]);
      vit_m[j] = best + emit;
      vit_i[j] = max2(prev_m[j] - 3, prev_i[j] - 1) + insert_score[j - 1];
      vit_d[j] = max2(vit_m[j - 1] - 4, vit_d[j - 1] - 1) + delete_score[j - 1];
    }
    for (j = 0; j <= model_len; j = j + 1) {
      prev_m[j] = vit_m[j];
      prev_i[j] = vit_i[j];
      prev_d[j] = vit_d[j];
    }
  }
  int best = 0 - 100000;
  for (j = 0; j <= model_len; j = j + 1) { best = max2(best, prev_m[j]); }
  return best;
}

int main() {
  int model_len = 128;
  int seqs = %d;
  int seed = 777;
  int i;
  for (i = 0; i < model_len * 16; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    match_score[i] = ((seed >> 16) & 15) - 6;
  }
  for (i = 0; i < model_len; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    insert_score[i] = 0 - (1 + ((seed >> 16) & 3));
    delete_score[i] = 0 - (1 + ((seed >> 18) & 3));
  }
  int checksum = 0;
  int s;
  for (s = 0; s < seqs; s = s + 1) {
    int len = 200 + (s * 37) %% 120;
    for (i = 0; i < len; i = i + 1) {
      seed = seed * 1103515245 + 12345;
      seq[i] = (seed >> 16) & 15;
    }
    checksum = (checksum + viterbi(len, model_len)) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 4)
