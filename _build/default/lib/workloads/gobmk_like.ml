(* 445.gobmk analogue: Go-board position evaluation — flood-fill group
   analysis, liberty counting, and a table of indirect move evaluators
   (gobmk mixes heavy board loops with function-pointer dispatch). *)

let name = "gobmk"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// go-ish board evaluation with indirect move evaluators
int board[512];   // 19x19 embedded in 19*26 for padding
int marks[512];
int stack_arr[512];

typedef int (*move_eval_t)(int, int);

int liberties(int p0) {
  int i;
  for (i = 0; i < 512; i = i + 1) { marks[i] = 0; }
  int color = board[p0];
  int top = 0;
  stack_arr[0] = p0;
  top = 1;
  marks[p0] = 1;
  int libs = 0;
  while (top > 0) {
    top = top - 1;
    int p = stack_arr[top];
    int d;
    for (d = 0; d < 4; d = d + 1) {
      int q = p;
      if (d == 0) { q = p + 1; }
      if (d == 1) { q = p - 1; }
      if (d == 2) { q = p + 26; }
      if (d == 3) { q = p - 26; }
      if (q < 0 || q >= 494) { continue; }
      if (marks[q]) { continue; }
      marks[q] = 1;
      if (board[q] == 0) { libs = libs + 1; }
      else {
        if (board[q] == color && top < 500) { stack_arr[top] = q; top = top + 1; }
      }
    }
  }
  return libs;
}

int eval_capture(int p, int color) {
  if (board[p] != 0) { return 0 - 100; }
  int score = 0;
  int d;
  for (d = 0; d < 4; d = d + 1) {
    int q = p;
    if (d == 0) { q = p + 1; }
    if (d == 1) { q = p - 1; }
    if (d == 2) { q = p + 26; }
    if (d == 3) { q = p - 26; }
    if (q < 0 || q >= 494) { continue; }
    if (board[q] != 0 && board[q] != color) {
      if (liberties(q) == 1) { score = score + 50; }
    }
  }
  return score;
}

int eval_extend(int p, int color) {
  if (board[p] != 0) { return 0 - 100; }
  int score = 0;
  int d;
  for (d = 0; d < 4; d = d + 1) {
    int q = p;
    if (d == 0) { q = p + 1; }
    if (d == 1) { q = p - 1; }
    if (d == 2) { q = p + 26; }
    if (d == 3) { q = p - 26; }
    if (q < 0 || q >= 494) { continue; }
    if (board[q] == color) { score = score + 5 + liberties(q); }
  }
  return score;
}

int eval_territory(int p, int color) {
  if (board[p] != 0) { return 0 - 100; }
  int score = 0;
  int dx;
  for (dx = 0 - 2; dx <= 2; dx = dx + 1) {
    int dy;
    for (dy = 0 - 2; dy <= 2; dy = dy + 1) {
      int q = p + dx + dy * 26;
      if (q < 0 || q >= 494) { continue; }
      if (board[q] == color) { score = score + 2; }
      if (board[q] != 0 && board[q] != color) { score = score - 1; }
    }
  }
  return score;
}

move_eval_t evaluators[3];

int main() {
  evaluators[0] = eval_capture;
  evaluators[1] = eval_extend;
  evaluators[2] = eval_territory;
  int moves = %d;
  int seed = 314159;
  int color = 1;
  int checksum = 0;
  int m;
  for (m = 0; m < moves; m = m + 1) {
    // pick the best of a few random candidate points
    int best = 0 - 1000000;
    int best_p = 0;
    int c;
    for (c = 0; c < 6; c = c + 1) {
      seed = seed * 1103515245 + 12345;
      int x = (seed >> 16) %% 19;
      if (x < 0) { x = 0 - x; }
      seed = seed * 1103515245 + 12345;
      int y = (seed >> 16) %% 19;
      if (y < 0) { y = 0 - y; }
      int p = y * 26 + x;
      int e;
      int total = 0;
      for (e = 0; e < 3; e = e + 1) {
        move_eval_t f = evaluators[e];
        total = total + f(p, color);
      }
      if (total > best) { best = total; best_p = p; }
    }
    if (board[best_p] == 0) { board[best_p] = color; }
    checksum = (checksum + best) %% 1000003;
    color = 3 - color;
    if (m %% 300 == 299) {
      int i;
      for (i = 0; i < 512; i = i + 1) { board[i] = 0; }
    }
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 300)
