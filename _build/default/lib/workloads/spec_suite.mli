(** The benchmark suite of the paper's evaluation: SPEC CINT2006 minus
    400.perlbench, rebuilt as synthetic workloads that reproduce each
    benchmark's kind and its indirect-/virtual-call profile — the
    determinant of the hardening-overhead shape in Figures 3–5. *)

type benchmark = {
  name : string;
  cxx : bool;  (** the three C++ benchmarks carry the vcall workloads *)
  source : scale:int -> string;  (** deterministic MiniC source *)
}

val all : benchmark list
(** 11 benchmarks, paper order. *)

val cxx_benchmarks : benchmark list
val c_benchmarks : benchmark list
val find : string -> benchmark option
val names : string list

val test_scale : int
val reference_scale : int
(** The bench harness's analogue of the SPEC reference inputs. *)
