(** 429.mcf analogue: network flow on a sparse graph — Bellman-Ford-style *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
