(** 483.xalancbmk analogue: document-tree transformation in the C++ *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
