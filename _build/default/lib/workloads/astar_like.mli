(** 473.astar analogue: grid path-finding in the C++ style — a search *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
