(** 401.bzip2 analogue: block compression — run-length encoding, *)

val name : string
val cxx : bool
val source : scale:int -> string
(** Deterministic MiniC source; [scale] multiplies the workload size. *)
