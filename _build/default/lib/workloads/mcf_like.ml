(* 429.mcf analogue: network flow on a sparse graph — Bellman-Ford-style
   relaxation with augmentation, pointer-free array-of-arcs layout as in
   the original (pure memory-bound C). *)

let name = "mcf"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// min-cost-flow flavoured relaxation over a random sparse graph
int arc_from[16384];
int arc_to[16384];
int arc_cost[16384];
int arc_cap[16384];
int dist[2048];
int pred[2048];

int main() {
  int nodes = 1024;
  int arcs = 8192;
  int rounds = %d;
  int seed = 20240101;
  int i;
  for (i = 0; i < arcs; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int u = (seed >> 16) & 1023;
    seed = seed * 1103515245 + 12345;
    int v = (seed >> 16) & 1023;
    if (u == v) { v = (v + 1) & 1023; }
    arc_from[i] = u;
    arc_to[i] = v;
    arc_cost[i] = 1 + ((seed >> 8) & 63);
    arc_cap[i] = 1 + ((seed >> 4) & 7);
  }
  int checksum = 0;
  int r;
  for (r = 0; r < rounds; r = r + 1) {
    int source = r %% nodes;
    for (i = 0; i < nodes; i = i + 1) { dist[i] = 1000000000; pred[i] = 0 - 1; }
    dist[source] = 0;
    // bounded Bellman-Ford sweeps
    int sweep;
    for (sweep = 0; sweep < 12; sweep = sweep + 1) {
      int changed = 0;
      for (i = 0; i < arcs; i = i + 1) {
        if (arc_cap[i] > 0) {
          int u = arc_from[i];
          int v = arc_to[i];
          int nd = dist[u] + arc_cost[i];
          if (nd < dist[v]) {
            dist[v] = nd;
            pred[v] = i;
            changed = changed + 1;
          }
        }
      }
      if (changed == 0) { break; }
    }
    // augment along the path to a pseudo-sink, draining capacity
    int sink = (source + 517) %% nodes;
    int steps = 0;
    int node = sink;
    while (pred[node] >= 0 && steps < 64) {
      int a = pred[node];
      arc_cap[a] = arc_cap[a] - 1;
      if (arc_cap[a] <= 0) { arc_cap[a] = 3; }
      node = arc_from[a];
      steps = steps + 1;
    }
    checksum = (checksum + dist[sink] + steps) %% 1000003;
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 7)
