(* 464.h264ref analogue: video encoding kernels — block motion search
   (SAD over 2D windows) plus a 4x4 integer transform/quantization pass
   (the dominant loops of the reference encoder). *)

let name = "h264ref"
let cxx = false

let source ~scale =
  Printf.sprintf {|
// motion search + integer transform over synthetic frames
// (distortion is computed through a function pointer, as h264ref's
// configurable distortion metrics are)
typedef int (*distortion_fn)(int, int, int, int);

char frame_cur[16384];   // 128x128
char frame_ref[16384];
int block[16];
int coeff[16];

int sad16(int cx, int cy, int rx, int ry) {
  int total = 0;
  int y;
  for (y = 0; y < 4; y = y + 1) {
    int x;
    for (x = 0; x < 4; x = x + 1) {
      int a = frame_cur[(cy + y) * 128 + cx + x] & 255;
      int b = frame_ref[(ry + y) * 128 + rx + x] & 255;
      int d = a - b;
      if (d < 0) { d = 0 - d; }
      total = total + d;
    }
  }
  return total;
}

int ssd16(int cx, int cy, int rx, int ry) {
  int total = 0;
  int y;
  for (y = 0; y < 4; y = y + 1) {
    int x;
    for (x = 0; x < 4; x = x + 1) {
      int a = frame_cur[(cy + y) * 128 + cx + x] & 255;
      int b = frame_ref[(ry + y) * 128 + rx + x] & 255;
      int d = a - b;
      total = total + d * d;
    }
  }
  return total;
}

distortion_fn metrics[2];

int motion_search(int cx, int cy, distortion_fn metric) {
  int best = 1000000000;
  int best_mv = 0;
  int dy;
  for (dy = 0 - 4; dy <= 4; dy = dy + 1) {
    int dx;
    for (dx = 0 - 4; dx <= 4; dx = dx + 1) {
      int rx = cx + dx;
      int ry = cy + dy;
      if (rx < 0 || ry < 0 || rx > 124 || ry > 124) { continue; }
      int s = metric(cx, cy, rx, ry);
      if (s < best) { best = s; best_mv = (dx + 4) * 16 + dy + 4; }
    }
  }
  return best %% 100000 * 256 + best_mv;
}

int transform_quant(int cx, int cy, int q) {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    block[i] = frame_cur[(cy + i / 4) * 128 + cx + i %% 4] & 255;
  }
  // butterfly rows
  for (i = 0; i < 4; i = i + 1) {
    int a = block[i * 4] + block[i * 4 + 3];
    int b = block[i * 4 + 1] + block[i * 4 + 2];
    int c = block[i * 4 + 1] - block[i * 4 + 2];
    int d = block[i * 4] - block[i * 4 + 3];
    coeff[i * 4] = a + b;
    coeff[i * 4 + 1] = 2 * d + c;
    coeff[i * 4 + 2] = a - b;
    coeff[i * 4 + 3] = d - 2 * c;
  }
  int total = 0;
  for (i = 0; i < 16; i = i + 1) {
    int v = coeff[i] / (q + 1);
    total = total + v * v;
  }
  return total;
}

int main() {
  metrics[0] = sad16;
  metrics[1] = ssd16;
  int seed = 99991;
  int i;
  for (i = 0; i < 16384; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    frame_ref[i] = (seed >> 16) & 255;
    // current frame = shifted reference + noise (so search finds matches)
    int j = i + 128 * 2 + 1;
    if (j >= 16384) { j = j - 16384; }
    frame_cur[j] = ((seed >> 16) + (seed >> 24)) & 255;
  }
  int frames = %d;
  int checksum = 0;
  int f;
  for (f = 0; f < frames; f = f + 1) {
    int by;
    for (by = 0; by < 120; by = by + 8) {
      int bx;
      for (bx = 0; bx < 120; bx = bx + 8) {
        checksum = (checksum + motion_search(bx, by, metrics[f & 1])) %% 1000003;
        checksum = (checksum + transform_quant(bx, by, f %% 8)) %% 1000003;
      }
    }
    // scroll the frame between iterations
    for (i = 0; i < 16384; i = i + 1) {
      int j = i + 131;
      if (j >= 16384) { j = j - 16384; }
      frame_cur[i] = frame_ref[j];
    }
  }
  print_int(checksum);
  print_char('\n');
  return 0;
}
|}
    (scale * 2)
