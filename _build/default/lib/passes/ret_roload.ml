(* Backward-edge protection — the return-site allowlist the paper
   sketches in §IV-C ("it can be applied to backward control-flow
   transfers too, where the allowlists are sets of legitimate return
   sites").

   Mechanism: every module-local call passes, in ra, not the raw return
   address but the address of a *return-site cell* — an 8-byte entry in a
   read-only page tagged with the module's return key, holding the true
   return address.  Function epilogues return through

       ld.ro ra, (ra), <ret-key>
       jr    ra

   so a corrupted saved-ra can only name existing return-site cells: the
   set of legitimate return sites is the allowlist, checked in hardware
   at zero extra state (no shadow stack).

   The heavy lifting (site-cell creation, call rewriting, epilogue
   rewriting) happens in the code generator, driven by [m_ret_key]; this
   pass assigns the key and validates the module (builtins must not be
   address-taken, since the runtime returns conventionally). *)

module Ir = Roload_ir.Ir

type stats = { ret_key : int; functions_protected : int }

let builtin_names = [ "print_int"; "print_char"; "print_str"; "exit"; "alloc" ]

let run (m : Ir.modul) =
  let key = Roload_isa.Roload_ext.key_return_sites in
  (* validation: a builtin whose address is taken would be entered from a
     protected call site but return conventionally *)
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              let check = function
                | Ir.Func_addr name when List.mem name builtin_names ->
                  failwith
                    ("ret_roload: builtin " ^ name
                   ^ " is address-taken; runtime functions return conventionally")
                | Ir.Func_addr _ | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> ()
              in
              match i with
              | Ir.Bin (_, _, a, b2) ->
                check a;
                check b2
              | Ir.Load { addr; _ } -> check addr
              | Ir.Store { src; addr; _ } ->
                check src;
                check addr
              | Ir.Lea_frame _ -> ()
              | Ir.Call { args; _ } -> List.iter check args
              | Ir.Call_indirect { callee; args; _ } ->
                check callee;
                List.iter check args
              | Ir.Vcall { obj; args; _ } ->
                check obj;
                List.iter check args)
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  m.Ir.m_ret_key <- Some key;
  { ret_key = key; functions_protected = List.length m.Ir.m_funcs }
