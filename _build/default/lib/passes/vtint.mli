(** The VTint baseline (NDSS'15), as ported in the paper's evaluation:
    every virtual call gains a software range check that the vtable
    pointer falls inside the read-only region. *)

type stats = { vcalls_checked : int }

val run : Roload_ir.Ir.modul -> stats
