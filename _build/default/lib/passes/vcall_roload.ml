(* The VCall defense (paper §IV-A): classify vtables by class hierarchy,
   move each hierarchy's vtables into read-only pages tagged with a
   per-hierarchy key, and annotate the vtable-entry load of every virtual
   call with that key.  The code generator then emits ld.ro for exactly
   that load, so a corrupted vptr can only point into genuine vtable pages
   of the same hierarchy. *)

module Ir = Roload_ir.Ir

type stats = {
  vtables_rekeyed : int;
  vcalls_protected : int;
  keys_used : int;
}

let run (m : Ir.modul) =
  let keys = Keys.create () in
  (* root lookup for a class: via its vtable record *)
  let root_of_class cls =
    match List.find_opt (fun vt -> vt.Ir.vt_class = cls) m.Ir.m_vtables with
    | Some vt -> vt.Ir.vt_root
    | None -> cls
  in
  (* move vtable globals into keyed sections *)
  let rekeyed = ref 0 in
  let vt_symbols = List.map (fun vt -> (vt.Ir.vt_symbol, vt.Ir.vt_root)) m.Ir.m_vtables in
  m.Ir.m_globals <-
    List.map
      (fun g ->
        match List.assoc_opt g.Ir.g_name vt_symbols with
        | Some root ->
          incr rekeyed;
          { g with Ir.g_section = Keys.keyed_rodata_section (Keys.key_for keys root) }
        | None -> g)
      m.Ir.m_globals;
  (* annotate vcalls *)
  let protected_ = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Vcall { class_name; md; _ } ->
                md.Ir.vc_roload_key <- Some (Keys.key_for keys (root_of_class class_name));
                incr protected_
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Call_indirect _ ->
                ())
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  { vtables_rekeyed = !rekeyed; vcalls_protected = !protected_; keys_used = Keys.count keys }
