(* Dead-code elimination:
   - drop unreachable blocks (lowering produces them after return/break);
   - drop pure instructions (Bin, Lea_frame) whose results are never
     used anywhere in the function.  Loads are kept: in this system a
     load can fault, and hardened loads are security checks. *)

module Ir = Roload_ir.Ir
module IntSet = Set.Make (Int)

type stats = { blocks_removed : int; instrs_removed : int }

let reachable_blocks (f : Ir.func) =
  match f.Ir.f_blocks with
  | [] -> []
  | entry :: _ ->
    let by_label = Hashtbl.create 16 in
    List.iter (fun b -> Hashtbl.replace by_label b.Ir.b_label b) f.Ir.f_blocks;
    let seen = Hashtbl.create 16 in
    let rec visit label =
      if not (Hashtbl.mem seen label) then begin
        Hashtbl.add seen label ();
        match Hashtbl.find_opt by_label label with
        | Some b -> List.iter visit (Ir.successors b.Ir.b_term)
        | None -> ()
      end
    in
    visit entry.Ir.b_label;
    List.filter (fun b -> Hashtbl.mem seen b.Ir.b_label) f.Ir.f_blocks

let used_temps (f : Ir.func) =
  List.fold_left
    (fun acc b ->
      let acc =
        List.fold_left
          (fun acc i -> List.fold_left (fun s t -> IntSet.add t s) acc (Ir.instr_uses i))
          acc b.Ir.b_instrs
      in
      List.fold_left (fun s t -> IntSet.add t s) acc (Ir.term_uses b.Ir.b_term))
    IntSet.empty f.Ir.f_blocks

let is_pure = function
  | Ir.Bin _ | Ir.Lea_frame _ -> true
  | Ir.Load _ | Ir.Store _ | Ir.Call _ | Ir.Call_indirect _ | Ir.Vcall _ -> false

let run_func (f : Ir.func) =
  let before_blocks = List.length f.Ir.f_blocks in
  f.Ir.f_blocks <- reachable_blocks f;
  let blocks_removed = before_blocks - List.length f.Ir.f_blocks in
  (* iterate: removing one dead instr can make another dead *)
  let instrs_removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    let used = used_temps f in
    List.iter
      (fun b ->
        let keep, drop =
          List.partition
            (fun i ->
              (not (is_pure i))
              || List.exists (fun t -> IntSet.mem t used) (Ir.instr_defs i))
            b.Ir.b_instrs
        in
        if drop <> [] then begin
          instrs_removed := !instrs_removed + List.length drop;
          changed := true;
          b.Ir.b_instrs <- keep
        end)
      f.Ir.f_blocks
  done;
  { blocks_removed; instrs_removed = !instrs_removed }

let run (m : Ir.modul) =
  List.fold_left
    (fun acc f ->
      let s = run_func f in
      { blocks_removed = acc.blocks_removed + s.blocks_removed;
        instrs_removed = acc.instrs_removed + s.instrs_removed })
    { blocks_removed = 0; instrs_removed = 0 }
    m.Ir.m_funcs
