(** The hardening-scheme driver: one entry point applied between lowering
    and code generation. *)

type scheme =
  | Unprotected
  | Vcall  (** ROLoad vtable protection, per-hierarchy keys (paper §IV-A) *)
  | Icall  (** ROLoad type-based forward-edge CFI + unified vtable key (§IV-B) *)
  | Retcall  (** ROLoad backward-edge return-site allowlist (§IV-C extension) *)
  | Vtint_baseline  (** software range checks on vtable pointers *)
  | Cfi_baseline  (** software label/ID checks on indirect transfers *)

val scheme_name : scheme -> string
val scheme_of_string : string -> scheme option
val all_schemes : scheme list
(** The paper's evaluation matrix (Retcall, the §IV-C extension, is extra
    and exercised by its own tests/ablation). *)

type report = { scheme : scheme; annotations : (string * int) list }

val apply : scheme -> Roload_ir.Ir.modul -> report
(** Mutates the module in place and returns pass statistics. *)
