(* Deterministic page-key allocation for hardening passes.  Keys are
   allocated upwards from [Roload_ext.first_type_key]; key 0 is ordinary
   read-only data and key 1 is the ICall scheme's unified vtable key. *)

module Ext = Roload_isa.Roload_ext

type allocator = {
  mutable next : int;
  mutable assigned : (string * int) list; (* class-root or sig-id -> key *)
}

let create () = { next = Ext.first_type_key; assigned = [] }

let key_for t name =
  match List.assoc_opt name t.assigned with
  | Some k -> k
  | None ->
    (* the top key is reserved for return-site pages (§IV-C extension) *)
    if t.next >= Ext.key_return_sites then
      failwith "Keys: out of page keys (more than 1021 type classes)";
    let k = t.next in
    t.next <- k + 1;
    t.assigned <- (name, k) :: t.assigned;
    k

let assignments t = List.rev t.assigned
let count t = List.length t.assigned

let keyed_rodata_section key = Printf.sprintf ".rodata.key.%d" key
