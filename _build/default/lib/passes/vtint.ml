(* The VTint baseline (Zhang et al., NDSS'15), ported as in the paper's
   evaluation (§V-C1a): vtables stay in ordinary read-only memory and each
   virtual call is instrumented with a software range check that the
   vtable pointer falls inside the read-only region, before the function
   pointer is loaded.  No ROLoad instructions are used. *)

module Ir = Roload_ir.Ir

type stats = { vcalls_checked : int }

let run (m : Ir.modul) =
  let checked = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Vcall { md; _ } ->
                md.Ir.vc_vtint <- true;
                incr checked
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Call_indirect _ ->
                ())
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  { vcalls_checked = !checked }
