(** Deterministic page-key allocation for hardening passes.  Keys are
    allocated upwards from {!Roload_isa.Roload_ext.first_type_key}. *)

type allocator

val create : unit -> allocator

val key_for : allocator -> string -> int
(** Memoized: the same name always yields the same key.  Raises [Failure]
    past the 10-bit key space. *)

val assignments : allocator -> (string * int) list
val count : allocator -> int
val keyed_rodata_section : int -> string
(** [".rodata.key.<k>"]. *)
