lib/passes/ret_roload.ml: List Roload_ir Roload_isa
