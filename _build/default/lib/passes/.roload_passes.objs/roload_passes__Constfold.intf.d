lib/passes/constfold.mli: Roload_ir
