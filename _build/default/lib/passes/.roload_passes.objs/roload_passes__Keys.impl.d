lib/passes/keys.ml: List Printf Roload_isa
