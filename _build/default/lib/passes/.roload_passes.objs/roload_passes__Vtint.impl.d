lib/passes/vtint.ml: List Roload_ir
