lib/passes/icall_roload.mli: Roload_ir
