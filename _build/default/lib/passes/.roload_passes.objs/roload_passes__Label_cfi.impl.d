lib/passes/label_cfi.ml: Hashtbl List Printf Roload_ir
