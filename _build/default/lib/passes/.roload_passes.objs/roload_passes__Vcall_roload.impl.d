lib/passes/vcall_roload.ml: Keys List Roload_ir
