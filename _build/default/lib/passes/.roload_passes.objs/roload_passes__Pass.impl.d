lib/passes/pass.ml: Icall_roload Label_cfi Ret_roload Roload_ir Vcall_roload Vtint
