lib/passes/keys.mli:
