lib/passes/constfold.ml: Hashtbl Int64 List Roload_ir Roload_isa Roload_machine
