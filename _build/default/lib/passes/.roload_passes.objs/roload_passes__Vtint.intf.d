lib/passes/vtint.mli: Roload_ir
