lib/passes/vcall_roload.mli: Roload_ir
