lib/passes/dce.mli: Roload_ir
