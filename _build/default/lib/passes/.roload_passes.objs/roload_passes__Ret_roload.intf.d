lib/passes/ret_roload.mli: Roload_ir
