lib/passes/label_cfi.mli: Roload_ir
