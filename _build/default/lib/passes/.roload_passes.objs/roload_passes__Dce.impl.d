lib/passes/dce.ml: Hashtbl Int List Roload_ir Set
