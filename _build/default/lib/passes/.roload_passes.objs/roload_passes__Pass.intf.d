lib/passes/pass.mli: Roload_ir
