lib/passes/icall_roload.ml: Keys List Printf Roload_ir Roload_isa
