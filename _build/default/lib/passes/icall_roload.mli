(** The ICall defense — type-based forward-edge CFI (paper §IV-B,
    Listings 1–3): address-taken functions are published in GFPT entries
    living in pages keyed by function type; function-pointer values are
    rewritten to GFPT-slot addresses; indirect calls load the real target
    through ld.ro with the matching type key.  Vtables get the unified
    key (paper §V-C1b). *)

type stats = {
  gfpt_entries : int;
  icalls_protected : int;
  vcalls_protected : int;
  type_keys_used : int;
}

val gfpt_symbol : sig_id:string -> func:string -> string
val run : Roload_ir.Ir.modul -> stats
