(** Per-block constant propagation and folding (RISC-V division
    semantics); constant conditional branches become unconditional. *)

type stats = { folded : int; branches_resolved : int }

val eval_binop : Roload_ir.Ir.binop -> int64 -> int64 -> int64 option
val run : Roload_ir.Ir.modul -> stats
