(** Dead-code elimination: unreachable blocks and pure instructions whose
    results are never used.  Loads are never removed — in this system a
    load can fault, and hardened loads are security checks. *)

type stats = { blocks_removed : int; instrs_removed : int }

val run : Roload_ir.Ir.modul -> stats
