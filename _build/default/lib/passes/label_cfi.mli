(** The label/ID CFI baseline, as ported in the paper's evaluation: an ID
    word ([lui x0, id] — a no-op) precedes every indirect-call target and
    call sites compare it before jumping.  Indirect-call IDs are per
    function type; virtual-dispatch IDs are per (hierarchy root, slot). *)

type stats = { functions_labelled : int; icalls_checked : int; vcalls_checked : int }

val label_of_sig_id : string -> int
val label_of_vslot : root:string -> slot:int -> int
val run : Roload_ir.Ir.modul -> stats
