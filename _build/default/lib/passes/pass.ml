(* The hardening-scheme driver: one entry point the toolchain calls after
   lowering and before code generation. *)

module Ir = Roload_ir.Ir

type scheme =
  | Unprotected
  | Vcall (* ROLoad vtable protection, per-hierarchy keys (paper §IV-A) *)
  | Icall (* ROLoad type-based forward-edge CFI + unified vtable key (§IV-B) *)
  | Retcall (* ROLoad backward-edge return-site allowlist (§IV-C extension) *)
  | Vtint_baseline (* software range checks on vtable pointers *)
  | Cfi_baseline (* software label/ID checks on indirect transfers *)

let scheme_name = function
  | Unprotected -> "none"
  | Vcall -> "VCall"
  | Icall -> "ICall"
  | Retcall -> "Retcall"
  | Vtint_baseline -> "VTint"
  | Cfi_baseline -> "CFI"

let scheme_of_string = function
  | "none" -> Some Unprotected
  | "vcall" | "VCall" -> Some Vcall
  | "icall" | "ICall" -> Some Icall
  | "retcall" | "Retcall" -> Some Retcall
  | "vtint" | "VTint" -> Some Vtint_baseline
  | "cfi" | "CFI" -> Some Cfi_baseline
  | _ -> None

(* the paper's evaluation matrix; Retcall (the §IV-C extension) is extra
   and exercised by its own tests/ablation *)
let all_schemes = [ Unprotected; Vcall; Icall; Vtint_baseline; Cfi_baseline ]

type report = {
  scheme : scheme;
  annotations : (string * int) list; (* human-readable pass statistics *)
}

let apply scheme (m : Ir.modul) =
  match scheme with
  | Unprotected -> { scheme; annotations = [] }
  | Vcall ->
    let s = Vcall_roload.run m in
    {
      scheme;
      annotations =
        [
          ("vtables rekeyed", s.Vcall_roload.vtables_rekeyed);
          ("vcalls protected", s.Vcall_roload.vcalls_protected);
          ("hierarchy keys", s.Vcall_roload.keys_used);
        ];
    }
  | Retcall ->
    let s = Ret_roload.run m in
    {
      scheme;
      annotations =
        [
          ("return-site key", s.Ret_roload.ret_key);
          ("functions protected", s.Ret_roload.functions_protected);
        ];
    }
  | Icall ->
    let s = Icall_roload.run m in
    {
      scheme;
      annotations =
        [
          ("gfpt entries", s.Icall_roload.gfpt_entries);
          ("icalls protected", s.Icall_roload.icalls_protected);
          ("vcalls protected", s.Icall_roload.vcalls_protected);
          ("type keys", s.Icall_roload.type_keys_used);
        ];
    }
  | Vtint_baseline ->
    let s = Vtint.run m in
    { scheme; annotations = [ ("vcalls range-checked", s.Vtint.vcalls_checked) ] }
  | Cfi_baseline ->
    let s = Label_cfi.run m in
    {
      scheme;
      annotations =
        [
          ("functions labelled", s.Label_cfi.functions_labelled);
          ("icalls checked", s.Label_cfi.icalls_checked);
          ("vcalls checked", s.Label_cfi.vcalls_checked);
        ];
    }
