(** The VCall defense (paper §IV-A): vtables move into read-only pages
    keyed per class hierarchy, and every virtual call's vtable-entry load
    is annotated with the hierarchy key so codegen emits ld.ro. *)

type stats = { vtables_rekeyed : int; vcalls_protected : int; keys_used : int }

val run : Roload_ir.Ir.modul -> stats
