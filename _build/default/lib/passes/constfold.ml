(* Per-block constant propagation and folding.

   Within each block, temps defined as constants are tracked forward and
   substituted into later operands; binary operations over two constants
   fold (with RISC-V division semantics); conditional branches over
   constants become unconditional.  The map never crosses block
   boundaries, so non-SSA redefinition is handled by invalidation. *)

module Ir = Roload_ir.Ir

type stats = { folded : int; branches_resolved : int }

let eval_binop (bop : Ir.binop) a b =
  let bool64 c = if c then 1L else 0L in
  match bop with
  | Ir.Add -> Some (Int64.add a b)
  | Ir.Sub -> Some (Int64.sub a b)
  | Ir.Mul -> Some (Int64.mul a b)
  | Ir.Div -> Some (Roload_machine.Alu.mulop Roload_isa.Inst.Div a b)
  | Ir.Rem -> Some (Roload_machine.Alu.mulop Roload_isa.Inst.Rem a b)
  | Ir.And -> Some (Int64.logand a b)
  | Ir.Or -> Some (Int64.logor a b)
  | Ir.Xor -> Some (Int64.logxor a b)
  | Ir.Shl -> Some (Roload_machine.Alu.op Roload_isa.Inst.Sll a b)
  | Ir.Shr -> Some (Roload_machine.Alu.op Roload_isa.Inst.Sra a b)
  | Ir.Shru -> Some (Roload_machine.Alu.op Roload_isa.Inst.Srl a b)
  | Ir.Eq -> Some (bool64 (a = b))
  | Ir.Ne -> Some (bool64 (a <> b))
  | Ir.Lt -> Some (bool64 (Int64.compare a b < 0))
  | Ir.Le -> Some (bool64 (Int64.compare a b <= 0))
  | Ir.Gt -> Some (bool64 (Int64.compare a b > 0))
  | Ir.Ge -> Some (bool64 (Int64.compare a b >= 0))

let run_func (f : Ir.func) =
  let folded = ref 0 and branches = ref 0 in
  List.iter
    (fun b ->
      let consts : (Ir.temp, int64) Hashtbl.t = Hashtbl.create 16 in
      let subst v =
        match v with
        | Ir.Temp t -> (
          match Hashtbl.find_opt consts t with
          | Some c ->
            incr folded;
            Ir.Const c
          | None -> v)
        | Ir.Const _ | Ir.Global _ | Ir.Func_addr _ -> v
      in
      let kill_defs i = List.iter (Hashtbl.remove consts) (Ir.instr_defs i) in
      b.Ir.b_instrs <-
        List.map
          (fun i ->
            let i' =
              match i with
              | Ir.Bin (op, d, a, bb) -> Ir.Bin (op, d, subst a, subst bb)
              | Ir.Load { dst; addr; offset; width; md } ->
                Ir.Load { dst; addr = subst addr; offset; width; md }
              | Ir.Store { src; addr; offset; width } ->
                Ir.Store { src = subst src; addr = subst addr; offset; width }
              | Ir.Lea_frame _ -> i
              | Ir.Call { dst; callee; args } ->
                Ir.Call { dst; callee; args = List.map subst args }
              | Ir.Call_indirect { dst; callee; args; sig_id; md } ->
                Ir.Call_indirect
                  { dst; callee = subst callee; args = List.map subst args; sig_id; md }
              | Ir.Vcall { dst; obj; slot; class_name; args; md } ->
                Ir.Vcall
                  { dst; obj = subst obj; slot; class_name; args = List.map subst args; md }
            in
            kill_defs i';
            (match i' with
            | Ir.Bin (op, d, Ir.Const a, Ir.Const bb) -> (
              match eval_binop op a bb with
              | Some c -> Hashtbl.replace consts d c
              | None -> ())
            | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
            | Ir.Call_indirect _ | Ir.Vcall _ ->
              ());
            (* canonicalize fully-folded moves *)
            match i' with
            | Ir.Bin (op, d, Ir.Const a, Ir.Const bb) -> (
              match eval_binop op a bb with
              | Some c -> Ir.Bin (Ir.Add, d, Ir.Const c, Ir.Const 0L)
              | None -> i')
            | _ -> i')
          b.Ir.b_instrs;
      b.Ir.b_term <-
        (match b.Ir.b_term with
        | Ir.Cbr (v, l1, l2) -> (
          let v =
            match v with
            | Ir.Temp t -> (
              match Hashtbl.find_opt consts t with Some c -> Ir.Const c | None -> v)
            | _ -> v
          in
          match v with
          | Ir.Const c ->
            incr branches;
            Ir.Br (if c <> 0L then l1 else l2)
          | _ -> Ir.Cbr (v, l1, l2))
        | t -> t))
    f.Ir.f_blocks;
  { folded = !folded; branches_resolved = !branches }

let run (m : Ir.modul) =
  List.fold_left
    (fun acc f ->
      let s = run_func f in
      { folded = acc.folded + s.folded;
        branches_resolved = acc.branches_resolved + s.branches_resolved })
    { folded = 0; branches_resolved = 0 }
    m.Ir.m_funcs
