(** Backward-edge protection — the return-site allowlist sketched in
    paper §IV-C: module-local calls pass a pointer to a keyed read-only
    return-site cell in ra, and epilogues return through
    [ld.ro ra, (ra), key; jr ra], so corrupted saved return addresses can
    only name existing return sites. *)

type stats = { ret_key : int; functions_protected : int }

val run : Roload_ir.Ir.modul -> stats
(** Assigns {!Roload_isa.Roload_ext.key_return_sites} as [m_ret_key];
    raises [Failure] if a runtime builtin is address-taken (builtins
    return conventionally). *)
