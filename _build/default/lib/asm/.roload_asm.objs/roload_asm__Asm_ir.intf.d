lib/asm/asm_ir.mli: Roload_isa
