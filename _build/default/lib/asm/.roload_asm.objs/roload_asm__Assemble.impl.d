lib/asm/assemble.ml: Array Asm_ir Buffer Bytes Char Hashtbl Int64 List Printf Roload_isa Roload_mem Roload_obj Roload_util String
