lib/asm/asm_parser.mli: Asm_ir
