lib/asm/assemble.mli: Asm_ir Roload_obj
