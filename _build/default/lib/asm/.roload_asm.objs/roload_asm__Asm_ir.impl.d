lib/asm/asm_ir.ml: Char Int64 List Printf Roload_isa Roload_obj Roload_util String
