lib/asm/asm_parser.ml: Asm_ir Buffer Int64 List Printf Roload_isa String
