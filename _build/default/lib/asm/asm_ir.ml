(* Assembler input items.  The code generator produces these directly; the
   text parser produces the same items from `.s` files, so both paths share
   one assembler. *)

module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg

type item =
  | Label of string
  | Global of string
  | Section of string (* switch current section, attributes from its name *)
  | Align of int
  | Inst of Inst.t (* concrete instruction, label-free *)
  | Li of Reg.t * int64 (* load 64-bit constant; expands as needed *)
  | La of Reg.t * string (* load symbol address (lui+addi, relocated) *)
  | Call of string (* jal ra, sym *)
  | Tail of string (* jal zero, sym *)
  | Jump of string (* jal zero, local label *)
  | Branch_to of Inst.branch_cond * Reg.t * Reg.t * string (* local label *)
  | Quad_int of int64
  | Quad_sym of string (* 8-byte absolute address of a symbol *)
  | Word_int of int64
  | Byte_int of int
  | Asciz of string
  | Bytes_raw of string (* raw bytes, no terminator appended *)
  | Zero of int

let item_to_string = function
  | Label l -> l ^ ":"
  | Global s -> ".global " ^ s
  | Section s -> ".section " ^ s
  | Align n -> Printf.sprintf ".align %d" n
  | Inst i -> "    " ^ Inst.to_string i
  | Li (rd, v) -> Printf.sprintf "    li %s, %Ld" (Reg.name rd) v
  | La (rd, s) -> Printf.sprintf "    la %s, %s" (Reg.name rd) s
  | Call s -> "    call " ^ s
  | Tail s -> "    tail " ^ s
  | Jump l -> "    j " ^ l
  | Branch_to (c, r1, r2, l) ->
    Printf.sprintf "    %s %s, %s, %s" (Inst.branch_cond_name c) (Reg.name r1)
      (Reg.name r2) l
  | Quad_int v -> Printf.sprintf "    .quad %Ld" v
  | Quad_sym s -> "    .quad " ^ s
  | Word_int v -> Printf.sprintf "    .word %Ld" v
  | Byte_int v -> Printf.sprintf "    .byte %d" v
  | Asciz s -> Printf.sprintf "    .asciz %S" s
  | Bytes_raw s ->
    "    .byte "
    ^ String.concat ", " (List.map (fun c -> string_of_int (Char.code c))
                            (List.init (String.length s) (String.get s)))
  | Zero n -> Printf.sprintf "    .zero %d" n

let program_to_string items = String.concat "\n" (List.map item_to_string items) ^ "\n"

(* Expansion of `li rd, imm` into concrete instructions (the GNU-style
   materialization: small → addi; 32-bit → lui+addiw; otherwise build the
   upper part recursively, shift, and add 12-bit chunks). *)
let rec expand_li rd v =
  let open Roload_util.Bits in
  if fits_signed v ~width:12 then [ Inst.Op_imm (Inst.Add, rd, Reg.zero, v) ]
  else if fits_signed v ~width:32 then begin
    let hi = Int64.of_int (Roload_obj.Reloc.hi20 (Int64.to_int v)) in
    let lo = Roload_obj.Reloc.lo12 (Int64.to_int v) in
    Inst.Lui (rd, hi) :: (if lo = 0L then [] else [ Inst.Op_imm_w (Inst.Addw, rd, rd, lo) ])
  end
  else begin
    let lo = sign_extend (Int64.logand v 0xFFFL) ~width:12 in
    let rest = Int64.sub v lo in
    (* rest has its low 12 bits clear and is non-zero *)
    let rec trailing_zeros n i =
      if Int64.logand n 1L = 1L then i else trailing_zeros (Int64.shift_right_logical n 1) (i + 1)
    in
    let shift = trailing_zeros rest 0 in
    let upper = Int64.shift_right rest shift in
    expand_li rd upper
    @ [ Inst.Op_imm (Inst.Sll, rd, rd, Int64.of_int shift) ]
    @ if lo = 0L then [] else [ Inst.Op_imm (Inst.Add, rd, rd, lo) ]
  end
