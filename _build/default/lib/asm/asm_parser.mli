(** Parser for textual assembly into {!Asm_ir.item} lists, accepting the
    syntax the code generator prints (including [ld.ro rd, (rs1), key] and
    [.rodata.key.N] sections). *)

exception Parse_error of { line : int; message : string }

val parse : string -> Asm_ir.item list
