(** Assembler input items.  The code generator produces these directly;
    {!Asm_parser} produces the same items from `.s` text. *)

type item =
  | Label of string
  | Global of string
  | Section of string
  | Align of int
  | Inst of Roload_isa.Inst.t
  | Li of Roload_isa.Reg.t * int64
  | La of Roload_isa.Reg.t * string
  | Call of string
  | Tail of string
  | Jump of string
  | Branch_to of Roload_isa.Inst.branch_cond * Roload_isa.Reg.t * Roload_isa.Reg.t * string
  | Quad_int of int64
  | Quad_sym of string
  | Word_int of int64
  | Byte_int of int
  | Asciz of string
  | Bytes_raw of string  (** raw bytes, no terminator appended *)
  | Zero of int

val item_to_string : item -> string
val program_to_string : item list -> string

val expand_li : Roload_isa.Reg.t -> int64 -> Roload_isa.Inst.t list
(** GNU-style constant materialization: addi / lui+addiw / recursive
    shift-and-add for full 64-bit constants. *)
