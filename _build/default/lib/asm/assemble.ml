(* The assembler: turns [Asm_ir.item] lists into a relocatable object file.

   Pipeline per section:
   1. expand pseudo-instructions (li) into concrete instructions;
   2. optionally compress layout-independent instructions to RVC forms
      (including c.ld.ro);
   3. iterate branch relaxation to a fixed point: local conditional
      branches start short (4 bytes) and grow to an inverted-branch+jal
      pair (8 bytes) when their target is out of the ±4 KiB B-type range;
   4. emit bytes, record label symbols and relocations (Hi20/Lo12 pairs
      for la, Jal for call/tail, Abs64 for .quad sym). *)

module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg
module Encode = Roload_isa.Encode
module Compressed = Roload_isa.Compressed
module Section = Roload_obj.Section
module Symbol = Roload_obj.Symbol
module Reloc = Roload_obj.Reloc
module Objfile = Roload_obj.Objfile

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* An atom is a layout unit whose size is known up to branch relaxation. *)
type atom =
  | A_label of string
  | A_inst of Inst.t * bool (* instruction, compressed? *)
  | A_la of Reg.t * string
  | A_calljal of Reg.t * string (* jal <rd>, sym — call (ra) or tail (zero) *)
  | A_jump of string (* local jal zero, or cross-section via reloc *)
  | A_branch of Inst.branch_cond * Reg.t * Reg.t * string * bool ref (* long? *)
  | A_quad_sym of string (* 8 bytes + Abs64 reloc *)
  | A_bytes of string
  | A_align of int

type options = { compress : bool }

let default_options = { compress = true }

let atom_size = function
  | A_label _ -> 0
  | A_inst (_, compressed) -> if compressed then 2 else 4
  | A_la _ -> 8
  | A_calljal _ -> 4
  | A_jump _ -> 4
  | A_branch (_, _, _, _, long) -> if !long then 8 else 4
  | A_quad_sym _ -> 8
  | A_bytes s -> String.length s
  | A_align _ -> 0 (* padding is computed during layout *)

let layout atoms =
  let n = Array.length atoms in
  let offsets = Array.make n 0 in
  let pos = ref 0 in
  for i = 0 to n - 1 do
    (match atoms.(i) with
    | A_align a -> pos := Roload_util.Bits.align_up !pos a
    | A_label _ | A_inst _ | A_la _ | A_calljal _ | A_jump _ | A_branch _
    | A_quad_sym _ | A_bytes _ ->
      ());
    offsets.(i) <- !pos;
    pos := !pos + atom_size atoms.(i)
  done;
  (offsets, !pos)

let label_offsets atoms offsets =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun i atom ->
      match atom with
      | A_label l ->
        if Hashtbl.mem tbl l then error "duplicate label %s" l;
        Hashtbl.add tbl l offsets.(i)
      | A_inst _ | A_la _ | A_calljal _ | A_jump _ | A_branch _ | A_quad_sym _
      | A_bytes _ | A_align _ ->
        ())
    atoms;
  tbl

let branch_fits off = off >= -4096 && off <= 4094

let relax atoms =
  let changed = ref true in
  while !changed do
    changed := false;
    let offsets, _ = layout atoms in
    let labels = label_offsets atoms offsets in
    Array.iteri
      (fun i atom ->
        match atom with
        | A_branch (_, _, _, target, long) when not !long -> (
          match Hashtbl.find_opt labels target with
          | None -> error "undefined local branch target %s" target
          | Some toff ->
            if not (branch_fits (toff - offsets.(i))) then begin
              long := true;
              changed := true
            end)
        | A_branch _ | A_label _ | A_inst _ | A_la _ | A_calljal _ | A_jump _
        | A_quad_sym _ | A_bytes _ | A_align _ ->
          ())
      atoms
  done

let invert_cond = function
  | Inst.Beq -> Inst.Bne
  | Inst.Bne -> Inst.Beq
  | Inst.Blt -> Inst.Bge
  | Inst.Bge -> Inst.Blt
  | Inst.Bltu -> Inst.Bgeu
  | Inst.Bgeu -> Inst.Bltu

let emit_section ~sec_name atoms =
  relax atoms;
  let offsets, total = layout atoms in
  let labels = label_offsets atoms offsets in
  let buf = Buffer.create (total + 16) in
  let relocs = ref [] in
  let add_reloc ~offset ~kind ~symbol ~addend =
    relocs := { Reloc.section = sec_name; offset; kind; symbol; addend } :: !relocs
  in
  let is_text =
    let perms, _ = Section.attrs_of_name sec_name in
    perms.Roload_mem.Perm.x
  in
  let pad upto =
    (* c.nop (0x0001) in text, zero bytes elsewhere *)
    while Buffer.length buf < upto do
      if is_text && upto - Buffer.length buf >= 2 then
        Buffer.add_string buf (Compressed.encode_bytes 0x0001)
      else Buffer.add_char buf '\000'
    done
  in
  Array.iteri
    (fun i atom ->
      pad offsets.(i);
      let here = offsets.(i) in
      match atom with
      | A_label _ | A_align _ -> ()
      | A_bytes s -> Buffer.add_string buf s
      | A_quad_sym sym ->
        add_reloc ~offset:here ~kind:Reloc.Abs64 ~symbol:sym ~addend:0;
        Buffer.add_string buf (String.make 8 '\000')
      | A_inst (inst, compressed) ->
        if compressed then
          match Compressed.try_compress inst with
          | Some hw -> Buffer.add_string buf (Compressed.encode_bytes hw)
          | None -> error "internal: instruction marked compressed but not compressible"
        else Buffer.add_string buf (Encode.encode_bytes inst)
      | A_la (rd, sym) ->
        add_reloc ~offset:here ~kind:Reloc.Hi20 ~symbol:sym ~addend:0;
        add_reloc ~offset:(here + 4) ~kind:Reloc.Lo12_i ~symbol:sym ~addend:0;
        Buffer.add_string buf (Encode.encode_bytes (Inst.Lui (rd, 0L)));
        Buffer.add_string buf (Encode.encode_bytes (Inst.Op_imm (Inst.Add, rd, rd, 0L)))
      | A_calljal (rd, sym) ->
        add_reloc ~offset:here ~kind:Reloc.Jal ~symbol:sym ~addend:0;
        Buffer.add_string buf (Encode.encode_bytes (Inst.Jal (rd, 0L)))
      | A_jump target -> (
        match Hashtbl.find_opt labels target with
        | Some toff ->
          Buffer.add_string buf
            (Encode.encode_bytes (Inst.Jal (Reg.zero, Int64.of_int (toff - here))))
        | None ->
          add_reloc ~offset:here ~kind:Reloc.Jal ~symbol:target ~addend:0;
          Buffer.add_string buf (Encode.encode_bytes (Inst.Jal (Reg.zero, 0L))))
      | A_branch (cond, r1, r2, target, long) -> (
        match Hashtbl.find_opt labels target with
        | None -> error "undefined local branch target %s" target
        | Some toff ->
          if !long then begin
            Buffer.add_string buf
              (Encode.encode_bytes (Inst.Branch (invert_cond cond, r1, r2, 8L)));
            Buffer.add_string buf
              (Encode.encode_bytes (Inst.Jal (Reg.zero, Int64.of_int (toff - (here + 4)))))
          end
          else
            Buffer.add_string buf
              (Encode.encode_bytes (Inst.Branch (cond, r1, r2, Int64.of_int (toff - here))))))
    atoms;
  pad total;
  (Buffer.contents buf, labels, List.rev !relocs)

type section_acc = { mutable atoms : atom list (* reversed *) }

let assemble ?(options = default_options) items =
  let sections : (string, section_acc) Hashtbl.t = Hashtbl.create 8 in
  let section_order = ref [] in
  let globals = ref [] in
  let current = ref None in
  let get_section name =
    match Hashtbl.find_opt sections name with
    | Some s -> s
    | None ->
      let s = { atoms = [] } in
      Hashtbl.add sections name s;
      section_order := name :: !section_order;
      s
  in
  let push atom =
    match !current with
    | None -> error "item before any .section directive"
    | Some sec -> sec.atoms <- atom :: sec.atoms
  in
  let push_inst inst =
    if not (Inst.valid inst) then error "invalid instruction: %s" (Inst.to_string inst);
    let compressed = options.compress && Compressed.try_compress inst <> None in
    push (A_inst (inst, compressed))
  in
  List.iter
    (fun item ->
      match item with
      | Asm_ir.Section name -> current := Some (get_section name)
      | Asm_ir.Label l -> push (A_label l)
      | Asm_ir.Global s -> globals := s :: !globals
      | Asm_ir.Align n -> push (A_align n)
      | Asm_ir.Inst inst -> push_inst inst
      | Asm_ir.Li (rd, v) -> List.iter push_inst (Asm_ir.expand_li rd v)
      | Asm_ir.La (rd, sym) -> push (A_la (rd, sym))
      | Asm_ir.Call sym -> push (A_calljal (Reg.ra, sym))
      | Asm_ir.Tail sym -> push (A_calljal (Reg.zero, sym))
      | Asm_ir.Jump l -> push (A_jump l)
      | Asm_ir.Branch_to (c, r1, r2, l) -> push (A_branch (c, r1, r2, l, ref false))
      | Asm_ir.Quad_int v ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 v;
        push (A_bytes (Bytes.to_string b))
      | Asm_ir.Quad_sym sym -> push (A_quad_sym sym)
      | Asm_ir.Word_int v ->
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int64.to_int32 v);
        push (A_bytes (Bytes.to_string b))
      | Asm_ir.Byte_int v -> push (A_bytes (String.make 1 (Char.chr (v land 0xFF))))
      | Asm_ir.Asciz s -> push (A_bytes (s ^ "\000"))
      | Asm_ir.Bytes_raw s -> push (A_bytes s)
      | Asm_ir.Zero n -> push (A_bytes (String.make n '\000')))
    items;
  let globals = !globals in
  let out_sections = ref [] in
  let out_symbols = ref [] in
  let out_relocs = ref [] in
  List.iter
    (fun sec_name ->
      let acc = Hashtbl.find sections sec_name in
      let atoms = Array.of_list (List.rev acc.atoms) in
      let data, labels, relocs = emit_section ~sec_name atoms in
      let perms, key = Section.attrs_of_name sec_name in
      let section =
        if Section.is_bss_name sec_name then
          Section.make ~key ~bss_size:(String.length data) ~name:sec_name ~perms ""
        else Section.make ~key ~name:sec_name ~perms data
      in
      out_sections := section :: !out_sections;
      Hashtbl.iter
        (fun name offset ->
          out_symbols :=
            Symbol.make ~global:(List.mem name globals) ~name ~section:sec_name ~offset ()
            :: !out_symbols)
        labels;
      out_relocs := !out_relocs @ relocs)
    (List.rev !section_order);
  Objfile.make ~sections:(List.rev !out_sections) ~symbols:!out_symbols
    ~relocs:!out_relocs

(* Static instrumentation statistics used by the memory-overhead analysis:
   code bytes per section before/after hardening are compared by the
   experiment drivers. *)
let section_sizes obj =
  List.map (fun (s : Section.t) -> (s.Section.name, Section.size s)) obj.Objfile.sections
