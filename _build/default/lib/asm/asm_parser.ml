(* Parser for textual assembly into [Asm_ir.item] lists.  Accepts the
   syntax produced by [Asm_ir.item_to_string] / the code generator,
   including the ROLoad forms of Listing 2/3:

       ld.ro  a0, (a1), 111
       .section .rodata.key.111
       gfpt_foo: .quad foo
*)

module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ---------- tokenizing ---------- *)

type token = Word of string | Int of int64 | LParen | RParen | Comma | Str of string

let tokenize lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '$' || c = ':' || c = '-' || c = '+'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '#' then i := n (* comment *)
    else if c = '(' then begin toks := LParen :: !toks; incr i end
    else if c = ')' then begin toks := RParen :: !toks; incr i end
    else if c = ',' then begin toks := Comma :: !toks; incr i end
    else if c = '"' then begin
      let b = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then fail lineno "unterminated string"
        else if s.[!i] = '"' then incr i
        else if s.[!i] = '\\' && !i + 1 < n then begin
          (match s.[!i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | '0' -> Buffer.add_char b '\000'
          | '\\' -> Buffer.add_char b '\\'
          | '"' -> Buffer.add_char b '"'
          | c -> Buffer.add_char b c);
          i := !i + 2;
          go ()
        end
        else begin
          Buffer.add_char b s.[!i];
          incr i;
          go ()
        end
      in
      go ();
      toks := Str (Buffer.contents b) :: !toks
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do incr i done;
      let w = String.sub s start (!i - start) in
      (* numeric? *)
      match Int64.of_string_opt w with
      | Some v -> toks := Int v :: !toks
      | None -> toks := Word w :: !toks
    end
    else fail lineno "unexpected character %C" c
  done;
  List.rev !toks

(* ---------- parsing helpers ---------- *)

let reg_of_word lineno w =
  match Reg.of_name w with
  | Some r -> r
  | None -> fail lineno "unknown register %s" w

let width_of_suffix lineno = function
  | "b" -> (Inst.Byte, false)
  | "h" -> (Inst.Half, false)
  | "w" -> (Inst.Word, false)
  | "d" -> (Inst.Double, false)
  | "bu" -> (Inst.Byte, true)
  | "hu" -> (Inst.Half, true)
  | "wu" -> (Inst.Word, true)
  | s -> fail lineno "unknown load/store width %s" s

let branch_conds =
  [ ("beq", Inst.Beq); ("bne", Inst.Bne); ("blt", Inst.Blt); ("bge", Inst.Bge);
    ("bltu", Inst.Bltu); ("bgeu", Inst.Bgeu) ]

let alu_imm_ops =
  [ ("addi", Inst.Add); ("slti", Inst.Slt); ("sltiu", Inst.Sltu); ("xori", Inst.Xor);
    ("ori", Inst.Or); ("andi", Inst.And); ("slli", Inst.Sll); ("srli", Inst.Srl);
    ("srai", Inst.Sra) ]

let alu_reg_ops =
  [ ("add", Inst.Add); ("sub", Inst.Sub); ("sll", Inst.Sll); ("slt", Inst.Slt);
    ("sltu", Inst.Sltu); ("xor", Inst.Xor); ("srl", Inst.Srl); ("sra", Inst.Sra);
    ("or", Inst.Or); ("and", Inst.And) ]

let alu_w_imm_ops =
  [ ("addiw", Inst.Addw); ("slliw", Inst.Sllw); ("srliw", Inst.Srlw); ("sraiw", Inst.Sraw) ]

let alu_w_reg_ops =
  [ ("addw", Inst.Addw); ("subw", Inst.Subw); ("sllw", Inst.Sllw); ("srlw", Inst.Srlw);
    ("sraw", Inst.Sraw) ]

let mul_ops =
  [ ("mul", Inst.Mul); ("mulh", Inst.Mulh); ("mulhsu", Inst.Mulhsu); ("mulhu", Inst.Mulhu);
    ("div", Inst.Div); ("divu", Inst.Divu); ("rem", Inst.Rem); ("remu", Inst.Remu) ]

let mul_w_ops =
  [ ("mulw", Inst.Mulw); ("divw", Inst.Divw); ("divuw", Inst.Divuw); ("remw", Inst.Remw);
    ("remuw", Inst.Remuw) ]

(* ---------- statement parsing ---------- *)

let rec parse_line lineno toks =
  let reg w = reg_of_word lineno w in
  match toks with
  | [] -> []
  | [ Word w ] when String.length w > 1 && w.[String.length w - 1] = ':' ->
    [ Asm_ir.Label (String.sub w 0 (String.length w - 1)) ]
  | Word w :: rest when String.length w > 1 && w.[String.length w - 1] = ':' ->
    Asm_ir.Label (String.sub w 0 (String.length w - 1)) :: parse_line lineno rest
  | [ Word ".section"; Word name ] -> [ Asm_ir.Section name ]
  | [ Word ".text" ] -> [ Asm_ir.Section ".text" ]
  | [ Word ".data" ] -> [ Asm_ir.Section ".data" ]
  | [ Word ".bss" ] -> [ Asm_ir.Section ".bss" ]
  | [ Word ".rodata" ] -> [ Asm_ir.Section ".rodata" ]
  | [ Word (".global" | ".globl"); Word s ] -> [ Asm_ir.Global s ]
  | [ Word ".align"; Int n ] -> [ Asm_ir.Align (Int64.to_int n) ]
  | [ Word ".quad"; Int v ] -> [ Asm_ir.Quad_int v ]
  | [ Word ".quad"; Word s ] -> [ Asm_ir.Quad_sym s ]
  | [ Word ".word"; Int v ] -> [ Asm_ir.Word_int v ]
  | [ Word ".byte"; Int v ] -> [ Asm_ir.Byte_int (Int64.to_int v) ]
  | [ Word ".asciz"; Str s ] -> [ Asm_ir.Asciz s ]
  | [ Word ".zero"; Int n ] -> [ Asm_ir.Zero (Int64.to_int n) ]
  | Word mnemonic :: operands -> parse_inst lineno mnemonic operands reg
  | (Int _ | LParen | RParen | Comma | Str _) :: _ -> fail lineno "unexpected token"

and parse_inst lineno m operands reg =
  let one = function
    | [ x ] -> x
    | _ -> fail lineno "%s: expected 1 operand" m
  in
  let i inst = [ Asm_ir.Inst inst ] in
  match (m, operands) with
  (* pseudos *)
  | "nop", [] -> i Inst.nop
  | "ret", [] -> i Inst.ret
  | "ecall", [] -> i Inst.Ecall
  | "ebreak", [] -> i Inst.Ebreak
  | "fence", [] -> i Inst.Fence
  | "li", [ Word rd; Comma; Int v ] -> [ Asm_ir.Li (reg rd, v) ]
  | "la", [ Word rd; Comma; Word sym ] -> [ Asm_ir.La (reg rd, sym) ]
  | "call", [ Word sym ] -> [ Asm_ir.Call sym ]
  | "tail", [ Word sym ] -> [ Asm_ir.Tail sym ]
  | "mv", [ Word rd; Comma; Word rs ] -> i (Inst.mv (reg rd) (reg rs))
  | "j", [ x ] -> (
    match one [ x ] with
    | Word l -> [ Asm_ir.Jump l ]
    | Int off -> i (Inst.Jal (Reg.zero, off))
    | LParen | RParen | Comma | Str _ -> fail lineno "j: bad operand")
  | "jr", [ Word rs ] -> i (Inst.Jalr (Reg.zero, reg rs, 0L))
  | "jal", [ Word rd; Comma; Int off ] -> i (Inst.Jal (reg rd, off))
  | "jal", [ Word rd; Comma; Word sym ] when Reg.of_name rd <> None && Reg.of_name sym = None ->
    if Reg.to_int (reg rd) = 1 then [ Asm_ir.Call sym ]
    else if Reg.to_int (reg rd) = 0 then [ Asm_ir.Jump sym ]
    else fail lineno "jal to symbol only supported with rd = ra or zero"
  | "jal", [ Word sym ] -> [ Asm_ir.Call sym ]
  | "jalr", [ Word rs ] -> i (Inst.Jalr (Reg.ra, reg rs, 0L))
  | "jalr", [ Word rd; Comma; Int imm; LParen; Word rs1; RParen ] ->
    i (Inst.Jalr (reg rd, reg rs1, imm))
  | "jalr", [ Word rd; Comma; LParen; Word rs1; RParen ] ->
    i (Inst.Jalr (reg rd, reg rs1, 0L))
  | "beqz", [ Word rs; Comma; Word l ] ->
    [ Asm_ir.Branch_to (Inst.Beq, reg rs, Reg.zero, l) ]
  | "bnez", [ Word rs; Comma; Word l ] ->
    [ Asm_ir.Branch_to (Inst.Bne, reg rs, Reg.zero, l) ]
  | _, _ -> parse_inst2 lineno m operands reg

and parse_inst2 lineno m operands reg =
  let i inst = [ Asm_ir.Inst inst ] in
  (* branches *)
  match List.assoc_opt m branch_conds with
  | Some cond -> (
    match operands with
    | [ Word r1; Comma; Word r2; Comma; Word l ] ->
      [ Asm_ir.Branch_to (cond, reg r1, reg r2, l) ]
    | [ Word r1; Comma; Word r2; Comma; Int off ] ->
      i (Inst.Branch (cond, reg r1, reg r2, off))
    | _ -> fail lineno "%s: bad operands" m)
  | None -> (
    (* loads/stores (incl. .ro forms) *)
    let is_ro = String.length m > 3 && String.sub m (String.length m - 3) 3 = ".ro" in
    let base = if is_ro then String.sub m 0 (String.length m - 3) else m in
    match base.[0] with
    | 'l' when List.mem_assoc base
                 [ ("lb", ()); ("lh", ()); ("lw", ()); ("ld", ()); ("lbu", ());
                   ("lhu", ()); ("lwu", ()) ] -> (
      let width, unsigned = width_of_suffix lineno (String.sub base 1 (String.length base - 1)) in
      if is_ro then
        match operands with
        | [ Word rd; Comma; LParen; Word rs1; RParen; Comma; Int key ] ->
          i (Inst.Load_ro { width; unsigned; rd = reg rd; rs1 = reg rs1;
                            key = Int64.to_int key })
        | _ -> fail lineno "%s: expected 'rd, (rs1), key'" m
      else
        match operands with
        | [ Word rd; Comma; Int imm; LParen; Word rs1; RParen ] ->
          i (Inst.Load { width; unsigned; rd = reg rd; rs1 = reg rs1; imm })
        | [ Word rd; Comma; LParen; Word rs1; RParen ] ->
          i (Inst.Load { width; unsigned; rd = reg rd; rs1 = reg rs1; imm = 0L })
        | _ -> fail lineno "%s: expected 'rd, imm(rs1)'" m)
    | 's' when List.mem_assoc base [ ("sb", ()); ("sh", ()); ("sw", ()); ("sd", ()) ] -> (
      let width, _ = width_of_suffix lineno (String.sub base 1 (String.length base - 1)) in
      match operands with
      | [ Word rs2; Comma; Int imm; LParen; Word rs1; RParen ] ->
        i (Inst.Store { width; rs2 = reg rs2; rs1 = reg rs1; imm })
      | [ Word rs2; Comma; LParen; Word rs1; RParen ] ->
        i (Inst.Store { width; rs2 = reg rs2; rs1 = reg rs1; imm = 0L })
      | _ -> fail lineno "%s: expected 'rs2, imm(rs1)'" m)
    | 'l' | 's' | 'a' | 'b' | 'c' | 'd' | 'e' | 'f' | 'g' | 'h' | 'i' | 'j' | 'k'
    | 'm' | 'n' | 'o' | 'p' | 'q' | 'r' | 't' | 'u' | 'v' | 'w' | 'x' | 'y' | 'z'
    | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '$' | '-' | '+' | ':' ->
      parse_inst3 lineno m operands reg
    | _ -> fail lineno "unknown mnemonic %s" m)

and parse_inst3 lineno m operands reg =
  let i inst = [ Asm_ir.Inst inst ] in
  let rrr mk =
    match operands with
    | [ Word rd; Comma; Word rs1; Comma; Word rs2 ] -> i (mk (reg rd) (reg rs1) (reg rs2))
    | _ -> fail lineno "%s: expected 'rd, rs1, rs2'" m
  in
  let rri mk =
    match operands with
    | [ Word rd; Comma; Word rs1; Comma; Int imm ] -> i (mk (reg rd) (reg rs1) imm)
    | _ -> fail lineno "%s: expected 'rd, rs1, imm'" m
  in
  match List.assoc_opt m alu_imm_ops with
  | Some op -> rri (fun rd rs1 imm -> Inst.Op_imm (op, rd, rs1, imm))
  | None -> (
    match List.assoc_opt m alu_w_imm_ops with
    | Some op -> rri (fun rd rs1 imm -> Inst.Op_imm_w (op, rd, rs1, imm))
    | None -> (
      match List.assoc_opt m alu_reg_ops with
      | Some op -> rrr (fun rd rs1 rs2 -> Inst.Op (op, rd, rs1, rs2))
      | None -> (
        match List.assoc_opt m alu_w_reg_ops with
        | Some op -> rrr (fun rd rs1 rs2 -> Inst.Op_w (op, rd, rs1, rs2))
        | None -> (
          match List.assoc_opt m mul_ops with
          | Some op -> rrr (fun rd rs1 rs2 -> Inst.Mulop (op, rd, rs1, rs2))
          | None -> (
            match List.assoc_opt m mul_w_ops with
            | Some op -> rrr (fun rd rs1 rs2 -> Inst.Mulop_w (op, rd, rs1, rs2))
            | None -> (
              match (m, operands) with
              | "lui", [ Word rd; Comma; Int imm ] ->
                i (Inst.Lui (reg rd, Int64.logand imm 0xFFFFFL))
              | "auipc", [ Word rd; Comma; Int imm ] ->
                i (Inst.Auipc (reg rd, Int64.logand imm 0xFFFFFL))
              | _ -> fail lineno "unknown mnemonic %s" m))))))

let parse source =
  let lines = String.split_on_char '\n' source in
  List.concat (List.mapi (fun idx line -> parse_line (idx + 1) (tokenize (idx + 1) line)) lines)
