(** The assembler: [Asm_ir.item] lists → relocatable object files, with
    li expansion, optional RVC compression (including [c.ld.ro]) and
    branch relaxation. *)

exception Error of string

type options = { compress : bool }

val default_options : options

val assemble : ?options:options -> Asm_ir.item list -> Roload_obj.Objfile.t
(** Raises {!Error} on invalid input (undefined local labels, invalid
    instructions, items before the first [.section]). *)

val section_sizes : Roload_obj.Objfile.t -> (string * int) list
