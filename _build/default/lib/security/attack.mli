(** The attack corpus for RQ3 (paper §V-C2 and §V-D), under the paper's
    threat model: repeated arbitrary reads/writes to writable memory, DEP
    on, kernel and hardware trusted. *)

type kind =
  | Vtable_injection  (** vptr → fake vtable forged in writable memory *)
  | Vtable_corruption_reuse  (** vptr → another type's legitimate read-only data *)
  | Fptr_overwrite  (** function-pointer slot → arbitrary code address *)
  | Fptr_type_confusion  (** function-pointer slot → legitimate function of the wrong type *)
  | Pointee_reuse_same_key
      (** §V-D's residual attack: another allowlist entry under the matching key *)

val kind_name : kind -> string
val all_kinds : kind list

type outcome =
  | Hijacked
  | Blocked_roload  (** SIGSEGV with the ROLoad triage — the new fault class *)
  | Blocked_other of string
  | No_effect

val outcome_name : outcome -> string
val is_blocked : outcome -> bool
