lib/security/attack.mli:
