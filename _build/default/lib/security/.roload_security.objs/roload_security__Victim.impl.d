lib/security/victim.ml: Printf
