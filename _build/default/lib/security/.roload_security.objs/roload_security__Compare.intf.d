lib/security/compare.mli:
