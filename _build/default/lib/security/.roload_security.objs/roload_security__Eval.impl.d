lib/security/eval.ml: Attack Int64 List Roload_kernel Roload_machine Roload_obj String Victim
