lib/security/attack.ml:
