lib/security/eval.mli: Attack Roload_kernel Roload_machine Roload_obj
