lib/security/compare.ml:
