lib/security/victim.mli:
