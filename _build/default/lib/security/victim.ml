(* The canonical victim program for the attack evaluation.

   It contains every sensitive-operation shape the paper discusses — a
   virtual call, a typed indirect call — plus the attacker's foothold
   (a writable buffer standing in for memory the adversary controls) and
   the functions an attacker would want to reach:

     gadget      — not address-taken, wrong everything (classic hijack)
     logger      — legitimate but of a *different* function type
     evil_twin   — legitimate and of the *same* type (pointee reuse)
     Logger::log — legitimate virtual method of a different hierarchy

   [attack_point] is an empty marker function: the attack runner pauses
   the victim there (after setup, before the sinks) and applies the
   corruption through the writable-memory primitive. *)

let marker_gadget = "GADGET-REACHED"
let marker_logger = "LOGGER-REACHED"
let marker_twin = "TWIN-REACHED"
let marker_typeconf = "TYPECONF-REACHED"

let exit_gadget = 42
let exit_logger = 43
let exit_twin = 44
let exit_typeconf = 45

let source =
  Printf.sprintf {|
typedef int (*cb_t)(int);
typedef int (*log_t)(int, int);

class Greeter {
  int pad;
  virtual int greet() { return 1; }
};

class Logger {
  int level;
  virtual int log() {
    print_str("%s\n");
    exit(%d);
    return 0;
  }
};

int gadget(int x) {
  print_str("%s\n");
  exit(%d);
  return 0;
}

int benign_cb(int x) { return x + 1; }

int evil_twin(int x) {
  print_str("%s\n");
  exit(%d);
  return 0;
}

int logger(int a, int b) {
  print_str("%s\n");
  exit(%d);
  return 0;
}

// attacker-controlled writable memory (the corruption primitive's target)
int fake_vtable[8];

// the sensitive operands the attacks corrupt
Greeter *g;
cb_t callback;

// keep the legitimate targets address-taken, as they would be in a real
// program (otherwise the hardening passes would not publish them)
cb_t twin_holder;
log_t log_holder;
Logger *decoy;

void attack_point() {
  // the attack runner pauses the victim here
}

int main() {
  g = new Greeter;
  decoy = new Logger;
  callback = benign_cb;
  twin_holder = evil_twin;
  log_holder = logger;
  attack_point();
  int r = g->greet();
  cb_t cb = callback;
  int s = cb(5);
  print_int(r + s);
  print_char('\n');
  return 0;
}
|}
    marker_logger exit_logger
    marker_gadget exit_gadget
    marker_twin exit_twin
    marker_typeconf exit_typeconf

(* Expected benign output: greet() = 1, benign_cb(5) = 6 → "7". *)
let benign_output = "7\n"
