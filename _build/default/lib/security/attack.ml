(* The attack corpus for RQ3 (paper §V-C2 and §V-D).

   Each attack follows the paper's threat model: the program contains a
   memory-corruption primitive giving the adversary repeated arbitrary
   reads/writes to *writable* memory (DEP on, code immutable, kernel and
   hardware trusted).  The attack runner pauses the victim at a chosen
   pc, applies the corruption through that primitive, resumes, and
   classifies the outcome. *)

type kind =
  | Vtable_injection
      (* point an object's vptr at a fake vtable forged in writable
         memory (classic VTable hijacking) *)
  | Vtable_corruption_reuse
      (* point the vptr at *other* legitimate read-only data that is not
         a vtable of the expected type (e.g. a string constant or a
         different hierarchy's vtable) *)
  | Fptr_overwrite
      (* overwrite a function-pointer slot in writable memory with an
         arbitrary code address (e.g. the attacker's gadget function) *)
  | Fptr_type_confusion
      (* overwrite a function pointer with the (legitimate) entry of a
         function of the *wrong type* *)
  | Pointee_reuse_same_key
      (* the paper's residual attack (§V-D): redirect a pointer to a
         *different* entry in read-only memory carrying the matching key
         — stays inside the allowlist, so ROLoad admits it *)

let kind_name = function
  | Vtable_injection -> "vtable injection"
  | Vtable_corruption_reuse -> "vptr reuse (wrong type / non-vtable)"
  | Fptr_overwrite -> "function-pointer overwrite"
  | Fptr_type_confusion -> "fptr type confusion"
  | Pointee_reuse_same_key -> "pointee reuse (same key)"

let all_kinds =
  [ Vtable_injection; Vtable_corruption_reuse; Fptr_overwrite; Fptr_type_confusion;
    Pointee_reuse_same_key ]

type outcome =
  | Hijacked (* control reached the attacker's gadget *)
  | Blocked_roload (* SIGSEGV with ROLoad triage — the new fault class *)
  | Blocked_other of string (* any other crash/abort before the gadget ran *)
  | No_effect (* program finished normally; corruption had no effect *)

let outcome_name = function
  | Hijacked -> "HIJACKED"
  | Blocked_roload -> "blocked (ROLoad fault)"
  | Blocked_other s -> "blocked (" ^ s ^ ")"
  | No_effect -> "no effect"

let is_blocked = function
  | Blocked_roload | Blocked_other _ -> true
  | Hijacked | No_effect -> false
