(* The related-work comparison of paper §VI, as structured data: what
   each mechanism defends, where it acts, and its deployment cost class.
   Rendered by the experiments driver next to the *measured* attack
   matrix, so the qualitative claims sit beside quantitative evidence. *)

type act_point = At_source | Isolation | At_sink | At_transfer

type mechanism = {
  name : string;
  acts : act_point;
  granularity : string;
  extra_arch_state : bool; (* needs new architectural state kept across context switches *)
  hardware_cost : string;
  runtime_overhead : string;
  notes : string;
}

let mechanisms =
  [
    {
      name = "ROLoad (this work)";
      acts = At_sink;
      granularity = "per-page 10-bit keys, type-grained";
      extra_arch_state = false;
      hardware_cost = "< 3.32% LUT/FF (Table III)";
      runtime_overhead = "~0% system; <= 0.31% hardened apps";
      notes = "pointee integrity: sensitive operands only load from keyed read-only pages";
    };
    {
      name = "Intel CET";
      acts = At_transfer;
      granularity = "coarse (any ENDBR target)";
      extra_arch_state = true;
      hardware_cost = "shadow stack + tracker state";
      runtime_overhead = "low";
      notes = "forward edges only constrained to a single large allowlist";
    };
    {
      name = "ARM BTI";
      acts = At_transfer;
      granularity = "coarse (any BTI-marked target)";
      extra_arch_state = true;
      hardware_cost = "modest";
      runtime_overhead = "low";
      notes = "same coarse-grained policy class as CET";
    };
    {
      name = "ARM PA (PARTS)";
      acts = At_sink;
      granularity = "pointer-grained (MAC)";
      extra_arch_state = false;
      hardware_cost = "crypto blocks";
      runtime_overhead = "moderate";
      notes = "relies on the kernel to guard keys; unsuitable without user/kernel split";
    };
    {
      name = "Intel MPX";
      acts = At_source;
      granularity = "object bounds";
      extra_arch_state = true;
      hardware_cost = "bounds registers + tables";
      runtime_overhead = "high (practice)";
      notes = "prevents corruption at loads/stores; abandoned in practice";
    };
    {
      name = "ARM MTE";
      acts = At_source;
      granularity = "16-byte/4-bit tags";
      extra_arch_state = false;
      hardware_cost = "tag storage/checks";
      runtime_overhead = "moderate";
      notes = "probabilistic memory safety via tag matching";
    };
    {
      name = "HDFI";
      acts = Isolation;
      granularity = "word-grained 1-bit tags";
      extra_arch_state = false;
      hardware_cost = "considerable (per-word tags)";
      runtime_overhead = "low-moderate";
      notes = "strong data-flow isolation, complex to implement";
    };
    {
      name = "IMIX";
      acts = Isolation;
      granularity = "page-grained 1-bit";
      extra_arch_state = false;
      hardware_cost = "small";
      runtime_overhead = "low";
      notes = "coarse one-domain isolation; manual boundary placement";
    };
    {
      name = "VTint (software)";
      acts = At_sink;
      granularity = "all-read-only vtables";
      extra_arch_state = false;
      hardware_cost = "none";
      runtime_overhead = "~2.75% (measured here)";
      notes = "range checks before vtable loads; no type separation";
    };
    {
      name = "label CFI (software)";
      acts = At_transfer;
      granularity = "type-grained labels";
      extra_arch_state = false;
      hardware_cost = "none";
      runtime_overhead = "~9% (measured here)";
      notes = "inline ID checks; extra text-segment data load per transfer";
    };
  ]

let act_point_name = function
  | At_source -> "at sources"
  | Isolation -> "isolation"
  | At_sink -> "at sinks"
  | At_transfer -> "at transfers"
