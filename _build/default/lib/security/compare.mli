(** The related-work comparison of paper §VI as structured data, rendered
    next to the measured attack matrix. *)

type act_point = At_source | Isolation | At_sink | At_transfer

type mechanism = {
  name : string;
  acts : act_point;
  granularity : string;
  extra_arch_state : bool;
  hardware_cost : string;
  runtime_overhead : string;
  notes : string;
}

val mechanisms : mechanism list
val act_point_name : act_point -> string
