(** The canonical victim program: one virtual call, one typed indirect
    call, a writable attacker foothold, and the reachable targets each
    attack kind aims at.  The attack runner pauses it at [attack_point]. *)

val marker_gadget : string
val marker_logger : string
val marker_twin : string
val marker_typeconf : string
val exit_gadget : int
val exit_logger : int
val exit_twin : int
val exit_typeconf : int

val source : string
(** MiniC source; compile under any scheme. *)

val benign_output : string
