(** Minimal ASCII table rendering for experiment reports. *)

type align = Left | Right

type t

val create : title:string -> header:string list -> ?aligns:align list -> unit -> t
(** [aligns] defaults to all-[Left] and must match the header width when
    given. *)

val add_row : t -> string list -> unit
(** Rows must have the same arity as the header. *)

val rows : t -> string list list
(** Rows in insertion order. *)

val render : t -> string
val print : t -> unit
