(* Minimal ASCII table rendering for experiment reports.  Kept dependency
   free so the bench binary prints the paper's tables/figures as text. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then invalid_arg "Table.create";
      a
    | None -> List.map (fun _ -> Left) header
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then invalid_arg "Table.add_row";
  t.rows <- row :: t.rows

let rows t = List.rev t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let all = t.header :: rows t in
  let ncols = List.length t.header in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let line row =
    let cells =
      List.mapi
        (fun i cell ->
          let align = List.nth t.aligns i in
          " " ^ pad align widths.(i) cell ^ " ")
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let body = List.map line (rows t) in
  String.concat "\n"
    (("== " ^ t.title ^ " ==") :: sep :: line t.header :: sep :: (body @ [ sep ]))

let print t = print_endline (render t)
