(* 64-bit bit manipulation helpers shared by the ISA, MMU and hardware
   models.  Values are OCaml [int64]; bit indices are 0-based from the LSB. *)

let mask_bits n =
  if n <= 0 then 0L
  else if n >= 64 then -1L
  else Int64.sub (Int64.shift_left 1L n) 1L

let extract value ~lo ~width =
  Int64.logand (Int64.shift_right_logical value lo) (mask_bits width)

let extract_int value ~lo ~width = Int64.to_int (extract value ~lo ~width)

let insert value ~lo ~width ~field =
  let m = Int64.shift_left (mask_bits width) lo in
  let cleared = Int64.logand value (Int64.lognot m) in
  let placed = Int64.logand (Int64.shift_left field lo) m in
  Int64.logor cleared placed

let bit value i = Int64.logand (Int64.shift_right_logical value i) 1L <> 0L

let set_bit value i b =
  let m = Int64.shift_left 1L i in
  if b then Int64.logor value m else Int64.logand value (Int64.lognot m)

(* Sign-extend the low [width] bits of [value] to a full 64-bit value. *)
let sign_extend value ~width =
  if width >= 64 then value
  else
    let shift = 64 - width in
    Int64.shift_right (Int64.shift_left value shift) shift

let zero_extend value ~width = Int64.logand value (mask_bits width)

let fits_signed value ~width =
  sign_extend value ~width = value

let fits_unsigned value ~width =
  zero_extend value ~width = value

(* Interpret an int64 as an unsigned quantity for comparison. *)
let ucompare a b =
  let flip x = Int64.add x Int64.min_int in
  Int64.compare (flip a) (flip b)

let ult a b = ucompare a b < 0
let uge a b = ucompare a b >= 0

(* Unsigned division/remainder on int64, with RISC-V semantics for the
   degenerate cases handled by callers. *)
let udiv = Int64.unsigned_div
let urem = Int64.unsigned_rem

let popcount64 v =
  let rec go acc v = if v = 0L then acc else go (acc + 1) (Int64.logand v (Int64.sub v 1L)) in
  go 0 v

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  if not (is_power_of_two n) then invalid_arg "Bits.log2_exact";
  let rec go i n = if n = 1 then i else go (i + 1) (n lsr 1) in
  go 0 n

let align_up x alignment =
  if not (is_power_of_two alignment) then invalid_arg "Bits.align_up";
  (x + alignment - 1) land lnot (alignment - 1)

let align_down x alignment =
  if not (is_power_of_two alignment) then invalid_arg "Bits.align_down";
  x land lnot (alignment - 1)

let is_aligned x alignment = align_down x alignment = x

let to_hex v = Printf.sprintf "0x%Lx" v
let to_hex_int v = Printf.sprintf "0x%x" v
