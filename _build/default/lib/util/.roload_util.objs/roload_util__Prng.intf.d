lib/util/prng.mli:
