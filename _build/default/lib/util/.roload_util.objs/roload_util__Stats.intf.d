lib/util/stats.mli:
