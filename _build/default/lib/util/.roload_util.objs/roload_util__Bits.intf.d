lib/util/bits.mli:
