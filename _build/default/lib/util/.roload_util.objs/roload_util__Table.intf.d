lib/util/table.mli:
