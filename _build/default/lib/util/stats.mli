(** Numeric summaries for the measurement harness. *)

val mean : float list -> float
val geomean : float list -> float
(** Geometric mean; elements must be positive. *)

val stddev : float list -> float
(** Sample standard deviation (Bessel-corrected); 0 for fewer than 2
    elements. *)

val minimum : float list -> float
val maximum : float list -> float

val overhead_pct : base:float -> measured:float -> float
(** Relative overhead of [measured] w.r.t. [base], in percent. *)

val overhead_pct_i : base:int -> measured:int -> float
val pct_string : float -> string
