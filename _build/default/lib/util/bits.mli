(** 64-bit bit-manipulation helpers shared by the ISA, MMU and hardware
    models.  Values are [int64]; bit indices count from the LSB (bit 0). *)

val mask_bits : int -> int64
(** [mask_bits n] is a value with the low [n] bits set ([n] clamped to
    [0..64]). *)

val extract : int64 -> lo:int -> width:int -> int64
(** [extract v ~lo ~width] reads the bit field [v[lo+width-1 : lo]],
    zero-extended. *)

val extract_int : int64 -> lo:int -> width:int -> int
(** Like {!extract} but returns a native [int]; the field must fit. *)

val insert : int64 -> lo:int -> width:int -> field:int64 -> int64
(** [insert v ~lo ~width ~field] overwrites the bit field with [field]
    (truncated to [width] bits). *)

val bit : int64 -> int -> bool
(** [bit v i] is bit [i] of [v]. *)

val set_bit : int64 -> int -> bool -> int64

val sign_extend : int64 -> width:int -> int64
(** Sign-extend the low [width] bits to 64 bits. *)

val zero_extend : int64 -> width:int -> int64

val fits_signed : int64 -> width:int -> bool
(** Whether the value is representable as a [width]-bit two's-complement
    immediate. *)

val fits_unsigned : int64 -> width:int -> bool

val ucompare : int64 -> int64 -> int
(** Compare two [int64]s as unsigned quantities. *)

val ult : int64 -> int64 -> bool
val uge : int64 -> int64 -> bool
val udiv : int64 -> int64 -> int64
val urem : int64 -> int64 -> int64

val popcount64 : int64 -> int

val is_power_of_two : int -> bool
val log2_exact : int -> int
(** Base-2 logarithm of an exact power of two; raises [Invalid_argument]
    otherwise. *)

val align_up : int -> int -> int
val align_down : int -> int -> int
val is_aligned : int -> int -> bool

val to_hex : int64 -> string
val to_hex_int : int -> string
