(* Small numeric summaries used by the measurement harness. *)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Geometric mean; items must be positive.  Used for SPEC-style overhead
   aggregation (the paper reports arithmetic averages of relative overheads;
   we expose both). *)
let geomean = function
  | [] -> 0.0
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var

let minimum = function
  | [] -> invalid_arg "Stats.minimum"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum"
  | x :: xs -> List.fold_left max x xs

(* Relative overhead of [measured] against [base], as a percentage. *)
let overhead_pct ~base ~measured =
  if base = 0.0 then 0.0 else (measured -. base) /. base *. 100.0

let overhead_pct_i ~base ~measured =
  overhead_pct ~base:(float_of_int base) ~measured:(float_of_int measured)

let pct_string p = Printf.sprintf "%+.3f%%" p
