(** Set-associative write-back cache timing model (tags only), true-LRU
    replacement within each set. *)

type config = { size_bytes : int; ways : int; line_bytes : int }

val kib : int -> int

type stats = { mutable hits : int; mutable misses : int; mutable writebacks : int }

type t

val create : name:string -> config -> t
(** Raises [Invalid_argument] on non-power-of-two geometry. *)

val name : t -> string
val config : t -> config
val stats : t -> stats

type outcome = Hit | Miss of { writeback : bool }

val access : t -> addr:int -> write:bool -> outcome
val flush : t -> unit
val reset_stats : t -> unit
val miss_rate : t -> float
