lib/cache/cache.ml: Array Roload_util
