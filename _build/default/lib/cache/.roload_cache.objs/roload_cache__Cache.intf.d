lib/cache/cache.mli:
