(** The MiniC runtime, written in assembly (the musl analogue of the
    evaluation setup): [_start], [exit], [print_char], [print_str],
    [print_int], and a brk-backed bump [alloc]. *)

val source : string
