lib/core/runtime.ml:
