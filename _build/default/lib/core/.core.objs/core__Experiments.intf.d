lib/core/experiments.mli: Roload_hw Roload_obj Roload_passes Roload_security Roload_util Roload_workloads System Toolchain
