lib/core/system.mli: Roload_isa Roload_kernel Roload_machine Roload_obj
