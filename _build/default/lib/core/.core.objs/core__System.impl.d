lib/core/system.ml: List Printf Roload_cache Roload_kernel Roload_machine Roload_mem Roload_obj
