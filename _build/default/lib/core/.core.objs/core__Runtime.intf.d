lib/core/runtime.mli:
