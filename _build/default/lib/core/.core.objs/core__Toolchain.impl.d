lib/core/toolchain.ml: Printf Roload_asm Roload_codegen Roload_front Roload_ir Roload_link Roload_obj Roload_passes Runtime
