lib/core/toolchain.mli: Roload_asm Roload_ir Roload_obj Roload_passes
