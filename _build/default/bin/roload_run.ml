(* roload_run — load an .rxe image and run it on the simulated system.

   Usage: roload_run prog.rxe [--system baseline|processor|full] *)

open Cmdliner

let run path system_name verbose trace_count =
  let variant =
    match system_name with
    | "baseline" -> Core.System.Baseline
    | "processor" -> Core.System.Processor_modified
    | "full" | "processor+kernel" -> Core.System.Processor_kernel_modified
    | other ->
      Printf.eprintf "unknown system %s (expected baseline|processor|full)\n" other;
      exit 2
  in
  let exe = Roload_obj.Exe.load path in
  let trace =
    if trace_count <= 0 then None
    else begin
      let remaining = ref trace_count in
      Some
        (fun ~pc inst ->
          if !remaining > 0 then begin
            decr remaining;
            Printf.eprintf "%8x:  %s\n" pc (Roload_isa.Inst.to_string inst)
          end)
    end
  in
  let m = Core.System.run ?trace ~variant exe in
  print_string m.Core.System.output;
  if verbose then begin
    Printf.eprintf "status:       %s\n" (Core.System.status_string m);
    Printf.eprintf "instructions: %Ld\n" m.Core.System.instructions;
    Printf.eprintf "cycles:       %Ld\n" m.Core.System.cycles;
    Printf.eprintf "peak memory:  %d KiB (footprint %d bytes)\n" m.Core.System.peak_kib
      m.Core.System.footprint_bytes;
    Printf.eprintf "ld.ro executed: %d\n" m.Core.System.roloads_executed
  end;
  match m.Core.System.status with
  | Roload_kernel.Process.Exited n -> exit n
  | Roload_kernel.Process.Killed sg ->
    Printf.eprintf "%s\n" (Roload_kernel.Signal.to_string sg);
    exit 128
  | Roload_kernel.Process.Running ->
    Printf.eprintf "instruction limit exhausted\n";
    exit 124

let path_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"PROG.rxe")

let system_arg =
  Arg.(value & opt string "full"
       & info [ "system" ] ~doc:"System variant: baseline, processor, or full.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print run statistics.")

let trace_arg =
  Arg.(value & opt int 0
       & info [ "trace" ] ~docv:"N" ~doc:"Disassemble the first N retired instructions to stderr.")

let cmd =
  Cmd.v
    (Cmd.info "roload_run" ~doc:"Run an RXE image on the simulated ROLoad system")
    Term.(const run $ path_arg $ system_arg $ verbose_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
