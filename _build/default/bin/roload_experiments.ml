(* roload_experiments — regenerate any table or figure of the paper.

   Usage: roload_experiments [table1|table2|table3|section5b|figure3|
                              figure4|figure5|security|ablations|all]
                             [--scale N] *)

open Cmdliner

let print_table t = Roload_util.Table.print t

let run_one ~scale name =
  match name with
  | "table1" -> print_table (Core.Experiments.table1 ())
  | "table2" -> print_table (Core.Experiments.table2 ())
  | "table3" -> print_table (Core.Experiments.table3 ()).Core.Experiments.table
  | "section5b" ->
    print_table (Core.Experiments.section5b ~scale ()).Core.Experiments.table
  | "figure3" ->
    let f = Core.Experiments.figure3 ~scale () in
    print_table f.Core.Experiments.runtime_table;
    print_table f.Core.Experiments.memory_table
  | "figure4" | "figure5" | "figure45" ->
    let f = Core.Experiments.figure45 ~scale () in
    print_table f.Core.Experiments.runtime_table;
    print_table f.Core.Experiments.memory_table
  | "security" ->
    print_table (Core.Experiments.security ()).Core.Experiments.table;
    print_table (Core.Experiments.related_work_table ())
  | "ablations" ->
    print_table (Core.Experiments.ablation_compressed ());
    print_table (Core.Experiments.ablation_keys ());
    print_table (Core.Experiments.ablation_separate_code ());
    print_table (Core.Experiments.ablation_retcall ());
    print_table (Core.Experiments.ablation_tlb ())
  | other ->
    Printf.eprintf "unknown experiment %s\n" other;
    exit 2

let run names scale =
  let names =
    match names with
    | [] | [ "all" ] ->
      [ "table1"; "table2"; "table3"; "section5b"; "figure3"; "figure45"; "security";
        "ablations" ]
    | names -> names
  in
  List.iter
    (fun n ->
      (try run_one ~scale n with
      | Core.Experiments.Experiment_failure m ->
        Printf.eprintf "EXPERIMENT FAILURE in %s: %s\n" n m;
        exit 1);
      print_newline ())
    names

let names_arg = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT")

let scale_arg =
  Arg.(value
       & opt int Roload_workloads.Spec_suite.reference_scale
       & info [ "scale" ] ~doc:"Workload scale factor (1 = quick, 3 = reference).")

let cmd =
  Cmd.v
    (Cmd.info "roload_experiments"
       ~doc:"Regenerate the tables and figures of the ROLoad paper (DAC 2021)")
    Term.(const run $ names_arg $ scale_arg)

let () = exit (Cmd.eval cmd)
