(* End-to-end tests: assemble → link → load → run on the simulated
   system, including the ROLoad happy path and both fault paths. *)

module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Signal = Roload_kernel.Signal
module Linker = Roload_link.Linker

let build_exe ?(separate_code = true) src =
  let items = Roload_asm.Asm_parser.parse src in
  let obj = Roload_asm.Assemble.assemble items in
  let options = { Linker.default_options with separate_code } in
  Linker.link ~options [ obj ]

let run_exe ?(machine_config = Config.default) ?(kernel_config = Kernel.default_config) exe =
  let machine = Machine.create machine_config in
  let kernel = Kernel.create ~machine ~config:kernel_config in
  let _process, outcome = Kernel.exec kernel exe in
  outcome

(* exit(42) *)
let exit42 = {|
.section .text
_start:
    li a0, 42
    li a7, 93
    ecall
|}

let test_exit () =
  let outcome = run_exe (build_exe exit42) in
  match outcome.Kernel.status with
  | Process.Exited 42 -> ()
  | s ->
    Alcotest.failf "expected Exited 42, got %s"
      (match s with
      | Process.Exited n -> Printf.sprintf "Exited %d" n
      | Process.Killed sg -> Signal.to_string sg
      | Process.Running -> "Running")

(* write(1, "hi\n", 3); exit(0) *)
let hello = {|
.section .text
_start:
    li a0, 1
    la a1, msg
    li a2, 3
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
.section .rodata
msg:
    .asciz "hi\n"
|}

let test_hello () =
  let outcome = run_exe (build_exe hello) in
  Alcotest.(check string) "output" "hi\n" outcome.Kernel.output;
  (match outcome.Kernel.status with
  | Process.Exited 0 -> ()
  | _ -> Alcotest.fail "expected clean exit")

(* The Listing-3 pattern: a keyed GFPT and an ld.ro-guarded indirect call. *)
let listing3 = {|
.section .text
_start:
    la a0, gfpt_foo
    ld.ro a0, (a0), 111
    jalr a0
    li a7, 93
    ecall
foo:
    li a0, 7
    ret
.section .rodata.key.111
gfpt_foo:
    .quad foo
|}

let test_roload_happy_path () =
  let outcome = run_exe (build_exe listing3) in
  match outcome.Kernel.status with
  | Process.Exited 7 -> ()
  | Process.Killed sg -> Alcotest.failf "killed: %s" (Signal.to_string sg)
  | Process.Exited n -> Alcotest.failf "exited %d" n
  | Process.Running -> Alcotest.fail "still running"

(* ld.ro with a mismatched key must raise the ROLoad fault → SIGSEGV with
   triage detail. *)
let wrong_key = {|
.section .text
_start:
    la a0, gfpt_foo
    ld.ro a0, (a0), 222
    jalr a0
    li a7, 93
    ecall
foo:
    li a0, 7
    ret
.section .rodata.key.111
gfpt_foo:
    .quad foo
|}

let test_roload_wrong_key () =
  let outcome = run_exe (build_exe wrong_key) in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { key_requested; page_key; _ })) ->
    Alcotest.(check int) "requested key" 222 key_requested;
    Alcotest.(check int) "page key" 111 page_key
  | _ -> Alcotest.fail "expected a ROLoad violation"

(* ld.ro from a writable page must fault even with a matching key of 0. *)
let writable_pointee = {|
.section .text
_start:
    la a0, slot
    ld.ro a0, (a0), 0
    jalr a0
    li a7, 93
    ecall
foo:
    li a0, 7
    ret
.section .data
slot:
    .quad foo
|}

let test_roload_writable_pointee () =
  let outcome = run_exe (build_exe writable_pointee) in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { page_perms; _ })) ->
    Alcotest.(check bool) "page is writable" true page_perms.Roload_mem.Perm.w
  | _ -> Alcotest.fail "expected a ROLoad violation"

(* On the baseline processor, ld.ro is an illegal instruction. *)
let test_baseline_rejects_ldro () =
  let outcome = run_exe ~machine_config:Config.baseline (build_exe listing3) in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigill _) -> ()
  | _ -> Alcotest.fail "expected SIGILL on the baseline processor"

(* Without separate-code layout, the keyed rodata lands in the r-x
   segment and ld.ro faults (paper §V-B's -z separate-code requirement). *)
let test_no_separate_code_faults () =
  let outcome = run_exe (build_exe ~separate_code:false listing3) in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { page_perms; _ })) ->
    Alcotest.(check bool) "page is executable" true page_perms.Roload_mem.Perm.x
  | _ -> Alcotest.fail "expected a ROLoad violation without separate-code"

(* The stock kernel reports a plain SIGSEGV for the same fault (no
   triage), and refuses key arguments on mmap. *)
let test_stock_kernel_no_triage () =
  let outcome =
    run_exe ~kernel_config:Kernel.stock_kernel_config (build_exe wrong_key)
  in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Access_violation _)) -> ()
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation _)) ->
    Alcotest.fail "stock kernel must not triage ROLoad faults"
  | _ -> Alcotest.fail "expected SIGSEGV"

(* A loop summing 1..100, to exercise branches and the cycle model. *)
let loop_sum = {|
.section .text
_start:
    li a0, 0
    li a1, 1
    li a2, 101
1loop:
    add a0, a0, a1
    addi a1, a1, 1
    bne a1, a2, 1loop
    li a7, 93
    ecall
|}

let test_loop_sum () =
  let outcome = run_exe (build_exe loop_sum) in
  (match outcome.Kernel.status with
  | Process.Exited n -> Alcotest.(check int) "sum" (5050 land 0xFF) (n land 0xFF)
  | _ -> Alcotest.fail "expected exit");
  Alcotest.(check bool) "cycles counted" true (Int64.compare outcome.Kernel.cycles 0L > 0)

(* Backward-edge pointee integrity (paper §IV-C): the caller passes the
   address of a keyed return-site cell in ra; the epilogue dereferences
   it with ld.ro.  A smashed saved-ra pointing at raw code must fault;
   pointing at another legitimate cell is the documented residual. *)
let retcall_asm ~smash_with = Printf.sprintf {|
.section .text
_start:
    la ra, cell0
    j victim
site0:
    li a0, 0
    li a7, 93
    ecall
victim:
    addi sp, sp, -16
    sd ra, 8(sp)
    # the attacker overwrites the saved return slot
    la t0, %s
    sd t0, 8(sp)
    ld ra, 8(sp)
    addi sp, sp, 16
    ld.ro ra, (ra), 1023
    jr ra
.align 8
gadget:
    li a0, 42
    li a7, 93
    ecall
.section .rodata.key.1023
cell0:
    .quad site0
cell1:
    .quad gadget2_site
.section .text
gadget2_site:
    li a0, 7
    li a7, 93
    ecall
|} smash_with

let test_retcall_smash_blocked () =
  let outcome = run_exe (build_exe (retcall_asm ~smash_with:"gadget")) in
  match outcome.Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { key_requested = 1023; _ })) -> ()
  | _ -> Alcotest.failf "expected ROLoad fault, got %s"
           (match outcome.Kernel.status with
           | Process.Killed sg -> Signal.to_string sg
           | Process.Exited n -> Printf.sprintf "exit %d" n
           | Process.Running -> "running")

let test_retcall_benign_path () =
  let outcome = run_exe (build_exe (retcall_asm ~smash_with:"cell0")) in
  match outcome.Kernel.status with
  | Process.Exited 0 -> ()
  | _ -> Alcotest.fail "legitimate cell must return normally"

let test_retcall_cell_reuse_residual () =
  (* pointing the saved slot at another legitimate cell survives — the
     same-key reuse surface of paper §V-D, now on the backward edge *)
  let outcome = run_exe (build_exe (retcall_asm ~smash_with:"cell1")) in
  match outcome.Kernel.status with
  | Process.Exited 7 -> ()
  | _ -> Alcotest.fail "expected the reuse path to reach gadget2_site"

let suite =
  [
    Alcotest.test_case "exit status" `Quick test_exit;
    Alcotest.test_case "retcall: smashed ra faults" `Quick test_retcall_smash_blocked;
    Alcotest.test_case "retcall: benign path" `Quick test_retcall_benign_path;
    Alcotest.test_case "retcall: cell reuse residual" `Quick test_retcall_cell_reuse_residual;
    Alcotest.test_case "write output" `Quick test_hello;
    Alcotest.test_case "roload happy path (Listing 3)" `Quick test_roload_happy_path;
    Alcotest.test_case "roload wrong key faults" `Quick test_roload_wrong_key;
    Alcotest.test_case "roload writable pointee faults" `Quick test_roload_writable_pointee;
    Alcotest.test_case "baseline processor rejects ld.ro" `Quick test_baseline_rejects_ldro;
    Alcotest.test_case "no separate-code layout faults" `Quick test_no_separate_code_faults;
    Alcotest.test_case "stock kernel lacks triage" `Quick test_stock_kernel_no_triage;
    Alcotest.test_case "loop sum + cycle model" `Quick test_loop_sum;
  ]
