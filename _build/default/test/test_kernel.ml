(* Kernel tests: loader key application, brk, the key-aware mmap /
   mprotect syscalls, fault triage, and the attacker-primitive bounds. *)

module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Signal = Roload_kernel.Signal
module Syscall = Roload_kernel.Syscall
module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Linker = Roload_link.Linker
module Exe = Roload_obj.Exe

let build src = Linker.link [ Roload_asm.Assemble.assemble (Roload_asm.Asm_parser.parse src) ]

let fresh_kernel ?(config = Kernel.default_config) () =
  let machine = Machine.create Config.default in
  (machine, Kernel.create ~machine ~config)

let run ?kernel_config src =
  let _m, kernel = fresh_kernel ?config:kernel_config () in
  let _p, outcome = Kernel.exec kernel (build src) in
  outcome

let status_is_exit n (o : Kernel.run_outcome) =
  match o.Kernel.status with
  | Process.Exited m -> m = n
  | Process.Killed _ | Process.Running -> false

(* brk: growing the heap maps fresh zeroed rw pages *)
let brk_prog = {|
.text
_start:
  # t0 = current brk
  li a0, 0
  li a7, 214
  ecall
  mv t0, a0
  # grow by 8192
  li t4, 8192
  add a0, a0, t4
  li a7, 214
  ecall
  # store/load across the new pages (the second one via a computed base,
  # since 4096 exceeds the S-type immediate range)
  li t1, 77
  sd t1, 0(t0)
  li t3, 4096
  add t3, t0, t3
  sd t1, 0(t3)
  ld t2, 0(t3)
  mv a0, t2
  li a7, 93
  ecall
|}

let test_brk () =
  Alcotest.(check bool) "brk grows and maps" true (status_is_exit 77 (run brk_prog))

(* mmap with a key, then ld.ro with the matching key *)
let mmap_key_prog = {|
.text
_start:
  # mmap(0, 4096, PROT_READ|PROT_WRITE, 0, key=77)
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 77
  li a7, 222
  ecall
  mv t0, a0
  # write the allowlist value while the page is writable
  li t1, 55
  sd t1, 0(t0)
  # mprotect(addr, 4096, PROT_READ, key=77): seal it read-only
  mv a0, t0
  li a1, 4096
  li a2, 1
  li a3, 77
  li a7, 226
  ecall
  # now ld.ro with the right key succeeds
  ld.ro t2, (t0), 77
  mv a0, t2
  li a7, 93
  ecall
|}

let test_mmap_mprotect_key () =
  Alcotest.(check bool) "runtime-keyed allowlist works" true
    (status_is_exit 55 (run mmap_key_prog))

(* the same program but loading with the wrong key must die with triage *)
let test_wrong_key_after_mprotect () =
  let src =
    Str.global_replace (Str.regexp_string "ld.ro t2, (t0), 77") "ld.ro t2, (t0), 78"
      mmap_key_prog
  in
  match (run src).Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { key_requested = 78; page_key = 77; _ })) -> ()
  | _ -> Alcotest.fail "expected triaged ROLoad SIGSEGV"

(* ld.ro before sealing (page still writable) must fault *)
let test_ldro_unsealed_page () =
  let src = {|
.text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 9
  li a7, 222
  ecall
  ld.ro t2, (a0), 9
  li a7, 93
  ecall
|} in
  match (run src).Kernel.status with
  | Process.Killed (Signal.Sigsegv (Signal.Roload_violation { page_perms; _ })) ->
    Alcotest.(check bool) "still writable" true page_perms.Roload_mem.Perm.w
  | _ -> Alcotest.fail "expected ROLoad fault on unsealed page"

(* stock kernel refuses key arguments (ENOSYS) *)
let test_stock_kernel_enosys () =
  let src = {|
.text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 7
  li a7, 222
  ecall
  # a0 is -ENOSYS (-38); return 1 if so
  li t0, -38
  li a1, 0
  bne a0, t0, fail
  li a1, 1
fail:
  mv a0, a1
  li a7, 93
  ecall
|} in
  Alcotest.(check bool) "stock kernel rejects keys" true
    (status_is_exit 1 (run ~kernel_config:Kernel.stock_kernel_config src))

let test_unknown_syscall () =
  let src = {|
.text
_start:
  li a7, 9999
  ecall
  li t0, -38
  li a1, 0
  bne a0, t0, fail
  li a1, 1
fail:
  mv a0, a1
  li a7, 93
  ecall
|} in
  Alcotest.(check bool) "unknown syscall is ENOSYS" true (status_is_exit 1 (run src))

let test_instruction_limit () =
  let src = ".text\n_start:\nspin:\n  j spin\n" in
  let _m, kernel = fresh_kernel () in
  let process = Kernel.load kernel (build src) in
  Kernel.schedule kernel process;
  let outcome = Kernel.run ~limit:{ Kernel.max_instructions = 1000L } kernel process in
  match outcome.Kernel.status with
  | Process.Running -> ()
  | _ -> Alcotest.fail "expected the limit to stop the loop"

let test_loader_applies_keys () =
  let src = {|
.text
_start:
  li a7, 93
  ecall
.section .rodata.key.33
allow:
  .quad 1
|} in
  let _m, kernel = fresh_kernel () in
  let exe = build src in
  let process = Kernel.load kernel exe in
  let addr = Exe.find_symbol_exn exe "allow" in
  (match Roload_mem.Page_table.walk (Process.page_table process) addr with
  | Ok { pte; _ } -> Alcotest.(check int) "pte key" 33 (Roload_mem.Pte.key pte)
  | Error _ -> Alcotest.fail "allowlist page unmapped");
  (* the stock kernel loads the same image with key 0 *)
  let _m2, stock = fresh_kernel ~config:Kernel.stock_kernel_config () in
  let p2 = Kernel.load stock exe in
  match Roload_mem.Page_table.walk (Process.page_table p2) addr with
  | Ok { pte; _ } -> Alcotest.(check int) "stock key" 0 (Roload_mem.Pte.key pte)
  | Error _ -> Alcotest.fail "unmapped under stock kernel"

let test_attacker_primitive_bounds () =
  let src = {|
.text
_start:
  li a7, 93
  ecall
.section .rodata
ro_data:
  .quad 7
.data
rw_data:
  .quad 8
|} in
  let _m, kernel = fresh_kernel () in
  let exe = build src in
  let process = Kernel.load kernel exe in
  let rw = Exe.find_symbol_exn exe "rw_data" in
  let ro = Exe.find_symbol_exn exe "ro_data" in
  Process.attacker_write_u64 process ~va:rw 99L;
  Alcotest.(check int64) "rw write lands" 99L (Process.read_u64 process ~va:rw);
  (match Process.attacker_write_u64 process ~va:ro 99L with
  | exception Process.Attack_blocked _ -> ()
  | () -> Alcotest.fail "write to read-only memory must be blocked");
  match Process.attacker_write_u64 process ~va:0x7F000000 1L with
  | exception Process.Attack_blocked _ -> ()
  | () -> Alcotest.fail "write to unmapped memory must be blocked"

let test_memory_accounting () =
  let o = run brk_prog in
  Alcotest.(check bool) "peak includes stack" true
    (o.Kernel.peak_kib >= Process.stack_pages * 4)

let suite =
  [
    Alcotest.test_case "brk grows the heap" `Quick test_brk;
    Alcotest.test_case "mmap+mprotect with keys" `Quick test_mmap_mprotect_key;
    Alcotest.test_case "wrong key after mprotect" `Quick test_wrong_key_after_mprotect;
    Alcotest.test_case "ld.ro on unsealed page" `Quick test_ldro_unsealed_page;
    Alcotest.test_case "stock kernel ENOSYS on keys" `Quick test_stock_kernel_enosys;
    Alcotest.test_case "unknown syscall" `Quick test_unknown_syscall;
    Alcotest.test_case "instruction limit" `Quick test_instruction_limit;
    Alcotest.test_case "loader applies section keys" `Quick test_loader_applies_keys;
    Alcotest.test_case "attacker primitive bounds" `Quick test_attacker_primitive_bounds;
    Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
  ]
