(* Workload-suite tests: every benchmark compiles under every scheme; a
   sample runs to completion with scheme-independent output; suite
   composition matches the paper (11 benchmarks, 3 C++). *)

module Suite = Roload_workloads.Spec_suite
module Pass = Roload_passes.Pass

let test_composition () =
  Alcotest.(check int) "11 benchmarks (perlbench excluded)" 11 (List.length Suite.all);
  Alcotest.(check int) "3 C++ benchmarks" 3 (List.length Suite.cxx_benchmarks);
  Alcotest.(check (list string)) "C++ set"
    [ "omnetpp"; "astar"; "xalancbmk" ]
    (List.map (fun b -> b.Suite.name) Suite.cxx_benchmarks);
  Alcotest.(check bool) "names unique" true
    (List.sort_uniq compare Suite.names = List.sort compare Suite.names)

(* compilation under every scheme (no execution — fast) *)
let test_all_compile_all_schemes () =
  List.iter
    (fun b ->
      List.iter
        (fun scheme ->
          let options = { Core.Toolchain.default_options with scheme } in
          match
            Core.Toolchain.compile_exe ~options ~name:b.Suite.name (b.Suite.source ~scale:1)
          with
          | _ -> ()
          | exception Core.Toolchain.Compile_error e ->
            Alcotest.failf "%s under %s: %s" b.Suite.name (Pass.scheme_name scheme) e)
        Pass.all_schemes)
    Suite.all

(* the vcall-heavy benchmark runs correctly and identically under all
   schemes (full observational equivalence, executed) *)
let test_xalancbmk_equivalence () =
  let b = Option.get (Suite.find "xalancbmk") in
  let outputs =
    List.map
      (fun scheme ->
        let options = { Core.Toolchain.default_options with scheme } in
        let exe = Core.Toolchain.compile_exe ~options ~name:b.Suite.name (b.Suite.source ~scale:1) in
        let m = Core.System.run ~variant:Core.System.Processor_kernel_modified exe in
        (match m.Core.System.status with
        | Roload_kernel.Process.Exited 0 -> ()
        | _ ->
          Alcotest.failf "xalancbmk under %s: %s" (Pass.scheme_name scheme)
            (Core.System.status_string m));
        m.Core.System.output)
      Pass.all_schemes
  in
  match outputs with
  | first :: rest -> List.iter (Alcotest.(check string) "same output" first) rest
  | [] -> assert false

(* hardened C++ benchmarks actually execute ld.ro *)
let test_cxx_roload_density () =
  List.iter
    (fun b ->
      let options = { Core.Toolchain.default_options with scheme = Pass.Vcall } in
      let exe = Core.Toolchain.compile_exe ~options ~name:b.Suite.name (b.Suite.source ~scale:1) in
      let m =
        Core.System.run ~variant:Core.System.Processor_kernel_modified
          ~max_instructions:2_000_000L exe
      in
      Alcotest.(check bool)
        (b.Suite.name ^ " executes ld.ro")
        true
        (m.Core.System.roloads_executed > 100))
    Suite.cxx_benchmarks

(* scale grows the work monotonically *)
let test_scale_monotone () =
  let b = Option.get (Suite.find "gobmk") in
  let insts scale =
    let exe = Core.Toolchain.compile_exe ~name:b.Suite.name (b.Suite.source ~scale) in
    (Core.System.run ~variant:Core.System.Processor_kernel_modified exe).Core.System.instructions
  in
  Alcotest.(check bool) "scale 2 > scale 1" true (Int64.compare (insts 2) (insts 1) > 0)

let suite =
  [
    Alcotest.test_case "suite composition" `Quick test_composition;
    Alcotest.test_case "all compile under all schemes" `Slow test_all_compile_all_schemes;
    Alcotest.test_case "xalancbmk equivalence (executed)" `Slow test_xalancbmk_equivalence;
    Alcotest.test_case "c++ benchmarks execute ld.ro" `Slow test_cxx_roload_density;
    Alcotest.test_case "scale monotone" `Slow test_scale_monotone;
  ]
