(* Code-generation tests: register pressure and spilling, values live
   across calls (a past bug class), deep call chains, argument limits,
   and liveness/allocator unit behaviour. *)

module Ir = Roload_ir.Ir
module Liveness = Roload_codegen.Liveness
module Regalloc = Roload_codegen.Regalloc

let compile_run src =
  let exe = Core.Toolchain.compile_exe ~name:"t" src in
  Core.System.run ~variant:Core.System.Processor_kernel_modified exe

let expect_output src expected =
  let m = compile_run src in
  (match m.Core.System.status with
  | Roload_kernel.Process.Exited 0 -> ()
  | _ -> Alcotest.failf "did not exit cleanly: %s" (Core.System.status_string m));
  Alcotest.(check string) "output" expected m.Core.System.output

(* more live values than available registers: forces spilling *)
let test_register_pressure () =
  expect_output
    {|
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5; int f = 6;
  int g = 7; int h = 8; int i = 9; int j = 10; int k = 11; int l = 12;
  int m = 13; int n = 14; int o = 15; int p = 16; int q = 17; int r = 18;
  int s = 19; int t = 20; int u = 21; int v = 22;
  // use everything twice so all stay live to the end
  int x = a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t+u+v;
  int y = a*2+b*2+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t+u+v;
  print_int(x); print_char(' '); print_int(y); print_char('\n');
  return 0;
}
|}
    "253 256\n"

(* values live across calls must survive (the call-crossing allocation
   rule; regression test for the position-0 parameter bug) *)
let test_live_across_calls () =
  expect_output
    {|
int id(int x) { return x; }
int combine(int a, int b, int c, int d) {
  // a..d are parameters consumed only after further calls
  int p = id(a);
  int q = id(b);
  int r = id(c);
  int s = id(d);
  return p * 1000 + q * 100 + r * 10 + s;
}
int main() {
  print_int(combine(1, 2, 3, 4));
  print_char('\n');
  return 0;
}
|}
    "1234\n"

(* the very first instruction of a function is a call (historic bug) *)
let test_call_first_instruction () =
  expect_output
    {|
int seven() { return 7; }
int wrap(int a, int b) {
  int base = seven();
  return base + a * 10 + b;
}
int main() { print_int(wrap(2, 3)); print_char('\n'); return 0; }
|}
    "30\n"

let test_many_args () =
  expect_output
    {|
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
  return a + b + c + d + e + f + g + h;
}
int main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); print_char('\n'); return 0; }
|}
    "36\n"

let test_too_many_args_rejected () =
  let src =
    "int f(int a,int b,int c,int d,int e,int f2,int g,int h,int i) { return a; }\n\
     int main() { return f(1,2,3,4,5,6,7,8,9); }"
  in
  match Core.Toolchain.compile_exe ~name:"t" src with
  | exception Core.Toolchain.Compile_error _ -> ()
  | _ -> Alcotest.fail "9 parameters must be rejected"

let test_large_frame () =
  expect_output
    {|
int main() {
  int big[600];    // 4800-byte frame: offsets exceed 12-bit immediates
  int i;
  for (i = 0; i < 600; i = i + 1) { big[i] = i; }
  int total = 0;
  for (i = 0; i < 600; i = i + 1) { total = total + big[i]; }
  print_int(total); print_char('\n');
  return 0;
}
|}
    "179700\n"

let test_mutual_recursion () =
  expect_output
    {|
// no prototypes needed: all signatures are collected before lowering
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
int main() {
  print_int(is_even(10)); print_int(is_odd(10)); print_char('\n');
  return 0;
}
|}
    "10\n"

(* liveness/allocator unit checks on a hand-built function *)
let build_func () =
  let f =
    { Ir.f_name = "f"; f_sig = { Ir.params = [ Ir.I64 ]; ret = Ir.I64 };
      f_params = []; f_blocks = []; f_ntemps = 0; f_frame_slots = []; f_cfi_id = None }
  in
  let p = Ir.new_temp f in
  f.Ir.f_params <- [ p ];
  let t1 = Ir.new_temp f in
  let t2 = Ir.new_temp f in
  f.Ir.f_blocks <-
    [ { Ir.b_label = "entry";
        b_instrs =
          [ Ir.Call { dst = Some t1; callee = "g"; args = [] };
            Ir.Bin (Ir.Add, t2, Ir.Temp p, Ir.Temp t1) ];
        b_term = Ir.Ret (Some (Ir.Temp t2)) } ];
  (f, p, t1, t2)

let test_liveness_call_crossing () =
  let f, p, t1, t2 = build_func () in
  let live = Liveness.analyze f in
  let interval t = List.find (fun iv -> iv.Liveness.temp = t) live.Liveness.intervals in
  (* the parameter is live across the call; the call's own result and the
     sum are not *)
  Alcotest.(check bool) "param crosses" true (interval p).Liveness.crosses_call;
  Alcotest.(check bool) "result does not cross" false (interval t1).Liveness.crosses_call;
  Alcotest.(check bool) "sum does not cross" false (interval t2).Liveness.crosses_call

let test_regalloc_callee_saved_for_crossing () =
  let f, p, _, _ = build_func () in
  let live = Liveness.analyze f in
  let alloc = Regalloc.allocate live in
  match Regalloc.location alloc p with
  | Regalloc.In_reg r ->
    Alcotest.(check bool) "param in callee-saved" true
      (List.mem r Roload_isa.Reg.callee_saved)
  | Regalloc.Spilled _ -> () (* spilling is always safe *)

(* the whole pipeline under register-starvation plus indirect calls *)
let test_spill_with_icalls () =
  expect_output
    {|
typedef int (*fn_t)(int);
int inc(int x) { return x + 1; }
int main() {
  fn_t f = inc;
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int g = 6; int h = 7; int i = 8; int j = 9; int k = 10;
  int l = 11; int m = 12; int n = 13;
  int r = f(a) + f(b) + f(c) + f(d) + f(e) + f(g) + f(h);
  print_int(r + a + b + c + d + e + g + h + i + j + k + l + m + n);
  print_char('\n');
  return 0;
}
|}
    "126\n"

(* the paper's §III-C artifact: ld.ro has no offset immediate, so a
   non-zero vtable slot needs an extra addi before the keyed load *)
let test_ldro_offset_addi () =
  let src =
    {|
class C {
  virtual int a() { return 1; }
  virtual int b() { return 2; }
};
int main() {
  C *c = new C;
  return c->b();   // slot 1 -> vtable offset 8
}
|}
  in
  let options = { Core.Toolchain.default_options with scheme = Roload_passes.Pass.Vcall } in
  let artifacts = Core.Toolchain.compile ~options ~name:"t" src in
  let lines = String.split_on_char '\n' (Core.Toolchain.asm_text artifacts) in
  let rec find_pair = function
    | a :: b :: rest ->
      let contains hay needle =
        let n = String.length needle in
        let rec go i =
          i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      if contains a "addi t2, t2, 8" && contains b "ld.ro t2, (t2)" then true
      else find_pair (b :: rest)
    | _ -> false
  in
  Alcotest.(check bool) "addi precedes the keyed slot-1 load" true (find_pair lines)

let suite =
  [
    Alcotest.test_case "register pressure / spilling" `Quick test_register_pressure;
    Alcotest.test_case "ld.ro offset needs addi (§III-C)" `Quick test_ldro_offset_addi;
    Alcotest.test_case "live across calls" `Quick test_live_across_calls;
    Alcotest.test_case "call as first instruction" `Quick test_call_first_instruction;
    Alcotest.test_case "8 arguments" `Quick test_many_args;
    Alcotest.test_case "9 arguments rejected" `Quick test_too_many_args_rejected;
    Alcotest.test_case "large frame offsets" `Quick test_large_frame;
    Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
    Alcotest.test_case "liveness call crossing" `Quick test_liveness_call_crossing;
    Alcotest.test_case "regalloc callee-saved rule" `Quick test_regalloc_callee_saved_for_crossing;
    Alcotest.test_case "spills with indirect calls" `Quick test_spill_with_icalls;
  ]
