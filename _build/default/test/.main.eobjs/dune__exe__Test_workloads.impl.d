test/test_workloads.ml: Alcotest Core Int64 List Option Roload_kernel Roload_passes Roload_workloads
