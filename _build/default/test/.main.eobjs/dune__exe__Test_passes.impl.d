test/test_passes.ml: Alcotest Core Int64 List Option Roload_front Roload_ir Roload_isa Roload_passes String
