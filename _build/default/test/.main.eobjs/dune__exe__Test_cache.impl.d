test/test_cache.ml: Alcotest List QCheck QCheck_alcotest Roload_cache
