test/test_asm.ml: Alcotest Array Buffer Int64 List Printf QCheck QCheck_alcotest Roload_asm Roload_isa Roload_kernel Roload_link Roload_machine Roload_mem Roload_obj Roload_util String
