test/test_ir.ml: Alcotest List Roload_ir
