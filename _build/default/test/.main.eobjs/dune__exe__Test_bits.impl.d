test/test_bits.ml: Alcotest Int64 QCheck QCheck_alcotest Roload_util
