test/test_codegen.ml: Alcotest Core List Roload_codegen Roload_ir Roload_isa Roload_kernel Roload_passes String
