test/test_security.ml: Alcotest Core Hashtbl List Roload_obj Roload_passes Roload_security
