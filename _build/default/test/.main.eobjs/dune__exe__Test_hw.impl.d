test/test_hw.ml: Alcotest Array Hashtbl Int64 List Printf QCheck QCheck_alcotest Roload_hw
