test/test_system.ml: Alcotest Int64 Printf Roload_asm Roload_kernel Roload_link Roload_machine Roload_mem
