test/test_toolchain.ml: Alcotest Core List Printf QCheck QCheck_alcotest Roload_kernel Roload_passes
