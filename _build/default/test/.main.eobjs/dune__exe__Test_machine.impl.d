test/test_machine.ml: Alcotest Int64 List QCheck QCheck_alcotest Roload_isa Roload_machine
