test/test_experiments.ml: Alcotest Core List Option Roload_hw Roload_passes Roload_util Roload_workloads String
