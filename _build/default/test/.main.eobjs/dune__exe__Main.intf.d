test/main.mli:
