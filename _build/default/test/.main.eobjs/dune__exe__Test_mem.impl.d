test/test_mem.ml: Alcotest Hashtbl Int64 List QCheck QCheck_alcotest Roload_mem
