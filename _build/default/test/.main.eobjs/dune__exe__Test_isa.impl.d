test/test_isa.ml: Alcotest Int64 List Printf QCheck QCheck_alcotest Roload_isa String
