test/test_kernel.ml: Alcotest Roload_asm Roload_kernel Roload_link Roload_machine Roload_mem Roload_obj Str
