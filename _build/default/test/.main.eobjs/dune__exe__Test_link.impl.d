test/test_link.ml: Alcotest Bytes Core List Printf QCheck QCheck_alcotest Roload_asm Roload_kernel Roload_link Roload_machine Roload_mem Roload_obj Roload_passes Roload_workloads String
