test/test_front.ml: Alcotest Array Core Int64 Printf QCheck QCheck_alcotest Roload_front Roload_kernel String
