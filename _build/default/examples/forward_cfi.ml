(* Type-based forward-edge CFI (paper §IV-B, Listings 1–3): the ICall
   transformation publishes address-taken functions in keyed GFPTs and
   guards every indirect call with ld.ro.

   Run with:  dune exec examples/forward_cfi.exe *)

module Pass = Roload_passes.Pass
module Attack = Roload_security.Attack

(* The paper's Listing 1, in MiniC. *)
let listing1 = {|
typedef int (*func1_t)(int);
typedef int (*func2_t)(int, int);

int foo(int x) { return x + 1; }
int bar(int a, int b) { return a * b; }

func1_t func1;
func2_t func2;

int main() {
  func1 = foo;
  func2 = bar;
  int a = func1(41);
  func2_t f2 = func2;
  int b = f2(6, 7);
  print_int(a); print_char(' '); print_int(b); print_char('\n');
  return 0;
}
|}

let () =
  print_endline "=== compiling Listing 1 with the ICall scheme ===";
  let options = { Core.Toolchain.default_options with scheme = Pass.Icall } in
  let artifacts = Core.Toolchain.compile ~options ~name:"listing1" listing1 in
  List.iter
    (fun (k, v) -> Printf.printf "  %s: %d\n" k v)
    artifacts.Core.Toolchain.pass_report.Roload_passes.Pass.annotations;

  print_endline "\n=== the GFPT symbols and their keyed sections (cf. Listing 3) ===";
  List.iter
    (fun (name, addr) ->
      if String.length name > 7 && String.sub name 0 7 = "__gfpt$" then
        Printf.printf "  %-28s at 0x%x\n" name addr)
    artifacts.Core.Toolchain.exe.Roload_obj.Exe.symbols;
  List.iter
    (fun (s : Roload_obj.Exe.segment) ->
      if s.Roload_obj.Exe.key <> 0 then
        Printf.printf "  segment %-16s key=%d\n" s.Roload_obj.Exe.name s.Roload_obj.Exe.key)
    artifacts.Core.Toolchain.exe.Roload_obj.Exe.segments;

  print_endline "\n=== generated code uses ld.ro before the indirect call ===";
  let asm = Core.Toolchain.asm_text artifacts in
  String.split_on_char '\n' asm
  |> List.filter (fun l ->
         let has sub =
           let n = String.length sub in
           let rec go i = i + n <= String.length l && (String.sub l i n = sub || go (i + 1)) in
           go 0
         in
         has ".ro ")
  |> List.iter (fun l -> Printf.printf "  %s\n" (String.trim l));

  print_endline "\n=== benign execution ===";
  let m =
    Core.System.run ~variant:Core.System.Processor_kernel_modified
      artifacts.Core.Toolchain.exe
  in
  print_string m.Core.System.output;
  Printf.printf "  (%d ld.ro executed)\n" m.Core.System.roloads_executed;

  print_endline "\n=== attacks against the canonical victim, ICall-hardened ===";
  let exe =
    Core.Toolchain.compile_exe ~options ~name:"victim" Roload_security.Victim.source
  in
  List.iter
    (fun kind ->
      let outcome = Roload_security.Eval.run ~exe kind in
      Printf.printf "  %-42s -> %s\n" (Attack.kind_name kind)
        (Attack.outcome_name outcome))
    [ Attack.Fptr_overwrite; Attack.Fptr_type_confusion; Attack.Pointee_reuse_same_key ];
  print_endline "\nonly same-type allowlist members remain callable — the type-based";
  print_endline "CFI policy of paper §IV-B, with the §V-D residual reuse surface."
