(* Beyond CFI: allowlist-based defenses (paper §IV-C).

   The paper argues any allowlist check can become a ROLoad check.  This
   example models the kernel-flavoured case it sketches: a driver-style
   dispatch through "operation structures", where the set of legitimate
   operation tables is the allowlist.  The tables live in keyed read-only
   pages and every dispatch loads through ld.ro, so a corrupted
   ops-pointer can only reach genuine operation tables.

   Run with:  dune exec examples/kernel_allowlist.exe *)

module Pass = Roload_passes.Pass

let program = {|
// a miniature "device layer": ops tables of function pointers
typedef int (*devop_t)(int);

int ram_read(int off) { return off * 2 + 1; }
int ram_write(int off) { return off + 100; }
int nul_read(int off) { return 0; }
int nul_write(int off) { return 0 - 1; }

// ops tables (the allowlists: only these should ever be dispatch targets)
devop_t ram_ops[2] = { ram_read, ram_write };
devop_t nul_ops[2] = { nul_read, nul_write };

int dispatch(devop_t *ops, int op, int arg) {
  devop_t f = ops[op];
  return f(arg);
}

int main() {
  int total = 0;
  int i;
  for (i = 0; i < 8; i = i + 1) {
    devop_t *ops;
    if (i % 2 == 0) { ops = ram_ops; } else { ops = nul_ops; }
    total = total + dispatch(ops, i % 2, i);
  }
  print_str("dispatch total: ");
  print_int(total);
  print_char('\n');
  return 0;
}
|}

let () =
  print_endline "=== an ops-table dispatch layer, ICall-hardened ===";
  let options = { Core.Toolchain.default_options with scheme = Pass.Icall } in
  let artifacts = Core.Toolchain.compile ~options ~name:"devops" program in
  List.iter
    (fun (k, v) -> Printf.printf "  %s: %d\n" k v)
    artifacts.Core.Toolchain.pass_report.Roload_passes.Pass.annotations;
  print_endline "\nops tables were rewritten to point at keyed GFPT entries:";
  List.iter
    (fun (s : Roload_obj.Exe.segment) ->
      if s.Roload_obj.Exe.key <> 0 then
        Printf.printf "  %-16s key=%d (%d bytes of allowlist)\n" s.Roload_obj.Exe.name
          s.Roload_obj.Exe.key s.Roload_obj.Exe.mem_size)
    artifacts.Core.Toolchain.exe.Roload_obj.Exe.segments;
  print_endline "\n=== run ===";
  let m =
    Core.System.run ~variant:Core.System.Processor_kernel_modified
      artifacts.Core.Toolchain.exe
  in
  print_string m.Core.System.output;
  Printf.printf "  status: %s; ld.ro executed: %d\n" (Core.System.status_string m)
    m.Core.System.roloads_executed;
  print_endline "\nEvery dispatch now verifies, in hardware and for free, that the";
  print_endline "operation came from a read-only page keyed as a devop_t allowlist";
  print_endline "— the generalization the paper sketches for kernel operation";
  print_endline "structures and other allowlist checks (§IV-C)."
