(* The full attack-vs-defense matrix (paper §V-C2), narrated.

   Run with:  dune exec examples/attack_gallery.exe *)

module Pass = Roload_passes.Pass
module Attack = Roload_security.Attack

let () =
  print_endline "Running the 5-attack corpus against the canonical victim under";
  print_endline "every hardening scheme (threat model: arbitrary writes to";
  print_endline "writable memory; DEP on; hardware and kernel trusted).";
  print_newline ();
  let result = Core.Experiments.security () in
  Roload_util.Table.print result.Core.Experiments.table;
  print_newline ();
  print_endline "Reading the matrix:";
  print_endline "- unprotected: every corruption diverts control.";
  print_endline "- VCall blocks both vtable attacks (keys distinguish hierarchies,";
  print_endline "  which plain VTint cannot); function pointers are out of scope.";
  print_endline "- ICall blocks injected/wrong-type pointers at every indirect call;";
  print_endline "  its unified vtable key trades cross-hierarchy detection for";
  print_endline "  locality (paper §V-C1b).";
  print_endline "- the same-key pointee reuse row is the residual surface the paper";
  print_endline "  documents in §V-D: allowlist members remain mutually reachable.";
  print_newline ();
  Roload_util.Table.print (Core.Experiments.related_work_table ())
