(* Quickstart: compile a MiniC program with the ICall hardening scheme,
   run it on the simulated ROLoad system, and look at what changed.

   Run with:  dune exec examples/quickstart.exe *)

let program = {|
typedef int (*op_t)(int, int);

int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }

int main() {
  op_t ops[2];
  ops[0] = add;
  ops[1] = mul;
  int acc = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    op_t f = ops[i % 2];
    acc = acc + f(i, 3);
  }
  print_str("result: ");
  print_int(acc);
  print_char('\n');
  return 0;
}
|}

let () =
  print_endline "=== 1. compile with the ICall (type-based CFI) scheme ===";
  let options = { Core.Toolchain.default_options with scheme = Roload_passes.Pass.Icall } in
  let artifacts = Core.Toolchain.compile ~options ~name:"quickstart" program in
  List.iter
    (fun (k, v) -> Printf.printf "  %s: %d\n" k v)
    artifacts.Core.Toolchain.pass_report.Roload_passes.Pass.annotations;

  print_endline "\n=== 2. the image now carries keyed read-only segments ===";
  List.iter
    (fun (s : Roload_obj.Exe.segment) ->
      Printf.printf "  %-16s %s key=%d (%d bytes)\n" s.Roload_obj.Exe.name
        (Roload_mem.Perm.to_string s.Roload_obj.Exe.perms)
        s.Roload_obj.Exe.key s.Roload_obj.Exe.mem_size)
    artifacts.Core.Toolchain.exe.Roload_obj.Exe.segments;

  print_endline "\n=== 3. run on the full ROLoad system ===";
  let m =
    Core.System.run ~variant:Core.System.Processor_kernel_modified
      artifacts.Core.Toolchain.exe
  in
  print_string m.Core.System.output;
  Printf.printf "  status: %s\n" (Core.System.status_string m);
  Printf.printf "  instructions: %Ld, cycles: %Ld\n" m.Core.System.instructions
    m.Core.System.cycles;
  Printf.printf "  ld.ro-family instructions executed: %d\n"
    m.Core.System.roloads_executed;

  print_endline "\n=== 4. same binary on the baseline processor: ld.ro is illegal ===";
  let base = Core.System.run ~variant:Core.System.Baseline artifacts.Core.Toolchain.exe in
  Printf.printf "  status: %s\n" (Core.System.status_string base)
