(* Virtual-call protection (paper §IV-A): run a VTable-hijacking attack
   against the same program unprotected and VCall-hardened.

   Run with:  dune exec examples/vcall_protection.exe *)

module Pass = Roload_passes.Pass
module Attack = Roload_security.Attack

let banner s = Printf.printf "\n=== %s ===\n" s

let demo scheme =
  banner (Printf.sprintf "scheme: %s" (Pass.scheme_name scheme));
  let options = { Core.Toolchain.default_options with scheme } in
  let exe =
    Core.Toolchain.compile_exe ~options ~name:"victim" Roload_security.Victim.source
  in
  (* benign run first *)
  let benign = Core.System.run ~variant:Core.System.Processor_kernel_modified exe in
  Printf.printf "benign run: %s, output %S\n"
    (Core.System.status_string benign)
    (String.trim benign.Core.System.output);
  (* now the two vtable attacks *)
  List.iter
    (fun kind ->
      let outcome = Roload_security.Eval.run ~exe kind in
      Printf.printf "%-42s -> %s\n" (Attack.kind_name kind) (Attack.outcome_name outcome))
    [ Attack.Vtable_injection; Attack.Vtable_corruption_reuse ]

let () =
  print_endline "VTable hijacking: attacker overwrites an object's vptr through";
  print_endline "a memory-corruption primitive, then the program makes a vcall.";
  demo Pass.Unprotected;
  demo Pass.Vtint_baseline;
  demo Pass.Vcall;
  print_endline "";
  print_endline "Summary: the unprotected binary is hijacked; VTint stops the";
  print_endline "injected (writable) vtable but accepts any read-only data as a";
  print_endline "vtable; VCall's per-hierarchy page keys also stop the reuse of";
  print_endline "another type's vtable — the stronger guarantee of paper §V-C2,";
  print_endline "at a fraction of VTint's runtime cost (Figure 3).";
  (* exercise the paper's residual-risk honesty too *)
  banner "the residual pointee-reuse attack (paper §V-D)";
  let options = { Core.Toolchain.default_options with scheme = Pass.Vcall } in
  let exe =
    Core.Toolchain.compile_exe ~options ~name:"victim" Roload_security.Victim.source
  in
  let outcome = Roload_security.Eval.run ~exe Attack.Pointee_reuse_same_key in
  Printf.printf "%-42s -> %s\n"
    (Attack.kind_name Attack.Pointee_reuse_same_key)
    (Attack.outcome_name outcome);
  print_endline "(values already inside a matching-key allowlist remain reachable)"
