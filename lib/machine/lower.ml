(* Trace lowering: compile a [Trace.plan] into one OCaml closure.

   The lowered code is threaded: each slot becomes a small closure that
   tail-calls the next, with every compile-time-constant quantity
   resolved once at lowering time — operand selectors, ALU operator
   functions, immediates, sign-extended constants, per-slot virtual
   addresses (the pc is constant-folded along the trace).

   Accounting is batched but *exact*: the architectural contract is that
   a traced run produces bit-identical cycles, instret, cache/TLB
   statistics, fault counts and memory state to the per-instruction
   reference engine.  The batching rests on three facts:

   - only memory operations (load/store/ld.ro) can trap mid-segment, so
     a *chunk* — a maximal slot run ending at a memory op (or the
     segment end) — either fully executes its non-memory slots or is
     never entered.  Static cycles (base, mul/div, jalr-indirect) and
     the retirements of non-memory slots are summed at compile time and
     charged on chunk entry; a memory op retires itself on success.
   - a segment is one basic block on one page, so every slot's I-TLB
     access after the first is a guaranteed rehit of the entry the
     seam's translation touched: [Tlb.rehit_many] charges all of them in
     O(1) with state identical to the sequential replays.
   - consecutive same-line fetches batch through
     [Hierarchy.rehit_ifetch_many]; line changes are resolved at compile
     time, so the per-chunk fetch plan is a handful of array entries.

   Dynamic costs (cache miss penalties, page-table walks, branch
   mispredicts) are charged as they occur, into a scratch accumulator
   that is flushed to the CPU counters at *every* exit from the trace —
   so the counters are exact whenever control is outside lowered code.

   Dynamic exits (returns, indirect jumps, mispredicted branches) chain
   directly into the target's compiled trace when one is resident
   ([chain_exit]), doing the dispatch loop's per-entry work — fuel
   check, accounted translation, entry guard — inline and tail-calling
   the target's [c_run].  Targets without a trace fall back to the
   dispatcher with their translation already paid ([T_enter_block]), so
   accounting is identical whether or not a chain happens.

   Traces only run when no instruction-trace hook and no obs tracer are
   attached (the dispatch loop guarantees this), so the lowered slots
   omit the per-retire tracer checks the reference engine performs. *)

module Perm = Roload_mem.Perm
module Mmu = Roload_mem.Mmu
module Tlb = Roload_mem.Tlb
module Phys_mem = Roload_mem.Phys_mem
module Page_table = Roload_mem.Page_table
module Cache = Roload_cache.Cache
module Hierarchy = Roload_cache.Hierarchy
module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg

type exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

(* Why the trace handed control back.  The scratch accumulator is always
   flushed and [Cpu.pc] always set before any of these is returned. *)
type texit =
  | T_redispatch  (** continue at [Cpu.pc] through the dispatch loop *)
  | T_trap of Trap.t
  | T_enter_block of { eb_pc : int; eb_pa : int }
      (** a translation already accounted its I-TLB access but did not
          end in a trace entry (unplanned physical page at a seam, or a
          chained exit whose target has no usable trace); the dispatcher
          must run the block at [eb_pa] without re-translating *)

(* Per-trace scratch: cycle/retire accumulators, the remaining fuel as
   of the last flush (the loop-back and chain guards compare against
   it), and the I-cache line handle threaded between fetch batches. *)
type scratch = {
  mutable k_cycles : int;
  mutable k_retired : int;
  mutable k_fuel : int;
  mutable k_line : Cache.handle option;
}

type compiled = {
  c_entry_va : int;
  c_entry_pa : int;
  c_max_retire : int; (* slots retired by one front-to-back pass *)
  c_n_segs : int;
  c_n_slots : int;
  c_run : fuel:int -> Tlb.handle -> texit;
      (* [fuel] must be >= [c_max_retire]; the dispatch loop checks *)
}

(* Everything a lowered closure needs from the machine, captured once at
   compile time.  Costs are split into individual ints so closures read
   immediate fields, not a nested record. *)
type env = {
  cpu : Cpu.t;
  regs : int64 array; (* Cpu.regs cpu; index 0 is x0 and stays 0 *)
  mem : Phys_mem.t;
  hier : Hierarchy.t;
  mmu : Mmu.t;
  itlb : Tlb.t;
  counts : exec_counts;
  key_counts : int array;
  line_shift : int;
  c_base : int;
  c_mispredict : int;
  c_jalr_indirect : int;
  c_mul : int;
  c_div : int;
  c_ptw : int;
  page_holds_code : int -> bool;
  flush_code : unit -> unit;
  find_trace : int -> compiled option;
      (* live view of the machine's trace table, keyed by entry PA *)
  code_gen : unit -> int;
      (* the machine's code-cache generation; chain-site memos carry the
         generation they were filled under and refuse to hit after any
         code flush (self-modifying code) *)
}

let flush env st =
  if st.k_cycles <> 0 then begin
    Cpu.add_cycles env.cpu st.k_cycles;
    st.k_cycles <- 0
  end;
  if st.k_retired <> 0 then begin
    Cpu.retire_n env.cpu st.k_retired;
    st.k_fuel <- st.k_fuel - st.k_retired;
    st.k_retired <- 0
  end

let side_exit env st ~pc =
  flush env st;
  Cpu.set_pc env.cpu pc;
  T_redispatch

(* A dynamic exit whose target may itself be a compiled trace.  Performs
   exactly the dispatch loop's per-entry work — fuel check first, then
   one accounted translation — and tail-calls straight into the target
   trace when one is resident, skipping the round trip through the
   dispatch loop that otherwise dominates call/return-heavy code.  A
   target without a usable trace is handed back as [T_enter_block]: its
   translation is already accounted, so the dispatcher runs the block
   there without translating again.  Every chained hop retires at least
   one instruction (the first chunk's statics are charged before any
   exit can chain), so fuel strictly decreases and chains terminate. *)
(* Per-chain-site translation memo: the last exit target this lowering
   site resolved, its I-TLB handle, and the code-cache generation the
   memo was filled under.  The MMU's own same-page memo flips between
   two pages on call/return alternation (the caller's and the callee's),
   so chained hops were paying the associative TLB scan on every hop;
   a per-site memo holds each site's page across that alternation.

   Purely an accounting-neutral shortcut: a hit replays the TLB hit via
   [Mmu.rehit_fetch] (exact [lookup] accounting, permission check re-run,
   pa recomputed from the PTE the entry holds now), a generation change
   or stale handle falls back to the full [Mmu.translate] with nothing
   accounted.  What is simulated never depends on the memo. *)
type chain_memo = {
  mutable m_va : int;
  mutable m_handle : Tlb.handle option;
  mutable m_gen : int;
}

let fresh_memo () = { m_va = -1; m_handle = None; m_gen = -1 }

let chain_exit env st memo ~pc =
  flush env st;
  Cpu.set_pc env.cpu pc;
  if st.k_fuel <= 0 || pc land 1 <> 0 then T_redispatch
  else begin
    let vpn = pc lsr Page_table.page_shift in
    let gen = env.code_gen () in
    let fast =
      if memo.m_va = pc && memo.m_gen = gen then
        match memo.m_handle with
        | Some h -> Mmu.rehit_fetch env.mmu ~vpn ~handle:h pc
        | None -> None
      else None
    in
    let trans =
      match fast with
      | Some r -> r
      | None -> (
        match Mmu.translate env.mmu ~access:Perm.Fetch pc with
        | Error f -> Error f
        | Ok t -> Ok t)
    in
    match trans with
    | Error f -> T_trap (Trap.of_mmu_fault ~pc f)
    | Ok { pa; walk_steps; _ } -> (
      Cpu.add_cycles env.cpu (walk_steps * env.c_ptw);
      let h_opt =
        match fast with Some _ -> memo.m_handle | None -> Tlb.peek env.itlb ~vpn
      in
      memo.m_va <- pc;
      memo.m_handle <- h_opt;
      memo.m_gen <- gen;
      match env.find_trace pa with
      | Some c when c.c_entry_va = pc && c.c_max_retire <= st.k_fuel -> (
        match h_opt with
        | Some h -> c.c_run ~fuel:st.k_fuel h
        | None -> T_enter_block { eb_pc = pc; eb_pa = pa })
      | _ -> T_enter_block { eb_pc = pc; eb_pa = pa })
  end

let to_addr = Int64.to_int

(* A block is compilable when every slot can be lowered: no ecall/ebreak
   (the kernel decides the resumption pc), and no ld.ro on a baseline
   machine (it must raise Illegal_instruction, which the block engine
   already handles). *)
let compilable ~roload_enabled b =
  let n = Block.length b in
  let ok = ref true in
  for i = 0 to n - 1 do
    match (Block.slot b i).Block.s_inst with
    | Inst.Ecall | Inst.Ebreak -> ok := false
    | Inst.Load_ro _ -> if not roload_enabled then ok := false
    | _ -> ()
  done;
  !ok

(* Width/signedness-specialized physical accessors, resolved at compile
   time — the lowered memory ops apply a direct function. *)
let read_fn mem (width : Inst.width) ~unsigned =
  match (width, unsigned) with
  | Inst.Byte, true -> fun pa -> Int64.of_int (Phys_mem.read_u8 mem pa)
  | Inst.Byte, false ->
    fun pa -> Roload_util.Bits.sign_extend (Int64.of_int (Phys_mem.read_u8 mem pa)) ~width:8
  | Inst.Half, true -> fun pa -> Int64.of_int (Phys_mem.read_u16 mem pa)
  | Inst.Half, false ->
    fun pa -> Roload_util.Bits.sign_extend (Int64.of_int (Phys_mem.read_u16 mem pa)) ~width:16
  | Inst.Word, true -> fun pa -> Int64.of_int (Phys_mem.read_u32 mem pa)
  | Inst.Word, false ->
    fun pa -> Roload_util.Bits.sign_extend (Int64.of_int (Phys_mem.read_u32 mem pa)) ~width:32
  | Inst.Double, _ -> fun pa -> Phys_mem.read_u64 mem pa

let write_fn mem (width : Inst.width) =
  match width with
  | Inst.Byte -> fun pa v -> Phys_mem.write_u8 mem pa (Int64.to_int (Int64.logand v 0xFFL))
  | Inst.Half -> fun pa v -> Phys_mem.write_u16 mem pa (Int64.to_int (Int64.logand v 0xFFFFL))
  | Inst.Word ->
    fun pa v -> Phys_mem.write_u32 mem pa (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Inst.Double -> fun pa v -> Phys_mem.write_u64 mem pa v

(* Static extra cycles an instruction always pays on top of base. *)
let static_extra env (i : Inst.t) =
  match i with
  | Inst.Mulop (op, _, _, _) -> (
    match op with
    | Inst.Mul | Inst.Mulh | Inst.Mulhsu | Inst.Mulhu -> env.c_mul
    | Inst.Div | Inst.Divu | Inst.Rem | Inst.Remu -> env.c_div)
  | Inst.Mulop_w (op, _, _, _) -> (
    match op with
    | Inst.Mulw -> env.c_mul
    | Inst.Divw | Inst.Divuw | Inst.Remw | Inst.Remuw -> env.c_div / 2)
  | _ -> 0

(* Per-chunk instruction-fetch plan, resolved at compile time: a full
   I-cache access on every line change, consecutive same-line fetches
   batched into one O(1) rehit.  [pas] is kept for the (in practice
   unreachable) eviction fallback, which replays each fetch exactly as
   the reference engine would. *)
type fop =
  | F_acc of int (* pa *)
  | F_rehit of { n : int; pas : int array }

let exec_fops env st fops =
  for i = 0 to Array.length fops - 1 do
    match Array.unsafe_get fops i with
    | F_acc pa ->
      let cost, h = Hierarchy.access_ifetch_handle env.hier ~pa in
      st.k_cycles <- st.k_cycles + cost;
      st.k_line <- Some h
    | F_rehit { n; pas } -> (
      match st.k_line with
      | Some h when Hierarchy.rehit_ifetch_many env.hier h ~n -> ()
      | _ ->
        (* the line was evicted across a seam (cannot happen within a
           segment: a page's lines map to distinct sets) — replay each
           fetch individually, exactly like the reference engine *)
        let cur = ref st.k_line in
        Array.iter
          (fun pa ->
            match !cur with
            | Some h when Hierarchy.rehit_ifetch env.hier h -> ()
            | _ ->
              let cost, h = Hierarchy.access_ifetch_handle env.hier ~pa in
              st.k_cycles <- st.k_cycles + cost;
              cur := Some h)
          pas;
        st.k_line <- !cur)
  done

(* ---- slot lowering ---- *)

(* Lower one non-terminator slot at virtual address [va] into a closure
   chaining to [next].  Slots with no dynamic work (writes to x0, fence)
   lower to [next] itself — their base cycle and retirement are already
   in the chunk statics. *)
let lower_slot env st ~va ~next_va (s : Block.slot) (next : Tlb.handle -> texit) :
    Tlb.handle -> texit =
  let regs = env.regs in
  match s.Block.s_inst with
  | Inst.Lui (rd, imm) ->
    let rd = Reg.to_int rd in
    if rd = 0 then next
    else
      let v = Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32 in
      fun h ->
        Array.unsafe_set regs rd v;
        next h
  | Inst.Auipc (rd, imm) ->
    let rd = Reg.to_int rd in
    if rd = 0 then next
    else
      (* pc is a compile-time constant along the trace *)
      let v =
        Int64.add (Int64.of_int va)
          (Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32)
      in
      fun h ->
        Array.unsafe_set regs rd v;
        next h
  | Inst.Op_imm (op, rd, rs1, imm) ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 in
    if rd = 0 then next
    else
      let f = Alu.op_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) imm);
        next h
  | Inst.Op_imm_w (op, rd, rs1, imm) ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 in
    if rd = 0 then next
    else
      let f = Alu.op_w_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) imm);
        next h
  | Inst.Op (op, rd, rs1, rs2) ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    if rd = 0 then next
    else
      let f = Alu.op_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2));
        next h
  | Inst.Op_w (op, rd, rs1, rs2) ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    if rd = 0 then next
    else
      let f = Alu.op_w_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2));
        next h
  | Inst.Mulop (op, rd, rs1, rs2) ->
    (* mul/div latency is static, charged in the chunk *)
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    if rd = 0 then next
    else
      let f = Alu.mulop_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2));
        next h
  | Inst.Mulop_w (op, rd, rs1, rs2) ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    if rd = 0 then next
    else
      let f = Alu.mulop_w_fn op in
      fun h ->
        Array.unsafe_set regs rd (f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2));
        next h
  | Inst.Fence -> next
  | Inst.Load { width; unsigned; rd; rs1; imm } ->
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 in
    let read = read_fn env.mem width ~unsigned in
    let amask = Inst.width_bytes width - 1 in
    let counts = env.counts in
    fun h ->
      counts.loads <- counts.loads + 1;
      let va_d = to_addr (Int64.add (Array.unsafe_get regs rs1) imm) in
      if va_d land amask <> 0 then begin
        flush env st;
        Cpu.set_pc env.cpu va;
        T_trap (Trap.Misaligned_access { pc = va; va = va_d; access = Perm.Load })
      end
      else begin
        match Mmu.translate env.mmu ~access:Perm.Load va_d with
        | Error f ->
          flush env st;
          Cpu.set_pc env.cpu va;
          T_trap (Trap.of_mmu_fault ~pc:va f)
        | Ok { pa; walk_steps; _ } ->
          st.k_cycles <-
            st.k_cycles + (walk_steps * env.c_ptw)
            + Hierarchy.access_data env.hier ~pa ~write:false;
          if rd <> 0 then Array.unsafe_set regs rd (read pa);
          st.k_retired <- st.k_retired + 1;
          next h
      end
  | Inst.Load_ro { width; unsigned; rd; rs1; key } ->
    (* only compiled on a ROLoad-enabled machine ([compilable]); the
       tracer's Roload_issue/Roload_fault events are omitted because
       traces never run with a tracer attached *)
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 in
    let read = read_fn env.mem width ~unsigned in
    let amask = Inst.width_bytes width - 1 in
    let k = key land Roload_isa.Roload_ext.max_key in
    let access = Perm.Roload key in
    let counts = env.counts and key_counts = env.key_counts in
    fun h ->
      counts.roloads <- counts.roloads + 1;
      key_counts.(k) <- key_counts.(k) + 1;
      let va_d = to_addr (Array.unsafe_get regs rs1) in
      if va_d land amask <> 0 then begin
        flush env st;
        Cpu.set_pc env.cpu va;
        T_trap (Trap.Misaligned_access { pc = va; va = va_d; access })
      end
      else begin
        match Mmu.translate env.mmu ~access va_d with
        | Error f ->
          flush env st;
          Cpu.set_pc env.cpu va;
          T_trap (Trap.of_mmu_fault ~pc:va f)
        | Ok { pa; walk_steps; _ } ->
          st.k_cycles <-
            st.k_cycles + (walk_steps * env.c_ptw)
            + Hierarchy.access_data env.hier ~pa ~write:false;
          if rd <> 0 then Array.unsafe_set regs rd (read pa);
          st.k_retired <- st.k_retired + 1;
          next h
      end
  | Inst.Store { width; rs2; rs1; imm } ->
    let rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    let write = write_fn env.mem width in
    let amask = Inst.width_bytes width - 1 in
    let counts = env.counts in
    fun h ->
      counts.stores <- counts.stores + 1;
      let va_d = to_addr (Int64.add (Array.unsafe_get regs rs1) imm) in
      if va_d land amask <> 0 then begin
        flush env st;
        Cpu.set_pc env.cpu va;
        T_trap (Trap.Misaligned_access { pc = va; va = va_d; access = Perm.Store })
      end
      else begin
        match Mmu.translate env.mmu ~access:Perm.Store va_d with
        | Error f ->
          flush env st;
          Cpu.set_pc env.cpu va;
          T_trap (Trap.of_mmu_fault ~pc:va f)
        | Ok { pa; walk_steps; _ } ->
          st.k_cycles <-
            st.k_cycles + (walk_steps * env.c_ptw)
            + Hierarchy.access_data env.hier ~pa ~write:true;
          write pa (Array.unsafe_get regs rs2);
          st.k_retired <- st.k_retired + 1;
          if env.page_holds_code pa then begin
            (* self-modifying code: the flush just destroyed this very
               trace; leave immediately with the pc already advanced *)
            env.flush_code ();
            flush env st;
            Cpu.set_pc env.cpu next_va;
            T_redispatch
          end
          else next h
      end
  | Inst.Jal _ | Inst.Jalr _ | Inst.Branch _ | Inst.Ecall | Inst.Ebreak ->
    (* terminators are lowered by [lower_term]; ecall/ebreak never pass
       [compilable] *)
    assert false

(* ---- terminator lowering ---- *)

(* What the stitched edge expects, resolved at compile time. *)
type cont_kind =
  | Stitch of { expect_va : int; cont : unit -> texit }
  | Leave

let lower_term env st ~end_va (term : Trace.term) (kind : cont_kind) :
    Tlb.handle -> texit =
  let regs = env.regs and counts = env.counts in
  match term with
  | Trace.K_fall { next_va } -> (
    (* no instruction: the block closed at the page boundary *)
    match kind with
    | Stitch { cont; _ } -> fun _h -> cont ()
    | Leave ->
      let memo = fresh_memo () in
      fun _h -> chain_exit env st memo ~pc:next_va)
  | Trace.K_jal { rd; target_va } -> (
    let rd = Reg.to_int rd in
    let link = Int64.of_int end_va in
    match kind with
    | Stitch { cont; _ } ->
      (* a jal's target is static: the stitched edge always holds *)
      fun _h ->
        counts.jumps <- counts.jumps + 1;
        if rd <> 0 then Array.unsafe_set regs rd link;
        cont ()
    | Leave ->
      let memo = fresh_memo () in
      fun _h ->
        counts.jumps <- counts.jumps + 1;
        if rd <> 0 then Array.unsafe_set regs rd link;
        chain_exit env st memo ~pc:target_va)
  | Trace.K_jalr { rd; rs1; imm; is_return } ->
    (* the indirect penalty for non-returns is static, charged in the
       chunk *)
    let rd = Reg.to_int rd and rs1 = Reg.to_int rs1 in
    let link = Int64.of_int end_va in
    let memo = fresh_memo () in
    fun _h ->
      counts.jumps <- counts.jumps + 1;
      if not is_return then counts.indirect_jumps <- counts.indirect_jumps + 1;
      (* target before link write: rs1 may equal rd *)
      let tgt = to_addr (Int64.logand (Int64.add (Array.unsafe_get regs rs1) imm) (-2L)) in
      if rd <> 0 then Array.unsafe_set regs rd link;
      (match kind with
      | Stitch { expect_va; cont } ->
        if tgt = expect_va then cont () else chain_exit env st memo ~pc:tgt
      | Leave -> chain_exit env st memo ~pc:tgt)
  | Trace.K_branch { cond; rs1; rs2; taken_va; fall_va; predicted_taken } -> (
    let rs1 = Reg.to_int rs1 and rs2 = Reg.to_int rs2 in
    let f = Alu.branch_fn cond in
    match kind with
    | Stitch { expect_va; cont } ->
      let stitch_taken = expect_va = taken_va in
      let memo = fresh_memo () in
      fun _h ->
        counts.branches <- counts.branches + 1;
        let taken = f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2) in
        if taken <> predicted_taken then st.k_cycles <- st.k_cycles + env.c_mispredict;
        if taken = stitch_taken then cont ()
        else chain_exit env st memo ~pc:(if taken then taken_va else fall_va)
    | Leave ->
      let memo = fresh_memo () in
      fun _h ->
        counts.branches <- counts.branches + 1;
        let taken = f (Array.unsafe_get regs rs1) (Array.unsafe_get regs rs2) in
        if taken <> predicted_taken then st.k_cycles <- st.k_cycles + env.c_mispredict;
        chain_exit env st memo ~pc:(if taken then taken_va else fall_va))

(* ---- segment lowering ---- *)

(* Per-chunk compile-time plan (see the module header for why chunk
   boundaries sit at memory ops). *)
type chunk_plan = {
  cp_k0 : int;
  cp_k1 : int;
  cp_first_va : int;
  cp_tlb_n : int; (* batched I-TLB rehits; segment entry covers slot 0 *)
  cp_cycles : int;
  cp_retires : int;
  cp_fops : fop array;
}

let lower_segment env st (sg : Trace.seg) ~(kind : cont_kind) : Tlb.handle -> texit =
  let b = sg.Trace.sg_block in
  let len = Block.length b in
  let vpn = sg.Trace.sg_va lsr Page_table.page_shift in
  let vas = Array.make len 0 in
  let () =
    let va = ref sg.Trace.sg_va in
    for i = 0 to len - 1 do
      vas.(i) <- !va;
      va := !va + (Block.slot b i).Block.s_size
    done
  in
  let is_mem i =
    match (Block.slot b i).Block.s_inst with
    | Inst.Load _ | Inst.Store _ | Inst.Load_ro _ -> true
    | _ -> false
  in
  let has_term_slot = match sg.Trace.sg_term with Trace.K_fall _ -> false | _ -> true in
  let term_closure = lower_term env st ~end_va:sg.Trace.sg_end_va sg.Trace.sg_term kind in
  let term_extra =
    match sg.Trace.sg_term with
    | Trace.K_jalr { is_return = false; _ } -> env.c_jalr_indirect
    | _ -> 0
  in
  (* chunk boundaries, then per-chunk statics and fetch plans in forward
     order ([cur_line] threads the compile-time I-cache line across
     chunks; it resets per segment, mirroring the block engine's
     per-entry reset) *)
  let bounds = ref [] in
  let k0 = ref 0 in
  for i = 0 to len - 1 do
    if is_mem i || i = len - 1 then begin
      bounds := (!k0, i) :: !bounds;
      k0 := i + 1
    end
  done;
  let bounds = List.rev !bounds in
  let cur_line = ref (-1) in
  let plan_of (k0, k1) =
    let cycles = ref 0 and retires = ref 0 in
    let ops = ref [] and pend = ref [] in
    let flush_pend () =
      match !pend with
      | [] -> ()
      | l ->
        let pas = Array.of_list (List.rev l) in
        ops := F_rehit { n = Array.length pas; pas } :: !ops;
        pend := []
    in
    for i = k0 to k1 do
      let s = Block.slot b i in
      cycles := !cycles + env.c_base + static_extra env s.Block.s_inst;
      if not (is_mem i) then incr retires;
      let line = s.Block.s_pa lsr env.line_shift in
      if line <> !cur_line then begin
        flush_pend ();
        ops := F_acc s.Block.s_pa :: !ops;
        cur_line := line
      end
      else pend := s.Block.s_pa :: !pend
    done;
    flush_pend ();
    if k1 = len - 1 then cycles := !cycles + term_extra;
    let n_slots = k1 - k0 + 1 in
    {
      cp_k0 = k0;
      cp_k1 = k1;
      cp_first_va = vas.(k0);
      cp_tlb_n = (if k0 = 0 then n_slots - 1 else n_slots);
      cp_cycles = !cycles;
      cp_retires = !retires;
      cp_fops = Array.of_list (List.rev !ops);
    }
  in
  let plans = List.map plan_of bounds in
  (* closures, back-to-front; for K_fall the epilogue follows the last
     slot, otherwise the terminator slot itself ends the chain *)
  let chunk_closure cp (next : Tlb.handle -> texit) : Tlb.handle -> texit =
    let chain = ref next in
    for i = cp.cp_k1 downto cp.cp_k0 do
      if has_term_slot && i = len - 1 then chain := term_closure
      else begin
        let s = Block.slot b i in
        chain := lower_slot env st ~va:vas.(i) ~next_va:(vas.(i) + s.Block.s_size) s !chain
      end
    done;
    let chain = !chain in
    let { cp_first_va; cp_tlb_n; cp_cycles; cp_retires; cp_fops; _ } = cp in
    let itlb = env.itlb in
    fun h ->
      if cp_tlb_n > 0 && not (Tlb.rehit_many itlb ~vpn h ~n:cp_tlb_n) then
        (* entry evicted mid-segment (unreachable in practice): nothing
           was accounted; the dispatch loop's full translate takes over *)
        side_exit env st ~pc:cp_first_va
      else begin
        exec_fops env st cp_fops;
        st.k_cycles <- st.k_cycles + cp_cycles;
        st.k_retired <- st.k_retired + cp_retires;
        chain h
      end
  in
  let tail : Tlb.handle -> texit =
    if has_term_slot then fun _h -> assert false (* chain ends at the terminator *)
    else term_closure
  in
  List.fold_left (fun next cp -> chunk_closure cp next) tail (List.rev plans)

(* ---- trace compilation ---- *)

let compile env (plan : Trace.plan) : compiled =
  let st = { k_cycles = 0; k_retired = 0; k_fuel = 0; k_line = None } in
  let segs = plan.Trace.p_segs in
  let n = Array.length segs in
  let body0_fwd = ref (fun (_ : Tlb.handle) -> T_redispatch) in
  (* Segment seam: re-translate the static entry VA (accounting the
     I-TLB access and any walk, exactly like the dispatch loop's block
     entry), verify the physical placement the plan assumed, and fetch a
     fresh TLB handle for the segment's batched rehits. *)
  let seam (sg : Trace.seg) (body : Tlb.handle -> texit) () =
    match Mmu.translate env.mmu ~access:Perm.Fetch sg.Trace.sg_va with
    | Error f ->
      flush env st;
      Cpu.set_pc env.cpu sg.Trace.sg_va;
      T_trap (Trap.of_mmu_fault ~pc:sg.Trace.sg_va f)
    | Ok { pa; walk_steps; _ } ->
      st.k_cycles <- st.k_cycles + (walk_steps * env.c_ptw);
      if pa <> sg.Trace.sg_pa then begin
        (* remapped since planning: the fetch is accounted, so hand the
           dispatcher the PA to run without a second translation *)
        flush env st;
        Cpu.set_pc env.cpu sg.Trace.sg_va;
        T_enter_block { eb_pc = sg.Trace.sg_va; eb_pa = pa }
      end
      else begin
        match Tlb.peek env.itlb ~vpn:(sg.Trace.sg_va lsr Page_table.page_shift) with
        | Some h -> body h
        | None ->
          (* translate succeeded, so the entry is resident; defensive *)
          side_exit env st ~pc:sg.Trace.sg_va
      end
  in
  let loop_cont =
    let s0 = segs.(0) in
    let seam0 = seam s0 (fun h -> !body0_fwd h) in
    fun () ->
      (* another full pass must fit in the fuel captured at entry;
         otherwise leave with exact counters and let the dispatcher
         re-evaluate *)
      if st.k_retired + plan.Trace.p_max_retire <= st.k_fuel then seam0 ()
      else side_exit env st ~pc:plan.Trace.p_entry_va
  in
  let bodies = Array.make n (fun (_ : Tlb.handle) -> T_redispatch) in
  for j = n - 1 downto 0 do
    let sg = segs.(j) in
    let kind =
      match sg.Trace.sg_link with
      | Trace.L_exit -> Leave
      | Trace.L_seg ->
        let nxt = segs.(j + 1) in
        Stitch { expect_va = nxt.Trace.sg_va; cont = seam nxt bodies.(j + 1) }
      | Trace.L_loop -> Stitch { expect_va = plan.Trace.p_entry_va; cont = loop_cont }
    in
    bodies.(j) <- lower_segment env st sg ~kind
  done;
  body0_fwd := bodies.(0);
  let body0 = bodies.(0) in
  {
    c_entry_va = plan.Trace.p_entry_va;
    c_entry_pa = plan.Trace.p_entry_pa;
    c_max_retire = plan.Trace.p_max_retire;
    c_n_segs = n;
    c_n_slots = plan.Trace.p_max_retire;
    c_run =
      (fun ~fuel h ->
        st.k_cycles <- 0;
        st.k_retired <- 0;
        st.k_fuel <- fuel;
        st.k_line <- None;
        body0 h);
  }
