(** Trace lowering: compile a {!Trace.plan} into one OCaml closure —
    threaded code with per-slot work specialized at compile time and
    cycle/retire accounting batched per chunk, flushed exactly at every
    exit.  The contract is bit-identity with the per-instruction
    reference engine: cycles, instret, cache/TLB statistics, fault
    counts and memory state all match.

    Traces must only run with no instruction-trace hook and no obs
    tracer attached; the dispatch loop enforces this. *)

(** Dynamic instruction-mix counters, shared with the machine (the
    machine re-exports this type). *)
type exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

(** Why the trace handed control back.  Scratch counters are always
    flushed and [Cpu.pc] always set before any of these is returned. *)
type texit =
  | T_redispatch  (** continue at [Cpu.pc] through the dispatch loop *)
  | T_trap of Trap.t
  | T_enter_block of { eb_pc : int; eb_pa : int }
      (** a translation already accounted its I-TLB access but did not
          end in a trace entry (unplanned physical page at a seam, or a
          chained exit whose target has no usable trace); the dispatcher
          must run the block at [eb_pa] without re-translating *)

type compiled = {
  c_entry_va : int;
  c_entry_pa : int;
  c_max_retire : int;  (** slots retired by one front-to-back pass *)
  c_n_segs : int;
  c_n_slots : int;
  c_run : fuel:int -> Roload_mem.Tlb.handle -> texit;
      (** [h] is the I-TLB handle of the entry page, captured after the
          dispatcher's entry translation; [fuel] must be at least
          [c_max_retire] *)
}

(** Everything a lowered closure needs from the machine, captured once
    at compile time. *)
type env = {
  cpu : Cpu.t;
  regs : int64 array;  (** [Cpu.regs cpu]; index 0 is x0 and stays 0 *)
  mem : Roload_mem.Phys_mem.t;
  hier : Roload_cache.Hierarchy.t;
  mmu : Roload_mem.Mmu.t;
  itlb : Roload_mem.Tlb.t;
  counts : exec_counts;
  key_counts : int array;
  line_shift : int;
  c_base : int;
  c_mispredict : int;
  c_jalr_indirect : int;
  c_mul : int;
  c_div : int;
  c_ptw : int;
  page_holds_code : int -> bool;
  flush_code : unit -> unit;
  find_trace : int -> compiled option;
      (** live view of the machine's trace table keyed by entry PA, for
          trace-to-trace chaining at dynamic exits *)
  code_gen : unit -> int;
      (** the machine's code-cache generation counter; per-chain-site
          translation memos are invalidated by any code flush *)
}

val compilable : roload_enabled:bool -> Block.t -> bool
(** Every slot of the block can be lowered: no ecall/ebreak, and no
    ld.ro on a baseline (non-ROLoad) machine. *)

val compile : env -> Trace.plan -> compiled
