(** RV64 integer arithmetic semantics, including the M-extension edge
    cases (division by zero, signed overflow). *)

val sext32 : int64 -> int64
val op : Roload_isa.Inst.alu_op -> int64 -> int64 -> int64
val op_w : Roload_isa.Inst.alu_w_op -> int64 -> int64 -> int64
val mulop : Roload_isa.Inst.mul_op -> int64 -> int64 -> int64
val mulop_w : Roload_isa.Inst.mul_w_op -> int64 -> int64 -> int64
val mulhu : int64 -> int64 -> int64
val mulh : int64 -> int64 -> int64
val mulhsu : int64 -> int64 -> int64

(** Per-op function selectors for the trace-compiled engine: resolve the
    operator variant once at trace-compile time so lowered closures apply
    a direct function with no dispatch.  [op_fn o a b = op o a b], and
    likewise for the other families. *)

val op_fn : Roload_isa.Inst.alu_op -> int64 -> int64 -> int64
val op_w_fn : Roload_isa.Inst.alu_w_op -> int64 -> int64 -> int64
val mulop_fn : Roload_isa.Inst.mul_op -> int64 -> int64 -> int64
val mulop_w_fn : Roload_isa.Inst.mul_w_op -> int64 -> int64 -> int64

val branch_fn : Roload_isa.Inst.branch_cond -> int64 -> int64 -> bool
(** The branch condition as a direct comparison function. *)
