(** Pre-decoded basic blocks: the execution engine's block-cache
    representation, also reused by the static disassembly walk of the
    analysis layer.  A block is a straight-line run of decoded
    instructions within one page, closed at the first control-flow
    instruction (or ecall/ebreak) or at the page boundary. *)

type slot = {
  s_inst : Roload_isa.Inst.t;
  s_size : int;  (** 2 or 4 bytes *)
  s_pa : int;  (** physical address of the first halfword *)
}

type t

val create : start_pa:int -> t
val start_pa : t -> int
val length : t -> int

val slot : t -> int -> slot
(** Unchecked slot access; the index must be below [length]. *)

val closed : t -> bool
(** No further slots can be appended: the last slot is a terminator, or
    the next instruction would start on another page. *)

val close : t -> unit
val append : t -> slot -> unit

val copy : t -> t
(** Deep copy (fresh slot array, bookkeeping included) — used by machine
    snapshots so a restored block cache can mutate independently. *)

(** {2 Trace-engine bookkeeping}

    Recorded by the traced dispatch loop, consumed by the superblock
    stitcher.  Pure selection heuristics: they steer which traces get
    compiled, never what executing one computes. *)

val hot : t -> int
(** Dispatch-loop entries into this block. *)

val note_enter : t -> unit

val note_successor : t -> int -> unit
(** Record the VA execution continued at after running this block. *)

val successor : t -> (int * int) option
(** The last recorded successor VA and how many consecutive runs
    continued there ([None] before the first record). *)

val no_trace : t -> bool
(** Stitching a trace from this block failed; don't retry until the
    caches are flushed. *)

val set_no_trace : t -> unit

val is_terminator : Roload_isa.Inst.t -> bool
(** Instructions after which execution does not fall through to
    [pc + size] (control flow, ecall, ebreak). *)

val predecode : ?base:int -> string -> t list
(** Static linear sweep of a raw code string into closed blocks;
    undecodable parcels close the current block and are skipped a
    halfword at a time.  [base] offsets the recorded addresses. *)

val iter_insts : t list -> f:(pa:int -> Roload_isa.Inst.t -> size:int -> unit) -> unit
(** Iterate every decoded instruction of [blocks] in address order. *)
