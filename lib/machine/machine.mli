(** The machine top: fetch/decode/execute with a deterministic cycle
    model.  A [ld.ro] costs exactly as much as the equivalent [ld] — the
    read-only + key check runs in parallel inside the MMU, which is the
    paper's central performance claim. *)

type costs = {
  base : int;
  branch_mispredict : int;
  jalr_indirect : int;
  mul : int;
  div : int;
  ptw_step : int;
}

val default_costs : costs

type exec_counts = Lower.exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

type t

type engine =
  | Block_cached  (** pre-decoded basic blocks + fetch fast paths *)
  | Single_step  (** the per-instruction reference interpreter *)
  | Traced
      (** block engine + hot superblocks compiled to closures (default) *)

val engine_name : engine -> string
(** Canonical short name: ["single"], ["block"] or ["traced"]. *)

val engine_of_string : string -> (engine, string) result
(** Parse an engine name ([single]/[single-step]/[step],
    [block]/[block-cached]/[blocks], [traced]/[trace], case-insensitive);
    the error message lists the valid names. *)

val set_default_engine : engine -> unit
(** Override the engine used when neither [?engine] nor [ROLOAD_ENGINE]
    says otherwise (initially {!Traced}). *)

val effective_engine : unit -> engine
(** The engine a [create] with no [?engine] argument picks right now:
    [ROLOAD_ENGINE] when set (unknown values fail loudly), else the
    process default.  Harness front-ends use this to label output. *)

val default_hot_threshold : unit -> int
(** The process-default trace hotness threshold: dispatch-loop entries
    before a block seeds a trace (initially 64). *)

val set_default_hot_threshold : int -> unit
(** Override the default hotness threshold (clamped to [>= 1]) for
    machines created afterwards; [ROLOAD_TRACE_HOT] still wins.  The
    threshold only changes {e when} traces compile, never any
    architectural counter — all settings are cycle-identical. *)

type step_result = Continue | Trapped of Trap.t

val create : ?costs:costs -> ?engine:engine -> Config.t -> t
(** [engine] defaults to the [ROLOAD_ENGINE] environment variable when
    set (unknown values fail loudly), else to the process default
    ({!Traced} unless {!set_default_engine} was called).  All engines are
    cycle-exact to each other. *)

val cpu : t -> Cpu.t
val mem : t -> Roload_mem.Phys_mem.t
val config : t -> Config.t
val hierarchy : t -> Roload_cache.Hierarchy.t
val counts : t -> exec_counts
val engine : t -> engine

val cached_blocks : t -> int
(** Number of pre-decoded blocks currently cached (introspection). *)

val cached_decodes : t -> int
(** Number of per-pa memoized decodes currently cached (introspection). *)

val cached_traces : t -> int
(** Number of compiled traces currently cached (introspection). *)

val flush_code_caches : t -> unit
(** Drop every pre-decoded block, compiled trace and decode memo.  All
    engines share the decode memo, so a flush affects their cycle
    accounting identically (decode-time fetches are re-charged on next
    execution).  Called automatically on [set_mmu] and on stores into
    pages holding decoded instructions. *)

val set_mmu : t -> Roload_mem.Mmu.t option -> unit
(** Install the scheduled process's address space (clears the decode
    cache). *)

val set_trace : t -> (pc:int -> Roload_isa.Inst.t -> unit) option -> unit
(** Install an instruction-retirement hook (debugging/tracing). *)

val set_tracer : t -> Roload_obs.Tracer.t option -> unit
(** Attach the structured event tracer: wires its clock to the cycle
    counter and points the cache/TLB observers at it.  Tracing never
    changes simulated behaviour — cycles, statistics and output are
    bit-identical with the tracer on or off. *)

val tracer : t -> Roload_obs.Tracer.t option
(** The attached tracer, for co-resident emitters (the kernel). *)

val roload_key_counts : t -> int array
(** ld.ro retirements per requested key (indexed 0..max_key); always
    maintained, independent of tracing.  Callers must not mutate. *)

val block_enters : t -> int
(** Block-engine entries into the outer dispatch loop. *)

val block_hits : t -> int
(** Entries that found a pre-decoded block in the cache. *)

val block_decodes : t -> int
(** Slots lazily decoded and appended to blocks. *)

val trace_enters : t -> int
(** Dispatches that entered a compiled trace (traced engine only). *)

val trace_retires : t -> int
(** Instructions retired inside compiled traces — the numerator of the
    trace-coverage metric (its denominator is [Cpu.instret]). *)

val traces_compiled : t -> int
(** Traces stitched and lowered since the last flush-independent reset
    (the counter itself is cumulative and survives code-cache flushes). *)

val injections : t -> int
(** roload-chaos faults applied to this machine's state (0 outside a
    campaign); always counted, independent of tracing. *)

val note_injection : t -> kind:string -> addr:int -> unit
(** Record one applied fault: bump {!injections} and emit an
    [Event.Injected] on the attached tracer (if any).  Called by the
    roload-chaos injector only. *)

val set_profiling : t -> bool -> unit
(** Enable/disable hot-block profiling (block-cached and traced engines).
    Profiling reads the cycle counters around each block/trace visit and
    never changes simulated behaviour. *)

val profile_blocks : t -> Roload_obs.Profile.block list
(** Per-block profile snapshot (empty when profiling is off), with
    disassembly from the live block cache. *)

val step : t -> step_result
(** Execute one instruction. On [Trapped Ecall] the pc still points at the
    ecall; the kernel advances it after servicing. *)

val run_until_trap : ?max_steps:int -> t -> Trap.t option
(** Run until a trap occurs; [None] when [max_steps] was exhausted
    first. *)

type run_stop =
  | Exhausted  (** the fuel ran out; the caller re-checks its limits *)
  | Stop_pc  (** the pc reached [stop_at_pc], checked before executing *)
  | Trap of Trap.t

val run_steps : ?stop_at_pc:int -> fuel:int -> t -> run_stop
(** Run on the configured engine until a trap, until [fuel] instructions
    have retired, or until the pc is about to execute [stop_at_pc].
    Cycle accounting is identical across engines. *)

(** {2 Snapshots}

    An {!image} is an immutable capture of a paused machine: registers,
    physical memory (copy-on-write page images — O(touched pages)),
    cache/TLB contents and statistics, MMU fault counters, the
    decode/block caches, compiled traces and every metrics-visible
    counter.  One image can seed any number of restores and forks. *)

type image

val snapshot : t -> image
(** Capture the machine.  Cheap: page table pointers are shared
    copy-on-write with the live machine, only bookkeeping is copied. *)

val restore : t -> image -> unit
(** Put this machine back into the captured state, in place.  Object
    identities (cpu, memory, hierarchy, MMU) are preserved, so compiled
    traces — whose closures captured those identities — are restored
    too.  Replay after restore is byte-identical to the original run:
    architectural state, cycles, and every statistic. *)

val fork : image -> t
(** A fresh, fully independent machine in the captured state.  Physical
    pages are shared copy-on-write with the image; mutating a fork never
    perturbs the image, the parent, or sibling forks.  The fork has no
    MMU yet ({!attach_mmu}) and starts with an empty trace table — the
    image's compiled closures are bound to the parent's state — so
    trace-engine observability counters may diverge from a restored
    parent while all architectural state, cycles and cache/TLB
    statistics stay exact. *)

val attach_mmu : t -> Roload_mem.Mmu.t -> unit
(** Install a forked address space {e without} the cache flush
    {!set_mmu} performs: the fork's decode/block caches were copied from
    the image and remain exact for the forked memory contents. *)

val switch_context : t -> asid:int -> mmu:Roload_mem.Mmu.t -> unit
(** Context switch between coresident address spaces (the multi-process
    kernel's scheduler).  Keeps the PA-keyed decode/block caches — exact
    for frames shared read-only between processes — but swaps the active
    compiled-trace table to the one owned by [asid]: trace closures
    capture the MMU they were compiled under, so traces are per-address-
    space even though their entry keys are physical addresses.  ASIDs
    must not be reused for a different address space within a machine's
    lifetime (the kernel uses monotonic pids). *)

val mem_image : image -> Roload_mem.Phys_mem.image
(** The captured physical memory, for {!Roload_mem.Phys_mem.diff_images}
    — the page-level differential-state comparator. *)

val mmu_image : image -> Roload_mem.Mmu.image option
(** The captured MMU state (TLBs, fault counters), used by the fork path
    to seed a fresh MMU over the forked page table. *)

val image_config : image -> Config.t
(** The machine configuration the image was captured under. *)
