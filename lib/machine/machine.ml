(* The machine top: fetch/decode/execute with a deterministic cycle model.

   Timing is intentionally simple but shape-preserving:
   - every instruction costs 1 base cycle;
   - instruction fetch and data accesses are charged through the L1
     caches; TLB misses charge the page-table walk;
   - branches use a static predictor (backward taken / forward not-taken)
     with a mispredict penalty; jalr pays an indirect-jump penalty unless
     it is a return (modelled return-address stack);
   - mul/div pay multi-cycle latencies.
   A ld.ro costs exactly as much as the equivalent ld: the read-only+key
   check runs in parallel inside the MMU (the paper's central performance
   claim). *)

module Perm = Roload_mem.Perm
module Mmu = Roload_mem.Mmu
module Tlb = Roload_mem.Tlb
module Phys_mem = Roload_mem.Phys_mem
module Page_table = Roload_mem.Page_table
module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg
module Event = Roload_obs.Event
module Tracer = Roload_obs.Tracer

type costs = {
  base : int;
  branch_mispredict : int;
  jalr_indirect : int;
  mul : int;
  div : int;
  ptw_step : int; (* cycles per page-table-walk level on a TLB miss *)
}

let default_costs =
  { base = 1; branch_mispredict = 3; jalr_indirect = 2; mul = 3; div = 32; ptw_step = 8 }

(* Dynamic instruction-mix counters live in [Lower] (the trace compiler
   increments them from lowered closures); re-exported here so existing
   users keep saying [Machine.exec_counts]. *)
type exec_counts = Lower.exec_counts = {
  mutable loads : int;
  mutable stores : int;
  mutable roloads : int;
  mutable branches : int;
  mutable jumps : int;
  mutable indirect_jumps : int;
}

type engine = Block_cached | Single_step | Traced

let engine_name = function
  | Single_step -> "single"
  | Block_cached -> "block"
  | Traced -> "traced"

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "single" | "single-step" | "step" -> Ok Single_step
  | "block" | "block-cached" | "blocks" -> Ok Block_cached
  | "traced" | "trace" -> Ok Traced
  | _ -> Error (Printf.sprintf "unknown engine %S (valid: single, block, traced)" s)

(* Per-block profile accumulator (block-cached and traced engines), keyed
   by the block's (or trace entry's) start PA.  Profiling, like tracing,
   never touches simulated state — it reads the cycle/instret counters
   around each visit. *)
type prof = {
  mutable p_entries : int;
  mutable p_cycles : int64;
  mutable p_insts : int64;
}

(* The trace-compiled engine is the default; [ROLOAD_ENGINE] overrides it
   ([single] is the per-instruction reference interpreter, kept for
   differential testing; [block] the PR 2 block-cached engine).  An
   unrecognized value fails loudly — a silently misread engine name would
   invalidate benchmark comparisons. *)
let default_engine = ref Traced
let set_default_engine e = default_engine := e

(* The engine a [create] with no [?engine] argument would pick right now
   — the process default unless [ROLOAD_ENGINE] overrides it.  Harness
   front-ends use this to label their output. *)
let effective_engine () =
  match Sys.getenv_opt "ROLOAD_ENGINE" with
  | None | Some "" -> !default_engine
  | Some s -> (
    match engine_of_string s with
    | Ok e -> e
    | Error msg -> failwith ("ROLOAD_ENGINE: " ^ msg))

(* Dispatch-loop entries before a block is considered hot enough to seed
   a trace; ROLOAD_TRACE_HOT overrides (tests use 1 to force immediate
   compilation), and the differential fuzzer lowers the process default
   so short generated programs still exercise the trace compiler. *)
let default_hot_threshold' = ref 64
let default_hot_threshold () = !default_hot_threshold'
let set_default_hot_threshold n = default_hot_threshold' := max 1 n

let hot_threshold_of_env () =
  match Sys.getenv_opt "ROLOAD_TRACE_HOT" with
  | None | Some "" -> !default_hot_threshold'
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ -> !default_hot_threshold')

type t = {
  config : Config.t;
  cpu : Cpu.t;
  mem : Phys_mem.t;
  hierarchy : Roload_cache.Hierarchy.t;
  costs : costs;
  engine : engine;
  mutable mmu : Mmu.t option;
  decode_cache : (int, Inst.t * int) Hashtbl.t;
  blocks : (int, Block.t) Hashtbl.t; (* keyed by block start PA *)
  code_pages : Bytes.t;
      (* bitmap over PPNs: pages holding bytes of a memoized decoded
         instruction.  A store into such a page flushes the decode/block
         caches, keeping both engines correct under self-modifying code. *)
  mutable code_gen : int; (* bumped on every decode/block flush *)
  line_shift : int; (* log2 of the I-cache line size *)
  counts : exec_counts;
  mutable trace : (pc:int -> Inst.t -> unit) option;
  mutable tracer : Tracer.t option;
      (* the obs side channel; [None] costs one option check per retire *)
  roload_key_counts : int array;
      (* ld.ro retirements per requested key (1024 slots, one per 10-bit
         key) — always maintained, so metrics work with tracing off *)
  mutable block_enters : int;
  mutable block_hits : int; (* entries that found a pre-decoded block *)
  mutable block_decodes : int; (* slots lazily decoded and appended *)
  mutable traces : (int, Lower.compiled) Hashtbl.t;
      (* compiled traces of the *current* address space, keyed by
         entry-block start PA; flushed with the block cache so
         self-modifying code can never run a stale trace.  The field is
         mutable because each address space (ASID) owns its own table —
         see [trace_tables] — and [switch_context] swaps the active one. *)
  trace_tables : (int, (int, Lower.compiled) Hashtbl.t) Hashtbl.t;
      (* per-ASID compiled-trace tables.  A compiled closure captures the
         MMU (and I-TLB) of the address space it was compiled under
         ([lower_env]), so a trace is only ever valid for that address
         space even though the entry key is a physical address — two
         processes sharing a read-only code frame still translate data
         accesses through different page tables.  [t.traces] is always
         the table registered here under [t.asid]. *)
  mutable asid : int; (* owner of the active trace table; pid-stable *)
  hot_threshold : int; (* block entries before a trace is attempted *)
  mutable trace_enters : int; (* dispatches into a compiled trace *)
  mutable trace_retires : int; (* instructions retired inside traces *)
  mutable traces_compiled : int;
  mutable injections : int;
      (* roload-chaos faults applied to this machine's state — always
         counted, so the metrics snapshot is exact with tracing off *)
  mutable profile : (int, prof) Hashtbl.t option;
}

type step_result =
  | Continue
  | Trapped of Trap.t

let create ?(costs = default_costs) ?engine (config : Config.t) =
  let engine = match engine with Some e -> e | None -> effective_engine () in
  let traces = Hashtbl.create 64 in
  let trace_tables = Hashtbl.create 4 in
  Hashtbl.add trace_tables 0 traces;
  {
    config;
    cpu = Cpu.create ();
    mem = Phys_mem.create ~size:config.Config.phys_mem_bytes;
    hierarchy =
      Roload_cache.Hierarchy.create ~icache_config:config.Config.icache
        ~dcache_config:config.Config.dcache ~latencies:config.Config.latencies ();
    costs;
    engine;
    mmu = None;
    decode_cache = Hashtbl.create 4096;
    blocks = Hashtbl.create 1024;
    code_pages =
      Bytes.make ((config.Config.phys_mem_bytes lsr (Page_table.page_shift + 3)) + 1) '\000';
    code_gen = 0;
    line_shift = Roload_util.Bits.log2_exact config.Config.icache.Roload_cache.Cache.line_bytes;
    counts =
      { loads = 0; stores = 0; roloads = 0; branches = 0; jumps = 0; indirect_jumps = 0 };
    trace = None;
    tracer = None;
    roload_key_counts = Array.make (Roload_isa.Roload_ext.max_key + 1) 0;
    block_enters = 0;
    block_hits = 0;
    block_decodes = 0;
    traces;
    trace_tables;
    asid = 0;
    hot_threshold = hot_threshold_of_env ();
    trace_enters = 0;
    trace_retires = 0;
    traces_compiled = 0;
    injections = 0;
    profile = None;
  }

let cpu t = t.cpu
let mem t = t.mem
let config t = t.config
let hierarchy t = t.hierarchy
let counts t = t.counts
let engine t = t.engine

(* Drop every memoized decode: pre-decoded blocks, compiled traces, the
   per-pa decode memo and the code-page bitmap.  [code_gen] tells an
   in-flight block run that the block it is executing no longer exists. *)
let flush_code_caches t =
  Hashtbl.reset t.decode_cache;
  Hashtbl.reset t.blocks;
  (* every address space's traces, not just the active one: a store into a
     code page shared read-only across processes (or a kernel-side rewrite)
     invalidates traces compiled under any ASID *)
  Hashtbl.iter (fun _ tbl -> Hashtbl.reset tbl) t.trace_tables;
  Bytes.fill t.code_pages 0 (Bytes.length t.code_pages) '\000';
  t.code_gen <- t.code_gen + 1

let register_code_page t pa =
  let ppn = pa lsr Page_table.page_shift in
  let i = ppn lsr 3 in
  Bytes.unsafe_set t.code_pages i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.code_pages i) lor (1 lsl (ppn land 7))))

let page_holds_code t pa =
  let ppn = pa lsr Page_table.page_shift in
  Char.code (Bytes.unsafe_get t.code_pages (ppn lsr 3)) land (1 lsl (ppn land 7)) <> 0

let cached_blocks t = Hashtbl.length t.blocks
let cached_decodes t = Hashtbl.length t.decode_cache
let cached_traces t = Hashtbl.length t.traces

(* (Re)point the generic cache/TLB observer closures at the current
   tracer.  The mem/cache libraries stay obs-free: they call a closure,
   and this layer is the one place that builds events from it. *)
let wire_observers t =
  let icache = Roload_cache.Hierarchy.icache t.hierarchy in
  let dcache = Roload_cache.Hierarchy.dcache t.hierarchy in
  match t.tracer with
  | None ->
    Roload_cache.Cache.set_observer icache None;
    Roload_cache.Cache.set_observer dcache None;
    (match t.mmu with
    | None -> ()
    | Some m ->
      Tlb.set_observer (Mmu.itlb m) None;
      Tlb.set_observer (Mmu.dtlb m) None)
  | Some tr ->
    let cache_obs side =
      Some
        (fun ~addr ~write ~hit ~writeback ->
          Tracer.emit tr (Event.Cache_access { side; pa = addr; write; hit; writeback }))
    in
    Roload_cache.Cache.set_observer icache (cache_obs Event.I);
    Roload_cache.Cache.set_observer dcache (cache_obs Event.D);
    (match t.mmu with
    | None -> ()
    | Some m ->
      let tlb_obs side =
        Some (fun ~vpn ~hit -> Tracer.emit tr (Event.Tlb_access { side; vpn; hit }))
      in
      Tlb.set_observer (Mmu.itlb m) (tlb_obs Event.I);
      Tlb.set_observer (Mmu.dtlb m) (tlb_obs Event.D))

let set_mmu t mmu =
  t.mmu <- mmu;
  wire_observers t;
  flush_code_caches t

let set_trace t f = t.trace <- f

let set_tracer t tracer =
  t.tracer <- tracer;
  (match tracer with
  | None -> ()
  | Some tr -> Tracer.set_clock tr (fun () -> Cpu.cycles t.cpu));
  wire_observers t

let tracer t = t.tracer
let roload_key_counts t = t.roload_key_counts
let block_enters t = t.block_enters
let block_hits t = t.block_hits
let block_decodes t = t.block_decodes
let trace_enters t = t.trace_enters
let trace_retires t = t.trace_retires
let traces_compiled t = t.traces_compiled
let injections t = t.injections

(* roload-chaos entry point: count the applied fault and surface it on
   the tracer's kernel lane.  Never called outside a campaign. *)
let note_injection t ~kind ~addr =
  t.injections <- t.injections + 1;
  match t.tracer with
  | None -> ()
  | Some tr -> Tracer.emit tr (Event.Injected { kind; addr })

let set_profiling t on =
  match (on, t.profile) with
  | true, None -> t.profile <- Some (Hashtbl.create 256)
  | true, Some _ | false, None -> ()
  | false, Some _ -> t.profile <- None

let profile_blocks t =
  match t.profile with
  | None -> []
  | Some tbl ->
    Hashtbl.fold
      (fun pa p acc ->
        (* disassembly from the live block cache; a block flushed since it
           was profiled (set_mmu, self-modifying code) renders without one *)
        let disasm =
          match Hashtbl.find_opt t.blocks pa with
          | None -> []
          | Some b ->
            List.init (Block.length b) (fun i ->
                let s = Block.slot b i in
                Printf.sprintf "0x%08x  %s" s.Block.s_pa (Inst.to_string s.Block.s_inst))
        in
        {
          Roload_obs.Profile.pa;
          entries = p.p_entries;
          cycles = p.p_cycles;
          instructions = p.p_insts;
          disasm;
        }
        :: acc)
      tbl []

let mmu_exn t =
  match t.mmu with
  | Some m -> m
  | None -> failwith "Machine: no address space installed"

let charge_walk t steps = Cpu.add_cycles t.cpu (steps * t.costs.ptw_step)

(* ---- fetch ---- *)

let fetch_halfword t va =
  let mmu = mmu_exn t in
  match Mmu.translate mmu ~access:Perm.Fetch va with
  | Error f -> Error (Trap.of_mmu_fault ~pc:(Cpu.pc t.cpu) f)
  | Ok { pa; walk_steps; _ } ->
    charge_walk t walk_steps;
    Cpu.add_cycles t.cpu (Roload_cache.Hierarchy.access_ifetch t.hierarchy ~pa);
    Ok (pa, Phys_mem.read_u16 t.mem pa)

let fetch_decode t =
  let pc = Cpu.pc t.cpu in
  if pc land 1 <> 0 then
    Error (Trap.Misaligned_access { pc; va = pc; access = Perm.Fetch })
  else
    match fetch_halfword t pc with
    | Error tr -> Error tr
    | Ok (pa, hw) -> (
      match Hashtbl.find_opt t.decode_cache pa with
      | Some (inst, size) -> Ok (inst, size)
      | None ->
        let decoded =
          if Roload_isa.Decode.is_compressed_halfword hw then
            match Roload_isa.Compressed.decode hw with
            | Ok inst -> Ok (inst, 2, pa)
            | Error info -> Error (Trap.Illegal_instruction { pc; info })
          else
            match fetch_halfword t (pc + 2) with
            | Error tr -> Error tr
            | Ok (pa2, hw2) -> (
              let word = hw lor (hw2 lsl 16) in
              match Roload_isa.Decode.decode word with
              | Ok inst -> Ok (inst, 4, pa2)
              | Error info -> Error (Trap.Illegal_instruction { pc; info }))
        in
        match decoded with
        | Ok (inst, size, last_pa) ->
          Hashtbl.replace t.decode_cache pa (inst, size);
          register_code_page t pa;
          register_code_page t last_pa;
          Ok (inst, size)
        | Error tr -> Error tr)

(* ---- data access ---- *)

let check_alignment ~pc ~va ~width ~access =
  let bytes = Inst.width_bytes width in
  if va land (bytes - 1) <> 0 then Error (Trap.Misaligned_access { pc; va; access })
  else Ok ()

let read_phys t pa (width : Inst.width) ~unsigned =
  match width with
  | Inst.Byte ->
    let v = Int64.of_int (Phys_mem.read_u8 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:8
  | Inst.Half ->
    let v = Int64.of_int (Phys_mem.read_u16 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:16
  | Inst.Word ->
    let v = Int64.of_int (Phys_mem.read_u32 t.mem pa) in
    if unsigned then v else Roload_util.Bits.sign_extend v ~width:32
  | Inst.Double -> Phys_mem.read_u64 t.mem pa

let write_phys t pa (width : Inst.width) v =
  match width with
  | Inst.Byte -> Phys_mem.write_u8 t.mem pa (Int64.to_int (Int64.logand v 0xFFL))
  | Inst.Half -> Phys_mem.write_u16 t.mem pa (Int64.to_int (Int64.logand v 0xFFFFL))
  | Inst.Word -> Phys_mem.write_u32 t.mem pa (Int64.to_int (Int64.logand v 0xFFFFFFFFL))
  | Inst.Double -> Phys_mem.write_u64 t.mem pa v

let data_access t ~pc ~va ~access ~width ~unsigned ~store_value =
  let write = match access with Perm.Store -> true | Perm.Fetch | Perm.Load | Perm.Roload _ -> false in
  match check_alignment ~pc ~va ~width ~access with
  | Error tr -> Error tr
  | Ok () -> (
    match Mmu.translate (mmu_exn t) ~access va with
    | Error f -> Error (Trap.of_mmu_fault ~pc f)
    | Ok { pa; walk_steps; _ } ->
      charge_walk t walk_steps;
      Cpu.add_cycles t.cpu (Roload_cache.Hierarchy.access_data t.hierarchy ~pa ~write);
      if write then begin
        write_phys t pa width (Option.get store_value);
        (* Self-modifying code: a store into a page holding memoized
           decoded instructions invalidates every decode/block memo, for
           both engines. *)
        if page_holds_code t pa then flush_code_caches t;
        Ok 0L
      end
      else Ok (read_phys t pa width ~unsigned))

(* ---- execute ---- *)

let to_addr v = Int64.to_int v
(* Addresses in this simulation live well below 2^62; negative or huge
   int64 values map to negative ints and fault in the MMU's range check. *)

let branch_taken (c : Inst.branch_cond) a b =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int64.compare a b < 0
  | Bge -> Int64.compare a b >= 0
  | Bltu -> Roload_util.Bits.ult a b
  | Bgeu -> Roload_util.Bits.uge a b

let classify (inst : Inst.t) : Event.inst_class =
  match inst with
  | Inst.Lui _ | Inst.Auipc _ | Inst.Op_imm _ | Inst.Op_imm_w _ | Inst.Op _
  | Inst.Op_w _ | Inst.Fence ->
    Event.C_alu
  | Inst.Load _ -> Event.C_load
  | Inst.Load_ro _ -> Event.C_roload
  | Inst.Store _ -> Event.C_store
  | Inst.Branch _ -> Event.C_branch
  | Inst.Jal _ -> Event.C_jump
  | Inst.Jalr (rd, rs1, _) ->
    if Reg.to_int rd = 0 && Reg.to_int rs1 = 1 then Event.C_jump else Event.C_indirect
  | Inst.Mulop _ | Inst.Mulop_w _ -> Event.C_muldiv
  | Inst.Ecall | Inst.Ebreak -> Event.C_system

(* Execute one decoded instruction: everything [step] does after
   fetch/decode.  Shared by the single-step and block-cached engines. *)
let execute_inst t ~pc inst ~size =
  let cpu = t.cpu in
  (match t.trace with Some f -> f ~pc inst | None -> ());
  let next = pc + size in
  let result =
  (
    Cpu.add_cycles cpu t.costs.base;
    let continue_at pc' =
      Cpu.set_pc cpu pc';
      Cpu.retire cpu;
      Continue
    in
    match inst with
    | Inst.Lui (rd, imm) ->
      Cpu.set cpu rd (Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32);
      continue_at next
    | Inst.Auipc (rd, imm) ->
      let v =
        Int64.add (Int64.of_int pc)
          (Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32)
      in
      Cpu.set cpu rd v;
      continue_at next
    | Inst.Jal (rd, off) ->
      t.counts.jumps <- t.counts.jumps + 1;
      Cpu.set cpu rd (Int64.of_int next);
      continue_at (pc + Int64.to_int off)
    | Inst.Jalr (rd, rs1, imm) ->
      t.counts.jumps <- t.counts.jumps + 1;
      let target = Int64.logand (Int64.add (Cpu.get cpu rs1) imm) (-2L) in
      let is_return = Reg.to_int rd = 0 && Reg.to_int rs1 = 1 in
      if not is_return then begin
        t.counts.indirect_jumps <- t.counts.indirect_jumps + 1;
        Cpu.add_cycles cpu t.costs.jalr_indirect
      end;
      Cpu.set cpu rd (Int64.of_int next);
      continue_at (to_addr target)
    | Inst.Branch (c, rs1, rs2, off) ->
      t.counts.branches <- t.counts.branches + 1;
      let taken = branch_taken c (Cpu.get cpu rs1) (Cpu.get cpu rs2) in
      let backward = Int64.compare off 0L < 0 in
      let predicted_taken = backward in
      if taken <> predicted_taken then Cpu.add_cycles cpu t.costs.branch_mispredict;
      continue_at (if taken then pc + Int64.to_int off else next)
    | Inst.Load { width; unsigned; rd; rs1; imm } -> (
      t.counts.loads <- t.counts.loads + 1;
      let va = to_addr (Int64.add (Cpu.get cpu rs1) imm) in
      match
        data_access t ~pc ~va ~access:Perm.Load ~width ~unsigned ~store_value:None
      with
      | Error tr -> Trapped tr
      | Ok v ->
        Cpu.set cpu rd v;
        continue_at next)
    | Inst.Load_ro { width; unsigned; rd; rs1; key } -> (
      if not t.config.Config.roload_processor then
        (* Baseline Rocket: the custom-0 opcode is not implemented. *)
        Trapped (Trap.Illegal_instruction { pc; info = "ld.ro: no ROLoad support" })
      else begin
        t.counts.roloads <- t.counts.roloads + 1;
        t.roload_key_counts.(key land Roload_isa.Roload_ext.max_key) <-
          t.roload_key_counts.(key land Roload_isa.Roload_ext.max_key) + 1;
        let va = to_addr (Cpu.get cpu rs1) in
        (match t.tracer with
        | None -> ()
        | Some tr -> Tracer.emit tr (Event.Roload_issue { pc; va; key }));
        match
          data_access t ~pc ~va ~access:(Perm.Roload key) ~width ~unsigned
            ~store_value:None
        with
        | Error tr ->
          (match (t.tracer, tr) with
          | Some trc, Trap.Roload_page_fault { va; key_requested; page_key; page_perms; _ } ->
            Tracer.emit trc
              (Event.Roload_fault
                 { pc; va; key_requested; page_key;
                   page_read_only = Perm.read_only page_perms })
          | _ -> ());
          Trapped tr
        | Ok v ->
          Cpu.set cpu rd v;
          continue_at next
      end)
    | Inst.Store { width; rs2; rs1; imm } -> (
      t.counts.stores <- t.counts.stores + 1;
      let va = to_addr (Int64.add (Cpu.get cpu rs1) imm) in
      match
        data_access t ~pc ~va ~access:Perm.Store ~width ~unsigned:false
          ~store_value:(Some (Cpu.get cpu rs2))
      with
      | Error tr -> Trapped tr
      | Ok _ -> continue_at next)
    | Inst.Op_imm (op, rd, rs1, imm) ->
      Cpu.set cpu rd (Alu.op op (Cpu.get cpu rs1) imm);
      continue_at next
    | Inst.Op_imm_w (op, rd, rs1, imm) ->
      Cpu.set cpu rd (Alu.op_w op (Cpu.get cpu rs1) imm);
      continue_at next
    | Inst.Op (op, rd, rs1, rs2) ->
      Cpu.set cpu rd (Alu.op op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Op_w (op, rd, rs1, rs2) ->
      Cpu.set cpu rd (Alu.op_w op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Mulop (op, rd, rs1, rs2) ->
      (match op with
      | Inst.Mul | Inst.Mulh | Inst.Mulhsu | Inst.Mulhu -> Cpu.add_cycles cpu t.costs.mul
      | Inst.Div | Inst.Divu | Inst.Rem | Inst.Remu -> Cpu.add_cycles cpu t.costs.div);
      Cpu.set cpu rd (Alu.mulop op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Mulop_w (op, rd, rs1, rs2) ->
      (match op with
      | Inst.Mulw -> Cpu.add_cycles cpu t.costs.mul
      | Inst.Divw | Inst.Divuw | Inst.Remw | Inst.Remuw ->
        Cpu.add_cycles cpu (t.costs.div / 2));
      Cpu.set cpu rd (Alu.mulop_w op (Cpu.get cpu rs1) (Cpu.get cpu rs2));
      continue_at next
    | Inst.Ecall ->
      (* pc stays at the ecall; the kernel advances it after servicing. *)
      Cpu.retire cpu;
      Trapped Trap.Ecall
    | Inst.Ebreak ->
      Cpu.retire cpu;
      Trapped Trap.Breakpoint
    | Inst.Fence -> continue_at next)
  in
  (match t.tracer with
  | None -> ()
  | Some tr -> (
    (* [Retired] fires for instructions that architecturally retired:
       every [Continue], plus ecall/ebreak (which retire, then trap to the
       kernel).  A faulting instruction instead shows as its fault. *)
    match result with
    | Continue | Trapped (Trap.Ecall | Trap.Breakpoint) ->
      Tracer.emit tr (Event.Retired { pc; cls = classify inst })
    | Trapped _ -> ()));
  result

(* The per-instruction reference interpreter: fetch, decode (memoized per
   pa), execute.  The block-cached engine must match its observable
   behaviour — architectural state, traps, cycles, cache/TLB statistics —
   exactly. *)
let step t =
  match fetch_decode t with
  | Error tr -> Trapped tr
  | Ok (inst, size) -> execute_inst t ~pc:(Cpu.pc t.cpu) inst ~size

(* Run until a trap; the caller (kernel) decides whether to resume. *)
let run_until_trap ?(max_steps = max_int) t =
  let rec go n =
    if n >= max_steps then None
    else
      match step t with
      | Continue -> go (n + 1)
      | Trapped tr -> Some tr
  in
  go 0

(* ---- block-cached engine ---- *)

type run_stop =
  | Exhausted (* fuel ran out; the caller re-checks its limits *)
  | Stop_pc (* the pc reached [stop_at_pc] (checked before executing) *)
  | Trap of Trap.t

let page_mask = Page_table.page_size - 1

(* Execute starting at the current pc until a trap, the fuel runs out, or
   the pc hits [stop_at_pc].  Cycle accounting is identical to running
   [step] in a loop:

   - the block-entry [Mmu.translate] accounts the first slot's I-TLB
     access; every further slot replays a guaranteed I-TLB hit on the
     page's entry through [Tlb.rehit] (same clock tick, recency update and
     hit count as the full lookup — a straight-line run cannot evict its
     own page's entry, and if it somehow is evicted, [rehit] refuses with
     no accounting and we fall back to a full re-entry);
   - every slot's I-cache access goes through [Cache.access] when it
     touches a new line, and through the equivalent-accounting
     [Cache.rehit] when it stays on the line the previous slot fetched
     (within a block nothing can evict that line between slots: a page's
     64 lines map to 64 distinct sets, and a cross-page pc+2 decode fetch
     cannot victimise the just-used line in an 8-way set);
   - decode charges (the pc+2 fetch of an uncompressed instruction) are
     paid lazily, the first time a slot is appended, in execution order —
     exactly when the reference engine pays them — and are memoized per pa
     across blocks, so jumping into already-decoded code never re-charges.
*)

let prof_charge tbl ~pa ~cycles ~insts =
  let p =
    match Hashtbl.find_opt tbl pa with
    | Some p -> p
    | None ->
      let p = { p_entries = 0; p_cycles = 0L; p_insts = 0L } in
      Hashtbl.add tbl pa p;
      p
  in
  p.p_entries <- p.p_entries + 1;
  p.p_cycles <- Int64.add p.p_cycles cycles;
  p.p_insts <- Int64.add p.p_insts insts

(* Execute [block] starting at slot 0 (pc [pc0], already translated to
   [pa] with the I-TLB access accounted and [tlb_handle] captured by the
   caller).  Returns [None] to hand control back to the dispatch loop
   (block over: fall through or jump elsewhere), [Some r] to finish the
   run.  Shared by the block-cached and traced engines. *)
let exec_block t ~stop_at_pc ~(fuel : int ref) ~pc0 ~pa ~vpn ~tlb_handle ~block =
  let cpu = t.cpu in
  let mmu = mmu_exn t in
  let itlb = Mmu.itlb mmu in
  let hier = t.hierarchy in
  let page_pbase = pa land lnot page_mask in
  (
            let gen0 = t.code_gen in
            let icache_line = ref (-1) in
            let icache_handle = ref None in
            (* [run i ~pc]: execute slot [i]; pc is the slot's VA.  Returns
               [None] to hand control back to the outer loop (block over,
               fall through or jump elsewhere), [Some r] to finish. *)
            let rec run i ~pc =
              (* stop/fuel checks happen before any accounting; slot 0's
                 were done by the outer loop *)
              let stop_here =
                i > 0
                && (match stop_at_pc with Some s -> s = pc | None -> false)
              in
              if stop_here then Some Stop_pc
              else if i > 0 && !fuel <= 0 then Some Exhausted
              else if
                (* I-TLB accounting for this slot's fetch (slot 0: done by
                   the entry translate).  On rehit failure nothing was
                   accounted; re-enter through the outer loop, whose full
                   translate performs whatever accounting is due. *)
                i > 0
                &&
                match tlb_handle with
                | Some h -> Tlb.rehit itlb ~vpn h = None
                | None -> true
              then None
              else if i < Block.length block then begin
                let s = Block.slot block i in
                let line = s.Block.s_pa lsr t.line_shift in
                (if line <> !icache_line then begin
                   let cost, h = Roload_cache.Hierarchy.access_ifetch_handle hier ~pa:s.Block.s_pa in
                   Cpu.add_cycles cpu cost;
                   icache_line := line;
                   icache_handle := Some h
                 end
                 else
                   match !icache_handle with
                   | Some h when Roload_cache.Hierarchy.rehit_ifetch hier h -> ()
                   | Some _ | None ->
                     let cost, h = Roload_cache.Hierarchy.access_ifetch_handle hier ~pa:s.Block.s_pa in
                     Cpu.add_cycles cpu cost;
                     icache_handle := Some h);
                match execute_inst t ~pc s.Block.s_inst ~size:s.Block.s_size with
                | Trapped tr -> Some (Trap tr)
                | Continue ->
                  decr fuel;
                  if t.code_gen <> gen0 then None (* block flushed under us *)
                  else if Block.is_terminator s.Block.s_inst then None
                  else if i + 1 >= Block.length block && Block.closed block then None
                  else run (i + 1) ~pc:(pc + s.Block.s_size)
              end
              else if Block.closed block then None
              else begin
                (* Lazy extension: decode slot [i] at [pc], charging the
                   fetches exactly as the reference engine would. *)
                let off = pc land page_mask in
                let spa = page_pbase lor off in
                let line = spa lsr t.line_shift in
                (if line <> !icache_line then begin
                   let cost, h = Roload_cache.Hierarchy.access_ifetch_handle hier ~pa:spa in
                   Cpu.add_cycles cpu cost;
                   icache_line := line;
                   icache_handle := Some h
                 end
                 else
                   match !icache_handle with
                   | Some h when Roload_cache.Hierarchy.rehit_ifetch hier h -> ()
                   | Some _ | None ->
                     let cost, h = Roload_cache.Hierarchy.access_ifetch_handle hier ~pa:spa in
                     Cpu.add_cycles cpu cost;
                     icache_handle := Some h);
                let decoded =
                  match Hashtbl.find_opt t.decode_cache spa with
                  | Some (inst, size) -> Ok (inst, size)
                  | None -> (
                    let hw = Phys_mem.read_u16 t.mem spa in
                    if Roload_isa.Decode.is_compressed_halfword hw then (
                      match Roload_isa.Compressed.decode hw with
                      | Ok inst ->
                        Hashtbl.replace t.decode_cache spa (inst, 2);
                        register_code_page t spa;
                        Ok (inst, 2)
                      | Error info -> Error (Trap.Illegal_instruction { pc; info }))
                    else
                      (* uncompressed: charge the pc+2 halfword fetch *)
                      let fetch2 =
                        let va2 = pc + 2 in
                        if va2 lsr Page_table.page_shift = vpn then (
                          (* same page: a guaranteed I-TLB hit, replayed
                             with exact accounting *)
                          match tlb_handle with
                          | Some h when Tlb.rehit itlb ~vpn h <> None ->
                            Ok (page_pbase lor (off + 2))
                          | Some _ | None -> (
                            match Mmu.translate mmu ~access:Perm.Fetch va2 with
                            | Error f -> Error (Trap.of_mmu_fault ~pc f)
                            | Ok { pa = pa2; walk_steps; _ } ->
                              charge_walk t walk_steps;
                              Ok pa2))
                        else
                          match Mmu.translate mmu ~access:Perm.Fetch va2 with
                          | Error f -> Error (Trap.of_mmu_fault ~pc f)
                          | Ok { pa = pa2; walk_steps; _ } ->
                            charge_walk t walk_steps;
                            Ok pa2
                      in
                      match fetch2 with
                      | Error tr -> Error tr
                      | Ok pa2 -> (
                        Cpu.add_cycles cpu (Roload_cache.Hierarchy.access_ifetch hier ~pa:pa2);
                        let hw2 = Phys_mem.read_u16 t.mem pa2 in
                        let word = hw lor (hw2 lsl 16) in
                        match Roload_isa.Decode.decode word with
                        | Ok inst ->
                          Hashtbl.replace t.decode_cache spa (inst, 4);
                          register_code_page t spa;
                          register_code_page t pa2;
                          Ok (inst, 4)
                        | Error info -> Error (Trap.Illegal_instruction { pc; info })))
                in
                match decoded with
                | Error tr -> Some (Trap tr) (* not memoized, like the reference *)
                | Ok (inst, size) ->
                  Block.append block { Block.s_inst = inst; s_size = size; s_pa = spa };
                  t.block_decodes <- t.block_decodes + 1;
                  (match t.tracer with
                  | None -> ()
                  | Some tr -> Tracer.emit tr (Event.Block_decode { pa = spa }));
                  if Block.is_terminator inst || off + size >= Page_table.page_size then
                    Block.close block;
                  match execute_inst t ~pc inst ~size with
                  | Trapped tr -> Some (Trap tr)
                  | Continue ->
                    decr fuel;
                    if t.code_gen <> gen0 then None
                    else if Block.is_terminator inst then None
                    else if i + 1 >= Block.length block && Block.closed block then None
                    else run (i + 1) ~pc:(pc + size)
              end
            in
            match t.profile with
            | None -> run 0 ~pc:pc0
            | Some tbl ->
              (* attribute this block visit's cycles/instructions to the
                 block's start PA; reading the counters is side-effect-free *)
              let cyc0 = Cpu.cycles cpu and ins0 = Cpu.instret cpu in
              let r = run 0 ~pc:pc0 in
              prof_charge tbl ~pa
                ~cycles:(Int64.sub (Cpu.cycles cpu) cyc0)
                ~insts:(Int64.sub (Cpu.instret cpu) ins0);
              r)

let run_blocks t ~stop_at_pc ~fuel =
  let cpu = t.cpu in
  let mmu = mmu_exn t in
  let itlb = Mmu.itlb mmu in
  let fuel = ref fuel in
  let finished = ref None in
  while !finished = None do
    if !fuel <= 0 then finished := Some Exhausted
    else begin
      let pc0 = Cpu.pc cpu in
      match stop_at_pc with
      | Some s when s = pc0 -> finished := Some Stop_pc
      | _ ->
        if pc0 land 1 <> 0 then
          finished := Some (Trap (Trap.Misaligned_access { pc = pc0; va = pc0; access = Perm.Fetch }))
        else begin
          match Mmu.translate mmu ~access:Perm.Fetch pc0 with
          | Error f -> finished := Some (Trap (Trap.of_mmu_fault ~pc:pc0 f))
          | Ok { pa; walk_steps; _ } ->
            charge_walk t walk_steps;
            let vpn = pc0 lsr Page_table.page_shift in
            let tlb_handle = Tlb.peek itlb ~vpn in
            let block, cached =
              match Hashtbl.find_opt t.blocks pa with
              | Some b -> (b, true)
              | None ->
                let b = Block.create ~start_pa:pa in
                Hashtbl.add t.blocks pa b;
                (b, false)
            in
            t.block_enters <- t.block_enters + 1;
            if cached then t.block_hits <- t.block_hits + 1;
            (match t.tracer with
            | None -> ()
            | Some tr -> Tracer.emit tr (Event.Block_enter { pa; cached }));
            (match exec_block t ~stop_at_pc ~fuel ~pc0 ~pa ~vpn ~tlb_handle ~block with
            | Some r -> finished := Some r
            | None -> ())
        end
    end
  done;
  match !finished with Some r -> r | None -> assert false

(* ---- trace-compiled engine ---- *)

let lower_env t =
  let mmu = mmu_exn t in
  {
    Lower.cpu = t.cpu;
    regs = Cpu.regs t.cpu;
    mem = t.mem;
    hier = t.hierarchy;
    mmu;
    itlb = Mmu.itlb mmu;
    counts = t.counts;
    key_counts = t.roload_key_counts;
    line_shift = t.line_shift;
    c_base = t.costs.base;
    c_mispredict = t.costs.branch_mispredict;
    c_jalr_indirect = t.costs.jalr_indirect;
    c_mul = t.costs.mul;
    c_div = t.costs.div;
    c_ptw = t.costs.ptw_step;
    page_holds_code = (fun pa -> page_holds_code t pa);
    flush_code = (fun () -> flush_code_caches t);
    find_trace = (fun pa -> Hashtbl.find_opt t.traces pa);
    code_gen = (fun () -> t.code_gen);
  }

(* Try to stitch and compile a trace rooted at [block].  The static
   resolver mirrors the MMU's user-fetch check without touching TLB or
   cache state; a wrong answer only wastes a compile — every placement is
   re-verified at run time by the trace's seams. *)
let attempt_compile t ~entry_va ~entry_pa ~block =
  let pt = Mmu.page_table (mmu_exn t) in
  let resolve va =
    if va < 0 || va land 1 <> 0 then None
    else
      match Page_table.walk pt va with
      | Error _ -> None
      | Ok { Page_table.pte; _ } ->
        if Roload_mem.Pte.valid pte && Roload_mem.Pte.user pte
           && Perm.allows (Roload_mem.Pte.perms pte) Perm.Fetch
        then Some ((Roload_mem.Pte.ppn pte lsl Page_table.page_shift) lor (va land page_mask))
        else None
  in
  let ok = Lower.compilable ~roload_enabled:t.config.Config.roload_processor in
  match
    Trace.build ~entry_va ~entry_pa ~entry_block:block ~resolve
      ~block_at:(fun pa -> Hashtbl.find_opt t.blocks pa)
      ~ok
  with
  | None -> Block.set_no_trace block
  | Some plan ->
    Hashtbl.replace t.traces entry_pa (Lower.compile (lower_env t) plan);
    t.traces_compiled <- t.traces_compiled + 1

(* The traced engine: the block-cached dispatch loop, plus hot-path
   promotion.  Blocks record entry counts and taken successors; once a
   block is hot its trace is stitched ([Trace.build]) and lowered
   ([Lower.compile]), and later dispatches that land on the trace entry
   run the compiled closure instead of interpreting slots.

   Traces only run on "plain" dispatches: no instruction-trace hook, no
   obs tracer, no [stop_at_pc], and enough fuel for a full pass — any of
   those falls back to the block engine, whose per-slot path emits the
   events and honors the stop.  Correctness never depends on when or
   whether a trace runs. *)
let run_traced t ~stop_at_pc ~fuel =
  let cpu = t.cpu in
  let mmu = mmu_exn t in
  let itlb = Mmu.itlb mmu in
  let fuel = ref fuel in
  let finished = ref None in
  let usable = t.trace = None && t.tracer = None && stop_at_pc = None in
  (* the block that just finished, for successor-edge recording *)
  let prev_block = ref None in
  (* a seam translation that already accounted its I-TLB access but
     resolved to an unplanned PA: run that block without re-translating *)
  let pending = ref None in
  while !finished = None do
    if !fuel <= 0 then finished := Some Exhausted
    else begin
      let pc0 = Cpu.pc cpu in
      match stop_at_pc with
      | Some s when s = pc0 -> finished := Some Stop_pc
      | _ ->
        if pc0 land 1 <> 0 then
          finished :=
            Some (Trap (Trap.Misaligned_access { pc = pc0; va = pc0; access = Perm.Fetch }))
        else begin
          let trans =
            match !pending with
            | Some (p, pa) when p = pc0 ->
              pending := None;
              Ok pa
            | _ -> (
              pending := None;
              match Mmu.translate mmu ~access:Perm.Fetch pc0 with
              | Error f -> Error f
              | Ok { pa; walk_steps; _ } ->
                charge_walk t walk_steps;
                Ok pa)
          in
          match trans with
          | Error f -> finished := Some (Trap (Trap.of_mmu_fault ~pc:pc0 f))
          | Ok pa ->
            let vpn = pc0 lsr Page_table.page_shift in
            let tlb_handle = Tlb.peek itlb ~vpn in
            (match !prev_block with
            | Some pb ->
              Block.note_successor pb pc0;
              prev_block := None
            | None -> ());
            let ran_trace =
              usable
              &&
              match tlb_handle with
              | None -> false
              | Some h -> (
                match Hashtbl.find_opt t.traces pa with
                | Some c
                  when c.Lower.c_entry_va = pc0 && !fuel >= c.Lower.c_max_retire ->
                  t.trace_enters <- t.trace_enters + 1;
                  let cyc0 = Cpu.cycles cpu and ins0 = Cpu.instret cpu in
                  let r = c.Lower.c_run ~fuel:!fuel h in
                  let dins = Int64.to_int (Int64.sub (Cpu.instret cpu) ins0) in
                  fuel := !fuel - dins;
                  t.trace_retires <- t.trace_retires + dins;
                  (match t.profile with
                  | None -> ()
                  | Some tbl ->
                    prof_charge tbl ~pa
                      ~cycles:(Int64.sub (Cpu.cycles cpu) cyc0)
                      ~insts:(Int64.of_int dins));
                  (match r with
                  | Lower.T_redispatch -> ()
                  | Lower.T_trap tr -> finished := Some (Trap tr)
                  | Lower.T_enter_block { eb_pc; eb_pa } -> pending := Some (eb_pc, eb_pa));
                  true
                | _ -> false)
            in
            if not ran_trace then begin
              let block, cached =
                match Hashtbl.find_opt t.blocks pa with
                | Some b -> (b, true)
                | None ->
                  let b = Block.create ~start_pa:pa in
                  Hashtbl.add t.blocks pa b;
                  (b, false)
              in
              t.block_enters <- t.block_enters + 1;
              if cached then t.block_hits <- t.block_hits + 1;
              (match t.tracer with
              | None -> ()
              | Some tr -> Tracer.emit tr (Event.Block_enter { pa; cached }));
              Block.note_enter block;
              if
                usable && cached && Block.closed block
                && (not (Block.no_trace block))
                && Block.hot block >= t.hot_threshold
                && not (Hashtbl.mem t.traces pa)
              then attempt_compile t ~entry_va:pc0 ~entry_pa:pa ~block;
              match exec_block t ~stop_at_pc ~fuel ~pc0 ~pa ~vpn ~tlb_handle ~block with
              | Some r -> finished := Some r
              | None -> prev_block := Some block
            end
        end
    end
  done;
  match !finished with Some r -> r | None -> assert false

let run_single t ~stop_at_pc ~fuel =
  let cpu = t.cpu in
  let rec go fuel =
    if fuel <= 0 then Exhausted
    else
      let pc = Cpu.pc cpu in
      match stop_at_pc with
      | Some s when s = pc -> Stop_pc
      | _ -> (
        match step t with
        | Trapped tr -> Trap tr
        | Continue -> go (fuel - 1))
  in
  go fuel

(* The kernel-facing run loop entry point.  [stop_at_pc] pauses {i before}
   executing the instruction at that pc; [fuel] bounds the number of
   retired instructions. *)
let run_steps ?stop_at_pc ~fuel t =
  match t.engine with
  | Block_cached -> run_blocks t ~stop_at_pc ~fuel
  | Single_step -> run_single t ~stop_at_pc ~fuel
  | Traced -> run_traced t ~stop_at_pc ~fuel

(* ---- snapshots ----

   An [image] captures everything a paused machine needs to replay
   byte-identically: architectural state (cpu, physical memory), timing
   state (cache/TLB contents, clocks and statistics), the MMU fault
   counters, the decode/block caches (decode charges are paid lazily
   once per pa, so the set of memoized decodes affects *when* cycles are
   charged — it must be captured for exactness), the code-page bitmap
   and generation, and every metrics-visible counter.

   [restore] puts the same machine object back into the captured state.
   Object identities (cpu, register array, physical memory, hierarchy,
   MMU) are preserved, which is what lets compiled traces be restored
   too: their closures captured those identities at compile time.

   [fork] builds a new, fully independent machine from the image.
   Compiled traces are dropped — their closures capture the *parent's*
   cpu/regs/mem, so running them in a fork would corrupt the parent.
   Block hotness rides along in the copied block cache, so a fork
   re-compiles its traces on first re-dispatch of each hot block; traces
   never change what is simulated, so the fork stays architecturally
   bit-identical to a restored parent (trace-engine counters may
   differ). *)

let copy_counts (c : exec_counts) =
  {
    loads = c.loads;
    stores = c.stores;
    roloads = c.roloads;
    branches = c.branches;
    jumps = c.jumps;
    indirect_jumps = c.indirect_jumps;
  }

let assign_counts ~(dst : exec_counts) (src : exec_counts) =
  dst.loads <- src.loads;
  dst.stores <- src.stores;
  dst.roloads <- src.roloads;
  dst.branches <- src.branches;
  dst.jumps <- src.jumps;
  dst.indirect_jumps <- src.indirect_jumps

type image = {
  im_config : Config.t;
  im_costs : costs;
  im_engine : engine;
  im_hot_threshold : int;
  im_cpu : Cpu.image;
  im_mem : Phys_mem.image;
  im_hier : Roload_cache.Hierarchy.image;
  im_mmu : Mmu.image option;
  im_decode : (int, Inst.t * int) Hashtbl.t; (* values immutable: shallow copy *)
  im_blocks : (int, Block.t) Hashtbl.t; (* deep copies, frozen *)
  im_traces : (int, Lower.compiled) Hashtbl.t;
      (* closures bound to the parent's identities: restore-only *)
  im_code_pages : Bytes.t;
  im_code_gen : int;
  im_counts : exec_counts;
  im_key_counts : int array;
  im_block_enters : int;
  im_block_hits : int;
  im_block_decodes : int;
  im_trace_enters : int;
  im_trace_retires : int;
  im_traces_compiled : int;
  im_injections : int;
}

let copy_blocks tbl =
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  Hashtbl.iter (fun pa b -> Hashtbl.add out pa (Block.copy b)) tbl;
  out

let snapshot t =
  {
    im_config = t.config;
    im_costs = t.costs;
    im_engine = t.engine;
    im_hot_threshold = t.hot_threshold;
    im_cpu = Cpu.snapshot t.cpu;
    im_mem = Phys_mem.snapshot t.mem;
    im_hier = Roload_cache.Hierarchy.snapshot t.hierarchy;
    im_mmu = Option.map Mmu.snapshot t.mmu;
    im_decode = Hashtbl.copy t.decode_cache;
    im_blocks = copy_blocks t.blocks;
    im_traces = Hashtbl.copy t.traces;
    im_code_pages = Bytes.copy t.code_pages;
    im_code_gen = t.code_gen;
    im_counts = copy_counts t.counts;
    im_key_counts = Array.copy t.roload_key_counts;
    im_block_enters = t.block_enters;
    im_block_hits = t.block_hits;
    im_block_decodes = t.block_decodes;
    im_trace_enters = t.trace_enters;
    im_trace_retires = t.trace_retires;
    im_traces_compiled = t.traces_compiled;
    im_injections = t.injections;
  }

let mem_image img = img.im_mem
let mmu_image img = img.im_mmu
let image_config img = img.im_config

(* Refill a live hashtable from an image table without replacing it —
   closures (trace chaining, lower_env) hold the table's identity. *)
let refill ~copy dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.add dst k (copy v)) src

let restore t img =
  Cpu.restore t.cpu img.im_cpu;
  Phys_mem.restore t.mem img.im_mem;
  Roload_cache.Hierarchy.restore t.hierarchy img.im_hier;
  (match (t.mmu, img.im_mmu) with
  | Some m, Some im -> Mmu.restore m im
  | (Some _ | None), _ -> ());
  refill ~copy:Fun.id t.decode_cache img.im_decode;
  refill ~copy:Block.copy t.blocks img.im_blocks;
  refill ~copy:Fun.id t.traces img.im_traces;
  (* snapshots capture the single scheduled address space; traces
     compiled under any other ASID belong to processes whose state the
     restore just discarded *)
  Hashtbl.iter (fun asid tbl -> if asid <> t.asid then Hashtbl.reset tbl) t.trace_tables;
  Bytes.blit img.im_code_pages 0 t.code_pages 0 (Bytes.length t.code_pages);
  t.code_gen <- img.im_code_gen;
  assign_counts ~dst:t.counts img.im_counts;
  Array.blit img.im_key_counts 0 t.roload_key_counts 0 (Array.length t.roload_key_counts);
  t.block_enters <- img.im_block_enters;
  t.block_hits <- img.im_block_hits;
  t.block_decodes <- img.im_block_decodes;
  t.trace_enters <- img.im_trace_enters;
  t.trace_retires <- img.im_trace_retires;
  t.traces_compiled <- img.im_traces_compiled;
  t.injections <- img.im_injections

let fork img =
  let config = img.im_config in
  let traces = Hashtbl.create 64 in
  (* parent-bound closures: never forked *)
  let trace_tables = Hashtbl.create 4 in
  Hashtbl.add trace_tables 0 traces;
  let t =
    {
      config;
      cpu = Cpu.create ();
      mem = Phys_mem.fork img.im_mem;
      hierarchy =
        Roload_cache.Hierarchy.create ~icache_config:config.Config.icache
          ~dcache_config:config.Config.dcache ~latencies:config.Config.latencies ();
      costs = img.im_costs;
      engine = img.im_engine;
      mmu = None;
      decode_cache = Hashtbl.copy img.im_decode;
      blocks = copy_blocks img.im_blocks;
      code_pages = Bytes.copy img.im_code_pages;
      code_gen = img.im_code_gen;
      line_shift =
        Roload_util.Bits.log2_exact config.Config.icache.Roload_cache.Cache.line_bytes;
      counts = copy_counts img.im_counts;
      trace = None;
      tracer = None;
      roload_key_counts = Array.copy img.im_key_counts;
      block_enters = img.im_block_enters;
      block_hits = img.im_block_hits;
      block_decodes = img.im_block_decodes;
      traces;
      trace_tables;
      asid = 0;
      hot_threshold = img.im_hot_threshold;
      trace_enters = img.im_trace_enters;
      trace_retires = img.im_trace_retires;
      traces_compiled = img.im_traces_compiled;
      injections = img.im_injections;
      profile = None;
    }
  in
  Cpu.restore t.cpu img.im_cpu;
  Roload_cache.Hierarchy.restore t.hierarchy img.im_hier;
  t

(* Install a forked address space without the cache flush [set_mmu]
   performs: the fork's decode/block caches were copied from the image
   and are exact for the forked memory contents. *)
let attach_mmu t mmu =
  t.mmu <- Some mmu;
  wire_observers t

(* Context switch between coresident address spaces (the multi-process
   kernel's scheduler).  Unlike [set_mmu] this does NOT flush the
   decode/block caches — they are keyed by physical address, so entries
   for frames shared read-only between processes stay exact — but it
   does swap the active compiled-trace table: trace closures capture the
   MMU they were compiled under, so each ASID keeps its own table and a
   process can never run a trace that translates through another
   process's page table.  ASIDs are never reused within a machine's
   lifetime (the kernel uses monotonic pids). *)
let switch_context t ~asid ~mmu =
  if asid <> t.asid then begin
    let table =
      match Hashtbl.find_opt t.trace_tables asid with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 64 in
        Hashtbl.add t.trace_tables asid tbl;
        tbl
    in
    t.traces <- table;
    t.asid <- asid
  end;
  t.mmu <- Some mmu;
  wire_observers t
