(* RV64 integer arithmetic semantics, including the M-extension edge cases
   (division by zero, signed overflow) as mandated by the RISC-V spec. *)

let sext32 v = Int64.of_int32 (Int64.to_int32 v)

let shamt6 v = Int64.to_int (Int64.logand v 0x3FL)
let shamt5 v = Int64.to_int (Int64.logand v 0x1FL)

let bool64 b = if b then 1L else 0L

let op (o : Roload_isa.Inst.alu_op) a b =
  match o with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Sll -> Int64.shift_left a (shamt6 b)
  | Slt -> bool64 (Int64.compare a b < 0)
  | Sltu -> bool64 (Roload_util.Bits.ult a b)
  | Xor -> Int64.logxor a b
  | Srl -> Int64.shift_right_logical a (shamt6 b)
  | Sra -> Int64.shift_right a (shamt6 b)
  | Or -> Int64.logor a b
  | And -> Int64.logand a b

let op_w (o : Roload_isa.Inst.alu_w_op) a b =
  match o with
  | Addw -> sext32 (Int64.add a b)
  | Subw -> sext32 (Int64.sub a b)
  | Sllw -> sext32 (Int64.shift_left a (shamt5 b))
  | Srlw ->
    let a32 = Int64.logand a 0xFFFFFFFFL in
    sext32 (Int64.shift_right_logical a32 (shamt5 b))
  | Sraw -> sext32 (Int64.shift_right (sext32 a) (shamt5 b))

(* High 64 bits of the unsigned 128-bit product, by 32-bit limbs. *)
let mulhu a b =
  let lo32 = 0xFFFFFFFFL in
  let a0 = Int64.logand a lo32 and a1 = Int64.shift_right_logical a 32 in
  let b0 = Int64.logand b lo32 and b1 = Int64.shift_right_logical b 32 in
  let t = Int64.mul a0 b0 in
  let k = Int64.shift_right_logical t 32 in
  let t1 = Int64.add (Int64.mul a1 b0) k in
  let k1 = Int64.logand t1 lo32 in
  let k2 = Int64.shift_right_logical t1 32 in
  let t2 = Int64.add (Int64.mul a0 b1) k1 in
  Int64.add (Int64.add (Int64.mul a1 b1) k2) (Int64.shift_right_logical t2 32)

let mulh a b =
  let u = mulhu a b in
  let u = if Int64.compare a 0L < 0 then Int64.sub u b else u in
  if Int64.compare b 0L < 0 then Int64.sub u a else u

let mulhsu a b =
  let u = mulhu a b in
  if Int64.compare a 0L < 0 then Int64.sub u b else u

let div_signed a b =
  if b = 0L then -1L
  else if a = Int64.min_int && b = -1L then Int64.min_int
  else Int64.div a b

let rem_signed a b =
  if b = 0L then a
  else if a = Int64.min_int && b = -1L then 0L
  else Int64.rem a b

let div_unsigned a b = if b = 0L then -1L else Roload_util.Bits.udiv a b
let rem_unsigned a b = if b = 0L then a else Roload_util.Bits.urem a b

let mulop (o : Roload_isa.Inst.mul_op) a b =
  match o with
  | Mul -> Int64.mul a b
  | Mulh -> mulh a b
  | Mulhsu -> mulhsu a b
  | Mulhu -> mulhu a b
  | Div -> div_signed a b
  | Divu -> div_unsigned a b
  | Rem -> rem_signed a b
  | Remu -> rem_unsigned a b

(* Per-op function selectors for the trace-compiled engine: resolve the
   operator variant once at trace-compile time so the lowered closure
   applies a direct [int64 -> int64 -> int64] with no dispatch.  Each
   returned function computes exactly what the matching [op]/[op_w]/
   [mulop]/[mulop_w] case computes. *)

let sll a b = Int64.shift_left a (shamt6 b)
let slt a b = bool64 (Int64.compare a b < 0)
let sltu a b = bool64 (Roload_util.Bits.ult a b)
let srl a b = Int64.shift_right_logical a (shamt6 b)
let sra a b = Int64.shift_right a (shamt6 b)

let op_fn (o : Roload_isa.Inst.alu_op) : int64 -> int64 -> int64 =
  match o with
  | Add -> Int64.add
  | Sub -> Int64.sub
  | Sll -> sll
  | Slt -> slt
  | Sltu -> sltu
  | Xor -> Int64.logxor
  | Srl -> srl
  | Sra -> sra
  | Or -> Int64.logor
  | And -> Int64.logand

let addw a b = sext32 (Int64.add a b)
let subw a b = sext32 (Int64.sub a b)
let sllw a b = sext32 (Int64.shift_left a (shamt5 b))

let srlw a b =
  let a32 = Int64.logand a 0xFFFFFFFFL in
  sext32 (Int64.shift_right_logical a32 (shamt5 b))

let sraw a b = sext32 (Int64.shift_right (sext32 a) (shamt5 b))

let op_w_fn (o : Roload_isa.Inst.alu_w_op) : int64 -> int64 -> int64 =
  match o with Addw -> addw | Subw -> subw | Sllw -> sllw | Srlw -> srlw | Sraw -> sraw

let mulop_fn (o : Roload_isa.Inst.mul_op) : int64 -> int64 -> int64 =
  match o with
  | Mul -> Int64.mul
  | Mulh -> mulh
  | Mulhsu -> mulhsu
  | Mulhu -> mulhu
  | Div -> div_signed
  | Divu -> div_unsigned
  | Rem -> rem_signed
  | Remu -> rem_unsigned

let mulop_w (o : Roload_isa.Inst.mul_w_op) a b =
  let a32 = sext32 a and b32 = sext32 b in
  match o with
  | Mulw -> sext32 (Int64.mul a32 b32)
  | Divw ->
    if b32 = 0L then -1L
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then sext32 a32
    else sext32 (Int64.div a32 b32)
  | Divuw ->
    let au = Int64.logand a 0xFFFFFFFFL and bu = Int64.logand b 0xFFFFFFFFL in
    if bu = 0L then -1L else sext32 (Int64.div au bu)
  | Remw ->
    if b32 = 0L then sext32 a32
    else if a32 = Int64.of_int32 Int32.min_int && b32 = -1L then 0L
    else sext32 (Int64.rem a32 b32)
  | Remuw ->
    let au = Int64.logand a 0xFFFFFFFFL and bu = Int64.logand b 0xFFFFFFFFL in
    if bu = 0L then sext32 au else sext32 (Int64.rem au bu)

let mulop_w_fn (o : Roload_isa.Inst.mul_w_op) : int64 -> int64 -> int64 =
  match o with
  | Mulw -> fun a b -> mulop_w Roload_isa.Inst.Mulw a b
  | Divw -> fun a b -> mulop_w Roload_isa.Inst.Divw a b
  | Divuw -> fun a b -> mulop_w Roload_isa.Inst.Divuw a b
  | Remw -> fun a b -> mulop_w Roload_isa.Inst.Remw a b
  | Remuw -> fun a b -> mulop_w Roload_isa.Inst.Remuw a b

(* Branch comparison selector, same idea: the condition resolved once. *)
let beq a b = Int64.equal a b
let bne a b = not (Int64.equal a b)
let blt a b = Int64.compare a b < 0
let bge a b = Int64.compare a b >= 0

let branch_fn (c : Roload_isa.Inst.branch_cond) : int64 -> int64 -> bool =
  match c with
  | Beq -> beq
  | Bne -> bne
  | Blt -> blt
  | Bge -> bge
  | Bltu -> Roload_util.Bits.ult
  | Bgeu -> Roload_util.Bits.uge
