(* Superblock/trace selection and stitching for the trace-compiled engine.

   A trace is a linear sequence of already-decoded, closed basic blocks
   glued across the edges execution actually takes: static edges (jal,
   page-end fallthrough) are followed unconditionally, dynamic edges
   (conditional branches, jalr) only once the dispatch loop has recorded
   the same successor enough times in a row.  The stitcher works purely
   on cached [Block.t]s plus an accounting-free static address resolver —
   it never touches simulated state, so a failed or abandoned stitch is
   invisible to the program under test.

   Everything here is a heuristic *plan*; the lowering (see [Lower])
   re-verifies every dynamic assumption at run time (seam translations
   compare physical addresses, terminators compare the computed next pc
   against the stitched successor) and side-exits back to the block
   engine on any mismatch, so a wrong plan can cost time but never
   correctness. *)

module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg

(* Stitching limits: enough to swallow a hot inner loop with a few calls,
   small enough that compile time and side-exit waste stay negligible. *)
let max_blocks = 16
let max_slots = 256

(* Dynamic edges need this many consecutive identical successors before
   they are considered biased enough to stitch through. *)
let stability_threshold = 8

(* How a segment's block ends, with every static quantity pre-resolved
   against the segment's virtual placement. *)
type term =
  | K_jal of { rd : Reg.t; target_va : int }
  | K_jalr of { rd : Reg.t; rs1 : Reg.t; imm : int64; is_return : bool }
  | K_branch of {
      cond : Inst.branch_cond;
      rs1 : Reg.t;
      rs2 : Reg.t;
      taken_va : int;
      fall_va : int;
      predicted_taken : bool;
    }
  | K_fall of { next_va : int }  (** closed at the page end, no terminator *)

(* How execution leaves the segment when the stitched expectation holds. *)
type link =
  | L_seg  (** fall into the next segment of the trace *)
  | L_loop  (** back to segment 0 (the trace entry) *)
  | L_exit  (** leave the trace; the dispatch loop takes over *)

type seg = {
  sg_va : int;  (** VA of the first slot *)
  sg_pa : int;  (** static PA of the first slot (re-verified at seams) *)
  sg_block : Block.t;
  sg_term_va : int;  (** VA of the last slot *)
  sg_end_va : int;  (** VA just past the last slot *)
  sg_term : term;
  sg_link : link;
}

type plan = {
  p_entry_va : int;
  p_entry_pa : int;
  p_segs : seg array;
  p_max_retire : int;  (** slots retired by one front-to-back pass *)
}

let term_position b ~va =
  let n = Block.length b in
  let rec go i v =
    let s = Block.slot b i in
    if i = n - 1 then (v, s) else go (i + 1) (v + s.Block.s_size)
  in
  go 0 va

let term_of b ~va =
  let term_va, last = term_position b ~va in
  let end_va = term_va + last.Block.s_size in
  let term =
    match last.Block.s_inst with
    | Inst.Jal (rd, off) -> K_jal { rd; target_va = term_va + Int64.to_int off }
    | Inst.Jalr (rd, rs1, imm) ->
      K_jalr { rd; rs1; imm; is_return = Reg.to_int rd = 0 && Reg.to_int rs1 = 1 }
    | Inst.Branch (cond, rs1, rs2, off) ->
      K_branch
        {
          cond;
          rs1;
          rs2;
          taken_va = term_va + Int64.to_int off;
          fall_va = end_va;
          predicted_taken = Int64.compare off 0L < 0;
        }
    | Inst.Ecall | Inst.Ebreak ->
      (* excluded from traces by the [ok] predicate *)
      assert false
    | _ -> K_fall { next_va = end_va }
  in
  (term_va, end_va, term)

(* The successor worth stitching through, if any: static edges always,
   dynamic edges only when the recorded successor is stable and (for
   branches) is actually one of the two architectural targets. *)
let preferred_successor b term =
  match term with
  | K_jal { target_va; _ } -> Some target_va
  | K_fall { next_va } -> Some next_va
  | K_branch { taken_va; fall_va; _ } -> (
    match Block.successor b with
    | Some (va, n) when n >= stability_threshold && (va = taken_va || va = fall_va) ->
      Some va
    | _ -> None)
  | K_jalr { is_return = _; _ } -> (
    match Block.successor b with
    | Some (va, n) when n >= stability_threshold -> Some va
    | _ -> None)

(* Build a trace plan rooted at [entry_block].

   [resolve va] is the accounting-free static resolver: the PA the MMU
   would translate [va] to for a user-mode fetch right now, or [None].
   [block_at pa] finds a cached block starting at [pa].  [ok b] is the
   lowering's compilability predicate (no ecall/ebreak, no ld.ro on a
   baseline machine, ...).

   Returns [None] when not even a single-segment trace can be built. *)
let build ~entry_va ~entry_pa ~entry_block ~resolve ~block_at ~ok =
  if not (Block.closed entry_block) || Block.length entry_block = 0
     || not (ok entry_block)
  then None
  else begin
    let segs = ref [] in
    let n_slots = ref 0 in
    let used_vas = ref [] in
    let add ~va ~pa b =
      let term_va, end_va, term = term_of b ~va in
      segs :=
        { sg_va = va; sg_pa = pa; sg_block = b; sg_term_va = term_va;
          sg_end_va = end_va; sg_term = term; sg_link = L_exit }
        :: !segs;
      n_slots := !n_slots + Block.length b;
      used_vas := va :: !used_vas
    in
    add ~va:entry_va ~pa:entry_pa entry_block;
    let finish link =
      let segs =
        match !segs with
        | last :: rest -> List.rev ({ last with sg_link = link } :: rest)
        | [] -> assert false
      in
      Some
        {
          p_entry_va = entry_va;
          p_entry_pa = entry_pa;
          p_segs = Array.of_list segs;
          p_max_retire = !n_slots;
        }
    in
    let rec extend cur =
      match preferred_successor cur.sg_block cur.sg_term with
      | None -> finish L_exit
      | Some next_va ->
        if next_va = entry_va then finish L_loop
        else if List.mem next_va !used_vas then finish L_exit
        else if List.length !used_vas >= max_blocks then finish L_exit
        else begin
          match resolve next_va with
          | None -> finish L_exit
          | Some next_pa -> (
            match block_at next_pa with
            | Some b
              when Block.closed b && Block.length b > 0 && ok b
                   && !n_slots + Block.length b <= max_slots ->
              add ~va:next_va ~pa:next_pa b;
              (* the just-added segment continues into whatever comes next *)
              (match !segs with
              | next :: prev :: rest -> segs := next :: { prev with sg_link = L_seg } :: rest
              | _ -> assert false);
              extend (List.hd !segs)
            | _ -> finish L_exit)
        end
    in
    extend (List.hd !segs)
  end
