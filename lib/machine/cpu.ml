(* Architectural CPU state: 32 integer registers, the program counter, and
   retirement/cycle counters. *)

type t = {
  regs : int64 array;
  mutable pc : int;
  mutable instret : int64;
  mutable cycles : int64;
}

let create () = { regs = Array.make 32 0L; pc = 0; instret = 0L; cycles = 0L }

let get t r =
  let i = Roload_isa.Reg.to_int r in
  if i = 0 then 0L else t.regs.(i)

let set t r v =
  let i = Roload_isa.Reg.to_int r in
  if i <> 0 then t.regs.(i) <- v

let regs t = t.regs

let pc t = t.pc
let set_pc t pc = t.pc <- pc
let instret t = t.instret
let cycles t = t.cycles
let add_cycles t n = t.cycles <- Int64.add t.cycles (Int64.of_int n)
let retire t = t.instret <- Int64.add t.instret 1L
let retire_n t n = t.instret <- Int64.add t.instret (Int64.of_int n)

(* Snapshot: registers + pc + counters.  Restore blits into the existing
   register array — its identity is captured by compiled trace closures,
   so it must never be replaced. *)
type image = { i_regs : int64 array; i_pc : int; i_instret : int64; i_cycles : int64 }

let snapshot t =
  { i_regs = Array.copy t.regs; i_pc = t.pc; i_instret = t.instret; i_cycles = t.cycles }

let restore t img =
  Array.blit img.i_regs 0 t.regs 0 32;
  t.pc <- img.i_pc;
  t.instret <- img.i_instret;
  t.cycles <- img.i_cycles

let reset t =
  Array.fill t.regs 0 32 0L;
  t.pc <- 0;
  t.instret <- 0L;
  t.cycles <- 0L

let dump t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "pc=0x%x instret=%Ld cycles=%Ld\n" t.pc t.instret t.cycles);
  for i = 0 to 31 do
    Buffer.add_string b
      (Printf.sprintf "%-5s=%016Lx%s"
         (Roload_isa.Reg.name (Roload_isa.Reg.of_int i))
         t.regs.(i)
         (if i mod 4 = 3 then "\n" else "  "))
  done;
  Buffer.contents b
