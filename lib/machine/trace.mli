(** Superblock/trace selection and stitching for the trace-compiled
    engine: glue hot, already-decoded basic blocks across the edges
    execution actually takes into a linear plan the lowering compiles to
    one closure.  Pure planning — nothing here touches simulated state,
    and every dynamic assumption recorded in a plan is re-verified at run
    time by the lowered code. *)

val max_blocks : int
val max_slots : int

val stability_threshold : int
(** Consecutive identical successors required before a dynamic edge
    (conditional branch, jalr) is stitched through. *)

(** How a segment's block ends, with static targets pre-resolved against
    the segment's virtual placement. *)
type term =
  | K_jal of { rd : Roload_isa.Reg.t; target_va : int }
  | K_jalr of { rd : Roload_isa.Reg.t; rs1 : Roload_isa.Reg.t; imm : int64; is_return : bool }
  | K_branch of {
      cond : Roload_isa.Inst.branch_cond;
      rs1 : Roload_isa.Reg.t;
      rs2 : Roload_isa.Reg.t;
      taken_va : int;
      fall_va : int;
      predicted_taken : bool;
    }
  | K_fall of { next_va : int }  (** closed at the page end, no terminator *)

(** How execution leaves the segment when the stitched expectation holds. *)
type link =
  | L_seg  (** fall into the next segment of the trace *)
  | L_loop  (** back to segment 0 (the trace entry) *)
  | L_exit  (** leave the trace; the dispatch loop takes over *)

type seg = {
  sg_va : int;  (** VA of the first slot *)
  sg_pa : int;  (** static PA of the first slot (re-verified at seams) *)
  sg_block : Block.t;
  sg_term_va : int;  (** VA of the last slot *)
  sg_end_va : int;  (** VA just past the last slot *)
  sg_term : term;
  sg_link : link;
}

type plan = {
  p_entry_va : int;
  p_entry_pa : int;
  p_segs : seg array;
  p_max_retire : int;  (** slots retired by one front-to-back pass *)
}

val build :
  entry_va:int ->
  entry_pa:int ->
  entry_block:Block.t ->
  resolve:(int -> int option) ->
  block_at:(int -> Block.t option) ->
  ok:(Block.t -> bool) ->
  plan option
(** Build a trace plan rooted at [entry_block].  [resolve va] is an
    accounting-free static resolver (the PA a user-mode fetch of [va]
    would translate to right now); [block_at pa] finds a cached block
    starting at [pa]; [ok] is the lowering's compilability predicate.
    [None] when not even a single-segment trace can be built. *)
