(** Architectural CPU state: integer register file, program counter, and
    retirement/cycle counters. Register x0 reads as zero and ignores
    writes. *)

type t

val create : unit -> t
val get : t -> Roload_isa.Reg.t -> int64
val set : t -> Roload_isa.Reg.t -> int64 -> unit

val regs : t -> int64 array
(** Direct access to the 32-slot register file, for the trace-compiled
    engine's specialized closures.  Index 0 is x0 and must stay [0L]:
    readers may load it freely, writers must skip index 0. *)

val pc : t -> int
val set_pc : t -> int -> unit
val instret : t -> int64
val cycles : t -> int64
val add_cycles : t -> int -> unit
val retire : t -> unit

val retire_n : t -> int -> unit
(** Retire [n] instructions at once — the trace engine's batched
    accounting; equivalent to [n] calls to {!retire}. *)

val reset : t -> unit
val dump : t -> string

type image

val snapshot : t -> image

val restore : t -> image -> unit
(** Blits into the existing register array (identity preserved — trace
    closures capture it) and resets pc/instret/cycles to the image. *)
