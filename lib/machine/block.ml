(* Pre-decoded basic blocks.

   The execution engine caches straight-line runs of decoded instructions
   keyed by the physical address of the first halfword; a block ends at the
   first control-flow instruction (jumps, branches, ecall/ebreak — anything
   after which the next pc is not [pc + size]) or when the next instruction
   would start on another page (blocks never span pages, so one translation
   covers every slot).  Blocks are grown lazily, one slot per first
   execution, so decode-time cycle charges land in exactly the order the
   per-instruction engine would have charged them.

   The same representation doubles as the static disassembly walk of the
   analysis layer ([predecode]). *)

module Inst = Roload_isa.Inst

type slot = {
  s_inst : Inst.t;
  s_size : int; (* 2 or 4 bytes *)
  s_pa : int; (* physical address of the first halfword *)
}

type t = {
  start_pa : int;
  mutable slots : slot array;
  mutable len : int;
  mutable closed : bool; (* no further slots: terminator or page end *)
  (* Trace-engine bookkeeping, recorded by the traced dispatch loop and
     consumed by the superblock stitcher.  Pure heuristics: they steer
     which traces get compiled, never what executing one computes. *)
  mutable hot : int; (* dispatch-loop entries into this block *)
  mutable succ_va : int; (* VA the last completed run continued at (-1: none) *)
  mutable succ_stable : int; (* consecutive runs continuing at [succ_va] *)
  mutable no_trace : bool; (* stitching from here failed; don't retry *)
}

let dummy_slot = { s_inst = Inst.nop; s_size = 2; s_pa = -1 }

let create ~start_pa =
  {
    start_pa;
    slots = Array.make 8 dummy_slot;
    len = 0;
    closed = false;
    hot = 0;
    succ_va = -1;
    succ_stable = 0;
    no_trace = false;
  }

let start_pa t = t.start_pa
let length t = t.len
let closed t = t.closed
let close t = t.closed <- true
let slot t i = Array.unsafe_get t.slots i

let hot t = t.hot
let note_enter t = t.hot <- t.hot + 1

let note_successor t va =
  if t.succ_va = va then t.succ_stable <- t.succ_stable + 1
  else begin
    t.succ_va <- va;
    t.succ_stable <- 1
  end

let successor t = if t.succ_va < 0 then None else Some (t.succ_va, t.succ_stable)
let no_trace t = t.no_trace
let set_no_trace t = t.no_trace <- true

let append t s =
  if t.len = Array.length t.slots then begin
    let ns = Array.make (2 * t.len) dummy_slot in
    Array.blit t.slots 0 ns 0 t.len;
    t.slots <- ns
  end;
  t.slots.(t.len) <- s;
  t.len <- t.len + 1

(* Deep copy for machine snapshots: slots are immutable records, so a
   fresh slot array suffices; the trace-engine bookkeeping rides along so
   a restored machine re-reaches hotness on exactly the same entry. *)
let copy t =
  {
    start_pa = t.start_pa;
    slots = Array.copy t.slots;
    len = t.len;
    closed = t.closed;
    hot = t.hot;
    succ_va = t.succ_va;
    succ_stable = t.succ_stable;
    no_trace = t.no_trace;
  }

(* Instructions after which execution does not fall through to [pc + size]:
   these close the block.  Ecall/Ebreak are included because the kernel
   decides the resumption pc. *)
let is_terminator (i : Inst.t) =
  Inst.is_control_flow i || (match i with Inst.Ecall | Inst.Ebreak -> true | _ -> false)

(* Static linear sweep of a raw code string into closed blocks — the same
   representation the engine caches at run time, reused by the analysis
   layer.  Undecodable parcels (alignment padding between functions) close
   the current block and are skipped a halfword at a time, mirroring the
   previous per-instruction disassembly walk. *)
let predecode ?(base = 0) code =
  let n = String.length code in
  let acc = ref [] in
  let finish b =
    b.closed <- true;
    acc := b :: !acc
  in
  let rec go off cur =
    if off >= n then (match cur with Some b -> finish b | None -> ())
    else
      match Roload_isa.Disasm.decode_at code off with
      | Error _ ->
        (match cur with Some b -> finish b | None -> ());
        go (off + 2) None
      | Ok (inst, size) ->
        let b = match cur with Some b -> b | None -> create ~start_pa:(base + off) in
        append b { s_inst = inst; s_size = size; s_pa = base + off };
        if is_terminator inst then begin
          finish b;
          go (off + size) None
        end
        else go (off + size) (Some b)
  in
  go 0 None;
  List.rev !acc

let iter_insts blocks ~f =
  List.iter
    (fun b ->
      for i = 0 to b.len - 1 do
        let s = b.slots.(i) in
        f ~pa:s.s_pa s.s_inst ~size:s.s_size
      done)
    blocks
