(** Set-associative write-back cache timing model (tags only), true-LRU
    replacement within each set. *)

type config = { size_bytes : int; ways : int; line_bytes : int }

val kib : int -> int

type stats = { mutable hits : int; mutable misses : int; mutable writebacks : int }

type t

val create : name:string -> config -> t
(** Raises [Invalid_argument] on non-power-of-two geometry. *)

val name : t -> string
val config : t -> config
val stats : t -> stats

val set_observer :
  t -> (addr:int -> write:bool -> hit:bool -> writeback:bool -> unit) option -> unit
(** Optional tracing tap, fired once per access (including handle rehits)
    with the access outcome.  Observers must not touch cache state; with
    no observer the hot-path cost is a single option check. *)

type outcome = Hit | Miss of { writeback : bool }

val access : t -> addr:int -> write:bool -> outcome

type handle
(** Names the line that serviced an access, for the fetch fast path. *)

val access_handle : t -> addr:int -> write:bool -> outcome * handle
(** Exactly [access], additionally returning the handle of the line that now
    holds the address. *)

val rehit : t -> handle -> bool
(** Replay a read hit on the handled line with the exact accounting [access]
    performs (clock tick, recency, hit counter) — provided the line still
    holds the same tag.  Returns [false] with {i no} accounting otherwise;
    the caller must then fall back to [access]. *)

val flush : t -> unit
val reset_stats : t -> unit
val miss_rate : t -> float
