(** Set-associative write-back cache timing model (tags only), true-LRU
    replacement within each set. *)

type config = { size_bytes : int; ways : int; line_bytes : int }

val kib : int -> int

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable dropped_writebacks : int;
      (** writebacks suppressed by the fault-injection interceptor *)
}

type t

val create : name:string -> config -> t
(** Raises [Invalid_argument] on non-power-of-two geometry. *)

val name : t -> string
val config : t -> config
val stats : t -> stats

val set_observer :
  t -> (addr:int -> write:bool -> hit:bool -> writeback:bool -> unit) option -> unit
(** Optional tracing tap, fired once per access (including handle rehits)
    with the access outcome.  Observers must not touch cache state; with
    no observer the hot-path cost is a single option check. *)

val set_writeback_interceptor : t -> (addr:int -> bool) option -> unit
(** Fault-injection backdoor (roload-chaos): consulted once per would-be
    writeback with the evicted line's base address; returning [true]
    silently discards the dirty line (no writeback, no penalty) and
    counts it in [dropped_writebacks].  With [None] (the default) the
    cache is bit-identical to one without the hook. *)

type outcome = Hit | Miss of { writeback : bool }

val access : t -> addr:int -> write:bool -> outcome

type handle
(** Names the line that serviced an access, for the fetch fast path. *)

val access_handle : t -> addr:int -> write:bool -> outcome * handle
(** Exactly [access], additionally returning the handle of the line that now
    holds the address. *)

val rehit : t -> handle -> bool
(** Replay a read hit on the handled line with the exact accounting [access]
    performs (clock tick, recency, hit counter) — provided the line still
    holds the same tag.  Returns [false] with {i no} accounting otherwise;
    the caller must then fall back to [access]. *)

val rehit_many : t -> handle -> n:int -> bool
(** [n] consecutive {!rehit}s on the handled line, batched into O(1)
    state updates — the trace engine's per-chunk fetch accounting.
    Returns [false] with {i no} accounting when the line no longer holds
    the tag; [true] without accounting when [n <= 0]. *)

val flush : t -> unit
val reset_stats : t -> unit
val miss_rate : t -> float

type image
(** Deep copy of lines + clock + statistics; immutable once taken. *)

val snapshot : t -> image

val restore : t -> image -> unit
(** Overwrite [t]'s lines/clock/stats with the image, in place (line
    identity preserved; outstanding handles revalidate or fall back
    through {!rehit}'s guard).  Observer and writeback interceptor are
    untouched. *)
