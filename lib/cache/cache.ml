(* A set-associative write-back cache timing model (tags only — data flows
   through the flat physical memory; the cache decides how many cycles an
   access costs).  True-LRU within each set. *)

type config = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

let kib n = n * 1024

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable last_use : int }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable dropped_writebacks : int;
      (* writebacks suppressed by the fault-injection interceptor *)
}

type t = {
  config : config;
  sets : line array array; (* sets.(index).(way) *)
  num_sets : int;
  index_bits : int;
  offset_bits : int;
  mutable clock : int;
  stats : stats;
  name : string;
  (* Optional tracing tap, fired once per access with the outcome.  A
     generic closure (not an obs type) keeps this library free of an
     observability dependency; observers must not touch cache state. *)
  mutable observer : (addr:int -> write:bool -> hit:bool -> writeback:bool -> unit) option;
  (* Fault-injection backdoor (roload-chaos): consulted once per would-be
     writeback with the victim line's base address; returning [true]
     silently discards the dirty line instead of writing it back (and the
     writeback penalty is not charged).  [None] — the only state outside
     a campaign — leaves behavior bit-identical to a hook-free cache. *)
  mutable wb_interceptor : (addr:int -> bool) option;
}

let create ~name config =
  let { size_bytes; ways; line_bytes } = config in
  if size_bytes <= 0 || ways <= 0 || line_bytes <= 0 then invalid_arg "Cache.create";
  if not (Roload_util.Bits.is_power_of_two line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let num_sets = size_bytes / (ways * line_bytes) in
  if num_sets * ways * line_bytes <> size_bytes then
    invalid_arg "Cache.create: size must be ways * lines * line_bytes";
  if not (Roload_util.Bits.is_power_of_two num_sets) then
    invalid_arg "Cache.create: number of sets must be a power of two";
  {
    config;
    sets =
      Array.init num_sets (fun _ ->
          Array.init ways (fun _ -> { tag = 0; valid = false; dirty = false; last_use = 0 }));
    num_sets;
    index_bits = Roload_util.Bits.log2_exact num_sets;
    offset_bits = Roload_util.Bits.log2_exact line_bytes;
    clock = 0;
    stats = { hits = 0; misses = 0; writebacks = 0; dropped_writebacks = 0 };
    name;
    observer = None;
    wb_interceptor = None;
  }

let name t = t.name
let config t = t.config
let stats t = t.stats
let set_observer t obs = t.observer <- obs
let set_writeback_interceptor t f = t.wb_interceptor <- f

let notify t ~addr ~write ~hit ~writeback =
  match t.observer with
  | None -> ()
  | Some f -> f ~addr ~write ~hit ~writeback

type outcome = Hit | Miss of { writeback : bool }

let access t ~addr ~write =
  t.clock <- t.clock + 1;
  let line_addr = addr lsr t.offset_bits in
  let index = line_addr land (t.num_sets - 1) in
  let tag = line_addr lsr t.index_bits in
  let set = t.sets.(index) in
  let ways = Array.length set in
  let rec find i = if i >= ways then None else if set.(i).valid && set.(i).tag = tag then Some set.(i) else find (i + 1) in
  match find 0 with
  | Some line ->
    line.last_use <- t.clock;
    if write then line.dirty <- true;
    t.stats.hits <- t.stats.hits + 1;
    notify t ~addr ~write ~hit:true ~writeback:false;
    Hit
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    (* choose victim: first invalid way, else LRU *)
    let victim = ref set.(0) in
    (try
       for i = 0 to ways - 1 do
         if not set.(i).valid then begin
           victim := set.(i);
           raise Exit
         end;
         if set.(i).last_use < !victim.last_use then victim := set.(i)
       done
     with Exit -> ());
    let v = !victim in
    let writeback =
      v.valid && v.dirty
      &&
      match t.wb_interceptor with
      | None -> true
      | Some drop ->
        (* base address of the victim line being evicted *)
        let victim_addr = ((v.tag lsl t.index_bits) lor index) lsl t.offset_bits in
        if drop ~addr:victim_addr then begin
          t.stats.dropped_writebacks <- t.stats.dropped_writebacks + 1;
          false
        end
        else true
    in
    if writeback then t.stats.writebacks <- t.stats.writebacks + 1;
    v.tag <- tag;
    v.valid <- true;
    v.dirty <- write;
    v.last_use <- t.clock;
    notify t ~addr ~write ~hit:false ~writeback;
    Miss { writeback }

(* Handle-based variants for the fetch fast path.  A handle names the line
   that serviced an access; [rehit] replays a read hit on it with the exact
   accounting [access] would have performed (clock tick, recency, hit
   counter) provided the line still holds the same tag.  Otherwise it does
   no accounting and the caller falls back to [access], so observable cache
   state is identical to always calling [access]. *)

type handle = { h_line : line; h_tag : int; h_addr : int }

let access_handle t ~addr ~write =
  let line_addr = addr lsr t.offset_bits in
  let index = line_addr land (t.num_sets - 1) in
  let tag = line_addr lsr t.index_bits in
  let outcome = access t ~addr ~write in
  let set = t.sets.(index) in
  let ways = Array.length set in
  let rec find i =
    if i >= ways then assert false
    else if set.(i).valid && set.(i).tag = tag then set.(i)
    else find (i + 1)
  in
  (outcome, { h_line = find 0; h_tag = tag; h_addr = addr })

let rehit t { h_line; h_tag; h_addr } =
  if h_line.valid && h_line.tag = h_tag then begin
    t.clock <- t.clock + 1;
    h_line.last_use <- t.clock;
    t.stats.hits <- t.stats.hits + 1;
    notify t ~addr:h_addr ~write:false ~hit:true ~writeback:false;
    true
  end
  else false

(* [n] consecutive rehits on the same line, batched into O(1) state
   updates: the clock advances by [n], the line's recency lands on the
   final clock value, and [n] hits are counted — exactly the state [n]
   sequential [rehit]s leave behind.  The observer still fires once per
   accounted access. *)
let rehit_many t { h_line; h_tag; h_addr } ~n =
  if n <= 0 then true
  else if h_line.valid && h_line.tag = h_tag then begin
    t.clock <- t.clock + n;
    h_line.last_use <- t.clock;
    t.stats.hits <- t.stats.hits + n;
    (match t.observer with
    | None -> ()
    | Some f ->
      for _ = 1 to n do
        f ~addr:h_addr ~write:false ~hit:true ~writeback:false
      done);
    true
  end
  else false

let flush t =
  Array.iter (Array.iter (fun l -> l.valid <- false; l.dirty <- false)) t.sets

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.writebacks <- 0;
  t.stats.dropped_writebacks <- 0

let miss_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.misses /. float_of_int total

(* ---- snapshots ----
   Deep copy of every line (tags-only, so this is small) plus the clock
   and the statistics.  Restore mutates the existing line records in
   place, preserving handle identity: an outstanding handle revalidates
   against the restored tag through [rehit]'s guard or falls back, the
   same contract live eviction relies on.  The observer and the one-shot
   writeback interceptor are per-run wiring and are not captured. *)

type image = {
  i_lines : (int * bool * bool * int) array array; (* (tag, valid, dirty, last_use) *)
  i_clock : int;
  i_hits : int;
  i_misses : int;
  i_writebacks : int;
  i_dropped_writebacks : int;
}

let snapshot t =
  {
    i_lines =
      Array.map (Array.map (fun l -> (l.tag, l.valid, l.dirty, l.last_use))) t.sets;
    i_clock = t.clock;
    i_hits = t.stats.hits;
    i_misses = t.stats.misses;
    i_writebacks = t.stats.writebacks;
    i_dropped_writebacks = t.stats.dropped_writebacks;
  }

let restore t img =
  if
    Array.length img.i_lines <> Array.length t.sets
    || (Array.length t.sets > 0
       && Array.length img.i_lines.(0) <> Array.length t.sets.(0))
  then invalid_arg "Cache.restore: geometry mismatch";
  Array.iteri
    (fun si ways ->
      Array.iteri
        (fun wi (tag, valid, dirty, last_use) ->
          let l = t.sets.(si).(wi) in
          l.tag <- tag;
          l.valid <- valid;
          l.dirty <- dirty;
          l.last_use <- last_use)
        ways)
    img.i_lines;
  t.clock <- img.i_clock;
  t.stats.hits <- img.i_hits;
  t.stats.misses <- img.i_misses;
  t.stats.writebacks <- img.i_writebacks;
  t.stats.dropped_writebacks <- img.i_dropped_writebacks
