(* The prototype's memory hierarchy (paper Table II): 32 KiB 8-way L1I$ and
   L1D$ backed by DRAM.  Exposes cycle costs per access; the executor's
   timing model adds them to the instruction base cost. *)

type latencies = {
  l1_hit : int; (* extra cycles for a D-side L1 hit (load-use) *)
  miss_penalty : int; (* cycles to fill a line from DRAM *)
  writeback_penalty : int; (* extra cycles when the victim is dirty *)
}

let default_latencies = { l1_hit = 1; miss_penalty = 30; writeback_penalty = 10 }

type t = {
  icache : Cache.t;
  dcache : Cache.t;
  lat : latencies;
}

let default_l1_config = { Cache.size_bytes = Cache.kib 32; ways = 8; line_bytes = 64 }

let create ?(icache_config = default_l1_config) ?(dcache_config = default_l1_config)
    ?(latencies = default_latencies) () =
  {
    icache = Cache.create ~name:"L1I" icache_config;
    dcache = Cache.create ~name:"L1D" dcache_config;
    lat = latencies;
  }

let icache t = t.icache
let dcache t = t.dcache

let cost_of t outcome ~hit_cost =
  match outcome with
  | Cache.Hit -> hit_cost
  | Cache.Miss { writeback } ->
    hit_cost + t.lat.miss_penalty + if writeback then t.lat.writeback_penalty else 0

(* Instruction fetch: hits are pipelined (no extra cost). *)
let access_ifetch t ~pa = cost_of t (Cache.access t.icache ~addr:pa ~write:false) ~hit_cost:0

(* Fetch fast path: [access_ifetch_handle] additionally returns the handle of
   the I-cache line now holding [pa]; [rehit_ifetch] replays a same-line hit
   (0 cycles, exact hit accounting) or reports [false] with no accounting. *)
let access_ifetch_handle t ~pa =
  let outcome, h = Cache.access_handle t.icache ~addr:pa ~write:false in
  (cost_of t outcome ~hit_cost:0, h)

let rehit_ifetch t h = Cache.rehit t.icache h
let rehit_ifetch_many t h ~n = Cache.rehit_many t.icache h ~n

(* Data access: L1 hits cost the load-use latency. *)
let access_data t ~pa ~write =
  cost_of t (Cache.access t.dcache ~addr:pa ~write) ~hit_cost:t.lat.l1_hit

(* Page-table-walker accesses go through the D-cache, as in Rocket. *)
let access_ptw t ~pa = access_data t ~pa ~write:false

let flush t =
  Cache.flush t.icache;
  Cache.flush t.dcache

let reset_stats t =
  Cache.reset_stats t.icache;
  Cache.reset_stats t.dcache

type image = { i_icache : Cache.image; i_dcache : Cache.image }

let snapshot t = { i_icache = Cache.snapshot t.icache; i_dcache = Cache.snapshot t.dcache }

let restore t img =
  Cache.restore t.icache img.i_icache;
  Cache.restore t.dcache img.i_dcache
