(** The prototype's memory hierarchy (Table II): 32 KiB 8-way L1I/L1D
    backed by DRAM, exposed as cycle costs per physical access. *)

type latencies = { l1_hit : int; miss_penalty : int; writeback_penalty : int }

val default_latencies : latencies

type t

val default_l1_config : Cache.config

val create :
  ?icache_config:Cache.config ->
  ?dcache_config:Cache.config ->
  ?latencies:latencies ->
  unit ->
  t

val icache : t -> Cache.t
val dcache : t -> Cache.t

val access_ifetch : t -> pa:int -> int
(** Cycle cost of fetching at physical address [pa] (0 on a hit). *)

val access_ifetch_handle : t -> pa:int -> int * Cache.handle
(** [access_ifetch] additionally returning the handle of the I-cache line
    now holding [pa], for the same-line fetch fast path. *)

val rehit_ifetch : t -> Cache.handle -> bool
(** Replay a same-line fetch hit with exact accounting ([true], hit cost is
    always 0 cycles), or report [false] with no accounting — the caller then
    falls back to [access_ifetch]. *)

val rehit_ifetch_many : t -> Cache.handle -> n:int -> bool
(** [n] same-line fetch rehits batched into O(1) accounting (each costs 0
    cycles); [false] with no accounting when the line was evicted. *)

val access_data : t -> pa:int -> write:bool -> int
val access_ptw : t -> pa:int -> int
(** Page-table-walker access (through the D-cache, as in Rocket). *)

val flush : t -> unit
val reset_stats : t -> unit

type image

val snapshot : t -> image
val restore : t -> image -> unit
