(** Request-dispatch server macro-workload: the root forks a worker
    pool; workers drain the kernel's request-source device through a
    virtual-method handler table (VCall surface) and an indirect-call
    plugin table (ICall surface).  The printed checksum is a pure
    function of the payload multiset, so it is identical across schemes,
    engines and time slices even though the request partition differs. *)

val name : string
val cxx : bool

val workers : int
(** Worker pool size the source forks. *)

val source : scale:int -> string
(** Deterministic MiniC source ([scale] is accepted for uniformity with
    the SPEC-like workloads; the working set is the request stream). *)

val requests : seed:int64 -> count:int -> int array
(** The seeded payload stream to load the request device with. *)
