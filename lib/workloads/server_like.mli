(** Request-dispatch server macro-workload: the root forks a worker
    pool; workers drain the kernel's request-source device through a
    virtual-method handler table (VCall surface) and an indirect-call
    plugin table (ICall surface), acking each result with
    [complete_request].  The root prints the kernel's order-independent
    device checksum — a pure function of the payload multiset, identical
    across schemes, engines, time slices and shard counts, and (unlike a
    worker-private sum) it survives worker kills and restarts.

    The source also carries the chaos campaign's tamper surface under
    the injector's symbol vocabulary ([g], [fake_vtable], [__vt$Evil],
    [callback], [twin_cb]), so server fault plans apply unchanged. *)

val name : string
val cxx : bool

val workers : int
(** Default worker pool size the source forks. *)

val source : scale:int -> string
(** Deterministic MiniC source ([scale] is accepted for uniformity with
    the SPEC-like workloads; the working set is the request stream).
    Forks the default {!workers}-sized pool. *)

val source_workers : workers:int -> scale:int -> string
(** [source] with an explicit forked pool size (sharded runs). *)

val requests : seed:int64 -> count:int -> int array
(** The seeded payload stream to load the request device with. *)
