(* The request-serving macro-workload: a dispatch server in the C++
   style.  The root process forks a pool of workers; each worker pulls
   payloads from the kernel's request-source device and dispatches them
   through a virtual-method handler table (the VCall surface) and an
   indirect-call plugin table (the ICall surface).

   Which worker serves which request depends on the interleaving — and
   the interleaving differs between schemes, whose instruction streams
   differ.  Handler state therefore only feeds private counters: every
   request's checksum contribution is a pure function of its payload, so
   the total the root prints is partition-independent and must come out
   identical across schemes, engines and time slices. *)

let name = "server"
let cxx = true

(* worker pool size the source below forks *)
let workers = 4

let source ~scale:_ =
  {|
// request-dispatch server: fork a worker pool, drain the request device
typedef int (*plugin_t)(int);

int plug_sum(int x) {
  int i = 0;
  int acc = x;
  while (i < 8) { acc = (acc * 31 + i) % 1000003; i = i + 1; }
  return acc;
}

int plug_mix(int x) {
  int acc = x;
  acc = (acc ^ (acc >> 7)) & 1048575;
  acc = (acc * 131 + 17) % 1000003;
  return acc;
}

int plug_rot(int x) {
  int lo = x & 255;
  int hi = x >> 8;
  return ((lo << 12) + hi) % 1000003;
}

class Handler {
  int served;
  int acc;
  virtual int handle(int payload) {
    served = served + 1;
    return payload % 1000003;
  }
};

class HashHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int h = (payload * 2654435761) % 1000003;
    h = (h + (payload >> 5)) % 1000003;
    acc = (acc + h) % 1000003;
    return h;
  }
};

class ScanHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int steps = payload % 17 + 3;
    int h = 0;
    int i = 0;
    while (i < steps) { h = (h * 7 + payload + i) % 1000003; i = i + 1; }
    acc = (acc + h) % 1000003;
    return h;
  }
};

class CryptoHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int h = payload;
    int i = 0;
    while (i < 5) {
      h = ((h << 3) ^ (h >> 2)) & 16777215;
      h = (h + payload) % 1000003;
      i = i + 1;
    }
    acc = (acc + h) % 1000003;
    return h;
  }
};

plugin_t plugins[3];

int serve() {
  Handler *handlers[4];
  handlers[0] = (Handler*)(new Handler);
  handlers[1] = (Handler*)(new HashHandler);
  handlers[2] = (Handler*)(new ScanHandler);
  handlers[3] = (Handler*)(new CryptoHandler);
  plugins[0] = plug_sum;
  plugins[1] = plug_mix;
  plugins[2] = plug_rot;
  int sum = 0;
  int r = read_request();
  while (r >= 0) {
    Handler *h = handlers[r % 4];
    int v = h->handle(r);
    plugin_t f = plugins[v % 3];
    v = f(v);
    sum = (sum + v) % 1000003;
    r = read_request();
  }
  return sum;
}

int main() {
  int nworkers = 4;
  int pid = 1;
  int i = 0;
  while (i < nworkers && pid != 0) {
    pid = fork();
    i = i + 1;
  }
  if (pid == 0) {
    exit(serve());
  }
  int total = 0;
  i = 0;
  while (i < nworkers) {
    int st = wait();
    total = (total + st) % 1000003;
    i = i + 1;
  }
  print_int(total);
  print_char('\n');
  return 0;
}
|}

(* The request stream the device is loaded with: seeded, so every
   scheme/engine combination serves byte-identical payloads. *)
let requests ~seed ~count =
  let prng = Roload_util.Prng.create seed in
  let a = Array.make count 0 in
  for i = 0 to count - 1 do
    a.(i) <- Roload_util.Prng.next_int prng 1_000_000
  done;
  a
