(* The request-serving macro-workload: a dispatch server in the C++
   style.  The root process forks a pool of workers; each worker pulls
   payloads from the kernel's request-source device, dispatches them
   through a virtual-method handler table (the VCall surface) and an
   indirect-call plugin table (the ICall surface), and explicitly acks
   each result with complete_request so the kernel's order-independent
   checksum survives worker kills and restarts.

   Which worker serves which request depends on the interleaving — and
   the interleaving differs between schemes, whose instruction streams
   differ.  Every request's committed result is a pure function of its
   payload, so the device checksum the root prints is
   partition-independent and must come out identical across schemes,
   engines, time slices and shard counts.

   The program also carries the chaos campaign's tamper surface under
   the exact symbol names the injector resolves ([g], [fake_vtable],
   [__vt$Evil], [callback], [twin_cb]), so server fault plans reuse
   {!Roload_inject.Injector.apply} unchanged: [Evil] is a same-layout,
   same-signature twin of [Handler] whose [handle] commits a clean but
   wrong result — the canonical silent payload corruption a forged
   vtable redirects into under stock/CFI. *)

let name = "server"
let cxx = true

(* default worker pool size ([source] can fork more for sharded runs) *)
let workers = 4

let source_prefix =
  {|
// request-dispatch server: fork a worker pool, drain the request device
// with explicit per-request acks
typedef int (*plugin_t)(int);

int plug_sum(int x) {
  int i = 0;
  int acc = x;
  while (i < 8) { acc = (acc * 31 + i) % 1000003; i = i + 1; }
  return acc;
}

int plug_mix(int x) {
  int acc = x;
  acc = (acc ^ (acc >> 7)) & 1048575;
  acc = (acc * 131 + 17) % 1000003;
  return acc;
}

int plug_rot(int x) {
  int lo = x & 255;
  int hi = x >> 8;
  return ((lo << 12) + hi) % 1000003;
}

int benign_cb(int x) { return (x + 11) % 1000003; }
int twin_cb(int x) { return (x + 12) % 1000003; }

class Handler {
  int served;
  int acc;
  virtual int handle(int payload) {
    served = served + 1;
    return payload % 1000003;
  }
};

class HashHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int h = (payload * 2654435761) % 1000003;
    h = (h + (payload >> 5)) % 1000003;
    acc = (acc + h) % 1000003;
    return h;
  }
};

class ScanHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int steps = payload % 17 + 3;
    int h = 0;
    int i = 0;
    while (i < steps) { h = (h * 7 + payload + i) % 1000003; i = i + 1; }
    acc = (acc + h) % 1000003;
    return h;
  }
};

class CryptoHandler : Handler {
  virtual int handle(int payload) {
    served = served + 1;
    int h = payload;
    int i = 0;
    while (i < 5) {
      h = ((h << 3) ^ (h >> 2)) & 16777215;
      h = (h + payload) % 1000003;
      i = i + 1;
    }
    acc = (acc + h) % 1000003;
    return h;
  }
};

// same-layout, same-signature twin of Handler: the clean-but-wrong
// result a forged vtable silently redirects into
class Evil {
  int served;
  int acc;
  virtual int handle(int payload) {
    return (payload * 3 + 7) % 1000003;
  }
};

plugin_t plugins[3];

// the chaos tamper surface (writable globals are copied at fork, so
// tamper lands in one chosen worker): forged-vtable scratch, the
// vptr-swing victim pointer, the icall slot and its twin holder
int fake_vtable[8];
Handler *g;
Evil *e;
plugin_t callback;
plugin_t twin_holder;

int serve() {
  Handler *handlers[4];
  handlers[0] = (Handler*)(new Handler);
  handlers[1] = (Handler*)(new HashHandler);
  handlers[2] = (Handler*)(new ScanHandler);
  handlers[3] = (Handler*)(new CryptoHandler);
  plugins[0] = plug_sum;
  plugins[1] = plug_mix;
  plugins[2] = plug_rot;
  g = handlers[0];
  e = new Evil;
  callback = benign_cb;
  twin_holder = twin_cb;
  int sum = 0;
  int r = read_request();
  while (r >= 0) {
    Handler *h = handlers[r % 4];
    int v = h->handle(r);
    plugin_t f = plugins[v % 3];
    v = f(v);
    plugin_t cb = callback;
    v = cb(v);
    int ok = complete_request(v);
    if (ok < 0) { exit(90); }
    sum = (sum + v) % 1000003;
    r = read_request();
  }
  return sum;
}

int main() {
  int nworkers = |}

let source_suffix =
  {|;
  int pid = 1;
  int i = 0;
  while (i < nworkers && pid != 0) {
    pid = fork();
    i = i + 1;
  }
  if (pid == 0) {
    exit(serve());
  }
  i = 0;
  while (i < nworkers) {
    int st = wait();
    i = i + 1;
  }
  print_int(server_checksum());
  print_char('\n');
  return 0;
}
|}

let source_workers ~workers ~scale:_ =
  source_prefix ^ string_of_int workers ^ source_suffix

let source ~scale = source_workers ~workers ~scale

(* The request stream the device is loaded with: seeded, so every
   scheme/engine combination serves byte-identical payloads. *)
let requests ~seed ~count =
  let prng = Roload_util.Prng.create seed in
  let a = Array.make count 0 in
  for i = 0 to count - 1 do
    a.(i) <- Roload_util.Prng.next_int prng 1_000_000
  done;
  a
