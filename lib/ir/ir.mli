(** The compiler's mid-level IR: a typed, register-based (non-SSA)
    three-address representation with explicit basic blocks.

    The ROLoad-md mechanism of paper §III-C is modelled by metadata on
    memory-reading operations: a hardening pass sets [roload_key] on the
    loads feeding sensitive operations and the code generator then emits
    ld.ro-family instructions.  Baseline defenses (VTint, label CFI) use
    the same metadata blocks, so every scheme flows through one code
    generator. *)

type ty =
  | I64
  | I8
  | Ptr of ty
  | Fun_ptr of signature
  | Struct_ref of string
  | Class_ref of string
  | Void

and signature = { params : ty list; ret : ty }

val ty_to_string : ty -> string
val signature_to_string : signature -> string

val signature_id : signature -> string
(** A stable identifier for a function type — the type-based-CFI
    equivalence class of paper §IV-B. *)

type temp = int

type value =
  | Temp of temp
  | Const of int64
  | Global of string  (** address of a global symbol *)
  | Func_addr of string  (** address of a function (address-taken) *)

val value_to_string : value -> string

type width = W8 | W64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Shru
  | Eq | Ne | Lt | Le | Gt | Ge

val binop_to_string : binop -> string

type load_md = {
  mutable roload_key : int option;
  mutable ro_elided : bool;
      (** set by roload-elide: the key stays for auditing but codegen emits
          a plain load — the check is statically proven redundant *)
}

val no_md : unit -> load_md

type vcall_md = {
  mutable vc_roload_key : int option;
  mutable vc_vtint : bool;
  mutable vc_cfi_label : int option;
}

type icall_md = {
  mutable ic_roload_key : int option;
  mutable ic_elided : bool;  (** see {!load_md.ro_elided} *)
  mutable ic_cfi_label : int option;
}

type instr =
  | Bin of binop * temp * value * value
  | Load of { dst : temp; addr : value; offset : int; width : width; md : load_md }
  | Store of { src : value; addr : value; offset : int; width : width }
  | Lea_frame of temp * int
  | Call of { dst : temp option; callee : string; args : value list }
  | Call_indirect of {
      dst : temp option;
      callee : value;
      args : value list;
      sig_id : string;
      md : icall_md;
    }
  | Vcall of {
      dst : temp option;
      obj : value;
      slot : int;
      class_name : string;
      args : value list;
      md : vcall_md;
    }

type terminator =
  | Br of string
  | Cbr of value * string * string
  | Ret of value option
  | Halt

type block = {
  b_label : string;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type frame_slot = { slot_id : int; slot_size : int }

type func = {
  f_name : string;
  f_sig : signature;
  mutable f_params : temp list;
  mutable f_blocks : block list;
  mutable f_ntemps : int;
  mutable f_frame_slots : frame_slot list;
  mutable f_cfi_id : int option;
}

type ginit_word = G_int of int64 | G_func of string | G_global of string

type global = {
  g_name : string;
  g_section : string;
  g_init : ginit_word list;
  g_bytes : string option;
  g_zero : int;
}

type vtable_info = {
  vt_class : string;
  vt_symbol : string;
  vt_root : string;
  vt_methods : string list;
}

type modul = {
  m_name : string;
  mutable m_funcs : func list;
  mutable m_globals : global list;
  mutable m_vtables : vtable_info list;
  mutable m_ret_key : int option;
      (** backward-edge protection (paper §IV-C): when set, module-local
          calls pass a pointer to a keyed read-only return-site cell in
          ra, and epilogues return through ld.ro with this key *)
}

val new_temp : func -> temp
val new_frame_slot : func -> size:int -> int
val find_block : func -> string -> block option
val find_func : modul -> string -> func option
val find_global : modul -> string -> global option
val instr_defs : instr -> temp list
val instr_uses : instr -> temp list
val term_uses : terminator -> temp list
val is_call : instr -> bool
val successors : terminator -> string list
val instr_to_string : instr -> string
val term_to_string : terminator -> string
val func_to_string : func -> string
val modul_to_string : modul -> string
