(* The compiler's mid-level IR: a typed, register-based (non-SSA)
   three-address representation with explicit basic blocks.

   The ROLoad-md mechanism of paper §III-C is modelled by metadata fields
   on the memory-reading operations ([load_md]): a hardening pass sets
   [roload_key] on the loads feeding sensitive operations, and the code
   generator then emits ld.ro-family instructions (plus the extra addi the
   paper mentions, since ld.ro has no offset immediate).  Baseline
   defenses (VTint, label CFI) use the same metadata block, so every
   scheme flows through one code generator. *)

type ty =
  | I64
  | I8
  | Ptr of ty
  | Fun_ptr of signature (* pointer to function of this signature *)
  | Struct_ref of string
  | Class_ref of string
  | Void

and signature = { params : ty list; ret : ty }

let rec ty_to_string = function
  | I64 -> "i64"
  | I8 -> "i8"
  | Ptr t -> ty_to_string t ^ "*"
  | Fun_ptr s -> Printf.sprintf "(%s)" (signature_to_string s)
  | Struct_ref n -> "struct " ^ n
  | Class_ref n -> "class " ^ n
  | Void -> "void"

and signature_to_string s =
  Printf.sprintf "%s(%s)" (ty_to_string s.ret)
    (String.concat "," (List.map ty_to_string s.params))

(* A stable, linker-safe identifier for a function type; used as the
   type-based CFI equivalence class (paper §IV-B: keys are "equivalent to
   function types"). *)
let signature_id s =
  let raw = signature_to_string s in
  let h = Hashtbl.hash raw land 0xFFFF in
  Printf.sprintf "sig%04x" h

type temp = int

type value =
  | Temp of temp
  | Const of int64
  | Global of string (* address of a global symbol *)
  | Func_addr of string (* address of a function (address-taken) *)

let value_to_string = function
  | Temp t -> Printf.sprintf "%%t%d" t
  | Const c -> Int64.to_string c
  | Global g -> "@" ^ g
  | Func_addr f -> "&" ^ f

type width = W8 | W64

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Shru
  | Eq | Ne | Lt | Le | Gt | Ge

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Shru -> "shru" | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le"
  | Gt -> "gt" | Ge -> "ge"

(* ROLoad-md & friends: per-operation hardening metadata.

   The [*_elided] flags are set by the proof-guided optimizer
   (roload-elide): the key stays on the site for auditing, but code
   generation emits a plain load — an earlier check of the same value (or
   a provably-constant keyed address) already guarantees the pointee. *)
type load_md = {
  mutable roload_key : int option;
  mutable ro_elided : bool; (* key kept for audit, check proven redundant *)
}

let no_md () = { roload_key = None; ro_elided = false }

type vcall_md = {
  mutable vc_roload_key : int option; (* VCall / ICall-unified protection *)
  mutable vc_vtint : bool; (* VTint range check on the vtable pointer *)
  mutable vc_cfi_label : int option; (* label-CFI check on the loaded target *)
}

type icall_md = {
  mutable ic_roload_key : int option; (* ICall: callee value is a GFPT slot *)
  mutable ic_elided : bool; (* key kept for audit, check proven redundant *)
  mutable ic_cfi_label : int option; (* label-CFI check before the jump *)
}

type instr =
  | Bin of binop * temp * value * value
  | Load of { dst : temp; addr : value; offset : int; width : width; md : load_md }
  | Store of { src : value; addr : value; offset : int; width : width }
  | Lea_frame of temp * int (* address of frame slot n *)
  | Call of { dst : temp option; callee : string; args : value list }
  | Call_indirect of {
      dst : temp option;
      callee : value;
      args : value list;
      sig_id : string;
      md : icall_md;
    }
  | Vcall of {
      dst : temp option;
      obj : value;
      slot : int;
      class_name : string;
      args : value list; (* excluding [obj], which becomes [this]/a0 *)
      md : vcall_md;
    }

type terminator =
  | Br of string
  | Cbr of value * string * string (* nonzero -> first *)
  | Ret of value option
  | Halt (* abort: lowers to ebreak *)

type block = {
  b_label : string;
  mutable b_instrs : instr list;
  mutable b_term : terminator;
}

type frame_slot = { slot_id : int; slot_size : int }

type func = {
  f_name : string;
  f_sig : signature;
  mutable f_params : temp list; (* parameter temps, in order *)
  mutable f_blocks : block list; (* entry block first *)
  mutable f_ntemps : int;
  mutable f_frame_slots : frame_slot list;
  mutable f_cfi_id : int option; (* label-CFI function ID, set by the pass *)
}

type ginit_word =
  | G_int of int64
  | G_func of string
  | G_global of string

type global = {
  g_name : string;
  g_section : string; (* e.g. ".data", ".rodata", ".rodata.key.7" *)
  g_init : ginit_word list; (* 8-byte words *)
  g_bytes : string option; (* raw byte initializer (strings); overrides g_init *)
  g_zero : int; (* trailing zero bytes *)
}

type vtable_info = {
  vt_class : string;
  vt_symbol : string; (* the global holding the table *)
  vt_root : string; (* root of the class hierarchy (key granularity) *)
  vt_methods : string list; (* implementing function per slot *)
}

type modul = {
  m_name : string;
  mutable m_funcs : func list;
  mutable m_globals : global list;
  mutable m_vtables : vtable_info list;
  mutable m_ret_key : int option;
      (* backward-edge protection (paper §IV-C): when set, module-local
         calls pass a pointer to a keyed read-only return-site cell in ra,
         and epilogues return through ld.ro with this key *)
}

(* ---------- construction helpers ---------- *)

let new_temp f =
  let t = f.f_ntemps in
  f.f_ntemps <- t + 1;
  t

let new_frame_slot f ~size =
  let id = List.length f.f_frame_slots in
  f.f_frame_slots <- f.f_frame_slots @ [ { slot_id = id; slot_size = size } ];
  id

let find_block f label = List.find_opt (fun b -> b.b_label = label) f.f_blocks

let find_func m name = List.find_opt (fun f -> f.f_name = name) m.m_funcs
let find_global m name = List.find_opt (fun g -> g.g_name = name) m.m_globals

let instr_defs = function
  | Bin (_, d, _, _) -> [ d ]
  | Load { dst; _ } -> [ dst ]
  | Lea_frame (d, _) -> [ d ]
  | Store _ -> []
  | Call { dst; _ } | Call_indirect { dst; _ } | Vcall { dst; _ } ->
    Option.to_list dst

let value_uses = function
  | Temp t -> [ t ]
  | Const _ | Global _ | Func_addr _ -> []

let instr_uses = function
  | Bin (_, _, a, b) -> value_uses a @ value_uses b
  | Load { addr; _ } -> value_uses addr
  | Store { src; addr; _ } -> value_uses src @ value_uses addr
  | Lea_frame _ -> []
  | Call { args; _ } -> List.concat_map value_uses args
  | Call_indirect { callee; args; _ } -> value_uses callee @ List.concat_map value_uses args
  | Vcall { obj; args; _ } -> value_uses obj @ List.concat_map value_uses args

let term_uses = function
  | Br _ | Halt -> []
  | Cbr (v, _, _) -> value_uses v
  | Ret v -> ( match v with Some v -> value_uses v | None -> [])

let is_call = function
  | Call _ | Call_indirect _ | Vcall _ -> true
  | Bin _ | Load _ | Store _ | Lea_frame _ -> false

let successors = function
  | Br l -> [ l ]
  | Cbr (_, a, b) -> [ a; b ]
  | Ret _ | Halt -> []

(* ---------- printing ---------- *)

let instr_to_string i =
  let v = value_to_string in
  let md_str (md : load_md) =
    match md.roload_key with
    | None -> ""
    | Some k -> Printf.sprintf " !roload(%d)%s" k (if md.ro_elided then " !elided" else "")
  in
  match i with
  | Bin (op, d, a, b) ->
    Printf.sprintf "%%t%d = %s %s, %s" d (binop_to_string op) (v a) (v b)
  | Load { dst; addr; offset; width; md } ->
    Printf.sprintf "%%t%d = load.%s %s+%d%s" dst
      (match width with W8 -> "8" | W64 -> "64")
      (v addr) offset (md_str md)
  | Store { src; addr; offset; width } ->
    Printf.sprintf "store.%s %s, %s+%d"
      (match width with W8 -> "8" | W64 -> "64")
      (v src) (v addr) offset
  | Lea_frame (d, s) -> Printf.sprintf "%%t%d = lea_frame %d" d s
  | Call { dst; callee; args } ->
    Printf.sprintf "%scall @%s(%s)"
      (match dst with Some d -> Printf.sprintf "%%t%d = " d | None -> "")
      callee
      (String.concat ", " (List.map v args))
  | Call_indirect { dst; callee; args; sig_id; md } ->
    Printf.sprintf "%sicall[%s] %s(%s)%s%s"
      (match dst with Some d -> Printf.sprintf "%%t%d = " d | None -> "")
      sig_id (v callee)
      (String.concat ", " (List.map v args))
      (match md.ic_roload_key with
      | None -> ""
      | Some k -> Printf.sprintf " !roload(%d)%s" k (if md.ic_elided then " !elided" else ""))
      (match md.ic_cfi_label with None -> "" | Some l -> Printf.sprintf " !cfi(%d)" l)
  | Vcall { dst; obj; slot; class_name; args; md } ->
    Printf.sprintf "%svcall %s->%s[%d](%s)%s%s"
      (match dst with Some d -> Printf.sprintf "%%t%d = " d | None -> "")
      (v obj) class_name slot
      (String.concat ", " (List.map v args))
      (match md.vc_roload_key with None -> "" | Some k -> Printf.sprintf " !roload(%d)" k)
      (if md.vc_vtint then " !vtint" else "")

let term_to_string = function
  | Br l -> "br " ^ l
  | Cbr (c, a, b) -> Printf.sprintf "cbr %s, %s, %s" (value_to_string c) a b
  | Ret None -> "ret"
  | Ret (Some vv) -> "ret " ^ value_to_string vv
  | Halt -> "halt"

let func_to_string f =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "func %s %s(params: %s) {\n" (ty_to_string f.f_sig.ret) f.f_name
       (String.concat ", " (List.map (Printf.sprintf "%%t%d") f.f_params)));
  List.iter
    (fun blk ->
      Buffer.add_string b (blk.b_label ^ ":\n");
      List.iter (fun i -> Buffer.add_string b ("  " ^ instr_to_string i ^ "\n")) blk.b_instrs;
      Buffer.add_string b ("  " ^ term_to_string blk.b_term ^ "\n"))
    f.f_blocks;
  Buffer.add_string b "}\n";
  Buffer.contents b

let modul_to_string m =
  let b = Buffer.create 1024 in
  List.iter
    (fun g ->
      Buffer.add_string b
        (Printf.sprintf "global %s (%s) words=%d bytes=%s zero=%d\n" g.g_name g.g_section
           (List.length g.g_init)
           (match g.g_bytes with Some s -> string_of_int (String.length s) | None -> "-")
           g.g_zero))
    m.m_globals;
  List.iter (fun f -> Buffer.add_string b (func_to_string f)) m.m_funcs;
  Buffer.contents b
