(* IR well-formedness checks, run after lowering and after each pass in
   tests: every branch target exists, temps are within bounds, frame slots
   are declared, vtable symbols exist. *)

let check_func (f : Ir.func) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  if f.Ir.f_blocks = [] then err "%s: no blocks" f.Ir.f_name;
  let labels = List.map (fun b -> b.Ir.b_label) f.Ir.f_blocks in
  let dup =
    List.filter (fun l -> List.length (List.filter (( = ) l) labels) > 1) labels
  in
  if dup <> [] then err "%s: duplicate labels %s" f.Ir.f_name (String.concat "," dup);
  let check_temp t =
    if t < 0 || t >= f.Ir.f_ntemps then err "%s: temp %%t%d out of range" f.Ir.f_name t
  in
  let check_slot s =
    if not (List.exists (fun fs -> fs.Ir.slot_id = s) f.Ir.f_frame_slots) then
      err "%s: unknown frame slot %d" f.Ir.f_name s
  in
  List.iter check_temp f.Ir.f_params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter check_temp (Ir.instr_defs i);
          List.iter check_temp (Ir.instr_uses i);
          match i with
          | Ir.Lea_frame (_, s) -> check_slot s
          | Ir.Call { args; _ } ->
            if List.length args > 8 then err "%s: more than 8 call arguments" f.Ir.f_name
          | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Call_indirect _ | Ir.Vcall _ -> ())
        b.Ir.b_instrs;
      List.iter check_temp (Ir.term_uses b.Ir.b_term);
      List.iter
        (fun l ->
          if not (List.mem l labels) then
            err "%s: branch to unknown label %s" f.Ir.f_name l)
        (Ir.successors b.Ir.b_term))
    f.Ir.f_blocks;
  !errors

let check_module (m : Ir.modul) =
  let errors = ref (List.concat_map check_func m.Ir.m_funcs) in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let fnames = List.map (fun f -> f.Ir.f_name) m.Ir.m_funcs in
  let gnames = List.map (fun g -> g.Ir.g_name) m.Ir.m_globals in
  let dups names =
    List.sort_uniq compare
      (List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names)
  in
  List.iter (fun n -> err "duplicate function name %s" n) (dups fnames);
  List.iter (fun n -> err "duplicate global name %s" n) (dups gnames);
  List.iter
    (fun (g : Ir.global) ->
      List.iter
        (function
          | Ir.G_func f ->
            if not (List.mem f fnames) then
              err "global %s references unknown function %s" g.Ir.g_name f
          | Ir.G_global gg ->
            if not (List.mem gg gnames) then
              err "global %s references unknown global %s" g.Ir.g_name gg
          | Ir.G_int _ -> ())
        g.Ir.g_init)
    m.Ir.m_globals;
  List.iter
    (fun (vt : Ir.vtable_info) ->
      if not (List.mem vt.Ir.vt_symbol gnames) then
        err "vtable %s: missing global %s" vt.Ir.vt_class vt.Ir.vt_symbol;
      List.iter
        (fun mth ->
          if not (List.mem mth fnames) then
            err "vtable %s: missing method %s" vt.Ir.vt_class mth)
        vt.Ir.vt_methods)
    m.Ir.m_vtables;
  List.rev !errors

let check_module_exn m =
  match check_module m with
  | [] -> ()
  | errs -> failwith ("IR verification failed:\n  " ^ String.concat "\n  " errs)
