(** The MiniC runtime, written in assembly (the musl analogue of the
    evaluation setup): [_start], [exit], [print_char], [print_str],
    [print_int], and a brk-backed bump [alloc]. *)

val source : string

val ext_source : string
(** The multi-process extension object ([fork], [wait], [read_request]),
    linked only into programs that reference it so every single-process
    binary keeps its exact layout. *)
