(** The evaluation's system matrix (paper §V-B) and the one-call
    measurement runner.  All simulation is deterministic, so a single run
    is an exact measurement. *)

type variant =
  | Baseline  (** unmodified processor, stock kernel *)
  | Processor_modified  (** ld.ro-capable processor, stock kernel *)
  | Processor_kernel_modified  (** the full ROLoad system *)

val variant_name : variant -> string
val all_variants : variant list
val machine_config : variant -> Roload_machine.Config.t
val kernel_config : variant -> Roload_kernel.Kernel.config

type cache_stats = { accesses : int; misses : int }

type measurement = {
  status : Roload_kernel.Process.status;
  cycles : int64;
  instructions : int64;
  peak_kib : int;  (** page-granular resident set *)
  footprint_bytes : int;
      (** byte-granular footprint: static image + heap growth + stack *)
  output : string;
  icache : cache_stats;
  dcache : cache_stats;
  itlb : cache_stats;
  dtlb : cache_stats;
  roloads_executed : int;
  metrics : Roload_obs.Metrics.t;
      (** the full counter snapshot; exact, available with tracing off *)
  profile : Roload_obs.Profile.block list;
      (** hot-block attribution; empty unless [run ~profile:true] *)
}

val run :
  ?max_instructions:int64 ->
  ?trace:(pc:int -> Roload_isa.Inst.t -> unit) ->
  ?tracer:Roload_obs.Tracer.t ->
  ?profile:bool ->
  ?engine:Roload_machine.Machine.engine ->
  ?template:Roload_machine.Machine.image ->
  variant:variant ->
  Roload_obj.Exe.t ->
  measurement
(** [engine] selects the execution engine for this run (defaults to the
    machine's effective default: [ROLOAD_ENGINE] if set, else the
    process default, which is trace-compiled).
    [template] seeds the run from a pristine boot image instead of
    creating a machine from reset: [Machine.fork] of a just-created
    machine is bit-identical to [Machine.create] but shares all untouched
    pages copy-on-write, so campaign-style callers (fuzzing, chaos) pay
    the physical-memory boot once per engine rather than once per run.
    The image carries its own engine and hot-threshold; [engine] is
    ignored when [template] is supplied.
    [tracer] attaches the structured event tracer and [profile] enables
    hot-block profiling; neither changes the measurement — cycles,
    statistics and output are bit-identical with both off or on.

    [max_instructions] is the fuel budget (default 5×10⁸ retired
    instructions, orders of magnitude above any paper workload).  A
    program that exhausts it — e.g. an infinite loop — comes back with
    status [Running] rather than hanging the harness; callers that fan
    out cells (experiments, fuzzing, chaos campaigns) treat that as a
    distinct "fuel exhausted" outcome. *)

type server_stats = {
  served : int;  (** requests whose service completed *)
  latencies : int64 array;
      (** completed-request cycle latencies, request-id order *)
  console : string;  (** interleaved write() output of every task *)
  task_statuses : (int * Roload_kernel.Process.status) list;
  records : Roload_kernel.Kernel.request_record array;
      (** per-request delivery ledger (handouts, redeliveries,
          completions, committed result) *)
  restarts : int;  (** supervised worker reincarnations *)
  checksum : int64;
      (** kernel-side fold of committed results — order-independent, so
          identical across schemes, engines and shard counts *)
}

val run_server :
  ?max_instructions:int64 ->
  ?time_slice:int ->
  ?tracer:Roload_obs.Tracer.t ->
  ?engine:Roload_machine.Machine.engine ->
  ?shards:int ->
  ?supervision:Roload_kernel.Kernel.supervision ->
  ?configure:(Roload_kernel.Kernel.t -> unit) ->
  variant:variant ->
  requests:int array ->
  Roload_obj.Exe.t ->
  measurement * server_stats
(** Like {!run}, but through the multi-process kernel: the request
    device is loaded with [requests] across [shards] queues (default 1),
    the executable is spawned as the root task and scheduled round-robin
    ([time_slice] retired instructions per quantum, default 20k) until
    every task exits.  [supervision] arms the worker supervisor (bounded
    deterministic restarts + deadline watchdog); [configure] runs
    against the kernel after the device is loaded and before the root
    boots — chaos callers install request hooks there.  The
    measurement's instruction/cycle counters are machine-global; status,
    peak and output are the root task's.  Deterministic: the quantum is
    counted in retired instructions, so the interleaving is identical
    across engines and host parallelism. *)

val snapshot_metrics :
  machine:Roload_machine.Machine.t ->
  kernel:Roload_kernel.Kernel.t ->
  mmu:Roload_mem.Mmu.t ->
  Roload_obs.Metrics.t
(** Assemble the exact counter snapshot from a live machine/kernel pair —
    the same assembly [run] performs; exposed for runners that drive the
    kernel loop themselves (the roload-chaos campaign). *)

val total_instructions_simulated : unit -> int
(** Instructions simulated by every [run] so far in this process, across
    all domains — the numerator of the bench harness's simulated-MIPS. *)

(** {2 Whole-system snapshots}

    A {!snapshot} composes per-layer images (machine, kernel, process)
    taken at one instant.  Campaigns boot a workload once, pause at the
    trigger frontier, snapshot, and fork thousands of variants from the
    warm image instead of re-booting each from reset. *)

type snapshot

val snapshot :
  machine:Roload_machine.Machine.t ->
  kernel:Roload_kernel.Kernel.t ->
  process:Roload_kernel.Process.t ->
  snapshot
(** Capture a paused system.  Cheap: physical pages are shared
    copy-on-write with the live machine (O(touched pages) from here on,
    not O(memory size)). *)

val restore :
  snapshot ->
  machine:Roload_machine.Machine.t ->
  kernel:Roload_kernel.Kernel.t ->
  process:Roload_kernel.Process.t ->
  unit
(** Put the {e same} objects back into the captured state, compiled
    traces included; resumed execution is byte-identical to the original
    run — architectural state, cycles, every statistic, and output. *)

val fork :
  snapshot -> Roload_machine.Machine.t * Roload_kernel.Kernel.t * Roload_kernel.Process.t
(** A fresh, fully independent system in the captured state, sharing
    physical pages copy-on-write with the image.  Mutating a fork never
    perturbs the image, the parent, or sibling forks; the returned
    process is already scheduled on the returned kernel/machine. *)

val diff : snapshot -> snapshot -> Roload_mem.Phys_mem.page_diff list
(** Page-by-page memory comparison of two snapshots, reporting each
    differing page with its first differing byte — the
    silent-corruption localizer used in chaos verdicts. *)

val exited_cleanly : measurement -> bool
val status_string : measurement -> string
