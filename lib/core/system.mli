(** The evaluation's system matrix (paper §V-B) and the one-call
    measurement runner.  All simulation is deterministic, so a single run
    is an exact measurement. *)

type variant =
  | Baseline  (** unmodified processor, stock kernel *)
  | Processor_modified  (** ld.ro-capable processor, stock kernel *)
  | Processor_kernel_modified  (** the full ROLoad system *)

val variant_name : variant -> string
val all_variants : variant list
val machine_config : variant -> Roload_machine.Config.t
val kernel_config : variant -> Roload_kernel.Kernel.config

type cache_stats = { accesses : int; misses : int }

type measurement = {
  status : Roload_kernel.Process.status;
  cycles : int64;
  instructions : int64;
  peak_kib : int;  (** page-granular resident set *)
  footprint_bytes : int;
      (** byte-granular footprint: static image + heap growth + stack *)
  output : string;
  icache : cache_stats;
  dcache : cache_stats;
  itlb : cache_stats;
  dtlb : cache_stats;
  roloads_executed : int;
  metrics : Roload_obs.Metrics.t;
      (** the full counter snapshot; exact, available with tracing off *)
  profile : Roload_obs.Profile.block list;
      (** hot-block attribution; empty unless [run ~profile:true] *)
}

val run :
  ?max_instructions:int64 ->
  ?trace:(pc:int -> Roload_isa.Inst.t -> unit) ->
  ?tracer:Roload_obs.Tracer.t ->
  ?profile:bool ->
  ?engine:Roload_machine.Machine.engine ->
  variant:variant ->
  Roload_obj.Exe.t ->
  measurement
(** [engine] selects the execution engine for this run (defaults to the
    machine's effective default: [ROLOAD_ENGINE] if set, else the
    process default, which is trace-compiled).
    [tracer] attaches the structured event tracer and [profile] enables
    hot-block profiling; neither changes the measurement — cycles,
    statistics and output are bit-identical with both off or on.

    [max_instructions] is the fuel budget (default 5×10⁸ retired
    instructions, orders of magnitude above any paper workload).  A
    program that exhausts it — e.g. an infinite loop — comes back with
    status [Running] rather than hanging the harness; callers that fan
    out cells (experiments, fuzzing, chaos campaigns) treat that as a
    distinct "fuel exhausted" outcome. *)

val snapshot_metrics :
  machine:Roload_machine.Machine.t ->
  kernel:Roload_kernel.Kernel.t ->
  mmu:Roload_mem.Mmu.t ->
  Roload_obs.Metrics.t
(** Assemble the exact counter snapshot from a live machine/kernel pair —
    the same assembly [run] performs; exposed for runners that drive the
    kernel loop themselves (the roload-chaos campaign). *)

val total_instructions_simulated : unit -> int
(** Instructions simulated by every [run] so far in this process, across
    all domains — the numerator of the bench harness's simulated-MIPS. *)

val exited_cleanly : measurement -> bool
val status_string : measurement -> string
