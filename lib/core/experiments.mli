(** One driver per table/figure of the paper's evaluation (Section V),
    plus the ablations DESIGN.md calls out.  Drivers return both raw
    measurements and rendered ASCII tables; all simulation is
    deterministic, so one run per configuration is an exact
    measurement. *)

module Pass = Roload_passes.Pass
module Suite = Roload_workloads.Spec_suite
module Table = Roload_util.Table

val default_scale : int

type run = {
  benchmark : string;
  scheme : Pass.scheme;
  variant : System.variant;
  measurement : System.measurement;
}

val compile_benchmark :
  ?options:Toolchain.options -> scale:int -> Suite.benchmark -> Roload_obj.Exe.t
(** Memoized across experiments. *)

val run_benchmark :
  ?scheme:Pass.scheme -> ?variant:System.variant -> scale:int -> Suite.benchmark -> run

exception Experiment_failure of string
(** Raised when a benchmark crashes or hardened output diverges from the
    unprotected baseline — experiments never silently report numbers from
    broken runs. *)

type 'a cell_outcome =
  | Cell_ok of 'a
  | Cell_failed of { error : string; attempts : int }
      (** the cell kept raising after every retry; [error] is the last
          exception rendered with [Printexc.to_string] *)

val run_cells_contained :
  ?attempts:int ->
  ?jobs:int ->
  ?on_cell:(int -> 'b cell_outcome -> unit) ->
  f:(attempt:int -> 'a -> 'b) ->
  'a list ->
  'b cell_outcome list
(** Contained fan-out (roload-chaos, Part 2): run every cell behind
    {!Parallel.map_result}'s exception barrier, retrying a failing cell
    up to [attempts] times (default 2) with the attempt number passed to
    [f] so it can re-derive its seeds deterministically — no wall-clock
    backoff.  A cell that keeps failing becomes [Cell_failed] in its
    input slot instead of aborting the run.  [on_cell i outcome] fires
    from the worker domain the moment cell [i] settles (the incremental
    checkpoint hook); the callback must synchronize its own effects. *)

val table1 : unit -> Table.t
val table2 : unit -> Table.t

type table3_result = { synth : Roload_hw.Synth.result; table : Table.t }

val table3 : unit -> table3_result

type section5b_result = {
  runs : run list;
  table : Table.t;
  avg_runtime_overhead_processor : float;
  avg_runtime_overhead_kernel : float;
}

val section5b :
  ?scale:int ->
  ?benchmarks:Suite.benchmark list ->
  ?metrics:bool ->
  unit ->
  section5b_result
(** [metrics] (default false) appends per-row counter columns — ld.ro
    count, ROLoad faults, D-TLB/D$ miss rates from the full-system run.
    Off, the table is byte-identical to the pre-metrics rendering. *)

val enable_metrics : unit -> unit
(** Start collecting a per-cell metrics log from every [run_cells]-based
    experiment (recorded on the main domain, deterministic under -j N). *)

val collected_metrics : unit -> Roload_obs.Metrics.labeled list
(** The log collected since [enable_metrics], in execution order. *)

type scheme_comparison = {
  benchmark : string;
  base : run;
  hardened : (Pass.scheme * run) list;
}

type figure_result = {
  comparisons : scheme_comparison list;
  runtime_table : Table.t;
  memory_table : Table.t;  (** byte-granular footprint *)
  memory_pages_table : Table.t;
      (** page-granular RSS — where ICall's keyed-page fragmentation
          appears (paper §V-C1b) *)
  runtime_averages : (Pass.scheme * float) list;
  memory_averages : (Pass.scheme * float) list;
  metrics_table : Table.t;
      (** per-cell counters (ld.ro, GFPT indirections, faults, miss
          rates), built from the same measurements; printed only under
          --metrics *)
}

val figure3 : ?scale:int -> unit -> figure_result
val figure45 : ?scale:int -> ?benchmarks:Suite.benchmark list -> unit -> figure_result

type security_result = {
  matrix :
    (Pass.scheme
    * (Roload_security.Attack.kind * Roload_security.Attack.outcome) list)
    list;
  table : Table.t;
}

val security : unit -> security_result
val related_work_table : unit -> Table.t

type elide_row = {
  el_benchmark : string;
  el_roloads_before : int;  (** dynamic ld.ro executions, plain hardened build *)
  el_roloads_after : int;  (** same counter, elided build *)
  el_reduction_pct : float;  (** 100 * (before - after) / before; 0 if before = 0 *)
  el_cycles_before : int64;
  el_cycles_after : int64;
}

type elide_result = {
  el_rows : elide_row list;
  el_table : Table.t;
  el_best_reduction_pct : float;  (** max over workloads *)
}

val experiment_elide :
  ?scale:int ->
  ?scheme:Pass.scheme ->
  ?benchmarks:Suite.benchmark list ->
  unit ->
  elide_result
(** The closed loop of the roload-prove layer: each workload is compiled
    hardened (default ICall) twice — plain and with proof-guided ld.ro
    check elision — and both builds run on the full system.  Raises
    {!Experiment_failure} if either build crashes or their outputs
    diverge (elision must be semantically invisible). *)

type server_row = {
  sv_scheme : Pass.scheme;
  sv_wall_s : float;
  sv_requests_per_s : float;  (** served requests per wall-clock second *)
  sv_p50_cycles : int64;  (** median service latency, simulated cycles *)
  sv_p99_cycles : int64;  (** tail service latency, simulated cycles *)
  sv_cycles : int64;  (** machine-global simulated cycles, all tasks *)
  sv_instructions : int64;
  sv_served : int;
}

type server_result = {
  sv_rows : server_row list;
  sv_table : Table.t;
  sv_requests : int;
  sv_console : string;  (** the identical console of every scheme *)
  sv_requests_per_s : float;
      (** the stock (unprotected) scheme's throughput — the figure the
          bench-regression gate tracks *)
}

val experiment_server :
  ?requests:int ->
  ?seed:int64 ->
  ?time_slice:int ->
  ?schemes:Pass.scheme list ->
  unit ->
  server_result
(** The request-serving macro-benchmark: the server workload forked
    into a worker pool on the multi-process kernel, drained through
    virtual dispatch and the indirect-call plugin table under each
    scheme (default stock/VCall/ICall).  Throughput is wall-clock
    requests/s; latency percentiles are deterministic simulated cycles.
    Raises {!Experiment_failure} if any scheme crashes, leaves requests
    unserved, or prints a different checksum — the workload's output is
    partition-independent by construction. *)

val ablation_compressed : ?scale:int -> ?benchmarks:Suite.benchmark list -> unit -> Table.t
val ablation_keys : ?scale:int -> unit -> Table.t
val ablation_separate_code : unit -> Table.t
val ablation_retcall : ?scale:int -> ?benchmarks:Suite.benchmark list -> unit -> Table.t
val ablation_tlb : ?scale:int -> ?entries:int list -> unit -> Table.t
