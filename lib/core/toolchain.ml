(* The toolchain driver: MiniC source → hardened executable image.

   Pipeline (mirroring the paper's Clang/LLVM + binutils flow):
     parse → lower to IR → hardening pass (ROLoad-md annotation & friends)
     → code generation → assemble (with RVC compression) → link with the
     runtime (with separate-code layout). *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass

type options = {
  scheme : Pass.scheme;
  compress : bool; (* RVC compression, incl. c.ld.ro *)
  separate_code : bool; (* the `-z separate-code` analogue *)
  optimize : bool; (* constant folding + dead-code elimination *)
  elide : bool; (* proof-guided ld.ro check elision (roload-prove + roload-elide) *)
}

let default_options =
  {
    scheme = Pass.Unprotected;
    compress = true;
    separate_code = true;
    optimize = true;
    elide = false;
  }

type artifacts = {
  ir_module : Ir.modul;
  pass_report : Pass.report;
  asm_items : Roload_asm.Asm_ir.item list;
  program_object : Roload_obj.Objfile.t;
  exe : Roload_obj.Exe.t;
  elide_stats : Roload_passes.Roload_elide.stats option;
}

exception Compile_error of string

let wrap_errors f =
  try f () with
  | Roload_front.Lexer.Lex_error { line; message } ->
    raise (Compile_error (Printf.sprintf "lex error (line %d): %s" line message))
  | Roload_front.Parser.Parse_error { line; message } ->
    raise (Compile_error (Printf.sprintf "parse error (line %d): %s" line message))
  | Roload_front.Lower.Sema_error { line; message } ->
    raise (Compile_error (Printf.sprintf "semantic error (line %d): %s" line message))
  | Roload_asm.Assemble.Error m -> raise (Compile_error ("assembler: " ^ m))
  | Roload_link.Linker.Error m -> raise (Compile_error ("linker: " ^ m))
  | Roload_codegen.Codegen.Error m -> raise (Compile_error ("codegen: " ^ m))
  | Failure m -> raise (Compile_error m)

let runtime_object ~compress =
  let items = Roload_asm.Asm_parser.parse Runtime.source in
  Roload_asm.Assemble.assemble ~options:{ Roload_asm.Assemble.compress } items

(* The multi-process stubs live in a separate object linked only when the
   program references them: appending an object to a link shifts no
   existing symbol, so single-process binaries stay byte-identical. *)
let ext_runtime_symbols =
  [ "fork"; "wait"; "read_request"; "complete_request"; "server_checksum" ]

let runtime_ext_object ~compress =
  let items = Roload_asm.Asm_parser.parse Runtime.ext_source in
  Roload_asm.Assemble.assemble ~options:{ Roload_asm.Assemble.compress } items

let calls_ext_runtime (m : Ir.modul) =
  List.exists
    (fun (f : Ir.func) ->
      List.exists
        (fun (b : Ir.block) ->
          List.exists
            (function
              | Ir.Call { callee; _ } -> List.mem callee ext_runtime_symbols
              | _ -> false)
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs

let compile ?(options = default_options) ~name source =
  wrap_errors (fun () ->
      let ast = Roload_front.Parser.parse source in
      let m = Roload_front.Lower.lower ast ~module_name:name in
      Roload_ir.Verify.check_module_exn m;
      if options.optimize then begin
        ignore (Roload_passes.Constfold.run m);
        ignore (Roload_passes.Dce.run m);
        Roload_ir.Verify.check_module_exn m
      end;
      let pass_report = Pass.apply options.scheme m in
      Roload_ir.Verify.check_module_exn m;
      (* Proof-guided check elision: only under a clean whole-program
         prove run of this exact hardened module.  Any finding or wild
         store makes [Prove.safe_temp] answer None everywhere, so a
         non-clean module compiles unchanged (zero sites elided) rather
         than failing — --elide is an optimisation, `roloadc --prove` is
         the verification gate. *)
      let elide_stats =
        if not options.elide then None
        else begin
          let pr = Roload_analysis.Prove.run m in
          let stats =
            Roload_passes.Roload_elide.run
              ~prove:(fun ~func ~temp ~key ->
                Roload_analysis.Prove.safe_temp pr ~func ~temp ~key)
              m
          in
          Roload_ir.Verify.check_module_exn m;
          Some stats
        end
      in
      let asm_items = Roload_codegen.Codegen.emit_module m in
      let program_object =
        Roload_asm.Assemble.assemble
          ~options:{ Roload_asm.Assemble.compress = options.compress }
          asm_items
      in
      let objects =
        [ program_object; runtime_object ~compress:options.compress ]
        @
        if calls_ext_runtime m then [ runtime_ext_object ~compress:options.compress ]
        else []
      in
      let exe =
        Roload_link.Linker.link
          ~options:
            { Roload_link.Linker.default_options with
              separate_code = options.separate_code }
          objects
      in
      { ir_module = m; pass_report; asm_items; program_object; exe; elide_stats })

let compile_exe ?options ~name source = (compile ?options ~name source).exe

(* assembly text of the generated program (inspection / -S output) *)
let asm_text artifacts = Roload_asm.Asm_ir.program_to_string artifacts.asm_items

(* Static verification (roload-lint): check the ROLoad invariants over the
   compiled artifacts at all three layers — IR protection-completeness,
   key-consistency dataflow, and the machine-level cross-check of the
   linked image.  Returns [] when every invariant holds. *)
let lint artifacts =
  Roload_analysis.Lint.run
    ~scheme:artifacts.pass_report.Pass.scheme
    ~ir:artifacts.ir_module ~exe:artifacts.exe

(* roload-prove over the hardened IR of a compiled artifact. *)
let prove artifacts = Roload_analysis.Prove.run artifacts.ir_module
