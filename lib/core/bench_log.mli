(** PR-over-PR performance trajectory: per-experiment wall-clock,
    simulated instruction counts and simulated MIPS, serialized as a
    small JSON document ([results/bench.json], schema [roload-bench-v2]:
    every entry carries the execution engine that produced it). *)

type entry = {
  name : string;
  engine : string;  (** execution engine the entry ran on *)
  wall_s : float;
  instructions : int;  (** simulated instructions retired in this entry *)
  sim_mips : float;  (** instructions / wall_s / 1e6 *)
}

val entry : name:string -> engine:string -> wall_s:float -> instructions:int -> entry

val totals : entry list -> float * int * float
(** [(wall_s, instructions, mips)] aggregated over the entries. *)

val to_json :
  ?scale:int ->
  ?jobs:int ->
  ?campaign_cells_per_s:float ->
  ?requests_per_s:float ->
  ?served_ratios:(string * float) list ->
  entry list ->
  string

val write :
  path:string ->
  ?scale:int ->
  ?jobs:int ->
  ?campaign_cells_per_s:float ->
  ?requests_per_s:float ->
  ?served_ratios:(string * float) list ->
  entry list ->
  unit
(** [campaign_cells_per_s] records the snapshot-seeded chaos campaign's
    throughput (settled cells per wall-clock second) and
    [requests_per_s] the server macro-benchmark's stock-scheme
    throughput — each its own top-level figure, gated separately from
    simulated MIPS.  [served_ratios] records the live-server chaos
    campaign's per-scheme serving availability as flat
    [served_ratio_<scheme>] keys (fractions in [0,1]), gated as an
    absolute floor rather than a percentage of baseline. *)

val read_total_mips : string -> float option
(** Scan a written file for its aggregate [total_mips] figure (used by
    the CI regression gate); key-based, so v1 baselines still read.
    [None] if unreadable or absent. *)

val read_campaign_cells_per_s : string -> float option
(** The [campaign_cells_per_s] figure of a written file, if present. *)

val read_requests_per_s : string -> float option
(** The [requests_per_s] figure of a written file, if present. *)

val read_served_ratio : string -> scheme:string -> float option
(** The [served_ratio_<scheme>] figure of a written file, if present. *)
