(** The toolchain driver: MiniC source → hardened executable image
    (parse → lower → hardening pass → codegen → assemble → link with the
    runtime), mirroring the paper's Clang/LLVM + binutils flow. *)

type options = {
  scheme : Roload_passes.Pass.scheme;
  compress : bool;  (** RVC compression, including c.ld.ro *)
  separate_code : bool;  (** the `-z separate-code` analogue (paper §V-B) *)
  optimize : bool;  (** IR constant folding + dead-code elimination *)
  elide : bool;
      (** proof-guided ld.ro check elision: run roload-prove over the
          hardened IR and, only on a clean run, let roload-elide rewrite
          provably-safe keyed sites to plain loads behind one hoisted
          check.  A non-clean prove run disables the rewrite (the module
          compiles unchanged, zero sites elided); use [roloadc --prove]
          as the verification gate. *)
}

val default_options : options
(** Unprotected, compression on, separate-code on, optimization on,
    elision off. *)

type artifacts = {
  ir_module : Roload_ir.Ir.modul;
  pass_report : Roload_passes.Pass.report;
  asm_items : Roload_asm.Asm_ir.item list;
  program_object : Roload_obj.Objfile.t;
  exe : Roload_obj.Exe.t;
  elide_stats : Roload_passes.Roload_elide.stats option;
      (** [Some] iff compiled with [options.elide] *)
}

exception Compile_error of string

val runtime_object : compress:bool -> Roload_obj.Objfile.t
(** The assembled runtime (startup, print helpers, allocator). *)

val wrap_errors : (unit -> 'a) -> 'a
(** Run a pipeline fragment, converting front-end / assembler / linker
    failures into {!Compile_error}.  Exposed so roload-fuzz can rebuild
    the pipeline with a planted miscompile between pass and codegen. *)

val compile : ?options:options -> name:string -> string -> artifacts
(** Raises {!Compile_error} with a located message on any front-end,
    assembler or linker failure. *)

val compile_exe : ?options:options -> name:string -> string -> Roload_obj.Exe.t
val asm_text : artifacts -> string

val lint : artifacts -> Roload_analysis.Diagnostic.t list
(** Static verification (roload-lint) of the compiled artifacts at all
    three layers: IR protection-completeness, key-consistency dataflow,
    and the machine-level cross-check of the linked image.  [] when every
    ROLoad invariant holds. *)

val prove : artifacts -> Roload_analysis.Prove.result
(** roload-prove: whole-program pointee-integrity abstract
    interpretation over the hardened IR (see
    [Roload_analysis.Prove]). *)
