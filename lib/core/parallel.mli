(** A Domainslib-free domain pool for the experiment fan-out: a work
    queue drained by spawned domains, with results returned in input
    order so parallel runs are bit-identical to serial ones. *)

val set_jobs : int -> unit
(** Fix the worker count (the [-j] CLI flag); values < 1 clear the
    override. *)

val default_jobs : unit -> int
(** Worker count: [set_jobs] override, else the [ROLOAD_JOBS]
    environment variable, else [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items] applies [f] to every item, running up to [jobs]
    (default {!default_jobs}) domains concurrently.  Results are in input
    order; if any application raised, the exception of the
    lowest-indexed failing item is re-raised after all workers finish,
    with the worker's original backtrace preserved
    ([Printexc.raise_with_backtrace]).  Each [f] call must be
    self-contained (no shared mutable state). *)

val map_result : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn * Printexc.raw_backtrace) result list
(** The exception barrier under {!map}: like [map], but every cell's
    failure is returned as [Error (exn, backtrace)] in its input slot
    instead of aborting the whole run — the crash-containment primitive
    roload-chaos builds on.  Never raises from worker failures. *)
