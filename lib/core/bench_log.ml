(* PR-over-PR performance trajectory: per-experiment wall-clock, simulated
   instruction counts and simulated MIPS, written as a small hand-rolled
   JSON document (the container has no JSON library; the format is flat
   enough that a scanner suffices for the CI baseline check).

   Schema v2 adds the execution engine to every entry, so a bench file
   records which engine produced its numbers and baselines are only ever
   compared like-for-like. *)

type entry = {
  name : string;
  engine : string; (* execution engine the entry ran on ("traced", ...) *)
  wall_s : float;
  instructions : int; (* simulated instructions retired during this entry *)
  sim_mips : float; (* instructions / wall_s / 1e6 *)
}

let entry ~name ~engine ~wall_s ~instructions =
  {
    name;
    engine;
    wall_s;
    instructions;
    sim_mips = (if wall_s > 0.0 then float_of_int instructions /. wall_s /. 1e6 else 0.0);
  }

let escape = Roload_util.Json.escape

let totals entries =
  let wall = List.fold_left (fun a e -> a +. e.wall_s) 0.0 entries in
  let insts = List.fold_left (fun a e -> a + e.instructions) 0 entries in
  let mips = if wall > 0.0 then float_of_int insts /. wall /. 1e6 else 0.0 in
  (wall, insts, mips)

let to_json ?(scale = 1) ?(jobs = 1) ?campaign_cells_per_s ?requests_per_s
    ?(served_ratios = []) entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"roload-bench-v2\",\n";
  Buffer.add_string b (Printf.sprintf "  \"scale\": %d,\n" scale);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b "  \"entries\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf
           "    { \"name\": \"%s\", \"engine\": \"%s\", \"wall_s\": %.3f, \"instructions\": %d, \"sim_mips\": %.3f }%s\n"
           (escape e.name) (escape e.engine) e.wall_s e.instructions e.sim_mips
           (if i = n - 1 then "" else ",")))
    entries;
  Buffer.add_string b "  ],\n";
  (match campaign_cells_per_s with
  | Some cps ->
    Buffer.add_string b (Printf.sprintf "  \"campaign_cells_per_s\": %.3f,\n" cps)
  | None -> ());
  (match requests_per_s with
  | Some rps -> Buffer.add_string b (Printf.sprintf "  \"requests_per_s\": %.3f,\n" rps)
  | None -> ());
  (* flat per-scheme keys so the same key-based scanner that reads the
     throughput figures reads these *)
  List.iter
    (fun (scheme, r) ->
      Buffer.add_string b
        (Printf.sprintf "  \"served_ratio_%s\": %.5f,\n" (escape scheme) r))
    served_ratios;
  let wall, insts, mips = totals entries in
  Buffer.add_string b
    (Printf.sprintf
       "  \"total\": { \"wall_s\": %.3f, \"instructions\": %d, \"total_mips\": %.3f }\n" wall
       insts mips);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write ~path ?scale ?jobs ?campaign_cells_per_s ?requests_per_s ?served_ratios
    entries =
  let oc = open_out path in
  output_string oc
    (to_json ?scale ?jobs ?campaign_cells_per_s ?requests_per_s ?served_ratios entries);
  close_out oc

(* Minimal scanner for the CI baseline checks: find the first occurrence
   of a key and parse the number after it.  Key-based, so it reads v1
   and v2 files alike (and files without the key simply yield None). *)
let read_float_key path key =
  match
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Some s
    with Sys_error _ -> None
  with
  | None -> None
  | Some s ->
    let klen = String.length key and len = String.length s in
    let rec find i =
      if i + klen > len then None
      else if String.sub s i klen = key then Some (i + klen)
      else find (i + 1)
    in
    (match find 0 with
    | None -> None
    | Some j ->
      let k = ref j in
      while !k < len && s.[!k] = ' ' do
        incr k
      done;
      let e = ref !k in
      while
        !e < len
        && match s.[!e] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false
      do
        incr e
      done;
      if !e > !k then float_of_string_opt (String.sub s !k (!e - !k)) else None)

let read_total_mips path = read_float_key path "\"total_mips\":"

let read_campaign_cells_per_s path = read_float_key path "\"campaign_cells_per_s\":"
let read_requests_per_s path = read_float_key path "\"requests_per_s\":"

let read_served_ratio path ~scheme =
  read_float_key path (Printf.sprintf "\"served_ratio_%s\":" scheme)
