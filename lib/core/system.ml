(* The evaluation's system matrix (paper §V-B): the baseline system, the
   processor-modified system, and the processor-and-kernel-modified
   system — plus a one-call runner that loads an executable and measures
   it on a fresh machine instance (deterministic, so a single run is an
   exact measurement). *)

module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Cache = Roload_cache.Cache
module Tlb = Roload_mem.Tlb
module Mmu = Roload_mem.Mmu

type variant =
  | Baseline (* unmodified processor, stock kernel *)
  | Processor_modified (* ld.ro-capable processor, stock kernel *)
  | Processor_kernel_modified (* the full ROLoad system *)

let variant_name = function
  | Baseline -> "baseline"
  | Processor_modified -> "processor-modified"
  | Processor_kernel_modified -> "processor+kernel-modified"

let all_variants = [ Baseline; Processor_modified; Processor_kernel_modified ]

let machine_config = function
  | Baseline -> Config.baseline
  | Processor_modified | Processor_kernel_modified -> Config.default

let kernel_config = function
  | Baseline | Processor_modified -> Kernel.stock_kernel_config
  | Processor_kernel_modified -> Kernel.default_config

type cache_stats = { accesses : int; misses : int }

type measurement = {
  status : Process.status;
  cycles : int64;
  instructions : int64;
  peak_kib : int;
  footprint_bytes : int;
      (* byte-granular memory footprint: static image + heap growth +
         stack — used for the paper's sub-percent memory overheads, which
         page-granular accounting cannot resolve *)
  output : string;
  icache : cache_stats;
  dcache : cache_stats;
  itlb : cache_stats;
  dtlb : cache_stats;
  roloads_executed : int;
  metrics : Roload_obs.Metrics.t;
  profile : Roload_obs.Profile.block list;
      (* hot-block attribution; empty unless [run ~profile:true] *)
}

let stats_of_cache c =
  let s = Cache.stats c in
  { accesses = s.Cache.hits + s.Cache.misses; misses = s.Cache.misses }

let stats_of_tlb t =
  let s = Tlb.stats t in
  { accesses = s.Tlb.hits + s.Tlb.misses; misses = s.Tlb.misses }

(* Total instructions simulated across every [run] in this process (all
   domains) — the numerator of the bench harness's simulated-MIPS figure. *)
let instructions_simulated = Atomic.make 0

let total_instructions_simulated () = Atomic.get instructions_simulated

(* Assemble the metrics snapshot from the counters the components keep.
   Exact by construction — nothing here is sampled from the trace ring. *)
let snapshot_metrics ~machine ~kernel ~mmu =
  let module Ext = Roload_isa.Roload_ext in
  let counts = Machine.counts machine in
  let key_counts = Machine.roload_key_counts machine in
  let typed = ref 0 in
  for k = Ext.first_type_key to Ext.key_return_sites - 1 do
    typed := !typed + key_counts.(k)
  done;
  let ic = Cache.stats (Roload_cache.Hierarchy.icache (Machine.hierarchy machine)) in
  let dc = Cache.stats (Roload_cache.Hierarchy.dcache (Machine.hierarchy machine)) in
  let it = Tlb.stats (Mmu.itlb mmu) in
  let dt = Tlb.stats (Mmu.dtlb mmu) in
  let faults = Mmu.fault_counts mmu in
  let cpu = Machine.cpu machine in
  {
    Roload_obs.Metrics.engine = Machine.engine_name (Machine.engine machine);
    instructions = Roload_machine.Cpu.instret cpu;
    cycles = Roload_machine.Cpu.cycles cpu;
    loads = counts.Machine.loads;
    stores = counts.Machine.stores;
    roloads = counts.Machine.roloads;
    branches = counts.Machine.branches;
    jumps = counts.Machine.jumps;
    indirect_jumps = counts.Machine.indirect_jumps;
    roload_key0 = key_counts.(Ext.key_default);
    roload_vtable_unified = key_counts.(Ext.key_vtable_unified);
    roload_typed = !typed;
    roload_return_sites = key_counts.(Ext.key_return_sites);
    icache_hits = ic.Cache.hits;
    icache_misses = ic.Cache.misses;
    icache_writebacks = ic.Cache.writebacks;
    dcache_hits = dc.Cache.hits;
    dcache_misses = dc.Cache.misses;
    dcache_writebacks = dc.Cache.writebacks;
    itlb_hits = it.Tlb.hits;
    itlb_misses = it.Tlb.misses;
    dtlb_hits = dt.Tlb.hits;
    dtlb_misses = dt.Tlb.misses;
    page_faults = faults.Mmu.page_faults;
    roload_faults_key = faults.Mmu.roload_key_mismatch;
    roload_faults_ro = faults.Mmu.roload_not_readonly;
    syscalls = Kernel.syscall_count kernel;
    injections = Machine.injections machine;
    dropped_writebacks = dc.Cache.dropped_writebacks + ic.Cache.dropped_writebacks;
    block_enters = Machine.block_enters machine;
    block_hits = Machine.block_hits machine;
    block_decodes = Machine.block_decodes machine;
    trace_enters = Machine.trace_enters machine;
    trace_retires = Machine.trace_retires machine;
    traces_compiled = Machine.traces_compiled machine;
  }

let run ?(max_instructions = 500_000_000L) ?trace ?tracer ?(profile = false) ?engine
    ?template ~variant exe =
  (* [template] is a pristine boot image: forking it is bit-identical to
     [Machine.create] (the campaign-equivalence suite pins this) but
     O(touched pages) instead of zeroing 64 MiB of physical memory, so
     fan-out callers boot once per engine and fork per run.  The image
     carries its own engine and hot-threshold; [engine] is ignored when a
     template is supplied. *)
  let machine =
    match template with
    | Some img -> Machine.fork img
    | None -> Machine.create ?engine (machine_config variant)
  in
  Machine.set_trace machine trace;
  Machine.set_tracer machine tracer;
  Machine.set_profiling machine profile;
  let kernel = Kernel.create ~machine ~config:(kernel_config variant) in
  let process, outcome =
    Kernel.exec ~limit:{ Kernel.max_instructions } kernel exe
  in
  let h = Machine.hierarchy machine in
  let mmu = Process.mmu process in
  let image_bytes =
    List.fold_left
      (fun acc (s : Roload_obj.Exe.segment) -> acc + s.Roload_obj.Exe.mem_size)
      0 exe.Roload_obj.Exe.segments
  in
  let footprint_bytes =
    image_bytes + Process.heap_bytes process
    + (Process.stack_pages * Roload_mem.Page_table.page_size)
  in
  ignore
    (Atomic.fetch_and_add instructions_simulated
       (Int64.to_int outcome.Kernel.instructions));
  {
    status = outcome.Kernel.status;
    cycles = outcome.Kernel.cycles;
    instructions = outcome.Kernel.instructions;
    peak_kib = outcome.Kernel.peak_kib;
    footprint_bytes;
    output = outcome.Kernel.output;
    icache = stats_of_cache (Roload_cache.Hierarchy.icache h);
    dcache = stats_of_cache (Roload_cache.Hierarchy.dcache h);
    itlb = stats_of_tlb (Mmu.itlb mmu);
    dtlb = stats_of_tlb (Mmu.dtlb mmu);
    roloads_executed = (Machine.counts machine).Machine.roloads;
    metrics = snapshot_metrics ~machine ~kernel ~mmu;
    profile = Machine.profile_blocks machine;
  }

(* ---- the request-serving macro-benchmark ---- *)

type server_stats = {
  served : int;
  latencies : int64 array; (* completed requests, request-id order, cycles *)
  console : string; (* interleaved output of every task *)
  task_statuses : (int * Process.status) list;
  records : Kernel.request_record array; (* per-request delivery ledger *)
  restarts : int; (* supervised worker reincarnations *)
  checksum : int64; (* kernel-side committed-result fold *)
}

(* Like [run], but through the multi-process kernel: load the request
   device with [requests], run the scheduler until every task exits.
   The measurement's instructions/cycles are machine-global (all tasks);
   status/peak are the root's.  [shards]/[supervision] configure the
   sharded device and the worker supervisor; [configure] runs against
   the kernel after the device is loaded and before the root boots —
   fault-plan callers install their request hooks there. *)
let run_server ?(max_instructions = 2_000_000_000L) ?time_slice ?tracer ?engine ?shards
    ?supervision ?configure ~variant ~requests exe =
  let machine = Machine.create ?engine (machine_config variant) in
  Machine.set_tracer machine tracer;
  let kernel = Kernel.create ~machine ~config:(kernel_config variant) in
  Kernel.set_requests ?shards kernel requests;
  Option.iter (fun s -> Kernel.set_supervision kernel (Some s)) supervision;
  Option.iter (fun f -> f kernel) configure;
  let process, outcome =
    Kernel.exec_all ~limit:{ Kernel.max_instructions } ?time_slice kernel exe
  in
  let h = Machine.hierarchy machine in
  let mmu = Process.mmu process in
  let image_bytes =
    List.fold_left
      (fun acc (s : Roload_obj.Exe.segment) -> acc + s.Roload_obj.Exe.mem_size)
      0 exe.Roload_obj.Exe.segments
  in
  let footprint_bytes =
    image_bytes + Process.heap_bytes process
    + (Process.stack_pages * Roload_mem.Page_table.page_size)
  in
  ignore
    (Atomic.fetch_and_add instructions_simulated
       (Int64.to_int outcome.Kernel.instructions));
  let measurement =
    {
      status = outcome.Kernel.status;
      cycles = outcome.Kernel.cycles;
      instructions = outcome.Kernel.instructions;
      peak_kib = outcome.Kernel.peak_kib;
      footprint_bytes;
      output = outcome.Kernel.output;
      icache = stats_of_cache (Roload_cache.Hierarchy.icache h);
      dcache = stats_of_cache (Roload_cache.Hierarchy.dcache h);
      itlb = stats_of_tlb (Mmu.itlb mmu);
      dtlb = stats_of_tlb (Mmu.dtlb mmu);
      roloads_executed = (Machine.counts machine).Machine.roloads;
      metrics = snapshot_metrics ~machine ~kernel ~mmu;
      profile = [];
    }
  in
  let stats =
    {
      served = Kernel.requests_served kernel;
      latencies = Kernel.request_latencies kernel;
      console = Kernel.console kernel;
      task_statuses = Kernel.task_statuses kernel;
      records = Kernel.request_records kernel;
      restarts = Kernel.restarts_total kernel;
      checksum = Kernel.server_checksum kernel;
    }
  in
  (measurement, stats)

(* ---- whole-system snapshots ----

   A [snapshot] composes the per-layer images taken at one instant:
   machine (cpu, CoW memory pages, caches, TLBs, decode/block/trace
   caches, all counters), kernel (frame allocator, syscall counter) and
   process (break, accounting, status, console output).  One snapshot
   can seed any number of restores and forks; campaigns boot a workload
   once, pause at the trigger frontier, snapshot, and fork thousands of
   variants from the warm image instead of re-booting from reset. *)

(* The composition itself lives in the kernel library so that the
   attack/fuzz layers below Core can seed from snapshots too; this is
   the canonical front door. *)

type snapshot = Roload_kernel.Snapshot.t

let snapshot ~machine ~kernel ~process =
  Roload_kernel.Snapshot.capture ~machine ~kernel ~process

let restore snap ~machine ~kernel ~process =
  Roload_kernel.Snapshot.restore snap ~machine ~kernel ~process

let fork = Roload_kernel.Snapshot.fork
let diff = Roload_kernel.Snapshot.diff

let exited_cleanly m =
  match m.status with
  | Process.Exited 0 -> true
  | Process.Exited _ | Process.Killed _ | Process.Running -> false

let status_string m =
  match m.status with
  | Process.Exited n -> Printf.sprintf "exit %d" n
  | Process.Killed sg -> Roload_kernel.Signal.to_string sg
  | Process.Running -> "running (instruction limit hit)"
