(* One driver per table/figure of the paper's evaluation (Section V),
   plus the ablations DESIGN.md calls out.  Every driver returns both the
   raw measurements and a rendered ASCII table so the bench harness, the
   CLI and EXPERIMENTS.md all consume the same numbers.

   All simulation is deterministic, so a single run per configuration is
   an exact measurement (no repetitions needed). *)

module Pass = Roload_passes.Pass
module Suite = Roload_workloads.Spec_suite
module Table = Roload_util.Table
module Stats = Roload_util.Stats

let default_scale = Suite.reference_scale

(* ---------- shared measurement helpers ---------- *)

type run = {
  benchmark : string;
  scheme : Pass.scheme;
  variant : System.variant;
  measurement : System.measurement;
}

let compile_cache : (string, Roload_obj.Exe.t) Hashtbl.t = Hashtbl.create 64

let compile_benchmark ?(options = Toolchain.default_options) ~scale
    (b : Suite.benchmark) =
  let key =
    Printf.sprintf "%s/%d/%s/%b/%b/%b" b.Suite.name scale
      (Pass.scheme_name options.Toolchain.scheme)
      options.Toolchain.compress options.Toolchain.separate_code
      options.Toolchain.elide
  in
  match Hashtbl.find_opt compile_cache key with
  | Some exe -> exe
  | None ->
    let exe = Toolchain.compile_exe ~options ~name:b.Suite.name (b.Suite.source ~scale) in
    Hashtbl.add compile_cache key exe;
    exe

let run_benchmark ?(scheme = Pass.Unprotected)
    ?(variant = System.Processor_kernel_modified) ~scale b =
  let options = { Toolchain.default_options with scheme } in
  let exe = compile_benchmark ~options ~scale b in
  let measurement = System.run ~variant exe in
  { benchmark = b.Suite.name; scheme; variant; measurement }

(* Domain-parallel measurement fan-out.  The toolchain (key allocator,
   fresh-name counters) is global mutable state, so every distinct cell is
   compiled serially up front — after which [compile_cache] is only read —
   and then the independent simulations run on the {!Parallel} pool.  Each
   cell owns a fresh machine/kernel/address space, so the measurements are
   bit-identical to a serial run, and [Parallel.map] returns them in input
   order. *)
(* Metrics collection across experiment cells.  Recording happens on the
   main domain only — in [run_cells], after [Parallel.map] has returned
   its in-input-order results — so the log is deterministic under any
   [-j N] and the workers never touch shared state. *)
let metrics_log : Roload_obs.Metrics.labeled list ref = ref []
let metrics_enabled = ref false

let enable_metrics () =
  metrics_enabled := true;
  metrics_log := []

let collected_metrics () = List.rev !metrics_log

let record_metrics rs =
  if !metrics_enabled then
    List.iter
      (fun r ->
        metrics_log :=
          {
            Roload_obs.Metrics.workload = r.benchmark;
            scheme =
              Printf.sprintf "%s/%s" (Pass.scheme_name r.scheme)
                (System.variant_name r.variant);
            m = r.measurement.System.metrics;
          }
          :: !metrics_log)
      rs

let run_cells ~scale cells =
  List.iter
    (fun (b, scheme, _variant) ->
      ignore
        (compile_benchmark ~options:{ Toolchain.default_options with scheme } ~scale b))
    cells;
  let rs =
    Parallel.map (fun (b, scheme, variant) -> run_benchmark ~scheme ~variant ~scale b) cells
  in
  record_metrics rs;
  rs

exception Experiment_failure of string

(* ---------- crash containment (roload-chaos, Part 2) ----------

   A contained fan-out: each cell runs behind {!Parallel.map_result}'s
   exception barrier, is retried a bounded, deterministic number of
   times (the attempt number is passed in so the cell can re-derive its
   seeds — no wall-clock backoff, results stay reproducible), and a cell
   that keeps failing becomes a structured [Cell_failed] row instead of
   aborting the run.  [on_cell] fires from the worker domain as soon as
   a cell settles — the incremental-persistence hook the chaos
   checkpoint writer hangs off — so the callback must synchronize its
   own side effects. *)

type 'a cell_outcome =
  | Cell_ok of 'a
  | Cell_failed of { error : string; attempts : int }

let run_cells_contained ?(attempts = 2) ?jobs ?on_cell ~f items =
  let attempts = max 1 attempts in
  let contained (idx, item) =
    let rec go attempt =
      match f ~attempt item with
      | v -> Cell_ok v
      | exception e ->
        if attempt < attempts then go (attempt + 1)
        else Cell_failed { error = Printexc.to_string e; attempts = attempt }
    in
    let outcome = go 1 in
    (match on_cell with None -> () | Some g -> g idx outcome);
    outcome
  in
  Parallel.map ?jobs contained (List.mapi (fun i x -> (i, x)) items)

let require_clean r =
  if not (System.exited_cleanly r.measurement) then
    raise
      (Experiment_failure
         (Printf.sprintf "%s under %s on %s did not exit cleanly: %s" r.benchmark
            (Pass.scheme_name r.scheme)
            (System.variant_name r.variant)
            (System.status_string r.measurement)))

let require_same_output a b =
  if a.measurement.System.output <> b.measurement.System.output then
    raise
      (Experiment_failure
         (Printf.sprintf "%s: output diverges between %s/%s and %s/%s" a.benchmark
            (Pass.scheme_name a.scheme) (System.variant_name a.variant)
            (Pass.scheme_name b.scheme) (System.variant_name b.variant)))

let cyc r = Int64.to_float r.measurement.System.cycles
let mem_kib r = float_of_int r.measurement.System.footprint_bytes /. 1024.0

(* ---------- Table I: modification footprint ---------- *)

let table1 () =
  let t =
    Table.create ~title:"Table I analogue: ROLoad modification footprint"
      ~header:[ "Component"; "Modification surface (this reproduction)"; "Paper (LoC)" ]
      ()
  in
  Table.add_row t
    [ "RISC-V processor";
      "7 ld.ro-family decodes + c.ld.ro; TLB key field (10b) + parallel ro/key check";
      "59" ];
  Table.add_row t
    [ "Kernel";
      "loader key setup; mmap/mprotect key arguments; 1 new fault class triaged to SIGSEGV";
      "121" ];
  Table.add_row t
    [ "Compiler back-end";
      "ROLoad-md load metadata; VCall/ICall passes; ld.ro emission (+addi when offset needed)";
      "270" ];
  t

(* ---------- Table II: prototype configuration ---------- *)

let table2 () =
  let t =
    Table.create ~title:"Table II: simulated prototype configuration"
      ~header:[ "Component"; "Configuration" ] ()
  in
  List.iter
    (fun (k, v) -> Table.add_row t [ k; v ])
    (Roload_machine.Config.rows Roload_machine.Config.default);
  t

(* ---------- Table III: hardware cost ---------- *)

type table3_result = { synth : Roload_hw.Synth.result; table : Table.t }

let table3 () =
  let synth = Roload_hw.Synth.run () in
  let c = synth.Roload_hw.Synth.comparison in
  let t0 = synth.Roload_hw.Synth.timing_without in
  let t1 = synth.Roload_hw.Synth.timing_with in
  let t =
    Table.create ~title:"Table III: hardware resource cost (FPGA synthesis model)"
      ~header:
        [ ""; "core #LUT"; "%"; "core #FF"; "%"; "sys #LUT"; "%"; "sys #FF"; "%";
          "slack(ns)"; "Fmax(MHz)" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let open Roload_hw.Area in
  Table.add_row t
    [ "without ld.ro";
      string_of_int c.core_without.luts; "-";
      string_of_int c.core_without.ffs; "-";
      string_of_int c.system_without.luts; "-";
      string_of_int c.system_without.ffs; "-";
      Printf.sprintf "%.3f" t0.Roload_hw.Timing_sta.worst_slack_ns;
      Printf.sprintf "%.2f" t0.Roload_hw.Timing_sta.fmax_mhz ];
  Table.add_row t
    [ "with ld.ro";
      string_of_int c.core_with.luts; Printf.sprintf "+%.5f" c.lut_increase_core_pct;
      string_of_int c.core_with.ffs; Printf.sprintf "+%.5f" c.ff_increase_core_pct;
      string_of_int c.system_with.luts; Printf.sprintf "+%.5f" c.lut_increase_system_pct;
      string_of_int c.system_with.ffs; Printf.sprintf "+%.5f" c.ff_increase_system_pct;
      Printf.sprintf "%.3f" t1.Roload_hw.Timing_sta.worst_slack_ns;
      Printf.sprintf "%.2f" t1.Roload_hw.Timing_sta.fmax_mhz ];
  { synth; table = t }

(* ---------- §V-B: system-level overhead (3 systems) ---------- *)

type section5b_result = {
  runs : run list;
  table : Table.t;
  avg_runtime_overhead_processor : float;
  avg_runtime_overhead_kernel : float;
}

let section5b ?(scale = default_scale) ?(benchmarks = Suite.all) ?(metrics = false) () =
  (* [metrics] appends per-row counter columns (ld.ro, ROLoad faults,
     TLB/cache miss rates from the full-system run); the default table is
     byte-identical to what it was before the metrics columns existed. *)
  let base_header =
    [ "benchmark"; "baseline cyc"; "+proc cyc"; "+proc ovh"; "+proc+kern cyc";
      "+proc+kern ovh"; "mem ovh" ]
  in
  let metric_header = [ "ld.ro"; "ro faults"; "D-TLB miss"; "D$ miss" ] in
  let header = if metrics then base_header @ metric_header else base_header in
  let table =
    Table.create
      ~title:"Section V-B: unmodified SPEC-like benchmarks on the three systems"
      ~header
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) (List.tl header))
      ()
  in
  let all_runs = ref [] in
  let ovh_p = ref [] and ovh_k = ref [] in
  (* three system variants per benchmark, fanned out across domains *)
  let cells =
    List.concat_map
      (fun b ->
        List.map (fun v -> (b, Pass.Unprotected, v)) System.all_variants)
      benchmarks
  in
  let results = run_cells ~scale cells in
  let rec regroup bs rs =
    match (bs, rs) with
    | [], [] -> []
    | b :: bs', base :: proc :: kern :: rs' -> (b, base, proc, kern) :: regroup bs' rs'
    | _ -> assert false
  in
  List.iter
    (fun ((b : Suite.benchmark), base, proc, kern) ->
      require_clean base;
      require_clean proc;
      require_clean kern;
      require_same_output base proc;
      require_same_output base kern;
      all_runs := !all_runs @ [ base; proc; kern ];
      let op = Stats.overhead_pct ~base:(cyc base) ~measured:(cyc proc) in
      let ok = Stats.overhead_pct ~base:(cyc base) ~measured:(cyc kern) in
      let om = Stats.overhead_pct ~base:(mem_kib base) ~measured:(mem_kib kern) in
      ovh_p := op :: !ovh_p;
      ovh_k := ok :: !ovh_k;
      let base_cells =
        [ b.Suite.name;
          Int64.to_string base.measurement.System.cycles;
          Int64.to_string proc.measurement.System.cycles;
          Stats.pct_string op;
          Int64.to_string kern.measurement.System.cycles;
          Stats.pct_string ok;
          Stats.pct_string om ]
      in
      let metric_cells =
        if not metrics then []
        else
          let m = kern.measurement.System.metrics in
          [ string_of_int m.Roload_obs.Metrics.roloads;
            string_of_int (Roload_obs.Metrics.roload_faults m);
            Printf.sprintf "%.3f%%" (Roload_obs.Metrics.dtlb_miss_pct m);
            Printf.sprintf "%.3f%%" (Roload_obs.Metrics.dcache_miss_pct m) ]
      in
      Table.add_row table (base_cells @ metric_cells))
    (regroup benchmarks results);
  let avg_p = Stats.mean !ovh_p and avg_k = Stats.mean !ovh_k in
  Table.add_row table
    ([ "average"; "-"; "-"; Stats.pct_string avg_p; "-"; Stats.pct_string avg_k; "-" ]
    @ (if metrics then [ "-"; "-"; "-"; "-" ] else []));
  {
    runs = !all_runs;
    table;
    avg_runtime_overhead_processor = avg_p;
    avg_runtime_overhead_kernel = avg_k;
  }

(* ---------- shared scheme-comparison machinery for Figs 3–5 ---------- *)

type scheme_comparison = {
  benchmark : string;
  base : run;
  hardened : (Pass.scheme * run) list;
}

(* Batched over all benchmarks so the whole (benchmark × scheme) grid
   fans out across domains at once. *)
let compare_schemes_all ~scale ~schemes benchmarks =
  let variant = System.Processor_kernel_modified in
  let cells =
    List.concat_map
      (fun b ->
        (b, Pass.Unprotected, variant) :: List.map (fun s -> (b, s, variant)) schemes)
      benchmarks
  in
  let results = run_cells ~scale cells in
  let per = 1 + List.length schemes in
  let rec take n rs = if n = 0 then ([], rs) else
    match rs with
    | r :: rs' ->
      let taken, rest = take (n - 1) rs' in
      (r :: taken, rest)
    | [] -> assert false
  in
  let rec regroup bs rs =
    match bs with
    | [] ->
      assert (rs = []);
      []
    | (b : Suite.benchmark) :: bs' ->
      let group, rest = take per rs in
      let base = List.hd group in
      require_clean base;
      let hardened =
        List.map2
          (fun scheme r ->
            require_clean r;
            require_same_output base r;
            (scheme, r))
          schemes (List.tl group)
      in
      { benchmark = b.Suite.name; base; hardened } :: regroup bs' rest
  in
  regroup benchmarks results

let overhead_table ~title ~schemes ~value ~comparisons =
  let header =
    "benchmark" :: List.concat_map (fun s -> [ Pass.scheme_name s ^ " ovh" ]) schemes
  in
  let table =
    Table.create ~title ~header
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) schemes)
      ()
  in
  let per_scheme = Hashtbl.create 8 in
  List.iter
    (fun cmp ->
      let cells =
        List.map
          (fun scheme ->
            let r = List.assoc scheme cmp.hardened in
            let ovh = Stats.overhead_pct ~base:(value cmp.base) ~measured:(value r) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt per_scheme scheme) in
            Hashtbl.replace per_scheme scheme (ovh :: prev);
            Stats.pct_string ovh)
          schemes
      in
      Table.add_row table (cmp.benchmark :: cells))
    comparisons;
  let averages =
    List.map (fun s -> (s, Stats.mean (Hashtbl.find per_scheme s))) schemes
  in
  Table.add_row table
    ("average" :: List.map (fun (_, v) -> Stats.pct_string v) averages);
  (table, averages)

(* ---------- Figure 3: VCall vs VTint (3 C++ benchmarks) ---------- *)

type figure_result = {
  comparisons : scheme_comparison list;
  runtime_table : Table.t;
  memory_table : Table.t; (* byte-granular footprint *)
  memory_pages_table : Table.t;
      (* page-granular resident set: this is where the keyed-page
         fragmentation of ICall's GFPTs shows up (the paper's explanation
         for ICall's memory overhead exceeding CFI's, §V-C1b) *)
  runtime_averages : (Pass.scheme * float) list;
  memory_averages : (Pass.scheme * float) list;
  metrics_table : Table.t;
      (* per-cell counters (ld.ro, GFPT indirections, faults, miss rates);
         built from the same measurements, printed only under --metrics *)
}

let mem_pages r = float_of_int r.measurement.System.peak_kib

(* The counter companion to an overhead table: one row per
   (benchmark, scheme) cell, from measurements already taken. *)
let metrics_table_of ~title ~schemes comparisons =
  let table =
    Table.create ~title
      ~header:
        [ "benchmark"; "scheme"; "ld.ro"; "gfpt"; "ro faults"; "D-TLB miss"; "D$ miss" ]
      ~aligns:
        [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  List.iter
    (fun cmp ->
      List.iter
        (fun (label, r) ->
          let m = r.measurement.System.metrics in
          Table.add_row table
            [ cmp.benchmark; label;
              string_of_int m.Roload_obs.Metrics.roloads;
              string_of_int m.Roload_obs.Metrics.roload_typed;
              string_of_int (Roload_obs.Metrics.roload_faults m);
              Printf.sprintf "%.3f%%" (Roload_obs.Metrics.dtlb_miss_pct m);
              Printf.sprintf "%.3f%%" (Roload_obs.Metrics.dcache_miss_pct m) ])
        (("unprotected", cmp.base)
        :: List.map (fun s -> (Pass.scheme_name s, List.assoc s cmp.hardened)) schemes))
    comparisons;
  table

let figure_generic ~scale ~benchmarks ~schemes ~runtime_title ~memory_title =
  let comparisons = compare_schemes_all ~scale ~schemes benchmarks in
  let runtime_table, runtime_averages =
    overhead_table ~title:runtime_title ~schemes ~value:cyc ~comparisons
  in
  let memory_table, memory_averages =
    overhead_table ~title:memory_title ~schemes ~value:mem_kib ~comparisons
  in
  let memory_pages_table, _ =
    overhead_table ~title:(memory_title ^ " [page-granular RSS]") ~schemes
      ~value:mem_pages ~comparisons
  in
  let metrics_table =
    metrics_table_of ~title:(runtime_title ^ " [counters]") ~schemes comparisons
  in
  { comparisons; runtime_table; memory_table; memory_pages_table; runtime_averages;
    memory_averages; metrics_table }

let figure3 ?(scale = default_scale) () =
  figure_generic ~scale ~benchmarks:Suite.cxx_benchmarks
    ~schemes:[ Pass.Vcall; Pass.Vtint_baseline ]
    ~runtime_title:"Figure 3 (runtime): VCall vs VTint, C++ benchmarks"
    ~memory_title:"Figure 3 (memory): VCall vs VTint, C++ benchmarks"

(* ---------- Figures 4 & 5: ICall vs CFI (all benchmarks) ---------- *)

let figure45 ?(scale = default_scale) ?(benchmarks = Suite.all) () =
  figure_generic ~scale ~benchmarks
    ~schemes:[ Pass.Icall; Pass.Cfi_baseline ]
    ~runtime_title:"Figure 4: runtime overhead, ICall vs CFI"
    ~memory_title:"Figure 5: memory overhead, ICall vs CFI"

(* ---------- §V-C2 security matrix ---------- *)

type security_result = {
  matrix : (Pass.scheme * (Roload_security.Attack.kind * Roload_security.Attack.outcome) list) list;
  table : Table.t;
}

let security () =
  (* compile serially (global toolchain state), attack in parallel *)
  let exes =
    List.map
      (fun scheme ->
        let options = { Toolchain.default_options with scheme } in
        ( scheme,
          Toolchain.compile_exe ~options ~name:"victim" Roload_security.Victim.source ))
      Pass.all_schemes
  in
  let matrix =
    Parallel.map
      (fun (scheme, exe) -> (scheme, Roload_security.Eval.run_corpus ~exe ()))
      exes
  in
  let table =
    Table.create ~title:"Section V-C2: attack outcomes per hardening scheme"
      ~header:
        ("attack"
        :: List.map (fun s -> Pass.scheme_name s) Pass.all_schemes)
      ()
  in
  List.iter
    (fun kind ->
      let cells =
        List.map
          (fun (_, results) ->
            Roload_security.Attack.outcome_name (List.assoc kind results))
          matrix
      in
      Table.add_row table (Roload_security.Attack.kind_name kind :: cells))
    Roload_security.Attack.all_kinds;
  { matrix; table }

let related_work_table () =
  let t =
    Table.create ~title:"Section VI: mechanism comparison"
      ~header:[ "mechanism"; "acts"; "granularity"; "extra arch state"; "overhead" ]
      ()
  in
  List.iter
    (fun (m : Roload_security.Compare.mechanism) ->
      Table.add_row t
        [ m.Roload_security.Compare.name;
          Roload_security.Compare.act_point_name m.Roload_security.Compare.acts;
          m.Roload_security.Compare.granularity;
          (if m.Roload_security.Compare.extra_arch_state then "yes" else "no");
          m.Roload_security.Compare.runtime_overhead ])
    Roload_security.Compare.mechanisms;
  t

(* ---------- ablations ---------- *)

(* RVC compression (incl. c.ld.ro): code-size effect the paper motivates
   the compressed encoding with. *)
let ablation_compressed ?(scale = 1) ?(benchmarks = Suite.cxx_benchmarks) () =
  let table =
    Table.create ~title:"Ablation: RVC compression (code bytes, ICall-hardened)"
      ~header:[ "benchmark"; "uncompressed"; "compressed"; "saving" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let text_bytes exe =
    List.fold_left
      (fun acc (s : Roload_obj.Exe.segment) ->
        if s.Roload_obj.Exe.perms.Roload_mem.Perm.x then
          acc + String.length s.Roload_obj.Exe.data
        else acc)
      0 exe.Roload_obj.Exe.segments
  in
  List.iter
    (fun b ->
      let mk compress =
        compile_benchmark
          ~options:{ Toolchain.default_options with scheme = Pass.Icall; compress }
          ~scale b
      in
      let unc = text_bytes (mk false) and com = text_bytes (mk true) in
      Table.add_row table
        [ b.Suite.name; string_of_int unc; string_of_int com;
          Printf.sprintf "-%.1f%%" (float_of_int (unc - com) /. float_of_int unc *. 100.0) ])
    benchmarks;
  table

(* Key granularity: per-hierarchy keys (VCall) vs the unified vtable key
   (ICall) — the paper credits the unified key with better TLB/cache
   locality (§V-C1b). *)
let ablation_keys ?(scale = 1) () =
  let table =
    Table.create
      ~title:"Ablation: vtable key granularity (per-hierarchy vs unified)"
      ~header:[ "benchmark"; "scheme"; "cycles"; "D-TLB misses"; "runtime ovh" ]
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let schemes = [ Pass.Vcall; Pass.Icall ] in
  let comparisons = compare_schemes_all ~scale ~schemes Suite.cxx_benchmarks in
  List.iter
    (fun cmp ->
      List.iter
        (fun scheme ->
          let r = List.assoc scheme cmp.hardened in
          Table.add_row table
            [ cmp.benchmark; Pass.scheme_name scheme;
              Int64.to_string r.measurement.System.cycles;
              string_of_int r.measurement.System.dtlb.System.misses;
              Stats.pct_string
                (Stats.overhead_pct ~base:(cyc cmp.base) ~measured:(cyc r)) ])
        schemes)
    comparisons;
  table

(* separate-code layout: without it every ld.ro faults (§V-B). *)
let ablation_separate_code () =
  let b = List.hd Suite.cxx_benchmarks in
  let mk separate_code =
    Toolchain.compile_exe
      ~options:{ Toolchain.default_options with scheme = Pass.Vcall; separate_code }
      ~name:b.Suite.name (b.Suite.source ~scale:1)
  in
  let with_sc = System.run ~variant:System.Processor_kernel_modified (mk true) in
  let without_sc = System.run ~variant:System.Processor_kernel_modified (mk false) in
  let table =
    Table.create ~title:"Ablation: -z separate-code requirement (VCall-hardened omnetpp)"
      ~header:[ "layout"; "outcome" ] ()
  in
  Table.add_row table [ "separate-code"; System.status_string with_sc ];
  Table.add_row table [ "merged ro+text"; System.status_string without_sc ];
  table

(* The §IV-C backward-edge extension: runtime cost of the return-site
   allowlist (protected calls + ld.ro returns) across the suite. *)
let ablation_retcall ?(scale = 1) ?(benchmarks = Suite.all) () =
  let table =
    Table.create
      ~title:"Ablation: backward-edge protection (Retcall, §IV-C extension)"
      ~header:[ "benchmark"; "runtime ovh"; "memory ovh"; "ld.ro/1k insts" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let ovhs = ref [] in
  let comparisons = compare_schemes_all ~scale ~schemes:[ Pass.Retcall ] benchmarks in
  List.iter
    (fun cmp ->
      let base = cmp.base in
      let r = List.assoc Pass.Retcall cmp.hardened in
      let ovh = Stats.overhead_pct ~base:(cyc base) ~measured:(cyc r) in
      ovhs := ovh :: !ovhs;
      let density =
        1000.0
        *. float_of_int r.measurement.System.roloads_executed
        /. Int64.to_float r.measurement.System.instructions
      in
      Table.add_row table
        [ cmp.benchmark; Stats.pct_string ovh;
          Stats.pct_string
            (Stats.overhead_pct ~base:(mem_kib base) ~measured:(mem_kib r));
          Printf.sprintf "%.2f" density ])
    comparisons;
  Table.add_row table [ "average"; Stats.pct_string (Stats.mean !ovhs); "-"; "-" ];
  table

(* ---------- roload-prove + roload-elide: proof-guided check elision ----------

   The closed loop of the static-analysis layer: compile each workload
   ICall-hardened twice — once plain, once with --elide (a clean
   whole-program prove run followed by proof-guided rewriting of
   provably-safe ld.ro sites to plain loads behind one hoisted check) —
   run both on the full system and compare the dynamic ld.ro execution
   counts.  Output divergence between the two builds is an
   [Experiment_failure]: elision must be semantically invisible. *)

type elide_row = {
  el_benchmark : string;
  el_roloads_before : int;  (** dynamic ld.ro executions, plain ICall build *)
  el_roloads_after : int;  (** same counter, elided build *)
  el_reduction_pct : float;  (** 100 * (before - after) / before; 0 if before = 0 *)
  el_cycles_before : int64;
  el_cycles_after : int64;
}

type elide_result = {
  el_rows : elide_row list;
  el_table : Table.t;
  el_best_reduction_pct : float;  (** max over workloads *)
}

let experiment_elide ?(scale = default_scale) ?(scheme = Pass.Icall)
    ?(benchmarks = Suite.all) () =
  let plain = { Toolchain.default_options with scheme } in
  let elided = { Toolchain.default_options with scheme; elide = true } in
  (* compile serially (global toolchain state), simulate in parallel *)
  List.iter
    (fun b ->
      ignore (compile_benchmark ~options:plain ~scale b);
      ignore (compile_benchmark ~options:elided ~scale b))
    benchmarks;
  let cells = List.concat_map (fun b -> [ (b, plain); (b, elided) ]) benchmarks in
  let results =
    Parallel.map
      (fun (b, options) ->
        let exe = compile_benchmark ~options ~scale b in
        let measurement = System.run ~variant:System.Processor_kernel_modified exe in
        { benchmark = b.Suite.name; scheme = options.Toolchain.scheme;
          variant = System.Processor_kernel_modified; measurement })
      cells
  in
  let rec regroup = function
    | [] -> []
    | before :: after :: rest -> (before, after) :: regroup rest
    | [ _ ] -> assert false
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "roload-elide: proof-guided ld.ro elision (%s-hardened)"
           (Pass.scheme_name scheme))
      ~header:
        [ "benchmark"; "ld.ro"; "ld.ro elided"; "removed"; "cycles"; "cycles elided";
          "cyc delta" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let rows =
    List.map
      (fun (before, after) ->
        require_clean before;
        require_clean after;
        require_same_output before after;
        let rb = before.measurement.System.roloads_executed in
        let ra = after.measurement.System.roloads_executed in
        let red =
          if rb = 0 then 0.0 else 100.0 *. float_of_int (rb - ra) /. float_of_int rb
        in
        let row =
          {
            el_benchmark = before.benchmark;
            el_roloads_before = rb;
            el_roloads_after = ra;
            el_reduction_pct = red;
            el_cycles_before = before.measurement.System.cycles;
            el_cycles_after = after.measurement.System.cycles;
          }
        in
        Table.add_row table
          [ row.el_benchmark; string_of_int rb; string_of_int ra;
            Printf.sprintf "-%.1f%%" red;
            Int64.to_string row.el_cycles_before;
            Int64.to_string row.el_cycles_after;
            Stats.pct_string
              (Stats.overhead_pct
                 ~base:(Int64.to_float row.el_cycles_before)
                 ~measured:(Int64.to_float row.el_cycles_after)) ];
        row)
      (regroup results)
  in
  (* not recorded in the metrics log: both cells of a pair would carry the
     same scheme label, and the elided build is not part of the committed
     cycle baselines *)
  let best =
    List.fold_left (fun acc r -> max acc r.el_reduction_pct) 0.0 rows
  in
  Table.add_row table
    [ "best"; "-"; "-"; Printf.sprintf "-%.1f%%" best; "-"; "-"; "-" ];
  { el_rows = rows; el_table = table; el_best_reduction_pct = best }

(* ---------- the request-serving macro-benchmark ----------

   The server workload through the multi-process kernel: the root forks
   a worker pool, workers drain the request device through virtual
   dispatch (VCall surface) and an indirect-call plugin table (ICall
   surface).  Throughput is wall-clock requests/s; latency percentiles
   are in simulated cycles (request handed out -> service completed),
   so they are deterministic and comparable across hosts.

   Which worker serves which request depends on the interleaving — and
   each scheme's instruction stream (hence interleaving) differs.  The
   workload's checksum is a pure function of the payload multiset, so
   the consoles must still come out byte-identical across schemes; any
   divergence is a real bug and an [Experiment_failure]. *)

type server_row = {
  sv_scheme : Pass.scheme;
  sv_wall_s : float;
  sv_requests_per_s : float;  (** served requests per wall-clock second *)
  sv_p50_cycles : int64;  (** median service latency, simulated cycles *)
  sv_p99_cycles : int64;  (** tail service latency, simulated cycles *)
  sv_cycles : int64;  (** machine-global simulated cycles, all tasks *)
  sv_instructions : int64;
  sv_served : int;
}

type server_result = {
  sv_rows : server_row list;
  sv_table : Table.t;
  sv_requests : int;
  sv_console : string;  (** the identical console of every scheme *)
  sv_requests_per_s : float;
      (** the stock (unprotected) scheme's throughput — the figure the
          bench-regression gate tracks *)
}

let latency_percentile lats p =
  let n = Array.length lats in
  if n = 0 then 0L
  else begin
    let a = Array.copy lats in
    Array.sort Int64.compare a;
    a.((p * (n - 1)) / 100)
  end

let experiment_server ?(requests = 100_000) ?(seed = 42L) ?time_slice
    ?(schemes = [ Pass.Unprotected; Pass.Vcall; Pass.Icall ]) () =
  let module Server = Roload_workloads.Server_like in
  let stream = Server.requests ~seed ~count:requests in
  (* compile serially (global toolchain state), simulate in parallel *)
  let exes =
    List.map
      (fun scheme ->
        ( scheme,
          Toolchain.compile_exe
            ~options:{ Toolchain.default_options with scheme }
            ~name:Server.name
            (Server.source ~scale:1) ))
      schemes
  in
  let cells =
    Parallel.map
      (fun (scheme, exe) ->
        let t0 = Unix.gettimeofday () in
        let m, stats =
          System.run_server ?time_slice ~variant:System.Processor_kernel_modified
            ~requests:stream exe
        in
        (scheme, m, stats, Unix.gettimeofday () -. t0))
      exes
  in
  let console =
    match cells with
    | (_, _, s, _) :: _ -> s.System.console
    | [] -> invalid_arg "experiment_server: no schemes"
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "server macro-benchmark: %d requests, %d workers" requests
           Server.workers)
      ~header:[ "scheme"; "req/s"; "p50 (cyc)"; "p99 (cyc)"; "total cyc"; "ovh"; "served" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let base_cycles = ref None in
  let rows =
    List.map
      (fun (scheme, (m : System.measurement), (stats : System.server_stats), wall) ->
        let label = Pass.scheme_name scheme in
        if not (System.exited_cleanly m) then
          raise
            (Experiment_failure
               (Printf.sprintf "server under %s did not exit cleanly: %s" label
                  (System.status_string m)));
        if stats.System.served <> requests then
          raise
            (Experiment_failure
               (Printf.sprintf "server under %s served %d of %d requests" label
                  stats.System.served requests));
        if stats.System.console <> console then
          raise
            (Experiment_failure
               (Printf.sprintf
                  "server checksum diverges under %s — the request partition leaked into \
                   the output"
                  label));
        List.iter
          (fun (pid, st) ->
            match st with
            | Roload_kernel.Process.Exited _ -> ()
            | _ ->
              raise
                (Experiment_failure
                   (Printf.sprintf "server under %s: task %d did not exit" label pid)))
          stats.System.task_statuses;
        let row =
          {
            sv_scheme = scheme;
            sv_wall_s = wall;
            sv_requests_per_s =
              (if wall > 0.0 then float_of_int stats.System.served /. wall else 0.0);
            sv_p50_cycles = latency_percentile stats.System.latencies 50;
            sv_p99_cycles = latency_percentile stats.System.latencies 99;
            sv_cycles = m.System.cycles;
            sv_instructions = m.System.instructions;
            sv_served = stats.System.served;
          }
        in
        let base =
          match !base_cycles with
          | Some c -> c
          | None ->
            base_cycles := Some m.System.cycles;
            m.System.cycles
        in
        Table.add_row table
          [ label;
            Printf.sprintf "%.0f" row.sv_requests_per_s;
            Int64.to_string row.sv_p50_cycles;
            Int64.to_string row.sv_p99_cycles;
            Int64.to_string row.sv_cycles;
            Stats.pct_string
              (Stats.overhead_pct ~base:(Int64.to_float base)
                 ~measured:(Int64.to_float row.sv_cycles));
            string_of_int row.sv_served ];
        row)
      cells
  in
  (* not recorded in the metrics log: the server cells are gated by the
     requests_per_s figure, not the committed cycle baselines *)
  let stock_rps =
    match rows with r :: _ -> r.sv_requests_per_s | [] -> 0.0
  in
  {
    sv_rows = rows;
    sv_table = table;
    sv_requests = requests;
    sv_console = console;
    sv_requests_per_s = stock_rps;
  }

(* D-TLB reach sensitivity for the key-granularity argument. *)
let ablation_tlb ?(scale = 1) ?(entries = [ 8; 16; 32; 64 ]) () =
  let b =
    match Suite.find "xalancbmk" with Some b -> b | None -> List.hd Suite.cxx_benchmarks
  in
  let table =
    Table.create ~title:"Ablation: D-TLB entries vs vcall hardening (xalancbmk)"
      ~header:[ "entries"; "scheme"; "cycles"; "D-TLB miss rate" ]
      ~aligns:[ Table.Right; Table.Left; Table.Right; Table.Right ]
      ()
  in
  let schemes = [ Pass.Unprotected; Pass.Vcall; Pass.Icall ] in
  (* compile serially, then fan the (entries × scheme) sweep out *)
  let cells =
    List.concat_map
      (fun n ->
        List.map
          (fun scheme ->
            let options = { Toolchain.default_options with scheme } in
            (n, scheme, compile_benchmark ~options ~scale b))
          schemes)
      entries
  in
  let rows =
    Parallel.map
      (fun (n, scheme, exe) ->
        let machine_config = { Roload_machine.Config.default with dtlb_entries = n } in
        let machine = Roload_machine.Machine.create machine_config in
        let kernel =
          Roload_kernel.Kernel.create ~machine ~config:Roload_kernel.Kernel.default_config
        in
        let _p, outcome = Roload_kernel.Kernel.exec kernel exe in
        let mmu = Roload_kernel.Process.mmu _p in
        let st = Roload_mem.Tlb.stats (Roload_mem.Mmu.dtlb mmu) in
        let rate =
          float_of_int st.Roload_mem.Tlb.misses
          /. float_of_int (max 1 (st.Roload_mem.Tlb.hits + st.Roload_mem.Tlb.misses))
          *. 100.0
        in
        [ string_of_int n; Pass.scheme_name scheme;
          Int64.to_string outcome.Roload_kernel.Kernel.cycles;
          Printf.sprintf "%.4f%%" rate ])
      cells
  in
  List.iter (Table.add_row table) rows;
  table
