(* A Domainslib-free domain pool for the experiment fan-out.

   Independent simulation cells — each owns a fresh machine, kernel and
   address space — are drained from a shared work queue by
   [Domain.spawn]ed workers.  Results land in a per-index slot, so the
   output order is the input order regardless of which domain finished
   first, and a run with [jobs = 1] is bit-identical to a run with
   [jobs = n].  Exceptions are captured per cell and re-raised in input
   order (the first failing cell wins deterministically). *)

let jobs_override = ref None

let set_jobs n = jobs_override := if n >= 1 then Some n else None

(* Priority: explicit [set_jobs] (the [-j] flag) > [ROLOAD_JOBS] >
   [Domain.recommended_domain_count]. *)
let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
    match Sys.getenv_opt "ROLOAD_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
    | None -> Domain.recommended_domain_count ())

(* The exception barrier: every cell's outcome is captured as a [result],
   with the raw backtrace taken at the catch site so a re-raise can
   preserve the worker's stack (satellite: [raise] alone would rebuild
   the trace from the re-raise point). *)
let map_result ?jobs f items =
  match items with
  | [] -> []
  | _ ->
    let items = Array.of_list items in
    let n = Array.length items in
    let jobs =
      let j = match jobs with Some j -> max 1 j | None -> default_jobs () in
      min j n
    in
    let capture x =
      match f x with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    if jobs <= 1 then Array.to_list (Array.map capture items)
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (capture items.(i));
            go ()
          end
        in
        go ()
      in
      let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join helpers;
      Array.to_list results
      |> List.map (function Some r -> r | None -> assert false)
    end

let map ?jobs f items =
  map_result ?jobs f items
  |> List.map (function
       | Ok v -> v
       | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
