(* The MiniC runtime, written in assembly (the musl-libc analogue of the
   evaluation setup): program startup, console output helpers, and a
   brk-backed bump allocator.  It is assembled as a separate object and
   linked with every program. *)

let source = {|
# MiniC runtime: _start, print helpers, allocator.

.section .text

.global _start
_start:
    call main
    # exit(main's return value)
    li a7, 93
    ecall

.global exit
exit:
    li a7, 93
    ecall

.global print_char
print_char:
    addi sp, sp, -16
    sb a0, 0(sp)
    li a0, 1
    mv a1, sp
    li a2, 1
    li a7, 64
    ecall
    addi sp, sp, 16
    ret

.global print_str
print_str:
    mv a1, a0
    mv t0, a0
__rt$strlen_loop:
    lbu t1, 0(t0)
    beqz t1, __rt$strlen_done
    addi t0, t0, 1
    j __rt$strlen_loop
__rt$strlen_done:
    sub a2, t0, a1
    li a0, 1
    li a7, 64
    ecall
    ret

.global print_int
print_int:
    addi sp, sp, -64
    sd ra, 56(sp)
    addi t0, sp, 31
    li t1, 10
    # Work on the NEGATIVE magnitude: -2^63 has no positive counterpart,
    # so negating a negative input would overflow right back to itself.
    # Every int64 has a representable negation of its absolute value, and
    # RISC-V rem takes the dividend's sign, so digits come out in -9..0.
    mv t2, a0
    li t3, 1
    blt t2, zero, __rt$pi_loop
    li t3, 0
    sub t2, zero, t2
__rt$pi_loop:
    rem t4, t2, t1
    sub t4, zero, t4
    addi t4, t4, 48
    sb t4, 0(t0)
    addi t0, t0, -1
    div t2, t2, t1
    bnez t2, __rt$pi_loop
    beqz t3, __rt$pi_nosign
    li t4, 45
    sb t4, 0(t0)
    addi t0, t0, -1
__rt$pi_nosign:
    addi a1, t0, 1
    addi t5, sp, 32
    sub a2, t5, a1
    li a0, 1
    li a7, 64
    ecall
    ld ra, 56(sp)
    addi sp, sp, 64
    ret

# alloc(n): brk-backed bump allocator returning 8-byte-aligned chunks
.global alloc
alloc:
    addi a0, a0, 7
    andi a0, a0, -8
    la t0, __rt$heap_ptr
    ld t1, 0(t0)
    bnez t1, __rt$alloc_have
    # first call: discover the current brk
    mv t2, a0
    li a0, 0
    li a7, 214
    ecall
    mv t1, a0
    mv a0, t2
__rt$alloc_have:
    add t2, t1, a0
    mv t3, t1
    mv a0, t2
    li a7, 214
    ecall
    la t0, __rt$heap_ptr
    sd t2, 0(t0)
    mv a0, t3
    ret

.section .data
__rt$heap_ptr:
    .quad 0
|}

(* Extension object: the multi-process syscalls.  Kept out of [source]
   and linked only into programs that call them, so every pre-existing
   binary keeps its exact layout (and its exact cycle counts). *)
let ext_source = {|
# MiniC runtime extension: fork/wait and the request-source device.

.section .text

.global fork
fork:
    li a7, 220
    ecall
    ret

# wait(): returns the reaped child's exit status, or the negative errno.
# The kernel writes the status into an 8-byte stack slot passed in a0
# and returns the child's pid (negative on error).
.global wait
wait:
    addi sp, sp, -16
    mv a0, sp
    li a7, 260
    ecall
    blt a0, zero, __rt$wait_done
    ld a0, 0(sp)
__rt$wait_done:
    addi sp, sp, 16
    ret

# read_request(): next payload from the request device, -1 when drained.
.global read_request
read_request:
    li a7, 1024
    ecall
    ret

# complete_request(result): explicit idempotent ack of the inflight
# request, committing its result into the device checksum.
.global complete_request
complete_request:
    li a7, 1025
    ecall
    ret

# server_checksum(): kernel-side fold of committed results (mod 1000003).
.global server_checksum
server_checksum:
    li a7, 1026
    ecall
    ret
|}
