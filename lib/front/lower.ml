(* Semantic analysis + lowering of MiniC to the IR.

   Typing is deliberately word-oriented: every value is a 64-bit word; the
   type information drives load/store widths (i8 vs i64), pointer-
   arithmetic scaling, virtual-method slot resolution, and indirect-call
   signature identity (the type classes of the ICall defense).  Classes
   have a vptr in their first word; vtables become read-only globals and
   are recorded in [m_vtables] so hardening passes can re-key them. *)

module Ir = Roload_ir.Ir

exception Sema_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Sema_error { line; message })) fmt

(* ---------- program-level environment ---------- *)

type method_info = {
  mi_virtual : bool;
  mi_impl : string; (* mangled function name *)
  mi_sig : Ir.signature; (* including the leading this *)
  mi_decl_class : string;
}

type class_info = {
  ci_name : string;
  ci_parent : string option;
  ci_fields : (string * Ir.ty) list; (* layout order, inherited first *)
  ci_vslots : string list; (* virtual method names, slot order *)
  ci_methods : (string * method_info) list; (* declared here *)
}

type struct_info = { si_fields : (string * Ir.ty) list }

type genv = {
  mutable classes : (string * class_info) list;
  mutable structs : (string * struct_info) list;
  mutable typedefs : (string * Ir.signature) list;
  mutable functions : (string * Ir.signature) list;
  mutable globals : (string * (Ir.ty * bool)) list; (* ty, is_array *)
  mutable strings : (string * string) list; (* symbol -> contents *)
  mutable string_count : int;
}

let builtin_functions =
  [
    ("print_int", { Ir.params = [ Ir.I64 ]; ret = Ir.Void });
    ("print_char", { Ir.params = [ Ir.I64 ]; ret = Ir.Void });
    ("print_str", { Ir.params = [ Ir.Ptr Ir.I8 ]; ret = Ir.Void });
    ("exit", { Ir.params = [ Ir.I64 ]; ret = Ir.Void });
    ("alloc", { Ir.params = [ Ir.I64 ]; ret = Ir.Ptr Ir.I8 });
    (* multi-process kernel: fork/wait and the request-source device *)
    ("fork", { Ir.params = []; ret = Ir.I64 });
    ("wait", { Ir.params = []; ret = Ir.I64 });
    ("read_request", { Ir.params = []; ret = Ir.I64 });
    ("complete_request", { Ir.params = [ Ir.I64 ]; ret = Ir.I64 });
    ("server_checksum", { Ir.params = []; ret = Ir.I64 });
  ]

let find_class genv name = List.assoc_opt name genv.classes
let find_struct genv name = List.assoc_opt name genv.structs

let rec conv_ty genv line (t : Ast.ty) : Ir.ty =
  match t with
  | Ast.T_int -> Ir.I64
  | Ast.T_char -> Ir.I8
  | Ast.T_void -> Ir.Void
  | Ast.T_ptr t -> Ir.Ptr (conv_ty genv line t)
  | Ast.T_named n -> (
    match List.assoc_opt n genv.typedefs with
    | Some s -> Ir.Fun_ptr s
    | None ->
      if find_class genv n <> None then Ir.Class_ref n
      else if find_struct genv n <> None then Ir.Struct_ref n
      else fail line "unknown type %s" n)

let mangle cls m = cls ^ "$" ^ m

let vtable_symbol cls = "__vt$" ^ cls

(* byte size of a value of this type when stored in an array/field *)
let elem_size = function
  | Ir.I8 -> 1
  | Ir.I64 | Ir.Ptr _ | Ir.Fun_ptr _ -> 8
  | Ir.Struct_ref _ | Ir.Class_ref _ | Ir.Void -> 8 (* pointers to these only *)

let sizeof genv line (t : Ir.ty) =
  match t with
  | Ir.I8 -> 1
  | Ir.I64 | Ir.Ptr _ | Ir.Fun_ptr _ -> 8
  | Ir.Void -> fail line "sizeof(void)"
  | Ir.Struct_ref n -> (
    match find_struct genv n with
    | Some si -> 8 * List.length si.si_fields
    | None -> fail line "unknown struct %s" n)
  | Ir.Class_ref n -> (
    match find_class genv n with
    | Some ci -> 8 + (8 * List.length ci.ci_fields)
    | None -> fail line "unknown class %s" n)

let width_of = function
  | Ir.I8 -> Ir.W8
  | Ir.I64 | Ir.Ptr _ | Ir.Fun_ptr _ | Ir.Struct_ref _ | Ir.Class_ref _ | Ir.Void ->
    Ir.W64

(* field lookup: returns byte offset and type *)
let class_field genv line cls fname =
  match find_class genv cls with
  | None -> fail line "unknown class %s" cls
  | Some ci -> (
    let rec idx i = function
      | [] -> None
      | (n, t) :: _ when n = fname -> Some (i, t)
      | _ :: rest -> idx (i + 1) rest
    in
    match idx 0 ci.ci_fields with
    | Some (i, t) -> (8 + (8 * i), t) (* vptr occupies offset 0 *)
    | None -> fail line "class %s has no field %s" cls fname)

let struct_field genv line sname fname =
  match find_struct genv sname with
  | None -> fail line "unknown struct %s" sname
  | Some si -> (
    let rec idx i = function
      | [] -> None
      | (n, t) :: _ when n = fname -> Some (i, t)
      | _ :: rest -> idx (i + 1) rest
    in
    match idx 0 si.si_fields with
    | Some (i, t) -> (8 * i, t)
    | None -> fail line "struct %s has no field %s" sname fname)

(* method lookup walking up the hierarchy *)
let rec lookup_method genv line cls m =
  match find_class genv cls with
  | None -> fail line "unknown class %s" cls
  | Some ci -> (
    match List.assoc_opt m ci.ci_methods with
    | Some mi -> mi
    | None -> (
      match ci.ci_parent with
      | Some p -> lookup_method genv line p m
      | None -> fail line "class %s has no method %s" cls m))

let vslot_of genv line cls m =
  match find_class genv cls with
  | None -> fail line "unknown class %s" cls
  | Some ci -> (
    let rec idx i = function
      | [] -> fail line "class %s has no virtual slot for %s" cls m
      | n :: _ when n = m -> i
      | _ :: rest -> idx (i + 1) rest
    in
    idx 0 ci.ci_vslots)

let rec hierarchy_root genv cls =
  match find_class genv cls with
  | Some { ci_parent = Some p; _ } -> hierarchy_root genv p
  | Some _ | None -> cls

(* ---------- function-lowering context ---------- *)

type storage =
  | S_temp of Ir.temp * Ir.ty
  | S_frame of int * Ir.ty (* frame slot holding an array of elem type *)

type ctx = {
  genv : genv;
  func : Ir.func;
  mutable cur_label : string;
  mutable cur_instrs : Ir.instr list; (* reversed *)
  mutable done_blocks : Ir.block list; (* reversed *)
  mutable locals : (string * storage) list list; (* scope stack *)
  mutable label_count : int;
  mutable loop_stack : (string * string) list; (* (break target, continue target) *)
  this_class : string option;
}

let new_label ctx prefix =
  let n = ctx.label_count in
  ctx.label_count <- n + 1;
  Printf.sprintf ".L%s%d" prefix n

let emit ctx i = ctx.cur_instrs <- i :: ctx.cur_instrs

let seal ctx term =
  let blk =
    { Ir.b_label = ctx.cur_label; b_instrs = List.rev ctx.cur_instrs; b_term = term }
  in
  ctx.done_blocks <- blk :: ctx.done_blocks;
  ctx.cur_instrs <- []

let start ctx label = ctx.cur_label <- label

let fresh ctx = Ir.new_temp ctx.func

let push_scope ctx = ctx.locals <- [] :: ctx.locals

let pop_scope ctx =
  match ctx.locals with
  | _ :: rest -> ctx.locals <- rest
  | [] -> ()

let bind ctx name storage =
  match ctx.locals with
  | scope :: rest -> ctx.locals <- ((name, storage) :: scope) :: rest
  | [] -> ctx.locals <- [ [ (name, storage) ] ]

let lookup_local ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match List.assoc_opt name scope with Some s -> Some s | None -> go rest)
  in
  go ctx.locals

let intern_string genv s =
  match List.find_opt (fun (_, v) -> v = s) genv.strings with
  | Some (sym, _) -> sym
  | None ->
    let sym = Printf.sprintf "__str$%d" genv.string_count in
    genv.string_count <- genv.string_count + 1;
    genv.strings <- (sym, s) :: genv.strings;
    sym

(* ---------- expressions ---------- *)

let rec lower_expr ctx (e : Ast.expr) : Ir.value * Ir.ty =
  let line = e.Ast.line in
  match e.Ast.e with
  | Ast.Int_lit v -> (Ir.Const v, Ir.I64)
  | Ast.Char_lit c -> (Ir.Const (Int64.of_int (Char.code c)), Ir.I64)
  | Ast.Null -> (Ir.Const 0L, Ir.Ptr Ir.I8)
  | Ast.String_lit s ->
    let sym = intern_string ctx.genv s in
    (Ir.Global sym, Ir.Ptr Ir.I8)
  | Ast.Sizeof t ->
    let ty = conv_ty ctx.genv line t in
    (Ir.Const (Int64.of_int (sizeof ctx.genv line ty)), Ir.I64)
  | Ast.Cast (t, inner) ->
    let v, _ = lower_expr ctx inner in
    (v, conv_ty ctx.genv line t)
  | Ast.Ident name -> lower_ident ctx line name
  | Ast.Binop (op, a, b) -> lower_binop ctx line op a b
  | Ast.Unop (op, a) -> lower_unop ctx line op a
  | Ast.Index (arr, idx) ->
    let base, off, ty = lower_mem_location ctx (Ast.Index (arr, idx)) line in
    let dst = fresh ctx in
    emit ctx (Ir.Load { dst; addr = base; offset = off; width = width_of ty; md = Ir.no_md () });
    (Ir.Temp dst, ty)
  | Ast.Member (p, f) ->
    let base, off, ty = lower_mem_location ctx (Ast.Member (p, f)) line in
    let dst = fresh ctx in
    emit ctx (Ir.Load { dst; addr = base; offset = off; width = width_of ty; md = Ir.no_md () });
    (Ir.Temp dst, ty)
  | Ast.Call (callee, args) -> lower_call ctx line callee args
  | Ast.Method_call (obj, m, args) -> lower_method_call ctx line obj m args
  | Ast.New cls ->
    if find_class ctx.genv cls = None then fail line "unknown class %s" cls;
    let size = sizeof ctx.genv line (Ir.Class_ref cls) in
    let dst = fresh ctx in
    emit ctx (Ir.Call { dst = Some dst; callee = "alloc"; args = [ Ir.Const (Int64.of_int size) ] });
    emit ctx
      (Ir.Store { src = Ir.Global (vtable_symbol cls); addr = Ir.Temp dst; offset = 0; width = Ir.W64 });
    (Ir.Temp dst, Ir.Ptr (Ir.Class_ref cls))

and lower_ident ctx line name =
  match lookup_local ctx name with
  | Some (S_temp (t, ty)) -> (Ir.Temp t, ty)
  | Some (S_frame (slot, elem_ty)) ->
    let t = fresh ctx in
    emit ctx (Ir.Lea_frame (t, slot));
    (Ir.Temp t, Ir.Ptr elem_ty)
  | None -> (
    (* implicit this->field inside methods *)
    match ctx.this_class with
    | Some cls when (try ignore (class_field ctx.genv line cls name); true with Sema_error _ -> false) ->
      let off, fty = class_field ctx.genv line cls name in
      let this_v, _ = lower_ident ctx line "this" in
      let dst = fresh ctx in
      emit ctx (Ir.Load { dst; addr = this_v; offset = off; width = width_of fty; md = Ir.no_md () });
      (Ir.Temp dst, fty)
    | Some _ | None -> (
      match List.assoc_opt name ctx.genv.globals with
      | Some (ty, true) -> (Ir.Global name, Ir.Ptr ty) (* arrays decay *)
      | Some (ty, false) ->
        let dst = fresh ctx in
        emit ctx
          (Ir.Load { dst; addr = Ir.Global name; offset = 0; width = width_of ty; md = Ir.no_md () });
        (Ir.Temp dst, ty)
      | None -> (
        match List.assoc_opt name ctx.genv.functions with
        | Some s -> (Ir.Func_addr name, Ir.Fun_ptr s)
        | None -> fail line "unknown identifier %s" name)))

and lower_binop ctx line op a b =
  match op with
  | Ast.Land ->
    (* a && b: short circuit producing 0/1 *)
    let result = fresh ctx in
    let l_rhs = new_label ctx "and_rhs" in
    let l_false = new_label ctx "and_false" in
    let l_end = new_label ctx "and_end" in
    let va, _ = lower_expr ctx a in
    seal ctx (Ir.Cbr (va, l_rhs, l_false));
    start ctx l_rhs;
    let vb, _ = lower_expr ctx b in
    emit ctx (Ir.Bin (Ir.Ne, result, vb, Ir.Const 0L));
    seal ctx (Ir.Br l_end);
    start ctx l_false;
    emit ctx (Ir.Bin (Ir.Add, result, Ir.Const 0L, Ir.Const 0L));
    seal ctx (Ir.Br l_end);
    start ctx l_end;
    (Ir.Temp result, Ir.I64)
  | Ast.Lor ->
    let result = fresh ctx in
    let l_rhs = new_label ctx "or_rhs" in
    let l_true = new_label ctx "or_true" in
    let l_end = new_label ctx "or_end" in
    let va, _ = lower_expr ctx a in
    seal ctx (Ir.Cbr (va, l_true, l_rhs));
    start ctx l_rhs;
    let vb, _ = lower_expr ctx b in
    emit ctx (Ir.Bin (Ir.Ne, result, vb, Ir.Const 0L));
    seal ctx (Ir.Br l_end);
    start ctx l_true;
    emit ctx (Ir.Bin (Ir.Add, result, Ir.Const 1L, Ir.Const 0L));
    seal ctx (Ir.Br l_end);
    start ctx l_end;
    (Ir.Temp result, Ir.I64)
  | _ ->
    let va, ta = lower_expr ctx a in
    let vb, tb = lower_expr ctx b in
    let irop =
      match op with
      | Ast.Add -> Ir.Add
      | Ast.Sub -> Ir.Sub
      | Ast.Mul -> Ir.Mul
      | Ast.Div -> Ir.Div
      | Ast.Rem -> Ir.Rem
      | Ast.Band -> Ir.And
      | Ast.Bor -> Ir.Or
      | Ast.Bxor -> Ir.Xor
      | Ast.Shl -> Ir.Shl
      | Ast.Shr -> Ir.Shr
      | Ast.Eq -> Ir.Eq
      | Ast.Ne -> Ir.Ne
      | Ast.Lt -> Ir.Lt
      | Ast.Le -> Ir.Le
      | Ast.Gt -> Ir.Gt
      | Ast.Ge -> Ir.Ge
      | Ast.Land | Ast.Lor -> assert false
    in
    (* pointer arithmetic scaling: ptr ± int scales by element size *)
    let scale v ty_elem =
      let sz = elem_size ty_elem in
      if sz = 1 then v
      else begin
        let t = fresh ctx in
        emit ctx (Ir.Bin (Ir.Mul, t, v, Ir.Const (Int64.of_int sz)));
        Ir.Temp t
      end
    in
    let dst = fresh ctx in
    (match (irop, ta, tb) with
    | Ir.Add, Ir.Ptr te, _ -> emit ctx (Ir.Bin (Ir.Add, dst, va, scale vb te))
    | Ir.Add, _, Ir.Ptr te -> emit ctx (Ir.Bin (Ir.Add, dst, scale va te, vb))
    | Ir.Sub, Ir.Ptr te, (Ir.I64 | Ir.I8) -> emit ctx (Ir.Bin (Ir.Sub, dst, va, scale vb te))
    | _ -> emit ctx (Ir.Bin (irop, dst, va, vb)));
    let result_ty =
      match (irop, ta, tb) with
      | (Ir.Add | Ir.Sub), Ir.Ptr te, (Ir.I64 | Ir.I8) -> Ir.Ptr te
      | Ir.Add, (Ir.I64 | Ir.I8), Ir.Ptr te -> Ir.Ptr te
      | _ -> Ir.I64
    in
    ignore line;
    (Ir.Temp dst, result_ty)

and lower_unop ctx line op a =
  match op with
  | Ast.Neg ->
    let v, _ = lower_expr ctx a in
    let dst = fresh ctx in
    emit ctx (Ir.Bin (Ir.Sub, dst, Ir.Const 0L, v));
    (Ir.Temp dst, Ir.I64)
  | Ast.Not ->
    let v, _ = lower_expr ctx a in
    let dst = fresh ctx in
    emit ctx (Ir.Bin (Ir.Eq, dst, v, Ir.Const 0L));
    (Ir.Temp dst, Ir.I64)
  | Ast.Bnot ->
    let v, _ = lower_expr ctx a in
    let dst = fresh ctx in
    emit ctx (Ir.Bin (Ir.Xor, dst, v, Ir.Const (-1L)));
    (Ir.Temp dst, Ir.I64)
  | Ast.Deref -> (
    let v, ty = lower_expr ctx a in
    match ty with
    | Ir.Ptr elem ->
      let dst = fresh ctx in
      emit ctx (Ir.Load { dst; addr = v; offset = 0; width = width_of elem; md = Ir.no_md () });
      (Ir.Temp dst, elem)
    | Ir.Fun_ptr _ -> (v, ty) (* *fp is fp, as in C *)
    | _ -> fail line "cannot dereference non-pointer")
  | Ast.Addr_of -> (
    match a.Ast.e with
    | Ast.Ident name -> (
      match lookup_local ctx name with
      | Some (S_frame (slot, elem_ty)) ->
        let t = fresh ctx in
        emit ctx (Ir.Lea_frame (t, slot));
        (Ir.Temp t, Ir.Ptr elem_ty)
      | Some (S_temp _) -> fail line "cannot take the address of register variable %s" name
      | None -> (
        match List.assoc_opt name ctx.genv.globals with
        | Some (ty, _) -> (Ir.Global name, Ir.Ptr ty)
        | None -> (
          match List.assoc_opt name ctx.genv.functions with
          | Some s -> (Ir.Func_addr name, Ir.Fun_ptr s)
          | None -> fail line "unknown identifier %s" name)))
    | Ast.Index _ | Ast.Member _ ->
      let base, off, ty = lower_mem_location ctx a.Ast.e line in
      if off = 0 then (base, Ir.Ptr ty)
      else begin
        let t = fresh ctx in
        emit ctx (Ir.Bin (Ir.Add, t, base, Ir.Const (Int64.of_int off)));
        (Ir.Temp t, Ir.Ptr ty)
      end
    | _ -> fail line "cannot take the address of this expression")

(* memory locations for Index/Member *)
and lower_mem_location ctx ek line : Ir.value * int * Ir.ty =
  match ek with
  | Ast.Index (arr, idx) -> (
    let va, ta = lower_expr ctx arr in
    let vi, _ = lower_expr ctx idx in
    match ta with
    | Ir.Ptr elem ->
      let sz = elem_size elem in
      let addr =
        match vi with
        | Ir.Const c ->
          let off = Int64.to_int c * sz in
          if off = 0 then va
          else begin
            let t = fresh ctx in
            emit ctx (Ir.Bin (Ir.Add, t, va, Ir.Const (Int64.of_int off)));
            Ir.Temp t
          end
        | _ ->
          let scaled =
            if sz = 1 then vi
            else begin
              let t = fresh ctx in
              emit ctx (Ir.Bin (Ir.Mul, t, vi, Ir.Const (Int64.of_int sz)));
              Ir.Temp t
            end
          in
          let t = fresh ctx in
          emit ctx (Ir.Bin (Ir.Add, t, va, scaled));
          Ir.Temp t
      in
      (addr, 0, elem)
    | _ -> fail line "indexing a non-pointer")
  | Ast.Member (p, f) -> (
    let vp, tp = lower_expr ctx p in
    match tp with
    | Ir.Ptr (Ir.Class_ref c) | Ir.Class_ref c ->
      let off, fty = class_field ctx.genv line c f in
      (vp, off, fty)
    | Ir.Ptr (Ir.Struct_ref s) | Ir.Struct_ref s ->
      let off, fty = struct_field ctx.genv line s f in
      (vp, off, fty)
    | _ -> fail line "member access on non-struct/class pointer")
  | _ -> fail line "not a memory location"

and lower_call ctx line callee args =
  match callee.Ast.e with
  (* inside a method body, a bare call to a sibling method is an implicit
     this->m(...) *)
  | Ast.Ident name
    when (match ctx.this_class with
         | Some cls ->
           lookup_local ctx name = None
           && (try ignore (lookup_method ctx.genv line cls name); true
               with Sema_error _ -> false)
         | None -> false) ->
    let this = { Ast.e = Ast.Ident "this"; line } in
    lower_method_call ctx line this name args
  | Ast.Ident name when lookup_local ctx name = None && List.assoc_opt name ctx.genv.globals = None -> (
    (* direct call to a known function or builtin *)
    match List.assoc_opt name ctx.genv.functions with
    | Some s ->
      let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
      if List.length vargs <> List.length s.Ir.params then
        fail line "%s expects %d arguments" name (List.length s.Ir.params);
      let dst = if s.Ir.ret = Ir.Void then None else Some (fresh ctx) in
      emit ctx (Ir.Call { dst; callee = name; args = vargs });
      ((match dst with Some d -> Ir.Temp d | None -> Ir.Const 0L), s.Ir.ret)
    | None -> fail line "unknown function %s" name)
  | _ -> (
    (* indirect call through a function-pointer value *)
    let vf, tf = lower_expr ctx callee in
    match tf with
    | Ir.Fun_ptr s ->
      let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
      if List.length vargs <> List.length s.Ir.params then
        fail line "indirect call arity mismatch";
      let dst = if s.Ir.ret = Ir.Void then None else Some (fresh ctx) in
      emit ctx
        (Ir.Call_indirect
           { dst; callee = vf; args = vargs; sig_id = Ir.signature_id s;
             md = { Ir.ic_roload_key = None; ic_elided = false; ic_cfi_label = None } });
      ((match dst with Some d -> Ir.Temp d | None -> Ir.Const 0L), s.Ir.ret)
    | _ -> fail line "calling a non-function value")

and lower_method_call ctx line obj m args =
  let vobj, tobj = lower_expr ctx obj in
  let cls =
    match tobj with
    | Ir.Ptr (Ir.Class_ref c) | Ir.Class_ref c -> c
    | _ -> fail line "method call on non-class pointer"
  in
  let mi = lookup_method ctx.genv line cls m in
  let vargs = List.map (fun a -> fst (lower_expr ctx a)) args in
  if List.length vargs + 1 <> List.length mi.mi_sig.Ir.params then
    fail line "method %s::%s arity mismatch" cls m;
  let dst = if mi.mi_sig.Ir.ret = Ir.Void then None else Some (fresh ctx) in
  if mi.mi_virtual then begin
    let slot = vslot_of ctx.genv line cls m in
    emit ctx
      (Ir.Vcall
         { dst; obj = vobj; slot; class_name = cls; args = vargs;
           md = { Ir.vc_roload_key = None; vc_vtint = false; vc_cfi_label = None } })
  end
  else emit ctx (Ir.Call { dst; callee = mi.mi_impl; args = vobj :: vargs });
  ((match dst with Some d -> Ir.Temp d | None -> Ir.Const 0L), mi.mi_sig.Ir.ret)

(* ---------- statements ---------- *)

let rec lower_stmt ctx (s : Ast.stmt) =
  match s with
  | Ast.Block stmts ->
    push_scope ctx;
    List.iter (lower_stmt ctx) stmts;
    pop_scope ctx
  | Ast.Expr_stmt e -> ignore (lower_expr ctx e)
  | Ast.If (cond, then_, else_) -> (
    let vc, _ = lower_expr ctx cond in
    let l_then = new_label ctx "then" in
    let l_end = new_label ctx "endif" in
    match else_ with
    | None ->
      seal ctx (Ir.Cbr (vc, l_then, l_end));
      start ctx l_then;
      lower_stmt ctx then_;
      seal ctx (Ir.Br l_end);
      start ctx l_end
    | Some e ->
      let l_else = new_label ctx "else" in
      seal ctx (Ir.Cbr (vc, l_then, l_else));
      start ctx l_then;
      lower_stmt ctx then_;
      seal ctx (Ir.Br l_end);
      start ctx l_else;
      lower_stmt ctx e;
      seal ctx (Ir.Br l_end);
      start ctx l_end)
  | Ast.While (cond, body) ->
    let l_head = new_label ctx "while" in
    let l_body = new_label ctx "body" in
    let l_end = new_label ctx "endwhile" in
    seal ctx (Ir.Br l_head);
    start ctx l_head;
    let vc, _ = lower_expr ctx cond in
    seal ctx (Ir.Cbr (vc, l_body, l_end));
    start ctx l_body;
    ctx.loop_stack <- (l_end, l_head) :: ctx.loop_stack;
    lower_stmt ctx body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    seal ctx (Ir.Br l_head);
    start ctx l_end
  | Ast.For (init, cond, step, body) ->
    push_scope ctx;
    (match init with Some s -> lower_stmt ctx s | None -> ());
    let l_head = new_label ctx "for" in
    let l_body = new_label ctx "forbody" in
    let l_step = new_label ctx "forstep" in
    let l_end = new_label ctx "endfor" in
    seal ctx (Ir.Br l_head);
    start ctx l_head;
    (match cond with
    | Some c ->
      let vc, _ = lower_expr ctx c in
      seal ctx (Ir.Cbr (vc, l_body, l_end))
    | None -> seal ctx (Ir.Br l_body));
    start ctx l_body;
    ctx.loop_stack <- (l_end, l_step) :: ctx.loop_stack;
    lower_stmt ctx body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    seal ctx (Ir.Br l_step);
    start ctx l_step;
    (match step with Some s -> lower_stmt ctx s | None -> ());
    seal ctx (Ir.Br l_head);
    start ctx l_end;
    pop_scope ctx
  | Ast.Return (e, _line) ->
    let v = match e with Some e -> Some (fst (lower_expr ctx e)) | None -> None in
    seal ctx (Ir.Ret v);
    start ctx (new_label ctx "dead")
  | Ast.Break line -> (
    match ctx.loop_stack with
    | (b, _) :: _ ->
      seal ctx (Ir.Br b);
      start ctx (new_label ctx "dead")
    | [] -> fail line "break outside loop")
  | Ast.Continue line -> (
    match ctx.loop_stack with
    | (_, c) :: _ ->
      seal ctx (Ir.Br c);
      start ctx (new_label ctx "dead")
    | [] -> fail line "continue outside loop")
  | Ast.Decl (t, name, array, init, line) -> (
    let ty = conv_ty ctx.genv line t in
    match array with
    | Some n ->
      let slot = Ir.new_frame_slot ctx.func ~size:(n * elem_size ty) in
      bind ctx name (S_frame (slot, ty));
      if init <> None then fail line "array initializers are not supported for locals"
    | None ->
      let tmp = fresh ctx in
      bind ctx name (S_temp (tmp, ty));
      let v = match init with Some e -> fst (lower_expr ctx e) | None -> Ir.Const 0L in
      emit ctx (Ir.Bin (Ir.Add, tmp, v, Ir.Const 0L)))
  | Ast.Assign (lhs, rhs, line) -> (
    let vr, _ = lower_expr ctx rhs in
    match lhs.Ast.e with
    | Ast.Ident name -> (
      match lookup_local ctx name with
      | Some (S_temp (t, _)) -> emit ctx (Ir.Bin (Ir.Add, t, vr, Ir.Const 0L))
      | Some (S_frame _) -> fail line "cannot assign to an array"
      | None -> (
        match ctx.this_class with
        | Some cls
          when (try ignore (class_field ctx.genv line cls name); true
                with Sema_error _ -> false) ->
          let off, fty = class_field ctx.genv line cls name in
          let this_v, _ = lower_ident ctx line "this" in
          emit ctx (Ir.Store { src = vr; addr = this_v; offset = off; width = width_of fty })
        | Some _ | None -> (
          match List.assoc_opt name ctx.genv.globals with
          | Some (ty, false) ->
            emit ctx (Ir.Store { src = vr; addr = Ir.Global name; offset = 0; width = width_of ty })
          | Some (_, true) -> fail line "cannot assign to an array"
          | None -> fail line "unknown identifier %s" name)))
    | Ast.Unop (Ast.Deref, p) -> (
      let vp, tp = lower_expr ctx p in
      match tp with
      | Ir.Ptr elem ->
        emit ctx (Ir.Store { src = vr; addr = vp; offset = 0; width = width_of elem })
      | _ -> fail line "storing through non-pointer")
    | Ast.Index _ | Ast.Member _ ->
      let base, off, ty = lower_mem_location ctx lhs.Ast.e line in
      emit ctx (Ir.Store { src = vr; addr = base; offset = off; width = width_of ty })
    | _ -> fail line "invalid assignment target")

(* ---------- top-level ---------- *)

let collect_genv (prog : Ast.program) =
  let genv =
    {
      classes = [];
      structs = [];
      typedefs = [];
      functions = builtin_functions;
      globals = [];
      strings = [];
      string_count = 0;
    }
  in
  (* Declarations are processed in program order, registering names as
     they appear — types must be declared before use, as in C. *)
  List.iter
    (function
      | Ast.Typedef_fptr { name; ret; params } ->
        let s =
          { Ir.params = List.map (conv_ty genv 0) params; ret = conv_ty genv 0 ret }
        in
        genv.typedefs <- (name, s) :: genv.typedefs
      | Ast.Struct_def { name; fields } ->
        (* register the name first so fields can be self-referential
           (e.g. linked-list nodes) *)
        genv.structs <- (name, { si_fields = [] }) :: genv.structs;
        let si = { si_fields = List.map (fun (t, n) -> (n, conv_ty genv 0 t)) fields } in
        genv.structs <- (name, si) :: genv.structs
      | Ast.Class_def { name; parent; members } ->
        (* pre-register for self-referential fields and method types *)
        genv.classes <-
          (name, { ci_name = name; ci_parent = parent; ci_fields = []; ci_vslots = [];
                   ci_methods = [] })
          :: genv.classes;
        let parent_info =
          match parent with
          | Some p -> (
            match find_class genv p with
            | Some ci -> Some ci
            | None -> fail 0 "class %s: unknown parent %s" name p)
          | None -> None
        in
        let inherited_fields = match parent_info with Some ci -> ci.ci_fields | None -> [] in
        let inherited_vslots = match parent_info with Some ci -> ci.ci_vslots | None -> [] in
        let fields = ref inherited_fields in
        let vslots = ref inherited_vslots in
        let methods = ref [] in
        List.iter
          (function
            | Ast.Field (t, n) -> fields := !fields @ [ (n, conv_ty genv 0 t) ]
            | Ast.Method { virtual_; ret; name = mname; params; body = _ } ->
              let sig_ =
                {
                  Ir.params =
                    Ir.Ptr (Ir.Class_ref name)
                    :: List.map (fun (t, _) -> conv_ty genv 0 t) params;
                  ret = conv_ty genv 0 ret;
                }
              in
              let mi =
                { mi_virtual = virtual_; mi_impl = mangle name mname; mi_sig = sig_;
                  mi_decl_class = name }
              in
              methods := (mname, mi) :: !methods;
              if virtual_ && not (List.mem mname !vslots) then vslots := !vslots @ [ mname ])
          members;
        let ci =
          { ci_name = name; ci_parent = parent; ci_fields = !fields; ci_vslots = !vslots;
            ci_methods = List.rev !methods }
        in
        genv.classes <- (name, ci) :: genv.classes
      | Ast.Func_def { ret; name; params; _ } ->
        let s =
          { Ir.params = List.map (fun (t, _) -> conv_ty genv 0 t) params;
            ret = conv_ty genv 0 ret }
        in
        genv.functions <- (name, s) :: genv.functions
      | Ast.Global_def { ty; name; array; _ } ->
        let t = conv_ty genv 0 ty in
        genv.globals <- (name, (t, array <> None)) :: genv.globals)
    prog;
  genv

(* resolve the implementation of each vslot for a concrete class *)
let vtable_impls genv cls =
  match find_class genv cls with
  | None -> []
  | Some ci ->
    List.map (fun m -> (lookup_method genv 0 cls m).mi_impl) ci.ci_vslots

let lower_function genv ~name ~sig_ ~param_names ~this_class body =
  let func =
    {
      Ir.f_name = name;
      f_sig = sig_;
      f_params = [];
      f_blocks = [];
      f_ntemps = 0;
      f_frame_slots = [];
      f_cfi_id = None;
    }
  in
  let ctx =
    {
      genv;
      func;
      cur_label = "entry";
      cur_instrs = [];
      done_blocks = [];
      locals = [ [] ];
      label_count = 0;
      loop_stack = [];
      this_class;
    }
  in
  (* parameter temps *)
  let param_temps =
    List.map2
      (fun pname pty ->
        let t = Ir.new_temp func in
        bind ctx pname (S_temp (t, pty));
        t)
      param_names sig_.Ir.params
  in
  func.Ir.f_params <- param_temps;
  List.iter (lower_stmt ctx) body;
  (* implicit return *)
  seal ctx (match sig_.Ir.ret with Ir.Void -> Ir.Ret None | _ -> Ir.Ret (Some (Ir.Const 0L)));
  func.Ir.f_blocks <- List.rev ctx.done_blocks;
  func

let lower_globals genv prog =
  let globals = ref [] in
  List.iter
    (function
      | Ast.Global_def { ty; name; array; init } -> (
        let t = conv_ty genv 0 ty in
        match (array, init) with
        | None, None ->
          globals :=
            { Ir.g_name = name; g_section = ".data"; g_init = [ Ir.G_int 0L ];
              g_bytes = None; g_zero = 0 }
            :: !globals
        | None, Some (Ast.Gi_int v) ->
          globals :=
            { Ir.g_name = name; g_section = ".data"; g_init = [ Ir.G_int v ];
              g_bytes = None; g_zero = 0 }
            :: !globals
        | None, Some (Ast.Gi_string s) ->
          (* char* global initialized to a string: emit the string and a
             pointer word *)
          let sym = intern_string genv s in
          globals :=
            { Ir.g_name = name; g_section = ".data"; g_init = [ Ir.G_global sym ];
              g_bytes = None; g_zero = 0 }
            :: !globals
        | Some n, None ->
          let sz = n * elem_size t in
          globals :=
            { Ir.g_name = name; g_section = ".bss"; g_init = []; g_bytes = None; g_zero = sz }
            :: !globals
        | Some n, Some (Ast.Gi_list consts) ->
          let words =
            List.map
              (function
                | Ast.Gc_int v -> Ir.G_int v
                | Ast.Gc_func f -> Ir.G_func f)
              consts
          in
          if List.length words > n then fail 0 "initializer longer than array %s" name;
          let pad = n - List.length words in
          globals :=
            { Ir.g_name = name; g_section = ".data"; g_init = words; g_bytes = None;
              g_zero = pad * elem_size t }
            :: !globals
        | Some n, Some (Ast.Gi_string s) ->
          let bytes = s ^ "\000" in
          let pad = max 0 (n - String.length bytes) in
          globals :=
            { Ir.g_name = name; g_section = ".data"; g_init = []; g_bytes = Some bytes;
              g_zero = pad }
            :: !globals
        | None, Some (Ast.Gi_list _) -> fail 0 "list initializer on scalar %s" name
        | Some _, Some (Ast.Gi_int _) -> fail 0 "scalar initializer on array %s" name)
      | Ast.Func_def _ | Ast.Struct_def _ | Ast.Class_def _ | Ast.Typedef_fptr _ -> ())
    prog;
  List.rev !globals

let lower (prog : Ast.program) ~module_name =
  let genv = collect_genv prog in
  let funcs = ref [] in
  (* plain functions *)
  List.iter
    (function
      | Ast.Func_def { ret = _; name; params; body } ->
        let sig_ = List.assoc name genv.functions in
        let f =
          lower_function genv ~name ~sig_ ~param_names:(List.map snd params)
            ~this_class:None body
        in
        funcs := f :: !funcs
      | Ast.Class_def { name = cls; members; _ } ->
        List.iter
          (function
            | Ast.Method { ret = _; name = mname; params; body; _ } ->
              let mi = List.assoc mname (List.assoc cls genv.classes).ci_methods in
              let f =
                lower_function genv ~name:mi.mi_impl ~sig_:mi.mi_sig
                  ~param_names:("this" :: List.map snd params)
                  ~this_class:(Some cls) body
              in
              funcs := f :: !funcs
            | Ast.Field _ -> ())
          members
      | Ast.Global_def _ | Ast.Struct_def _ | Ast.Typedef_fptr _ -> ())
    prog;
  (* vtables — genv.classes may hold pre-registration placeholders, so
     keep only the most recent (complete) entry per name *)
  let unique_classes =
    List.rev
      (List.fold_left
         (fun acc (n, ci) -> if List.mem_assoc n acc then acc else (n, ci) :: acc)
         [] genv.classes)
  in
  let vtables = ref [] in
  let vt_globals = ref [] in
  List.iter
    (fun (cls, _ci) ->
      let impls = vtable_impls genv cls in
      let sym = vtable_symbol cls in
      vt_globals :=
        { Ir.g_name = sym; g_section = ".rodata";
          g_init = List.map (fun f -> Ir.G_func f) impls; g_bytes = None; g_zero = 0 }
        :: !vt_globals;
      vtables :=
        { Ir.vt_class = cls; vt_symbol = sym; vt_root = hierarchy_root genv cls;
          vt_methods = impls }
        :: !vtables)
    unique_classes;
  (* global initializers may intern further strings, so lower them before
     collecting the string table *)
  let data_globals = lower_globals genv prog in
  let string_globals =
    List.rev_map
      (fun (sym, s) ->
        { Ir.g_name = sym; g_section = ".rodata"; g_init = []; g_bytes = Some (s ^ "\000");
          g_zero = 0 })
      genv.strings
  in
  {
    Ir.m_name = module_name;
    m_funcs = List.rev !funcs;
    m_globals = data_globals @ !vt_globals @ string_globals;
    m_vtables = !vtables;
    m_ret_key = None;
  }
