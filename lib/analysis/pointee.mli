(** The abstract pointee domain shared by the lint layers: per-value sets
    of objects an address can refer to, with [Top] meaning "unknown"
    (which suppresses diagnostics — reports are definite, never
    may-alias guesses).

    This is the bottom rung of the precision ladder (see
    [key_dataflow.mli]): no memory model, so loads and call boundaries
    collapse to [Top].  The whole-program prover's {!Absval} domain
    refines it with abstract memory and function summaries. *)

type target = Global of string | Frame | Func of string

val target_to_string : target -> string

type t = Top | Targets of target list  (** sorted, deduplicated *)

val bottom : t
(** The empty set: a value that is definitely not a tracked pointer. *)

val of_target : target -> t
val join : t -> t -> t
val equal : t -> t -> bool

val targets : t -> target list option
(** [None] for [Top]; [Some l] when the pointee set is known. *)

val to_string : t -> string

val section_attrs : string -> (Roload_mem.Perm.t * int) option
(** Permissions and ROLoad key a section name implies, or [None] when the
    name does not parse (bad [.rodata.key.<N>] suffix). *)

val global_roload_key : Roload_ir.Ir.modul -> string -> int option
(** The key of the named global's section when that section is eligible
    for ld.ro (read-only, non-executable); [None] otherwise. *)

val global_ro_attrs : Roload_ir.Ir.modul -> string -> (string * int) option
(** [(section, key)] when the named global lives in read-only data. *)
