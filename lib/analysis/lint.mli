(** roload-lint: the static verifier for the ROLoad pointee-integrity
    invariants.  Runs all three layers over a compiled module and its
    linked executable; a clean run returns []. *)

val run :
  scheme:Roload_passes.Pass.scheme ->
  ir:Roload_ir.Ir.modul ->
  exe:Roload_obj.Exe.t ->
  Diagnostic.t list

val ok : Diagnostic.t list -> bool

val exit_code : Diagnostic.t list -> int
(** 0 on a clean run, 3 when findings exist. *)
