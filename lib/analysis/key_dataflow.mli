(** Lint layer 2: key-consistency dataflow.  An intraprocedural forward
    points-to analysis over each function flags (a) keyed loads and
    indirect calls whose address provably cannot reach a pointee in a
    read-only section with the annotated key, and (b) stores whose
    address provably resolves to a read-only (in particular keyed)
    global. *)

val run : Roload_ir.Ir.modul -> Diagnostic.t list
