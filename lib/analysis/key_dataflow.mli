(** Lint layer 2: key-consistency dataflow.  An intraprocedural forward
    points-to analysis over each function flags (a) keyed loads and
    indirect calls whose address provably cannot reach a pointee in a
    read-only section with the annotated key, and (b) stores whose
    address provably resolves to a read-only (in particular keyed)
    global.

    {2 The precision ladder}

    The static verifier trades precision for cost in three rungs:

    + {!Pointee} (this layer): per-function, no memory model — every
      load and every call boundary collapses to Top, so reports are
      definite but the analysis is blind across functions.  What it
      loses at call boundaries is no longer lost {e silently}: {!escapes}
      reports each keyed pointee that crosses one.
    + {!Absval}/{!Prove} (roload-prove): whole-program, with abstract
      memory (per-global contents, collapsed stack and heap) and
      bottom-up function {!Summary}s — it picks up exactly the escapes
      this layer reports and follows them through callees.
    + The dynamic check itself ([ld.ro]): anything neither layer can
      decide is still protected at run time by the keyed load.

    Every rung only {e reports} what it can prove; unknowns fall through
    to the next rung rather than becoming noise. *)

val run : Roload_ir.Ir.modul -> Diagnostic.t list

(** {2 Call-boundary escapes}

    An escape marks a point where a keyed pointee (a GFPT entry, a
    vtable) flows across a function boundary and out of this layer's
    intraprocedural domain.  Escapes are informational — hardened code
    passes keyed pointees around by design — and are the hand-off points
    the whole-program prover discharges. *)

type escape_kind =
  | Arg of int  (** call argument at this position *)
  | Receiver  (** virtual-call receiver *)
  | Ret  (** function return value *)

type escape = {
  esc_site : string;  (** [func/block] *)
  esc_kind : escape_kind;
  esc_callee : string;  (** callee description *)
  esc_global : string;  (** the keyed global escaping *)
  esc_key : int;
}

val escape_to_string : escape -> string

val escapes : Roload_ir.Ir.modul -> escape list
(** All call-boundary escapes of keyed pointees in the module, in
    program order. *)
