(* The abstract pointee domain shared by the lint layers.

   A pointee set approximates, per IR value, which objects an address can
   refer to: named globals, the current frame, or functions.  [Top] is
   "anything" — it suppresses diagnostics, so the dataflow layer only
   reports when the address provably resolves to known pointees.  Section
   attributes come from the assembler's naming convention
   (`.rodata.key.<N>` etc.), so the same classification the object layer
   uses also drives the lint. *)

module Ir = Roload_ir.Ir
module Perm = Roload_mem.Perm

type target = Global of string | Frame | Func of string

let target_to_string = function
  | Global g -> "@" ^ g
  | Frame -> "<frame>"
  | Func f -> "&" ^ f

type t = Top | Targets of target list (* sorted, deduplicated *)

(* Sets are clamped to keep joins cheap; precision past this many targets
   buys no diagnostics anyway. *)
let max_targets = 16

let bottom = Targets []
let of_target tg = Targets [ tg ]

let normalize l =
  let l = List.sort_uniq compare l in
  if List.length l > max_targets then Top else Targets l

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Targets x, Targets y -> normalize (x @ y)

let equal (a : t) (b : t) = a = b

(* [None] for Top (unknown); [Some l] when the pointee set is known. *)
let targets = function Top -> None | Targets l -> Some l

let to_string = function
  | Top -> "<unknown>"
  | Targets [] -> "<none>"
  | Targets l -> String.concat "|" (List.map target_to_string l)

(* ---------- section classification ---------- *)

(* Permissions and ROLoad key a global's section will receive, or [None]
   when the section name does not parse (bad `.rodata.key.<N>` suffix). *)
let section_attrs section =
  try Some (Roload_obj.Section.attrs_of_name section)
  with Invalid_argument _ -> None

(* The ROLoad key of a global's section when that section is eligible for
   ld.ro (read-only, non-executable); [None] otherwise. *)
let global_roload_key (m : Ir.modul) name =
  match Ir.find_global m name with
  | None -> None
  | Some g -> (
    match section_attrs g.Ir.g_section with
    | Some (perms, key) when Perm.read_only perms -> Some key
    | Some _ | None -> None)

(* Read-only pointee check for the store lint: the section's permissions
   and key when the named global lives in read-only data. *)
let global_ro_attrs (m : Ir.modul) name =
  match Ir.find_global m name with
  | None -> None
  | Some g -> (
    match section_attrs g.Ir.g_section with
    | Some (perms, key) when Perm.read_only perms -> Some (g.Ir.g_section, key)
    | Some _ | None -> None)
