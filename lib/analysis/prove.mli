(** roload-prove: whole-program pointee-integrity abstract
    interpretation — the top static rung of the precision ladder (see
    [key_dataflow.mli]).

    A bottom-up fixpoint over the callgraph interprets each function on
    the {!Absval} domain against an abstract memory (per-writable-global
    contents, collapsed stack and heap cells) while growing function
    {!Summary}s.  Diagnostics flag protected sites whose operand can
    reach a writable — or wrongly-keyed — pointee across function
    boundaries, each with a witness path; {!safe_temp} answers the
    elision pass's queries about operands proven to stay inside one
    keyed read-only section. *)

module Ir = Roload_ir.Ir

type container =
  | Cglob of string
  | Cheap
  | Cstack
  | Cparam of string * int
  | Cret of string

val container_to_string : container -> string

type result = {
  pr_diags : Diagnostic.t list;  (** definite findings, program order *)
  pr_rounds : int;  (** callgraph rounds to fixpoint *)
  pr_escapes : Key_dataflow.escape list;
      (** the layer-2 call-boundary escapes this analysis discharged *)
  pr_wild_stores : string list;
      (** sites storing through unknown addresses; non-empty disables
          the elision oracle *)
  pr_summaries : (string * Summary.t) list;
  pr_temp_values : (string, Absval.t array) Hashtbl.t;
      (** per function, the join of each temp's value over all program
          points *)
  pr_module : Ir.modul;
}

val max_rounds : int

val run : Ir.modul -> result
(** Run the interprocedural fixpoint and both consumer passes.  Always
    terminates: the domain is finite and joins are monotone; if the
    round cap is ever hit a [prove-fixpoint-diverged] finding is
    emitted. *)

val safe_temp : result -> func:string -> temp:int -> key:int -> [ `Guarded | `Pure ] option
(** The elision oracle: [Some `Pure] when every reachable value of the
    temp is a pointee in the keyed read-only section of [key] (a hoisted
    ld.ro check can never fault), [Some `Guarded] when an implicit zero
    may additionally flow (the hoisted check must be skipped on zero),
    [None] otherwise.  Answers [None] for everything when the prover
    found any violation or any wild store. *)

val exit_code : result -> int
(** 0 on a clean run, 3 when there are findings (mirrors lint). *)

val report_to_string : result -> string
val report_to_json : result -> string
