(** Lint layer 1: IR protection-completeness.  After [Pass.apply] the
    module must be fully hardened for the active scheme: no
    indirect-transfer site left unannotated, every allowlist global
    (vtable, GFPT entry) in a keyed read-only section, and every
    annotated key backed by a keyed section in the module. *)

val run :
  scheme:Roload_passes.Pass.scheme -> Roload_ir.Ir.modul -> Diagnostic.t list
