(* roload-lint: the static verifier for the ROLoad pointee-integrity
   invariants, run over a compiled module and its linked executable.

   Three layers, in order of abstraction:
     1. [Ir_lint]      — protection completeness after [Pass.apply]
     2. [Key_dataflow] — key-consistency dataflow and the ro-store lint
     3. [Machine_lint] — disassembly & loader cross-check of the image

   A clean run returns []; any finding means a hardening-pass, codegen,
   linker, or loader regression.  The toolchain exposes this as
   `roloadc --lint`, and the test suite runs it over every workload. *)

let run ~scheme ~ir ~exe =
  Ir_lint.run ~scheme ir @ Key_dataflow.run ir @ Machine_lint.run ~ir ~exe

let ok findings = findings = []

(* CLI exit status: 0 on a clean run, 3 when findings exist (1 and 2 are
   taken by compile errors and usage errors in roloadc). *)
let exit_code findings = if findings = [] then 0 else 3
