(* roload-prove: whole-program pointee-integrity abstract interpretation.

   A bottom-up fixpoint over the callgraph interprets every function on
   the {Absval} domain against an abstract memory (per-global contents
   for writable globals, one collapsed cell each for the stack and the
   heap) and grows function {Summary}s until nothing changes.  Two
   consumers read the result:

   - the *prover* (this module's diagnostics): a protected site whose
     operand can reach a pointee that is writable — or keyed differently
     from the annotation — across function boundaries is reported with a
     witness path showing how the value got there.  Like the lint
     layers, only *definite* bad elements are reported; Heap / Num /
     unknown stay silent because the dynamic ld.ro check still covers
     them (see the precision ladder in [key_dataflow.mli]).
   - the *elision oracle* ({!safe_temp}): a temp whose every reachable
     value is a pointee inside the keyed read-only section of key [k]
     (possibly alongside an implicit zero) admits replacing its keyed
     uses with plain loads fed by one hoisted check — the proof-guided
     optimisation in [Roload_passes.Roload_elide].

   Soundness of the abstract memory rests on two module-wide switches:
   any store through a completely unknown address ("wild store") — which
   could alias every writable cell — disables the elision oracle
   outright, and zero-derived addresses are assumed to fault (the null
   page is never mapped), mirroring {!Absval.arith}. *)

module Ir = Roload_ir.Ir
module D = Diagnostic
module A = Absval
module P = Pointee
module Json = Roload_util.Json

(* ---------- abstract memory containers & witness origins ---------- *)

type container =
  | Cglob of string
  | Cheap
  | Cstack
  | Cparam of string * int
  | Cret of string

let container_to_string = function
  | Cglob g -> "@" ^ g
  | Cheap -> "<heap>"
  | Cstack -> "<stack>"
  | Cparam (f, i) -> Printf.sprintf "param %d of %s" i f
  | Cret f -> "return of " ^ f

(* First-wins record of how each element reached each container; the
   parent chain threads a value's journey across function boundaries. *)
type origin = { og_desc : string; og_parent : container option }

type env = {
  m : Ir.modul;
  globals : (string, Ir.global) Hashtbl.t;
  funcs : (string, Ir.func) Hashtbl.t;
  summaries : (string, Summary.t) Hashtbl.t;
  glob : (string, A.t ref) Hashtbl.t;  (* writable-global contents *)
  ro : (string, A.t) Hashtbl.t;  (* read-only-global contents (fixed) *)
  heap : A.t ref;
  stack : A.t ref;
  sig_targets : (string, string list) Hashtbl.t;
  origins : (container * A.elem, origin) Hashtbl.t;
  mutable wild_stores : string list;
  mutable changed : bool;
}

let elems_of_init ~writable (g : Ir.global) =
  let zero = if writable then A.Zero_init else A.Num in
  let words =
    List.map
      (function
        | Ir.G_int 0L -> zero
        | Ir.G_int _ -> A.Num
        | Ir.G_func f -> A.Fun f
        | Ir.G_global s -> A.Glob s)
      g.Ir.g_init
  in
  let tail =
    (if g.Ir.g_zero > 0 then [ zero ] else [])
    @ match g.Ir.g_bytes with Some _ -> [ A.Num ] | None -> []
  in
  A.of_list (words @ tail)

let global_writable (g : Ir.global) =
  match P.section_attrs g.Ir.g_section with
  | Some (perms, _) -> not (Roload_mem.Perm.read_only perms)
  | None -> true (* unparsable section: assume the worst *)

let create_env (m : Ir.modul) =
  let env =
    {
      m;
      globals = Hashtbl.create 64;
      funcs = Hashtbl.create 16;
      summaries = Hashtbl.create 16;
      glob = Hashtbl.create 64;
      ro = Hashtbl.create 64;
      (* allocations and fresh frames start zero-filled *)
      heap = ref (A.of_elem A.Zero_init);
      stack = ref (A.of_elem A.Zero_init);
      sig_targets = Hashtbl.create 8;
      origins = Hashtbl.create 64;
      wild_stores = [];
      changed = false;
    }
  in
  List.iter (fun (g : Ir.global) -> Hashtbl.replace env.globals g.Ir.g_name g) m.Ir.m_globals;
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace env.funcs f.Ir.f_name f;
      Hashtbl.replace env.summaries f.Ir.f_name
        (Summary.create ~nparams:(List.length f.Ir.f_params)))
    m.Ir.m_funcs;
  List.iter
    (fun (g : Ir.global) ->
      if global_writable g then
        Hashtbl.replace env.glob g.Ir.g_name (ref (elems_of_init ~writable:true g))
      else Hashtbl.replace env.ro g.Ir.g_name (elems_of_init ~writable:false g))
    m.Ir.m_globals;
  env

let targets_by_sig env sig_id =
  match Hashtbl.find_opt env.sig_targets sig_id with
  | Some l -> l
  | None ->
    let l = Callgraph.targets_by_sig env.m sig_id in
    Hashtbl.replace env.sig_targets sig_id l;
    l

let record_origin env key ~desc ~parent =
  if not (Hashtbl.mem env.origins key) then
    Hashtbl.add env.origins key { og_desc = desc; og_parent = parent }

(* ---------- abstract load / store ---------- *)

let container_contents env = function
  | Cglob g -> (
    match Hashtbl.find_opt env.glob g with
    | Some r -> !r
    | None -> Option.value (Hashtbl.find_opt env.ro g) ~default:A.any)
  | Cstack -> !(env.stack)
  | Cheap -> !(env.heap)
  | Cparam (f, i) -> (
    match Hashtbl.find_opt env.summaries f with
    | Some s when i < Array.length s.Summary.s_params -> s.Summary.s_params.(i)
    | Some _ | None -> A.any)
  | Cret f -> (
    match Hashtbl.find_opt env.summaries f with Some s -> s.Summary.s_ret | None -> A.any)

let deref_elem env = function
  | A.Glob g -> (
    match Hashtbl.find_opt env.glob g with
    | Some r -> !r
    | None -> (
      match Hashtbl.find_opt env.ro g with
      | Some av -> av
      | None -> A.any (* symbol from outside the module *)))
  | A.Frame -> !(env.stack)
  | A.Heap -> !(env.heap)
  | A.Fun _ -> A.of_elem A.Num (* reading code bytes *)
  | A.Num -> A.any (* integer-derived address: unknown cell *)
  | A.Zero_init -> A.bottom (* null dereference faults; no value flows *)

let deref env ~width av =
  match av with
  | A.Any -> A.any
  | A.Set [] -> A.bottom
  | A.Set _ when width = Ir.W8 -> A.of_elem A.Num (* single bytes are never pointers *)
  | A.Set l -> List.fold_left (fun acc e -> A.join acc (deref_elem env e)) A.bottom l

(* Containers an address value can denote, for witness attribution. *)
let containers_of av =
  match A.elems av with
  | None -> []
  | Some l ->
    List.filter_map
      (function
        | A.Glob g -> Some (Cglob g)
        | A.Frame -> Some Cstack
        | A.Heap -> Some Cheap
        | A.Fun _ | A.Num | A.Zero_init -> None)
      l

let join_ref env r av =
  let j = A.join !r av in
  if not (A.equal j !r) then begin
    r := j;
    env.changed <- true
  end

let wild_store env site =
  if not (List.mem site env.wild_stores) then begin
    env.wild_stores <- site :: env.wild_stores;
    env.changed <- true
  end

let store env ~site av_addr av_src ~src_srcs =
  let record_into c =
    match A.elems av_src with
    | None -> ()
    | Some es ->
      List.iter
        (fun e ->
          record_origin env (c, e)
            ~desc:(Printf.sprintf "stored at %s" site)
            ~parent:(List.assoc_opt e src_srcs))
        es
  in
  match av_addr with
  | A.Any -> wild_store env site
  | A.Set l ->
    List.iter
      (fun e ->
        match e with
        | A.Glob g -> (
          match Hashtbl.find_opt env.glob g with
          | Some r ->
            join_ref env r av_src;
            record_into (Cglob g)
          | None -> () (* read-only or foreign global: the write faults *))
        | A.Frame ->
          join_ref env env.stack av_src;
          record_into Cstack
        | A.Heap ->
          join_ref env env.heap av_src;
          record_into Cheap
        | A.Fun _ | A.Zero_init -> () (* faults; nothing written *)
        | A.Num -> wild_store env site (* integer-derived address: could alias anything *))
      l

(* ---------- transfer function ---------- *)

type frame = {
  st : A.t array;  (* per-temp abstract value *)
  srcs : (A.elem * container) list array;  (* witness: where each elem was read from *)
}

let eval (fr : frame) = function
  | Ir.Temp t -> fr.st.(t)
  | Ir.Const 0L -> A.of_elem A.Zero_init
  | Ir.Const _ -> A.of_elem A.Num
  | Ir.Global g -> A.of_elem (A.Glob g)
  | Ir.Func_addr f -> A.of_elem (A.Fun f)

let eval_srcs (fr : frame) = function Ir.Temp t -> fr.srcs.(t) | _ -> []

let bind_args env ~callee ~desc_of avs srcss =
  match Hashtbl.find_opt env.summaries callee with
  | None -> ()
  | Some s ->
    if Summary.join_args s avs then env.changed <- true;
    List.iteri
      (fun i av ->
        match A.elems av with
        | None -> ()
        | Some es ->
          let srcs = match List.nth_opt srcss i with Some l -> l | None -> [] in
          List.iter
            (fun e ->
              record_origin env
                (Cparam (callee, i), e)
                ~desc:(desc_of i) ~parent:(List.assoc_opt e srcs))
            es)
      avs

let summary_ret env callee =
  match Hashtbl.find_opt env.summaries callee with
  | Some s -> s.Summary.s_ret
  | None -> A.any

(* Flow-based indirect-target resolution, widened to the type-based set
   whenever any element of the operand cannot be resolved precisely. *)
let resolve_icall env av sig_id =
  match A.elems av with
  | None -> targets_by_sig env sig_id
  | Some l ->
    let precise = ref [] in
    let fuzzy = ref false in
    List.iter
      (fun e ->
        match e with
        | A.Fun f -> precise := f :: !precise
        | A.Glob g -> (
          match Callgraph.gfpt_target env.m g with
          | Some f -> precise := f :: !precise
          | None -> fuzzy := true)
        | A.Heap | A.Frame | A.Num -> fuzzy := true
        | A.Zero_init -> () (* calling through null faults *))
      l;
    if !fuzzy then List.sort_uniq compare (!precise @ targets_by_sig env sig_id)
    else List.sort_uniq compare !precise

let set_dst fr dst av srcs =
  match dst with
  | None -> ()
  | Some d ->
    fr.st.(d) <- av;
    fr.srcs.(d) <- srcs

let ret_srcs av callee =
  match A.elems av with
  | None -> []
  | Some es -> List.map (fun e -> (e, Cret callee)) es

(* Bind one indirect/virtual call to its resolved targets. *)
let apply_targets env fr dst targets avs srcss ~desc_of =
  let ret = ref A.bottom in
  let bound = ref false in
  List.iter
    (fun t ->
      if Hashtbl.mem env.funcs t then begin
        bound := true;
        bind_args env ~callee:t ~desc_of avs srcss;
        ret := A.join !ret (summary_ret env t)
      end)
    targets;
  if !bound then
    set_dst fr dst !ret (List.concat_map (fun t -> ret_srcs (summary_ret env t) t) targets)
  else set_dst fr dst A.any []

let transfer env fr ~site i =
  match i with
  | Ir.Bin (op, d, a, b) -> (
    match op with
    | Ir.Add | Ir.Sub ->
      fr.st.(d) <- A.arith (eval fr a) (eval fr b);
      fr.srcs.(d) <- eval_srcs fr a @ eval_srcs fr b
    | Ir.Mul | Ir.Div | Ir.Rem | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr | Ir.Shru
    | Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge ->
      fr.st.(d) <- A.of_elem A.Num;
      fr.srcs.(d) <- [])
  | Ir.Load { dst; addr; width; _ } ->
    let av_addr = eval fr addr in
    let loaded = deref env ~width av_addr in
    fr.st.(dst) <- loaded;
    let cs = containers_of av_addr in
    fr.srcs.(dst) <-
      (match A.elems loaded with
      | None -> []
      | Some es ->
        List.filter_map
          (fun e ->
            List.find_opt (fun c -> A.mem e (container_contents env c)) cs
            |> Option.map (fun c -> (e, c)))
          es)
  | Ir.Lea_frame (d, _) ->
    fr.st.(d) <- A.of_elem A.Frame;
    fr.srcs.(d) <- []
  | Ir.Store { src; addr; _ } ->
    store env ~site (eval fr addr) (eval fr src) ~src_srcs:(eval_srcs fr src)
  | Ir.Call { dst; callee; args } ->
    if Hashtbl.mem env.funcs callee then begin
      bind_args env ~callee
        ~desc_of:(fun i -> Printf.sprintf "passed as argument %d at %s" i site)
        (List.map (eval fr) args)
        (List.map (eval_srcs fr) args);
      let r = summary_ret env callee in
      set_dst fr dst r (ret_srcs r callee)
    end
    else if callee = "alloc" then set_dst fr dst (A.of_elem A.Heap) []
    else if List.mem callee Callgraph.builtins then set_dst fr dst (A.of_elem A.Num) []
    else set_dst fr dst A.any []
  | Ir.Call_indirect { dst; callee; args; sig_id; _ } ->
    apply_targets env fr dst
      (resolve_icall env (eval fr callee) sig_id)
      (List.map (eval fr) args)
      (List.map (eval_srcs fr) args)
      ~desc_of:(fun i -> Printf.sprintf "passed as argument %d at %s" i site)
  | Ir.Vcall { dst; obj; args; class_name; slot; _ } ->
    apply_targets env fr dst
      (Callgraph.vcall_targets env.m ~class_name ~slot)
      (eval fr obj :: List.map (eval fr) args)
      (eval_srcs fr obj :: List.map (eval_srcs fr) args)
      ~desc_of:(fun i ->
        if i = 0 then Printf.sprintf "passed as receiver at %s" site
        else Printf.sprintf "passed as argument %d at %s" (i - 1) site)

let transfer_term env fr ~fname ~site t =
  match t with
  | Ir.Ret (Some v) -> (
    let av = eval fr v in
    (match Hashtbl.find_opt env.summaries fname with
    | Some s -> if Summary.join_ret s av then env.changed <- true
    | None -> ());
    match A.elems av with
    | None -> ()
    | Some es ->
      let srcs = eval_srcs fr v in
      List.iter
        (fun e ->
          record_origin env (Cret fname, e)
            ~desc:(Printf.sprintf "returned at %s" site)
            ~parent:(List.assoc_opt e srcs))
        es)
  | Ir.Ret None | Ir.Br _ | Ir.Cbr _ | Ir.Halt -> ()

(* ---------- per-function block fixpoint ---------- *)

let states_equal (a : A.t array) (b : A.t array) =
  let n = Array.length a in
  let rec go i = i >= n || (A.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let param_srcs env (f : Ir.func) (st : A.t array) =
  let srcs = Array.make (Array.length st) [] in
  List.iteri
    (fun i p ->
      match A.elems st.(p) with
      | None -> ()
      | Some es ->
        if p < Array.length srcs then
          srcs.(p) <- List.map (fun e -> (e, Cparam (f.Ir.f_name, i))) es)
    f.Ir.f_params;
  ignore env;
  srcs

let entry_state env (f : Ir.func) =
  let st = Array.make (max f.Ir.f_ntemps 1) A.bottom in
  (match Hashtbl.find_opt env.summaries f.Ir.f_name with
  | None -> ()
  | Some s ->
    List.iteri
      (fun i p ->
        if i < Array.length s.Summary.s_params then st.(p) <- s.Summary.s_params.(i))
      f.Ir.f_params);
  st

(* Iterate one function to a local fixpoint against the current global
   state; returns the stable block-entry states. *)
let analyze_func env (f : Ir.func) =
  let states : (string, A.t array) Hashtbl.t = Hashtbl.create 8 in
  (match f.Ir.f_blocks with
  | [] -> ()
  | entry :: _ ->
    Hashtbl.replace states entry.Ir.b_label (entry_state env f);
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          match Hashtbl.find_opt states b.Ir.b_label with
          | None -> ()
          | Some entry_st ->
            let st = Array.copy entry_st in
            let fr = { st; srcs = param_srcs env f st } in
            let site = Printf.sprintf "%s/%s" f.Ir.f_name b.Ir.b_label in
            List.iter (transfer env fr ~site) b.Ir.b_instrs;
            transfer_term env fr ~fname:f.Ir.f_name ~site b.Ir.b_term;
            List.iter
              (fun succ ->
                match Hashtbl.find_opt states succ with
                | None ->
                  Hashtbl.replace states succ (Array.copy fr.st);
                  changed := true
                | Some old ->
                  let merged = Array.mapi (fun i v -> A.join v fr.st.(i)) old in
                  if not (states_equal merged old) then begin
                    Hashtbl.replace states succ merged;
                    changed := true
                  end)
              (Ir.successors b.Ir.b_term))
        f.Ir.f_blocks
    done);
  states

(* One post-fixpoint sweep over a function: each block visited exactly
   once from its stable entry state, with [observe] fired before every
   instruction. *)
let walk_once env (f : Ir.func) states ~observe =
  List.iter
    (fun b ->
      match Hashtbl.find_opt states b.Ir.b_label with
      | None -> () (* unreachable *)
      | Some entry_st ->
        let st = Array.copy entry_st in
        let fr = { st; srcs = param_srcs env f st } in
        let site = Printf.sprintf "%s/%s" f.Ir.f_name b.Ir.b_label in
        List.iter
          (fun i ->
            observe ~site fr i;
            transfer env fr ~site i)
          b.Ir.b_instrs;
        transfer_term env fr ~fname:f.Ir.f_name ~site b.Ir.b_term)
    f.Ir.f_blocks

(* ---------- results ---------- *)

type result = {
  pr_diags : D.t list;
  pr_rounds : int;
  pr_escapes : Key_dataflow.escape list;
  pr_wild_stores : string list;
  pr_summaries : (string * Summary.t) list;
  pr_temp_values : (string, A.t array) Hashtbl.t;
  pr_module : Ir.modul;
}

let max_rounds = 200

(* witness chain: how [e] reached the container the operand read it from *)
let witness env fr v e =
  let chain = ref [] in
  let seen = Hashtbl.create 8 in
  let rec walk c depth =
    if depth < 8 && not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      match Hashtbl.find_opt env.origins (c, e) with
      | None -> chain := Printf.sprintf "in %s" (container_to_string c) :: !chain
      | Some o -> (
        chain := o.og_desc :: !chain;
        match o.og_parent with Some p -> walk p (depth + 1) | None -> ())
    end
  in
  (match v with
  | Ir.Temp t -> (
    match List.assoc_opt e fr.srcs.(t) with None -> () | Some c -> walk c 0)
  | Ir.Const _ | Ir.Global _ | Ir.Func_addr _ -> ());
  match List.rev !chain with
  | [] -> ""
  | steps -> Printf.sprintf " (witness: %s)" (String.concat " <- " steps)

let check_operand env fr ~add ~site ~what v key =
  match A.elems (eval fr v) with
  | None -> () (* unknown: the dynamic check still covers it *)
  | Some es ->
    List.iter
      (fun e ->
        match e with
        | A.Glob g -> (
          match Hashtbl.find_opt env.globals g with
          | None -> ()
          | Some gl -> (
            if global_writable gl then
              add
                (D.make D.Prove ~code:"prove-writable-pointee" ~site
                   "%s annotated with key %d can reach writable global @%s (section %s)%s"
                   what key g gl.Ir.g_section (witness env fr v e))
            else
              match P.global_roload_key env.m g with
              | Some k' when k' = key -> ()
              | Some k' ->
                add
                  (D.make D.Prove ~code:"prove-key-mismatch" ~site
                     "%s annotated with key %d can reach @%s which is keyed %d%s" what key g
                     k' (witness env fr v e))
              | None ->
                add
                  (D.make D.Prove ~code:"prove-unkeyed-pointee" ~site
                     "%s annotated with key %d can reach @%s whose section %s carries no usable key%s"
                     what key g gl.Ir.g_section (witness env fr v e))))
        | A.Frame ->
          add
            (D.make D.Prove ~code:"prove-writable-pointee" ~site
               "%s annotated with key %d can reach the (writable) stack%s" what key
               (witness env fr v e))
        | A.Fun f ->
          add
            (D.make D.Prove ~code:"prove-raw-code-pointee" ~site
               "%s annotated with key %d can reach the raw code address of %s — expected a keyed table slot%s"
               what key f (witness env fr v e))
        | A.Heap | A.Num | A.Zero_init ->
          (* dynamically protected; statically neither proven nor
             refuted — stays on the lower rung of the ladder *)
          ())
      es

let run (m : Ir.modul) =
  let env = create_env m in
  let cg = Callgraph.build m in
  let order = List.concat (Callgraph.bottom_up cg) in
  let rounds = ref 0 in
  let diverged = ref false in
  let continue_ = ref true in
  while !continue_ do
    incr rounds;
    env.changed <- false;
    List.iter
      (fun name ->
        match Hashtbl.find_opt env.funcs name with
        | Some f -> ignore (analyze_func env f)
        | None -> ())
      order;
    if not env.changed then continue_ := false
    else if !rounds >= max_rounds then begin
      diverged := true;
      continue_ := false
    end
  done;
  (* wild stores recorded so far may be transients of early rounds (a
     store through a parameter that was still bottom); the post-fixpoint
     sweeps below re-run the transfer function from stable states, so
     only stores that are wild at the fixpoint are re-recorded *)
  env.wild_stores <- [];
  (* post-fixpoint sweeps: diagnostics and per-temp value envelopes *)
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let temp_values = Hashtbl.create 16 in
  List.iter
    (fun (f : Ir.func) ->
      let states = analyze_func env f in
      let tmax = entry_state env f in
      let fold fr = Array.iteri (fun t v -> tmax.(t) <- A.join tmax.(t) v) fr.st in
      walk_once env f states ~observe:(fun ~site fr i ->
          fold fr;
          match i with
          | Ir.Load { addr; md = { Ir.roload_key = Some k; _ }; _ } ->
            check_operand env fr ~add ~site ~what:"load" addr k
          | Ir.Call_indirect { callee; md = { Ir.ic_roload_key = Some k; _ }; _ } ->
            check_operand env fr ~add ~site ~what:"indirect call" callee k
          | Ir.Vcall { obj; md = { Ir.vc_roload_key = Some k; _ }; _ } ->
            check_operand env fr ~add ~site ~what:"virtual call" obj k
          | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
          | Ir.Call_indirect _ | Ir.Vcall _ ->
            ());
      (* fold the block-exit states too: re-walk folds entry states and
         pre-instruction points; a final fold per block exit is covered
         by the next observe or, for terminator-only effects, here *)
      Hashtbl.iter (fun _ st -> Array.iteri (fun t v -> tmax.(t) <- A.join tmax.(t) v) st) states;
      Hashtbl.replace temp_values f.Ir.f_name tmax)
    m.Ir.m_funcs;
  let diags = List.rev !ds in
  let diags =
    if !diverged then
      D.make D.Prove ~code:"prove-fixpoint-diverged" ~site:("module " ^ m.Ir.m_name)
        "abstract interpretation did not stabilise within %d rounds" max_rounds
      :: diags
    else diags
  in
  {
    pr_diags = diags;
    pr_rounds = !rounds;
    pr_escapes = Key_dataflow.escapes m;
    pr_wild_stores = List.rev env.wild_stores;
    pr_summaries =
      List.map
        (fun (f : Ir.func) -> (f.Ir.f_name, Hashtbl.find env.summaries f.Ir.f_name))
        m.Ir.m_funcs;
    pr_temp_values = temp_values;
    pr_module = m;
  }

(* ---------- the elision oracle ---------- *)

let provably_keyed m ~key av =
  match av with
  | A.Any | A.Set [] -> None
  | A.Set l ->
    let nonzero = List.filter (fun e -> e <> A.Zero_init) l in
    if nonzero = [] then None (* provably always zero: leave the fault in place *)
    else if
      List.for_all
        (function A.Glob g -> P.global_roload_key m g = Some key | _ -> false)
        nonzero
    then Some (if List.mem A.Zero_init l then `Guarded else `Pure)
    else None

let safe_temp r ~func ~temp ~key =
  if r.pr_wild_stores <> [] then None
  else if r.pr_diags <> [] then None
  else
    match Hashtbl.find_opt r.pr_temp_values func with
    | None -> None
    | Some tmax when temp < Array.length tmax -> provably_keyed r.pr_module ~key tmax.(temp)
    | Some _ -> None

(* ---------- rendering ---------- *)

let report_to_string r =
  let b = Buffer.create 256 in
  let plural n = if n = 1 then "" else "s" in
  Buffer.add_string b
    (Printf.sprintf
       "roload-prove: %d function%s, fixpoint in %d round%s, %d call-boundary escape%s discharged%s\n"
       (List.length r.pr_summaries)
       (plural (List.length r.pr_summaries))
       r.pr_rounds (plural r.pr_rounds)
       (List.length r.pr_escapes)
       (plural (List.length r.pr_escapes))
       (match r.pr_wild_stores with
       | [] -> ""
       | l -> Printf.sprintf ", %d wild store%s (elision disabled)" (List.length l)
                (plural (List.length l))));
  List.iter (fun d -> Buffer.add_string b (D.to_string d ^ "\n")) r.pr_diags;
  Buffer.add_string b
    (Printf.sprintf "prove: %d finding%s\n" (List.length r.pr_diags)
       (plural (List.length r.pr_diags)));
  Buffer.contents b

let report_to_json r =
  Json.obj
    [
      ("functions", Json.int (List.length r.pr_summaries));
      ("rounds", Json.int r.pr_rounds);
      ("escapes", Json.int (List.length r.pr_escapes));
      ("wild_stores", Json.int (List.length r.pr_wild_stores));
      ("findings", Json.arr (List.map D.to_json r.pr_diags));
      ("count", Json.int (List.length r.pr_diags));
    ]
  ^ "\n"

let exit_code r = if r.pr_diags = [] then 0 else 3
