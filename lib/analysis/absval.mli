(** Abstract value-set domain for roload-prove.

    Sits one rung above lint layer 2's {!Pointee} on the precision
    ladder (see [key_dataflow.mli]): where [Pointee] collapses to Top at
    every load and call boundary, this domain keeps named pointees
    across loads through abstract memory and across call boundaries via
    function summaries, and additionally distinguishes

    - non-pointer numbers ([Num]) from pointers, and
    - the implicit zero of a not-yet-written writable cell
      ([Zero_init]) from numbers the program computed,

    which is what lets the elision pass decide between an unguarded and
    a zero-guarded hoisted check. *)

type elem =
  | Glob of string  (** address of (or into) the named global *)
  | Frame  (** address into some stack frame (collapsed) *)
  | Fun of string  (** code address of the named function *)
  | Heap  (** address into the heap (collapsed) *)
  | Num  (** non-pointer number written by program code *)
  | Zero_init  (** the zero a writable cell holds before its first store *)

type t =
  | Any  (** top: any value at all *)
  | Set of elem list  (** sorted, deduplicated; clamped to [max_elems] *)

val max_elems : int
val bottom : t
val any : t
val of_elem : elem -> t
val of_list : elem list -> t
val join : t -> t -> t
val equal : t -> t -> bool
val is_bottom : t -> bool

val elems : t -> elem list option
(** [None] for [Any]. *)

val mem : elem -> t -> bool
(** [Any] contains every element. *)

val is_pointer : elem -> bool
(** [Glob]/[Frame]/[Fun]/[Heap]; false for [Num]/[Zero_init]. *)

val pointers : t -> elem list option
(** The pointer-shaped elements; [None] for [Any]. *)

val has_numeric : t -> bool
(** Whether the value may be a non-pointer number (incl. [Any]). *)

val arith : t -> t -> t
(** Abstract add/sub: a numeric offset does not pollute the pointee set
    ([base + i*8] still points into [base]); a [Num] mixed into the
    pointer side keeps the marker so consumers stay conservative, while
    a [Zero_init] there contributes nothing (zero plus an offset is a
    near-null address whose access faults — the null page is unmapped). *)

val elem_to_string : elem -> string
val to_string : t -> string
