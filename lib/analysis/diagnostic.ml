(* Structured diagnostics for roload-lint.

   A finding names the verification layer that produced it (the three
   layers of the static verifier: IR protection-completeness, the
   key-consistency dataflow, and the machine-level cross-check), a stable
   machine-readable code, the site it anchors to, and a human message.
   Reports render either as text (one finding per line plus a summary) or
   as JSON for tooling. *)

type layer = Ir_completeness | Key_dataflow | Machine_check | Prove

let layer_name = function
  | Ir_completeness -> "ir"
  | Key_dataflow -> "dataflow"
  | Machine_check -> "machine"
  | Prove -> "prove"

type t = {
  layer : layer;
  code : string; (* stable slug, e.g. "unannotated-icall" *)
  site : string; (* e.g. "main/entry" or "segment rodata.key.2" *)
  message : string;
}

let make layer ~code ~site fmt =
  Printf.ksprintf (fun message -> { layer; code; site; message }) fmt

let to_string d =
  Printf.sprintf "[%s] %s at %s: %s" (layer_name d.layer) d.code d.site d.message

(* ---------- report rendering ---------- *)

let report_to_string ds =
  match ds with
  | [] -> "lint: 0 findings\n"
  | _ ->
    let b = Buffer.create 256 in
    List.iter (fun d -> Buffer.add_string b (to_string d ^ "\n")) ds;
    let count l = List.length (List.filter (fun d -> d.layer = l) ds) in
    Buffer.add_string b
      (Printf.sprintf "lint: %d finding%s (ir: %d, dataflow: %d, machine: %d, prove: %d)\n"
         (List.length ds)
         (if List.length ds = 1 then "" else "s")
         (count Ir_completeness) (count Key_dataflow) (count Machine_check) (count Prove));
    Buffer.contents b

(* JSON escaping is shared with the metrics/bench writers (PR 4's
   [Roload_util.Json]) so lint JSON and metrics JSON escape identically. *)
let json_escape = Roload_util.Json.escape

let to_json d =
  Printf.sprintf {|{"layer":"%s","code":"%s","site":"%s","message":"%s"}|}
    (layer_name d.layer) (json_escape d.code) (json_escape d.site)
    (json_escape d.message)

let report_to_json ds =
  Printf.sprintf {|{"findings":[%s],"count":%d}|}
    (String.concat "," (List.map to_json ds))
    (List.length ds)
  ^ "\n"
