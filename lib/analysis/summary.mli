(** Function summaries for roload-prove: the join of all abstract
    arguments a function receives and of all values it can return.
    Monotone (summaries only grow), so the bottom-up fixpoint over the
    callgraph terminates on the finite {!Absval} domain. *)

type t = { mutable s_params : Absval.t array; mutable s_ret : Absval.t }

val create : nparams:int -> t

val join_args : t -> Absval.t list -> bool
(** Join an argument vector in; [true] iff anything grew.  Extra or
    missing arguments only join the shared prefix. *)

val join_ret : t -> Absval.t -> bool
val to_string : name:string -> t -> string
