(** Lint layer 3: machine-level cross-check.  Disassembles the linked
    executable and verifies that every IR-annotated site became an
    ld.ro-family instruction with the right key (per-key counts), that
    every ld.ro key is backed by a read-only segment carrying it, that
    segment attributes satisfy the ROLoad page conditions, and that the
    kernel loader installs matching page keys and permissions. *)

val run :
  ir:Roload_ir.Ir.modul -> exe:Roload_obj.Exe.t -> Diagnostic.t list
