(** Whole-program callgraph for roload-prove: direct edges from [Call]
    sites, indirect/virtual edges resolved type-based (address-taken
    functions per signature class; vtable slots per hierarchy root). *)

module Ir = Roload_ir.Ir

val builtins : string list
(** Runtime entry points the prover models directly instead of through
    summaries ([alloc], the print family, [exit]). *)

type t = {
  cg_funcs : string list;  (** module functions, definition order *)
  cg_edges : (string, string list) Hashtbl.t;  (** caller -> callees *)
  cg_address_taken : string list;
}

val address_taken : Ir.modul -> string list
(** Functions whose address escapes: [Func_addr] operands or [G_func]
    initializer words (GFPT entries and vtables included). *)

val targets_by_sig : Ir.modul -> string -> string list
(** Address-taken functions in the given type-based signature class. *)

val vcall_targets : Ir.modul -> class_name:string -> slot:int -> string list
(** Slot [slot] of every vtable sharing the class's hierarchy root. *)

val gfpt_target : Ir.modul -> string -> string option
(** The single function a GFPT entry global points at, if [name] is one. *)

val build : Ir.modul -> t
val callees : t -> string -> string list

val bottom_up : t -> string list list
(** Strongly-connected components in callee-first order. *)
