(* Lint layer 1: IR protection-completeness.

   After [Pass.apply] the module must be *fully* hardened for the active
   scheme: no indirect-transfer site may be left unannotated, every
   allowlist global (vtable, GFPT entry) must live in a keyed read-only
   section, and every annotation must name a key the module actually
   backs with a keyed section.  These are exactly the invariants the
   hardening passes establish by construction — this layer re-derives
   them independently so a pass regression is caught before the program
   reaches the simulated hardware. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Keys = Roload_passes.Keys
module Ext = Roload_isa.Roload_ext
module D = Diagnostic

let keyed_section name = String.starts_with ~prefix:".rodata.key." name
let is_gfpt name = String.starts_with ~prefix:"__gfpt$" name

let iter_instrs (m : Ir.modul) ~f =
  List.iter
    (fun fn ->
      List.iter
        (fun b ->
          let site = Printf.sprintf "%s/%s" fn.Ir.f_name b.Ir.b_label in
          List.iter (fun i -> f ~site i) b.Ir.b_instrs)
        fn.Ir.f_blocks)
    m.Ir.m_funcs

(* keys referenced by annotations anywhere in the module *)
let annotation_keys (m : Ir.modul) =
  let keys = ref [] in
  let remember k = if not (List.mem k !keys) then keys := k :: !keys in
  iter_instrs m ~f:(fun ~site:_ i ->
      match i with
      | Ir.Load { md = { Ir.roload_key = Some k; _ }; _ } -> remember k
      | Ir.Call_indirect { md = { Ir.ic_roload_key = Some k; _ }; _ } -> remember k
      | Ir.Vcall { md = { Ir.vc_roload_key = Some k; _ }; _ } -> remember k
      | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
      | Ir.Call_indirect _ | Ir.Vcall _ ->
        ());
  List.rev !keys

let has_func_addr_operand i =
  let is_fa = function Ir.Func_addr _ -> true | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> false in
  match i with
  | Ir.Bin (_, _, a, b) -> is_fa a || is_fa b
  | Ir.Load { addr; _ } -> is_fa addr
  | Ir.Store { src; addr; _ } -> is_fa src || is_fa addr
  | Ir.Lea_frame _ -> false
  | Ir.Call { args; _ } -> List.exists is_fa args
  | Ir.Call_indirect { callee; args; _ } -> is_fa callee || List.exists is_fa args
  | Ir.Vcall { obj; args; _ } -> is_fa obj || List.exists is_fa args

let run ~scheme (m : Ir.modul) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let diag ~code ~site fmt = Printf.ksprintf (fun msg -> add (D.make D.Ir_completeness ~code ~site "%s" msg)) fmt in
  let vt_symbols = List.map (fun vt -> vt.Ir.vt_symbol) m.Ir.m_vtables in
  (* key-range and section-name sanity, independent of scheme *)
  iter_instrs m ~f:(fun ~site i ->
      let check_key what = function
        | Some k when not (Ext.key_in_range k) ->
          diag ~code:"key-out-of-range" ~site "%s annotated with key %d (valid: 0..%d)" what
            k Ext.max_key
        | Some _ | None -> ()
      in
      let check_elided what ~elided key =
        if elided && key = None then
          diag ~code:"elided-without-key" ~site
            "%s marked elided but carries no roload key to elide" what
      in
      match i with
      | Ir.Load { md; _ } ->
        check_key "load" md.Ir.roload_key;
        check_elided "load" ~elided:md.Ir.ro_elided md.Ir.roload_key
      | Ir.Call_indirect { md; _ } ->
        check_key "indirect call" md.Ir.ic_roload_key;
        check_elided "indirect call" ~elided:md.Ir.ic_elided md.Ir.ic_roload_key
      | Ir.Vcall { md; _ } -> check_key "virtual call" md.Ir.vc_roload_key
      | Ir.Bin _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _ -> ());
  List.iter
    (fun (g : Ir.global) ->
      if keyed_section g.Ir.g_section && Pointee.section_attrs g.Ir.g_section = None then
        diag ~code:"bad-keyed-section" ~site:("global " ^ g.Ir.g_name)
          "section name %s does not parse as .rodata.key.<0..%d>" g.Ir.g_section Ext.max_key)
    m.Ir.m_globals;
  (* scheme-specific completeness *)
  (match scheme with
  | Pass.Unprotected ->
    iter_instrs m ~f:(fun ~site i ->
        match i with
        | Ir.Load { md = { Ir.roload_key = Some k; _ }; _ }
        | Ir.Call_indirect { md = { Ir.ic_roload_key = Some k; _ }; _ }
        | Ir.Vcall { md = { Ir.vc_roload_key = Some k; _ }; _ } ->
          diag ~code:"unexpected-annotation" ~site
            "roload key %d present under the unprotected scheme" k
        | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
        | Ir.Call_indirect _ | Ir.Vcall _ ->
          ())
  | Pass.Vcall ->
    iter_instrs m ~f:(fun ~site i ->
        match i with
        | Ir.Vcall { md = { Ir.vc_roload_key = None; _ }; class_name; _ } ->
          diag ~code:"unannotated-vcall" ~site
            "virtual call on class %s carries no roload key under VCall" class_name
        | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
        | Ir.Call_indirect _ | Ir.Vcall _ ->
          ());
    List.iter
      (fun sym ->
        match Ir.find_global m sym with
        | Some g when not (keyed_section g.Ir.g_section) ->
          diag ~code:"vtable-not-keyed" ~site:("global " ^ sym)
            "vtable left in section %s, expected a .rodata.key.<N> section" g.Ir.g_section
        | Some _ | None -> ())
      vt_symbols
  | Pass.Icall ->
    iter_instrs m ~f:(fun ~site i ->
        match i with
        | Ir.Call_indirect { md = { Ir.ic_roload_key = None; _ }; sig_id; _ } ->
          diag ~code:"unannotated-icall" ~site
            "indirect call [%s] carries no roload key under ICall" sig_id
        | Ir.Vcall { md = { Ir.vc_roload_key = None; _ }; class_name; _ } ->
          diag ~code:"unannotated-vcall" ~site
            "virtual call on class %s carries no roload key under ICall" class_name
        | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
        | Ir.Call_indirect _ | Ir.Vcall _ ->
          ());
    iter_instrs m ~f:(fun ~site i ->
        if has_func_addr_operand i then
          diag ~code:"raw-func-addr" ~site
            "raw function address survives ICall rewriting: %s" (Ir.instr_to_string i));
    let unified = Keys.keyed_rodata_section Ext.key_vtable_unified in
    List.iter
      (fun sym ->
        match Ir.find_global m sym with
        | Some g when g.Ir.g_section <> unified ->
          diag ~code:"vtable-not-unified" ~site:("global " ^ sym)
            "vtable in section %s, expected the unified vtable section %s" g.Ir.g_section
            unified
        | Some _ | None -> ())
      vt_symbols;
    List.iter
      (fun (g : Ir.global) ->
        if is_gfpt g.Ir.g_name && not (keyed_section g.Ir.g_section) then
          diag ~code:"gfpt-not-keyed" ~site:("global " ^ g.Ir.g_name)
            "GFPT entry in section %s, expected a .rodata.key.<N> section" g.Ir.g_section;
        if
          (not (is_gfpt g.Ir.g_name))
          && (not (List.mem g.Ir.g_name vt_symbols))
          && List.exists (function Ir.G_func _ -> true | Ir.G_int _ | Ir.G_global _ -> false)
               g.Ir.g_init
        then
          diag ~code:"raw-func-addr" ~site:("global " ^ g.Ir.g_name)
            "raw function address in initializer survives ICall rewriting")
      m.Ir.m_globals
  | Pass.Retcall -> (
    match m.Ir.m_ret_key with
    | None ->
      diag ~code:"missing-ret-key" ~site:("module " ^ m.Ir.m_name)
        "Retcall scheme active but no module return-site key is set"
    | Some k when k <> Ext.key_return_sites ->
      diag ~code:"unexpected-ret-key" ~site:("module " ^ m.Ir.m_name)
        "return-site key is %d, expected the reserved key %d" k Ext.key_return_sites
    | Some _ -> ())
  | Pass.Vtint_baseline ->
    iter_instrs m ~f:(fun ~site i ->
        match i with
        | Ir.Vcall { md = { Ir.vc_vtint = false; _ }; class_name; _ } ->
          diag ~code:"unchecked-vcall" ~site
            "virtual call on class %s carries no VTint range check" class_name
        | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
        | Ir.Call_indirect _ | Ir.Vcall _ ->
          ())
  | Pass.Cfi_baseline ->
    iter_instrs m ~f:(fun ~site i ->
        match i with
        | Ir.Call_indirect { md = { Ir.ic_cfi_label = None; _ }; sig_id; _ } ->
          diag ~code:"unlabelled-icall" ~site
            "indirect call [%s] carries no CFI label under label-CFI" sig_id
        | Ir.Vcall { md = { Ir.vc_cfi_label = None; _ }; class_name; _ } ->
          diag ~code:"unlabelled-vcall" ~site
            "virtual call on class %s carries no CFI label under label-CFI" class_name
        | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
        | Ir.Call_indirect _ | Ir.Vcall _ ->
          ()));
  (* every annotated key must be backed by a keyed section in the module *)
  List.iter
    (fun k ->
      let section = Keys.keyed_rodata_section k in
      if
        Ext.key_in_range k
        && not (List.exists (fun (g : Ir.global) -> g.Ir.g_section = section) m.Ir.m_globals)
      then
        diag ~code:"key-without-section" ~site:("module " ^ m.Ir.m_name)
          "key %d is used by annotations but no global lives in %s" k section)
    (annotation_keys m);
  List.rev !ds
