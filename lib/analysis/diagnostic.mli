(** Structured diagnostics for roload-lint: each finding names the
    verification layer that produced it, a stable machine-readable code,
    the site it anchors to, and a human-readable message. *)

type layer =
  | Ir_completeness  (** layer 1: IR protection-completeness *)
  | Key_dataflow  (** layer 2: key-consistency dataflow / ro-store lint *)
  | Machine_check  (** layer 3: disassembly & loader cross-check *)
  | Prove  (** whole-program interprocedural prover (roload-prove) *)

val layer_name : layer -> string
(** ["ir"], ["dataflow"], ["machine"] or ["prove"]. *)

type t = { layer : layer; code : string; site : string; message : string }

val make :
  layer -> code:string -> site:string -> ('a, unit, string, t) format4 -> 'a
(** [make layer ~code ~site fmt ...] builds a finding with a formatted
    message. *)

val to_string : t -> string
(** [[layer] code at site: message]. *)

val to_json : t -> string

val report_to_string : t list -> string
(** One finding per line plus a per-layer summary; ["lint: 0 findings\n"]
    on a clean run. *)

val report_to_json : t list -> string
(** [{"findings":[...],"count":n}] with a trailing newline. *)
