(* Function summaries for roload-prove's bottom-up fixpoint: the join of
   every abstract argument a function has been observed to receive, and
   the join of every abstract value it can return.  Summaries only grow
   (the domain is finite), so iterating the per-function analysis until
   no summary changes terminates. *)

type t = { mutable s_params : Absval.t array; mutable s_ret : Absval.t }

let create ~nparams =
  { s_params = Array.make nparams Absval.bottom; s_ret = Absval.bottom }

(* Join an argument vector in; returns whether anything grew.  A caller
   passing fewer arguments than the summary has parameters (or more)
   only joins the shared prefix — the verifier rejects such modules, but
   the prover must not crash before it gets the chance. *)
let join_args t args =
  let grew = ref false in
  List.iteri
    (fun i av ->
      if i < Array.length t.s_params then begin
        let j = Absval.join t.s_params.(i) av in
        if not (Absval.equal j t.s_params.(i)) then begin
          t.s_params.(i) <- j;
          grew := true
        end
      end)
    args;
  !grew

let join_ret t av =
  let j = Absval.join t.s_ret av in
  if Absval.equal j t.s_ret then false
  else begin
    t.s_ret <- j;
    true
  end

let to_string ~name t =
  Printf.sprintf "%s(%s) -> %s" name
    (String.concat ", " (Array.to_list (Array.map Absval.to_string t.s_params)))
    (Absval.to_string t.s_ret)
