(* Lint layer 3: machine-level cross-check.

   The lowest layer verifies that the hardening the IR *claims* is what
   the linked executable *carries*:

   - disassemble the executable segments and compare, per key, the number
     of ld.ro-family instructions against the number of IR-annotated
     sites (each annotated load/icall/vcall lowers to exactly one ld.ro,
     plus one per protected epilogue under Retcall);
   - every ld.ro key must be backed by a read-only, non-executable
     segment carrying that key — otherwise the instruction can only fault;
   - segment attributes must satisfy the ROLoad page conditions (keyed
     segments are read-only, executable/writable segments are unkeyed);
   - load the image through the ROLoad kernel and check that the page
     keys and permissions the loader installs in the page table match the
     section keys the linker assigned. *)

module Ir = Roload_ir.Ir
module D = Diagnostic
module Inst = Roload_isa.Inst
module Ext = Roload_isa.Roload_ext
module Exe = Roload_obj.Exe
module Perm = Roload_mem.Perm
module Page_table = Roload_mem.Page_table
module Pte = Roload_mem.Pte

(* ---------- instruction-stream scan ---------- *)

(* Walk one segment's code through the engine's pre-decoded block
   representation ([Block.predecode] — the same decode the simulator
   caches at run time), collecting the key of every ld.ro-family
   instruction (compressed c.ld.ro decodes to the same [Load_ro]). *)
let roload_keys_in_segment (s : Exe.segment) =
  let acc = ref [] in
  Roload_machine.Block.iter_insts
    (Roload_machine.Block.predecode ~base:s.Exe.vaddr s.Exe.data)
    ~f:(fun ~pa:_ inst ~size:_ ->
      match inst with
      | Inst.Load_ro { key; _ } -> acc := key :: !acc
      | _ -> ());
  !acc

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0)

let actual_key_counts (exe : Exe.t) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Exe.segment) ->
      if s.Exe.perms.Perm.x then List.iter (bump tbl) (roload_keys_in_segment s))
    exe.Exe.segments;
  tbl

(* Per-key ld.ro counts the IR commits the code generator to. *)
let expected_key_counts (m : Ir.modul) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Load { md = { Ir.roload_key = Some k; ro_elided = false }; _ } -> bump tbl k
              | Ir.Call_indirect { md = { Ir.ic_roload_key = Some k; ic_elided = false; _ }; _ }
                -> bump tbl k
              | Ir.Vcall { md = { Ir.vc_roload_key = Some k; _ }; _ } -> bump tbl k
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Call_indirect _ | Ir.Vcall _ ->
                ())
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  (* Retcall: one protected epilogue per module function except main *)
  (match m.Ir.m_ret_key with
  | Some k ->
    List.iter (fun f -> if f.Ir.f_name <> "main" then bump tbl k) m.Ir.m_funcs
  | None -> ());
  tbl

(* ---------- kernel page-table cross-check ---------- *)

let page_table_check ~add (exe : Exe.t) =
  let machine = Roload_machine.Machine.create Roload_machine.Config.default in
  let kernel =
    Roload_kernel.Kernel.create ~machine ~config:Roload_kernel.Kernel.default_config
  in
  match Roload_kernel.Kernel.load kernel exe with
  | exception e ->
    add
      (D.make D.Machine_check ~code:"kernel-load-failed" ~site:"loader"
         "kernel refused the image: %s" (Printexc.to_string e))
  | process ->
    let pt = Roload_kernel.Process.page_table process in
    List.iter
      (fun (s : Exe.segment) ->
        let site = "segment " ^ s.Exe.name in
        for i = 0 to Exe.segment_pages s - 1 do
          let va = s.Exe.vaddr + (i * Page_table.page_size) in
          match Page_table.walk pt va with
          | Error (Page_table.Not_mapped | Page_table.Bad_alignment) ->
            add
              (D.make D.Machine_check ~code:"page-unmapped" ~site
                 "page 0x%x of the segment is not mapped by the loader" va)
          | Ok { Page_table.pte; _ } ->
            if Pte.key pte <> s.Exe.key then
              add
                (D.make D.Machine_check ~code:"page-key-mismatch" ~site
                   "page 0x%x carries PTE key %d, segment declares key %d" va (Pte.key pte)
                   s.Exe.key);
            if not (Perm.equal (Pte.perms pte) s.Exe.perms) then
              add
                (D.make D.Machine_check ~code:"page-perm-mismatch" ~site
                   "page 0x%x carries PTE perms %s, segment declares %s" va
                   (Perm.to_string (Pte.perms pte))
                   (Perm.to_string s.Exe.perms))
        done)
      exe.Exe.segments

(* ---------- driver ---------- *)

let run ~(ir : Ir.modul) ~(exe : Exe.t) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (* segment attribute sanity *)
  List.iter
    (fun (s : Exe.segment) ->
      let site = "segment " ^ s.Exe.name in
      if s.Exe.key < 0 || s.Exe.key > Ext.max_key then
        add
          (D.make D.Machine_check ~code:"segment-key-out-of-range" ~site
             "segment key %d outside the %d-bit key space" s.Exe.key Ext.key_bits);
      if s.Exe.key <> 0 && not (Perm.read_only s.Exe.perms) then
        add
          (D.make D.Machine_check ~code:"keyed-segment-not-read-only" ~site
             "segment carries key %d but permissions %s are not read-only" s.Exe.key
             (Perm.to_string s.Exe.perms)))
    exe.Exe.segments;
  (* annotated sites vs. emitted ld.ro, per key *)
  let expected = expected_key_counts ir in
  let actual = actual_key_counts exe in
  let all_keys =
    List.sort_uniq compare
      (Hashtbl.fold (fun k _ acc -> k :: acc) expected
         (Hashtbl.fold (fun k _ acc -> k :: acc) actual []))
  in
  List.iter
    (fun k ->
      let e = Option.value (Hashtbl.find_opt expected k) ~default:0 in
      let a = Option.value (Hashtbl.find_opt actual k) ~default:0 in
      if e > a then
        add
          (D.make D.Machine_check ~code:"missing-roload" ~site:"text"
             "key %d: %d IR-annotated site%s but only %d ld.ro instruction%s emitted" k e
             (if e = 1 then "" else "s")
             a
             (if a = 1 then "" else "s"))
      else if a > e then
        add
          (D.make D.Machine_check ~code:"unexpected-roload" ~site:"text"
             "key %d: %d ld.ro instruction%s emitted but only %d IR-annotated site%s" k a
             (if a = 1 then "" else "s")
             e
             (if e = 1 then "" else "s")))
    all_keys;
  (* every executed ld.ro key needs a read-only segment carrying it *)
  Hashtbl.iter
    (fun k _ ->
      if
        not
          (List.exists
             (fun (s : Exe.segment) -> s.Exe.key = k && Perm.read_only s.Exe.perms)
             exe.Exe.segments)
      then
        add
          (D.make D.Machine_check ~code:"roload-key-without-segment" ~site:"text"
             "ld.ro with key %d but no read-only segment carries that key — the load can only fault"
             k))
    actual;
  (* loader cross-check *)
  page_table_check ~add exe;
  List.rev !ds
