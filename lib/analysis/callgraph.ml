(* Whole-program callgraph for roload-prove.

   Direct edges come straight from [Call] sites.  Indirect and virtual
   edges are resolved *type-based*: an indirect call of signature S can
   reach any address-taken function of signature S (paper §IV-B's
   type-based equivalence classes — the same classes the ICall pass uses
   to populate the GFPT), and a virtual call on class C at slot i can
   reach slot i of any vtable rooted at C's hierarchy root.  The prover
   additionally narrows indirect targets with flow information at each
   site; the type-based sets here are the sound fallback and what orders
   the bottom-up summary fixpoint. *)

module Ir = Roload_ir.Ir

let builtins =
  [ "exit"; "print_char"; "print_str"; "print_int"; "alloc"; "fork"; "wait"; "read_request" ]
let is_gfpt name = String.starts_with ~prefix:"__gfpt$" name

type t = {
  cg_funcs : string list;  (* module functions, definition order *)
  cg_edges : (string, string list) Hashtbl.t;  (* caller -> possible callees *)
  cg_address_taken : string list;
}

(* Functions whose address escapes into data or operands: [Func_addr]
   anywhere, or a [G_func] initializer word in any global (GFPT entries
   and vtables included — their slots are exactly what indirect and
   virtual calls load). *)
let address_taken (m : Ir.modul) =
  let acc = ref [] in
  let remember f = if not (List.mem f !acc) then acc := f :: !acc in
  let value = function Ir.Func_addr f -> remember f | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> () in
  List.iter
    (fun fn ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Bin (_, _, a, b) ->
                value a;
                value b
              | Ir.Load { addr; _ } -> value addr
              | Ir.Store { src; addr; _ } ->
                value src;
                value addr
              | Ir.Lea_frame _ -> ()
              | Ir.Call { args; _ } -> List.iter value args
              | Ir.Call_indirect { callee; args; _ } ->
                value callee;
                List.iter value args
              | Ir.Vcall { obj; args; _ } ->
                value obj;
                List.iter value args)
            b.Ir.b_instrs;
          match b.Ir.b_term with
          | Ir.Ret (Some v) -> value v
          | Ir.Ret None | Ir.Br _ | Ir.Cbr _ | Ir.Halt -> ())
        fn.Ir.f_blocks)
    m.Ir.m_funcs;
  List.iter
    (fun (g : Ir.global) ->
      List.iter
        (function Ir.G_func f -> remember f | Ir.G_int _ | Ir.G_global _ -> ())
        g.Ir.g_init)
    m.Ir.m_globals;
  List.rev !acc

(* Address-taken functions whose type matches [sig_id]. *)
let targets_by_sig (m : Ir.modul) sig_id =
  let taken = address_taken m in
  List.filter
    (fun f ->
      List.mem f.Ir.f_name taken && Ir.signature_id f.Ir.f_sig = sig_id)
    m.Ir.m_funcs
  |> List.map (fun f -> f.Ir.f_name)

(* Slot [slot] of every vtable sharing [class_name]'s hierarchy root —
   the same resolution the reference interpreter uses. *)
let vcall_targets (m : Ir.modul) ~class_name ~slot =
  match List.find_opt (fun vt -> vt.Ir.vt_class = class_name) m.Ir.m_vtables with
  | None -> []
  | Some vt ->
    List.filter_map
      (fun cand ->
        if cand.Ir.vt_root = vt.Ir.vt_root then List.nth_opt cand.Ir.vt_methods slot
        else None)
      m.Ir.m_vtables

(* GFPT entries point at exactly one function; an operand that abstracts
   to such a global resolves to that function. *)
let gfpt_target (m : Ir.modul) name =
  if not (is_gfpt name) then None
  else
    match Ir.find_global m name with
    | Some { Ir.g_init = [ Ir.G_func f ]; _ } -> Some f
    | Some _ | None -> None

let build (m : Ir.modul) =
  let edges = Hashtbl.create 16 in
  let names = List.map (fun f -> f.Ir.f_name) m.Ir.m_funcs in
  List.iter
    (fun fn ->
      let callees = ref [] in
      let add c = if List.mem c names && not (List.mem c !callees) then callees := c :: !callees in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Call { callee; _ } -> add callee
              | Ir.Call_indirect { sig_id; _ } -> List.iter add (targets_by_sig m sig_id)
              | Ir.Vcall { class_name; slot; _ } ->
                List.iter add (vcall_targets m ~class_name ~slot)
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ -> ())
            b.Ir.b_instrs)
        fn.Ir.f_blocks;
      Hashtbl.replace edges fn.Ir.f_name (List.rev !callees))
    m.Ir.m_funcs;
  { cg_funcs = names; cg_edges = edges; cg_address_taken = address_taken m }

let callees t f = Option.value (Hashtbl.find_opt t.cg_edges f) ~default:[]

(* Tarjan's SCC algorithm.  Components pop callee-first, which is
   exactly the bottom-up order the summary fixpoint wants. *)
let bottom_up t =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.cg_funcs;
  List.rev !sccs
