(* Abstract value-set domain for roload-prove.

   An abstract value describes the set of *pointees* a runtime word can
   denote.  Unlike the per-function [Pointee] domain of lint layer 2,
   this domain distinguishes non-pointer numbers from pointers and keeps
   a dedicated element for the zero a writable cell holds before its
   first store — both distinctions are what let the elision pass prove a
   hoisted check can never fault where the original would not. *)

type elem =
  | Glob of string  (* address of (or into) the named global *)
  | Frame  (* address into some stack frame (collapsed) *)
  | Fun of string  (* code address of the named function *)
  | Heap  (* address into the heap (collapsed) *)
  | Num  (* non-pointer number written by program code *)
  | Zero_init  (* the zero a writable cell holds before its first store *)

type t = Any | Set of elem list (* sorted, deduplicated, |l| <= max_elems *)

(* Past this width a set is no more useful than Top, and clamping keeps
   the fixpoint iteration count bounded. *)
let max_elems = 64

let bottom = Set []
let any = Any

let normalize l =
  let l = List.sort_uniq compare l in
  if List.length l > max_elems then Any else Set l

let of_elem e = Set [ e ]
let of_list l = normalize l

let join a b =
  match (a, b) with
  | Any, _ | _, Any -> Any
  | Set xs, Set ys -> normalize (xs @ ys)

let equal (a : t) (b : t) = a = b
let is_bottom = function Set [] -> true | Set _ | Any -> false
let elems = function Any -> None | Set l -> Some l
let mem e = function Any -> true | Set l -> List.mem e l

(* Pointer-shaped elements: what survives pointer arithmetic. *)
let is_pointer = function
  | Glob _ | Frame | Fun _ | Heap -> true
  | Num | Zero_init -> false

let pointers = function Any -> None | Set l -> Some (List.filter is_pointer l)
let has_numeric = function Any -> true | Set l -> List.exists (fun e -> not (is_pointer e)) l

(* Abstract pointer arithmetic (add/sub).  The offset side of an
   indexing expression is numeric and must not pollute the pointee set
   — [base + i*8] still points into [base].  A [Num] on a
   pointer-carrying side (an int cast mixed into a pointer value) keeps
   the [Num] marker so downstream consumers stay conservative.
   [Zero_init] on a pointer-carrying side does *not*: zero plus an
   offset is a near-null address whose access faults (the null page is
   never mapped), so — like a direct [Zero_init] dereference — it
   contributes no reachable value. *)
let arith a b =
  match (a, b) with
  | Any, _ | _, Any -> Any
  | Set xs, Set ys ->
    let ps = List.filter is_pointer (xs @ ys) in
    if ps = [] then Set [ Num ]
    else begin
      let poisoned side = List.exists is_pointer side && List.mem Num side in
      let both_sides_pointers = List.exists is_pointer xs && List.exists is_pointer ys in
      if poisoned xs || poisoned ys || both_sides_pointers then normalize (Num :: ps)
      else normalize ps
    end

let elem_to_string = function
  | Glob g -> "@" ^ g
  | Frame -> "<stack>"
  | Fun f -> "&" ^ f
  | Heap -> "<heap>"
  | Num -> "<num>"
  | Zero_init -> "<zero-init>"

let to_string = function
  | Any -> "any"
  | Set [] -> "none"
  | Set l -> "{" ^ String.concat ", " (List.map elem_to_string l) ^ "}"
