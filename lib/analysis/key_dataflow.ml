(* Lint layer 2: key-consistency dataflow.

   An intraprocedural forward dataflow over [Ir.func] tracks, per temp,
   the set of objects its value can point to (see [Pointee]).  Two lints
   consume the result:

   - *key mismatch*: a load (or indirect call) annotated with roload key
     [k] whose address provably resolves to pointees none of which live
     in a read-only section keyed [k] — that ld.ro can only fault.
   - *ro-store*: a store whose address provably resolves to a global in a
     read-only (in particular keyed) section — the write either faults or,
     worse, indicates an allowlist the program expects to mutate.

   The analysis is deliberately conservative: [Top] (unknown) suppresses
   diagnostics, so every report is a definite inconsistency, never a
   may-alias guess. *)

module Ir = Roload_ir.Ir
module D = Diagnostic
module P = Pointee

type state = P.t array (* indexed by temp *)

let eval (st : state) = function
  | Ir.Temp t -> st.(t)
  | Ir.Const _ -> P.bottom
  | Ir.Global g -> P.of_target (P.Global g)
  | Ir.Func_addr f -> P.of_target (P.Func f)

(* pointer part of an operand: constants contribute no pointees *)
let ptr_part (st : state) = function
  | Ir.Const _ -> P.bottom
  | v -> eval st v

let transfer (st : state) i =
  match i with
  | Ir.Bin (op, d, a, b) ->
    (* pointer arithmetic preserves the pointee; everything else yields a
       plain integer *)
    let pv =
      match op with
      | Ir.Add | Ir.Sub -> P.join (ptr_part st a) (ptr_part st b)
      | Ir.Mul | Ir.Div | Ir.Rem | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Shr
      | Ir.Shru | Ir.Eq | Ir.Ne | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge ->
        P.bottom
    in
    st.(d) <- pv
  | Ir.Load { dst; _ } -> st.(dst) <- P.Top
  | Ir.Lea_frame (d, _) -> st.(d) <- P.of_target P.Frame
  | Ir.Store _ -> ()
  | Ir.Call { dst; _ } | Ir.Call_indirect { dst; _ } | Ir.Vcall { dst; _ } ->
    Option.iter (fun d -> st.(d) <- P.Top) dst

let states_equal (a : state) (b : state) =
  let n = Array.length a in
  let rec go i = i >= n || (P.equal a.(i) b.(i) && go (i + 1)) in
  go 0

(* Block-entry states by fixpoint iteration; blocks unreachable from the
   entry keep no state and are skipped by the check pass. *)
let block_entry_states (f : Ir.func) =
  let states : (string, state) Hashtbl.t = Hashtbl.create 8 in
  (match f.Ir.f_blocks with
  | [] -> ()
  | entry :: _ ->
    let init = Array.make (max f.Ir.f_ntemps 1) P.bottom in
    List.iter (fun t -> init.(t) <- P.Top) f.Ir.f_params;
    Hashtbl.replace states entry.Ir.b_label init;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun b ->
          match Hashtbl.find_opt states b.Ir.b_label with
          | None -> ()
          | Some entry_st ->
            let st = Array.copy entry_st in
            List.iter (transfer st) b.Ir.b_instrs;
            List.iter
              (fun succ ->
                match Hashtbl.find_opt states succ with
                | None ->
                  Hashtbl.replace states succ (Array.copy st);
                  changed := true
                | Some old ->
                  let merged = Array.mapi (fun i v -> P.join v st.(i)) old in
                  if not (states_equal merged old) then begin
                    Hashtbl.replace states succ merged;
                    changed := true
                  end)
              (Ir.successors b.Ir.b_term))
        f.Ir.f_blocks
    done);
  states

let check_func (m : Ir.modul) (f : Ir.func) ~add =
  let states = block_entry_states f in
  let check_keyed ~site ~what st addr k =
    match P.targets (eval st addr) with
    | None | Some [] -> () (* unknown or non-pointer: nothing provable *)
    | Some ts ->
      let matches = function
        | P.Global g -> P.global_roload_key m g = Some k
        | P.Frame | P.Func _ -> false
      in
      if not (List.exists matches ts) then
        add
          (D.make D.Key_dataflow ~code:"key-mismatch" ~site
             "%s annotated with key %d but its address points to %s — no pointee lives in a read-only section with that key"
             what k (P.to_string (eval st addr)))
  in
  let check_store ~site st addr =
    match P.targets (eval st addr) with
    | None | Some [] -> ()
    | Some ts ->
      List.iter
        (function
          | P.Global g -> (
            match P.global_ro_attrs m g with
            | Some (section, key) ->
              add
                (D.make D.Key_dataflow ~code:"store-to-rodata" ~site
                   "store into read-only global @%s (section %s, key %d)" g section key)
            | None -> ())
          | P.Frame | P.Func _ -> ())
        ts
  in
  List.iter
    (fun b ->
      match Hashtbl.find_opt states b.Ir.b_label with
      | None -> () (* unreachable *)
      | Some entry_st ->
        let st = Array.copy entry_st in
        let site = Printf.sprintf "%s/%s" f.Ir.f_name b.Ir.b_label in
        List.iter
          (fun i ->
            (match i with
            | Ir.Load { addr; md = { Ir.roload_key = Some k; _ }; _ } ->
              check_keyed ~site ~what:"load" st addr k
            | Ir.Call_indirect { callee; md = { Ir.ic_roload_key = Some k; _ }; _ } ->
              check_keyed ~site ~what:"indirect call" st callee k
            | Ir.Store { addr; _ } -> check_store ~site st addr
            | Ir.Bin _ | Ir.Load _ | Ir.Lea_frame _ | Ir.Call _ | Ir.Call_indirect _
            | Ir.Vcall _ ->
              ());
            transfer st i)
          b.Ir.b_instrs)
    f.Ir.f_blocks

let run (m : Ir.modul) =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter (fun f -> check_func m f ~add) m.Ir.m_funcs;
  List.rev !ds

(* ---------- call-boundary escapes ----------

   The transfer function above deliberately havocs at every call: a
   callee may stash an argument anywhere, so the intraprocedural domain
   cannot track it further.  Historically that loss was silent.  Each
   such point is now *reported* as an escape — a keyed pointee crossing
   a function boundary (as a call argument, a virtual-call receiver, or
   a return value) where layer 2's precision ends and only the
   whole-program prover (roload-prove) can pick the fact back up.
   Escapes are informational, not findings: passing a GFPT entry to a
   callee is exactly how hardened code is supposed to look. *)

type escape_kind = Arg of int | Receiver | Ret

type escape = {
  esc_site : string;  (* func/block *)
  esc_kind : escape_kind;
  esc_callee : string;  (* callee description *)
  esc_global : string;  (* the keyed global escaping *)
  esc_key : int;
}

let escape_to_string e =
  let kind =
    match e.esc_kind with
    | Arg i -> Printf.sprintf "argument %d of %s" i e.esc_callee
    | Receiver -> Printf.sprintf "receiver of %s" e.esc_callee
    | Ret -> "return value"
  in
  Printf.sprintf "%s: @%s (key %d) escapes as %s" e.esc_site e.esc_global e.esc_key kind

let escapes (m : Ir.modul) =
  let acc = ref [] in
  let keyed_targets st v =
    match P.targets (eval st v) with
    | None -> []
    | Some ts ->
      List.filter_map
        (function
          | P.Global g -> Option.map (fun k -> (g, k)) (P.global_roload_key m g)
          | P.Frame | P.Func _ -> None)
        ts
  in
  let record ~site ~callee kind (g, k) =
    acc :=
      { esc_site = site; esc_kind = kind; esc_callee = callee; esc_global = g; esc_key = k }
      :: !acc
  in
  List.iter
    (fun (f : Ir.func) ->
      let states = block_entry_states f in
      List.iter
        (fun b ->
          match Hashtbl.find_opt states b.Ir.b_label with
          | None -> ()
          | Some entry_st ->
            let st = Array.copy entry_st in
            let site = Printf.sprintf "%s/%s" f.Ir.f_name b.Ir.b_label in
            let args_of ~callee args =
              List.iteri
                (fun i a -> List.iter (record ~site ~callee (Arg i)) (keyed_targets st a))
                args
            in
            List.iter
              (fun i ->
                (match i with
                | Ir.Call { callee; args; _ } -> args_of ~callee args
                | Ir.Call_indirect { args; sig_id; _ } ->
                  args_of ~callee:(Printf.sprintf "icall[%s]" sig_id) args
                | Ir.Vcall { obj; args; class_name; slot; _ } ->
                  let callee = Printf.sprintf "vcall %s[%d]" class_name slot in
                  List.iter (record ~site ~callee Receiver) (keyed_targets st obj);
                  args_of ~callee args
                | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ -> ());
                transfer st i)
              b.Ir.b_instrs;
            (match b.Ir.b_term with
            | Ir.Ret (Some v) ->
              List.iter (record ~site ~callee:f.Ir.f_name Ret) (keyed_targets st v)
            | Ir.Ret None | Ir.Br _ | Ir.Cbr _ | Ir.Halt -> ()))
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  List.rev !acc
