(* Shared trap classification for the attack runner and roload-fuzz. *)

module Signal = Roload_kernel.Signal
module Process = Roload_kernel.Process

type kind =
  | Roload_fault
  | Check_abort
  | Segfault
  | Other_fault of string

let kind_name = function
  | Roload_fault -> "roload"
  | Check_abort -> "abort"
  | Segfault -> "segv"
  | Other_fault s -> "other:" ^ s

let kind_of_string s =
  match s with
  | "roload" -> Some Roload_fault
  | "abort" -> Some Check_abort
  | "segv" -> Some Segfault
  | _ ->
    let p = "other:" in
    let np = String.length p in
    if String.length s > np && String.sub s 0 np = p then
      Some (Other_fault (String.sub s np (String.length s - np)))
    else None

(* ebreak is how the code generator aborts a failed inline check (CFI
   label mismatch, VTint range violation); the kernel reports it as a
   SIGILL with this marker. *)
let classify_signal (sg : Signal.t) =
  match sg with
  | Signal.Sigsegv (Signal.Roload_violation _) -> Roload_fault
  | Signal.Sigsegv (Signal.Access_violation _) -> Segfault
  | Signal.Sigill { info = "ebreak"; _ } -> Check_abort
  | Signal.Sigkill { info } -> Other_fault ("kill:" ^ info)
  | Signal.Sigill _ | Signal.Sigbus _ -> Other_fault (Signal.to_string sg)

type stop =
  | Exit of int
  | Trap of kind
  | Timeout

let stop_name = function
  | Exit n -> Printf.sprintf "exit:%d" n
  | Trap k -> "trap:" ^ kind_name k
  | Timeout -> "timeout"

let stop_of_string s =
  match s with
  | "timeout" -> Some Timeout
  | _ ->
    let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
    let rest p = String.sub s (String.length p) (String.length s - String.length p) in
    if prefixed "exit:" then int_of_string_opt (rest "exit:") |> Option.map (fun n -> Exit n)
    else if prefixed "trap:" then kind_of_string (rest "trap:") |> Option.map (fun k -> Trap k)
    else None

let stop_equal (a : stop) (b : stop) = a = b

let stop_of_status = function
  | Process.Exited n -> Exit n
  | Process.Killed sg -> Trap (classify_signal sg)
  | Process.Running -> Timeout
