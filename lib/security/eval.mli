(** The attack runner: pause the victim at [attack_point], corrupt memory
    through the attacker's writable-memory primitive, resume, classify.
    Scheme-agnostic — the ICall transformation is detected from GFPT
    symbols and the attacker adapts to the strongest available strategy. *)

type run_config = {
  machine_config : Roload_machine.Config.t;
  kernel_config : Roload_kernel.Kernel.config;
}

val default_run_config : run_config

val gfpt_symbol_for : Roload_obj.Exe.t -> string -> string option
val fptr_value_for : Roload_obj.Exe.t -> string -> int
(** The value an attacker writes into a function-pointer slot to aim it
    at a function: its GFPT slot address under ICall, else its code
    address. *)

val run : ?config:run_config -> exe:Roload_obj.Exe.t -> Attack.kind -> Attack.outcome
(** Raises [Failure] if the victim never reaches the attack point or the
    corruption primitive is unexpectedly blocked. *)

val run_corpus :
  ?config:run_config ->
  ?from_reset:bool ->
  exe:Roload_obj.Exe.t ->
  unit ->
  (Attack.kind * Attack.outcome) list
(** All attack kinds against one victim.  By default the victim is
    booted once, paused at the attack point, snapshotted, and each
    attack runs in a copy-on-write fork of the warm image;
    [~from_reset:true] boots every attack from reset instead.  Verdicts
    are identical either way — only the throughput changes. *)
