(* The attack runner: pause the victim at [attack_point], corrupt memory
   through the attacker's writable-memory primitive, resume, and classify
   the outcome.

   This module is scheme-agnostic: it works on a linked executable and
   its symbol table, and detects whether the ICall transformation was
   applied by looking for GFPT symbols (function-pointer values then hold
   GFPT-slot addresses, and the attacker adapts accordingly — the
   strongest available strategy per scheme). *)

module Machine = Roload_machine.Machine
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Signal = Roload_kernel.Signal
module Exe = Roload_obj.Exe

type run_config = {
  machine_config : Roload_machine.Config.t;
  kernel_config : Kernel.config;
}

let default_run_config =
  { machine_config = Roload_machine.Config.default;
    kernel_config = Kernel.default_config }

let gfpt_symbol_for exe func =
  let suffix = "$" ^ func in
  let is_gfpt (name, _) =
    String.length name > 7
    && String.sub name 0 7 = "__gfpt$"
    && String.length name > String.length suffix
    && String.sub name
         (String.length name - String.length suffix)
         (String.length suffix)
       = suffix
  in
  match List.find_opt is_gfpt exe.Exe.symbols with
  | Some (name, _) -> Some name
  | None -> None

(* The address an attacker writes into a function-pointer slot to make
   it "point at" [func]: the raw code address normally, or the GFPT slot
   address when the ICall transformation is active (pointers then hold
   GFPT addresses, and using anything else is even easier to catch). *)
let fptr_value_for exe func =
  match gfpt_symbol_for exe func with
  | Some sym -> Exe.find_symbol_exn exe sym
  | None -> Exe.find_symbol_exn exe func

let corrupt exe process (kind : Attack.kind) =
  let addr name = Exe.find_symbol_exn exe name in
  let obj_addr () = Int64.to_int (Process.read_u64 process ~va:(addr "g")) in
  match kind with
  | Attack.Vtable_injection ->
    (* forge a fake vtable in writable memory, then swing the vptr *)
    let fake = addr "fake_vtable" in
    let gadget = Int64.of_int (addr "gadget") in
    for slot = 0 to 3 do
      Process.attacker_write_u64 process ~va:(fake + (8 * slot)) gadget
    done;
    Process.attacker_write_u64 process ~va:(obj_addr ()) (Int64.of_int fake)
  | Attack.Vtable_corruption_reuse ->
    (* swing the vptr at another hierarchy's legitimate vtable *)
    Process.attacker_write_u64 process ~va:(obj_addr ())
      (Int64.of_int (addr "__vt$Logger"))
  | Attack.Fptr_overwrite ->
    Process.attacker_write_u64 process ~va:(addr "callback")
      (Int64.of_int (addr "gadget"))
  | Attack.Fptr_type_confusion ->
    Process.attacker_write_u64 process ~va:(addr "callback")
      (Int64.of_int (fptr_value_for exe "logger"))
  | Attack.Pointee_reuse_same_key ->
    Process.attacker_write_u64 process ~va:(addr "callback")
      (Int64.of_int (fptr_value_for exe "evil_twin"))

let classify (outcome : Kernel.run_outcome) =
  let contains_marker m =
    let out = outcome.Kernel.output and n = String.length m in
    let rec go i =
      i + n <= String.length out && (String.sub out i n = m || go (i + 1))
    in
    go 0
  in
  match outcome.Kernel.status with
  | Process.Exited code
    when code = Victim.exit_gadget || code = Victim.exit_logger
         || code = Victim.exit_twin || code = Victim.exit_typeconf
         || contains_marker Victim.marker_gadget
         || contains_marker Victim.marker_logger
         || contains_marker Victim.marker_twin
         || contains_marker Victim.marker_typeconf ->
    Attack.Hijacked
  | Process.Exited _ -> Attack.No_effect
  | Process.Killed sg -> (
    (* one shared decoder for fault classes (also used by roload-fuzz) *)
    match Trapclass.classify_signal sg with
    | Trapclass.Roload_fault -> Attack.Blocked_roload
    | k -> Attack.Blocked_other (Trapclass.kind_name k))
  | Process.Running -> Attack.Blocked_other "instruction limit"

let run ?(config = default_run_config) ~exe kind =
  let machine = Machine.create config.machine_config in
  let kernel = Kernel.create ~machine ~config:config.kernel_config in
  let process = Kernel.load kernel exe in
  Kernel.schedule kernel process;
  let stop = Exe.find_symbol_exn exe "attack_point" in
  let paused =
    Kernel.run ~stop_at_pc:stop
      ~limit:{ Kernel.max_instructions = 10_000_000L }
      kernel process
  in
  (match paused.Kernel.status with
  | Process.Running -> ()
  | Process.Exited _ | Process.Killed _ ->
    failwith "attack runner: victim ended before the attack point");
  (try corrupt exe process kind
   with Process.Attack_blocked reason ->
     failwith ("attack runner: primitive unexpectedly blocked: " ^ reason));
  let final =
    Kernel.run ~limit:{ Kernel.max_instructions = 10_000_000L } kernel process
  in
  classify final

(* Snapshot-seeded corpus: boot the victim once, pause at the attack
   point, capture a copy-on-write snapshot, and fork one variant per
   attack kind instead of re-booting from reset for each.  The boot
   prefix is deterministic, so verdicts are identical either way;
   [~from_reset:true] keeps the boot-per-attack path alive for the
   equivalence regression. *)
let run_corpus ?(config = default_run_config) ?(from_reset = false) ~exe () =
  if from_reset then
    List.map (fun kind -> (kind, run ~config ~exe kind)) Attack.all_kinds
  else begin
    let machine = Machine.create config.machine_config in
    let kernel = Kernel.create ~machine ~config:config.kernel_config in
    let process = Kernel.load kernel exe in
    Kernel.schedule kernel process;
    let stop = Exe.find_symbol_exn exe "attack_point" in
    let paused =
      Kernel.run ~stop_at_pc:stop
        ~limit:{ Kernel.max_instructions = 10_000_000L }
        kernel process
    in
    (match paused.Kernel.status with
    | Process.Running -> ()
    | Process.Exited _ | Process.Killed _ ->
      failwith "attack runner: victim ended before the attack point");
    let snap = Roload_kernel.Snapshot.capture ~machine ~kernel ~process in
    List.map
      (fun kind ->
        let _fm, fk, fp = Roload_kernel.Snapshot.fork snap in
        (try corrupt exe fp kind
         with Process.Attack_blocked reason ->
           failwith ("attack runner: primitive unexpectedly blocked: " ^ reason));
        let final =
          Kernel.run ~limit:{ Kernel.max_instructions = 10_000_000L } fk fp
        in
        (kind, classify final))
      Attack.all_kinds
  end
