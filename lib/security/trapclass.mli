(** Shared trap classification: the single mapping from a process's final
    status to the fault classes the evaluation and the differential fuzzer
    reason about.  Both the attack runner ({!Eval}) and roload-fuzz use it,
    so "SIGSEGV with the ROLoad triage" means exactly one thing repo-wide. *)

type kind =
  | Roload_fault  (** SIGSEGV carrying the ROLoad triage (paper §III-B) *)
  | Check_abort  (** an inline software check (CFI label / VTint range) hit ebreak *)
  | Segfault  (** plain access violation, no ROLoad detail *)
  | Other_fault of string  (** anything else fatal (SIGILL, SIGBUS, ...) *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

val classify_signal : Roload_kernel.Signal.t -> kind
(** The one place that decodes signals into fault classes. *)

type stop =
  | Exit of int  (** clean exit with this code *)
  | Trap of kind
  | Timeout  (** still running when the instruction budget ran out *)

val stop_name : stop -> string
val stop_of_string : string -> stop option
val stop_equal : stop -> stop -> bool

val stop_of_status : Roload_kernel.Process.status -> stop
