(** Resolve an abstract plan entry against one scheme's executable and
    apply it to a paused machine through the per-layer backdoors
    ([Page_table.tamper], [Tlb.corrupt], [Phys_mem.flip_bit],
    [Process.attacker_write_u64], [Cache.set_writeback_interceptor]).
    Every application is counted via [Machine.note_injection] so it
    shows up in metrics and traces. *)

type applied = { desc : string; addr : int }

val protected_pages : Roload_obj.Exe.t -> int list
(** Page base addresses the campaign treats as protected: keyed pages
    when the scheme keys any, else read-only non-executable data pages.
    Sorted, deterministic. *)

val word_candidates : Roload_obj.Exe.t -> int list
(** Vtable slot-0 words and the live callback's GFPT slot — the
    physical bit-flip targets. Sorted, deterministic. *)

val apply :
  machine:Roload_machine.Machine.t ->
  process:Roload_kernel.Process.t ->
  exe:Roload_obj.Exe.t ->
  Fault.kind ->
  applied option
(** [None] means the fault could not strike (no candidate target, TLB
    entry not resident, every safe bit excluded) — the run proceeds
    untouched and classifies as [Masked]. *)
