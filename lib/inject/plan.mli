(** Seeded, fully deterministic campaign plans: a list of injections
    drawn from {!Roload_util.Prng} (never wall-clock), with abstract
    slot indices the injector resolves per scheme. Equal seeds give
    byte-identical plans. *)

val build : seed:int64 -> count:int -> Fault.injection list
(** [build ~seed ~count] is the plan; [(build ~seed ~count:n)] is a
    prefix of [(build ~seed ~count:(n+k))], so a corpus reproducer can
    name an entry by [(seed, index)] alone. *)

val build_server : seed:int64 -> count:int -> Server_fault.injection list
(** The live-server plan, with the same prefix-stability guarantee.
    Draws from the server taxonomy (per-worker tampers + worker-kill);
    triggers land in the steady-state band of the request stream. *)
