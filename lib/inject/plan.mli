(** Seeded, fully deterministic campaign plans: a list of injections
    drawn from {!Roload_util.Prng} (never wall-clock), with abstract
    slot indices the injector resolves per scheme. Equal seeds give
    byte-identical plans. *)

val build : seed:int64 -> count:int -> Fault.injection list
(** [build ~seed ~count] is the plan; [(build ~seed ~count:n)] is a
    prefix of [(build ~seed ~count:(n+k))], so a corpus reproducer can
    name an entry by [(seed, index)] alone. *)
