(** The chaos campaign's victim: every sensitive load (two vtable
    hierarchies and one typed function pointer) is exercised on every
    iteration of the main loop, so a mid-run injection always has
    further protected loads downstream to observe it. *)

val source : string

val benign_output : string
(** Output of an uninjected run under every scheme. *)

val iterations : int
(** Main-loop trip count (how many sensitive loads of each shape run). *)
