(* The chaos campaign: baseline-vs-injected differential runs.

   One seeded plan drives every scheme.  Per scheme the victim is
   compiled once and a baseline (uninjected) run is measured; each cell
   then runs the victim paused at the plan entry's trigger point (a
   retire-count fraction of that scheme's baseline), applies the fault
   through the injector backdoors, resumes under a watchdog budget, and
   classifies the outcome against the baseline.

   Snapshot seeding (the default): instead of re-booting the victim from
   reset for every cell, each scheme boots one parent system, advances
   it through the sorted distinct trigger frontiers, and captures a
   copy-on-write snapshot at each; cells then fork from their trigger's
   warm snapshot across the domain pool.  Pause/resume at a cumulative
   retire count is bit-identical to an uninterrupted run, and forks
   replay the captured state exactly, so the verdict table, checkpoint
   rows and resume behavior are byte-identical to [from_reset = true] —
   only the campaign throughput changes (each cell skips the boot and
   the warm-up prefix).  Silent-corruption verdicts additionally carry a
   page-level diff against the baseline's final memory (the
   differential-state localizer), identical in both modes.

   Robustness (tentpole part 2): every cell runs behind
   [Experiments.run_cells_contained] — a crashing cell is retried a
   bounded, deterministic number of times and then becomes a structured
   failure row instead of aborting the campaign.  Rows are appended to a
   checkpoint file the moment each cell settles, and [resume = true]
   skips cells already recorded there; the final report is sorted by
   (plan index, scheme), so a resumed run renders byte-identically to an
   uninterrupted one. *)

module Pass = Roload_passes.Pass
module Exe = Roload_obj.Exe
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Signal = Roload_kernel.Signal
module Machine = Roload_machine.Machine
module System = Core.System
module Parallel = Core.Parallel
module Experiments = Core.Experiments
module Toolchain = Core.Toolchain
module Trapclass = Roload_security.Trapclass
module Table = Roload_util.Table
module Json = Roload_util.Json
module Diff = Roload_fuzz.Diff
module Ir_eval = Roload_fuzz.Ir_eval
module Snapshot = Roload_kernel.Snapshot
module Phys_mem = Roload_mem.Phys_mem

let roload_schemes = [ Pass.Vcall; Pass.Icall; Pass.Retcall ]
let default_schemes = [ Pass.Unprotected; Pass.Cfi_baseline; Pass.Vcall; Pass.Icall ]

(* Which (scheme, kind) cells are meaningful.  The icall redirect is
   only run where the scheme claims to police indirect calls (or claims
   nothing): under VCall/VTint an indirect call is out of scope by
   design, and reporting their silent miss would charge them for an
   attack they never promise to stop. *)
let applicable scheme (kind : Fault.kind) =
  match kind with
  | Fault.Ptr_redirect Fault.Icall_sink -> (
    match scheme with
    | Pass.Unprotected | Pass.Cfi_baseline | Pass.Icall -> true
    | Pass.Vcall | Pass.Vtint_baseline | Pass.Retcall -> false)
  | Fault.Ptr_redirect Fault.Vcall_sink -> (
    match scheme with Pass.Retcall -> false | _ -> true)
  | _ -> true

type config = {
  seed : int64;
  count : int;  (** plan length; cells = count x applicable schemes *)
  schemes : Pass.scheme list;
  attempts : int;  (** bounded deterministic retries per cell *)
  jobs : int option;
  budget_factor : int;  (** watchdog = factor x baseline instructions *)
  checkpoint : string option;  (** incremental persistence file *)
  resume : bool;  (** skip cells already in the checkpoint *)
  checkpoint_batch : int;  (** rows buffered per checkpoint flush *)
  sabotage : (index:int -> scheme:Pass.scheme -> attempt:int -> unit) option;
      (** test hook: raise from inside a chosen cell *)
  max_cells : int option;  (** test hook: simulate a mid-run kill *)
  elide : bool;  (** compile victims with proof-guided ld.ro check elision *)
  from_reset : bool;
      (** boot every cell from reset instead of forking trigger
          snapshots; verdicts are byte-identical, only slower *)
}

let default_config =
  {
    seed = 1L;
    count = 60;
    schemes = default_schemes;
    attempts = 2;
    jobs = None;
    budget_factor = 8;
    checkpoint = None;
    resume = false;
    checkpoint_batch = 1;
    sabotage = None;
    max_cells = None;
    elide = false;
    from_reset = false;
  }

type outcome = Verdict of Fault.verdict | Failed

type row = {
  index : int;
  scheme : string;
  cls : string;
  label : string;
  trigger : int64;
  applied : bool;
  attempts : int;
  outcome : outcome;
  detail : string;
}

type report = {
  rows : row list;
  schemes : Pass.scheme list;
  oracle_checked : bool;
  oracle_agreed : bool;
  corruption_diffs : ((int * string) * Phys_mem.page_diff list) list;
      (* per silent-corruption cell, keyed by (index, scheme): the pages
         where the injected run's final memory differs from the clean
         baseline's — localization only, never part of rows/checkpoint *)
}

(* ---------- one run, pausable ---------- *)

let baseline_budget = 50_000_000L

let run_with_pause ?engine ?(variant = System.Processor_kernel_modified) ?template
    ~max_instructions ?pause_at ?inject exe =
  (* [template]: fork the pristine boot image instead of building a fresh
     machine — identical state, but the zeroed physical pages are shared
     CoW across every lineage forked from it, so later memory diffs
     compare untouched pages by pointer instead of byte-by-byte. *)
  let machine =
    match template with
    | Some img -> Machine.fork img
    | None -> Machine.create ?engine (System.machine_config variant)
  in
  let kernel = Kernel.create ~machine ~config:(System.kernel_config variant) in
  let process = Kernel.load kernel exe in
  Kernel.schedule kernel process;
  let finish () = Kernel.run ~limit:{ Kernel.max_instructions } kernel process in
  let outcome =
    match pause_at with
    | Some at when Int64.compare at 0L > 0 && Int64.compare at max_instructions < 0
      -> (
      (* run limits are cumulative retire counts, so pausing at [at] and
         finishing under the full budget retires exactly the same
         instruction stream as one uninterrupted run *)
      let paused = Kernel.run ~limit:{ Kernel.max_instructions = at } kernel process in
      match (paused.Kernel.status, inject) with
      | Process.Running, Some f ->
        f ~machine ~process;
        finish ()
      | Process.Running, None -> finish ()
      | _ -> paused)
    | _ -> finish ()
  in
  (outcome, machine, kernel, process)

let measure ?engine ?variant ?pause_at ~max_instructions exe =
  let outcome, machine, kernel, process =
    run_with_pause ?engine ?variant ~max_instructions ?pause_at exe
  in
  (outcome, System.snapshot_metrics ~machine ~kernel ~mmu:(Process.mmu process))

(* ---------- verdicts ---------- *)

let status_str = function
  | Process.Exited n -> Printf.sprintf "exit %d" n
  | Process.Killed sg -> Signal.to_string sg
  | Process.Running -> "running"

let classify ~(baseline : Kernel.run_outcome) (final : Kernel.run_outcome) =
  match final.Kernel.status with
  | Process.Killed sg -> (
    match Trapclass.classify_signal sg with
    | Trapclass.Roload_fault -> (Fault.Detected_roload, "killed: " ^ Signal.to_string sg)
    | _ -> (Fault.Detected_segv, "killed: " ^ Signal.to_string sg))
  | Process.Running ->
    (Fault.Divergent_output, "watchdog: still running at the instruction budget")
  | Process.Exited code -> (
    match baseline.Kernel.status with
    | Process.Exited b
      when b = code && String.equal final.Kernel.output baseline.Kernel.output ->
      (Fault.Masked, "behavior identical to baseline")
    | Process.Exited 0 when code = 0 ->
      ( Fault.Silent_corruption,
        Printf.sprintf "clean exit, corrupted output %S (baseline %S)"
          final.Kernel.output baseline.Kernel.output )
    | _ ->
      ( Fault.Divergent_output,
        Printf.sprintf "exit %d vs baseline %s" code (status_str baseline.Kernel.status)
      ))

(* ---------- compile & baseline ---------- *)

let compile_victim ?(elide = false) scheme =
  Toolchain.compile_exe
    ~options:{ Toolchain.default_options with Toolchain.scheme; Toolchain.elide }
    ~name:("chaos-" ^ Pass.scheme_name scheme)
    Chaos_victim.source

(* The baseline keeps its final memory image: silent-corruption verdicts
   are localized by diffing the injected run's final memory against it. *)
let baseline_run_full ?template exe =
  let outcome, machine, _, _ =
    run_with_pause ?template ~max_instructions:baseline_budget exe
  in
  (outcome, Phys_mem.snapshot (Machine.mem machine))

let baseline_run exe = fst (baseline_run_full exe)

(* ---------- one cell ---------- *)

let trigger_of ~(baseline : Kernel.run_outcome) (inj : Fault.injection) =
  let t =
    Int64.div
      (Int64.mul baseline.Kernel.instructions (Int64.of_int inj.Fault.trigger_permille))
      1000L
  in
  if Int64.compare t 1L < 0 then 1L else t

let budget_of ~budget_factor ~(baseline : Kernel.run_outcome) =
  Int64.add
    (Int64.mul baseline.Kernel.instructions (Int64.of_int budget_factor))
    100_000L

(* Verdict + row assembly shared by the from-reset and snapshot-seeded
   cell paths — both feed it the same (final outcome, final machine), so
   rows are byte-identical across modes by construction. *)
let cell_row ~attempt ~baseline ~baseline_mem ~trigger ~applied (inj : Fault.injection)
    scheme ~machine (final : Kernel.run_outcome) =
  let verdict, detail = classify ~baseline final in
  let diffs =
    match (verdict, baseline_mem) with
    | Fault.Silent_corruption, Some bm ->
      Some (Phys_mem.diff_images bm (Phys_mem.snapshot (Machine.mem machine)))
    | _ -> None
  in
  ( {
      index = inj.Fault.index;
      scheme = Pass.scheme_name scheme;
      cls = Fault.class_name inj.Fault.kind;
      label = Fault.kind_label inj.Fault.kind;
      trigger;
      applied = applied <> None;
      attempts = attempt;
      outcome = Verdict verdict;
      detail =
        (match applied with
        | Some (a : Injector.applied) -> a.Injector.desc ^ "; " ^ detail
        | None -> "not applied; " ^ detail);
    },
    diffs )

let run_one ?(budget_factor = default_config.budget_factor) ?baseline_mem ~attempt
    ~(baseline : Kernel.run_outcome) (inj : Fault.injection) scheme exe =
  let trigger = trigger_of ~baseline inj in
  let budget = budget_of ~budget_factor ~baseline in
  let applied = ref None in
  let inject ~machine ~process =
    applied := Injector.apply ~machine ~process ~exe inj.Fault.kind
  in
  let final, machine, _, _ =
    run_with_pause ~max_instructions:budget ~pause_at:trigger ~inject exe
  in
  cell_row ~attempt ~baseline ~baseline_mem ~trigger ~applied:!applied inj scheme
    ~machine final

(* The snapshot-seeded cell: fork the warm image captured at this cell's
   trigger frontier, inject, resume.  The fork holds exactly the state a
   from-reset run paused at [trigger] would hold (the pause/resume
   bit-identity invariant), so the verdict is identical — the boot and
   warm-up prefix are simply never re-executed. *)
let run_one_seeded ?(budget_factor = default_config.budget_factor) ?baseline_mem
    ~attempt ~(baseline : Kernel.run_outcome) ~snap (inj : Fault.injection) scheme exe =
  let trigger = trigger_of ~baseline inj in
  let budget = budget_of ~budget_factor ~baseline in
  let machine, kernel, process = Snapshot.fork snap in
  let applied = ref None in
  if Process.status process = Process.Running then
    applied := Injector.apply ~machine ~process ~exe inj.Fault.kind;
  let final = Kernel.run ~limit:{ Kernel.max_instructions = budget } kernel process in
  cell_row ~attempt ~baseline ~baseline_mem ~trigger ~applied:!applied inj scheme
    ~machine final

(* ---------- the snapshot ladder ---------- *)

(* Per scheme: boot one parent system and advance it through the sorted
   distinct trigger frontiers, capturing a snapshot at each.  Run limits
   are cumulative retire counts, so the parent paused at each frontier
   is bit-identical to a from-reset run paused there. *)
let build_ladder ?template ~triggers exe =
  let triggers = List.sort_uniq Int64.compare triggers in
  match triggers with
  | [] -> []
  | _ ->
    let machine =
      match template with
      | Some img -> Machine.fork img
      | None -> Machine.create (System.machine_config System.Processor_kernel_modified)
    in
    let kernel =
      Kernel.create ~machine
        ~config:(System.kernel_config System.Processor_kernel_modified)
    in
    let process = Kernel.load kernel exe in
    Kernel.schedule kernel process;
    List.map
      (fun t ->
        ignore (Kernel.run ~limit:{ Kernel.max_instructions = t } kernel process);
        (t, Snapshot.capture ~machine ~kernel ~process))
      triggers

(* ---------- checkpoint rows ---------- *)

let sanitize s =
  String.map (fun c -> match c with '\t' | '\n' | '\r' -> ' ' | c -> c) s

let outcome_tag = function Verdict v -> Fault.verdict_name v | Failed -> "failed"

let outcome_of_tag = function
  | "failed" -> Some Failed
  | t -> Option.map (fun v -> Verdict v) (Fault.verdict_of_string t)

let row_to_line (r : row) =
  Printf.sprintf "%d\t%s\t%s\t%s\t%Ld\t%b\t%d\t%s\t%s" r.index r.scheme r.cls r.label
    r.trigger r.applied r.attempts (outcome_tag r.outcome) (sanitize r.detail)

let row_of_line line =
  match String.split_on_char '\t' line with
  | [ index; scheme; cls; label; trigger; applied; attempts; tag; detail ] -> (
    match
      ( int_of_string_opt index,
        Int64.of_string_opt trigger,
        bool_of_string_opt applied,
        int_of_string_opt attempts,
        outcome_of_tag tag )
    with
    | Some index, Some trigger, Some applied, Some attempts, Some outcome ->
      Some { index; scheme; cls; label; trigger; applied; attempts; outcome; detail }
    | _ -> None)
  | _ -> None

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

(* ---------- batched checkpoint writer ----------

   Campaigns append one TSV row per settled cell; with fast cells and a
   wide -j pool the per-row open/write/close dominates the checkpoint
   cost.  The writer buffers [batch] rows per flush (batch=1 keeps the
   historical row-at-a-time behavior) and the [Fun.protect] wrapper
   flushes the tail on ANY exit — normal return or an exception escaping
   mid-campaign — so a later --resume always sees every settled cell.
   Whole rows are the flush unit, so a resumed file never holds a torn
   line, and resume's sorted-rows property makes the final report
   byte-identical no matter how rows were grouped into flushes. *)
let with_appender ?(batch = 1) checkpoint f =
  match checkpoint with
  | None -> f (fun _ -> ())
  | Some path ->
    let m = Mutex.create () in
    let buf = Buffer.create 4096 in
    let pending = ref 0 in
    let flush_locked () =
      if !pending > 0 then begin
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        output_string oc (Buffer.contents buf);
        close_out oc;
        Buffer.clear buf;
        pending := 0
      end
    in
    let locked g =
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) g
    in
    let append line =
      locked (fun () ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          incr pending;
          if !pending >= max 1 batch then flush_locked ())
    in
    Fun.protect ~finally:(fun () -> locked flush_locked) (fun () -> f append)

(* ---------- the campaign ---------- *)

exception Broken_victim of string

let run (cfg : config) =
  let schemes = cfg.schemes in
  (* compile serially: the toolchain owns global state *)
  let exes = List.map (fun s -> (s, compile_victim ~elide:cfg.elide s)) schemes in
  (* One pristine boot image shared by every baseline and ladder parent:
     each lineage forks it CoW, so all of them (and every cell forked
     from the ladders) share the untouched zero pages — making the
     silent-corruption memory diffs O(touched pages), not O(DRAM). *)
  let template =
    Machine.snapshot
      (Machine.create (System.machine_config System.Processor_kernel_modified))
  in
  let baselines =
    Parallel.map ?jobs:cfg.jobs (fun (s, exe) -> (s, baseline_run_full ~template exe)) exes
  in
  List.iter
    (fun (s, ((b : Kernel.run_outcome), _)) ->
      match b.Kernel.status with
      | Process.Exited 0 when String.equal b.Kernel.output Chaos_victim.benign_output ->
        ()
      | st ->
        raise
          (Broken_victim
             (Printf.sprintf "chaos victim broken under %s: %s, output %S"
                (Pass.scheme_name s) (status_str st) b.Kernel.output)))
    baselines;
  (* cross-check the baselines against the reference IR oracle — the
     differential machinery roload-fuzz already trusts *)
  let oracle_checked, oracle_agreed =
    match Diff.oracle_behaviors ~schemes Chaos_victim.source with
    | preds ->
      let ok =
        List.for_all2
          (fun (_, (b : Ir_eval.behavior)) (_, ((o : Kernel.run_outcome), _)) ->
            Trapclass.stop_equal b.Ir_eval.stop (Trapclass.stop_of_status o.Kernel.status)
            && String.equal b.Ir_eval.output o.Kernel.output)
          preds baselines
      in
      (true, ok)
    | exception _ -> (false, true)
  in
  let plan = Plan.build ~seed:cfg.seed ~count:cfg.count in
  let cells =
    List.concat_map
      (fun (inj : Fault.injection) ->
        List.filter_map
          (fun (s, exe) -> if applicable s inj.Fault.kind then Some (inj, s, exe) else None)
          exes)
      plan
  in
  (* checkpoint: a header pinning (seed, count, schemes) plus one TSV
     row per settled cell *)
  (* [elide=true] is appended only when on, so checkpoints of pre-elision
     campaigns keep their exact header (and stay resumable) *)
  let header =
    Printf.sprintf "# roload-chaos v1 seed=%Ld count=%d schemes=%s%s" cfg.seed cfg.count
      (String.concat "," (List.map Pass.scheme_name schemes))
      (if cfg.elide then " elide=true" else "")
  in
  let prior =
    match cfg.checkpoint with
    | Some path when cfg.resume && Sys.file_exists path -> (
      match read_lines path with
      | h :: rest when String.equal h header -> List.filter_map row_of_line rest
      | _ -> [] (* different campaign (or corrupt): start over *))
    | _ -> []
  in
  let done_keys = Hashtbl.create 64 in
  List.iter (fun (r : row) -> Hashtbl.replace done_keys (r.index, r.scheme) ()) prior;
  let todo =
    List.filter
      (fun ((inj : Fault.injection), s, _) ->
        not (Hashtbl.mem done_keys (inj.Fault.index, Pass.scheme_name s)))
      cells
  in
  let todo =
    match cfg.max_cells with
    | Some k -> List.filteri (fun i _ -> i < k) todo
    | None -> todo
  in
  (match cfg.checkpoint with
  | Some path when prior = [] ->
    let oc = open_out path in
    output_string oc (header ^ "\n");
    close_out oc
  | _ -> ());
  let baseline_for s = fst (List.assoc s baselines) in
  let baseline_mem_for s = snd (List.assoc s baselines) in
  (* Silent-corruption rows restored from a checkpoint carry no diff (the
     checkpoint persists rows only), so a resumed report would lose their
     localization.  Re-derive those cells deterministically — the re-run
     reproduces the fresh run's diff bit-for-bit, keeping resumed and
     uninterrupted reports byte-identical. *)
  let recover =
    let inj_by_index = Hashtbl.create 16 in
    List.iter
      (fun (inj : Fault.injection) -> Hashtbl.replace inj_by_index inj.Fault.index inj)
      plan;
    let scheme_by_name = List.map (fun s -> (Pass.scheme_name s, s)) schemes in
    List.filter_map
      (fun (r : row) ->
        if r.outcome <> Verdict Fault.Silent_corruption then None
        else
          match
            (Hashtbl.find_opt inj_by_index r.index, List.assoc_opt r.scheme scheme_by_name)
          with
          | Some inj, Some s -> Some (inj, s, List.assoc s exes)
          | _ -> None)
      prior
  in
  (* snapshot seeding: one warm parent per scheme, advanced through the
     sorted distinct trigger frontiers its todo (and diff-recovery)
     cells need *)
  let ladders =
    if cfg.from_reset then []
    else
      Parallel.map ?jobs:cfg.jobs
        (fun (s, exe) ->
          let triggers =
            List.filter_map
              (fun ((inj : Fault.injection), s', _) ->
                if s' = s then Some (trigger_of ~baseline:(baseline_for s) inj)
                else None)
              (todo @ recover)
          in
          (Pass.scheme_name s, build_ladder ~template ~triggers exe))
        exes
  in
  let snap_for scheme trigger =
    List.assoc trigger (List.assoc (Pass.scheme_name scheme) ladders)
  in
  let todo_arr = Array.of_list todo in
  let row_of idx outcome =
    let (inj : Fault.injection), scheme, _ = todo_arr.(idx) in
    match outcome with
    | Experiments.Cell_ok (r, diffs) -> (r, diffs)
    | Experiments.Cell_failed { error; attempts } ->
      ( {
          index = inj.Fault.index;
          scheme = Pass.scheme_name scheme;
          cls = Fault.class_name inj.Fault.kind;
          label = Fault.kind_label inj.Fault.kind;
          trigger = 0L;
          applied = false;
          attempts;
          outcome = Failed;
          detail = sanitize error;
        },
        None )
  in
  let outcomes =
    with_appender ~batch:cfg.checkpoint_batch cfg.checkpoint @@ fun append_row ->
    Experiments.run_cells_contained ~attempts:cfg.attempts ?jobs:cfg.jobs
      ~on_cell:(fun idx o -> append_row (row_to_line (fst (row_of idx o))))
      ~f:(fun ~attempt ((inj : Fault.injection), scheme, exe) ->
        (match cfg.sabotage with
        | Some f -> f ~index:inj.Fault.index ~scheme ~attempt
        | None -> ());
        let baseline = baseline_for scheme in
        let baseline_mem = baseline_mem_for scheme in
        if cfg.from_reset then
          run_one ~budget_factor:cfg.budget_factor ~baseline_mem ~attempt ~baseline inj
            scheme exe
        else
          run_one_seeded ~budget_factor:cfg.budget_factor ~baseline_mem ~attempt
            ~baseline
            ~snap:(snap_for scheme (trigger_of ~baseline inj))
            inj scheme exe)
      todo
  in
  let fresh = List.mapi row_of outcomes in
  let scheme_pos =
    let names = List.mapi (fun i s -> (Pass.scheme_name s, i)) schemes in
    fun n -> match List.assoc_opt n names with Some i -> i | None -> max_int
  in
  let by_cell (ia, sa) (ib, sb) = compare (ia, scheme_pos sa) (ib, scheme_pos sb) in
  let rows =
    List.sort
      (fun (a : row) (b : row) -> by_cell (a.index, a.scheme) (b.index, b.scheme))
      (prior @ List.map fst fresh)
  in
  let recovered_diffs =
    List.filter_map
      (fun ((inj : Fault.injection), scheme, exe) ->
        let baseline = baseline_for scheme in
        let baseline_mem = baseline_mem_for scheme in
        let _, diffs =
          if cfg.from_reset then
            run_one ~budget_factor:cfg.budget_factor ~baseline_mem ~attempt:1 ~baseline
              inj scheme exe
          else
            run_one_seeded ~budget_factor:cfg.budget_factor ~baseline_mem ~attempt:1
              ~baseline
              ~snap:(snap_for scheme (trigger_of ~baseline inj))
              inj scheme exe
        in
        match diffs with
        | Some ds -> Some ((inj.Fault.index, Pass.scheme_name scheme), ds)
        | None -> None)
      recover
  in
  let corruption_diffs =
    List.sort
      (fun (ka, _) (kb, _) -> by_cell ka kb)
      (recovered_diffs
      @ List.filter_map
          (fun ((r : row), diffs) ->
            match diffs with Some ds -> Some ((r.index, r.scheme), ds) | None -> None)
          fresh)
  in
  { rows; schemes; oracle_checked; oracle_agreed; corruption_diffs }

(* ---------- reporting ---------- *)

let verdict_of_row (r : row) = match r.outcome with Verdict v -> Some v | Failed -> None

let detected (r : row) =
  match r.outcome with
  | Verdict (Fault.Detected_roload | Fault.Detected_segv) -> true
  | _ -> false

let coverage_table (rp : report) =
  let t =
    Table.create
      ~title:
        "roload-chaos verdicts by class (R=ld.ro fault  S=other fault  C=silent \
         corruption  M=masked  D=divergent  F=cell failure)"
      ~header:("injection class" :: List.map Pass.scheme_name rp.schemes)
      ()
  in
  List.iter
    (fun cls ->
      let cells =
        List.map
          (fun s ->
            let name = Pass.scheme_name s in
            let rs =
              List.filter
                (fun (r : row) -> String.equal r.cls cls && String.equal r.scheme name)
                rp.rows
            in
            if rs = [] then "-"
            else begin
              let c v =
                List.length (List.filter (fun (r : row) -> r.outcome = Verdict v) rs)
              in
              let f =
                List.length (List.filter (fun (r : row) -> r.outcome = Failed) rs)
              in
              Printf.sprintf "%dR %dS %dC %dM %dD%s" (c Fault.Detected_roload)
                (c Fault.Detected_segv) (c Fault.Silent_corruption) (c Fault.Masked)
                (c Fault.Divergent_output)
                (if f > 0 then Printf.sprintf " %dF" f else "")
            end)
          rp.schemes
      in
      Table.add_row t (cls :: cells))
    Fault.all_class_names;
  t

(* The release gates: what the CI chaos-smoke job asserts. *)
type gate = { silent_under_roload : int; undetected_tamper : int; cell_failures : int }

let tamper_classes = [ "pte-key-flip"; "pte-ro-tamper"; "tlb-key-flip" ]

let gate (rp : report) =
  let roload_names =
    List.filter_map
      (fun s -> if List.mem s roload_schemes then Some (Pass.scheme_name s) else None)
      rp.schemes
  in
  let under_roload (r : row) = List.exists (String.equal r.scheme) roload_names in
  {
    silent_under_roload =
      List.length
        (List.filter
           (fun (r : row) ->
             under_roload r && r.outcome = Verdict Fault.Silent_corruption)
           rp.rows);
    undetected_tamper =
      List.length
        (List.filter
           (fun (r : row) ->
             under_roload r
             && List.mem r.cls tamper_classes
             && r.outcome <> Verdict Fault.Detected_roload)
           rp.rows);
    cell_failures =
      List.length (List.filter (fun (r : row) -> r.outcome = Failed) rp.rows);
  }

let render (rp : report) =
  let g = gate rp in
  Table.render (coverage_table rp)
  ^ Printf.sprintf
      "\n\
       cells: %d   silent-under-roload: %d   undetected-tamper-under-roload: %d   \
       cell-failures: %d\n\
       oracle cross-check: %s\n"
      (List.length rp.rows) g.silent_under_roload g.undetected_tamper g.cell_failures
      (if not rp.oracle_checked then "skipped (oracle declined the victim)"
       else if rp.oracle_agreed then "agreed"
       else "DIVERGED")

let to_json (rp : report) =
  let row_json (r : row) =
    Json.obj
      [
        ("index", Json.int r.index);
        ("scheme", Json.str r.scheme);
        ("class", Json.str r.cls);
        ("label", Json.str r.label);
        ("trigger", Json.int64 r.trigger);
        ("applied", Json.bool r.applied);
        ("attempts", Json.int r.attempts);
        ("verdict", Json.str (outcome_tag r.outcome));
        ("detail", Json.str r.detail);
      ]
  in
  let diff_json ((index, scheme), (ds : Phys_mem.page_diff list)) =
    Json.obj
      [
        ("index", Json.int index);
        ("scheme", Json.str scheme);
        ( "pages",
          Json.arr
            (List.map
               (fun (d : Phys_mem.page_diff) ->
                 Json.obj
                   [
                     ("page", Json.int d.Phys_mem.page);
                     ("addr", Json.int d.Phys_mem.addr);
                     ("baseline_byte", Json.int d.Phys_mem.a_byte);
                     ("corrupt_byte", Json.int d.Phys_mem.b_byte);
                   ])
               ds) );
      ]
  in
  let g = gate rp in
  Json.obj
    [
      ("schemes", Json.arr (List.map (fun s -> Json.str (Pass.scheme_name s)) rp.schemes));
      ("oracle_checked", Json.bool rp.oracle_checked);
      ("oracle_agreed", Json.bool rp.oracle_agreed);
      ("silent_under_roload", Json.int g.silent_under_roload);
      ("undetected_tamper", Json.int g.undetected_tamper);
      ("cell_failures", Json.int g.cell_failures);
      ("rows", Json.arr (List.map row_json rp.rows));
      ("corruption_diffs", Json.arr (List.map diff_json rp.corruption_diffs));
    ]

(* --diff-pages: the human-readable localization report.  A separate
   artifact on purpose — [render]'s table stays byte-identical to
   pre-snapshot campaigns. *)
let render_diffs (rp : report) =
  let buf = Buffer.create 256 in
  List.iter
    (fun ((index, scheme), (ds : Phys_mem.page_diff list)) ->
      Buffer.add_string buf
        (Printf.sprintf "silent corruption at cell #%d under %s: %d page(s) differ\n"
           index scheme (List.length ds));
      List.iter
        (fun (d : Phys_mem.page_diff) ->
          Buffer.add_string buf
            (Printf.sprintf "  page %#x: first diff at %#x, baseline %#04x != %#04x\n"
               d.Phys_mem.page d.Phys_mem.addr d.Phys_mem.a_byte d.Phys_mem.b_byte))
        ds)
    rp.corruption_diffs;
  if rp.corruption_diffs = [] then
    Buffer.add_string buf "no silent corruption: nothing to localize\n";
  Buffer.contents buf

(* ---------- corpus reproducers ---------- *)

type replay_check = { rc_scheme : string; rc_expected : string; rc_actual : string }

let replay ~path =
  let seed = ref None and entry = ref None and expects = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match String.split_on_char ' ' line with
        | [ "seed"; v ] -> seed := Int64.of_string_opt v
        | [ "entry"; v ] -> entry := int_of_string_opt v
        | [ "expect"; s; v ] -> expects := (s, v) :: !expects
        | _ -> ())
    (read_lines path);
  match (!seed, !entry, List.rev !expects) with
  | Some seed, Some entry, (_ :: _ as expects) ->
    let inj = List.nth (Plan.build ~seed ~count:(entry + 1)) entry in
    List.map
      (fun (sname, expected) ->
        match Pass.scheme_of_string sname with
        | None -> { rc_scheme = sname; rc_expected = expected; rc_actual = "unknown-scheme" }
        | Some scheme ->
          let exe = compile_victim scheme in
          let baseline = baseline_run exe in
          let r, _ = run_one ~attempt:1 ~baseline inj scheme exe in
          { rc_scheme = sname; rc_expected = expected; rc_actual = outcome_tag r.outcome })
      expects
  | _ -> failwith ("malformed chaos reproducer: " ^ path)

(* ---------- the live-server campaign ----------

   The classic campaign above injects into a paused single-process
   victim and asks "was the tamper detected?".  The server campaign
   injects into a RUNNING multi-worker serving system and asks the
   robustness question instead: "how many requests were served
   correctly?" — per (injection class, scheme), with the supervised
   kernel restarting dead workers and redelivering their in-flight
   requests.

   Every cell is a full server run: compile the server workload under
   the scheme, load the sharded request device, arm the supervisor, and
   install a one-shot request hook that strikes the chosen worker when
   the device has handed out the entry's trigger count.  Per-request
   outcomes are judged against the scheme's uninjected baseline run
   (every request's correct result is a pure function of its payload),
   then folded into the serving-availability table.

   Determinism: the trigger is a handout count (not wall-clock), the
   scheduler quantum is retired instructions, the supervisor restart is
   a pure function of kernel state, and the injector backdoors are
   deterministic — so every cell, and hence the availability table, is
   byte-identical across engines and across -j. *)

type server_config = {
  sv_seed : int64;
  sv_count : int;  (** plan length; cells = count x applicable schemes *)
  sv_requests : int;  (** request-stream length per cell *)
  sv_workers : int;  (** forked worker-pool size *)
  sv_shards : int;  (** request-device shards *)
  sv_schemes : Pass.scheme list;
  sv_attempts : int;
  sv_jobs : int option;
  sv_time_slice : int option;
  sv_engine : Machine.engine option;
  sv_max_restarts : int;  (** supervisor restart budget per worker *)
  sv_deadline_cycles : int64;  (** per-request watchdog; 0 = off *)
  sv_budget_factor : int;  (** cell fuel = factor x baseline instructions *)
  sv_checkpoint : string option;
  sv_resume : bool;
  sv_checkpoint_batch : int;
  sv_sabotage : (index:int -> scheme:Pass.scheme -> attempt:int -> unit) option;
  sv_max_cells : int option;
}

let default_server_config =
  {
    sv_seed = 1L;
    sv_count = 12;
    sv_requests = 400;
    sv_workers = 4;
    sv_shards = 1;
    sv_schemes = default_schemes;
    sv_attempts = 2;
    sv_jobs = None;
    sv_time_slice = None;
    sv_engine = None;
    sv_max_restarts = 3;
    sv_deadline_cycles = 5_000_000L;
    sv_budget_factor = 8;
    sv_checkpoint = None;
    sv_resume = false;
    sv_checkpoint_batch = 1;
    sv_sabotage = None;
    sv_max_cells = None;
  }

(* The icall redirect stays out of scope for schemes that never claim to
   police indirect calls (same reasoning as [applicable]); the kill and
   page-level classes are meaningful everywhere. *)
let server_applicable scheme (k : Server_fault.kind) =
  match k with
  | Server_fault.Worker_kill -> true
  | Server_fault.Tamper fk -> applicable scheme fk

type server_row = {
  sv_index : int;
  sv_scheme : string;
  sv_cls : string;
  sv_label : string;
  sv_worker : int;
  sv_trigger : int;  (* handout count the hook fired at *)
  sv_applied : bool;
  sv_cell_attempts : int;
  sv_failed : bool;  (* crash containment: the cell itself blew up *)
  sv_tally : Server_fault.tally;
  sv_restarts : int;
  sv_detail : string;
}

type server_report = {
  sv_rows : server_row list;  (** sorted by (plan index, scheme position) *)
  sv_report_schemes : Pass.scheme list;
  sv_report_requests : int;
}

let compile_server_victim ~workers scheme =
  Toolchain.compile_exe
    ~options:{ Toolchain.default_options with Toolchain.scheme }
    ~name:("server-chaos-" ^ Pass.scheme_name scheme)
    (Roload_workloads.Server_like.source_workers ~workers ~scale:1)

let server_trigger_of ~requests (inj : Server_fault.injection) =
  max 1 (inj.Server_fault.trigger_permille * requests / 1000)

(* one server run, optionally with an armed fault *)
let run_server_once (cfg : server_config) ?configure ~max_instructions exe stream =
  System.run_server ~max_instructions ?time_slice:cfg.sv_time_slice
    ?engine:cfg.sv_engine ~shards:cfg.sv_shards
    ~supervision:
      {
        Kernel.max_restarts = cfg.sv_max_restarts;
        Kernel.deadline_cycles = cfg.sv_deadline_cycles;
      }
    ?configure ~variant:System.Processor_kernel_modified ~requests:stream exe

let server_status_str (m : System.measurement) = System.status_string m

(* one cell: arm the hook, run, classify every request against the
   baseline's committed results *)
let run_server_cell (cfg : server_config) ~attempt ~(baseline_results : int64 option array)
    ~budget (inj : Server_fault.injection) scheme exe stream =
  let trigger = server_trigger_of ~requests:cfg.sv_requests inj in
  let applied = ref None in
  let configure kernel =
    Kernel.set_request_hook kernel ~at:trigger (fun k ->
        match Kernel.worker_pids k with
        | [] -> ()
        | pids -> (
          let pid = List.nth pids (inj.Server_fault.worker_slot mod List.length pids) in
          match inj.Server_fault.kind with
          | Server_fault.Worker_kill ->
            if Kernel.kill_task k ~pid ~info:"chaos" then
              applied :=
                Some
                  {
                    Injector.desc = Printf.sprintf "killed worker pid %d" pid;
                    Injector.addr = 0;
                  }
          | Server_fault.Tamper fk -> (
            match Kernel.task_process k pid with
            | None -> ()
            | Some process ->
              applied := Injector.apply ~machine:(Kernel.machine k) ~process ~exe fk)))
  in
  let m, stats = run_server_once cfg ~configure ~max_instructions:budget exe stream in
  let tally = ref Server_fault.empty_tally in
  Array.iteri
    (fun id rr ->
      tally :=
        Server_fault.tally_add !tally
          (Server_fault.classify_record ~baseline:baseline_results.(id) rr))
    stats.System.records;
  {
    sv_index = inj.Server_fault.index;
    sv_scheme = Pass.scheme_name scheme;
    sv_cls = Server_fault.class_name inj.Server_fault.kind;
    sv_label = Server_fault.kind_label inj.Server_fault.kind;
    sv_worker = inj.Server_fault.worker_slot;
    sv_trigger = trigger;
    sv_applied = !applied <> None;
    sv_cell_attempts = attempt;
    sv_failed = false;
    sv_tally = !tally;
    sv_restarts = stats.System.restarts;
    sv_detail =
      (match !applied with
      | Some (a : Injector.applied) ->
        Printf.sprintf "%s; root %s; %d restart(s)" a.Injector.desc
          (server_status_str m) stats.System.restarts
      | None -> Printf.sprintf "not applied; root %s" (server_status_str m));
  }

(* ---------- server checkpoint rows ---------- *)

let server_row_to_line (r : server_row) =
  Printf.sprintf "%d\t%s\t%s\t%s\t%d\t%d\t%b\t%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s"
    r.sv_index r.sv_scheme r.sv_cls r.sv_label r.sv_worker r.sv_trigger r.sv_applied
    r.sv_cell_attempts
    (if r.sv_failed then "failed" else "ok")
    r.sv_tally.Server_fault.served r.sv_tally.Server_fault.retried
    r.sv_tally.Server_fault.duplicated r.sv_tally.Server_fault.corrupted
    r.sv_tally.Server_fault.lost r.sv_restarts (sanitize r.sv_detail)

let server_row_of_line line =
  match String.split_on_char '\t' line with
  | [
      index; scheme; cls; label; worker; trigger; applied; attempts; tag; served;
      retried; duplicated; corrupted; lost; restarts; detail;
    ] -> (
    match
      ( int_of_string_opt index,
        int_of_string_opt worker,
        int_of_string_opt trigger,
        bool_of_string_opt applied,
        int_of_string_opt attempts,
        ( int_of_string_opt served,
          int_of_string_opt retried,
          int_of_string_opt duplicated,
          int_of_string_opt corrupted,
          int_of_string_opt lost ),
        int_of_string_opt restarts )
    with
    | ( Some sv_index,
        Some sv_worker,
        Some sv_trigger,
        Some sv_applied,
        Some sv_cell_attempts,
        (Some served, Some retried, Some duplicated, Some corrupted, Some lost),
        Some sv_restarts ) ->
      Some
        {
          sv_index;
          sv_scheme = scheme;
          sv_cls = cls;
          sv_label = label;
          sv_worker;
          sv_trigger;
          sv_applied;
          sv_cell_attempts;
          sv_failed = String.equal tag "failed";
          sv_tally =
            { Server_fault.served; retried; duplicated; corrupted; lost };
          sv_restarts;
          sv_detail = detail;
        }
    | _ -> None)
  | _ -> None

(* ---------- the server campaign driver ---------- *)

let run_server (cfg : server_config) =
  let schemes = cfg.sv_schemes in
  let stream =
    Roload_workloads.Server_like.requests ~seed:cfg.sv_seed ~count:cfg.sv_requests
  in
  (* compile serially: the toolchain owns global state *)
  let exes =
    List.map (fun s -> (s, compile_server_victim ~workers:cfg.sv_workers s)) schemes
  in
  (* per-scheme uninjected baselines: the correct committed result for
     every request id, plus the fuel yardstick for the cell watchdog *)
  let baselines =
    Parallel.map ?jobs:cfg.sv_jobs
      (fun (s, exe) ->
        let m, stats = run_server_once cfg ~max_instructions:2_000_000_000L exe stream in
        (s, (m, stats)))
      exes
  in
  List.iter
    (fun (s, ((m : System.measurement), (stats : System.server_stats))) ->
      let name = Pass.scheme_name s in
      if not (System.exited_cleanly m) then
        raise
          (Broken_victim
             (Printf.sprintf "server victim under %s: root %s" name
                (server_status_str m)));
      if stats.System.served <> cfg.sv_requests then
        raise
          (Broken_victim
             (Printf.sprintf "server victim under %s served %d of %d" name
                stats.System.served cfg.sv_requests));
      if stats.System.restarts <> 0 then
        raise
          (Broken_victim
             (Printf.sprintf "server victim under %s needed %d restart(s) uninjected"
                name stats.System.restarts)))
    baselines;
  (* the committed results are a pure function of the payloads, so every
     scheme's baseline must agree — a divergence means a miscompile, not
     a chaos finding *)
  (match baselines with
  | (_, (_, first)) :: rest ->
    List.iter
      (fun (s, (_, (stats : System.server_stats))) ->
        if
          not
            (Int64.equal stats.System.checksum first.System.checksum
            && String.equal stats.System.console first.System.console)
        then
          raise
            (Broken_victim
               (Printf.sprintf "server baseline checksum diverges under %s"
                  (Pass.scheme_name s))))
      rest
  | [] -> ());
  let baseline_results_for =
    let tbl =
      List.map
        (fun (s, (_, (stats : System.server_stats))) ->
          ( s,
            Array.map
              (fun (rr : Kernel.request_record) -> rr.Kernel.rr_result)
              stats.System.records ))
        baselines
    in
    fun s -> List.assoc s tbl
  in
  let budget_for =
    let tbl =
      List.map
        (fun (s, ((m : System.measurement), _)) ->
          ( s,
            Int64.add
              (Int64.mul m.System.instructions (Int64.of_int cfg.sv_budget_factor))
              100_000L ))
        baselines
    in
    fun s -> List.assoc s tbl
  in
  let plan = Plan.build_server ~seed:cfg.sv_seed ~count:cfg.sv_count in
  let cells =
    List.concat_map
      (fun (inj : Server_fault.injection) ->
        List.filter_map
          (fun (s, exe) ->
            if server_applicable s inj.Server_fault.kind then Some (inj, s, exe)
            else None)
          exes)
      plan
  in
  let header =
    Printf.sprintf
      "# roload-chaos-server v1 seed=%Ld count=%d requests=%d workers=%d shards=%d \
       restarts=%d deadline=%Ld schemes=%s"
      cfg.sv_seed cfg.sv_count cfg.sv_requests cfg.sv_workers cfg.sv_shards
      cfg.sv_max_restarts cfg.sv_deadline_cycles
      (String.concat "," (List.map Pass.scheme_name schemes))
  in
  let prior =
    match cfg.sv_checkpoint with
    | Some path when cfg.sv_resume && Sys.file_exists path -> (
      match read_lines path with
      | h :: rest when String.equal h header -> List.filter_map server_row_of_line rest
      | _ -> [])
    | _ -> []
  in
  let done_keys = Hashtbl.create 64 in
  List.iter
    (fun (r : server_row) -> Hashtbl.replace done_keys (r.sv_index, r.sv_scheme) ())
    prior;
  let todo =
    List.filter
      (fun ((inj : Server_fault.injection), s, _) ->
        not (Hashtbl.mem done_keys (inj.Server_fault.index, Pass.scheme_name s)))
      cells
  in
  let todo =
    match cfg.sv_max_cells with
    | Some k -> List.filteri (fun i _ -> i < k) todo
    | None -> todo
  in
  (match cfg.sv_checkpoint with
  | Some path when prior = [] ->
    let oc = open_out path in
    output_string oc (header ^ "\n");
    close_out oc
  | _ -> ());
  let todo_arr = Array.of_list todo in
  let row_of idx outcome =
    let (inj : Server_fault.injection), scheme, _ = todo_arr.(idx) in
    match outcome with
    | Experiments.Cell_ok r -> r
    | Experiments.Cell_failed { error; attempts } ->
      {
        sv_index = inj.Server_fault.index;
        sv_scheme = Pass.scheme_name scheme;
        sv_cls = Server_fault.class_name inj.Server_fault.kind;
        sv_label = Server_fault.kind_label inj.Server_fault.kind;
        sv_worker = inj.Server_fault.worker_slot;
        sv_trigger = 0;
        sv_applied = false;
        sv_cell_attempts = attempts;
        sv_failed = true;
        sv_tally = Server_fault.empty_tally;
        sv_restarts = 0;
        sv_detail = sanitize error;
      }
  in
  let outcomes =
    with_appender ~batch:cfg.sv_checkpoint_batch cfg.sv_checkpoint @@ fun append_row ->
    Experiments.run_cells_contained ~attempts:cfg.sv_attempts ?jobs:cfg.sv_jobs
      ~on_cell:(fun idx o -> append_row (server_row_to_line (row_of idx o)))
      ~f:(fun ~attempt ((inj : Server_fault.injection), scheme, exe) ->
        (match cfg.sv_sabotage with
        | Some f -> f ~index:inj.Server_fault.index ~scheme ~attempt
        | None -> ());
        run_server_cell cfg ~attempt
          ~baseline_results:(baseline_results_for scheme)
          ~budget:(budget_for scheme) inj scheme exe stream)
      todo
  in
  let fresh = List.mapi row_of outcomes in
  let scheme_pos =
    let names = List.mapi (fun i s -> (Pass.scheme_name s, i)) schemes in
    fun n -> match List.assoc_opt n names with Some i -> i | None -> max_int
  in
  let rows =
    List.sort
      (fun (a : server_row) (b : server_row) ->
        compare (a.sv_index, scheme_pos a.sv_scheme) (b.sv_index, scheme_pos b.sv_scheme))
      (prior @ fresh)
  in
  { sv_rows = rows; sv_report_schemes = schemes; sv_report_requests = cfg.sv_requests }

(* ---------- server reporting & gates ---------- *)

let server_tally_of rows =
  List.fold_left
    (fun acc (r : server_row) ->
      {
        Server_fault.served = acc.Server_fault.served + r.sv_tally.Server_fault.served;
        retried = acc.Server_fault.retried + r.sv_tally.Server_fault.retried;
        duplicated = acc.Server_fault.duplicated + r.sv_tally.Server_fault.duplicated;
        corrupted = acc.Server_fault.corrupted + r.sv_tally.Server_fault.corrupted;
        lost = acc.Server_fault.lost + r.sv_tally.Server_fault.lost;
      })
    Server_fault.empty_tally rows

let availability_table (rp : server_report) =
  let t =
    Table.create
      ~title:
        "roload-chaos --server: serving availability by class (correct% over ok / \
         retried / duplicated / corrupted / lost)"
      ~header:("injection class" :: List.map Pass.scheme_name rp.sv_report_schemes)
      ()
  in
  List.iter
    (fun cls ->
      let cells =
        List.map
          (fun s ->
            let name = Pass.scheme_name s in
            let rs =
              List.filter
                (fun (r : server_row) ->
                  String.equal r.sv_cls cls
                  && String.equal r.sv_scheme name
                  && not r.sv_failed)
                rp.sv_rows
            in
            let failures =
              List.length
                (List.filter
                   (fun (r : server_row) ->
                     String.equal r.sv_cls cls
                     && String.equal r.sv_scheme name
                     && r.sv_failed)
                   rp.sv_rows)
            in
            if rs = [] && failures = 0 then "-"
            else begin
              let tl = server_tally_of rs in
              let restarts =
                List.fold_left (fun a (r : server_row) -> a + r.sv_restarts) 0 rs
              in
              Printf.sprintf "%.2f%% (%s) %dre%s"
                (100.0 *. Server_fault.availability tl)
                (Server_fault.tally_str tl) restarts
                (if failures > 0 then Printf.sprintf " %dF" failures else "")
            end)
          rp.sv_report_schemes
      in
      Table.add_row t (cls :: cells))
    Server_fault.all_class_names;
  t

(* The server release gates: under every ROLoad scheme every cell must
   keep availability at or above the floor with zero corrupted payloads;
   crashed cells are counted separately. *)
type server_gate = {
  sg_low_availability : int;
  sg_corrupted_under_roload : int;
  sg_cell_failures : int;
}

let availability_floor = 0.99

let server_gate (rp : server_report) =
  let roload_names =
    List.filter_map
      (fun s -> if List.mem s roload_schemes then Some (Pass.scheme_name s) else None)
      rp.sv_report_schemes
  in
  let under_roload (r : server_row) = List.exists (String.equal r.sv_scheme) roload_names in
  {
    sg_low_availability =
      List.length
        (List.filter
           (fun (r : server_row) ->
             under_roload r && (not r.sv_failed)
             && Server_fault.availability r.sv_tally < availability_floor)
           rp.sv_rows);
    sg_corrupted_under_roload =
      List.length
        (List.filter
           (fun (r : server_row) ->
             under_roload r && r.sv_tally.Server_fault.corrupted > 0)
           rp.sv_rows);
    sg_cell_failures =
      List.length (List.filter (fun (r : server_row) -> r.sv_failed) rp.sv_rows);
  }

let render_server (rp : server_report) =
  let g = server_gate rp in
  Table.render (availability_table rp)
  ^ Printf.sprintf
      "\n\
       cells: %d   requests/cell: %d   low-availability-under-roload: %d   \
       corrupted-under-roload: %d   cell-failures: %d\n"
      (List.length rp.sv_rows) rp.sv_report_requests g.sg_low_availability
      g.sg_corrupted_under_roload g.sg_cell_failures

let server_to_json (rp : server_report) =
  let row_json (r : server_row) =
    Json.obj
      [
        ("index", Json.int r.sv_index);
        ("scheme", Json.str r.sv_scheme);
        ("class", Json.str r.sv_cls);
        ("label", Json.str r.sv_label);
        ("worker_slot", Json.int r.sv_worker);
        ("trigger", Json.int r.sv_trigger);
        ("applied", Json.bool r.sv_applied);
        ("attempts", Json.int r.sv_cell_attempts);
        ("failed", Json.bool r.sv_failed);
        ("served", Json.int r.sv_tally.Server_fault.served);
        ("retried", Json.int r.sv_tally.Server_fault.retried);
        ("duplicated", Json.int r.sv_tally.Server_fault.duplicated);
        ("corrupted", Json.int r.sv_tally.Server_fault.corrupted);
        ("lost", Json.int r.sv_tally.Server_fault.lost);
        ("restarts", Json.int r.sv_restarts);
        ("detail", Json.str r.sv_detail);
      ]
  in
  let g = server_gate rp in
  Json.obj
    [
      ( "schemes",
        Json.arr
          (List.map (fun s -> Json.str (Pass.scheme_name s)) rp.sv_report_schemes) );
      ("requests", Json.int rp.sv_report_requests);
      ("low_availability_under_roload", Json.int g.sg_low_availability);
      ("corrupted_under_roload", Json.int g.sg_corrupted_under_roload);
      ("cell_failures", Json.int g.sg_cell_failures);
      ("rows", Json.arr (List.map row_json rp.sv_rows));
    ]

(* per-scheme availability over every non-failed cell — the figure the
   bench-regression gate tracks for the roload schemes *)
let served_ratios (rp : server_report) =
  List.map
    (fun s ->
      let name = Pass.scheme_name s in
      let rs =
        List.filter
          (fun (r : server_row) -> String.equal r.sv_scheme name && not r.sv_failed)
          rp.sv_rows
      in
      (name, Server_fault.availability (server_tally_of rs)))
    rp.sv_report_schemes
