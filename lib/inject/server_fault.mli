(** Server-aware fault taxonomy: injections that strike one chosen
    worker of a live request-serving system mid-stream, and the
    per-request outcome classification the serving-availability table is
    built from.

    The tamper sub-taxonomy reuses {!Fault.kind} but excludes
    [Phys_flip] (corrupts a shared read-only frame, so it survives a
    supervisor restart — no restart policy can serve through it) and
    [Writeback_drop] (machine-global, not per-worker).  Both remain
    covered by the classic single-process campaign. *)

type kind =
  | Tamper of Fault.kind
      (** pte-key-flip, pte-ro-tamper, tlb-key-flip or ptr-redirect
          applied to the chosen worker through the injector backdoors *)
  | Worker_kill  (** crash-fault: SIGKILL the chosen worker *)

type injection = {
  index : int;
  kind : kind;
  worker_slot : int;  (** abstract; resolved mod the live worker count *)
  trigger_permille : int;
      (** when to strike, as a fraction (‰) of the request count; drawn
          in the steady-state band so workers have initialized their
          tamper surface before the fault lands *)
}

val class_name : kind -> string
val kind_label : kind -> string

val all_class_names : string list
(** The availability-table row axis, in render order. *)

(** {2 Per-request outcomes} *)

type request_outcome =
  | Served
  | Retried_then_served
  | Duplicated
  | Corrupted
  | Lost

val outcome_name : request_outcome -> string

val classify_record :
  baseline:int64 option -> Roload_kernel.Kernel.request_record -> request_outcome
(** Judge one request of an injected run against the uninjected
    baseline's committed result for the same id. *)

type tally = {
  served : int;
  retried : int;
  duplicated : int;
  corrupted : int;
  lost : int;
}

val empty_tally : tally
val tally_add : tally -> request_outcome -> tally
val tally_requests : tally -> int

val availability : tally -> float
(** Fraction of requests that came back with the correct result
    (duplicated commits are idempotent first-wins, so they count). *)

val tally_str : tally -> string
