(* Server-aware fault plans: what roload-chaos injects into a *live*
   request-serving system (the tentpole of the fault-tolerant-serving
   PR), as opposed to the single-process victim of the classic campaign.

   A server injection strikes one chosen worker mid-stream — when the
   kernel's request device has handed out [trigger_request] requests —
   either by tampering that worker's state through the classic injector
   backdoors ([Tamper]) or by killing it outright ([Worker_kill], the
   crash-fault the supervisor is meant to absorb).

   The tamper sub-taxonomy deliberately excludes two classic classes:
     - [Phys_flip] corrupts a *shared* read-only frame, so the damage
       survives the supervisor's restart-from-pristine-image — no
       bounded-restart policy can serve through it, and charging the
       supervisor for it would say nothing about serving availability;
     - [Writeback_drop] arms a machine-global cache interceptor that
       bleeds into every task including the root, not "one worker".
   Both remain covered by the classic campaign. *)

type kind =
  | Tamper of Fault.kind (* pte-key-flip | pte-ro-tamper | tlb-key-flip | ptr-redirect *)
  | Worker_kill

type injection = {
  index : int;
  kind : kind;
  worker_slot : int; (* abstract; resolved mod the live worker count *)
  trigger_permille : int;
      (* when to strike, as a fraction of the request count — drawn in
         the steady-state band (25%..60% in) so every worker has booted
         and initialized its tamper surface before the fault lands *)
}

let class_name = function
  | Tamper k -> Fault.class_name k
  | Worker_kill -> "worker-kill"

(* the server campaign's class axis (availability-table rows) *)
let all_class_names =
  [ "pte-key-flip"; "pte-ro-tamper"; "tlb-key-flip"; "ptr-redirect"; "worker-kill" ]

let kind_label = function
  | Tamper k -> Fault.kind_label k
  | Worker_kill -> "worker-kill"

(* ---------- per-request outcomes ---------- *)

(* What happened to one request of an injected run, judged against the
   uninjected baseline's committed result for the same request id. *)
type request_outcome =
  | Served (* committed once, correct, first delivery *)
  | Retried_then_served (* correct, but only after redelivery *)
  | Duplicated (* correct, but committed more than once *)
  | Corrupted (* committed a result that differs from baseline *)
  | Lost (* never committed *)

let outcome_name = function
  | Served -> "served"
  | Retried_then_served -> "retried"
  | Duplicated -> "duplicated"
  | Corrupted -> "corrupted"
  | Lost -> "lost"

(* Classify one request record.  [baseline] is the uninjected run's
   committed result for this id ([None] never happens for a healthy
   victim — a missing baseline makes any commit Corrupted, which is the
   conservative reading). *)
let classify_record ~(baseline : int64 option)
    (rr : Roload_kernel.Kernel.request_record) =
  match rr.Roload_kernel.Kernel.rr_result with
  | None -> Lost
  | Some v ->
    if rr.Roload_kernel.Kernel.rr_diverged || baseline <> Some v then Corrupted
    else if rr.Roload_kernel.Kernel.rr_completions > 1 then Duplicated
    else if rr.Roload_kernel.Kernel.rr_redeliveries > 0 then Retried_then_served
    else Served

type tally = {
  served : int;
  retried : int;
  duplicated : int;
  corrupted : int;
  lost : int;
}

let empty_tally = { served = 0; retried = 0; duplicated = 0; corrupted = 0; lost = 0 }

let tally_add t = function
  | Served -> { t with served = t.served + 1 }
  | Retried_then_served -> { t with retried = t.retried + 1 }
  | Duplicated -> { t with duplicated = t.duplicated + 1 }
  | Corrupted -> { t with corrupted = t.corrupted + 1 }
  | Lost -> { t with lost = t.lost + 1 }

let tally_requests t = t.served + t.retried + t.duplicated + t.corrupted + t.lost

(* serving availability: the fraction of requests that came back with
   the *correct* result (duplicates are idempotent first-wins commits,
   so they count as served) *)
let availability t =
  let n = tally_requests t in
  if n = 0 then 1.0
  else float_of_int (t.served + t.retried + t.duplicated) /. float_of_int n

let tally_str t =
  Printf.sprintf "%dok %dretry %ddup %dcorrupt %dlost" t.served t.retried t.duplicated
    t.corrupted t.lost
