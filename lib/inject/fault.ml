(* The fault taxonomy of roload-chaos.

   A [kind] names *what* is corrupted; the slot/bit fields are abstract
   indices the injector resolves against the concrete executable of each
   scheme (page_slot 3 means "the fourth protected page", whatever its
   address is under that scheme's layout), so one plan drives every
   scheme of a campaign. *)

type sink =
  | Vcall_sink (* swing a vptr at a forged vtable in writable memory *)
  | Icall_sink (* overwrite a typed function pointer with a twin's code address *)

type kind =
  | Pte_key_flip of { page_slot : int; bit : int }
  | Pte_make_writable of { page_slot : int }
  | Tlb_key_flip of { page_slot : int; bit : int }
  | Phys_flip of { word_slot : int; bit_slot : int }
  | Ptr_redirect of sink
  | Writeback_drop

type injection = {
  index : int;
  kind : kind;
  trigger_permille : int;
      (* when to strike, as a fraction of the scheme's baseline
         instruction count (100..600 = 10%..60% into the run) *)
}

type verdict =
  | Detected_roload
  | Detected_segv
  | Silent_corruption
  | Masked
  | Divergent_output

let sink_name = function Vcall_sink -> "vcall" | Icall_sink -> "icall"

let class_name = function
  | Pte_key_flip _ -> "pte-key-flip"
  | Pte_make_writable _ -> "pte-ro-tamper"
  | Tlb_key_flip _ -> "tlb-key-flip"
  | Phys_flip _ -> "phys-bit-flip"
  | Ptr_redirect _ -> "ptr-redirect"
  | Writeback_drop -> "wb-drop"

let all_class_names =
  [
    "pte-key-flip";
    "pte-ro-tamper";
    "tlb-key-flip";
    "phys-bit-flip";
    "ptr-redirect";
    "wb-drop";
  ]

let kind_label = function
  | Pte_key_flip { page_slot; bit } ->
    Printf.sprintf "pte-key-flip page#%d bit%d" page_slot bit
  | Pte_make_writable { page_slot } -> Printf.sprintf "pte-ro-tamper page#%d" page_slot
  | Tlb_key_flip { page_slot; bit } ->
    Printf.sprintf "tlb-key-flip page#%d bit%d" page_slot bit
  | Phys_flip { word_slot; bit_slot } ->
    Printf.sprintf "phys-bit-flip word#%d bit-slot%d" word_slot bit_slot
  | Ptr_redirect s -> "ptr-redirect " ^ sink_name s
  | Writeback_drop -> "wb-drop"

let verdict_name = function
  | Detected_roload -> "detected-roload"
  | Detected_segv -> "detected-segv"
  | Silent_corruption -> "silent-corruption"
  | Masked -> "masked"
  | Divergent_output -> "divergent-output"

let verdict_of_string = function
  | "detected-roload" -> Some Detected_roload
  | "detected-segv" -> Some Detected_segv
  | "silent-corruption" -> Some Silent_corruption
  | "masked" -> Some Masked
  | "divergent-output" -> Some Divergent_output
  | _ -> None

let all_verdicts =
  [ Detected_roload; Detected_segv; Silent_corruption; Masked; Divergent_output ]
