(* Resolving and applying one planned fault to a paused machine.

   Each arm goes through a backdoor added for roload-chaos:

     Pte_key_flip / Pte_make_writable -> Page_table.tamper (rewrite the
       leaf PTE), then Mmu.invalidate so the stale-but-correct TLB entry
       does not shadow the tampered PTE — this models the tamper racing
       a TLB eviction, the case ROLoad must catch on the next walk;
     Tlb_key_flip  -> Tlb.corrupt, a soft error striking the *resident*
       entry in place (deliberately no invalidation);
     Phys_flip     -> Phys_mem.flip_bit through the translated physical
       address of a vtable/GFPT word, bypassing page permissions;
     Ptr_redirect  -> Process.attacker_write_u64, ordinary software
       corruption through the writable-memory primitive;
     Writeback_drop-> Cache.set_writeback_interceptor, arming a one-shot
       drop of the next dirty victim line.

   Resolution is deterministic: abstract plan slots index sorted
   candidate lists derived from the executable, so the same plan entry
   names "the same" fault under every scheme's layout.

   Phys_flip restricts itself to bits 16..25 of the word and, among
   those, to flips whose resulting address does not land in an
   executable segment: a corrupted code pointer must crash (wild fetch)
   rather than land mid-function and execute garbage, because a chaos
   campaign wants a *deterministic* per-scheme verdict for every entry.
   The paper's point survives intact — no scheme detects a flipped
   *value* on an intact page; it is the page-level tampering classes
   that separate ROLoad from the baselines. *)

module Exe = Roload_obj.Exe
module Process = Roload_kernel.Process
module Machine = Roload_machine.Machine
module Mmu = Roload_mem.Mmu
module Tlb = Roload_mem.Tlb
module Pte = Roload_mem.Pte
module Page_table = Roload_mem.Page_table
module Phys_mem = Roload_mem.Phys_mem
module Perm = Roload_mem.Perm
module Cache = Roload_cache.Cache
module Hierarchy = Roload_cache.Hierarchy

let page_size = Page_table.page_size

type applied = { desc : string; addr : int }

(* The pages a campaign treats as "protected": the keyed pages when the
   scheme keys any (vtables, GFPTs, return-site tables), otherwise the
   read-only non-executable data pages — what ROLoad *would* protect.
   Under the chaos victim every keyed page is hot (both hierarchies and
   the function-pointer table are dispatched through each iteration), so
   tampering here is always observable before exit. *)
let protected_pages exe =
  let segs = exe.Exe.segments in
  let keyed = List.filter (fun (s : Exe.segment) -> s.key <> 0) segs in
  let pool =
    if keyed <> [] then keyed
    else
      List.filter
        (fun (s : Exe.segment) ->
          s.perms.Perm.r && (not s.perms.Perm.w) && not s.perms.Perm.x)
        segs
  in
  pool
  |> List.concat_map (fun (s : Exe.segment) ->
         List.init (Exe.segment_pages s) (fun i -> s.vaddr + (i * page_size)))
  |> List.sort_uniq compare

let is_gfpt_slot_for func (name, _) =
  let suffix = "$" ^ func in
  String.length name > 7
  && String.sub name 0 7 = "__gfpt$"
  && String.length name > String.length suffix
  && String.sub name (String.length name - String.length suffix) (String.length suffix)
     = suffix

(* Word targets for physical bit flips: slot 0 of every vtable (the
   method both hierarchies dispatch each iteration) plus the GFPT slot
   of the live callback when the ICall transformation emitted one. *)
let word_candidates exe =
  let vt_words =
    List.filter_map
      (fun (name, addr) ->
        if String.length name >= 5 && String.sub name 0 5 = "__vt$" then Some addr
        else None)
      exe.Exe.symbols
  in
  let gfpt =
    match List.find_opt (is_gfpt_slot_for "benign_cb") exe.Exe.symbols with
    | Some (_, addr) -> [ addr ]
    | None -> []
  in
  List.sort_uniq compare (vt_words @ gfpt)

let in_exec_segment exe target =
  List.exists
    (fun (s : Exe.segment) ->
      s.perms.Perm.x
      && target >= s.vaddr
      && target < s.vaddr + (Exe.segment_pages s * page_size))
    exe.Exe.segments

let pick candidates slot =
  match candidates with [] -> None | l -> Some (List.nth l (slot mod List.length l))

let note machine kind ~addr =
  Machine.note_injection machine ~kind:(Fault.class_name kind) ~addr

let tamper_pte process ~va ~f =
  match Page_table.tamper (Process.page_table process) ~va ~f with
  | Ok () ->
    (* model the tamper racing a TLB eviction: drop the stale (correct)
       cached entry so the next access re-walks the tampered PTE *)
    Mmu.invalidate (Process.mmu process) ~va;
    true
  | Error _ -> false

let apply ~machine ~process ~exe (kind : Fault.kind) =
  match kind with
  | Fault.Pte_key_flip { page_slot; bit } -> (
    match pick (protected_pages exe) page_slot with
    | None -> None
    | Some va ->
      let bit = bit mod Pte.key_width in
      if tamper_pte process ~va ~f:(fun pte -> Pte.flip_key_bit pte ~bit) then begin
        note machine kind ~addr:va;
        Some { desc = Printf.sprintf "flipped PTE key bit %d of page 0x%x" bit va;
               addr = va }
      end
      else None)
  | Fault.Pte_make_writable { page_slot } -> (
    match pick (protected_pages exe) page_slot with
    | None -> None
    | Some va ->
      let f pte = Pte.with_perms pte { (Pte.perms pte) with Perm.w = true } in
      if tamper_pte process ~va ~f then begin
        note machine kind ~addr:va;
        Some { desc = Printf.sprintf "set W on protected page 0x%x" va; addr = va }
      end
      else None)
  | Fault.Tlb_key_flip { page_slot; bit } -> (
    match pick (protected_pages exe) page_slot with
    | None -> None
    | Some va ->
      let bit = bit mod Pte.key_width in
      let vpn = va lsr Page_table.page_shift in
      if
        Tlb.corrupt
          (Mmu.dtlb (Process.mmu process))
          ~vpn
          ~f:(fun pte -> Pte.flip_key_bit pte ~bit)
      then begin
        note machine kind ~addr:va;
        Some
          { desc =
              Printf.sprintf "flipped key bit %d of resident D-TLB entry for 0x%x" bit
                va;
            addr = va }
      end
      else None (* entry not resident: the soft error struck nothing *))
  | Fault.Phys_flip { word_slot; bit_slot } -> (
    match pick (word_candidates exe) word_slot with
    | None -> None
    | Some va -> (
      let value = Process.read_u64 process ~va in
      let bits = List.init 10 (fun i -> 16 + ((bit_slot + i) mod 10)) in
      let safe bit =
        not (in_exec_segment exe (Int64.to_int value lxor (1 lsl bit)))
      in
      match List.find_opt safe bits with
      | None -> None
      | Some bit ->
        let pa = Process.translate process va in
        Phys_mem.flip_bit (Machine.mem machine) ~addr:pa ~bit;
        note machine kind ~addr:va;
        Some
          { desc = Printf.sprintf "flipped bit %d of word 0x%x (pa 0x%x)" bit va pa;
            addr = va }))
  | Fault.Ptr_redirect sink -> (
    let addr name = Exe.find_symbol_exn exe name in
    try
      match sink with
      | Fault.Vcall_sink ->
        (* forge a vtable in writable memory out of the same-signature
           twin's legitimate slot, then swing g's vptr at it *)
        let fake = addr "fake_vtable" in
        let entry = Process.read_u64 process ~va:(addr "__vt$Evil") in
        for slot = 0 to 3 do
          Process.attacker_write_u64 process ~va:(fake + (8 * slot)) entry
        done;
        let obj = Int64.to_int (Process.read_u64 process ~va:(addr "g")) in
        Process.attacker_write_u64 process ~va:obj (Int64.of_int fake);
        note machine kind ~addr:obj;
        Some { desc = "vptr of g -> forged vtable of same-signature twin"; addr = obj }
      | Fault.Icall_sink ->
        (* same-signature twin's *raw code address*: the strongest
           corruption a label-CFI baseline still accepts *)
        let slot = addr "callback" in
        Process.attacker_write_u64 process ~va:slot (Int64.of_int (addr "twin_cb"));
        note machine kind ~addr:slot;
        Some { desc = "callback -> raw code address of same-signature twin";
               addr = slot }
    with Process.Attack_blocked _ -> None)
  | Fault.Writeback_drop ->
    let dc = Hierarchy.dcache (Machine.hierarchy machine) in
    let armed = ref true in
    Cache.set_writeback_interceptor dc
      (Some
         (fun ~addr:_ ->
           if !armed then begin
             armed := false;
             true
           end
           else false));
    note machine kind ~addr:0;
    Some { desc = "armed one-shot drop of the next dirty writeback"; addr = 0 }
