(* Seeded campaign plans.

   Everything downstream of [build] is a pure function of the plan and
   the executables, so equal seeds give byte-identical campaigns — the
   property the --resume machinery and the corpus reproducers rely on.
   No wall-clock anywhere. *)

module Prng = Roload_util.Prng
module Pte = Roload_mem.Pte

let slot_range = 8 (* abstract page/word slots; injector wraps via mod *)
let bit_slot_range = 10

let kind_of rng =
  match Prng.next_int rng 6 with
  | 0 ->
    Fault.Pte_key_flip
      { page_slot = Prng.next_int rng slot_range;
        bit = Prng.next_int rng Pte.key_width }
  | 1 -> Fault.Pte_make_writable { page_slot = Prng.next_int rng slot_range }
  | 2 ->
    Fault.Tlb_key_flip
      { page_slot = Prng.next_int rng slot_range;
        bit = Prng.next_int rng Pte.key_width }
  | 3 ->
    Fault.Phys_flip
      { word_slot = Prng.next_int rng slot_range;
        bit_slot = Prng.next_int rng bit_slot_range }
  | 4 ->
    Fault.Ptr_redirect (if Prng.next_bool rng then Fault.Vcall_sink else Fault.Icall_sink)
  | _ -> Fault.Writeback_drop

let build ~seed ~count =
  let rng = Prng.create seed in
  (* explicit loop: the rng stream must be drawn strictly in index order
     (List.init's application order is not a guarantee worth relying on) *)
  let rec go acc index =
    if index >= count then List.rev acc
    else begin
      let kind = kind_of rng in
      let trigger_permille = Prng.next_in_range rng ~lo:100 ~hi:600 in
      go ({ Fault.index; kind; trigger_permille } :: acc) (index + 1)
    end
  in
  go [] 0

(* ---------- server plans ---------- *)

(* The live-server taxonomy: the four per-worker tamper classes plus the
   crash fault.  [Phys_flip] and [Writeback_drop] are deliberately
   absent — see {!Server_fault}. *)
let server_kind_of rng =
  match Prng.next_int rng 5 with
  | 0 ->
    Server_fault.Tamper
      (Fault.Pte_key_flip
         { page_slot = Prng.next_int rng slot_range;
           bit = Prng.next_int rng Pte.key_width })
  | 1 ->
    Server_fault.Tamper (Fault.Pte_make_writable { page_slot = Prng.next_int rng slot_range })
  | 2 ->
    Server_fault.Tamper
      (Fault.Tlb_key_flip
         { page_slot = Prng.next_int rng slot_range;
           bit = Prng.next_int rng Pte.key_width })
  | 3 ->
    Server_fault.Tamper
      (Fault.Ptr_redirect
         (if Prng.next_bool rng then Fault.Vcall_sink else Fault.Icall_sink))
  | _ -> Server_fault.Worker_kill

let build_server ~seed ~count =
  let rng = Prng.create seed in
  let rec go acc index =
    if index >= count then List.rev acc
    else begin
      let kind = server_kind_of rng in
      let worker_slot = Prng.next_int rng slot_range in
      (* steady-state band: every worker has served at least one request
         (and so initialized its tamper surface) before the strike *)
      let trigger_permille = Prng.next_in_range rng ~lo:250 ~hi:600 in
      go ({ Server_fault.index; kind; worker_slot; trigger_permille } :: acc) (index + 1)
    end
  in
  go [] 0
