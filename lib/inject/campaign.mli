(** The chaos campaign: baseline-vs-injected differential runs over a
    seeded plan, with crash containment, incremental checkpointing and
    byte-identical resume. *)

module Pass = Roload_passes.Pass

val roload_schemes : Pass.scheme list
(** Schemes whose detection the gates hold to the ROLoad standard. *)

val default_schemes : Pass.scheme list
(** The campaign matrix: stock, label-CFI baseline, VCall, ICall. *)

val applicable : Pass.scheme -> Fault.kind -> bool
(** Whether a (scheme, kind) cell is meaningful — e.g. the icall
    redirect is skipped under VCall, which never claims to police
    indirect calls. *)

type config = {
  seed : int64;
  count : int;  (** plan length; cells = count x applicable schemes *)
  schemes : Pass.scheme list;
  attempts : int;  (** bounded deterministic retries per cell *)
  jobs : int option;
  budget_factor : int;  (** watchdog = factor x baseline instructions *)
  checkpoint : string option;  (** incremental persistence file *)
  resume : bool;  (** skip cells already in the checkpoint *)
  checkpoint_batch : int;
      (** rows buffered per checkpoint flush (1 = historical
          row-at-a-time appends); the tail is flushed on any exit,
          including an exception escaping mid-campaign, and whole rows
          are the flush unit so resumed files never hold torn lines *)
  sabotage : (index:int -> scheme:Pass.scheme -> attempt:int -> unit) option;
      (** test hook: raise from inside a chosen cell *)
  max_cells : int option;  (** test hook: simulate a mid-run kill *)
  elide : bool;
      (** compile every victim with proof-guided ld.ro check elision
          (roload-prove + roload-elide); detection coverage must be
          byte-identical to the unelided campaign *)
  from_reset : bool;
      (** boot every cell from reset instead of forking the per-scheme
          trigger snapshots (the default fan-out); verdict tables,
          checkpoints and resume are byte-identical either way — only
          the throughput changes *)
}

val default_config : config

type outcome = Verdict of Fault.verdict | Failed

type row = {
  index : int;
  scheme : string;
  cls : string;
  label : string;
  trigger : int64;
  applied : bool;
  attempts : int;
  outcome : outcome;
  detail : string;
}

type report = {
  rows : row list;  (** sorted by (plan index, scheme position) *)
  schemes : Pass.scheme list;
  oracle_checked : bool;
  oracle_agreed : bool;
  corruption_diffs : ((int * string) * Roload_mem.Phys_mem.page_diff list) list;
      (** per silent-corruption cell, keyed by (index, scheme): pages
          where the injected run's final memory differs from the clean
          baseline's, with each page's first differing byte.  Fresh
          cells only (never persisted to checkpoints), and carried
          outside {!row} so tables/checkpoints stay byte-identical. *)
}

exception Broken_victim of string
(** The uninjected victim did not behave benignly under some scheme —
    the campaign would be meaningless, so it refuses to start. *)

val run : config -> report

val run_with_pause :
  ?engine:Roload_machine.Machine.engine ->
  ?variant:Core.System.variant ->
  ?template:Roload_machine.Machine.image ->
  max_instructions:int64 ->
  ?pause_at:int64 ->
  ?inject:
    (machine:Roload_machine.Machine.t -> process:Roload_kernel.Process.t -> unit) ->
  Roload_obj.Exe.t ->
  Roload_kernel.Kernel.run_outcome
  * Roload_machine.Machine.t
  * Roload_kernel.Kernel.t
  * Roload_kernel.Process.t
(** The pause-inject-resume primitive: run to [pause_at] retired
    instructions (cumulative), call [inject] on the live machine, resume
    to [max_instructions].  Without [pause_at]/[inject] this is a plain
    run — and a paused-and-resumed run without injection is
    bit-identical (cycles, metrics, output) to an uninterrupted one.
    [template] forks a pristine boot image instead of creating a fresh
    machine: identical state, but zeroed pages are shared CoW with every
    other lineage forked from the same image, keeping cross-lineage
    memory diffs O(touched pages). *)

val measure :
  ?engine:Roload_machine.Machine.engine ->
  ?variant:Core.System.variant ->
  ?pause_at:int64 ->
  max_instructions:int64 ->
  Roload_obj.Exe.t ->
  Roload_kernel.Kernel.run_outcome * Roload_obs.Metrics.t
(** [run_with_pause] plus the exact counter snapshot — what the
    empty-plan bit-identity property compares. *)

val classify :
  baseline:Roload_kernel.Kernel.run_outcome ->
  Roload_kernel.Kernel.run_outcome ->
  Fault.verdict * string

val compile_victim : ?elide:bool -> Pass.scheme -> Roload_obj.Exe.t
val baseline_run : Roload_obj.Exe.t -> Roload_kernel.Kernel.run_outcome

val baseline_run_full :
  ?template:Roload_machine.Machine.image ->
  Roload_obj.Exe.t ->
  Roload_kernel.Kernel.run_outcome * Roload_mem.Phys_mem.image
(** The baseline outcome plus its final memory image — the reference the
    silent-corruption localizer diffs against. *)

val run_one :
  ?budget_factor:int ->
  ?baseline_mem:Roload_mem.Phys_mem.image ->
  attempt:int ->
  baseline:Roload_kernel.Kernel.run_outcome ->
  Fault.injection ->
  Pass.scheme ->
  Roload_obj.Exe.t ->
  row * Roload_mem.Phys_mem.page_diff list option
(** One from-reset cell: boot, pause at the entry's trigger, inject,
    resume, classify.  With [baseline_mem], a silent-corruption verdict
    also returns the page-level localization diff. *)

val run_one_seeded :
  ?budget_factor:int ->
  ?baseline_mem:Roload_mem.Phys_mem.image ->
  attempt:int ->
  baseline:Roload_kernel.Kernel.run_outcome ->
  snap:Roload_kernel.Snapshot.t ->
  Fault.injection ->
  Pass.scheme ->
  Roload_obj.Exe.t ->
  row * Roload_mem.Phys_mem.page_diff list option
(** One snapshot-seeded cell: fork the warm image captured at this
    cell's trigger frontier, inject, resume.  Byte-identical verdict to
    {!run_one} — the boot and warm-up prefix are simply not
    re-executed. *)

val build_ladder :
  ?template:Roload_machine.Machine.image ->
  triggers:int64 list ->
  Roload_obj.Exe.t ->
  (int64 * Roload_kernel.Snapshot.t) list
(** Boot one parent system and advance it through the sorted distinct
    [triggers] (cumulative retire counts), capturing a copy-on-write
    snapshot at each frontier. *)

val verdict_of_row : row -> Fault.verdict option
val detected : row -> bool

val coverage_table : report -> Roload_util.Table.t
(** The §V-style detection-coverage table: one row per injection class,
    one column per scheme. *)

type gate = { silent_under_roload : int; undetected_tamper : int; cell_failures : int }

val tamper_classes : string list
(** The page/TLB-tampering classes ROLoad must detect at 100%. *)

val gate : report -> gate
(** What the CI chaos-smoke job asserts: zero silent corruption and zero
    undetected tampering under ROLoad schemes, zero cell failures. *)

val render : report -> string
val to_json : report -> string

val render_diffs : report -> string
(** The --diff-pages artifact: one line per corrupted page with its
    first differing byte.  Kept out of {!render} so the coverage table
    stays byte-identical to pre-snapshot campaigns. *)

type replay_check = { rc_scheme : string; rc_expected : string; rc_actual : string }

val replay : path:string -> replay_check list
(** Re-run a pinned corpus reproducer ([seed]/[entry]/[expect] lines)
    and report expected-vs-actual verdicts per scheme. *)

(** {2 The live-server campaign}

    Instead of pausing a single-process victim, each cell runs the full
    multi-worker serving system (supervised workers, sharded request
    device, redelivery) and strikes one chosen worker mid-stream — when
    the device has handed out the entry's trigger count of requests.
    Per-request outcomes are judged against the scheme's uninjected
    baseline and folded into the serving-availability table.  Every
    cell is deterministic (handout-count triggers, retire-count quanta,
    pure-function restarts), so the table is byte-identical across
    engines and [-j]. *)

type server_config = {
  sv_seed : int64;
  sv_count : int;  (** plan length; cells = count x applicable schemes *)
  sv_requests : int;  (** request-stream length per cell *)
  sv_workers : int;  (** forked worker-pool size *)
  sv_shards : int;  (** request-device shards *)
  sv_schemes : Pass.scheme list;
  sv_attempts : int;
  sv_jobs : int option;
  sv_time_slice : int option;
  sv_engine : Roload_machine.Machine.engine option;
  sv_max_restarts : int;  (** supervisor restart budget per worker *)
  sv_deadline_cycles : int64;  (** per-request watchdog; 0 = off *)
  sv_budget_factor : int;  (** cell fuel = factor x baseline instructions *)
  sv_checkpoint : string option;
  sv_resume : bool;
  sv_checkpoint_batch : int;
  sv_sabotage : (index:int -> scheme:Pass.scheme -> attempt:int -> unit) option;
  sv_max_cells : int option;
}

val default_server_config : server_config

val server_applicable : Pass.scheme -> Server_fault.kind -> bool
(** Worker-kill is meaningful everywhere; tampers follow {!applicable}. *)

type server_row = {
  sv_index : int;
  sv_scheme : string;
  sv_cls : string;
  sv_label : string;
  sv_worker : int;
  sv_trigger : int;  (** handout count the hook fired at *)
  sv_applied : bool;
  sv_cell_attempts : int;
  sv_failed : bool;  (** crash containment: the cell itself blew up *)
  sv_tally : Server_fault.tally;
  sv_restarts : int;
  sv_detail : string;
}

type server_report = {
  sv_rows : server_row list;  (** sorted by (plan index, scheme position) *)
  sv_report_schemes : Pass.scheme list;
  sv_report_requests : int;
}

val run_server : server_config -> server_report
(** Raises {!Broken_victim} when any scheme's uninjected baseline fails
    to serve every request cleanly with zero restarts, or when baseline
    checksums diverge across schemes. *)

val availability_table : server_report -> Roload_util.Table.t
(** The serving-availability table: one row per server injection class,
    one column per scheme — correct-service percentage over the
    ok/retried/duplicated/corrupted/lost tallies, plus restart counts. *)

type server_gate = {
  sg_low_availability : int;
      (** ROLoad-scheme cells below the {!availability_floor} *)
  sg_corrupted_under_roload : int;
  sg_cell_failures : int;
}

val availability_floor : float
(** The per-cell availability floor ROLoad schemes are held to (0.99). *)

val server_gate : server_report -> server_gate
val render_server : server_report -> string
val server_to_json : server_report -> string

val served_ratios : server_report -> (string * float) list
(** Per-scheme availability over every non-failed cell — the
    [served_ratio] figures the bench-regression gate tracks. *)
