(** The fault taxonomy of roload-chaos: what gets corrupted (layer and
    shape), when, and the five-way verdict the campaign assigns to each
    injected run. *)

type sink =
  | Vcall_sink  (** swing a vptr at a forged vtable in writable memory *)
  | Icall_sink
      (** overwrite a typed function pointer with a same-signature twin's
          raw code address *)

type kind =
  | Pte_key_flip of { page_slot : int; bit : int }
      (** flip one bit of a protected page's PTE key field *)
  | Pte_make_writable of { page_slot : int }
      (** set W on a protected (read-only) page's PTE *)
  | Tlb_key_flip of { page_slot : int; bit : int }
      (** soft error on a resident TLB entry: flip a key bit in place *)
  | Phys_flip of { word_slot : int; bit_slot : int }
      (** flip a high bit of a vtable/GFPT word through physical memory *)
  | Ptr_redirect of sink  (** software corruption of a sensitive pointer *)
  | Writeback_drop  (** drop the next dirty cache writeback (timing-only) *)

type injection = {
  index : int;  (** position in the campaign plan *)
  kind : kind;
  trigger_permille : int;
      (** when to strike, as ‰ of the scheme's baseline instruction
          count (100..600) *)
}

type verdict =
  | Detected_roload  (** killed by a SIGSEGV carrying the ROLoad triage *)
  | Detected_segv  (** killed by any other fault (plain segv, CFI abort, ...) *)
  | Silent_corruption  (** clean exit, wrong output — the worst case *)
  | Masked  (** same exit status and output as the baseline *)
  | Divergent_output  (** wrong exit code, or still running at the budget *)

val sink_name : sink -> string

val class_name : kind -> string
(** The coverage-table row the kind belongs to (slot details dropped). *)

val all_class_names : string list

val kind_label : kind -> string
(** Full label including slot/bit parameters. *)

val verdict_name : verdict -> string
val verdict_of_string : string -> verdict option
val all_verdicts : verdict list
