(* The chaos campaign's victim program.

   Unlike the attack victim ({!Roload_security.Victim}), which exists to
   prove that a *successful* hijack reaches a marker, this program is
   built so that every protected load is *hot*: both vtables and the
   function-pointer table are dispatched through on every loop
   iteration, so a fault injected anywhere between 10% and 60% of the
   baseline run is always followed by more sensitive loads that can
   observe it.

   The twins are deliberately boring: [Evil::greet] and [twin_cb] have
   the same signatures as their benign counterparts but different return
   values, so a redirected pointer that survives the scheme's checks
   corrupts only the final sum — the canonical silent corruption. *)

let source =
  {|
typedef int (*cb_t)(int);

class Greeter {
  int pad;
  virtual int greet() { return 1; }
};

class Evil {
  int pad;
  virtual int greet() { return 7; }
};

int benign_cb(int x) { return x + 1; }
int twin_cb(int x) { return x + 2; }

// attacker-controlled writable memory (the forged-vtable target)
int fake_vtable[8];

Greeter *g;
Evil *e;
cb_t callback;
cb_t twin_holder;

int main() {
  g = new Greeter;
  e = new Evil;
  callback = benign_cb;
  twin_holder = twin_cb;
  int acc = 0;
  int i = 0;
  while (i < 64) {
    acc = acc + g->greet();
    acc = acc + e->greet();
    cb_t cb = callback;
    acc = acc + cb(i);
    i = i + 1;
  }
  print_int(acc);
  print_char('\n');
  return 0;
}
|}

(* 64*1 + 64*7 + sum_{i=0..63}(i+1) = 64 + 448 + 2080. *)
let benign_output = "2592\n"
let iterations = 64
