(** Paged little-endian physical memory with copy-on-write snapshots.
    Permission enforcement lives in the MMU, above this layer. *)

exception Out_of_range of int

val page_shift : int
val page_bytes : int

type t

type image
(** A frozen memory image.  Pages inside an image are never mutated, so
    an image can be shared read-only across domains and forked from
    concurrently. *)

val create : size:int -> t
val size : t -> int

val snapshot : t -> image
(** Freeze the current contents in O(page count).  The live memory keeps
    running; its next store to each frozen page copies that page
    (copy-on-write), so the image stays exact. *)

val restore : t -> image -> unit
(** Reset [t]'s contents to [image] in O(page count), preserving the
    identity of [t] itself.  The image remains valid and reusable. *)

val fork : image -> t
(** A fresh memory whose contents equal [image], sharing every page with
    it until written — O(page count), no bulk allocation. *)

type page_diff = {
  page : int;  (** physical page number *)
  addr : int;  (** physical address of the first differing byte *)
  a_byte : int;
  b_byte : int;
}

val diff_images : image -> image -> page_diff list
(** Page-by-page comparison, ascending by page number.  Pages still
    physically shared between the two images compare equal by pointer,
    so diffing twin forks of one snapshot is O(page count). *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val read_string : t -> addr:int -> len:int -> string
val write_string : t -> addr:int -> string -> unit
val fill : t -> addr:int -> len:int -> char -> unit

val flip_bit : t -> addr:int -> bit:int -> unit
(** Fault-injection backdoor (roload-chaos): invert bit [bit] (0..63) of
    the 64-bit word at [addr], bypassing the MMU — the DRAM-disturbance
    model for flips inside protected read-only frames. *)
