(** Flat little-endian physical memory.  Permission enforcement lives in
    the MMU, above this layer. *)

exception Out_of_range of int

type t

val create : size:int -> t
val size : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val read_string : t -> addr:int -> len:int -> string
val write_string : t -> addr:int -> string -> unit
val fill : t -> addr:int -> len:int -> char -> unit

val flip_bit : t -> addr:int -> bit:int -> unit
(** Fault-injection backdoor (roload-chaos): invert bit [bit] (0..63) of
    the 64-bit word at [addr], bypassing the MMU — the DRAM-disturbance
    model for flips inside protected read-only frames. *)
