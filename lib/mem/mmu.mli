(** The MMU front-end: TLBs, page-table walks, and the access check with
    the ROLoad extension — the read-only + key condition evaluated in
    parallel with (and ANDed into) the conventional permission check
    (paper §II-E1, §III-A). *)

type fault =
  | Page_fault of { va : int; access : Perm.access }
      (** Conventional fault: unmapped page or permission violation. *)
  | Roload_fault of { va : int; key_requested : int; page_key : int; page_perms : Perm.t }
      (** The page is mapped and loadable but fails the ROLoad read-only or
          key condition — the new fault class the kernel turns into
          SIGSEGV. *)

val fault_to_string : fault -> string

type translation = { pa : int; tlb_hit : bool; walk_steps : int }

type t

val create :
  page_table:Page_table.t ->
  itlb_entries:int ->
  dtlb_entries:int ->
  roload_check_enabled:bool ->
  t

val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t
val page_table : t -> Page_table.t

type fault_counts = {
  mutable page_faults : int;
  mutable roload_key_mismatch : int;  (** read-only page, wrong key *)
  mutable roload_not_readonly : int;  (** pointee page writable/executable *)
}

val fault_counts : t -> fault_counts
(** Cumulative triage counts; every fault [translate] returns is counted
    exactly once. *)

val translate : t -> access:Perm.access -> int -> (translation, fault) result
(** Translate a user-mode virtual address. Fetches consult the I-TLB; data
    accesses the D-TLB. On a miss the Sv39 walk runs and the result is
    cached. *)

val rehit_fetch :
  t -> vpn:int -> handle:Tlb.handle -> int -> (translation, fault) result option
(** Replay an I-side translation on a handle captured earlier (the trace
    engine's chain-site memo): exact hit accounting via {!Tlb.rehit},
    permission check re-run against the PTE the entry holds now, physical
    address recomputed from it.  [None] (with no accounting) when the
    entry no longer caches [vpn] — fall back to {!translate}. *)

val invalidate : t -> va:int -> unit
(** Drop cached translations of [va]'s page from both TLBs. *)

val flush : t -> unit

type image
(** Both TLB images plus the fault triage counters. *)

val snapshot : t -> image

val restore : t -> image -> unit
(** Restore TLBs and fault counters in place.  The internal same-page
    memos are dropped — they are accounting-neutral, so no counter ever
    observes the difference. *)
