(* A fully-associative TLB with true-LRU replacement.  Each entry caches a
   leaf PTE — including the ROLoad key field, mirroring the hardware change
   of paper §III-A ("we also add the newly introduced key field … to each
   TLB entry"). *)

type entry = { mutable vpn : int; mutable pte : Pte.t; mutable last_use : int; mutable valid : bool }

type stats = { mutable hits : int; mutable misses : int; mutable flushes : int }

type t = {
  entries : entry array;
  mutable clock : int;
  stats : stats;
  name : string;
  (* Optional tracing tap, fired once per accounted lookup (including
     handle rehits).  A generic closure keeps this library free of an
     observability dependency; observers must not touch TLB state. *)
  mutable observer : (vpn:int -> hit:bool -> unit) option;
}

let create ~name ~entries:n =
  if n <= 0 then invalid_arg "Tlb.create";
  {
    entries =
      Array.init n (fun _ -> { vpn = -1; pte = Pte.invalid_pte; last_use = 0; valid = false });
    clock = 0;
    stats = { hits = 0; misses = 0; flushes = 0 };
    name;
    observer = None;
  }

let name t = t.name
let size t = Array.length t.entries
let stats t = t.stats
let set_observer t obs = t.observer <- obs

let notify t ~vpn ~hit =
  match t.observer with None -> () | Some f -> f ~vpn ~hit

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t vpn =
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let e = t.entries.(i) in
      if e.valid && e.vpn = vpn then begin
        e.last_use <- tick t;
        Some e.pte
      end
      else go (i + 1)
  in
  let r = go 0 in
  (match r with
  | Some _ -> t.stats.hits <- t.stats.hits + 1
  | None -> t.stats.misses <- t.stats.misses + 1);
  notify t ~vpn ~hit:(r <> None);
  r

(* Handle-based variants for the fetch/data fast paths.  A handle names the
   entry that produced a hit; [rehit] replays a hit on it with the exact
   accounting [lookup] would have performed (clock tick, recency update, hit
   counter), provided the entry still caches [vpn].  If it does not — the
   entry was invalidated or recycled — [rehit] performs no accounting at all
   and the caller falls back to the full [lookup], so the observable TLB
   state is identical to always calling [lookup]. *)

type handle = entry

let lookup_handle t vpn =
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let e = t.entries.(i) in
      if e.valid && e.vpn = vpn then begin
        e.last_use <- tick t;
        Some (e.pte, e)
      end
      else go (i + 1)
  in
  let r = go 0 in
  (match r with
  | Some _ -> t.stats.hits <- t.stats.hits + 1
  | None -> t.stats.misses <- t.stats.misses + 1);
  notify t ~vpn ~hit:(r <> None);
  r

(* Locate the entry caching [vpn] without touching stats, clock or recency —
   used to capture a handle right after a translation already accounted for
   the access. *)
let peek t ~vpn =
  let n = Array.length t.entries in
  let rec go i =
    if i >= n then None
    else
      let e = t.entries.(i) in
      if e.valid && e.vpn = vpn then Some e else go (i + 1)
  in
  go 0

let rehit t ~vpn (e : handle) =
  if e.valid && e.vpn = vpn then begin
    e.last_use <- tick t;
    t.stats.hits <- t.stats.hits + 1;
    notify t ~vpn ~hit:true;
    Some e.pte
  end
  else None

(* [n] consecutive rehits on the same entry, batched into O(1) state
   updates.  Each individual rehit ticks the clock and stamps the entry's
   recency with the new clock value, so [n] of them in a row leave the
   clock advanced by [n] and the recency at the final value — exactly
   what this computes.  The observer (when attached) still fires once per
   accounted lookup. *)
let rehit_many t ~vpn (e : handle) ~n =
  if n <= 0 then true
  else if e.valid && e.vpn = vpn then begin
    t.clock <- t.clock + n;
    e.last_use <- t.clock;
    t.stats.hits <- t.stats.hits + n;
    (match t.observer with
    | None -> ()
    | Some f ->
      for _ = 1 to n do
        f ~vpn ~hit:true
      done);
    true
  end
  else false

let insert t ~vpn ~pte =
  let n = Array.length t.entries in
  (* Prefer an invalid slot; otherwise evict the least recently used. *)
  let victim = ref t.entries.(0) in
  (try
     for i = 0 to n - 1 do
       let e = t.entries.(i) in
       if not e.valid then begin
         victim := e;
         raise Exit
       end;
       if e.last_use < !victim.last_use then victim := e
     done
   with Exit -> ());
  let e = !victim in
  e.vpn <- vpn;
  e.pte <- pte;
  e.valid <- true;
  e.last_use <- tick t

(* [insert] that also returns the handle of the entry written, so callers
   maintaining a same-page memo can capture it without a separate scan. *)
let insert_handle t ~vpn ~pte =
  insert t ~vpn ~pte;
  match peek t ~vpn with Some e -> e | None -> assert false

(* Fault-injection backdoor (roload-chaos): mutate the cached leaf PTE of
   the entry holding [vpn] in place, with no accounting whatsoever (no
   clock tick, no stats, no recency) — this models a soft error striking
   the TLB's key/permission bits while the entry stays resident.  Returns
   whether an entry was corrupted; [false] means [vpn] is not currently
   cached and the fault landed in thin air. *)
let corrupt t ~vpn ~f =
  match peek t ~vpn with
  | Some e ->
    e.pte <- f e.pte;
    true
  | None -> false

(* Invalidate a single translation (used by mprotect/mprotect_key — an
   sfence.vma analogue). *)
let invalidate t ~vpn =
  Array.iter (fun e -> if e.valid && e.vpn = vpn then e.valid <- false) t.entries

let flush t =
  Array.iter (fun e -> e.valid <- false) t.entries;
  t.stats.flushes <- t.stats.flushes + 1

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.flushes <- 0

(* ---- snapshots ----
   The image is a deep copy of every entry plus the LRU clock and the
   statistics, so a restored TLB replays byte-identically (same hits,
   misses, evictions).  Restore mutates the existing entry records in
   place: outstanding handles keep their identity, and [rehit]'s
   [valid && vpn = vpn] guard makes any stale handle fall back to a full
   lookup — exactly the contract live invalidation already relies on.
   The observer is deliberately not captured (it is per-run wiring). *)

type image = {
  i_entries : (int * Pte.t * int * bool) array;
  i_clock : int;
  i_hits : int;
  i_misses : int;
  i_flushes : int;
}

let snapshot t =
  {
    i_entries = Array.map (fun e -> (e.vpn, e.pte, e.last_use, e.valid)) t.entries;
    i_clock = t.clock;
    i_hits = t.stats.hits;
    i_misses = t.stats.misses;
    i_flushes = t.stats.flushes;
  }

let restore t img =
  if Array.length img.i_entries <> Array.length t.entries then
    invalid_arg "Tlb.restore: size mismatch";
  Array.iteri
    (fun i (vpn, pte, last_use, valid) ->
      let e = t.entries.(i) in
      e.vpn <- vpn;
      e.pte <- pte;
      e.last_use <- last_use;
      e.valid <- valid)
    img.i_entries;
  t.clock <- img.i_clock;
  t.stats.hits <- img.i_hits;
  t.stats.misses <- img.i_misses;
  t.stats.flushes <- img.i_flushes

let occupancy t =
  Array.fold_left (fun acc e -> if e.valid then acc + 1 else acc) 0 t.entries
