(** Fully-associative TLB with true-LRU replacement.  Entries cache whole
    leaf PTEs, including the ROLoad key field. *)

type t

type stats = { mutable hits : int; mutable misses : int; mutable flushes : int }

val create : name:string -> entries:int -> t
val name : t -> string
val size : t -> int
val stats : t -> stats

val set_observer : t -> (vpn:int -> hit:bool -> unit) option -> unit
(** Optional tracing tap, fired once per accounted lookup (including
    handle rehits).  Observers must not touch TLB state; with no observer
    the hot-path cost is a single option check. *)

val lookup : t -> int -> Pte.t option
(** [lookup t vpn] returns the cached leaf PTE and updates LRU/stats. *)

type handle
(** Names the entry that produced a hit, for the same-page fast paths. *)

val lookup_handle : t -> int -> (Pte.t * handle) option
(** Exactly [lookup], additionally returning the hit entry's handle. *)

val peek : t -> vpn:int -> handle option
(** Locate the entry caching [vpn] with no accounting whatsoever (no clock
    tick, no recency update, no stats) — for capturing a handle after a
    translation that already accounted for the access. *)

val rehit : t -> vpn:int -> handle -> Pte.t option
(** Replay a hit on [handle] with the exact accounting [lookup] performs
    (clock tick, recency, hit counter) — provided the entry still caches
    [vpn].  Returns [None] with {i no} accounting otherwise; the caller must
    then fall back to [lookup], keeping observable TLB state identical to a
    plain [lookup] sequence. *)

val rehit_many : t -> vpn:int -> handle -> n:int -> bool
(** [n] consecutive {!rehit}s on the same entry, batched into O(1) state
    updates (clock advanced by [n], recency at the final clock value,
    [n] hits counted) — the trace engine's per-segment I-TLB accounting.
    Returns [false] with {i no} accounting when the entry no longer
    caches [vpn]; [true] without accounting when [n <= 0]. *)

val insert : t -> vpn:int -> pte:Pte.t -> unit

val insert_handle : t -> vpn:int -> pte:Pte.t -> handle
(** [insert] returning the handle of the entry written. *)

val corrupt : t -> vpn:int -> f:(Pte.t -> Pte.t) -> bool
(** Fault-injection backdoor (roload-chaos): mutate the cached PTE of the
    entry holding [vpn] in place, with no accounting — a soft error
    striking a resident TLB entry.  [false] when [vpn] is not cached. *)

val invalidate : t -> vpn:int -> unit
val flush : t -> unit
val reset_stats : t -> unit
val occupancy : t -> int

type image
(** Deep copy of entries + LRU clock + statistics; immutable once taken. *)

val snapshot : t -> image

val restore : t -> image -> unit
(** Overwrite [t]'s entries/clock/stats with the image, in place (entry
    identity is preserved, so outstanding handles safely revalidate or
    fall back through {!rehit}'s guard).  The observer is untouched. *)
