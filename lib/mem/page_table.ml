(* Sv39 three-level page tables living in simulated physical memory.

   A page table is identified by the physical page number of its root
   (the satp PPN).  Mapping operations allocate intermediate table pages
   through the caller-supplied frame allocator (the kernel owns physical
   frames). *)

let page_shift = 12
let page_size = 1 lsl page_shift
let levels = 3
let index_bits = 9
let entries_per_table = 1 lsl index_bits

type t = {
  mem : Phys_mem.t;
  root_ppn : int;
  alloc_frame : unit -> int; (* returns a zeroed frame's PPN *)
}

type walk_result = {
  pte : Pte.t;
  pte_addr : int; (* physical address of the leaf PTE *)
  level : int; (* 0 = 4KiB leaf *)
  steps : int; (* memory accesses performed by the walker *)
}

type walk_error = Not_mapped | Bad_alignment

let create ~mem ~alloc_frame =
  let root_ppn = alloc_frame () in
  { mem; root_ppn; alloc_frame }

(* Rebuild the walker over an existing root (snapshot forks: the table
   contents already live inside the forked physical memory; only the
   OCaml-side handle needs re-wiring to the new [mem]). *)
let with_root ~mem ~root_ppn ~alloc_frame = { mem; root_ppn; alloc_frame }

let root_ppn t = t.root_ppn

let vpn_index va level =
  (* level 2 is the root index, level 0 the leaf index *)
  (va lsr (page_shift + (index_bits * level))) land (entries_per_table - 1)

let pte_addr ~table_ppn ~index = (table_ppn lsl page_shift) + (index * 8)

let read_pte t ~table_ppn ~index =
  Pte.of_int64 (Phys_mem.read_u64 t.mem (pte_addr ~table_ppn ~index))

let write_pte t ~table_ppn ~index pte =
  Phys_mem.write_u64 t.mem (pte_addr ~table_ppn ~index) (Pte.to_int64 pte)

(* Walk to the leaf PTE for [va].  Counts each PTE fetch in [steps] so the
   timing model can charge the page-table walk on TLB misses. *)
let walk t va =
  let rec go table_ppn level steps =
    let index = vpn_index va level in
    let addr = pte_addr ~table_ppn ~index in
    let pte = read_pte t ~table_ppn ~index in
    let steps = steps + 1 in
    if not (Pte.valid pte) then Error Not_mapped
    else if Pte.is_leaf pte then
      if level > 0 then Error Bad_alignment (* no superpages in this design *)
      else Ok { pte; pte_addr = addr; level; steps }
    else if level = 0 then Error Not_mapped
    else go (Pte.ppn pte) (level - 1) steps
  in
  go t.root_ppn (levels - 1) 0

(* Ensure intermediate tables exist down to level 0 and return the leaf
   table's PPN. *)
let ensure_leaf_table t va =
  let rec go table_ppn level =
    if level = 0 then table_ppn
    else
      let index = vpn_index va level in
      let pte = read_pte t ~table_ppn ~index in
      let next_ppn =
        if Pte.valid pte then begin
          if Pte.is_leaf pte then invalid_arg "Page_table: leaf where table expected";
          Pte.ppn pte
        end
        else begin
          let ppn = t.alloc_frame () in
          write_pte t ~table_ppn ~index (Pte.make_table ~ppn);
          ppn
        end
      in
      go next_ppn (level - 1)
  in
  go t.root_ppn (levels - 1)

let map_page t ~va ~ppn ~perms ~user ~key =
  if va land (page_size - 1) <> 0 then invalid_arg "Page_table.map_page: unaligned va";
  let table_ppn = ensure_leaf_table t va in
  write_pte t ~table_ppn ~index:(vpn_index va 0) (Pte.make ~ppn ~perms ~user ~key)

let unmap_page t ~va =
  match walk t va with
  | Error (Not_mapped | Bad_alignment) -> ()
  | Ok { pte_addr; _ } -> Phys_mem.write_u64 t.mem pte_addr (Pte.to_int64 Pte.invalid_pte)

(* Kernel-side helpers used by mprotect/mprotect_key: rewrite the leaf PTE
   in place. *)
let update_page t ~va ~f =
  match walk t va with
  | Error e -> Error e
  | Ok { pte; pte_addr; _ } ->
    Phys_mem.write_u64 t.mem pte_addr (Pte.to_int64 (f pte));
    Ok ()

let set_perms t ~va ~perms = update_page t ~va ~f:(fun pte -> Pte.with_perms pte perms)
let set_key t ~va ~key = update_page t ~va ~f:(fun pte -> Pte.with_key pte key)

let translate_exn t va =
  match walk t va with
  | Ok { pte; _ } -> (Pte.ppn pte lsl page_shift) lor (va land (page_size - 1))
  | Error Not_mapped -> raise Not_found
  | Error Bad_alignment -> raise Not_found

(* Enumerate mapped pages (for memory-usage accounting and debugging). *)
let iter_mappings t ~f =
  let root = t.root_ppn in
  for i2 = 0 to entries_per_table - 1 do
    let pte2 = read_pte t ~table_ppn:root ~index:i2 in
    if Pte.valid pte2 && not (Pte.is_leaf pte2) then
      for i1 = 0 to entries_per_table - 1 do
        let pte1 = read_pte t ~table_ppn:(Pte.ppn pte2) ~index:i1 in
        if Pte.valid pte1 && not (Pte.is_leaf pte1) then
          for i0 = 0 to entries_per_table - 1 do
            let pte0 = read_pte t ~table_ppn:(Pte.ppn pte1) ~index:i0 in
            if Pte.valid pte0 && Pte.is_leaf pte0 then
              let va =
                (i2 lsl (page_shift + (2 * index_bits)))
                lor (i1 lsl (page_shift + index_bits))
                lor (i0 lsl page_shift)
              in
              f ~va ~pte:pte0
          done
      done
  done

let mapped_pages t =
  let n = ref 0 in
  iter_mappings t ~f:(fun ~va:_ ~pte:_ -> incr n);
  !n

(* Fault-injection backdoor (roload-chaos): rewrite the leaf PTE of [va]
   through an arbitrary transformation, bypassing the kernel's
   mprotect/mprotect_key policy — this models in-memory PTE corruption
   (rowhammer-style bit flips, a compromised DMA agent).  TLB copies are
   untouched; the injector decides whether to also evict them. *)
let tamper = update_page
