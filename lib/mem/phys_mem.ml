(* Paged physical memory with copy-on-write snapshots.  All accesses are
   little-endian.  Out-of-range accesses raise [Out_of_range]; virtual-
   address permission enforcement happens above this layer, in the MMU.

   Memory is an array of 4 KiB pages plus a per-page ownership byte.  A
   snapshot freezes the current pages: it keeps a pointer copy of the
   page array and clears every ownership byte, so the live memory and
   the image share pages until the next store to each — the first store
   to an un-owned page copies that one page (copy-on-write).  Frozen
   image pages are never written again, which makes an [image] safe to
   share read-only across domains and makes [fork] O(page-count pointer
   copies) instead of O(memory size): a forked 64 MiB machine allocates
   nothing until it actually dirties pages. *)

exception Out_of_range of int

let page_shift = 12
let page_bytes = 1 lsl page_shift
let page_mask = page_bytes - 1

type t = {
  pages : Bytes.t array;
  owned : Bytes.t; (* one byte per page; '\001' = this [t] may write in place *)
  size : int;
}

type image = { i_pages : Bytes.t array; i_size : int }

let create ~size =
  if size <= 0 then invalid_arg "Phys_mem.create";
  let npages = (size + page_bytes - 1) / page_bytes in
  {
    pages = Array.init npages (fun _ -> Bytes.make page_bytes '\000');
    owned = Bytes.make npages '\001';
    size;
  }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then raise (Out_of_range addr)

(* Copy-on-write fault: the first store into a page shared with a frozen
   image copies the page and takes ownership. *)
let own_page t p =
  if Bytes.unsafe_get t.owned p <> '\001' then begin
    Array.unsafe_set t.pages p (Bytes.copy (Array.unsafe_get t.pages p));
    Bytes.unsafe_set t.owned p '\001'
  end

let snapshot t =
  let img = { i_pages = Array.copy t.pages; i_size = t.size } in
  Bytes.fill t.owned 0 (Array.length t.pages) '\000';
  img

let restore t img =
  if img.i_size <> t.size then invalid_arg "Phys_mem.restore: size mismatch";
  Array.blit img.i_pages 0 t.pages 0 (Array.length t.pages);
  Bytes.fill t.owned 0 (Array.length t.pages) '\000'

let fork img =
  {
    pages = Array.copy img.i_pages;
    owned = Bytes.make (Array.length img.i_pages) '\000';
    size = img.i_size;
  }

type page_diff = { page : int; addr : int; a_byte : int; b_byte : int }

(* Page-by-page comparator.  Pages still physically shared between the
   two images (the common case for twin forks of one snapshot) compare
   equal by pointer in O(1), so diffing two forks costs O(page count)
   plus a byte scan of only the pages either side dirtied. *)
let diff_images a b =
  if a.i_size <> b.i_size then invalid_arg "Phys_mem.diff_images: size mismatch";
  let out = ref [] in
  for p = Array.length a.i_pages - 1 downto 0 do
    let pa = a.i_pages.(p) and pb = b.i_pages.(p) in
    if pa != pb && not (Bytes.equal pa pb) then begin
      let off = ref 0 in
      while Bytes.unsafe_get pa !off = Bytes.unsafe_get pb !off do
        incr off
      done;
      out :=
        {
          page = p;
          addr = (p lsl page_shift) + !off;
          a_byte = Char.code (Bytes.get pa !off);
          b_byte = Char.code (Bytes.get pb !off);
        }
        :: !out
    end
  done;
  !out

(* ---- accessors ----
   Aligned power-of-two accesses never straddle a page; the unaligned
   straddling case (reachable only through backdoors and block copies)
   falls back to a byte loop. *)

let read_u8 t addr =
  check t addr 1;
  Char.code
    (Bytes.unsafe_get (Array.unsafe_get t.pages (addr lsr page_shift)) (addr land page_mask))

let write_u8 t addr v =
  check t addr 1;
  let p = addr lsr page_shift in
  own_page t p;
  Bytes.unsafe_set (Array.unsafe_get t.pages p) (addr land page_mask)
    (Char.unsafe_chr (v land 0xFF))

let rec read_le t addr len =
  if len = 0 then 0L
  else
    Int64.logor
      (Int64.of_int (read_u8 t addr))
      (Int64.shift_left (read_le t (addr + 1) (len - 1)) 8)

let write_le t addr len v =
  for i = 0 to len - 1 do
    write_u8 t (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let read_u16 t addr =
  check t addr 2;
  let off = addr land page_mask in
  if off <= page_bytes - 2 then
    Bytes.get_uint16_le (Array.unsafe_get t.pages (addr lsr page_shift)) off
  else Int64.to_int (read_le t addr 2)

let write_u16 t addr v =
  check t addr 2;
  let off = addr land page_mask in
  if off <= page_bytes - 2 then begin
    let p = addr lsr page_shift in
    own_page t p;
    Bytes.set_uint16_le (Array.unsafe_get t.pages p) off (v land 0xFFFF)
  end
  else write_le t addr 2 (Int64.of_int v)

let read_u32 t addr =
  check t addr 4;
  let off = addr land page_mask in
  if off <= page_bytes - 4 then
    Int32.to_int (Bytes.get_int32_le (Array.unsafe_get t.pages (addr lsr page_shift)) off)
    land 0xFFFFFFFF
  else Int64.to_int (read_le t addr 4)

let write_u32 t addr v =
  check t addr 4;
  let off = addr land page_mask in
  if off <= page_bytes - 4 then begin
    let p = addr lsr page_shift in
    own_page t p;
    Bytes.set_int32_le (Array.unsafe_get t.pages p) off (Int32.of_int v)
  end
  else write_le t addr 4 (Int64.of_int v)

let read_u64 t addr =
  check t addr 8;
  let off = addr land page_mask in
  if off <= page_bytes - 8 then
    Bytes.get_int64_le (Array.unsafe_get t.pages (addr lsr page_shift)) off
  else read_le t addr 8

let write_u64 t addr v =
  check t addr 8;
  let off = addr land page_mask in
  if off <= page_bytes - 8 then begin
    let p = addr lsr page_shift in
    own_page t p;
    Bytes.set_int64_le (Array.unsafe_get t.pages p) off v
  end
  else write_le t addr 8 v

let read_string t ~addr ~len =
  check t addr len;
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = a land page_mask in
    let n = min (len - !pos) (page_bytes - off) in
    Bytes.blit (Array.unsafe_get t.pages (a lsr page_shift)) off buf !pos n;
    pos := !pos + n
  done;
  Bytes.unsafe_to_string buf

let write_string t ~addr s =
  let len = String.length s in
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let p = a lsr page_shift and off = a land page_mask in
    let n = min (len - !pos) (page_bytes - off) in
    own_page t p;
    Bytes.blit_string s !pos (Array.unsafe_get t.pages p) off n;
    pos := !pos + n
  done

let fill t ~addr ~len byte =
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let p = a lsr page_shift and off = a land page_mask in
    let n = min (len - !pos) (page_bytes - off) in
    own_page t p;
    Bytes.fill (Array.unsafe_get t.pages p) off n byte;
    pos := !pos + n
  done

(* Fault-injection backdoor (roload-chaos): invert one bit of the 64-bit
   word at [addr], bypassing the MMU entirely — the DRAM-disturbance
   model for flips inside read-only (key-protected) frames that no store
   instruction could reach. *)
let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Phys_mem.flip_bit";
  write_u64 t addr (Int64.logxor (read_u64 t addr) (Int64.shift_left 1L bit))
