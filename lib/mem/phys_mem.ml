(* Flat physical memory.  All accesses are little-endian.  Out-of-range
   accesses raise [Out_of_range]; virtual-address permission enforcement
   happens above this layer, in the MMU. *)

exception Out_of_range of int

type t = { data : Bytes.t; size : int }

let create ~size =
  if size <= 0 then invalid_arg "Phys_mem.create";
  { data = Bytes.make size '\000'; size }

let size t = t.size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then raise (Out_of_range addr)

let read_u8 t addr =
  check t addr 1;
  Bytes.get_uint8 t.data addr

let write_u8 t addr v =
  check t addr 1;
  Bytes.set_uint8 t.data addr (v land 0xFF)

let read_u16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

let write_u16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let read_u32 t addr =
  check t addr 4;
  Int32.to_int (Bytes.get_int32_le t.data addr) land 0xFFFFFFFF

let write_u32 t addr v =
  check t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int v)

let read_u64 t addr =
  check t addr 8;
  Bytes.get_int64_le t.data addr

let write_u64 t addr v =
  check t addr 8;
  Bytes.set_int64_le t.data addr v

let read_string t ~addr ~len =
  check t addr len;
  Bytes.sub_string t.data addr len

let write_string t ~addr s =
  let len = String.length s in
  check t addr len;
  Bytes.blit_string s 0 t.data addr len

let fill t ~addr ~len byte =
  check t addr len;
  Bytes.fill t.data addr len byte

(* Fault-injection backdoor (roload-chaos): invert one bit of the 64-bit
   word at [addr], bypassing the MMU entirely — the DRAM-disturbance
   model for flips inside read-only (key-protected) frames that no store
   instruction could reach. *)
let flip_bit t ~addr ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Phys_mem.flip_bit";
  write_u64 t addr (Int64.logxor (read_u64 t addr) (Int64.shift_left 1L bit))
