(** Sv39 three-level page tables living in simulated physical memory.
    4 KiB pages only (no superpages). *)

val page_shift : int
val page_size : int

type t

type walk_result = {
  pte : Pte.t;
  pte_addr : int;  (** physical address of the leaf PTE *)
  level : int;
  steps : int;  (** PTE fetches performed — charged by the timing model *)
}

type walk_error = Not_mapped | Bad_alignment

val create : mem:Phys_mem.t -> alloc_frame:(unit -> int) -> t
(** Allocates the root table from [alloc_frame] (which must return zeroed
    frames). *)

val with_root : mem:Phys_mem.t -> root_ppn:int -> alloc_frame:(unit -> int) -> t
(** A walker over an existing root table — used when forking a snapshot,
    where the table pages already exist inside the forked memory. *)

val root_ppn : t -> int
val walk : t -> int -> (walk_result, walk_error) result

val map_page : t -> va:int -> ppn:int -> perms:Perm.t -> user:bool -> key:int -> unit
(** Map one 4 KiB page; [va] must be page-aligned. Intermediate tables are
    allocated on demand. *)

val unmap_page : t -> va:int -> unit
val set_perms : t -> va:int -> perms:Perm.t -> (unit, walk_error) result
val set_key : t -> va:int -> key:int -> (unit, walk_error) result

val tamper : t -> va:int -> f:(Pte.t -> Pte.t) -> (unit, walk_error) result
(** Fault-injection backdoor (roload-chaos): rewrite the leaf PTE of
    [va] through [f], bypassing kernel policy — models in-memory PTE
    corruption.  Cached TLB copies are left untouched. *)

val translate_exn : t -> int -> int
(** Physical address for [va]; raises [Not_found] when unmapped. For
    kernel-side (non-checked) access. *)

val iter_mappings : t -> f:(va:int -> pte:Pte.t -> unit) -> unit
val mapped_pages : t -> int
