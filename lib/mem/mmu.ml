(* The MMU front-end: TLB lookup, page-table walk on miss, and the access
   check.  The ROLoad extension adds one extra condition, evaluated in
   parallel with the conventional permission check and ANDed with it
   (paper §II-E1): for a [Perm.Roload key] access the page must be
   read-only (R, ¬W, ¬X) and its PTE key must equal the instruction key. *)

type fault =
  | Page_fault of { va : int; access : Perm.access }
      (* conventional fault: unmapped page or permission violation *)
  | Roload_fault of { va : int; key_requested : int; page_key : int; page_perms : Perm.t }
      (* the new fault class: the page is mapped and loadable, but fails
         the ROLoad read-only/key condition *)

let fault_to_string = function
  | Page_fault { va; access } ->
    Printf.sprintf "page fault at 0x%x (%s)" va (Perm.access_to_string access)
  | Roload_fault { va; key_requested; page_key; page_perms } ->
    Printf.sprintf "ROLoad fault at 0x%x (key %d requested, page key %d, perms %s)"
      va key_requested page_key (Perm.to_string page_perms)

type translation = {
  pa : int;
  tlb_hit : bool;
  walk_steps : int; (* PTE fetches performed on a TLB miss *)
}

(* Cumulative fault counts, by triage class.  ROLoad faults split on
   which half of the R∧¬W∧¬X ∧ key=key condition failed — the metrics
   snapshot reports the two separately. *)
type fault_counts = {
  mutable page_faults : int;
  mutable roload_key_mismatch : int; (* read-only page, wrong key *)
  mutable roload_not_readonly : int; (* pointee page writable/executable *)
}

type t = {
  page_table : Page_table.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  fault_counts : fault_counts;
  roload_check_enabled : bool;
      (* false on the baseline processor, which has no key-check logic.
         The baseline also refuses to *decode* ld.ro; this flag exists so
         the MMU model is meaningful on its own. *)
  mutable i_memo : (int * Tlb.handle) option;
  mutable d_memo : (int * Tlb.handle) option;
      (* Same-page fast path: the (vpn, entry) of the last successful I-side
         and D-side translation.  A repeated access to the memoized page
         replays the TLB hit through [Tlb.rehit] — whose accounting (clock,
         recency, hit counter) is exactly what the full lookup would have
         done — and skips the associative scan.  The memos never change what
         is simulated, only how fast; they are dropped on invalidate/flush
         and self-check against entry recycling via [rehit]'s vpn guard. *)
}

let create ~page_table ~itlb_entries ~dtlb_entries ~roload_check_enabled =
  {
    page_table;
    itlb = Tlb.create ~name:"I-TLB" ~entries:itlb_entries;
    dtlb = Tlb.create ~name:"D-TLB" ~entries:dtlb_entries;
    fault_counts = { page_faults = 0; roload_key_mismatch = 0; roload_not_readonly = 0 };
    roload_check_enabled;
    i_memo = None;
    d_memo = None;
  }

let itlb t = t.itlb
let dtlb t = t.dtlb
let page_table t = t.page_table
let fault_counts t = t.fault_counts

(* Count a fault at its construction site, so every path out of
   [translate] is triaged exactly once. *)
let record_fault t f =
  (match f with
  | Page_fault _ -> t.fault_counts.page_faults <- t.fault_counts.page_faults + 1
  | Roload_fault { page_perms; _ } ->
    if Perm.read_only page_perms then
      t.fault_counts.roload_key_mismatch <- t.fault_counts.roload_key_mismatch + 1
    else t.fault_counts.roload_not_readonly <- t.fault_counts.roload_not_readonly + 1);
  f

let tlb_for t (access : Perm.access) =
  match access with
  | Perm.Fetch -> t.itlb
  | Perm.Load | Perm.Store | Perm.Roload _ -> t.dtlb

(* The extra ROLoad condition.  [true] means "allowed". *)
let roload_check t ~access ~pte =
  match access with
  | Perm.Fetch | Perm.Load | Perm.Store -> true
  | Perm.Roload key ->
    (not t.roload_check_enabled)
    || (Perm.read_only (Pte.perms pte) && Pte.key pte = key)

let check t ~va ~access pte =
  let perms = Pte.perms pte in
  (* Conventional check: user bit (all simulated execution is user-mode)
     and R/W/X permission. *)
  if not (Pte.user pte && Perm.allows perms access) then
    Error (record_fault t (Page_fault { va; access }))
  else if not (roload_check t ~access ~pte) then
    match access with
    | Perm.Roload key ->
      Error
        (record_fault t
           (Roload_fault
              { va; key_requested = key; page_key = Pte.key pte; page_perms = perms }))
    | Perm.Fetch | Perm.Load | Perm.Store -> assert false
  else Ok ()

let page_mask = Page_table.page_size - 1

let set_memo t (access : Perm.access) memo =
  match access with
  | Perm.Fetch -> t.i_memo <- memo
  | Perm.Load | Perm.Store | Perm.Roload _ -> t.d_memo <- memo

let memo_for t (access : Perm.access) =
  match access with
  | Perm.Fetch -> t.i_memo
  | Perm.Load | Perm.Store | Perm.Roload _ -> t.d_memo

(* The slow path: full TLB lookup, walk on miss.  Factored out of
   [translate] so the same-page memo fast path stays small. *)
let translate_slow t ~access ~vpn va =
  let tlb = tlb_for t access in
  match Tlb.lookup_handle tlb vpn with
  | Some (pte, handle) -> (
    set_memo t access (Some (vpn, handle));
    match check t ~va ~access pte with
    | Ok () ->
      Ok { pa = (Pte.ppn pte lsl Page_table.page_shift) lor (va land page_mask);
           tlb_hit = true; walk_steps = 0 }
    | Error f -> Error f)
  | None -> (
    match Page_table.walk t.page_table va with
    | Error (Page_table.Not_mapped | Page_table.Bad_alignment) ->
      Error (record_fault t (Page_fault { va; access }))
    | Ok { pte; steps; _ } -> (
      let handle = Tlb.insert_handle tlb ~vpn ~pte in
      set_memo t access (Some (vpn, handle));
      match check t ~va ~access pte with
      | Ok () ->
        Ok { pa = (Pte.ppn pte lsl Page_table.page_shift) lor (va land page_mask);
             tlb_hit = false; walk_steps = steps }
      | Error f -> Error f))

let translate t ~access va =
  if va < 0 then Error (record_fault t (Page_fault { va; access }))
  else
    let vpn = va lsr Page_table.page_shift in
    match memo_for t access with
    | Some (mvpn, handle) when mvpn = vpn -> (
      match Tlb.rehit (tlb_for t access) ~vpn handle with
      | Some pte -> (
        (* the entry still caches this page: rehit performed the exact hit
           accounting the full lookup would have *)
        match check t ~va ~access pte with
        | Ok () ->
          Ok { pa = (Pte.ppn pte lsl Page_table.page_shift) lor (va land page_mask);
               tlb_hit = true; walk_steps = 0 }
        | Error f -> Error f)
      | None ->
        (* entry invalidated or recycled since: no accounting happened, so
           the full path below observes a pristine TLB *)
        set_memo t access None;
        translate_slow t ~access ~vpn va)
    | Some _ | None -> translate_slow t ~access ~vpn va

(* Chain-site translation memo support (trace engine).  Replay an I-side
   hit on a handle the chain site captured earlier: [Tlb.rehit] performs
   the exact hit accounting a full [translate] would have, then the
   permission check re-runs against the PTE the entry holds *now* (it
   may have been corrupted in place since — the roload-chaos TLB fault
   model), and the physical address is recomputed from that same PTE.
   [None] means the entry no longer caches [vpn]; no accounting happened
   and the caller must fall back to the full [translate]. *)
let rehit_fetch t ~vpn ~handle va =
  match Tlb.rehit t.itlb ~vpn handle with
  | None -> None
  | Some pte ->
    Some
      (match check t ~va ~access:Perm.Fetch pte with
      | Ok () ->
        Ok
          { pa = (Pte.ppn pte lsl Page_table.page_shift) lor (va land page_mask);
            tlb_hit = true; walk_steps = 0 }
      | Error f -> Error f)

(* Invalidate cached translations for [va] in both TLBs (sfence.vma
   analogue, used after mprotect/mprotect_key). *)
let invalidate t ~va =
  let vpn = va lsr Page_table.page_shift in
  Tlb.invalidate t.itlb ~vpn;
  Tlb.invalidate t.dtlb ~vpn;
  t.i_memo <- None;
  t.d_memo <- None

let flush t =
  Tlb.flush t.itlb;
  Tlb.flush t.dtlb;
  t.i_memo <- None;
  t.d_memo <- None

(* ---- snapshots ----
   Both TLB images plus the fault triage counters.  The same-page memos
   are deliberately *not* captured and are dropped on restore: they are
   accounting-neutral by construction ([rehit] performs exactly the
   accounting [lookup] would), so their presence or absence never shows
   in any counter — only in wall-clock speed. *)

type image = {
  im_itlb : Tlb.image;
  im_dtlb : Tlb.image;
  im_page_faults : int;
  im_roload_key_mismatch : int;
  im_roload_not_readonly : int;
}

let snapshot t =
  {
    im_itlb = Tlb.snapshot t.itlb;
    im_dtlb = Tlb.snapshot t.dtlb;
    im_page_faults = t.fault_counts.page_faults;
    im_roload_key_mismatch = t.fault_counts.roload_key_mismatch;
    im_roload_not_readonly = t.fault_counts.roload_not_readonly;
  }

let restore t img =
  Tlb.restore t.itlb img.im_itlb;
  Tlb.restore t.dtlb img.im_dtlb;
  t.fault_counts.page_faults <- img.im_page_faults;
  t.fault_counts.roload_key_mismatch <- img.im_roload_key_mismatch;
  t.fault_counts.roload_not_readonly <- img.im_roload_not_readonly;
  t.i_memo <- None;
  t.d_memo <- None
