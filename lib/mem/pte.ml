(* Sv39 page-table entries, extended with the ROLoad key.

   Standard layout (64-bit):
     bit 0   V     valid
     bit 1   R     readable
     bit 2   W     writable
     bit 3   X     executable
     bit 4   U     user-accessible
     bit 5   G     global
     bit 6   A     accessed
     bit 7   D     dirty
     bits 9:8     RSW (software)
     bits 53:10   PPN
     bits 63:54   reserved — ROLoad reuses these 10 bits as the page *key*
                  (paper §III-A: "we reuse the previously reserved top 10
                  bits of each page table entry"). *)

type t = int64

let v_bit = 0
let r_bit = 1
let w_bit = 2
let x_bit = 3
let u_bit = 4
let g_bit = 5
let a_bit = 6
let d_bit = 7

let ppn_lo = 10
let ppn_width = 44
let key_lo = 54
let key_width = 10

let invalid_pte = 0L

let make ~ppn ~perms ~user ~key =
  if key < 0 || key >= 1 lsl key_width then invalid_arg "Pte.make: key out of range";
  if ppn < 0 then invalid_arg "Pte.make: negative ppn";
  let open Roload_util.Bits in
  let t = 0L in
  let t = set_bit t v_bit true in
  let t = set_bit t r_bit perms.Perm.r in
  let t = set_bit t w_bit perms.Perm.w in
  let t = set_bit t x_bit perms.Perm.x in
  let t = set_bit t u_bit user in
  let t = set_bit t a_bit true in
  let t = set_bit t d_bit perms.Perm.w in
  let t = insert t ~lo:ppn_lo ~width:ppn_width ~field:(Int64.of_int ppn) in
  insert t ~lo:key_lo ~width:key_width ~field:(Int64.of_int key)

(* A non-leaf (pointer) PTE: V set, R/W/X all clear. *)
let make_table ~ppn =
  let open Roload_util.Bits in
  let t = set_bit 0L v_bit true in
  insert t ~lo:ppn_lo ~width:ppn_width ~field:(Int64.of_int ppn)

let valid t = Roload_util.Bits.bit t v_bit
let readable t = Roload_util.Bits.bit t r_bit
let writable t = Roload_util.Bits.bit t w_bit
let executable t = Roload_util.Bits.bit t x_bit
let user t = Roload_util.Bits.bit t u_bit
let global t = Roload_util.Bits.bit t g_bit
let accessed t = Roload_util.Bits.bit t a_bit
let dirty t = Roload_util.Bits.bit t d_bit

let is_leaf t = readable t || writable t || executable t
let ppn t = Roload_util.Bits.extract_int t ~lo:ppn_lo ~width:ppn_width
let key t = Roload_util.Bits.extract_int t ~lo:key_lo ~width:key_width

let perms t = { Perm.r = readable t; w = writable t; x = executable t }

let with_perms t p =
  let open Roload_util.Bits in
  let t = set_bit t r_bit p.Perm.r in
  let t = set_bit t w_bit p.Perm.w in
  set_bit t x_bit p.Perm.x

let with_key t k =
  if k < 0 || k >= 1 lsl key_width then invalid_arg "Pte.with_key";
  Roload_util.Bits.insert t ~lo:key_lo ~width:key_width ~field:(Int64.of_int k)

(* Fault-injection backdoor (roload-chaos): flip one bit of the key
   field, as a stuck-at/soft-error model for the reserved top bits the
   ROLoad key reuses.  Not used by any architectural path. *)
let flip_key_bit t ~bit =
  if bit < 0 || bit >= key_width then invalid_arg "Pte.flip_key_bit";
  with_key t (key t lxor (1 lsl bit))

let to_int64 t = t
let of_int64 t = t

let to_string t =
  if not (valid t) then "<invalid>"
  else if not (is_leaf t) then Printf.sprintf "table -> ppn=0x%x" (ppn t)
  else
    Printf.sprintf "leaf ppn=0x%x perms=%s key=%d%s" (ppn t)
      (Perm.to_string (perms t)) (key t)
      (if user t then " user" else "")
