(** Sv39 page-table entries extended with the ROLoad page key, stored in
    the reserved top 10 bits (paper §III-A). *)

type t

val invalid_pte : t

val make : ppn:int -> perms:Perm.t -> user:bool -> key:int -> t
(** A leaf PTE (A set; D mirrors W). Raises [Invalid_argument] if [key]
    exceeds 10 bits. *)

val make_table : ppn:int -> t
(** A non-leaf pointer PTE (V set, R/W/X clear). *)

val valid : t -> bool
val readable : t -> bool
val writable : t -> bool
val executable : t -> bool
val user : t -> bool
val global : t -> bool
val accessed : t -> bool
val dirty : t -> bool
val is_leaf : t -> bool
val ppn : t -> int
val key : t -> int
val perms : t -> Perm.t
val with_perms : t -> Perm.t -> t
val with_key : t -> int -> t

val flip_key_bit : t -> bit:int -> t
(** Fault-injection backdoor (roload-chaos): the PTE with bit [bit] of
    its 10-bit key field inverted.  Raises [Invalid_argument] when [bit]
    is outside the key field. *)

val to_int64 : t -> int64
val of_int64 : int64 -> t
val to_string : t -> string

val key_width : int
val key_lo : int
