(* The per-run metrics snapshot: one flat record aggregating every
   counter the simulator maintains — CPU retire mix, ld.ro key classes,
   cache/TLB statistics, fault triage and syscall counts, block-engine
   activity.

   The snapshot is assembled by [System.run] from counters the components
   already keep (or that this PR adds alongside them); nothing here is
   sampled from the trace ring, so metrics are exact even when the ring
   drops events, and they are available with tracing off.

   [core_equal] deliberately ignores [engine] and the [block_*]/[trace_*]
   fields: the single-step reference engine has no block cache and only
   the traced engine compiles traces, but every architectural counter
   must agree between engines — the qcheck property in test/test_obs.ml
   holds all engines to that. *)

type t = {
  engine : string; (* "single", "block" or "traced" *)
  instructions : int64;
  cycles : int64;
  (* retired instruction mix *)
  loads : int;
  stores : int;
  roloads : int; (* ld.ro loads retired, all key classes *)
  branches : int;
  jumps : int;
  indirect_jumps : int;
  (* ld.ro retirements by key class (see Roload_ext key conventions) *)
  roload_key0 : int; (* requested key 0: ordinary read-only data *)
  roload_vtable_unified : int; (* key 1: the unified vtable key (VCall) *)
  roload_typed : int; (* keys 2..1022: per-type GFPT indirections (ICall) *)
  roload_return_sites : int; (* key 1023: return-site pages (Retcall) *)
  (* memory hierarchy *)
  icache_hits : int;
  icache_misses : int;
  icache_writebacks : int;
  dcache_hits : int;
  dcache_misses : int;
  dcache_writebacks : int;
  itlb_hits : int;
  itlb_misses : int;
  dtlb_hits : int;
  dtlb_misses : int;
  (* fault triage *)
  page_faults : int;
  roload_faults_key : int; (* key mismatch on a read-only page *)
  roload_faults_ro : int; (* pointee page not R∧¬W∧¬X *)
  syscalls : int;
  (* fault injection (roload-chaos); zero outside a campaign *)
  injections : int; (* faults applied to this machine's state *)
  dropped_writebacks : int; (* D-cache writebacks the campaign suppressed *)
  (* block engine only; zero under the single-step reference engine *)
  block_enters : int;
  block_hits : int;
  block_decodes : int;
  (* traced engine only; zero elsewhere *)
  trace_enters : int; (* dispatches into a compiled trace *)
  trace_retires : int; (* instructions retired inside traces *)
  traces_compiled : int;
}

let zero =
  {
    engine = "";
    instructions = 0L;
    cycles = 0L;
    loads = 0;
    stores = 0;
    roloads = 0;
    branches = 0;
    jumps = 0;
    indirect_jumps = 0;
    roload_key0 = 0;
    roload_vtable_unified = 0;
    roload_typed = 0;
    roload_return_sites = 0;
    icache_hits = 0;
    icache_misses = 0;
    icache_writebacks = 0;
    dcache_hits = 0;
    dcache_misses = 0;
    dcache_writebacks = 0;
    itlb_hits = 0;
    itlb_misses = 0;
    dtlb_hits = 0;
    dtlb_misses = 0;
    page_faults = 0;
    roload_faults_key = 0;
    roload_faults_ro = 0;
    syscalls = 0;
    injections = 0;
    dropped_writebacks = 0;
    block_enters = 0;
    block_hits = 0;
    block_decodes = 0;
    trace_enters = 0;
    trace_retires = 0;
    traces_compiled = 0;
  }

let roload_faults m = m.roload_faults_key + m.roload_faults_ro

(* miss rate in percent; 0. when there were no accesses *)
let pct misses hits =
  let total = misses + hits in
  if total = 0 then 0. else 100. *. float_of_int misses /. float_of_int total

let dtlb_miss_pct m = pct m.dtlb_misses m.dtlb_hits
let itlb_miss_pct m = pct m.itlb_misses m.itlb_hits
let dcache_miss_pct m = pct m.dcache_misses m.dcache_hits
let icache_miss_pct m = pct m.icache_misses m.icache_hits

let core_equal a b =
  Int64.equal a.instructions b.instructions
  && Int64.equal a.cycles b.cycles
  && a.loads = b.loads && a.stores = b.stores && a.roloads = b.roloads
  && a.branches = b.branches && a.jumps = b.jumps
  && a.indirect_jumps = b.indirect_jumps
  && a.roload_key0 = b.roload_key0
  && a.roload_vtable_unified = b.roload_vtable_unified
  && a.roload_typed = b.roload_typed
  && a.roload_return_sites = b.roload_return_sites
  && a.icache_hits = b.icache_hits && a.icache_misses = b.icache_misses
  && a.icache_writebacks = b.icache_writebacks
  && a.dcache_hits = b.dcache_hits && a.dcache_misses = b.dcache_misses
  && a.dcache_writebacks = b.dcache_writebacks
  && a.itlb_hits = b.itlb_hits && a.itlb_misses = b.itlb_misses
  && a.dtlb_hits = b.dtlb_hits && a.dtlb_misses = b.dtlb_misses
  && a.page_faults = b.page_faults
  && a.roload_faults_key = b.roload_faults_key
  && a.roload_faults_ro = b.roload_faults_ro
  && a.syscalls = b.syscalls
  && a.injections = b.injections
  && a.dropped_writebacks = b.dropped_writebacks

let fields m =
  let module J = Roload_util.Json in
  [
    ("engine", J.str m.engine);
    ("instructions", J.int64 m.instructions);
    ("cycles", J.int64 m.cycles);
    ("loads", J.int m.loads);
    ("stores", J.int m.stores);
    ("roloads", J.int m.roloads);
    ("branches", J.int m.branches);
    ("jumps", J.int m.jumps);
    ("indirect_jumps", J.int m.indirect_jumps);
    ("roload_key0", J.int m.roload_key0);
    ("roload_vtable_unified", J.int m.roload_vtable_unified);
    ("roload_typed", J.int m.roload_typed);
    ("roload_return_sites", J.int m.roload_return_sites);
    ("icache_hits", J.int m.icache_hits);
    ("icache_misses", J.int m.icache_misses);
    ("icache_writebacks", J.int m.icache_writebacks);
    ("dcache_hits", J.int m.dcache_hits);
    ("dcache_misses", J.int m.dcache_misses);
    ("dcache_writebacks", J.int m.dcache_writebacks);
    ("itlb_hits", J.int m.itlb_hits);
    ("itlb_misses", J.int m.itlb_misses);
    ("dtlb_hits", J.int m.dtlb_hits);
    ("dtlb_misses", J.int m.dtlb_misses);
    ("page_faults", J.int m.page_faults);
    ("roload_faults_key", J.int m.roload_faults_key);
    ("roload_faults_ro", J.int m.roload_faults_ro);
    ("syscalls", J.int m.syscalls);
    ("injections", J.int m.injections);
    ("dropped_writebacks", J.int m.dropped_writebacks);
    ("block_enters", J.int m.block_enters);
    ("block_hits", J.int m.block_hits);
    ("block_decodes", J.int m.block_decodes);
    ("trace_enters", J.int m.trace_enters);
    ("trace_retires", J.int m.trace_retires);
    ("traces_compiled", J.int m.traces_compiled);
  ]

let to_json m = Roload_util.Json.obj (fields m)

(* ---------- the experiments metrics log ---------- *)

type labeled = { workload : string; scheme : string; m : t }

(* Stable encoding: one entry per (workload, scheme) cell, in the order
   the experiment emitted them.  CI's cycle gate scans the "cycles"
   values of this file against a committed baseline. *)
let log_to_json entries =
  let module J = Roload_util.Json in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{ \"metrics\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i e ->
      Buffer.add_string b "  ";
      Buffer.add_string b
        (J.obj
           (("workload", J.str e.workload)
            :: ("scheme", J.str e.scheme)
            :: fields e.m));
      if i < n - 1 then Buffer.add_string b ",";
      Buffer.add_char b '\n')
    entries;
  Buffer.add_string b "] }\n";
  Buffer.contents b
