(* The typed event vocabulary of the observability layer.

   Events are deliberately flat (ints, bools, short strings) so the layer
   sits below every simulator library: the machine, MMU, caches and kernel
   construct these without this library knowing about instructions, PTEs
   or signals.  Each event is stamped with the cycle counter by the tracer
   at emit time; the event itself carries only the payload. *)

type inst_class =
  | C_alu (* integer ALU, lui/auipc, fences *)
  | C_load
  | C_store
  | C_roload (* the ld.ro family *)
  | C_branch
  | C_jump (* jal, and jalr returns *)
  | C_indirect (* non-return jalr *)
  | C_muldiv
  | C_system (* ecall/ebreak *)

let inst_class_name = function
  | C_alu -> "alu"
  | C_load -> "load"
  | C_store -> "store"
  | C_roload -> "ld.ro"
  | C_branch -> "branch"
  | C_jump -> "jump"
  | C_indirect -> "indirect-jump"
  | C_muldiv -> "muldiv"
  | C_system -> "system"

type side = I | D

let side_name = function I -> "I" | D -> "D"

type t =
  | Retired of { pc : int; cls : inst_class }
      (* one instruction left the pipeline *)
  | Roload_issue of { pc : int; va : int; key : int }
      (* an ld.ro reached the MMU with its requested key *)
  | Roload_fault of {
      pc : int;
      va : int;
      key_requested : int;
      page_key : int;
      page_read_only : bool;
          (* false: the pointee page failed the R∧¬W∧¬X condition;
             true: the page is read-only but the key mismatched *)
    }
  | Tlb_access of { side : side; vpn : int; hit : bool }
  | Cache_access of { side : side; pa : int; write : bool; hit : bool; writeback : bool }
  | Block_enter of { pa : int; cached : bool }
      (* the block engine entered a block; [cached] = found pre-decoded *)
  | Block_decode of { pa : int } (* one slot lazily decoded and appended *)
  | Fault_triage of { kind : string; pc : int }
      (* the kernel classified a trap (e.g. "roload" vs "segv") *)
  | Syscall of { number : int; name : string; ret : int }
  | Request_done of { pid : int; id : int; latency : int }
      (* the request device retired request [id]: the serving task asked
         for the next one (or exited); [latency] in cycles *)
  | Injected of { kind : string; addr : int }
      (* roload-chaos applied a fault at this address (class in [kind]) *)
  | Request_redelivered of { id : int; attempt : int }
      (* the device took request [id] back from a dead worker and queued
         it again; [attempt] counts redeliveries of this id so far *)
  | Worker_restart of { pid : int; restarts : int }
      (* the supervisor reincarnated task [pid] from its birth template;
         [restarts] is the budget consumed by this pid so far *)

let name = function
  | Retired { cls; _ } -> "retire:" ^ inst_class_name cls
  | Roload_issue _ -> "ld.ro"
  | Roload_fault _ -> "ld.ro fault"
  | Tlb_access { side; hit; _ } ->
    Printf.sprintf "%s-TLB %s" (side_name side) (if hit then "hit" else "miss")
  | Cache_access { side; hit; writeback; _ } ->
    Printf.sprintf "L1%s %s%s" (side_name side)
      (if hit then "hit" else "miss")
      (if writeback then "+wb" else "")
  | Block_enter { cached; _ } -> if cached then "block hit" else "block start"
  | Block_decode _ -> "block decode"
  | Fault_triage { kind; _ } -> "fault:" ^ kind
  | Syscall { name; _ } -> "syscall:" ^ name
  | Request_done _ -> "request"
  | Injected { kind; _ } -> "inject:" ^ kind
  | Request_redelivered _ -> "redeliver"
  | Worker_restart _ -> "restart"

(* The lane each event renders on in trace viewers (Chrome's tid). *)
let lane = function
  | Retired _ | Roload_issue _ | Roload_fault _ -> 1
  | Tlb_access _ | Cache_access _ -> 2
  | Block_enter _ | Block_decode _ -> 3
  | Fault_triage _ | Syscall _ | Request_done _ | Injected _ | Request_redelivered _
  | Worker_restart _ ->
    4

let lane_name = function
  | 1 -> "cpu"
  | 2 -> "mem"
  | 3 -> "blocks"
  | _ -> "kernel"

(* argument payload as (key, rendered-JSON-fragment) pairs *)
let args ev =
  let module J = Roload_util.Json in
  let hex v = J.str (Printf.sprintf "0x%x" v) in
  match ev with
  | Retired { pc; cls } -> [ ("pc", hex pc); ("class", J.str (inst_class_name cls)) ]
  | Roload_issue { pc; va; key } -> [ ("pc", hex pc); ("va", hex va); ("key", J.int key) ]
  | Roload_fault { pc; va; key_requested; page_key; page_read_only } ->
    [ ("pc", hex pc); ("va", hex va); ("key_requested", J.int key_requested);
      ("page_key", J.int page_key); ("page_read_only", J.bool page_read_only) ]
  | Tlb_access { side; vpn; hit } ->
    [ ("tlb", J.str (side_name side)); ("vpn", hex vpn); ("hit", J.bool hit) ]
  | Cache_access { side; pa; write; hit; writeback } ->
    [ ("cache", J.str (side_name side)); ("pa", hex pa); ("write", J.bool write);
      ("hit", J.bool hit); ("writeback", J.bool writeback) ]
  | Block_enter { pa; cached } -> [ ("pa", hex pa); ("cached", J.bool cached) ]
  | Block_decode { pa } -> [ ("pa", hex pa) ]
  | Fault_triage { kind; pc } -> [ ("kind", J.str kind); ("pc", hex pc) ]
  | Syscall { number; name; ret } ->
    [ ("number", J.int number); ("name", J.str name); ("ret", J.int ret) ]
  | Request_done { pid; id; latency } ->
    [ ("pid", J.int pid); ("id", J.int id); ("latency", J.int latency) ]
  | Injected { kind; addr } -> [ ("kind", J.str kind); ("addr", hex addr) ]
  | Request_redelivered { id; attempt } -> [ ("id", J.int id); ("attempt", J.int attempt) ]
  | Worker_restart { pid; restarts } -> [ ("pid", J.int pid); ("restarts", J.int restarts) ]

let to_text_line ~ts ev =
  Printf.sprintf "%12Ld  %-16s  %s" ts (name ev)
    (String.concat " "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) (args ev)))
