(** The per-run metrics snapshot: every simulator counter in one flat
    record with a stable JSON encoding.  Snapshots are exact (assembled
    from component counters, not sampled from the trace ring) and are
    available with tracing off. *)

type t = {
  engine : string;  (** "single", "block" or "traced" *)
  instructions : int64;
  cycles : int64;
  loads : int;
  stores : int;
  roloads : int;  (** ld.ro loads retired, all key classes *)
  branches : int;
  jumps : int;
  indirect_jumps : int;
  roload_key0 : int;
  roload_vtable_unified : int;
  roload_typed : int;  (** per-type GFPT indirections (keys 2..1022) *)
  roload_return_sites : int;
  icache_hits : int;
  icache_misses : int;
  icache_writebacks : int;
  dcache_hits : int;
  dcache_misses : int;
  dcache_writebacks : int;
  itlb_hits : int;
  itlb_misses : int;
  dtlb_hits : int;
  dtlb_misses : int;
  page_faults : int;
  roload_faults_key : int;
  roload_faults_ro : int;
  syscalls : int;
  injections : int;  (** roload-chaos faults applied; zero outside a campaign *)
  dropped_writebacks : int;  (** D-cache writebacks suppressed by roload-chaos *)
  block_enters : int;  (** block-engine only; zero under single-step *)
  block_hits : int;
  block_decodes : int;
  trace_enters : int;  (** traced engine only; zero elsewhere *)
  trace_retires : int;  (** instructions retired inside compiled traces *)
  traces_compiled : int;
}

val zero : t

val roload_faults : t -> int
(** Total ROLoad faults (key mismatch + non-read-only pointee). *)

val dtlb_miss_pct : t -> float
val itlb_miss_pct : t -> float
val dcache_miss_pct : t -> float
val icache_miss_pct : t -> float

val core_equal : t -> t -> bool
(** Architectural equality: ignores [engine] and the [block_*]/[trace_*]
    fields so the traced, block-cached and single-step engines can be
    compared. *)

val to_json : t -> string

type labeled = { workload : string; scheme : string; m : t }

val log_to_json : labeled list -> string
(** Stable per-cell encoding for --metrics output; CI scans its "cycles"
    values against a committed baseline. *)
