(** The structured event tracer: a fixed-capacity ring buffer of
    cycle-stamped events.  Tracing never touches simulated state — with
    the tracer absent the hot-path cost is one option check, and with it
    attached measurements stay bit-identical to an untraced run. *)

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 2^18 events; the ring retains the most
    recent [capacity] events and counts the rest as dropped. *)

val set_clock : t -> (unit -> int64) -> unit
(** Wire the timestamp source (the simulated cycle counter).  Until set,
    events are stamped 0. *)

val emit : t -> Event.t -> unit

val length : t -> int
(** Events currently retained. *)

val emitted : t -> int
(** Total events ever emitted. *)

val dropped : t -> int

val iter : t -> (ts:int64 -> Event.t -> unit) -> unit
(** Oldest-first over the retained window. *)

val clear : t -> unit

val to_chrome_json : t -> string
(** Chrome trace format ({"traceEvents": [...]}), loadable in
    chrome://tracing / Perfetto; ts is the simulated cycle count. *)

val to_text : t -> string
(** Compact text dump, one cycle-stamped line per event. *)
