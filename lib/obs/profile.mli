(** Hot-block profiler presentation: ranking and rendering of per-block
    cycle attribution collected by the block-cached engine. *)

type block = {
  pa : int;
  entries : int;
  cycles : int64;
  instructions : int64;
  disasm : string list;  (** pre-rendered by the machine layer *)
}

val top : ?n:int -> block list -> block list
(** The [n] (default 10) hottest blocks by cycles, ties broken by
    address. *)

val render : ?n:int -> block list -> string
(** The top-N table with each block's disassembly indented beneath its
    row. *)
