(** The typed event vocabulary of the observability layer.  Flat payloads
    (ints, bools, short strings) keep this library below every simulator
    component; the tracer stamps cycle timestamps at emit time. *)

type inst_class =
  | C_alu
  | C_load
  | C_store
  | C_roload
  | C_branch
  | C_jump
  | C_indirect
  | C_muldiv
  | C_system

val inst_class_name : inst_class -> string

type side = I | D

val side_name : side -> string

type t =
  | Retired of { pc : int; cls : inst_class }
  | Roload_issue of { pc : int; va : int; key : int }
  | Roload_fault of {
      pc : int;
      va : int;
      key_requested : int;
      page_key : int;
      page_read_only : bool;
    }
  | Tlb_access of { side : side; vpn : int; hit : bool }
  | Cache_access of { side : side; pa : int; write : bool; hit : bool; writeback : bool }
  | Block_enter of { pa : int; cached : bool }
  | Block_decode of { pa : int }
  | Fault_triage of { kind : string; pc : int }
  | Syscall of { number : int; name : string; ret : int }
  | Request_done of { pid : int; id : int; latency : int }
      (** the request device retired request [id], served by task [pid];
          [latency] is hand-out → completion in cycles *)
  | Injected of { kind : string; addr : int }
      (** roload-chaos applied a fault at this address (class in [kind]) *)
  | Request_redelivered of { id : int; attempt : int }
      (** the device took request [id] back from a dead worker and queued
          it again; [attempt] counts redeliveries of this id so far *)
  | Worker_restart of { pid : int; restarts : int }
      (** the supervisor reincarnated task [pid] from its birth template *)

val name : t -> string
val lane : t -> int
val lane_name : int -> string

val args : t -> (string * string) list
(** Payload as (key, rendered-JSON-fragment) pairs. *)

val to_text_line : ts:int64 -> t -> string
