(* The structured event tracer: a fixed-capacity ring buffer of
   cycle-stamped events.

   Cost discipline: the tracer is an optional side channel.  Components
   hold [Tracer.t option] (or an observer closure) that defaults to
   [None]; with tracing off the only cost on any hot path is that null
   check, and no simulated state — cycle counters, cache/TLB contents,
   statistics — is ever touched by tracing, on or off.  The engine
   equivalence tests pin this down: a traced run and an untraced run
   produce bit-identical measurements.

   The ring keeps the most recent [capacity] events and counts what it
   dropped, so tracing a billion-instruction run is safe; exporters
   surface the drop count rather than pretending the window is the whole
   run. *)

type entry = { ts : int64; ev : Event.t }

let dummy = { ts = 0L; ev = Event.Block_decode { pa = -1 } }

type t = {
  buf : entry array;
  capacity : int;
  mutable len : int; (* valid entries, <= capacity *)
  mutable head : int; (* next write position *)
  mutable emitted : int; (* total events ever emitted *)
  mutable clock : unit -> int64;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Tracer.create";
  {
    buf = Array.make capacity dummy;
    capacity;
    len = 0;
    head = 0;
    emitted = 0;
    clock = (fun () -> 0L);
  }

(* The timestamp source — wired to the simulated cycle counter when the
   tracer is attached to a machine. *)
let set_clock t clock = t.clock <- clock

let emit t ev =
  t.buf.(t.head) <- { ts = t.clock (); ev };
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.emitted <- t.emitted + 1

let length t = t.len
let emitted t = t.emitted
let dropped t = t.emitted - t.len

(* oldest-first iteration over the retained window *)
let iter t f =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for i = 0 to t.len - 1 do
    let e = t.buf.((start + i) mod t.capacity) in
    f ~ts:e.ts e.ev
  done

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.emitted <- 0

(* ---------- exporters ---------- *)

(* Chrome trace format (the JSON object form with a "traceEvents" array),
   loadable in chrome://tracing and Perfetto.  Simulated cycles map to
   microseconds; events render as instants on one lane per subsystem. *)
let to_chrome_json t =
  let module J = Roload_util.Json in
  let b = Buffer.create (64 * t.len) in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string b
    (Printf.sprintf "\"otherData\": { \"emitted\": %d, \"dropped\": %d },\n" t.emitted
       (dropped t));
  Buffer.add_string b "\"traceEvents\": [\n";
  (* lane-naming metadata events so viewers label the rows *)
  List.iter
    (fun lane ->
      Buffer.add_string b
        (Printf.sprintf
           "{ \"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
            \"args\": { \"name\": %s } },\n"
           lane
           (J.str (Event.lane_name lane))))
    [ 1; 2; 3; 4 ];
  let first = ref true in
  iter t (fun ~ts ev ->
      if not !first then Buffer.add_string b ",\n";
      first := false;
      Buffer.add_string b
        (Printf.sprintf
           "{ \"name\": %s, \"cat\": %s, \"ph\": \"i\", \"s\": \"t\", \"ts\": %Ld, \
            \"pid\": 1, \"tid\": %d, \"args\": %s }"
           (J.str (Event.name ev))
           (J.str (Event.lane_name (Event.lane ev)))
           ts (Event.lane ev)
           (J.obj (Event.args ev))));
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* the compact text dump: one cycle-stamped line per event *)
let to_text t =
  let b = Buffer.create (48 * t.len) in
  Buffer.add_string b
    (Printf.sprintf "# roload-obs trace: %d events retained, %d dropped (ring capacity %d)\n"
       t.len (dropped t) t.capacity);
  Buffer.add_string b "#       cycle  event             args\n";
  iter t (fun ~ts ev ->
      Buffer.add_string b (Event.to_text_line ~ts ev);
      Buffer.add_char b '\n');
  Buffer.contents b
