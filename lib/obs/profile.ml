(* The hot-block profiler: per-block entry/cycle/instruction attribution
   collected by the block-cached engine when profiling is enabled.

   The machine layer owns the accounting (it knows block boundaries and
   the cycle counter); this module is the presentation half — ranking by
   cycles and rendering the top-N table with each block's disassembly,
   which the machine supplies as pre-rendered lines so this library stays
   below the ISA. *)

type block = {
  pa : int; (* physical address of the block's first instruction *)
  entries : int;
  cycles : int64;
  instructions : int64;
  disasm : string list;
}

let top ?(n = 10) blocks =
  let sorted =
    List.sort
      (fun a b ->
        match Int64.compare b.cycles a.cycles with
        | 0 -> compare a.pa b.pa
        | c -> c)
      blocks
  in
  List.filteri (fun i _ -> i < n) sorted

let render ?(n = 10) blocks =
  let b = Buffer.create 2048 in
  let total_cycles =
    List.fold_left (fun acc blk -> Int64.add acc blk.cycles) 0L blocks
  in
  Buffer.add_string b
    (Printf.sprintf "hot blocks: top %d of %d by cycles\n"
       (min n (List.length blocks))
       (List.length blocks));
  Buffer.add_string b
    "  rank         pa    entries       cycles        insts  cyc%\n";
  List.iteri
    (fun i blk ->
      let pct =
        if Int64.equal total_cycles 0L then 0.
        else 100. *. Int64.to_float blk.cycles /. Int64.to_float total_cycles
      in
      Buffer.add_string b
        (Printf.sprintf "  %4d  0x%08x  %9d  %11Ld  %11Ld  %4.1f\n" (i + 1)
           blk.pa blk.entries blk.cycles blk.instructions pct);
      List.iter
        (fun line -> Buffer.add_string b (Printf.sprintf "          %s\n" line))
        blk.disasm)
    (top ~n blocks);
  Buffer.contents b
