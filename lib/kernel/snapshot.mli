(** Whole-system snapshots: machine, kernel and process images captured
    at one instant.  One snapshot can seed any number of in-place
    restores and copy-on-write forks; campaign runners boot a workload
    once, pause at the trigger frontier, capture, and fork thousands of
    variants from the warm image instead of re-booting from reset. *)

type t

val capture : machine:Roload_machine.Machine.t -> kernel:Kernel.t -> process:Process.t -> t
(** Capture a paused system.  Cheap: physical pages are shared
    copy-on-write with the live machine (O(touched pages) from here on,
    not O(memory size)). *)

val restore : t -> machine:Roload_machine.Machine.t -> kernel:Kernel.t -> process:Process.t -> unit
(** Put the {e same} objects back into the captured state, compiled
    traces included; resumed execution is byte-identical to the original
    run — architectural state, cycles, every statistic, and output. *)

val fork : t -> Roload_machine.Machine.t * Kernel.t * Process.t
(** A fresh, fully independent system in the captured state, sharing
    physical pages copy-on-write with the image.  Mutating a fork never
    perturbs the image, the parent, or sibling forks; the returned
    process is already scheduled on the returned kernel/machine. *)

val mem_image : t -> Roload_mem.Phys_mem.image
(** The captured physical memory. *)

val diff : t -> t -> Roload_mem.Phys_mem.page_diff list
(** Page-by-page memory comparison of two snapshots, reporting each
    differing page with its first differing byte — the
    silent-corruption localizer used in chaos verdicts. *)
