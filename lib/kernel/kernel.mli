(** The kernel: frame allocation, the loader (applies section keys to
    PTEs), syscalls including key-aware mmap/mprotect, and trap triage.
    Kernel work is charged to the machine cycle counter through a small
    cost model, so the "+kernel" system's overhead is measured rather than
    assumed (paper §V-B). *)

type config = {
  roload_kernel : bool;
      (** false = stock kernel (no key plumbing, no ROLoad triage);
          true = the modified kernel of paper §III-B *)
  syscall_cycles : int;
  page_map_cycles : int;
  page_key_cycles : int;
  fault_cycles : int;
  context_switch_cycles : int;
      (** scheduler dispatch: register save/restore + address-space swap *)
  queue_cycles_per_waiter : int;
      (** request-device contention: cycles charged per hand-out for every
          other live worker assigned to the same shard *)
}

val default_config : config
val stock_kernel_config : config

type t

exception Out_of_frames

val create : machine:Roload_machine.Machine.t -> config:config -> t
val machine : t -> Roload_machine.Machine.t
val config : t -> config

val syscall_count : t -> int
(** Syscalls serviced by this kernel instance. *)

val alloc_frame : t -> int

(** {2 Snapshots} *)

type image

val snapshot : t -> image
(** Capture the kernel's own mutable state (frame allocator cursor,
    syscall counter).  The scheduled process and the machine snapshot at
    their own layers; {!Roload_core.System.snapshot} composes all
    three. *)

val restore : t -> image -> unit

val fork : image -> machine:Roload_machine.Machine.t -> config:config -> t
(** A sibling kernel over a forked machine, in the captured state (no
    process scheduled yet — see {!adopt}). *)

val adopt : t -> Process.t -> unit
(** Install a forked process {e without} the pc/sp reset and cache flush
    {!schedule} performs: the forked CPU and caches already hold the
    captured state. *)

val load : t -> Roload_obj.Exe.t -> Process.t
(** Map all segments (with keys when the kernel supports them), map the
    stack, set the initial brk. *)

val schedule : t -> Process.t -> unit
(** Install the process's MMU and initialize pc/sp. *)

type run_limit = { max_instructions : int64 }

val no_limit : run_limit

type run_outcome = {
  status : Process.status;
  instructions : int64;
  cycles : int64;
  peak_kib : int;
  output : string;
}

val run : ?limit:run_limit -> ?stop_at_pc:int -> t -> Process.t -> run_outcome
(** Run the scheduled process until exit, a fatal signal, the instruction
    limit, or [stop_at_pc] (used by attack tooling to pause and corrupt
    memory). *)

val exec : ?limit:run_limit -> t -> Roload_obj.Exe.t -> Process.t * run_outcome

(** {2 Multi-process scheduling}

    A small process table and a round-robin scheduler over it.  Time
    slices are fuel quanta (retired instructions), so the interleaving —
    and therefore every byte of output — is identical across the three
    execution engines and independent of host parallelism.  [fork]
    duplicates the address space inside the same physical memory
    (writable pages copied, read-only frames shared under a refcount so
    a later mprotect-to-writable splits them); [wait] blocks until a
    child exits; [read_request] pulls the next payload from the
    simulated request-source device. *)

val set_requests : ?shards:int -> t -> int array -> unit
(** Load the request-source device with a payload stream, dealt into
    [shards] FIFO queues (request id mod [shards]; default 1).  Request
    ids are stream indices; latency is measured from hand-out to the
    serving task's first ack ([complete_request], the next
    [read_request], or a clean exit).  A worker whose own shard runs dry
    steals from the others in deterministic scan order; when every shard
    is empty but requests are still in flight elsewhere, [read_request]
    blocks (a dead worker's request may yet be redelivered) and returns
    -1 only once the stream has fully drained. *)

val requests_served : t -> int
(** Requests whose service has completed. *)

val request_latencies : t -> int64 array
(** Cycle latencies of completed requests, in request-id order. *)

type request_record = {
  rr_payload : int;
  rr_handouts : int;
  rr_redeliveries : int;  (** times taken back from a dead worker and requeued *)
  rr_completions : int;
  rr_result : int64 option;  (** first explicitly committed result *)
  rr_diverged : bool;  (** a later ack committed a different result *)
  rr_latency : int64;  (** hand-out → first completion, cycles; -1 = never *)
}

val request_records : t -> request_record array
(** Per-request delivery records, in request-id order — the raw material
    of the serving-availability table. *)

val server_checksum : t -> int64
(** Order-independent fold (mod 1_000_003) of every first explicitly
    committed result.  Kernel-owned, so it survives worker kills and
    restarts — the payload-multiset checksum the redelivery invariant is
    stated over. *)

type supervision = {
  max_restarts : int;  (** per-worker reincarnation budget *)
  deadline_cycles : int64;
      (** per-request deadline in simulated cycles; 0 disables the watchdog *)
}

val set_supervision : t -> supervision option -> unit
(** Arm (or disarm) worker supervision.  While armed, [fork] captures a
    pristine birth template of the child; a worker that dies from a
    signal — ld.ro trap, segv, check abort, deadline or chaos kill — has
    its un-acked request redelivered and is reincarnated in place from
    the template (same pid, fresh address space and ASID) while budget
    remains, after which it zombifies normally through the wait ABI.
    [None] (the default) preserves the unsupervised PR-9 semantics. *)

val restarts_total : t -> int
(** Reincarnations performed across all pids. *)

val task_restarts : t -> (int * int) list
(** [(pid, restarts)] per task, pid-ascending. *)

val set_request_hook : t -> at:int -> (t -> unit) -> unit
(** Install a one-shot hook that fires inside [read_request] just before
    hand-out number [at] (0-based across all requests) — the
    deterministic request-count trigger of server chaos campaigns.  The
    hook may tamper a worker's state or [kill_task] any task, including
    the caller. *)

val kill_task : t -> pid:int -> info:string -> bool
(** Mark the task killed (SIGKILL carrying [info]); the scheduler reaps
    it at the next scheduler entry.  False when there is no such live
    running task. *)

val worker_pids : t -> int list
(** Pids of every non-root task ever created, pid-ascending. *)

val task_process : t -> int -> Process.t option
(** The process currently embodying [pid] (the latest incarnation). *)

val task_inflight : t -> int -> int
(** The request id [pid] currently holds un-acked, or -1.  Lets chaos
    hooks target a worker whose death actually forces a redelivery. *)

val console : t -> string
(** The interleaved write() output of every task, in service order. *)

val task_statuses : t -> (int * Process.status) list
(** [(pid, status)] for every task ever created, pid-ascending. *)

val spawn_root : t -> Process.t -> unit
(** Register an already-{!load}ed process as the root task (it gets the
    first pid) and make it current. *)

val run_all : ?limit:run_limit -> ?time_slice:int -> t -> run_outcome
(** Schedule every ready task round-robin until all tasks have exited or
    the global instruction limit is hit.  [time_slice] is the preemption
    quantum in retired instructions (default 20_000).  The outcome
    carries the root task's status/output and the machine-global
    instruction/cycle counters. *)

val exec_all :
  ?limit:run_limit -> ?time_slice:int -> t -> Roload_obj.Exe.t -> Process.t * run_outcome
(** [load] + [spawn_root] + [run_all]. *)
