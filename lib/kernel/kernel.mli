(** The kernel: frame allocation, the loader (applies section keys to
    PTEs), syscalls including key-aware mmap/mprotect, and trap triage.
    Kernel work is charged to the machine cycle counter through a small
    cost model, so the "+kernel" system's overhead is measured rather than
    assumed (paper §V-B). *)

type config = {
  roload_kernel : bool;
      (** false = stock kernel (no key plumbing, no ROLoad triage);
          true = the modified kernel of paper §III-B *)
  syscall_cycles : int;
  page_map_cycles : int;
  page_key_cycles : int;
  fault_cycles : int;
}

val default_config : config
val stock_kernel_config : config

type t

exception Out_of_frames

val create : machine:Roload_machine.Machine.t -> config:config -> t
val machine : t -> Roload_machine.Machine.t
val config : t -> config

val syscall_count : t -> int
(** Syscalls serviced by this kernel instance. *)

val alloc_frame : t -> int

(** {2 Snapshots} *)

type image

val snapshot : t -> image
(** Capture the kernel's own mutable state (frame allocator cursor,
    syscall counter).  The scheduled process and the machine snapshot at
    their own layers; {!Roload_core.System.snapshot} composes all
    three. *)

val restore : t -> image -> unit

val fork : image -> machine:Roload_machine.Machine.t -> config:config -> t
(** A sibling kernel over a forked machine, in the captured state (no
    process scheduled yet — see {!adopt}). *)

val adopt : t -> Process.t -> unit
(** Install a forked process {e without} the pc/sp reset and cache flush
    {!schedule} performs: the forked CPU and caches already hold the
    captured state. *)

val load : t -> Roload_obj.Exe.t -> Process.t
(** Map all segments (with keys when the kernel supports them), map the
    stack, set the initial brk. *)

val schedule : t -> Process.t -> unit
(** Install the process's MMU and initialize pc/sp. *)

type run_limit = { max_instructions : int64 }

val no_limit : run_limit

type run_outcome = {
  status : Process.status;
  instructions : int64;
  cycles : int64;
  peak_kib : int;
  output : string;
}

val run : ?limit:run_limit -> ?stop_at_pc:int -> t -> Process.t -> run_outcome
(** Run the scheduled process until exit, a fatal signal, the instruction
    limit, or [stop_at_pc] (used by attack tooling to pause and corrupt
    memory). *)

val exec : ?limit:run_limit -> t -> Roload_obj.Exe.t -> Process.t * run_outcome
