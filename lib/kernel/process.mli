(** A user-mode process: address space, memory accounting, status and
    console output. *)

type status = Running | Exited of int | Killed of Signal.t

type t

val page : int
val stack_top : int
val stack_pages : int
val mmap_base : int

val stack_guard_pages : int

val mmap_limit : int
(** First address the mmap region may never reach: the guard band of
    {!stack_guard_pages} below the stack. *)

val create :
  exe:Roload_obj.Exe.t ->
  page_table:Roload_mem.Page_table.t ->
  mmu:Roload_mem.Mmu.t ->
  phys:Roload_mem.Phys_mem.t ->
  brk:int ->
  t

(** {2 Snapshots} *)

type image

val snapshot : t -> image
(** Capture all mutable process state by value (break, mmap cursor,
    memory accounting, status, console output).  The address space is
    snapshot separately at the memory layer. *)

val restore : t -> image -> unit

val fork :
  image ->
  exe:Roload_obj.Exe.t ->
  page_table:Roload_mem.Page_table.t ->
  mmu:Roload_mem.Mmu.t ->
  phys:Roload_mem.Phys_mem.t ->
  t
(** A fresh process in the captured state, wired to an already-forked
    address space. *)

val status : t -> status
val output : t -> string
val append_output : t -> string -> unit

val clear_output : t -> unit
(** Empty the console buffer (the in-kernel fork path: a child does not
    inherit the parent's already-written output). *)

val exe : t -> Roload_obj.Exe.t
val mmu : t -> Roload_mem.Mmu.t
val page_table : t -> Roload_mem.Page_table.t
val set_status : t -> status -> unit
(** First status transition wins; later ones are ignored. *)

val account_mapped : t -> int -> unit
val peak_pages : t -> int
val peak_kib : t -> int
val brk : t -> int
val set_brk : t -> int -> unit

val init_brk : t -> int -> unit
(** Set the post-load break (also records it as the heap origin). *)

val heap_bytes : t -> int
(** Bytes the heap has grown past the post-load break, [brk - brk_start]. *)

val alloc_mmap_region : t -> int -> int option
(** Reserve address space for N pages; [None] when the region would
    cross {!mmap_limit} (the stack guard).  The cursor only moves on
    success. *)

val retract_mmap_region : t -> addr:int -> npages:int -> unit
(** Roll back the most recent {!alloc_mmap_region} after a
    partial-failure unwind. *)

val mapped_pages : t -> int

val accounting : t -> int * int
(** [(mapped_pages, peak_pages)] — captured before an all-or-nothing
    syscall so a failed one can {!rollback_accounting}. *)

val rollback_accounting : t -> mapped:int -> peak:int -> unit

val translate : t -> int -> int
(** Kernel-privileged translation (raises [Not_found] when unmapped). *)

val read_bytes : t -> va:int -> len:int -> string
val read_u64 : t -> va:int -> int64
val kernel_write_bytes : t -> va:int -> string -> unit

exception Attack_blocked of string

val page_writable : t -> int -> bool

val attacker_write : t -> va:int -> string -> unit
(** The attacker's primitive under the paper's threat model: arbitrary
    writes restricted to actually-writable pages.  Raises
    {!Attack_blocked} otherwise. *)

val attacker_write_u64 : t -> va:int -> int64 -> unit
