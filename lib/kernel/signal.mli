(** Signals delivered by the kernel to faulting processes. *)

type segv_reason =
  | Access_violation of { va : int; access : Roload_mem.Perm.access }
  | Roload_violation of {
      va : int;
      pc : int;
      key_requested : int;
      page_key : int;
      page_perms : Roload_mem.Perm.t;
    }  (** The triage detail of the modified fault handler (paper §III-B). *)

type t =
  | Sigsegv of segv_reason
  | Sigill of { pc : int; info : string }
  | Sigbus of { va : int }
  | Sigkill of { info : string }
      (** Kernel-originated kill: the per-request deadline watchdog
          ("deadline") or an external chaos kill ("chaos"). *)

val to_string : t -> string
val is_roload_violation : t -> bool
