(* Signals delivered by the kernel to faulting processes.  A SIGSEGV
   caused by a ROLoad check failure carries the triage detail the
   modified fault handler extracts (paper §III-B). *)

type segv_reason =
  | Access_violation of { va : int; access : Roload_mem.Perm.access }
  | Roload_violation of {
      va : int;
      pc : int;
      key_requested : int;
      page_key : int;
      page_perms : Roload_mem.Perm.t;
    }

type t =
  | Sigsegv of segv_reason
  | Sigill of { pc : int; info : string }
  | Sigbus of { va : int }
  | Sigkill of { info : string }
      (* kernel-originated kill: the deadline watchdog ("deadline") or an
         external chaos kill ("chaos") — never raised by the faulting
         process itself *)

let to_string = function
  | Sigsegv (Access_violation { va; access }) ->
    Printf.sprintf "SIGSEGV (access violation: %s at 0x%x)"
      (Roload_mem.Perm.access_to_string access) va
  | Sigsegv (Roload_violation { va; pc; key_requested; page_key; page_perms }) ->
    Printf.sprintf
      "SIGSEGV (ROLoad violation at 0x%x, pc 0x%x: key %d requested, page key %d, perms %s)"
      va pc key_requested page_key (Roload_mem.Perm.to_string page_perms)
  | Sigill { pc; info } -> Printf.sprintf "SIGILL (at 0x%x: %s)" pc info
  | Sigbus { va } -> Printf.sprintf "SIGBUS (misaligned access at 0x%x)" va
  | Sigkill { info } -> Printf.sprintf "SIGKILL (%s)" info

let is_roload_violation = function
  | Sigsegv (Roload_violation _) -> true
  | Sigsegv (Access_violation _) | Sigill _ | Sigbus _ | Sigkill _ -> false
