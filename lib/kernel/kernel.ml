(* The kernel: frame allocation, the program loader (which applies the
   executable's section keys to page-table entries), syscall servicing —
   including the key-aware mmap/mprotect — and trap triage.

   Two kernel variants exist, mirroring the paper's system matrix:
   [roload_kernel = false] is the stock kernel (no key plumbing, no ROLoad
   fault triage); [roload_kernel = true] is the modified kernel of §III-B.
   Kernel work is charged to the machine's cycle counter through a small
   cost model so the "processor+kernel modified" system of §V-B shows its
   (tiny) load-time key-setup overhead as a measurement, not an
   assumption. *)

module Perm = Roload_mem.Perm
module Page_table = Roload_mem.Page_table
module Mmu = Roload_mem.Mmu
module Phys_mem = Roload_mem.Phys_mem
module Machine = Roload_machine.Machine
module Cpu = Roload_machine.Cpu
module Trap = Roload_machine.Trap
module Config = Roload_machine.Config
module Exe = Roload_obj.Exe
module Reg = Roload_isa.Reg

type config = {
  roload_kernel : bool;
  syscall_cycles : int; (* trap entry/exit + dispatch *)
  page_map_cycles : int; (* per page mapped by the loader/mmap *)
  page_key_cycles : int; (* extra per page whose key is set (modified kernel) *)
  fault_cycles : int; (* page-fault handling before the process dies *)
  context_switch_cycles : int; (* scheduler: save/restore + address-space swap *)
}

let default_config =
  {
    roload_kernel = true;
    syscall_cycles = 80;
    page_map_cycles = 25;
    page_key_cycles = 2;
    fault_cycles = 400;
    context_switch_cycles = 120;
  }

let stock_kernel_config = { default_config with roload_kernel = false }

(* ---- the process table ----

   A task is the scheduler's view of a process: its saved register file,
   its lifecycle state, and the request it is currently serving (if any).
   The classic states apply — ready, blocked in wait(), zombie (exited
   but unreaped), reaped. *)

type task_state =
  | Task_ready
  | Task_waiting (* blocked in wait(); pc still points at the ecall *)
  | Task_zombie of int (* terminal status awaiting a parent's wait() *)
  | Task_reaped

type task = {
  pid : int;
  parent : int; (* 0 for the root task, which has no parent *)
  proc : Process.t;
  t_regs : int64 array; (* saved register file (32 slots) *)
  mutable t_pc : int;
  mutable t_state : task_state;
  mutable t_inflight : int; (* request id being served; -1 when none *)
  mutable t_req_start : int64; (* cycle stamp when the request was handed out *)
}

type t = {
  machine : Machine.t;
  config : config;
  mutable next_frame : int;
  mutable current : Process.t option;
  mutable syscall_count : int;
  (* multi-process state (empty/unused in single-process runs) *)
  mutable tasks : task list; (* pid-ascending; the round-robin order *)
  mutable next_pid : int;
  mutable scheduled : task option; (* whose registers live in the CPU *)
  console : Buffer.t; (* interleaved write() output of every task *)
  (* the simulated request-source device *)
  mutable req_stream : int array;
  mutable req_next : int; (* next request id to hand out *)
  mutable req_done : int; (* requests completed *)
  mutable req_latencies : int64 array; (* by request id; -1 = unfinished *)
  (* frames shared read-only across address spaces after fork, with the
     number of address spaces referencing them (only entries >= 2 are
     kept); mprotect splits a shared frame before granting write access *)
  frame_refs : (int, int) Hashtbl.t;
}

exception Out_of_frames

let create ~machine ~config =
  (* frame 0 stays unused so a PPN of 0 is never valid *)
  {
    machine;
    config;
    next_frame = 1;
    current = None;
    syscall_count = 0;
    tasks = [];
    next_pid = 1;
    scheduled = None;
    console = Buffer.create 256;
    req_stream = [||];
    req_next = 0;
    req_done = 0;
    req_latencies = [||];
    frame_refs = Hashtbl.create 64;
  }

let machine t = t.machine
let config t = t.config
let syscall_count t = t.syscall_count

(* ---- snapshots ----

   The kernel itself only owns two counters; the scheduled process and
   the machine snapshot at their own layers.  [fork] builds a sibling
   kernel over a forked machine; [adopt] installs a forked process
   without the pc/sp reset (and cache flush) [schedule] performs — the
   forked CPU and caches already hold the captured state. *)

type image = {
  ik_next_frame : int;
  ik_syscall_count : int;
}

let snapshot t = { ik_next_frame = t.next_frame; ik_syscall_count = t.syscall_count }

let restore t img =
  t.next_frame <- img.ik_next_frame;
  t.syscall_count <- img.ik_syscall_count

let fork img ~machine ~config =
  {
    machine;
    config;
    next_frame = img.ik_next_frame;
    current = None;
    syscall_count = img.ik_syscall_count;
    tasks = [];
    next_pid = 1;
    scheduled = None;
    console = Buffer.create 256;
    req_stream = [||];
    req_next = 0;
    req_done = 0;
    req_latencies = [||];
    frame_refs = Hashtbl.create 64;
  }

let adopt t process =
  t.current <- Some process;
  Machine.attach_mmu t.machine (Process.mmu process)

(* Events ride the machine's tracer; the kernel and CPU share one
   timeline (kernel work is charged to the machine cycle counter). *)
let emit t ev =
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr -> Roload_obs.Tracer.emit tr ev

let charge t cycles = Cpu.add_cycles (Machine.cpu t.machine) cycles

let alloc_frame t =
  let mem = Machine.mem t.machine in
  let frames = Phys_mem.size mem / Page_table.page_size in
  if t.next_frame >= frames then raise Out_of_frames;
  let f = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  Phys_mem.fill mem ~addr:(f * Page_table.page_size) ~len:Page_table.page_size '\000';
  f

(* ---------- loader ---------- *)

let effective_key t key = if t.config.roload_kernel then key else 0

let map_fresh_page t process ~va ~perms ~key =
  let ppn = alloc_frame t in
  Page_table.map_page (Process.page_table process) ~va ~ppn ~perms ~user:true
    ~key:(effective_key t key);
  Process.account_mapped process 1;
  charge t t.config.page_map_cycles;
  if t.config.roload_kernel && key <> 0 then charge t t.config.page_key_cycles;
  ppn

let load t exe =
  let mem = Machine.mem t.machine in
  let page_table = Page_table.create ~mem ~alloc_frame:(fun () -> alloc_frame t) in
  let machine_config = Machine.config t.machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:machine_config.Config.itlb_entries
      ~dtlb_entries:machine_config.Config.dtlb_entries
      ~roload_check_enabled:machine_config.Config.roload_processor
  in
  let brk_start = ref 0 in
  let process = Process.create ~exe ~page_table ~mmu ~phys:mem ~brk:0 in
  (* map segments page by page, copying data *)
  List.iter
    (fun (seg : Exe.segment) ->
      let npages = Exe.segment_pages seg in
      for i = 0 to npages - 1 do
        let va = seg.Exe.vaddr + (i * Page_table.page_size) in
        let ppn = map_fresh_page t process ~va ~perms:seg.Exe.perms ~key:seg.Exe.key in
        let data_off = i * Page_table.page_size in
        let remaining = String.length seg.Exe.data - data_off in
        if remaining > 0 then begin
          let chunk = min remaining Page_table.page_size in
          Phys_mem.write_string mem ~addr:(ppn * Page_table.page_size)
            (String.sub seg.Exe.data data_off chunk)
        end
      done;
      brk_start := max !brk_start (seg.Exe.vaddr + (npages * Page_table.page_size)))
    exe.Exe.segments;
  Process.init_brk process !brk_start;
  (* map the stack *)
  let stack_base = Process.stack_top - (Process.stack_pages * Page_table.page_size) in
  for i = 0 to Process.stack_pages - 1 do
    ignore
      (map_fresh_page t process ~va:(stack_base + (i * Page_table.page_size)) ~perms:Perm.rw
         ~key:0)
  done;
  process

(* Install the process on the machine and initialize its CPU state. *)
let schedule t process =
  t.current <- Some process;
  Machine.set_mmu t.machine (Some (Process.mmu process));
  let cpu = Machine.cpu t.machine in
  Cpu.set_pc cpu (Process.exe process).Exe.entry;
  Cpu.set cpu Reg.sp (Int64.of_int (Process.stack_top - 64))

(* ---------- syscalls ---------- *)

(* Unwind a partially mapped fresh region: unmap whatever got mapped and
   roll the page accounting back, so a failed brk/mmap is all-or-nothing
   as far as the address space and the accounting are concerned.  The
   data frames already allocated leak — this kernel never frees frames,
   and intermediate page-table frames allocated along the way may since
   have become live for other mappings — which wastes simulated physical
   memory but can never alias a future mapping. *)
let unwind_fresh_range process ~first_va ~npages ~accounting =
  let page_table = Process.page_table process in
  let mapped, peak = accounting in
  for i = 0 to npages - 1 do
    let va = first_va + (i * Page_table.page_size) in
    match Page_table.walk page_table va with
    | Ok _ ->
      Page_table.unmap_page page_table ~va;
      Mmu.invalidate (Process.mmu process) ~va
    | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> ()
  done;
  Process.rollback_accounting process ~mapped ~peak

let handle_brk t process new_brk =
  let old_brk = Process.brk process in
  if new_brk <= old_brk then old_brk
  else begin
    let first = Roload_util.Bits.align_up old_brk Page_table.page_size in
    let last = Roload_util.Bits.align_up new_brk Page_table.page_size in
    let n = (last - first) / Page_table.page_size in
    let accounting = Process.accounting process in
    (try
       for i = 0 to n - 1 do
         ignore
           (map_fresh_page t process ~va:(first + (i * Page_table.page_size)) ~perms:Perm.rw
              ~key:0)
       done;
       Process.set_brk process new_brk
     with Out_of_frames ->
       (* failed grows leave no half-mapped pages behind *)
       unwind_fresh_range process ~first_va:first ~npages:n ~accounting);
    Process.brk process
  end

let handle_mmap t process ~len ~prot ~key =
  if len <= 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    match Process.alloc_mmap_region process npages with
    | None -> Syscall.enomem (* the region would cross the stack guard *)
    | Some addr -> (
      let accounting = Process.accounting process in
      try
        for i = 0 to npages - 1 do
          ignore
            (map_fresh_page t process ~va:(addr + (i * Page_table.page_size))
               ~perms:(Syscall.perms_of_prot prot) ~key)
        done;
        addr
      with Out_of_frames ->
        unwind_fresh_range process ~first_va:addr ~npages ~accounting;
        Process.retract_mmap_region process ~addr ~npages;
        Syscall.enomem)
  end

(* Copy-on-mprotect: a frame shared read-only across address spaces
   (fork) must be split before any process gains write access to it, or
   the writes would leak into the sibling address spaces.  Returns true
   when it installed a private copy (with the final perms/key). *)
let split_shared_frame t process ~va ~pte ~perms ~key =
  let ppn = Roload_mem.Pte.ppn pte in
  match Hashtbl.find_opt t.frame_refs ppn with
  | Some refs when refs >= 2 ->
    let mem = Machine.mem t.machine in
    let ps = Page_table.page_size in
    let fresh = alloc_frame t in
    Phys_mem.write_string mem ~addr:(fresh * ps)
      (Phys_mem.read_string mem ~addr:(ppn * ps) ~len:ps);
    Page_table.map_page (Process.page_table process) ~va ~ppn:fresh ~perms ~user:true ~key;
    if refs = 2 then Hashtbl.remove t.frame_refs ppn
    else Hashtbl.replace t.frame_refs ppn (refs - 1);
    charge t t.config.page_map_cycles;
    true
  | _ -> false

let handle_mprotect t process ~addr ~len ~prot ~key =
  if addr land (Page_table.page_size - 1) <> 0 || len < 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    let page_table = Process.page_table process in
    (* validate the whole range up front: mprotect is all-or-nothing, so
       a failing call must leave every PTE exactly as it was *)
    let valid = ref true in
    for i = 0 to npages - 1 do
      match Page_table.walk page_table (addr + (i * Page_table.page_size)) with
      | Ok _ -> ()
      | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> valid := false
    done;
    if not !valid then Syscall.einval
    else begin
      let perms = Syscall.perms_of_prot prot in
      for i = 0 to npages - 1 do
        let va = addr + (i * Page_table.page_size) in
        let split =
          perms.Perm.w
          &&
          match Page_table.walk page_table va with
          | Ok { pte; _ } ->
            split_shared_frame t process ~va ~pte ~perms ~key:(effective_key t key)
          | Error _ -> false
        in
        if not split then begin
          (match Page_table.set_perms page_table ~va ~perms with
          | Ok () -> ()
          | Error _ -> assert false (* validated above *));
          if t.config.roload_kernel then
            match Page_table.set_key page_table ~va ~key with
            | Ok () -> ()
            | Error _ -> assert false
        end;
        if t.config.roload_kernel then charge t t.config.page_key_cycles;
        Mmu.invalidate (Process.mmu process) ~va
      done;
      0
    end
  end

let handle_write t process ~buf ~len =
  if len < 0 then Syscall.einval
  else begin
    (* copy out through the page table; an unmapped byte anywhere in the
       buffer fails the whole write with EFAULT — nothing is copied and
       no copy cycles are charged *)
    match Process.read_bytes process ~va:buf ~len with
    | s ->
      Process.append_output process s;
      Buffer.add_string t.console s;
      charge t (len / 16);
      len
    | exception Not_found -> Syscall.efault
  end

let handle_syscall t process =
  let cpu = Machine.cpu t.machine in
  let arg r = Int64.to_int (Cpu.get cpu r) in
  charge t t.config.syscall_cycles;
  t.syscall_count <- t.syscall_count + 1;
  let num = arg Reg.a7 in
  let ret =
    if num = Syscall.sys_exit then begin
      Process.set_status process (Process.Exited (arg Reg.a0));
      0
    end
    else if num = Syscall.sys_write then handle_write t process ~buf:(arg Reg.a1) ~len:(arg Reg.a2)
    else if num = Syscall.sys_brk then handle_brk t process (arg Reg.a0)
    else if num = Syscall.sys_mmap then
      handle_mmap t process ~len:(arg Reg.a1) ~prot:(arg Reg.a2) ~key:(arg Reg.a4)
    else if num = Syscall.sys_mprotect then
      handle_mprotect t process ~addr:(arg Reg.a0) ~len:(arg Reg.a1) ~prot:(arg Reg.a2)
        ~key:(arg Reg.a3)
    else Syscall.enosys
  in
  emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret });
  Cpu.set cpu Reg.a0 (Int64.of_int ret);
  (* resume after the ecall (ecall is never compressed) *)
  Cpu.set_pc cpu (Cpu.pc cpu + 4)

(* ---------- trap triage ---------- *)

(* The fault path of the modified kernel (§III-B): ROLoad faults are
   distinguished from benign load faults and the process is killed with a
   SIGSEGV carrying the triage detail.  The stock kernel cannot decode the
   new fault class; it reports a plain access violation. *)
let signal_of_trap t (trap : Trap.t) : Signal.t option =
  match trap with
  | Trap.Ecall -> None
  | Trap.Breakpoint -> None
  | Trap.Illegal_instruction { pc; info } -> Some (Signal.Sigill { pc; info })
  | Trap.Misaligned_access { va; _ } -> Some (Signal.Sigbus { va })
  | Trap.Fetch_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Fetch }))
  | Trap.Load_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))
  | Trap.Store_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Store }))
  | Trap.Roload_page_fault { pc; va; key_requested; page_key; page_perms } ->
    if t.config.roload_kernel then
      Some
        (Signal.Sigsegv
           (Signal.Roload_violation { va; pc; key_requested; page_key; page_perms }))
    else
      (* stock kernel: same mechanical outcome (the access did fault), but
         without the dedicated triage *)
      Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))

let triage_kind (signal : Signal.t) =
  match signal with
  | Signal.Sigill _ -> "sigill"
  | Signal.Sigbus _ -> "sigbus"
  | Signal.Sigsegv (Signal.Roload_violation _) -> "roload"
  | Signal.Sigsegv (Signal.Access_violation _) -> "segv"

let trap_pc (trap : Trap.t) =
  match trap with
  | Trap.Ecall | Trap.Breakpoint -> 0
  | Trap.Illegal_instruction { pc; _ }
  | Trap.Misaligned_access { pc; _ }
  | Trap.Fetch_page_fault { pc; _ }
  | Trap.Load_page_fault { pc; _ }
  | Trap.Store_page_fault { pc; _ }
  | Trap.Roload_page_fault { pc; _ } ->
    pc

(* ---------- run loop ---------- *)

type run_limit = { max_instructions : int64 }

let no_limit = { max_instructions = Int64.max_int }

type run_outcome = {
  status : Process.status;
  instructions : int64;
  cycles : int64;
  peak_kib : int;
  output : string;
}

let outcome_of t process =
  let cpu = Machine.cpu t.machine in
  {
    status = Process.status process;
    instructions = Cpu.instret cpu;
    cycles = Cpu.cycles cpu;
    peak_kib = Process.peak_kib process;
    output = Process.output process;
  }

(* Run the scheduled process until it exits, is killed, or hits a
   caller-supplied stop condition (used by the attack tooling to pause at
   a chosen pc). *)
let run ?(limit = no_limit) ?stop_at_pc t process =
  let cpu = Machine.cpu t.machine in
  let rec loop () =
    if Process.status process <> Process.Running then outcome_of t process
    else
      let remaining = Int64.sub limit.max_instructions (Cpu.instret cpu) in
      if Int64.compare remaining 0L <= 0 then outcome_of t process
      else
        (* hand the machine a fuel budget so it can run whole blocks
           between kernel checks *)
        let fuel =
          if Int64.compare remaining (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int remaining
        in
        match Machine.run_steps ?stop_at_pc ~fuel t.machine with
        | Machine.Exhausted -> loop () (* limit re-checked above *)
        | Machine.Stop_pc -> outcome_of t process
        | Machine.Trap Trap.Ecall ->
          handle_syscall t process;
          loop ()
        | Machine.Trap Trap.Breakpoint ->
          (* treat ebreak as an abort: kill the process *)
          emit t (Roload_obs.Event.Fault_triage { kind = "sigill"; pc = Cpu.pc cpu });
          Process.set_status process
            (Process.Killed (Signal.Sigill { pc = Cpu.pc cpu; info = "ebreak" }));
          outcome_of t process
        | Machine.Trap trap -> (
          charge t t.config.fault_cycles;
          match signal_of_trap t trap with
          | Some signal ->
            emit t
              (Roload_obs.Event.Fault_triage
                 { kind = triage_kind signal; pc = trap_pc trap });
            Process.set_status process (Process.Killed signal);
            outcome_of t process
          | None -> loop ())
  in
  loop ()

(* Convenience: load, schedule, run. *)
let exec ?(limit = no_limit) t exe =
  let process = load t exe in
  schedule t process;
  let outcome = run ~limit t process in
  (process, outcome)

(* ---------- multi-process scheduling ---------- *)

let console t = Buffer.contents t.console

let set_requests t payloads =
  t.req_stream <- Array.copy payloads;
  t.req_next <- 0;
  t.req_done <- 0;
  t.req_latencies <- Array.make (Array.length payloads) (-1L)

let requests_served t = t.req_done

let request_latencies t =
  Array.of_seq (Seq.filter (fun l -> l >= 0L) (Array.to_seq t.req_latencies))

let task_statuses t = List.map (fun tk -> (tk.pid, Process.status tk.proc)) t.tasks
let find_task t pid = List.find_opt (fun tk -> tk.pid = pid) t.tasks

(* Fork the parent's address space inside the same physical memory.
   Writable pages are copied eagerly ("copy on fork" — cheap at these
   address-space sizes); read-only pages — text, rodata, the GFPT —
   share the parent's frame under a reference count, so the PA-keyed
   decode/block caches stay warm across the fork and a later
   mprotect-to-writable knows to split the frame first. *)
let clone_address_space t parent =
  let mem = Machine.mem t.machine in
  let ps = Page_table.page_size in
  let parent_pt = Process.page_table parent in
  let page_table = Page_table.create ~mem ~alloc_frame:(fun () -> alloc_frame t) in
  Page_table.iter_mappings parent_pt ~f:(fun ~va ~pte ->
      let ppn = Roload_mem.Pte.ppn pte in
      let child_ppn =
        if Roload_mem.Pte.writable pte then begin
          let fresh = alloc_frame t in
          Phys_mem.write_string mem ~addr:(fresh * ps)
            (Phys_mem.read_string mem ~addr:(ppn * ps) ~len:ps);
          fresh
        end
        else begin
          (match Hashtbl.find_opt t.frame_refs ppn with
          | Some n -> Hashtbl.replace t.frame_refs ppn (n + 1)
          | None -> Hashtbl.replace t.frame_refs ppn 2);
          ppn
        end
      in
      let key = Roload_mem.Pte.key pte in
      Page_table.map_page page_table ~va ~ppn:child_ppn
        ~perms:(Roload_mem.Pte.perms pte) ~user:(Roload_mem.Pte.user pte) ~key;
      charge t t.config.page_map_cycles;
      if t.config.roload_kernel && key <> 0 then charge t t.config.page_key_cycles);
  page_table

let clone_process t parent =
  let page_table = clone_address_space t parent in
  let machine_config = Machine.config t.machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:machine_config.Config.itlb_entries
      ~dtlb_entries:machine_config.Config.dtlb_entries
      ~roload_check_enabled:machine_config.Config.roload_processor
  in
  let child =
    Process.fork (Process.snapshot parent) ~exe:(Process.exe parent) ~page_table ~mmu
      ~phys:(Machine.mem t.machine)
  in
  Process.clear_output child;
  child

let new_task t ~pid ~parent proc ~regs ~pc =
  let tk =
    {
      pid;
      parent;
      proc;
      t_regs = Array.copy regs;
      t_pc = pc;
      t_state = Task_ready;
      t_inflight = -1;
      t_req_start = 0L;
    }
  in
  t.tasks <- t.tasks @ [ tk ];
  tk

(* Register an already-loaded process as the root task of a scheduler
   run, reusing [schedule]'s pc/sp setup. *)
let spawn_root t process =
  schedule t process;
  let cpu = Machine.cpu t.machine in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let tk = new_task t ~pid ~parent:0 process ~regs:(Cpu.regs cpu) ~pc:(Cpu.pc cpu) in
  (* bind the machine's live compiled-trace table to this address space *)
  Machine.switch_context t.machine ~asid:pid ~mmu:(Process.mmu process);
  t.scheduled <- Some tk

let context_switch t tk =
  match t.scheduled with
  | Some cur when cur == tk -> ()
  | prev ->
    let cpu = Machine.cpu t.machine in
    (match prev with
    | Some cur ->
      Array.blit (Cpu.regs cpu) 0 cur.t_regs 0 32;
      cur.t_pc <- Cpu.pc cpu
    | None -> ());
    Array.blit tk.t_regs 0 (Cpu.regs cpu) 0 32;
    Cpu.set_pc cpu tk.t_pc;
    Machine.switch_context t.machine ~asid:tk.pid ~mmu:(Process.mmu tk.proc);
    t.scheduled <- Some tk;
    t.current <- Some tk.proc;
    charge t t.config.context_switch_cycles

(* Complete the request [tk] is serving: stamp its latency and tell the
   tracer.  Completion happens when the task asks for the next request
   (or exits with one still in flight). *)
let complete_request t tk =
  if tk.t_inflight >= 0 then begin
    let latency = Int64.sub (Cpu.cycles (Machine.cpu t.machine)) tk.t_req_start in
    t.req_latencies.(tk.t_inflight) <- latency;
    t.req_done <- t.req_done + 1;
    emit t
      (Roload_obs.Event.Request_done
         { pid = tk.pid; id = tk.t_inflight; latency = Int64.to_int latency });
    tk.t_inflight <- -1
  end

(* Terminal path (exit or fatal signal): finish any inflight request,
   become a zombie holding [status_code], wake a parent blocked in
   wait(). *)
let finish_task t tk status_code =
  complete_request t tk;
  tk.t_state <- Task_zombie status_code;
  match find_task t tk.parent with
  | Some p when p.t_state = Task_waiting -> p.t_state <- Task_ready
  | _ -> ()

(* Write the 8-byte little-endian wait() status, all-or-nothing: an
   unmapped byte anywhere in the buffer means no write at all (the
   caller returns EFAULT without reaping the child). *)
let write_wait_status tk ~va status =
  match
    ignore (Process.translate tk.proc va);
    ignore (Process.translate tk.proc (va + 7))
  with
  | () ->
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int status);
    Process.kernel_write_bytes tk.proc ~va (Bytes.to_string b);
    true
  | exception Not_found -> false

type sched_decision =
  | Keep (* the task keeps the CPU inside its quantum *)
  | Switch (* the task blocked or exited: schedule someone else *)

(* Syscall servicing under the scheduler.  exit/fork/wait/read_request
   are scheduler-aware; everything else behaves exactly as in a
   single-process run.  A blocking wait() deliberately does not advance
   the pc: the task re-executes the ecall when it is woken. *)
let handle_syscall_mp t tk =
  let cpu = Machine.cpu t.machine in
  let arg r = Int64.to_int (Cpu.get cpu r) in
  charge t t.config.syscall_cycles;
  t.syscall_count <- t.syscall_count + 1;
  let num = arg Reg.a7 in
  let finish ret =
    emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret });
    Cpu.set cpu Reg.a0 (Int64.of_int ret);
    Cpu.set_pc cpu (Cpu.pc cpu + 4)
  in
  if num = Syscall.sys_exit then begin
    let code = arg Reg.a0 in
    Process.set_status tk.proc (Process.Exited code);
    emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret = 0 });
    finish_task t tk code;
    Switch
  end
  else if num = Syscall.sys_fork then begin
    let child_proc = clone_process t tk.proc in
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    (* the child resumes after the ecall with a0 = 0 *)
    let child =
      new_task t ~pid ~parent:tk.pid child_proc ~regs:(Cpu.regs cpu) ~pc:(Cpu.pc cpu + 4)
    in
    child.t_regs.(Reg.to_int Reg.a0) <- 0L;
    finish pid;
    Keep
  end
  else if num = Syscall.sys_wait then begin
    let status_va = arg Reg.a0 in
    let child_of c = c.parent = tk.pid in
    let zombie =
      List.find_opt
        (fun c -> child_of c && match c.t_state with Task_zombie _ -> true | _ -> false)
        t.tasks
    in
    match zombie with
    | Some child ->
      let status = match child.t_state with Task_zombie s -> s | _ -> assert false in
      if status_va <> 0 && not (write_wait_status tk ~va:status_va status) then begin
        finish Syscall.efault;
        Keep
      end
      else begin
        child.t_state <- Task_reaped;
        finish child.pid;
        Keep
      end
    | None ->
      let alive =
        List.exists
          (fun c ->
            child_of c
            && match c.t_state with Task_ready | Task_waiting -> true | _ -> false)
          t.tasks
      in
      if alive then begin
        tk.t_state <- Task_waiting;
        Switch
      end
      else begin
        finish Syscall.echild;
        Keep
      end
  end
  else if num = Syscall.sys_read_request then begin
    complete_request t tk;
    if t.req_next < Array.length t.req_stream then begin
      let id = t.req_next in
      t.req_next <- id + 1;
      tk.t_inflight <- id;
      tk.t_req_start <- Cpu.cycles cpu;
      finish t.req_stream.(id)
    end
    else finish (-1);
    Keep
  end
  else begin
    let ret =
      if num = Syscall.sys_write then
        handle_write t tk.proc ~buf:(arg Reg.a1) ~len:(arg Reg.a2)
      else if num = Syscall.sys_brk then handle_brk t tk.proc (arg Reg.a0)
      else if num = Syscall.sys_mmap then
        handle_mmap t tk.proc ~len:(arg Reg.a1) ~prot:(arg Reg.a2) ~key:(arg Reg.a4)
      else if num = Syscall.sys_mprotect then
        handle_mprotect t tk.proc ~addr:(arg Reg.a0) ~len:(arg Reg.a1) ~prot:(arg Reg.a2)
          ~key:(arg Reg.a3)
      else Syscall.enosys
    in
    finish ret;
    Keep
  end

(* Round-robin over the ready tasks, preempting on a fuel quantum
   ([time_slice] retired instructions).  Deterministic by construction:
   the machine is instret-exact across engines, so the preemption points
   — and therefore the whole interleaving — are identical under
   single/block/traced execution. *)
let run_all ?(limit = no_limit) ?(time_slice = 20_000) t =
  let cpu = Machine.cpu t.machine in
  let time_slice = max 1 time_slice in
  let root =
    match t.tasks with
    | tk :: _ -> tk
    | [] -> invalid_arg "Kernel.run_all: no tasks (spawn_root/exec_all first)"
  in
  let cursor = ref 0 in
  (* next ready task after the cursor pid, wrapping: t.tasks is
     pid-ascending, so the first match is the round-robin choice *)
  let pick_next () =
    let ready = List.filter (fun tk -> tk.t_state = Task_ready) t.tasks in
    match List.find_opt (fun tk -> tk.pid > !cursor) ready with
    | Some tk -> Some tk
    | None -> ( match ready with tk :: _ -> Some tk | [] -> None)
  in
  let rec loop tk quantum_end =
    let remaining = Int64.sub limit.max_instructions (Cpu.instret cpu) in
    if Int64.compare remaining 0L <= 0 then () (* out of global budget *)
    else begin
      let slice = Int64.sub quantum_end (Cpu.instret cpu) in
      if Int64.compare slice 0L <= 0 then begin
        cursor := tk.pid;
        next ()
      end
      else begin
        let fuel64 = if Int64.compare slice remaining < 0 then slice else remaining in
        let fuel =
          if Int64.compare fuel64 (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int fuel64
        in
        match Machine.run_steps ~fuel t.machine with
        | Machine.Exhausted -> loop tk quantum_end (* budgets re-checked above *)
        | Machine.Stop_pc -> assert false (* run_all never passes stop_at_pc *)
        | Machine.Trap Trap.Ecall -> (
          match handle_syscall_mp t tk with
          | Keep -> loop tk quantum_end
          | Switch -> next ())
        | Machine.Trap Trap.Breakpoint ->
          emit t (Roload_obs.Event.Fault_triage { kind = "sigill"; pc = Cpu.pc cpu });
          Process.set_status tk.proc
            (Process.Killed (Signal.Sigill { pc = Cpu.pc cpu; info = "ebreak" }));
          finish_task t tk (-1);
          next ()
        | Machine.Trap trap -> (
          charge t t.config.fault_cycles;
          match signal_of_trap t trap with
          | Some signal ->
            emit t
              (Roload_obs.Event.Fault_triage
                 { kind = triage_kind signal; pc = trap_pc trap });
            Process.set_status tk.proc (Process.Killed signal);
            finish_task t tk (-1);
            next ()
          | None -> loop tk quantum_end)
      end
    end
  and next () =
    match pick_next () with
    | None -> () (* every task terminal, or everyone blocked: stop *)
    | Some tk ->
      cursor := tk.pid;
      context_switch t tk;
      loop tk (Int64.add (Cpu.instret cpu) (Int64.of_int time_slice))
  in
  next ();
  outcome_of t root.proc

(* Convenience: load, register as root, schedule everything. *)
let exec_all ?(limit = no_limit) ?time_slice t exe =
  let process = load t exe in
  spawn_root t process;
  let outcome = run_all ~limit ?time_slice t in
  (process, outcome)
